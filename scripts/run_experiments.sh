#!/usr/bin/env bash
# Regenerate every paper table/figure. Usage:
#   scripts/run_experiments.sh [--full] [--scale=S] [--nodes=N]
# Results land in results/ (one file per experiment).
set -euo pipefail
cd "$(dirname "$0")/.."
ARGS=("$@")
mkdir -p results
BIN=build/bench

run() {
  local name="$1"; shift
  echo "=== $name ${ARGS[*]-} ==="
  "$BIN/$name" "${ARGS[@]}" | tee "results/$name.txt"
  echo
}

run bench_table1
run bench_table2
run bench_fig1_msgs
run bench_fig3
run bench_table3
run bench_fig4
run bench_ablation
run bench_paper
echo "All results written to results/"
