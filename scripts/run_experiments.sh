#!/usr/bin/env bash
# Regenerate every paper table/figure. Usage:
#   scripts/run_experiments.sh [--full] [--scale=S] [--nodes=N] [--jobs=J]
#                              [--faults=SPEC] [--check-coherence]
# Results land in results/ (one file per experiment). All flags are
# forwarded to every harness, so a whole-suite chaos sweep is just
# --faults=drop=0.01,seed=42 (see README "Fault injection & reliability").
#
# Harnesses are discovered from build/bench/bench_* (no hardcoded list), so
# new experiments join the sweep by existing. --jobs defaults to the host
# core count; results are byte-identical at any job count (the simulator is
# deterministic and batch execution only reorders wall-clock, never virtual
# time — see src/exec/batch.h).
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=build/bench

ARGS=()
have_jobs=0
for a in "$@"; do
  case "$a" in
    # Bare --jobs would reach the binaries as the boolean value 1 (i.e. a
    # silent serial run); it means "all cores" here.
    --jobs) ARGS+=("--jobs=$(nproc)"); have_jobs=1 ;;
    --jobs=*) ARGS+=("$a"); have_jobs=1 ;;
    *) ARGS+=("$a") ;;
  esac
done
if [[ $have_jobs -eq 0 ]]; then
  ARGS+=("--jobs=$(nproc)")
fi

mkdir -p results

run() {
  local name="$1"; shift
  echo "=== $name ${ARGS[*]-} ==="
  "$BIN/$name" "${ARGS[@]}" "--json=results/$name.json" \
    | tee "results/$name.txt"
  echo
}

found=0
for bin in "$BIN"/bench_*; do
  [[ -x "$bin" ]] || continue
  name="$(basename "$bin")"
  # bench_micro is a google-benchmark binary (host microbenchmarks, own
  # flag syntax); it is not part of the paper-results sweep.
  [[ "$name" == bench_micro ]] && continue
  # bench_selfperf measures the simulator itself (host throughput, allocs);
  # it rejects --jobs and is gated separately by scripts/ci.sh perf.
  [[ "$name" == bench_selfperf ]] && continue
  run "$name"
  found=1
done
if [[ $found -eq 0 ]]; then
  echo "no bench binaries under $BIN — build first (cmake --build build)" >&2
  exit 1
fi
echo "All results written to results/"
