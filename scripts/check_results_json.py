#!/usr/bin/env python3
"""Schema check for the --json output of the bench harnesses.

Usage: scripts/check_results_json.py FILE [FILE...]

Validates the fgdsm-bench-v1 schema: top-level keys, config types, and —
for harnesses that report full runs — per-run stats objects whose counters
are non-negative and whose per-node breakdown matches the node count.
Exits non-zero on the first malformed file (CI gates on this).
"""
import json
import sys

STATS_COUNTERS = (
    "read_misses", "write_misses", "invalidations_received",
    "ccc_blocks_sent", "ccc_messages_sent", "ccc_runtime_calls",
    "ccc_calls_elided", "plan_cache_hits", "plan_cache_misses",
    "irreg_inspections", "sched_cache_hits", "sched_cache_misses",
    "messages_sent", "bytes_sent",
    "retransmits", "channel_acks", "dup_suppressed",
    "faults_dropped", "faults_duplicated", "faults_delayed",
    "barriers", "reductions",
)
STATS_TIMES = ("compute_ns", "miss_ns", "ccc_ns", "sync_ns",
               "handler_steal_ns", "comm_ns")


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path, where, s):
    if not isinstance(s, dict):
        fail(path, f"{where}: stats is not an object")
    for k in STATS_COUNTERS + STATS_TIMES:
        if k not in s:
            fail(path, f"{where}: missing stats field '{k}'")
    for k in STATS_COUNTERS:
        if not isinstance(s[k], int) or s[k] < 0:
            fail(path, f"{where}: counter '{k}' = {s[k]!r} not a non-negative int")


def check_file(path):
    with open(path) as f:
        d = json.load(f)
    if d.get("schema") != "fgdsm-bench-v1":
        fail(path, f"schema is {d.get('schema')!r}, expected 'fgdsm-bench-v1'")
    for key in ("bench", "config", "metrics", "runs"):
        if key not in d:
            fail(path, f"missing top-level key '{key}'")
    cfg = d["config"]
    for key in ("scale", "nodes", "block", "check_coherence"):
        if key not in cfg:
            fail(path, f"config missing '{key}'")
    if not isinstance(cfg["nodes"], int) or cfg["nodes"] < 1:
        fail(path, f"config.nodes = {cfg['nodes']!r} not a positive int")
    for name, v in d["metrics"].items():
        if not isinstance(v, (int, float)):
            fail(path, f"metric '{name}' is not numeric")
    for i, run in enumerate(d["runs"]):
        where = f"runs[{i}]"
        for key in ("app", "config", "elapsed_ns", "scalars", "totals",
                    "per_node", "per_loop"):
            if key not in run:
                fail(path, f"{where}: missing key '{key}'")
        if run["elapsed_ns"] < 0:
            fail(path, f"{where}: negative elapsed_ns")
        check_stats(path, f"{where}.totals", run["totals"])
        for n, s in enumerate(run["per_node"]):
            check_stats(path, f"{where}.per_node[{n}]", s)
        for loop, s in run["per_loop"].items():
            check_stats(path, f"{where}.per_loop[{loop}]", s)
    print(f"{path}: ok ({d['bench']}, {len(d['runs'])} runs, "
          f"{len(d['metrics'])} metrics)")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
