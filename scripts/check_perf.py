#!/usr/bin/env python3
"""Perf-regression gate for the simulator self-benchmarks.

Usage:
  scripts/check_perf.py CURRENT.json [--baseline BENCH_PERF.json]
                        [--tolerance 0.20] [--update] [--allocs-only]

CURRENT.json is a fresh run of either host-side harness:
  - `bench_selfperf --json=...`      (schema fgdsm-selfperf-v1, baseline
    BENCH_PERF.json, schema fgdsm-perf-baseline-v1), or
  - `bench_scale --perf-json=...`    (schema fgdsm-scale-v1, baseline
    BENCH_SCALE.json, schema fgdsm-scale-baseline-v1).
Both emit the same per-workload shape (events / allocs_per_event /
normalized_events_per_mop), so one gate serves both; the schema pair just
has to match. The baseline (committed at the repo root) records the
reference numbers this gate compares against.

What is compared, per workload:
  - normalized_events_per_mop: events/sec divided by the host's calibrated
    integer-op throughput (splitmix64 Mops/s). Normalization makes the gate
    meaningful across hosts of different speeds; it is NOT perfect (cache
    sizes and memory latency differ too), which is why the band is wide.
    Fails if current < baseline * (1 - tolerance).
  - allocs_per_event: heap allocations per simulated event, a host-
    independent structural metric. Fails if current exceeds the baseline by
    more than the tolerance (plus a small absolute slack for tiny counts).
  - events: the simulated-event count is deterministic for a given workload
    build, so a mismatch means the *simulation* changed, not the machine —
    the normalized comparison would be meaningless. Intentional behavior
    changes must refresh the baseline (--update) in the same commit.

--allocs-only demotes the throughput comparison to an informational trend
(printed, never failing) while allocs/event and the event count stay hard
gates — for runners whose scheduling variance trips even the normalized
band. The JSON artifact still carries the throughput numbers. Setting
FGDSM_NOISY_RUNNER=1 in the environment implies --allocs-only, so a noisy
CI runner can be marked once in the workflow instead of threading the flag
through every invocation.

--update rewrites the baseline's gate section from CURRENT.json (preserving
the history block if present). Exits 0 on pass, 1 on regression/mismatch.
"""
import argparse
import json
import os
import sys


# current schema -> the baseline schema it is gated against
SCHEMA_PAIRS = {
    "fgdsm-selfperf-v1": "fgdsm-perf-baseline-v1",
    "fgdsm-scale-v1": "fgdsm-scale-baseline-v1",
}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--baseline", default="BENCH_PERF.json")
    ap.add_argument("--tolerance", type=float, default=0.20)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline gate section from CURRENT")
    ap.add_argument("--allocs-only", action="store_true",
                    help="gate allocs/event only; report throughput as a "
                         "non-failing trend")
    args = ap.parse_args()
    if os.environ.get("FGDSM_NOISY_RUNNER") == "1" and not args.allocs_only:
        print("check_perf: FGDSM_NOISY_RUNNER=1 — gating allocs/event only, "
              "throughput reported as a trend")
        args.allocs_only = True

    cur = load(args.current)
    baseline_schema = SCHEMA_PAIRS.get(cur.get("schema"))
    if baseline_schema is None:
        print(f"check_perf: {args.current}: unexpected schema "
              f"{cur.get('schema')!r} (expected one of "
              f"{sorted(SCHEMA_PAIRS)})", file=sys.stderr)
        return 1

    if args.update:
        try:
            base = load(args.baseline)
        except SystemExit:
            base = {}  # first --update may create the baseline from scratch
        base["schema"] = baseline_schema
        base["host"] = cur["host"]
        base["config"] = cur["config"]
        base["baseline"] = cur["workloads"]
        with open(args.baseline, "w") as f:
            json.dump(base, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"check_perf: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    base = load(args.baseline)
    if base.get("schema") != baseline_schema:
        print(f"check_perf: {args.baseline}: unexpected schema "
              f"{base.get('schema')!r} (expected {baseline_schema!r} for a "
              f"{cur.get('schema')!r} run)", file=sys.stderr)
        return 1

    tol = args.tolerance
    failures = []
    for name, b in base["baseline"].items():
        c = cur["workloads"].get(name)
        if c is None:
            failures.append(f"{name}: missing from current run")
            continue
        if c["events"] != b["events"]:
            failures.append(
                f"{name}: event count changed {b['events']} -> "
                f"{c['events']}; the workload itself changed — refresh the "
                f"baseline with --update if intentional")
            continue
        floor = b["normalized_events_per_mop"] * (1.0 - tol)
        ratio = c["normalized_events_per_mop"] / b["normalized_events_per_mop"]
        status = "ok"
        if c["normalized_events_per_mop"] < floor:
            if args.allocs_only:
                print(f"check_perf: {name}: throughput {ratio:.2f}x of "
                      f"baseline (below {1.0 - tol:.2f}x floor; trend only, "
                      f"not gated)")
            else:
                failures.append(
                    f"{name}: normalized throughput regressed to {ratio:.2f}x "
                    f"of baseline (floor {1.0 - tol:.2f}x): "
                    f"{c['normalized_events_per_mop']:.6f} ev/Mop vs baseline "
                    f"{b['normalized_events_per_mop']:.6f}")
                status = "FAIL"
        alloc_cap = b["allocs_per_event"] * (1.0 + tol) + 0.25
        if c["allocs_per_event"] > alloc_cap:
            failures.append(
                f"{name}: allocs/event grew {b['allocs_per_event']:.2f} -> "
                f"{c['allocs_per_event']:.2f} (cap {alloc_cap:.2f})")
            status = "FAIL"
        print(f"check_perf: {name}: {ratio:.2f}x normalized throughput, "
              f"{c['allocs_per_event']:.2f} allocs/event "
              f"(baseline {b['allocs_per_event']:.2f}) [{status}]")

    if failures:
        for f in failures:
            print(f"check_perf: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_perf: all workloads within {tol:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
