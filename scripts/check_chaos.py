#!/usr/bin/env python3
"""Chaos-run validation for the CI chaos job.

Usage: scripts/check_chaos.py BASELINE.json CHAOS.json [CHAOS2.json ...]

Asserts, for each chaos file against the fault-free baseline:
  - the same set of (app, config) runs is present;
  - every application scalar (checksums, residuals) is bit-identical —
    the reliable channel must hide drops/dups/delays completely;
  - the chaos run actually injected faults and recovered from them
    (faults_dropped > 0 and retransmits > 0 in the summed totals).
Elapsed time is deliberately NOT compared: delays/reordering shift protocol
race outcomes (write contention, invalidation timing), so a chaos run may
legitimately finish earlier or later than the baseline — only the
application results must be identical.
Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys


def fail(msg):
    print(f"check_chaos: {msg}", file=sys.stderr)
    sys.exit(1)


def runs_by_key(d):
    return {(r["app"], r["config"]): r for r in d["runs"]}


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = runs_by_key(json.load(f))
    for path in sys.argv[2:]:
        with open(path) as f:
            chaos = runs_by_key(json.load(f))
        if base.keys() != chaos.keys():
            fail(f"{path}: run set differs from baseline "
                 f"({sorted(base.keys() ^ chaos.keys())})")
        dropped = retx = 0
        for key, cr in chaos.items():
            br = base[key]
            if br["scalars"] != cr["scalars"]:
                fail(f"{path}: {key}: scalars differ from fault-free run\n"
                     f"  baseline: {br['scalars']}\n  chaos:    {cr['scalars']}")
            dropped += cr["totals"]["faults_dropped"]
            retx += cr["totals"]["retransmits"]
        if dropped == 0 or retx == 0:
            fail(f"{path}: no faults were injected/recovered "
                 f"(dropped={dropped}, retransmits={retx}) — chaos run "
                 f"is vacuous; check the --faults spec")
        print(f"{path}: ok ({len(chaos)} runs, {dropped} drops hidden by "
              f"{retx} retransmissions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
