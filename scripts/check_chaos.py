#!/usr/bin/env python3
"""Chaos-run validation for the CI chaos and crash jobs.

Usage: scripts/check_chaos.py [--crash] BASELINE.json CHAOS.json [...]

Asserts, for each chaos file against the fault-free baseline:
  - the same set of (app, config) runs is present;
  - every application scalar (checksums, residuals) is bit-identical —
    the reliable channel must hide drops/dups/delays completely, and
    checkpoint/rollback recovery must replay to the exact same answers;
  - the run actually exercised the machinery (non-vacuity). Message chaos:
    faults_dropped > 0 and retransmits > 0 in the summed totals. With
    --crash: crashes > 0 and recoveries > 0 instead — a pure fail-stop run
    drops no messages on the wire, so the message-chaos condition would
    reject exactly the runs the crash gauntlet is for.
Elapsed time is deliberately NOT compared: delays/reordering shift protocol
race outcomes (write contention, invalidation timing), and a rollback
replays lost work, so a faulted run may legitimately finish earlier or
later than the baseline — only the application results must be identical.
Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys


def fail(msg):
    print(f"check_chaos: {msg}", file=sys.stderr)
    sys.exit(1)


def runs_by_key(d):
    return {(r["app"], r["config"]): r for r in d["runs"]}


def main():
    argv = sys.argv[1:]
    crash_mode = "--crash" in argv
    argv = [a for a in argv if a != "--crash"]
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as f:
        base = runs_by_key(json.load(f))
    for path in argv[1:]:
        with open(path) as f:
            chaos = runs_by_key(json.load(f))
        if base.keys() != chaos.keys():
            fail(f"{path}: run set differs from baseline "
                 f"({sorted(base.keys() ^ chaos.keys())})")
        dropped = retx = crashes = recoveries = 0
        for key, cr in chaos.items():
            br = base[key]
            if br["scalars"] != cr["scalars"]:
                fail(f"{path}: {key}: scalars differ from fault-free run\n"
                     f"  baseline: {br['scalars']}\n  chaos:    {cr['scalars']}")
            dropped += cr["totals"]["faults_dropped"]
            retx += cr["totals"]["retransmits"]
            crashes += cr["totals"].get("crashes", 0)
            recoveries += cr["totals"].get("recoveries", 0)
        if crash_mode:
            if crashes == 0 or recoveries == 0:
                fail(f"{path}: no crashes were injected/recovered "
                     f"(crashes={crashes}, recoveries={recoveries}) — crash "
                     f"run is vacuous; check the --faults crash/crashp spec")
            print(f"{path}: ok ({len(chaos)} runs, {crashes} crashes "
                  f"repaired by {recoveries} node-rollbacks)")
        else:
            if dropped == 0 or retx == 0:
                fail(f"{path}: no faults were injected/recovered "
                     f"(dropped={dropped}, retransmits={retx}) — chaos run "
                     f"is vacuous; check the --faults spec")
            print(f"{path}: ok ({len(chaos)} runs, {dropped} drops hidden by "
                  f"{retx} retransmissions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
