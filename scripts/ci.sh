#!/usr/bin/env bash
# Local CI entry point — the same jobs the GitHub Actions workflow runs:
#   scripts/ci.sh            tier-1 verify: configure, build, ctest, then a
#                            bench smoke run with --json + --check-coherence
#                            whose output is schema-validated
#   scripts/ci.sh sanitize   ASan+UBSan build + ctest (the batch runner
#                            introduces host threads; sanitizers gate races
#                            and UB in the concurrent path)
#   scripts/ci.sh chaos      fault-injection gauntlet: the full app suite
#                            under --faults at two seeds with the coherence
#                            checker on; results must be bit-identical to
#                            the fault-free baseline, and a 100%-drop run
#                            must terminate via the stall watchdog (exit 86)
#   scripts/ci.sh crash      crash gauntlet: fail-stop crashes with
#                            checkpoint/rollback recovery across bench_paper
#                            and bench_irreg at 8 and 256 nodes, two seeds
#                            each; recovered results must be bit-identical
#                            to the fault-free baseline and byte-identical
#                            across --sim-threads={1,4} and --jobs={1,4};
#                            a crash with --checkpoint-every=0 must exit 87
#                            naming the crashed node
#   scripts/ci.sh perf       perf-regression gate: bench_selfperf vs the
#                            committed BENCH_PERF.json baseline, normalized
#                            by host calibration, 20% tolerance band
#                            (PERF_ALLOCS_ONLY=1 gates allocs/event only and
#                            demotes throughput to an artifact trend — for
#                            runners whose variance trips the 20% band)
#   scripts/ci.sh scale      weak-scaling gate: a 64-node jacobi+spmv smoke
#                            run (hierarchical collectives, schema-checked
#                            JSON), then bench_scale's host-side numbers vs
#                            the committed BENCH_SCALE.json baseline through
#                            the same check_perf.py band (PERF_ALLOCS_ONLY=1
#                            applies here too)
#   scripts/ci.sh simthreads bit-identity matrix for the windowed PDES mode:
#                            determinism suite + PDES unit tests, then
#                            bench_table3 fault-free and under chaos at
#                            --sim-threads={1,4} — JSON results must be
#                            byte-identical across thread counts
#   scripts/ci.sh tsan       TSan build of the worker-crew path: the PDES
#                            partition/merge tests run with real threads on
#                            plain callables (no ucontext fibers — TSan
#                            cannot track fiber stack switches)
# Extra cmake args may follow the job name.
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-verify}"
[[ $# -gt 0 ]] && shift

jobs="$(nproc)"

case "$job" in
  verify)
    cmake -B build -S . "$@"
    cmake --build build -j "$jobs"
    ctest --test-dir build --output-on-failure -j "$jobs"
    # Observability smoke: one real bench run exercising the coherence
    # checker and the machine-readable results path end to end.
    mkdir -p results
    build/bench/bench_table3 --app=jacobi --scale=0.05 --jobs="$jobs" \
      --check-coherence --json=results/smoke_table3.json
    # Irregular path smoke: the inspector–executor schedule for the sparse
    # matvec, same coherence + schema gates.
    build/bench/bench_irreg --pattern=band --scale=0.05 --jobs="$jobs" \
      --check-coherence --json=results/smoke_irreg.json
    python3 scripts/check_results_json.py results/smoke_table3.json \
      results/smoke_irreg.json
    ;;
  sanitize)
    cmake -B build-asan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
      "$@"
    cmake --build build-asan -j "$jobs"
    # Fiber context switches (swapcontext) confuse ASan's stack bookkeeping
    # unless it is told about them; detect_stack_use_after_return stays off
    # for the same reason.
    ASAN_OPTIONS="detect_stack_use_after_return=0" \
      ctest --test-dir build-asan --output-on-failure -j "$jobs"
    ;;
  chaos)
    cmake -B build -S . "$@"
    cmake --build build -j "$jobs" --target bench_table3 bench_irreg
    mkdir -p results
    # Fault-free baseline, then the same sweep under chaos at two seeds.
    build/bench/bench_table3 --scale=0.05 --jobs="$jobs" --check-coherence \
      --json=results/chaos_baseline.json
    for seed in 1 2; do
      build/bench/bench_table3 --scale=0.05 --jobs="$jobs" --check-coherence \
        --faults="drop=0.01,dup=0.002,delay=0.05,reorder=0.01,seed=$seed" \
        --json="results/chaos_seed$seed.json"
    done
    python3 scripts/check_results_json.py results/chaos_baseline.json \
      results/chaos_seed1.json results/chaos_seed2.json
    python3 scripts/check_chaos.py results/chaos_baseline.json \
      results/chaos_seed1.json results/chaos_seed2.json
    # Irregular gauntlet: the inspector's needs exchange and the scheduled
    # gathers must survive the same lossy wire — results bit-identical to
    # the fault-free baseline at both seeds.
    build/bench/bench_irreg --pattern=band --scale=0.05 --jobs="$jobs" \
      --check-coherence --json=results/chaos_irreg_baseline.json
    for seed in 1 2; do
      build/bench/bench_irreg --pattern=band --scale=0.05 --jobs="$jobs" \
        --check-coherence --faults="drop=0.02,seed=$seed" \
        --json="results/chaos_irreg_seed$seed.json"
    done
    python3 scripts/check_results_json.py results/chaos_irreg_baseline.json \
      results/chaos_irreg_seed1.json results/chaos_irreg_seed2.json
    python3 scripts/check_chaos.py results/chaos_irreg_baseline.json \
      results/chaos_irreg_seed1.json results/chaos_irreg_seed2.json
    # Liveness failure path: a fully dead network must terminate with the
    # documented stall exit code and name the dead link — never hang.
    rc=0
    build/bench/bench_table3 --app=jacobi --scale=0.05 --check-coherence \
      --faults="drop=1.0,retries=0,seed=1" >/dev/null 2>results/chaos_stall.log \
      || rc=$?
    if [[ "$rc" -ne 86 ]]; then
      echo "chaos: expected stall exit code 86 from dead network, got $rc" >&2
      exit 1
    fi
    grep -q "retry budget exhausted on link" results/chaos_stall.log || {
      echo "chaos: stall diagnostic missing dead-link description:" >&2
      cat results/chaos_stall.log >&2
      exit 1
    }
    echo "chaos: dead-network run correctly exited 86 with link diagnostic"
    ;;
  crash)
    # Crash gauntlet: fail-stop node crashes repaired by checkpoint/rollback
    # recovery. Every faulted run must replay to bit-identical application
    # results (check_chaos.py --crash also rejects vacuous runs where no
    # crash actually fired), and recovery must not perturb the deterministic
    # simulation: the same crash schedule at --sim-threads={1,4} and
    # --jobs={1,4} must produce byte-identical JSON.
    cmake -B build -S . "$@"
    cmake --build build -j "$jobs" --target bench_table3 bench_irreg
    mkdir -p results
    # Full table-3 suite at 8 nodes: fault-free baseline, then probabilistic
    # crashes at two seeds with checkpoints every 4 barriers.
    build/bench/bench_table3 --scale=0.05 --jobs="$jobs" --check-coherence \
      --json=results/crash_baseline.json
    for seed in 1 2; do
      build/bench/bench_table3 --scale=0.05 --jobs="$jobs" --check-coherence \
        --faults="crashp=0.002,seed=$seed" --checkpoint-every=4 \
        --json="results/crash_seed$seed.json"
    done
    python3 scripts/check_results_json.py results/crash_baseline.json \
      results/crash_seed1.json results/crash_seed2.json
    python3 scripts/check_chaos.py --crash results/crash_baseline.json \
      results/crash_seed1.json results/crash_seed2.json
    # 256 nodes: a coordinated rollback restarts every node from the last
    # checkpoint, so recovery correctness must hold at scale too.
    build/bench/bench_table3 --nodes=256 --app=jacobi --scale=0.02 \
      --jobs="$jobs" --check-coherence --json=results/crash_baseline_n256.json
    # One explicit crash lands inside every config's run (shortest is
    # ~31ms simulated); crashp adds seed-varying extras on top.
    for seed in 1 2; do
      build/bench/bench_table3 --nodes=256 --app=jacobi --scale=0.02 \
        --jobs="$jobs" --check-coherence \
        --faults="crash=7@15000000,crashp=0.0002,seed=$seed" \
        --checkpoint-every=4 --json="results/crash_n256_seed$seed.json"
    done
    python3 scripts/check_results_json.py results/crash_baseline_n256.json \
      results/crash_n256_seed1.json results/crash_n256_seed2.json
    python3 scripts/check_chaos.py --crash results/crash_baseline_n256.json \
      results/crash_n256_seed1.json results/crash_n256_seed2.json
    # Irregular inspector-executor path: the rebuilt communication schedule
    # after a rollback must gather exactly the same remote rows.
    build/bench/bench_irreg --pattern=band --scale=0.05 --jobs="$jobs" \
      --check-coherence --json=results/crash_irreg_baseline.json
    for seed in 1 2; do
      build/bench/bench_irreg --pattern=band --scale=0.05 --jobs="$jobs" \
        --check-coherence --faults="crashp=0.05,seed=$seed" \
        --checkpoint-every=4 --json="results/crash_irreg_seed$seed.json"
    done
    python3 scripts/check_results_json.py results/crash_irreg_baseline.json \
      results/crash_irreg_seed1.json results/crash_irreg_seed2.json
    python3 scripts/check_chaos.py --crash results/crash_irreg_baseline.json \
      results/crash_irreg_seed1.json results/crash_irreg_seed2.json
    # Determinism matrix: the identical crash schedule replayed under the
    # windowed PDES (--sim-threads) and the batch runner (--jobs) must be
    # byte-identical — crash draws are counter-mode, never wall-clock.
    for st in 1 4; do
      FGDSM_HOST_CORES=4 build/bench/bench_table3 --app=jacobi --scale=0.05 \
        --sim-threads="$st" --check-coherence \
        --faults="crashp=0.002,seed=1" --checkpoint-every=4 \
        --json="results/crash_st$st.json"
    done
    cmp results/crash_st1.json results/crash_st4.json || {
      echo "crash: recovered results differ across --sim-threads" >&2
      exit 1
    }
    for j in 1 4; do
      build/bench/bench_table3 --app=jacobi --scale=0.05 --jobs="$j" \
        --check-coherence --faults="crashp=0.002,seed=1" \
        --checkpoint-every=4 --json="results/crash_j$j.json"
    done
    cmp results/crash_j1.json results/crash_j4.json || {
      echo "crash: recovered results differ across --jobs" >&2
      exit 1
    }
    echo "crash: recovered results byte-identical at --sim-threads={1,4}" \
      "and --jobs={1,4}"
    # Unrecoverable-crash path: with checkpointing disabled a crash must
    # terminate with the documented exit code and name the crashed node —
    # never hang, never print a result.
    rc=0
    build/bench/bench_table3 --app=jacobi --scale=0.05 \
      --faults="crash=1@2000000,seed=1" >/dev/null \
      2>results/crash_norecover.log || rc=$?
    if [[ "$rc" -ne 87 ]]; then
      echo "crash: expected exit code 87 from unrecoverable crash, got $rc" >&2
      exit 1
    fi
    grep -q "node 1 crashed with no checkpoint" results/crash_norecover.log || {
      echo "crash: diagnostic missing crashed-node description:" >&2
      cat results/crash_norecover.log >&2
      exit 1
    }
    echo "crash: unrecoverable run correctly exited 87 naming node 1"
    ;;
  perf)
    # Perf-regression gate: run the simulator self-benchmark and compare
    # against the committed baseline (BENCH_PERF.json) with a tolerance
    # band. Normalization against the host's calibrated integer throughput
    # makes the comparison tolerant of slower/faster CI machines; the wide
    # band absorbs the rest of the host variance. On runners where even the
    # normalized throughput is too noisy for the band, set
    # PERF_ALLOCS_ONLY=1: allocs/event (host-independent) stays a hard gate
    # and throughput is reported as a trend in the selfperf.json artifact.
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "$@"
    cmake --build build -j "$jobs" --target bench_selfperf
    mkdir -p results
    build/bench/bench_selfperf --reps=3 --json=results/selfperf.json
    allocs_flag=""
    [[ "${PERF_ALLOCS_ONLY:-0}" == "1" ]] && allocs_flag="--allocs-only"
    python3 scripts/check_perf.py results/selfperf.json \
      --baseline BENCH_PERF.json --tolerance 0.20 $allocs_flag
    ;;
  scale)
    # Weak-scaling gate. First a correctness smoke at 64 nodes: jacobi +
    # spmv with fixed work per node under the binomial collectives, JSON
    # schema-validated like every other bench artifact. Then the host-side
    # regression band: simulated event counts are exact, allocs/event is a
    # hard cap (resident simulator state must keep growing with active
    # links/touched pages, not nodes^2), normalized throughput gets the
    # same 20% band as the perf job (or trend-only with PERF_ALLOCS_ONLY=1).
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release "$@"
    cmake --build build -j "$jobs" --target bench_scale
    mkdir -p results
    build/bench/bench_scale --nodes-list=64 --check-coherence \
      --json=results/scale_smoke.json
    python3 scripts/check_results_json.py results/scale_smoke.json
    build/bench/bench_scale --reps=3 --perf-json=results/scale_perf.json
    allocs_flag=""
    [[ "${PERF_ALLOCS_ONLY:-0}" == "1" ]] && allocs_flag="--allocs-only"
    python3 scripts/check_perf.py results/scale_perf.json \
      --baseline BENCH_SCALE.json --tolerance 0.20 $allocs_flag
    ;;
  simthreads)
    # Bit-identity matrix for conservative synchronous-window PDES: the same
    # simulation at --sim-threads=1 and --sim-threads=4 must produce byte-
    # identical machine-readable results, fault-free and under chaos.
    # FGDSM_HOST_CORES pins the worker budget so the matrix is meaningful
    # even on small runners (thread counts change wall time only).
    cmake -B build -S . "$@"
    cmake --build build -j "$jobs"
    ctest --test-dir build --output-on-failure -j "$jobs" \
      -R "Determinism|PartitionMerge|SimThreads"
    mkdir -p results
    for st in 1 4; do
      FGDSM_HOST_CORES=4 build/bench/bench_table3 --scale=0.05 \
        --sim-threads="$st" --check-coherence \
        --json="results/simthreads_st$st.json"
      FGDSM_HOST_CORES=4 build/bench/bench_table3 --scale=0.05 \
        --sim-threads="$st" --check-coherence \
        --faults="drop=0.01,dup=0.002,delay=0.05,reorder=0.01,seed=1" \
        --json="results/simthreads_chaos_st$st.json"
    done
    cmp results/simthreads_st1.json results/simthreads_st4.json || {
      echo "simthreads: fault-free results differ across --sim-threads" >&2
      exit 1
    }
    cmp results/simthreads_chaos_st1.json results/simthreads_chaos_st4.json || {
      echo "simthreads: chaos results differ across --sim-threads" >&2
      exit 1
    }
    python3 scripts/check_chaos.py results/simthreads_st1.json \
      results/simthreads_chaos_st1.json results/simthreads_chaos_st4.json
    echo "simthreads: results byte-identical at --sim-threads={1,4}"
    ;;
  tsan)
    # ThreadSanitizer over the worker crew + outbox merge. Only the PDES
    # partition tests run: they exercise the full windowed machinery
    # (barrier, cross-partition merge, budget) with plain callables. The
    # fiber-based suites stay out — TSan cannot follow ucontext stack
    # switches and reports false positives on every fiber hand-off.
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
      "$@"
    cmake --build build-tsan -j "$jobs" --target pdes_partition_test
    FGDSM_HOST_CORES=8 ctest --test-dir build-tsan --output-on-failure \
      -R "PartitionMerge"
    ;;
  *)
    echo "unknown job '$job' (expected: verify | sanitize | chaos | crash |" \
      "perf | scale | simthreads | tsan)" >&2
    exit 2
    ;;
esac
