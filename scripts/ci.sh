#!/usr/bin/env bash
# Local CI entry point — the same two jobs the GitHub Actions workflow runs:
#   scripts/ci.sh            tier-1 verify: configure, build, ctest, then a
#                            bench smoke run with --json + --check-coherence
#                            whose output is schema-validated
#   scripts/ci.sh sanitize   ASan+UBSan build + ctest (the batch runner
#                            introduces host threads; sanitizers gate races
#                            and UB in the concurrent path)
# Extra cmake args may follow the job name.
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-verify}"
[[ $# -gt 0 ]] && shift

jobs="$(nproc)"

case "$job" in
  verify)
    cmake -B build -S . "$@"
    cmake --build build -j "$jobs"
    ctest --test-dir build --output-on-failure -j "$jobs"
    # Observability smoke: one real bench run exercising the coherence
    # checker and the machine-readable results path end to end.
    mkdir -p results
    build/bench/bench_table3 --app=jacobi --scale=0.05 --jobs="$jobs" \
      --check-coherence --json=results/smoke_table3.json
    python3 scripts/check_results_json.py results/smoke_table3.json
    ;;
  sanitize)
    cmake -B build-asan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
      "$@"
    cmake --build build-asan -j "$jobs"
    # Fiber context switches (swapcontext) confuse ASan's stack bookkeeping
    # unless it is told about them; detect_stack_use_after_return stays off
    # for the same reason.
    ASAN_OPTIONS="detect_stack_use_after_return=0" \
      ctest --test-dir build-asan --output-on-failure -j "$jobs"
    ;;
  *)
    echo "unknown job '$job' (expected: verify | sanitize)" >&2
    exit 2
    ;;
esac
