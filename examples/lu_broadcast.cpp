// Run the LU application — the paper's one case where message passing beats
// shared memory — across every configuration and print the comparison,
// including the per-iteration pivot-column broadcast behaviour.
//
//   $ ./examples/lu_broadcast [--n=256] [--nodes=8]
#include <cstdio>

#include "src/apps/apps.h"
#include "src/exec/executor.h"
#include "src/util/options.h"
#include "src/util/stats.h"

using namespace fgdsm;

int main(int argc, char** argv) {
  util::Options o(argc, argv);
  o.check_known({"n", "nodes"});
  const std::int64_t n = o.get_int("n", 256);
  const int nodes = static_cast<int>(o.get_int("nodes", 8));
  const hpf::Program prog = apps::lu(n);

  std::printf("lu %lldx%lld, CYCLIC columns, %d nodes\n",
              static_cast<long long>(n), static_cast<long long>(n), nodes);

  auto run_with = [&](core::Options opt, bool dual) {
    exec::RunConfig cfg;
    cfg.cluster.nnodes = nodes;
    cfg.cluster.dual_cpu = dual;
    cfg.opt = opt;
    return exec::run(prog, cfg);
  };
  const auto serial = [&] {
    exec::RunConfig cfg;
    cfg.opt = core::serial();
    return exec::run(prog, cfg);
  }();

  struct Row {
    const char* label;
    exec::RunResult r;
  };
  const Row rows[] = {
      {"sm-unopt (dual-cpu)", run_with(core::shmem_unopt(), true)},
      {"sm-opt   (dual-cpu)", run_with(core::shmem_opt_full(), true)},
      {"msg-passing", run_with(core::msg_passing(), true)},
  };
  std::printf("  %-22s %12s %9s %14s %12s\n", "configuration", "time",
              "speedup", "misses/node", "checksum");
  std::printf("  %-22s %12s %9s %14s %12.6f\n", "serial",
              util::format_ns(serial.stats.elapsed_ns).c_str(), "1.00", "-",
              serial.scalars.at("checksum"));
  for (const Row& row : rows) {
    std::printf("  %-22s %12s %9.2f %14.1f %12.6f\n", row.label,
                util::format_ns(row.r.stats.elapsed_ns).c_str(),
                static_cast<double>(serial.stats.elapsed_ns) /
                    static_cast<double>(row.r.stats.elapsed_ns),
                row.r.stats.avg_misses_per_node(),
                row.r.scalars.at("checksum"));
  }
  std::printf(
      "\nThe pivot column shrinks with k; late columns do not cover whole\n"
      "blocks, so the optimized shared-memory version loses its edge there\n"
      "while message passing ships exact bytes — the paper's explanation of\n"
      "why MP wins only on lu (Section 6).\n");
  return 0;
}
