// The paper's contract, by hand: drives the compiler-directed coherence
// primitives directly against the Tempest runtime — the exact call sequence
// of the paper's Figure 2 — and prints the block access states at each step
// so you can watch the "compiler-controlled incoherence" happen.
//
//   $ ./examples/stencil_ghost_exchange
//
// Node 0 owns a column of data that node 1 reads each iteration (a ghost
// column). The directory believes node 0 holds it exclusively throughout;
// node 1's copy exists only by compiler contract.
#include <cstdio>
#include <cstring>

#include "src/proto/stache.h"
#include "src/tempest/cluster.h"

using namespace fgdsm;
using tempest::Access;
using tempest::BlockId;
using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::Node;

namespace {

const char* tag(Node& n, BlockId b) { return to_string(n.access(b)); }

void show(Cluster& c, BlockId b0, BlockId b1, const char* when) {
  std::printf("  %-38s", when);
  for (int p = 0; p < 2; ++p) {
    std::printf(" | node%d: ", p);
    for (BlockId b = b0; b <= b1; ++b)
      std::printf("%-9s ", tag(c.node(p), b));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.nnodes = 2;
  cfg.block_size = 128;
  Cluster c(cfg);
  proto::Stache proto(c);
  const tempest::GAddr col = c.allocate("column", 512);  // 4 blocks
  const BlockId b0 = c.block_of(col);
  const BlockId b1 = c.block_of(col + 511);
  constexpr int kIters = 3;

  std::printf("Figure 2 walkthrough: 4-block ghost column, owner=node0, "
              "reader=node1\n");
  c.run([&](Node& n, sim::Task& t) {
    for (int it = 0; it < kIters; ++it) {
      if (n.id() == 0) {
        // Producer computes new values (the "previous loop").
        n.ensure_writable(t, col, 512);
        for (int w = 0; w < 64; ++w) {
          const double v = 100.0 * it + w;
          std::memcpy(n.mem(col + 8 * w), &v, 8);
        }
        n.note_writes(col, 512);
        if (it == 0) show(c, b0, b1, "A. producer wrote (mk_writable state)");
        // (mk_writable would run here; the owner already holds the blocks
        // writable — the common case of Section 4.3.)
        proto.mk_writable(n, t, b0, b1);
      }
      n.barrier(t);
      if (n.id() == 1) {
        proto.implicit_writable(n, t, b0, b1);
        if (it == 0) show(c, b0, b1, "B. after implicit_writable");
      }
      n.barrier(t);
      if (n.id() == 0)
        proto.send_blocks(n, t, col, 512, {1}, /*max_payload=*/512);
      if (n.id() == 1) {
        proto.ready_to_recv(n, t, 4);
        if (it == 0) show(c, b0, b1, "C. after send/ready_to_recv");
        // "The loop": consume the ghost column.
        double sum = 0;
        for (int w = 0; w < 64; ++w) {
          double v;
          std::memcpy(&v, n.mem(col + 8 * w), 8);
          sum += v;
        }
        std::printf("  iteration %d: node1 read ghost column, sum=%.0f\n",
                    it, sum);
        proto.implicit_invalidate(n, t, b0, b1);
        if (it == 0) show(c, b0, b1, "D. after implicit_invalidate");
      }
      n.barrier(t);
    }
    if (n.id() == 0) {
      const auto snap = proto.dir_snapshot(b0);
      std::printf(
          "  directory for block %llu at the end: %s (owner %d) — it never "
          "learned node1 had copies\n",
          static_cast<unsigned long long>(b0),
          snap.state == proto::Stache::DirState::kExcl ? "Excl" : "not-Excl",
          snap.owner);
      std::printf("  node0 protocol messages sent: %llu (no per-iteration "
                  "coherence traffic for the column)\n",
                  static_cast<unsigned long long>(
                      n.stats.ccc_messages_sent));
    }
  });
  return 0;
}
