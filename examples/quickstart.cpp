// Quickstart: build a small HPF-style data-parallel program against the IR,
// run it on the simulated 8-node fine-grain DSM cluster under (a) the plain
// coherence protocol and (b) compiler-directed coherence, and compare.
//
//   $ ./examples/quickstart [--nodes=8] [--n=256] [--steps=20]
//
// The program is a 2-D heat equation on an n x n plate distributed
// blockwise by columns; each step exchanges one ghost *column* with each
// neighbour — the canonical producer-consumer pattern the paper's
// optimization targets. (A 1-D rod would exchange single elements, which
// never cover a whole coherence block: the compiler would leave everything
// to the default protocol — the paper's granularity lesson in one line.)
#include <cstdio>

#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/executor.h"
#include "src/hpf/ir.h"
#include "src/util/options.h"
#include "src/util/stats.h"

using namespace fgdsm;

static hpf::Program heat2d(std::int64_t n, std::int64_t steps) {
  using hpf::AffineExpr;
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  hpf::Program prog;
  prog.name = "heat2d";
  prog.arrays.push_back({"u", {N, N}, hpf::DistKind::kBlock});
  prog.arrays.push_back({"unew", {N, N}, hpf::DistKind::kBlock});
  prog.sizes.set("n", n);
  prog.sizes.set("steps", steps);

  hpf::ParallelLoop init;
  init.name = "init";
  init.dist = hpf::LoopVar{"j", AffineExpr(0), N - 1};
  init.free.push_back(hpf::LoopVar{"i", AffineExpr(0), N - 1});
  init.home_array = "u";
  init.home_sub = J;
  init.writes = {{"u", {I, J}}, {"unew", {I, J}}};
  init.body = [](hpf::BodyCtx& c) {
    auto u = hpf::view2(c, "u");
    auto v = hpf::view2(c, "unew");
    const std::int64_t j = c.dist();
    const std::int64_t n = c.sym("n");
    for (std::int64_t i = 0; i < n; ++i) {
      const bool edge = i == 0 || j == 0 || i == n - 1 || j == n - 1;
      u(i, j) = edge ? 100.0 : 0.0;
      v(i, j) = u(i, j);
    }
  };
  prog.phases.push_back(hpf::Phase::make(std::move(init)));

  hpf::TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");
  for (int half = 0; half < 2; ++half) {
    const char* src = half == 0 ? "u" : "unew";
    const char* dst = half == 0 ? "unew" : "u";
    hpf::ParallelLoop sweep;
    sweep.name = std::string("sweep-") + dst;
    sweep.dist = hpf::LoopVar{"j", AffineExpr(1), N - 2};
    sweep.free.push_back(hpf::LoopVar{"i", AffineExpr(1), N - 2});
    sweep.home_array = dst;
    sweep.home_sub = J;
    sweep.reads = {{src, {I, J}},
                   {src, {I - 1, J}},
                   {src, {I + 1, J}},
                   {src, {I, J - 1}},
                   {src, {I, J + 1}}};
    sweep.writes = {{dst, {I, J}}};
    sweep.cost_per_iter_ns = 80;
    sweep.body = [src = std::string(src), dst = std::string(dst)](
                     hpf::BodyCtx& c) {
      auto u = hpf::view2(c, src);
      auto v = hpf::view2(c, dst);
      const std::int64_t j = c.dist();
      const std::int64_t n = c.sym("n");
      for (std::int64_t i = 1; i < n - 1; ++i)
        v(i, j) = u(i, j) + 0.2 * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) +
                                   u(i, j + 1) - 4.0 * u(i, j));
    };
    tl.phases.push_back(hpf::Phase::make(std::move(sweep)));
  }
  prog.phases.push_back(hpf::Phase::make(std::move(tl)));

  hpf::ParallelLoop sum;
  sum.name = "checksum";
  sum.dist = hpf::LoopVar{"j", AffineExpr(0), N - 1};
  sum.free.push_back(hpf::LoopVar{"i", AffineExpr(0), N - 1});
  sum.home_array = "u";
  sum.home_sub = J;
  sum.reads = {{"u", {I, J}}};
  sum.has_reduce = true;
  sum.reduce_scalar = "checksum";
  sum.body = [](hpf::BodyCtx& c) {
    auto u = hpf::view2(c, "u");
    const std::int64_t n = c.sym("n");
    double acc = 0;
    for (std::int64_t i = 0; i < n; ++i) acc += u(i, c.dist());
    c.contribute(acc);
  };
  prog.phases.push_back(hpf::Phase::make(std::move(sum)));
  return prog;
}

int main(int argc, char** argv) {
  util::Options o(argc, argv);
  o.check_known({"n", "steps", "nodes"});
  const std::int64_t n = o.get_int("n", 256);
  const std::int64_t steps = o.get_int("steps", 20);
  const int nodes = static_cast<int>(o.get_int("nodes", 8));

  const hpf::Program prog = heat2d(n, steps);
  auto run_with = [&](core::Options opt) {
    exec::RunConfig cfg;
    cfg.cluster.nnodes = nodes;
    cfg.opt = opt;
    return exec::run(prog, cfg);
  };

  const auto unopt = run_with(core::shmem_unopt());
  const auto opt = run_with(core::shmem_opt_full());
  std::printf("heat2d: %lld x %lld, %lld steps, %d nodes\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(steps), nodes);
  std::printf("  checksum (both runs must agree): %.12g vs %.12g\n",
              unopt.scalars.at("checksum"), opt.scalars.at("checksum"));
  std::printf("  transparent shared memory : %s, %.1f misses/node\n",
              util::format_ns(unopt.stats.elapsed_ns).c_str(),
              unopt.stats.avg_misses_per_node());
  std::printf("  compiler-directed         : %s, %.1f misses/node\n",
              util::format_ns(opt.stats.elapsed_ns).c_str(),
              opt.stats.avg_misses_per_node());
  std::printf("  improvement: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(opt.stats.elapsed_ns) /
                                 static_cast<double>(unopt.stats.elapsed_ns)));
  return 0;
}
