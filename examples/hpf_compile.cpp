// Compile a mini-HPF source program (from a file, or a built-in demo), dump
// what the compiler sees — distributions, per-processor iteration sets, and
// the non-owner read/write transfers each INDEPENDENT loop implies — then
// execute it on the simulated cluster with and without the optimizations.
//
//   $ ./examples/hpf_compile [source.hpf] [--nodes=4]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/exec/executor.h"
#include "src/hpf/analysis.h"
#include "src/hpf/frontend/lower.h"
#include "src/hpf/frontend/parser.h"
#include "src/util/options.h"

using namespace fgdsm;

static const char* kDemo = R"(PROGRAM demo
  PARAMETER (n = 64)
  REAL u(n, n), v(n, n)
!HPF$ PROCESSORS P(*)
!HPF$ DISTRIBUTE u(*, BLOCK)
!HPF$ DISTRIBUTE v(*, BLOCK)

!HPF$ INDEPENDENT, ON HOME (u(:, j))
  DO j = 1, n
    DO i = 1, n
      u(i, j) = 0.001 * (i + 3*j)
      v(i, j) = 0
    END DO
  END DO

!HPF$ INDEPENDENT, ON HOME (v(:, j))
  DO j = 2, n-1
    DO i = 2, n-1
      v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
    END DO
  END DO
END
)";

int main(int argc, char** argv) {
  util::Options o(argc, argv);
  o.check_known({"nodes"});
  const int nodes = static_cast<int>(o.get_int("nodes", 4));
  std::string source = kDemo;
  if (!o.positional().empty()) {
    std::ifstream in(o.positional()[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", o.positional()[0].c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  hpf::Program prog;
  try {
    prog = hpf::frontend::compile(source);
  } catch (const hpf::frontend::ParseError& e) {
    std::fprintf(stderr, "compile error: %s\n", e.what());
    return 1;
  }

  std::printf("program %s: %zu arrays, %zu parallel loops, %d processors\n",
              prog.name.c_str(), prog.arrays.size(), prog.phases.size(),
              nodes);
  for (const auto& a : prog.arrays) {
    std::printf("  array %-8s dims=%zu dist=%s\n", a.name.c_str(),
                a.extents.size(), to_string(a.dist));
  }

  hpf::Bindings b = prog.sizes;
  b.set(hpf::kSymNProcs, nodes);
  b.set(hpf::kSymProc, 0);
  for (const auto& ph : prog.phases) {
    if (ph.kind != hpf::Phase::Kind::kParallelLoop) continue;
    const auto& loop = *ph.loop;
    std::printf("\nloop %s (dist var '%s', home %s):\n", loop.name.c_str(),
                loop.dist.sym.c_str(), loop.home_array.c_str());
    for (int p = 0; p < nodes; ++p) {
      const auto iters = hpf::local_iters(loop, prog, b, nodes, p);
      std::printf("  node %d iterates %s=[%lld..%lld]\n", p,
                  loop.dist.sym.c_str(), static_cast<long long>(iters.lo),
                  static_cast<long long>(iters.hi));
    }
    const auto transfers = hpf::analyze_transfers(loop, prog, b, nodes);
    if (transfers.empty()) {
      std::printf("  no communication (all references owner-local)\n");
    } else {
      for (const auto& t : transfers)
        std::printf("  %s: node %d -> node %d, %lld elements%s\n",
                    t.array.c_str(), t.sender, t.receiver,
                    static_cast<long long>(t.section.count()),
                    t.for_write ? " (non-owner write)" : "");
    }
  }

  auto run_with = [&](core::Options opt) {
    exec::RunConfig cfg;
    cfg.cluster.nnodes = nodes;
    cfg.opt = opt;
    return exec::run(prog, cfg);
  };
  const auto unopt = run_with(core::shmem_unopt());
  const auto opt = run_with(core::shmem_opt_full());
  std::printf("\nexecution (simulated): unoptimized %s, optimized %s "
              "(%.1f%% faster), misses/node %.0f -> %.0f\n",
              util::format_ns(unopt.stats.elapsed_ns).c_str(),
              util::format_ns(opt.stats.elapsed_ns).c_str(),
              100.0 * (1.0 - static_cast<double>(opt.stats.elapsed_ns) /
                                 static_cast<double>(unopt.stats.elapsed_ns)),
              unopt.stats.avg_misses_per_node(),
              opt.stats.avg_misses_per_node());
  return 0;
}
