// Inspector–executor runtime (src/irreg/) end-to-end: the spmv irregular
// workload must produce identical results under the default protocol, the
// inspector–executor schedule, the MP backend, any host thread count, and
// chaos mode — while the schedule demonstrably carries traffic (fewer
// protocol messages than the default protocol) and the schedule cache
// amortizes inspection across timesteps.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/irreg/inspector.h"
#include "src/sim/fault.h"

namespace fgdsm::exec {
namespace {

RunConfig config(core::Options opt, int nnodes, std::size_t block = 128) {
  RunConfig cfg;
  cfg.cluster.nnodes = nnodes;
  cfg.cluster.block_size = block;
  cfg.opt = opt;
  cfg.gather_arrays = true;
  return cfg;
}

void expect_match(const RunResult& ref, const RunResult& r,
                  const std::string& label) {
  for (const auto& [name, va] : ref.arrays) {
    const auto it = r.arrays.find(name);
    ASSERT_NE(it, r.arrays.end()) << label;
    ASSERT_EQ(va.size(), it->second.size()) << label;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < va.size(); ++i)
      if (va[i] != it->second[i]) ++bad;
    EXPECT_EQ(bad, 0u) << label << ": array " << name << " has " << bad
                       << " mismatching elements of " << va.size();
  }
  for (const auto& [name, sv] : ref.scalars) {
    auto it = r.scalars.find(name);
    ASSERT_NE(it, r.scalars.end()) << label << " scalar " << name;
    EXPECT_EQ(sv, it->second) << label << " scalar " << name;
  }
}

// Same contract as the affine suite (apps_test): serial agrees with the
// parallel reference through scalars at a loose tolerance (different
// reduction grouping); every parallel mode is bit-identical to the
// default-protocol reference.
void check_all_modes(const hpf::Program& prog, int nnodes,
                     std::size_t block = 128) {
  const RunResult serial = run(prog, config(core::serial(), 1, block));
  ASSERT_FALSE(serial.scalars.empty()) << prog.name;
  const RunResult reference =
      run(prog, config(core::shmem_unopt(), nnodes, block));
  for (const auto& [name, sv] : serial.scalars) {
    auto it = reference.scalars.find(name);
    ASSERT_NE(it, reference.scalars.end()) << prog.name << " " << name;
    EXPECT_NEAR(sv, it->second, 1e-6 * (1.0 + std::abs(sv)))
        << prog.name << " serial-vs-parallel scalar " << name;
  }
  for (const core::Options& opt :
       {core::shmem_opt_base(), core::shmem_opt_bulk(),
        core::shmem_opt_full(), core::shmem_opt_pre(),
        core::msg_passing()}) {
    const RunResult r = run(prog, config(opt, nnodes, block));
    expect_match(reference, r, prog.name + "/" + opt.label());
  }
}

TEST(Irreg, SpmvBandAllModes) {
  check_all_modes(apps::spmv(768, 8, 5, /*pattern=*/0), 4);
}
TEST(Irreg, SpmvHashAllModes) {
  check_all_modes(apps::spmv(768, 8, 5, /*pattern=*/1), 4);
}
TEST(Irreg, SpmvOddNodesSmallBlocks) {
  check_all_modes(apps::spmv(600, 8, 4, /*pattern=*/0), 3, 64);
}
TEST(Irreg, SpmvEightNodes) {
  check_all_modes(apps::spmv(1024, 8, 4, /*pattern=*/1), 8);
}

// The IR carries the indirection explicitly.
TEST(Irreg, SpmvProgramHasIndirectReads) {
  const auto prog = apps::spmv(512, 8, 4, 0);
  EXPECT_TRUE(irreg::has_indirect(prog));
  EXPECT_FALSE(irreg::has_indirect(apps::jacobi(64, 2)));
}

// Acceptance: on the banded pattern the materialized schedule must carry
// enough of the gather that the scheduled run sends fewer protocol messages
// than the default protocol.
TEST(Irreg, ScheduleBeatsDefaultProtocolOnMessages) {
  const auto prog = apps::spmv(1024, 8, 5, /*pattern=*/0);
  const RunResult unopt = run(prog, config(core::shmem_unopt(), 4));
  const RunResult opt = run(prog, config(core::shmem_opt_full(), 4));
  EXPECT_LT(opt.stats.totals().messages_sent,
            unopt.stats.totals().messages_sent);
}

// Schedule-cache amortization (CHAOS/PARTI): the indirection arrays never
// change inside the time loop, so each node inspects exactly once and every
// later visit replays the cached schedule. Without the cache, every visit
// re-inspects. Numerics are identical either way; only time differs.
TEST(Irreg, ScheduleCacheAmortizesInspection) {
  const std::int64_t iters = 6;
  const auto prog = apps::spmv(768, 8, iters, /*pattern=*/0);
  for (const core::Options& base :
       {core::shmem_opt_full(), core::msg_passing()}) {
    RunConfig on = config(base, 4);
    RunConfig off = on;
    off.opt.plan_cache = false;
    const RunResult a = run(prog, on);
    const RunResult b = run(prog, off);
    const std::string label = base.label();

    for (const auto& ns : a.stats.node) {
      EXPECT_EQ(ns.irreg_inspections, 1u) << label;
      EXPECT_EQ(ns.sched_cache_misses, 1u) << label;
      EXPECT_EQ(ns.sched_cache_hits, static_cast<std::uint64_t>(iters - 1))
          << label;
    }
    for (const auto& ns : b.stats.node) {
      EXPECT_EQ(ns.irreg_inspections, static_cast<std::uint64_t>(iters))
          << label;
      EXPECT_EQ(ns.sched_cache_misses, 0u) << label;
      EXPECT_EQ(ns.sched_cache_hits, 0u) << label;
    }
    // Re-inspection is real simulated communication: the uncached run is
    // strictly slower, but numerically identical.
    EXPECT_LT(a.stats.elapsed_ns, b.stats.elapsed_ns) << label;
    EXPECT_EQ(a.scalars, b.scalars) << label;
    expect_match(a, b, label + " cache-on vs cache-off");
  }
}

// Inspector determinism across host parallelism: a batch of irregular runs
// must be bit-identical at any --jobs count.
TEST(Irreg, BatchResultsIdenticalAcrossJobCounts) {
  const auto band = apps::spmv(600, 8, 4, 0);
  const auto hash = apps::spmv(600, 8, 4, 1);
  std::vector<ExperimentSpec> specs;
  for (const hpf::Program* p : {&band, &hash}) {
    for (const core::Options& opt :
         {core::shmem_unopt(), core::shmem_opt_full(),
          core::msg_passing()}) {
      ExperimentSpec s;
      s.program = p;
      s.config = config(opt, 4);
      specs.push_back(s);
    }
  }
  const auto seq = BatchRunner(1).run_all(specs);
  const auto par = BatchRunner(3).run_all(specs);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].stats.elapsed_ns, par[i].stats.elapsed_ns) << i;
    EXPECT_EQ(seq[i].scalars, par[i].scalars) << i;
    EXPECT_EQ(seq[i].stats.totals().messages_sent,
              par[i].stats.totals().messages_sent)
        << i;
    expect_match(seq[i], par[i], "spec " + std::to_string(i));
  }
}

// Chaos: with deterministic fault injection + reliable transport, the
// scheduled modes lose real messages (the exchange and the gather both
// cross the faulty wire) yet results stay bit-identical to fault-free runs.
TEST(Irreg, ChaosPreservesResults) {
  const auto prog = apps::spmv(768, 8, 4, /*pattern=*/0);
  for (const core::Options& base :
       {core::shmem_opt_full(), core::msg_passing()}) {
    const RunResult clean = run(prog, config(base, 4));
    for (std::uint64_t seed : {1ull, 2ull}) {
      RunConfig cfg = config(base, 4);
      std::string err;
      cfg.cluster.faults = sim::FaultConfig::parse(
          "drop=0.02,seed=" + std::to_string(seed), &err);
      ASSERT_TRUE(err.empty()) << err;
      cfg.cluster.watchdog_ns = 2'000'000'000;
      const RunResult chaotic = run(prog, cfg);
      const std::string label =
          base.label() + " seed=" + std::to_string(seed);
      EXPECT_EQ(clean.scalars, chaotic.scalars) << label;
      expect_match(clean, chaotic, label);
      EXPECT_GT(chaotic.stats.totals().faults_dropped, 0u) << label;
      EXPECT_GT(chaotic.stats.totals().retransmits, 0u) << label;
    }
  }
}

}  // namespace
}  // namespace fgdsm::exec
