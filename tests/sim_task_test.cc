#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/util/assert.h"

namespace fgdsm::sim {
namespace {

TEST(Task, ChargeAdvancesClock) {
  Engine e;
  Time end = -1;
  Task t(e, "t", [&](Task& self) {
    self.charge(100);
    self.charge(50);
    end = self.now();
  });
  t.start(10);
  e.run();
  EXPECT_EQ(end, 160);
  EXPECT_TRUE(t.finished());
}

TEST(Task, ChargeYieldsAcrossPendingEvents) {
  // An event between the task's clock and its charge target must run at its
  // own virtual time, not after the whole charge.
  Engine e;
  std::vector<std::pair<const char*, Time>> trace;
  Task t(e, "t", [&](Task& self) {
    self.charge(1000);
    trace.emplace_back("task-done", self.now());
  });
  e.schedule(400, [&] { trace.emplace_back("event", e.now()); });
  t.start(0);
  e.run();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_STREQ(trace[0].first, "event");
  EXPECT_EQ(trace[0].second, 400);
  EXPECT_STREQ(trace[1].first, "task-done");
  EXPECT_EQ(trace[1].second, 1000);
}

TEST(Task, SemaphoreBlocksUntilPost) {
  Engine e;
  Semaphore sem;
  Time woke = -1;
  Task t(e, "t", [&](Task& self) {
    self.charge(10);
    sem.wait(self);
    woke = self.now();
  });
  e.schedule(500, [&] { sem.post(500); });
  t.start(0);
  e.run();
  EXPECT_EQ(woke, 500);
}

TEST(Task, SemaphorePostBeforeWaitDoesNotBlock) {
  Engine e;
  Semaphore sem;
  Time woke = -1;
  sem.post(0, 2);
  Task t(e, "t", [&](Task& self) {
    self.charge(100);
    sem.wait(self, 2);
    woke = self.now();
  });
  t.start(0);
  e.run();
  EXPECT_EQ(woke, 100);  // no blocking: time does not jump
  EXPECT_EQ(sem.count(), 0);
}

TEST(Task, CountingSemaphoreWaitsForAll) {
  Engine e;
  Semaphore sem;
  Time woke = -1;
  Task t(e, "t", [&](Task& self) {
    sem.wait(self, 3);
    woke = self.now();
  });
  e.schedule(100, [&] { sem.post(100); });
  e.schedule(200, [&] { sem.post(200); });
  e.schedule(300, [&] { sem.post(300); });
  t.start(0);
  e.run();
  EXPECT_EQ(woke, 300);
}

TEST(Task, WakeInTaskPastDoesNotMoveClockBackwards) {
  Engine e;
  Semaphore sem;
  Time woke = -1;
  Task t(e, "t", [&](Task& self) {
    self.charge(1000);
    sem.wait(self);  // signal arrives at t=200 < 1000
    woke = self.now();
  });
  e.schedule(200, [&] { sem.post(200); });
  t.start(0);
  e.run();
  EXPECT_EQ(woke, 1000);
}

TEST(Task, TwoTasksInterleaveDeterministically) {
  Engine e;
  // With a small lookahead, side-effect order tracks virtual-time order
  // closely; tasks leapfrog in lookahead-sized slices.
  e.set_lookahead(10);
  std::vector<int> order;
  Task a(e, "a", [&](Task& self) {
    for (int i = 0; i < 3; ++i) {
      self.charge(100);
      order.push_back(1);
    }
  });
  Task b(e, "b", [&](Task& self) {
    for (int i = 0; i < 3; ++i) {
      self.charge(100);
      order.push_back(2);
    }
  });
  a.start(0);
  b.start(50);
  e.run();
  // a finishes charges at 100,200,300; b at 150,250,350.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Task, CpuStealDelaysResumption) {
  // A handler occupies the task's cpu while the task is blocked; on wake the
  // task's clock must include the stolen time.
  Engine e;
  Resource cpu;
  Semaphore sem;
  std::int64_t stolen = 0;
  Time woke = -1;
  Task t(e, "t", [&](Task& self) {
    self.charge(100);  // cpu available = 100
    sem.wait(self);
    woke = self.now();
  });
  t.set_cpu(&cpu);
  t.set_steal_counter(&stolen);
  e.schedule(200, [&] {
    // Handler runs 200..260 on the shared cpu, then posts.
    const Time end = cpu.acquire(200, 60);
    sem.post(end);
  });
  t.start(0);
  e.run();
  EXPECT_EQ(woke, 260);
  EXPECT_EQ(stolen, 0);  // wake time already covers occupancy: no extra jump
  EXPECT_EQ(cpu.available(), 260);
}

TEST(Task, CpuStealObservedMidCharge) {
  // Handler occupancy during a charge pushes the remaining work later.
  Engine e;
  Resource cpu;
  Time done = -1;
  std::int64_t stolen = 0;
  Task t(e, "t", [&](Task& self) {
    self.charge(1000);
    done = self.now();
  });
  t.set_cpu(&cpu);
  t.set_steal_counter(&stolen);
  e.schedule(300, [&] { cpu.acquire(300, 120); });
  t.start(0);
  e.run();
  EXPECT_EQ(done, 1120);
  EXPECT_EQ(stolen, 120);
}

TEST(Task, LookaheadBoundsRunahead) {
  // While task b has a pending resume at t=100, task a must not advance
  // beyond 100 + lookahead - 1 in one go; once b finishes, a is free.
  Engine e;
  e.set_lookahead(50);
  std::vector<std::pair<int, Time>> finish;
  Task a(e, "a", [&](Task& self) {
    self.charge(10'000);
    finish.emplace_back(1, self.now());
  });
  Task b(e, "b", [&](Task& self) {
    self.charge(200);
    finish.emplace_back(2, self.now());
  });
  a.start(0);
  b.start(100);
  e.run();
  ASSERT_EQ(finish.size(), 2u);
  // b finishes at 300, a at 10000; with lookahead 50, a cannot have finished
  // before b in host order either.
  EXPECT_EQ(finish[0], (std::pair<int, Time>{2, 300}));
  EXPECT_EQ(finish[1], (std::pair<int, Time>{1, 10'000}));
}

TEST(Task, LateStarterStillSeesCausalOrder) {
  // A message-like chain: b starts later and schedules an ordinary event in
  // what would be a's past if a ran ahead unboundedly. With lookahead below
  // the scheduling delay, a must observe the event at the right time.
  Engine e;
  e.set_lookahead(20);
  std::vector<std::pair<const char*, Time>> trace;
  Task a(e, "a", [&](Task& self) {
    self.charge(5'000);
    trace.emplace_back("a-done", self.now());
  });
  Task b(e, "b", [&](Task& self) {
    self.charge(10);  // acts at t=110
    self.engine().schedule(self.now() + 25, [&, t = self.now() + 25] {
      trace.emplace_back("event", t);
    });
  });
  a.start(0);
  b.start(100);
  e.run();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_STREQ(trace[0].first, "event");
  EXPECT_EQ(trace[0].second, 135);
  EXPECT_STREQ(trace[1].first, "a-done");
}

TEST(Task, DeadlockDetected) {
  Engine e;
  {
    Semaphore sem;
    Task t(e, "stuck", [&](Task& self) { sem.wait(self); });
    t.start(0);
    EXPECT_THROW(e.run(), AssertionError);
  }
}

TEST(Task, BodyExceptionPropagates) {
  Engine e;
  Task t(e, "thrower", [&](Task& self) {
    self.charge(5);
    throw std::runtime_error("app failure");
  });
  t.start(0);
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Task, DestructionWhileBlockedUnwinds) {
  Engine e;
  Semaphore sem;
  bool cleaned = false;
  {
    Task t(e, "t", [&](Task& self) {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } g{&cleaned};
      sem.wait(self);
    });
    t.start(0);
    EXPECT_THROW(e.run(), AssertionError);  // deadlock reported
  }                                          // ~Task cancels + joins
  EXPECT_TRUE(cleaned);
}

TEST(Resource, AcquireSerializes) {
  Resource r;
  EXPECT_EQ(r.acquire(100, 50), 150);
  EXPECT_EQ(r.acquire(100, 50), 200);  // queued behind previous occupancy
  EXPECT_EQ(r.acquire(500, 10), 510);  // idle gap
  EXPECT_EQ(r.available(), 510);
}

}  // namespace
}  // namespace fgdsm::sim
