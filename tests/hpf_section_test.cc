#include <gtest/gtest.h>

#include <random>

#include "src/hpf/distribution.h"
#include "src/hpf/layout.h"
#include "src/hpf/section.h"
#include "src/hpf/symbolic.h"

namespace fgdsm::hpf {
namespace {

TEST(AffineExpr, ArithmeticAndEval) {
  const AffineExpr n = AffineExpr::sym("n");
  const AffineExpr e = n * 2 + AffineExpr::sym("p") - 3;
  Bindings b;
  b.set("n", 10);
  b.set("p", 4);
  EXPECT_EQ(e.eval(b), 21);
  EXPECT_EQ(e.coeff("n"), 2);
  EXPECT_EQ(e.coeff("p"), 1);
  EXPECT_EQ(e.coeff("q"), 0);
  EXPECT_TRUE((n - n).is_constant());
  EXPECT_EQ((n - n).constant(), 0);
}

TEST(AffineExpr, Substitute) {
  const AffineExpr e = AffineExpr::sym("i") * 3 + 5;
  const AffineExpr r = e.substitute("i", AffineExpr::sym("k") + 1);
  Bindings b;
  b.set("k", 2);
  EXPECT_EQ(r.eval(b), 3 * 3 + 5);
  EXPECT_FALSE(r.references("i"));
}

TEST(AffineExpr, UnboundSymbolThrows) {
  Bindings b;
  EXPECT_THROW(AffineExpr::sym("x").eval(b), AssertionError);
}

TEST(ConcreteInterval, Basics) {
  ConcreteInterval iv{2, 10, 2};
  EXPECT_EQ(iv.count(), 5);
  EXPECT_TRUE(iv.contains(6));
  EXPECT_FALSE(iv.contains(5));
  EXPECT_FALSE(iv.contains(12));
  EXPECT_TRUE((ConcreteInterval{3, 2, 1}).empty());
  // Normalization trims hi to the last member.
  EXPECT_EQ((ConcreteInterval{0, 9, 4}).normalized().hi, 8);
}

TEST(ConcreteInterval, IntersectUnitStride) {
  const auto r = intersect({0, 10, 1}, {5, 20, 1});
  EXPECT_EQ(r.lo, 5);
  EXPECT_EQ(r.hi, 10);
  EXPECT_EQ(r.count(), 6);
  EXPECT_TRUE(intersect({0, 4, 1}, {5, 9, 1}).empty());
}

TEST(ConcreteInterval, IntersectStrided) {
  // {0,3,6,9,12} ∩ {0,4,8,12} = {0,12}
  const auto r = intersect({0, 12, 3}, {0, 12, 4});
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 12);
  EXPECT_EQ(r.stride, 12);
  EXPECT_EQ(r.count(), 2);
  // Misaligned strides: {1,3,5,...} ∩ {0,2,4,...} = empty
  EXPECT_TRUE(intersect({1, 99, 2}, {0, 98, 2}).empty());
}

TEST(ConcreteInterval, IntersectPropertyRandom) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    ConcreteInterval a{static_cast<std::int64_t>(rng() % 40),
                       static_cast<std::int64_t>(rng() % 80),
                       static_cast<std::int64_t>(rng() % 6 + 1)};
    ConcreteInterval b{static_cast<std::int64_t>(rng() % 40),
                       static_cast<std::int64_t>(rng() % 80),
                       static_cast<std::int64_t>(rng() % 6 + 1)};
    const ConcreteInterval r = intersect(a, b);
    for (std::int64_t v = -5; v <= 90; ++v)
      EXPECT_EQ(r.contains(v), a.contains(v) && b.contains(v))
          << "v=" << v << " a=[" << a.lo << "," << a.hi << "," << a.stride
          << "] b=[" << b.lo << "," << b.hi << "," << b.stride << "]";
  }
}

TEST(ConcreteInterval, SubtractPropertyRandom) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    ConcreteInterval a{static_cast<std::int64_t>(rng() % 40),
                       static_cast<std::int64_t>(rng() % 80),
                       static_cast<std::int64_t>(rng() % 4 + 1)};
    ConcreteInterval b{static_cast<std::int64_t>(rng() % 40),
                       static_cast<std::int64_t>(rng() % 80),
                       static_cast<std::int64_t>(rng() % 4 + 1)};
    const auto pieces = subtract(a, b);
    for (std::int64_t v = -5; v <= 90; ++v) {
      bool in = false;
      for (const auto& piece : pieces) in = in || piece.contains(v);
      EXPECT_EQ(in, a.contains(v) && !b.contains(v)) << "v=" << v;
    }
  }
}

TEST(ConcreteSet, SubtractRectangles2D) {
  // (0:9, 0:9) minus (2:7, 3:6): the classic frame.
  ConcreteSet s(ConcreteSection{{{0, 9, 1}, {0, 9, 1}}});
  const ConcreteSet r = s.subtract(ConcreteSection{{{2, 7, 1}, {3, 6, 1}}});
  const std::vector<ConcreteInterval> uni{{0, 9, 1}, {0, 9, 1}};
  EXPECT_EQ(r.exact_count_slow(uni), 100 - 6 * 4);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({2, 3}));
  EXPECT_FALSE(r.contains({7, 6}));
  EXPECT_TRUE(r.contains({8, 6}));
}

TEST(ConcreteSet, SetAlgebraPropertyRandom2D) {
  std::mt19937 rng(99);
  auto rand_iv = [&](std::int64_t span) {
    const std::int64_t lo = static_cast<std::int64_t>(rng() % span);
    return ConcreteInterval{lo, lo + static_cast<std::int64_t>(rng() % span),
                            1};
  };
  const std::vector<ConcreteInterval> uni{{0, 24, 1}, {0, 24, 1}};
  for (int trial = 0; trial < 200; ++trial) {
    const ConcreteSection a{{rand_iv(20), rand_iv(20)}};
    const ConcreteSection b{{rand_iv(20), rand_iv(20)}};
    const ConcreteSet diff = ConcreteSet(a).subtract(b);
    const ConcreteSet inter = ConcreteSet(a).intersect(b);
    for (std::int64_t i = 0; i <= 24; ++i)
      for (std::int64_t j = 0; j <= 24; ++j) {
        const bool in_a = a.contains({i, j});
        const bool in_b = b.contains({i, j});
        EXPECT_EQ(diff.contains({i, j}), in_a && !in_b);
        EXPECT_EQ(inter.contains({i, j}), in_a && in_b);
      }
  }
}

TEST(SymbolicSection, EvaluatesToConcrete) {
  Section s;
  s.dims.push_back(
      Interval{AffineExpr(0), AffineExpr::sym("n") - 1, 1});
  s.dims.push_back(Interval{AffineExpr::sym("$p") * 4,
                            AffineExpr::sym("$p") * 4 + 3, 1});
  Bindings b;
  b.set("n", 16);
  b.set("$p", 2);
  const ConcreteSection c = s.eval(b);
  EXPECT_EQ(c.dims[0].lo, 0);
  EXPECT_EQ(c.dims[0].hi, 15);
  EXPECT_EQ(c.dims[1].lo, 8);
  EXPECT_EQ(c.dims[1].hi, 11);
  EXPECT_EQ(s.to_string(), "(0:-1+n, 4*$p:3+4*$p)");
}

TEST(Distribution, BlockOwnership) {
  // n=10, np=4 -> block size 3: owners 0:[0,2] 1:[3,5] 2:[6,8] 3:[9,9]
  EXPECT_EQ(owner_of(DistKind::kBlock, 0, 10, 4), 0);
  EXPECT_EQ(owner_of(DistKind::kBlock, 2, 10, 4), 0);
  EXPECT_EQ(owner_of(DistKind::kBlock, 3, 10, 4), 1);
  EXPECT_EQ(owner_of(DistKind::kBlock, 9, 10, 4), 3);
  for (int p = 0; p < 4; ++p) {
    const auto iv = owned_interval(DistKind::kBlock, p, 10, 4);
    for (std::int64_t j = 0; j < 10; ++j)
      EXPECT_EQ(iv.contains(j), owner_of(DistKind::kBlock, j, 10, 4) == p);
  }
}

TEST(Distribution, CyclicOwnership) {
  for (int p = 0; p < 3; ++p) {
    const auto iv = owned_interval(DistKind::kCyclic, p, 11, 3);
    for (std::int64_t j = 0; j < 11; ++j)
      EXPECT_EQ(iv.contains(j), owner_of(DistKind::kCyclic, j, 11, 3) == p);
  }
}

TEST(Distribution, OwnershipPartitionProperty) {
  // Every index owned by exactly one processor, both kinds, many shapes.
  for (DistKind kind : {DistKind::kBlock, DistKind::kCyclic}) {
    for (int np : {1, 2, 3, 5, 8}) {
      for (std::int64_t n : {1, 7, 16, 33}) {
        for (std::int64_t j = 0; j < n; ++j) {
          int owners = 0;
          for (int p = 0; p < np; ++p)
            if (owned_interval(kind, p, n, np).contains(j)) ++owners;
          EXPECT_EQ(owners, 1) << to_string(kind) << " np=" << np
                               << " n=" << n << " j=" << j;
        }
      }
    }
  }
}

TEST(Layout, ColumnMajorAddressing) {
  ArrayLayout a{"x", 4096, {8, 5}, 8};
  EXPECT_EQ(a.elements(), 40);
  EXPECT_EQ(a.linear({0, 0}), 0);
  EXPECT_EQ(a.linear({1, 0}), 1);
  EXPECT_EQ(a.linear({0, 1}), 8);
  EXPECT_EQ(a.addr_of({2, 3}), 4096 + (2 + 3 * 8) * 8);
}

TEST(Layout, LinearizeMergesFullColumns) {
  ArrayLayout a{"x", 0, {8, 5}, 8};
  // Full columns 1..3: one contiguous run.
  const auto runs =
      linearize(a, ConcreteSection{{{0, 7, 1}, {1, 3, 1}}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].addr, 8u * 8u);
  EXPECT_EQ(runs[0].len, 3u * 8u * 8u);
}

TEST(Layout, LinearizePartialColumns) {
  ArrayLayout a{"x", 0, {8, 5}, 8};
  // Rows 2..5 of columns 1..2: two runs.
  const auto runs =
      linearize(a, ConcreteSection{{{2, 5, 1}, {1, 2, 1}}});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (hpf::Run{(2 + 8) * 8, 4 * 8}));
  EXPECT_EQ(runs[1], (hpf::Run{(2 + 16) * 8, 4 * 8}));
  EXPECT_EQ(run_bytes(runs), 64u);
}

TEST(Layout, Linearize3D) {
  ArrayLayout a{"x", 0, {4, 4, 3}, 8};
  // Full planes k=1..2 merge into one run.
  const auto runs = linearize(
      a, ConcreteSection{{{0, 3, 1}, {0, 3, 1}, {1, 2, 1}}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].addr, 16u * 8u);
  EXPECT_EQ(runs[0].len, 2u * 16u * 8u);
}

TEST(Layout, BlockAlignInnerShrinks) {
  // Run [100, 612) with 128B blocks -> aligned [128, 512).
  const auto out = block_align_inner({hpf::Run{100, 512}}, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].addr, 128u);
  EXPECT_EQ(out[0].len, 384u);
}

TEST(Layout, BlockAlignInnerDropsSmallRuns) {
  // A run smaller than a block that does not cover one vanishes (the edge
  // case the paper leaves to the default protocol).
  EXPECT_TRUE(block_align_inner({hpf::Run{100, 100}}, 128).empty());
  // Exactly one block survives.
  const auto out = block_align_inner({hpf::Run{128, 128}}, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (hpf::Run{128, 128}));
}

TEST(Layout, BlockAlignInnerEmptyAfterAlignment) {
  // Crosses a block boundary yet contains no full block: [10, 210) touches
  // blocks 0 and 1 but covers neither — everything stays with the default
  // protocol (the trimmed-edge case the inspector's schedules rely on).
  EXPECT_TRUE(block_align_inner({hpf::Run{10, 200}}, 128).empty());
}

TEST(Layout, BlockAlignInnerSingleBlockFromMidBlockStart) {
  // [120, 260) contains exactly block 1 ([128, 256)).
  const auto out = block_align_inner({hpf::Run{120, 140}}, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (hpf::Run{128, 128}));
}

TEST(Layout, BlockAlignInnerMidBlockStartLongRun) {
  // [100, 1100): first full block starts at 128, last ends at 1024 — both
  // partial edges trimmed, interior kept as one run.
  const auto out = block_align_inner({hpf::Run{100, 1000}}, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].addr, 128u);
  EXPECT_EQ(out[0].len, 896u);
}

TEST(Layout, BlockAlignInnerPropertyRandom) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t bs = std::size_t{1} << (4 + rng() % 4);  // 16..128
    const hpf::Run r{rng() % 1000, rng() % 2000};
    const auto out = block_align_inner({r}, bs);
    for (const auto& o : out) {
      EXPECT_EQ(o.addr % bs, 0u);
      EXPECT_EQ(o.len % bs, 0u);
      EXPECT_GE(o.addr, r.addr);
      EXPECT_LE(o.addr + o.len, r.addr + r.len);
    }
    // Maximality: one more block on either side would overflow the run.
    if (!out.empty()) {
      EXPECT_LT(out[0].addr, r.addr + bs);
      EXPECT_GT(out[0].addr + out[0].len + bs, r.addr + r.len);
    } else {
      EXPECT_LT(r.len, 2 * bs);  // can only fail to fit if small
    }
  }
}

}  // namespace
}  // namespace fgdsm::hpf
