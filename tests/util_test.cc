#include <gtest/gtest.h>

#include "src/util/assert.h"
#include "src/util/options.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace fgdsm {
namespace {

TEST(Assert, ThrowsWithMessage) {
  EXPECT_THROW(FGDSM_ASSERT(1 == 2), AssertionError);
  try {
    FGDSM_ASSERT_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Assert, PassesSilently) {
  FGDSM_ASSERT(2 + 2 == 4);
  FGDSM_ASSERT_MSG(true, "never evaluated");
}

TEST(Stats, NodeStatsAccumulate) {
  util::NodeStats a, b;
  a.read_misses = 3;
  a.compute_ns = 100;
  a.miss_ns = 10;
  a.sync_ns = 5;
  b.read_misses = 2;
  b.write_misses = 7;
  b.ccc_ns = 4;
  a += b;
  EXPECT_EQ(a.read_misses, 5u);
  EXPECT_EQ(a.write_misses, 7u);
  EXPECT_EQ(a.total_misses(), 12u);
  EXPECT_EQ(a.comm_ns(), 10 + 5 + 4);
}

TEST(Stats, RunStatsAverages) {
  util::RunStats rs(4);
  for (int i = 0; i < 4; ++i) {
    rs.node[i].read_misses = 10;
    rs.node[i].compute_ns = 1000;
    rs.node[i].miss_ns = 100;
  }
  EXPECT_DOUBLE_EQ(rs.avg_misses_per_node(), 10.0);
  EXPECT_DOUBLE_EQ(rs.avg_compute_ns_per_node(), 1000.0);
  EXPECT_DOUBLE_EQ(rs.avg_comm_ns_per_node(), 100.0);
}

TEST(Stats, PercentReduction) {
  EXPECT_DOUBLE_EQ(util::percent_reduction(100.0, 25.0), 75.0);
  EXPECT_DOUBLE_EQ(util::percent_reduction(0.0, 25.0), 0.0);
}

TEST(Stats, Formatting) {
  EXPECT_EQ(util::format_ns(1'500'000'000), "1.500 s");
  EXPECT_EQ(util::format_ns(2'500'000), "2.50 ms");
  EXPECT_EQ(util::format_ns(42'000), "42.00 us");
  EXPECT_EQ(util::format_ns(999), "999 ns");
  EXPECT_EQ(util::format_count(293'800), "293.8K");
  EXPECT_EQ(util::format_count(12'000'000), "12.0M");
  EXPECT_EQ(util::format_count(123), "123");
}

TEST(Table, FormatsAligned) {
  util::Table t({"app", "time"});
  t.add_row({"jacobi", "1.0"});
  t.add_row({"pde", "22.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| app    | time |"), std::string::npos);
  EXPECT_NE(s.find("| jacobi | 1.0  |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(Options, ParsesForms) {
  const char* argv[] = {"prog", "--nodes=8", "--block=128",
                        "--dual", "positional", "--ratio=2.5"};
  util::Options o(6, argv);
  EXPECT_EQ(o.get_int("nodes", 0), 8);
  EXPECT_EQ(o.get_int("block", 0), 128);
  EXPECT_TRUE(o.has("dual"));
  EXPECT_DOUBLE_EQ(o.get_double("ratio", 0.0), 2.5);
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "positional");
  EXPECT_EQ(o.get_int("absent", -7), -7);
}

TEST(Options, TrailingFlagIsBoolean) {
  const char* argv[] = {"prog", "--verbose"};
  util::Options o(2, argv);
  EXPECT_TRUE(o.get_bool("verbose"));
}

}  // namespace
}  // namespace fgdsm
