#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/util/assert.h"

namespace fgdsm::sim {
namespace {

TEST(Engine, ProcessesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, EqualTimestampsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) e.schedule(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) e.schedule(e.now() + 10, chain);
  };
  e.schedule(0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, RejectsSchedulingInPast) {
  Engine e;
  e.schedule(100, [&] {
    EXPECT_THROW(e.schedule(50, [] {}), AssertionError);
  });
  e.run();
}

TEST(Engine, NextEventTime) {
  Engine e;
  EXPECT_EQ(e.next_event_time(), kTimeInfinity);
  e.schedule(42, [] {});
  EXPECT_EQ(e.next_event_time(), 42);
  e.run();
  EXPECT_EQ(e.next_event_time(), kTimeInfinity);
}

TEST(Engine, ExceptionPropagates) {
  Engine e;
  e.schedule(1, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(e.run(), std::runtime_error);
}

}  // namespace
}  // namespace fgdsm::sim
