#include <gtest/gtest.h>

#include "src/core/options.h"
#include "src/core/plan.h"
#include "src/hpf/analysis.h"
#include "src/hpf/ir.h"

namespace fgdsm::core {
namespace {

using hpf::AffineExpr;
using hpf::Bindings;
using hpf::DistKind;
using hpf::LoopVar;

// A jacobi-like ghost-column loop over an n x n BLOCK array.
hpf::Program stencil_prog(std::int64_t n) {
  hpf::Program prog;
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  prog.arrays.push_back({"u", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"v", {N, N}, DistKind::kBlock});
  prog.sizes.set("n", n);
  hpf::ParallelLoop loop;
  loop.name = "sweep";
  loop.dist = LoopVar{"j", AffineExpr(1), N - 2};
  loop.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
  loop.home_array = "v";
  loop.home_sub = J;
  loop.reads = {{"u", {I, J - 1}}, {"u", {I, J + 1}}};
  loop.writes = {{"v", {I, J}}};
  prog.phases.push_back(hpf::Phase::make(std::move(loop)));
  return prog;
}

LayoutMap layouts_for(const hpf::Program& prog, const Bindings& b) {
  LayoutMap m;
  hpf::GAddr base = 0;
  for (const auto& a : prog.arrays) {
    hpf::ArrayLayout lay;
    lay.name = a.name;
    for (const auto& e : a.extents) lay.extents.push_back(e.eval(b));
    lay.base = base;
    base += (lay.bytes() + 4095) / 4096 * 4096;
    m[a.name] = lay;
  }
  return m;
}

Bindings bindings(const hpf::Program& p, int np) {
  Bindings b = p.sizes;
  b.set(hpf::kSymNProcs, np);
  b.set(hpf::kSymProc, 0);
  return b;
}

TEST(Plan, NormalizeRunsMergesAndSorts) {
  const auto out = normalize_runs(
      {{512, 128}, {0, 128}, {128, 128}, {100, 28}, {4096, 64}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (hpf::Run{0, 256}));   // overlapping + adjacent merge
  EXPECT_EQ(out[1], (hpf::Run{512, 128}));  // gap survives
  EXPECT_EQ(out[2], (hpf::Run{4096, 64}));
}

TEST(Plan, SenderAndReceiverAgreeOnBlocks) {
  // Mutual consistency: for every pair of nodes, the bytes node p plans to
  // send to q must equal the bytes q expects (runs are block-aligned, so
  // expected_pre counts whole blocks).
  const auto prog = stencil_prog(64);
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bindings(prog, 4);
  const auto layouts = layouts_for(prog, b);
  constexpr std::size_t kBlock = 128;
  std::vector<CommPlan> plans;
  for (int p = 0; p < 4; ++p)
    plans.push_back(
        build_comm_plan(loop, prog, b, layouts, 4, p, kBlock));
  for (int q = 0; q < 4; ++q) {
    std::int64_t incoming_blocks = 0;
    for (int p = 0; p < 4; ++p)
      for (const auto& s : plans[p].sends)
        if (s.dst == q)
          incoming_blocks += static_cast<std::int64_t>(s.run.len / kBlock);
    EXPECT_EQ(incoming_blocks, plans[q].expected_pre) << "node " << q;
  }
}

TEST(Plan, RunsAreBlockAligned) {
  const auto prog = stencil_prog(50);  // odd size: forced edge trimming
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bindings(prog, 4);
  const auto layouts = layouts_for(prog, b);
  for (int p = 0; p < 4; ++p) {
    const CommPlan plan =
        build_comm_plan(loop, prog, b, layouts, 4, p, 128);
    for (const auto& s : plan.sends) {
      EXPECT_EQ(s.run.addr % 128, 0u);
      EXPECT_EQ(s.run.len % 128, 0u);
    }
    for (const auto& r : plan.recv) {
      EXPECT_EQ(r.addr % 128, 0u);
      EXPECT_EQ(r.len % 128, 0u);
    }
  }
}

TEST(Plan, MessagePassingPlanKeepsExactBytes) {
  const auto prog = stencil_prog(50);
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bindings(prog, 4);
  const auto layouts = layouts_for(prog, b);
  // 50*8 = 400-byte columns: never block-aligned, but MP must still move
  // every element (no protocol backstop).
  std::size_t total_sm = 0, total_mp = 0;
  for (int p = 0; p < 4; ++p) {
    const CommPlan sm = build_comm_plan(loop, prog, b, layouts, 4, p, 128,
                                        /*block_align=*/true);
    const CommPlan mp = build_comm_plan(loop, prog, b, layouts, 4, p, 128,
                                        /*block_align=*/false);
    for (const auto& s : sm.sends) total_sm += s.run.len;
    for (const auto& s : mp.sends) total_mp += s.run.len;
  }
  // 6 ghost columns of 50 doubles.
  EXPECT_EQ(total_mp, 6u * 50u * 8u);
  EXPECT_LT(total_sm, total_mp);  // inner subsets are strictly smaller
  EXPECT_GT(total_sm, 0u);
}

TEST(Plan, EmptyWhenNoCommunication) {
  auto prog = stencil_prog(64);
  prog.phases[0].loop->reads = {{"u", {AffineExpr::sym("i"),
                                       AffineExpr::sym("j")}}};
  const Bindings b = bindings(prog, 4);
  const auto layouts = layouts_for(prog, b);
  const CommPlan plan = build_comm_plan(*prog.phases[0].loop, prog, b,
                                        layouts, 4, 1, 128);
  EXPECT_TRUE(plan.trivial());
  EXPECT_FALSE(plan.any_comm);
}

TEST(Plan, AnyCommIsGlobalDecision) {
  // A node with nothing to send or receive must still see any_comm=true, or
  // the barrier structure would diverge across nodes.
  const auto prog = stencil_prog(64);
  const auto& loop = *prog.phases[0].loop;
  Bindings b = bindings(prog, 8);
  const auto layouts = layouts_for(prog, b);
  int trivial_but_active = 0;
  for (int p = 0; p < 8; ++p) {
    const CommPlan plan =
        build_comm_plan(loop, prog, b, layouts, 8, p, 128);
    EXPECT_TRUE(plan.any_comm) << "node " << p;
    if (plan.trivial()) ++trivial_but_active;
  }
  // Every node participates in this stencil, so none are trivial; the
  // invariant still holds vacuously via any_comm above.
  EXPECT_EQ(trivial_but_active, 0);
}

TEST(Options, LabelsAndPresets) {
  EXPECT_EQ(serial().label(), "serial");
  EXPECT_EQ(shmem_unopt().label(), "sm-unopt");
  EXPECT_EQ(shmem_opt_base().label(), "sm-opt");
  EXPECT_EQ(shmem_opt_bulk().label(), "sm-opt+bulk");
  EXPECT_EQ(shmem_opt_full().label(), "sm-opt+bulk+rtelim");
  EXPECT_EQ(shmem_opt_pre().label(), "sm-opt+bulk+rtelim+pre");
  EXPECT_EQ(msg_passing().label(), "msg-passing");
  EXPECT_TRUE(shmem_opt_full().bulk_transfer);
  EXPECT_TRUE(shmem_opt_full().rt_overhead_elim);
  EXPECT_FALSE(shmem_opt_full().elim_redundant_comm);
  EXPECT_TRUE(shmem_opt_pre().elim_redundant_comm);
}

}  // namespace
}  // namespace fgdsm::core
