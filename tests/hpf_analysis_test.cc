#include <gtest/gtest.h>

#include <algorithm>

#include "src/hpf/analysis.h"
#include "src/hpf/ir.h"

namespace fgdsm::hpf {
namespace {

// A jacobi-like program: u, v are n x n BLOCK-distributed on columns;
// the loop computes v(i,j) = f(u(i,j), u(i±1,j), u(i,j±1)) for interior
// points, owner-computes on v(:,j).
Program jacobi_like(std::int64_t n) {
  Program prog;
  prog.name = "jacobi-like";
  const AffineExpr N = AffineExpr::sym("n");
  prog.arrays.push_back({"u", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"v", {N, N}, DistKind::kBlock});
  prog.sizes.set("n", n);

  ParallelLoop loop;
  loop.name = "sweep";
  loop.dist = LoopVar{"j", AffineExpr(1), N - 2};
  loop.free.push_back(LoopVar{"i", AffineExpr(1), N - 2});
  loop.comp = ParallelLoop::Comp::kOwnerComputes;
  loop.home_array = "v";
  loop.home_sub = AffineExpr::sym("j");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  loop.reads = {{"u", {I, J}},
                {"u", {I - 1, J}},
                {"u", {I + 1, J}},
                {"u", {I, J - 1}},
                {"u", {I, J + 1}}};
  loop.writes = {{"v", {I, J}}};
  prog.phases.push_back(Phase::make(std::move(loop)));
  return prog;
}

Bindings bind(const Program& p, int np, int self = 0) {
  Bindings b = p.sizes;
  b.set(kSymNProcs, np);
  b.set(kSymProc, self);
  return b;
}

TEST(Analysis, LocalItersOwnerComputes) {
  Program prog = jacobi_like(16);
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bind(prog, 4);
  // n=16, np=4: block size 4. Loop range is 1..14.
  EXPECT_EQ(local_iters(loop, prog, b, 4, 0), (ConcreteInterval{1, 3, 1}));
  EXPECT_EQ(local_iters(loop, prog, b, 1, 0),
            (ConcreteInterval{1, 14, 1}));  // single processor runs it all
  EXPECT_EQ(local_iters(loop, prog, b, 4, 1), (ConcreteInterval{4, 7, 1}));
  EXPECT_EQ(local_iters(loop, prog, b, 4, 3), (ConcreteInterval{12, 14, 1}));
}

TEST(Analysis, LocalItersCoverLoopExactlyOnce) {
  Program prog = jacobi_like(33);
  const auto& loop = *prog.phases[0].loop;
  for (int np : {1, 2, 3, 5, 8}) {
    const Bindings b = bind(prog, np);
    for (std::int64_t j = 1; j <= 31; ++j) {
      int count = 0;
      for (int p = 0; p < np; ++p)
        if (local_iters(loop, prog, b, np, p).contains(j)) ++count;
      EXPECT_EQ(count, 1) << "np=" << np << " j=" << j;
    }
  }
}

TEST(Analysis, LocalItersBlockByIndex) {
  Program prog = jacobi_like(16);
  ParallelLoop loop = *prog.phases[0].loop;
  loop.comp = ParallelLoop::Comp::kBlockByIndex;
  const Bindings b = bind(prog, 4);
  // Range 1..14 (14 iters), block 4: [1,4],[5,8],[9,12],[13,14].
  EXPECT_EQ(local_iters(loop, prog, b, 4, 0), (ConcreteInterval{1, 4, 1}));
  EXPECT_EQ(local_iters(loop, prog, b, 4, 3), (ConcreteInterval{13, 14, 1}));
}

TEST(Analysis, RefSectionShifts) {
  Program prog = jacobi_like(16);
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bind(prog, 4);
  const ConcreteInterval iters{4, 7, 1};  // processor 1
  // u(i, j-1) over j in 4..7, i in 1..14 -> rows 1..14, cols 3..6.
  const ConcreteSection s =
      ref_section(loop, loop.reads[3], prog, b, iters);
  EXPECT_EQ(s.dims[0], (ConcreteInterval{1, 14, 1}));
  EXPECT_EQ(s.dims[1], (ConcreteInterval{3, 6, 1}));
}

TEST(Analysis, JacobiGhostColumnTransfers) {
  Program prog = jacobi_like(16);
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bind(prog, 4);
  const auto transfers = analyze_transfers(loop, prog, b, 4);
  // Interior processors receive one ghost column from each neighbor;
  // boundary processors only from their single neighbor:
  // p0 <- p1 (col 4), p1 <- p0 (col 3), p1 <- p2 (col 8), p2 <- p1 (col 7),
  // p2 <- p3 (col 12), p3 <- p2 (col 11). Total 6 transfers, all reads.
  EXPECT_EQ(transfers.size(), 6u);
  auto find = [&](int snd, int rcv) -> const Transfer* {
    for (const auto& t : transfers)
      if (t.sender == snd && t.receiver == rcv) return &t;
    return nullptr;
  };
  ASSERT_NE(find(1, 0), nullptr);
  EXPECT_EQ(find(1, 0)->section.dims[1], (ConcreteInterval{4, 4, 1}));
  ASSERT_NE(find(0, 1), nullptr);
  EXPECT_EQ(find(0, 1)->section.dims[1], (ConcreteInterval{3, 3, 1}));
  ASSERT_NE(find(2, 3), nullptr);
  EXPECT_EQ(find(2, 3)->section.dims[1], (ConcreteInterval{11, 11, 1}));
  EXPECT_EQ(find(3, 0), nullptr);  // no wraparound
  EXPECT_EQ(find(0, 2), nullptr);  // only neighbors
  for (const auto& t : transfers) {
    EXPECT_FALSE(t.for_write);
    EXPECT_EQ(t.array, "u");
    EXPECT_EQ(t.section.dims[0], (ConcreteInterval{1, 14, 1}));
  }
}

TEST(Analysis, NoTransfersWhenAligned) {
  // v(i,j) = u(i,j): no communication at all.
  Program prog = jacobi_like(16);
  ParallelLoop loop = *prog.phases[0].loop;
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  loop.reads = {{"u", {I, J}}, {"u", {I + 1, J}}, {"u", {I - 1, J}}};
  const Bindings b = bind(prog, 4);
  EXPECT_TRUE(analyze_transfers(loop, prog, b, 4).empty());
}

TEST(Analysis, SingleProcessorNeedsNoTransfers) {
  Program prog = jacobi_like(16);
  const auto& loop = *prog.phases[0].loop;
  const Bindings b = bind(prog, 1);
  EXPECT_TRUE(analyze_transfers(loop, prog, b, 1).empty());
}

TEST(Analysis, CyclicBroadcastPattern) {
  // LU-style: every processor reads column k of a CYCLIC matrix; the owner
  // of k must send to everyone else.
  Program prog;
  const AffineExpr N = AffineExpr::sym("n");
  prog.arrays.push_back({"a", {N, N}, DistKind::kCyclic});
  prog.sizes.set("n", 12);
  ParallelLoop loop;
  loop.name = "update";
  loop.dist = LoopVar{"j", AffineExpr::sym("k") + 1, N - 1};
  loop.free.push_back(LoopVar{"i", AffineExpr::sym("k") + 1, N - 1});
  loop.comp = ParallelLoop::Comp::kOwnerComputes;
  loop.home_array = "a";
  loop.home_sub = AffineExpr::sym("j");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  loop.reads = {{"a", {I, J}}, {"a", {I, AffineExpr::sym("k")}}};
  loop.writes = {{"a", {I, J}}};
  Bindings b = prog.sizes;
  b.set("k", 3);
  b.set(kSymNProcs, 4);
  const auto transfers = analyze_transfers(loop, prog, b, 4);
  // Column 3 is owned by processor 3 (cyclic). Readers: every p with
  // non-empty iterations whose sections include column 3 — p != 3.
  int recvs = 0;
  for (const auto& t : transfers) {
    EXPECT_EQ(t.sender, 3);
    EXPECT_EQ(t.section.dims[1], (ConcreteInterval{3, 3, 1}));
    EXPECT_EQ(t.section.dims[0], (ConcreteInterval{4, 11, 1}));
    ++recvs;
  }
  EXPECT_EQ(recvs, 3);
}

TEST(Analysis, NonOwnerWriteProducesWriteTransfer) {
  // Computation distributed by index while data lives elsewhere: processor
  // p writes columns it does not own.
  Program prog = jacobi_like(16);
  ParallelLoop loop = *prog.phases[0].loop;
  loop.comp = ParallelLoop::Comp::kBlockByIndex;
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  loop.reads = {{"u", {I, J}}};
  loop.writes = {{"v", {I, AffineExpr::sym("j") + 1}}};  // shifted write
  const Bindings b = bind(prog, 4);
  const auto transfers = analyze_transfers(loop, prog, b, 4);
  bool saw_write = false;
  for (const auto& t : transfers)
    if (t.for_write) {
      saw_write = true;
      EXPECT_EQ(t.array, "v");
    }
  EXPECT_TRUE(saw_write);
}

TEST(Analysis, TransfersClippedToArrayBounds) {
  // Stencil sections reach outside the array at the global boundary; the
  // analysis must clip them.
  Program prog = jacobi_like(16);
  ParallelLoop loop = *prog.phases[0].loop;
  loop.dist = LoopVar{"j", AffineExpr(0), AffineExpr::sym("n") - 1};
  const Bindings b = bind(prog, 4);
  const auto transfers = analyze_transfers(loop, prog, b, 4);
  for (const auto& t : transfers) {
    EXPECT_GE(t.section.dims[1].lo, 0);
    EXPECT_LE(t.section.dims[1].hi, 15);
  }
}

TEST(Analysis, OverlappingRefsMergeToOneTransfer) {
  // Two reads covering overlapping row ranges of the same ghost column must
  // merge (hulled) rather than duplicate the transfer.
  Program prog = jacobi_like(16);
  ParallelLoop loop = *prog.phases[0].loop;
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  loop.reads = {{"u", {I, J - 1}}, {"u", {I + 1, J - 1}}};
  const Bindings b = bind(prog, 4);
  const auto transfers = analyze_transfers(loop, prog, b, 4);
  int p1_to_p2 = 0;
  for (const auto& t : transfers)
    if (t.sender == 1 && t.receiver == 2) {
      ++p1_to_p2;
      EXPECT_EQ(t.section.dims[0], (ConcreteInterval{1, 15, 1}));  // hull
    }
  EXPECT_EQ(p1_to_p2, 1);
}

}  // namespace
}  // namespace fgdsm::hpf
