// Scaling regression tests: the properties that let one simulation grow to
// 64/256/1024 nodes.
//   - the stall-watchdog default budget scales with node count and
//     collective depth (2e9 ns is the 8-node calibration, not a constant);
//   - --nodes is guarded: the config layer rejects counts the index/bitmask
//     arithmetic was never validated for;
//   - per-link channel state is resident only for links that carried
//     traffic (above ReliableChannel::kFlatLinkNodes it is lazily
//     allocated; a 256-node channel with three active links holds three
//     link books, not 65536);
//   - the directory's SharerSet keeps the historic one-word fast path for
//     nodes 0-63 and spills above it without changing iteration order;
//   - whole-application runs at 64 and 256 nodes are bit-identical across
//     --sim-threads={1,4} and host-parallel batch execution, fault-free and
//     under chaos (the determinism contract does not erode with scale).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/proto/sharer_set.h"
#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/network.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/tempest/config.h"
#include "src/util/assert.h"

namespace fgdsm {
namespace {

using tempest::Collectives;

// ---- Watchdog default scaling ----

TEST(WatchdogDefault, PaperScaleKeepsTheCalibratedBudget) {
  // The 2e9 figure was calibrated for 8-node chaos runs; it must not move
  // for existing configurations.
  for (int n : {1, 2, 4, 8})
    for (Collectives t : {Collectives::kFlat, Collectives::kBinary,
                          Collectives::kBinomial, Collectives::kTwoLevel})
      EXPECT_EQ(tempest::default_watchdog_ns(n, t), 2'000'000'000)
          << n << " " << tempest::to_string(t);
}

TEST(WatchdogDefault, FlatGrowsLinearlyTreesGrowLogarithmically) {
  // Flat: node 0 handles all n arrivals serially, so the budget follows
  // n/8. Trees: the critical path is the collective depth.
  EXPECT_EQ(tempest::default_watchdog_ns(64, Collectives::kFlat),
            8 * 2'000'000'000LL);
  EXPECT_EQ(tempest::default_watchdog_ns(1024, Collectives::kFlat),
            128 * 2'000'000'000LL);
  EXPECT_EQ(tempest::default_watchdog_ns(64, Collectives::kBinomial),
            4 * 2'000'000'000LL);  // ratio 8 -> depth 3 -> (1+3) * base
  EXPECT_EQ(tempest::default_watchdog_ns(1024, Collectives::kBinomial),
            8 * 2'000'000'000LL);  // ratio 128 -> depth 7 -> (1+7) * base
  // At large n a tree budget must undercut the flat budget — that gap is
  // the point of the hierarchical collectives.
  EXPECT_LT(tempest::default_watchdog_ns(1024, Collectives::kBinary),
            tempest::default_watchdog_ns(1024, Collectives::kFlat));
}

TEST(WatchdogDefault, MonotonicInNodeCount) {
  for (Collectives t : {Collectives::kFlat, Collectives::kBinomial}) {
    sim::Time prev = 0;
    for (int n : {1, 8, 9, 64, 256, 1024, 4096, tempest::kMaxNodes}) {
      const sim::Time w = tempest::default_watchdog_ns(n, t);
      EXPECT_GE(w, prev) << n << " " << tempest::to_string(t);
      prev = w;
    }
  }
}

// ---- Node-count guard ----

TEST(NodesGuard, ValidatesUpToMaxAndRejectsAbove) {
  tempest::ClusterConfig ok;
  ok.nnodes = tempest::kMaxNodes;
  EXPECT_NO_THROW(ok.validate());

  tempest::ClusterConfig bad;
  bad.nnodes = tempest::kMaxNodes + 1;
  try {
    bad.validate();
    FAIL() << "validate() accepted nnodes above kMaxNodes";
  } catch (const AssertionError& e) {
    // The message must name the flag and the limit — it surfaces to users.
    EXPECT_NE(std::string(e.what()).find("--nodes"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(std::to_string(tempest::kMaxNodes)),
              std::string::npos);
  }
}

// ---- Lazy channel link state ----

struct ChannelHarness {
  sim::CostModel costs;
  sim::Engine engine;
  sim::Network net;
  std::unique_ptr<sim::ReliableChannel> channel;
  int delivered = 0;

  explicit ChannelHarness(int nnodes) : net(engine, costs, nnodes) {
    sim::ChannelConfig ch;
    ch.ack_type = 999;
    channel = std::make_unique<sim::ReliableChannel>(engine, net, nnodes, ch);
    for (int i = 0; i < nnodes; ++i)
      channel->attach(i, [this](sim::Message&&, sim::Time) { ++delivered; });
  }

  void send(int src, int dst) {
    sim::Message m;
    m.src = src;
    m.dst = dst;
    m.type = 7;
    channel->send(engine.now(), std::move(m));
  }
};

TEST(LazyLinkState, IdleLinksAllocateNothingAt256Nodes) {
  ChannelHarness h(256);
  // 256 > kFlatLinkNodes, so construction must not materialize any of the
  // 65536 per-link books.
  ASSERT_GT(256, sim::ReliableChannel::kFlatLinkNodes);
  EXPECT_EQ(h.channel->resident_links(), 0u);

  // Traffic on three directed links; everything else stays idle.
  h.send(3, 7);
  h.send(7, 3);
  h.send(200, 41);
  h.engine.run();
  EXPECT_EQ(h.delivered, 3);
  // Resident state covers exactly the trafficked links (the 7->3 reply
  // shares the 3<->7 pair's books; pure acks ride existing links).
  EXPECT_GE(h.channel->resident_links(), 2u);
  EXPECT_LE(h.channel->resident_links(), 4u);
}

TEST(LazyLinkState, FlatPathCountsOnlyTraffickedLinks) {
  ChannelHarness h(8);  // <= kFlatLinkNodes: historic flat vectors
  EXPECT_EQ(h.channel->resident_links(), 0u);
  h.send(1, 2);
  h.engine.run();
  EXPECT_EQ(h.delivered, 1);
  EXPECT_GE(h.channel->resident_links(), 1u);
  EXPECT_LE(h.channel->resident_links(), 2u);
}

TEST(LazyLinkState, LazyLinksInheritInitialSeq) {
  ChannelHarness h(100);
  h.channel->set_initial_seq(0xFFFF0000u);
  h.send(90, 10);
  h.engine.run();
  EXPECT_EQ(h.delivered, 1);
  EXPECT_EQ(h.channel->resident_links(), 1u);
}

// ---- SharerSet across the one-word boundary ----

TEST(SharerSet, InlineWordBelow64AndSpillAbove) {
  proto::SharerSet s;
  s.add(0);
  s.add(63);
  EXPECT_EQ(s.low64(), (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(s.count(), 2);
  s.add(64);
  s.add(1023);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(1023));
  EXPECT_FALSE(s.contains(512));
  s.remove(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 3);

  // Ascending iteration order — the invalidation fan-out depends on it.
  std::vector<int> seen;
  s.for_each([&](int n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<int>{0, 63, 1023}));

  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_FALSE(s.contains(1023));
}

// ---- Whole-application determinism at 64 and 256 nodes ----

exec::RunConfig cfg(int nodes, Collectives topo, int sim_threads,
                    bool faults) {
  exec::RunConfig c;
  c.cluster.nnodes = nodes;
  c.cluster.block_size = 128;
  c.cluster.dual_cpu = true;
  c.cluster.collectives = topo;
  c.cluster.sim_threads = sim_threads;
  c.opt = core::shmem_opt_full();
  c.gather_arrays = false;
  if (faults) {
    std::string err;
    c.cluster.faults = sim::FaultConfig::parse(
        "drop=0.01,dup=0.002,delay=0.05,reorder=0.01,seed=1", &err);
    EXPECT_TRUE(err.empty()) << err;
    c.cluster.watchdog_ns = tempest::default_watchdog_ns(nodes, topo);
  }
  return c;
}

void expect_identical(const exec::RunResult& a, const exec::RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns) << label;
  EXPECT_EQ(a.scalars, b.scalars) << label;
  ASSERT_EQ(a.stats.node.size(), b.stats.node.size()) << label;
  for (std::size_t i = 0; i < a.stats.node.size(); ++i) {
    EXPECT_EQ(a.stats.node[i].total_misses(), b.stats.node[i].total_misses())
        << label << " node " << i;
    EXPECT_EQ(a.stats.node[i].messages_sent, b.stats.node[i].messages_sent)
        << label << " node " << i;
    EXPECT_EQ(a.stats.node[i].bytes_sent, b.stats.node[i].bytes_sent)
        << label << " node " << i;
    EXPECT_EQ(a.stats.node[i].sync_ns, b.stats.node[i].sync_ns)
        << label << " node " << i;
  }
}

TEST(ScaleDeterminism, SixtyFourNodesAcrossSimThreadsJobsAndChaos) {
  const auto prog = apps::jacobi(128, 3);
  for (const Collectives topo :
       {Collectives::kBinomial, Collectives::kTwoLevel}) {
    const std::string t = tempest::to_string(topo);
    const exec::RunResult st1 = exec::run(prog, cfg(64, topo, 1, false));
    const exec::RunResult st4 = exec::run(prog, cfg(64, topo, 4, false));
    expect_identical(st1, st4, t + " sim-threads 1 vs 4");

    // Chaos: timing may move, results may not — and the chaos run itself is
    // bit-identical across engine worker counts.
    const exec::RunResult ch1 = exec::run(prog, cfg(64, topo, 1, true));
    const exec::RunResult ch4 = exec::run(prog, cfg(64, topo, 4, true));
    expect_identical(ch1, ch4, t + " chaos sim-threads 1 vs 4");
    EXPECT_EQ(st1.scalars, ch1.scalars) << t << " chaos changed results";

    // Host-parallel batch execution reproduces the sequential results.
    std::vector<exec::ExperimentSpec> specs(2);
    specs[0].program = &prog;
    specs[0].config = cfg(64, topo, 1, false);
    specs[1].program = &prog;
    specs[1].config = cfg(64, topo, 1, true);
    const std::vector<exec::RunResult> batch =
        exec::BatchRunner(4).run_all(specs);
    ASSERT_EQ(batch.size(), 2u);
    expect_identical(st1, batch[0], t + " jobs=4 fault-free");
    expect_identical(ch1, batch[1], t + " jobs=4 chaos");
  }
}

TEST(ScaleDeterminism, TwoFiftySixNodesAcrossSimThreadsAndChaos) {
  const auto prog = apps::jacobi(256, 2);
  const Collectives topo = Collectives::kBinomial;
  const exec::RunResult st1 = exec::run(prog, cfg(256, topo, 1, false));
  const exec::RunResult st4 = exec::run(prog, cfg(256, topo, 4, false));
  expect_identical(st1, st4, "256n sim-threads 1 vs 4");

  const exec::RunResult ch1 = exec::run(prog, cfg(256, topo, 1, true));
  const exec::RunResult ch4 = exec::run(prog, cfg(256, topo, 4, true));
  expect_identical(ch1, ch4, "256n chaos sim-threads 1 vs 4");
  EXPECT_EQ(st1.scalars, ch1.scalars) << "256n chaos changed results";
}

}  // namespace
}  // namespace fgdsm
