#include <gtest/gtest.h>

#include <cstring>

#include "src/mp/runtime.h"
#include "src/tempest/cluster.h"

namespace fgdsm::mp {
namespace {

using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::Node;

ClusterConfig cfg(int nnodes) {
  ClusterConfig c;
  c.nnodes = nnodes;
  return c;
}

TEST(MpRuntime, MovesBytesToSameAddress) {
  Cluster c(cfg(2));
  MpRuntime mp(c);
  const tempest::GAddr a = c.allocate("buf", 4096);
  double got = 0;
  c.run([&](Node& n, sim::Task& t) {
    mp.advance_epoch(n, t);
    if (n.id() == 0) {
      double v = 3.75;
      std::memcpy(n.mem(a + 64), &v, 8);
      mp.send(n, t, a + 64, 8, 1, 16384);
    } else {
      mp.recv(n, t, 8);
      std::memcpy(&got, n.mem(a + 64), 8);
    }
  });
  EXPECT_DOUBLE_EQ(got, 3.75);
}

TEST(MpRuntime, SplitsByMaxPayload) {
  Cluster c(cfg(2));
  MpRuntime mp(c);
  const tempest::GAddr a = c.allocate("buf", 8192);
  auto rs = c.run([&](Node& n, sim::Task& t) {
    mp.advance_epoch(n, t);
    if (n.id() == 0)
      mp.send(n, t, a, 4096, 1, /*max_payload=*/1024);
    else
      mp.recv(n, t, 4096);
  });
  EXPECT_EQ(rs.node[0].messages_sent, 4u);
}

TEST(MpRuntime, EarlyEpochDataIsStashedNotApplied) {
  // A fast sender two epochs ahead must not clobber the slow receiver's
  // current-epoch view of the same address.
  Cluster c(cfg(2));
  MpRuntime mp(c);
  const tempest::GAddr a = c.allocate("buf", 4096);
  double seen_epoch1 = 0, seen_epoch2 = 0;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      // Epoch 1: send value 1; epoch 2: send value 2 to the SAME address,
      // immediately (no barriers in the MP backend).
      mp.advance_epoch(n, t);
      double v = 1.0;
      std::memcpy(n.mem(a), &v, 8);
      mp.send(n, t, a, 8, 1, 16384);
      mp.advance_epoch(n, t);
      v = 2.0;
      std::memcpy(n.mem(a), &v, 8);
      mp.send(n, t, a, 8, 1, 16384);
    } else {
      // Receiver is slow to enter epoch 1.
      t.charge(5 * sim::kMs);
      mp.advance_epoch(n, t);
      mp.recv(n, t, 8);
      std::memcpy(&seen_epoch1, n.mem(a), 8);
      mp.advance_epoch(n, t);
      mp.recv(n, t, 8);
      std::memcpy(&seen_epoch2, n.mem(a), 8);
    }
  });
  EXPECT_DOUBLE_EQ(seen_epoch1, 1.0);  // epoch-2 payload stashed, not applied
  EXPECT_DOUBLE_EQ(seen_epoch2, 2.0);
}

TEST(MpRuntime, ManySendersCountTogether) {
  Cluster c(cfg(4));
  MpRuntime mp(c);
  const tempest::GAddr a = c.allocate("buf", 4096);
  double sum = 0;
  c.run([&](Node& n, sim::Task& t) {
    mp.advance_epoch(n, t);
    if (n.id() != 3) {
      double v = n.id() + 1;
      std::memcpy(n.mem(a + 8 * n.id()), &v, 8);
      mp.send(n, t, a + 8 * n.id(), 8, 3, 16384);
    } else {
      mp.recv(n, t, 24);  // 3 senders x 8 bytes
      for (int i = 0; i < 3; ++i) {
        double v;
        std::memcpy(&v, n.mem(a + 8 * i), 8);
        sum += v;
      }
    }
  });
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(MpRuntime, PerMessageOverheadCharged) {
  Cluster c(cfg(2));
  MpRuntime mp(c);
  const tempest::GAddr a = c.allocate("buf", 65536);
  sim::Time send_cost = 0;
  c.run([&](Node& n, sim::Task& t) {
    mp.advance_epoch(n, t);
    if (n.id() == 0) {
      const sim::Time t0 = t.now();
      mp.send(n, t, a, 8192, 1, /*max_payload=*/1024);  // 8 messages
      send_cost = t.now() - t0;
    } else {
      mp.recv(n, t, 8192);
    }
  });
  EXPECT_GE(send_cost, 8 * c.costs().mp_msg_overhead);
}

}  // namespace
}  // namespace fgdsm::mp
