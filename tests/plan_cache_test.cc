// Equivalence of the per-node communication-plan cache (core::PlanCache)
// with fresh analysis: a cached CommPlan must equal a freshly built one in
// every schedule, count, and flag; the cache key must miss exactly when a
// referenced symbol changes; and the executor must produce bit-identical
// runs with the cache on or off while counting hits in util::RunStats.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/core/plan.h"
#include "src/core/plan_cache.h"
#include "src/exec/executor.h"
#include "src/hpf/analysis.h"
#include "src/hpf/ir.h"

namespace fgdsm::core {
namespace {

// Collect every ParallelLoop in the program (descending into time loops)
// and bind each time-loop counter to 0 so loop structure is evaluable.
void collect_loops(const std::vector<hpf::Phase>& phases,
                   std::vector<const hpf::ParallelLoop*>& out,
                   hpf::Bindings& b) {
  for (const auto& p : phases) {
    switch (p.kind) {
      case hpf::Phase::Kind::kParallelLoop:
        out.push_back(p.loop.get());
        break;
      case hpf::Phase::Kind::kTimeLoop:
        b.set(p.time->counter, 0);
        collect_loops(p.time->phases, out, b);
        break;
      case hpf::Phase::Kind::kScalar:
        break;
    }
  }
}

// Standalone layouts with the same packing rule the executor uses
// (block-aligned consecutive allocations); any consistent bases work as
// long as cache and fresh paths share them.
LayoutMap make_layouts(const hpf::Program& prog, const hpf::Bindings& b,
                       std::size_t block) {
  LayoutMap m;
  hpf::GAddr base = 0;
  for (const auto& a : prog.arrays) {
    hpf::ArrayLayout lay;
    lay.name = a.name;
    for (const auto& e : a.extents) lay.extents.push_back(e.eval(b));
    lay.elem = 8;
    lay.base = base;
    m[a.name] = lay;
    base += ((lay.bytes() + block - 1) / block) * block;
  }
  return m;
}

hpf::Bindings base_bindings(const hpf::Program& prog, int np) {
  hpf::Bindings b = prog.sizes;
  b.set(hpf::kSymNProcs, np);
  b.set(hpf::kSymProc, 0);
  return b;
}

TEST(PlanCache, CachedPlanEqualsFreshBuild) {
  constexpr int kNp = 4;
  constexpr std::size_t kBlock = 128;
  for (const hpf::Program& prog :
       {apps::jacobi(96, 4), apps::pde(48, 2), apps::grav(32, 2)}) {
    hpf::Bindings b = base_bindings(prog, kNp);
    std::vector<const hpf::ParallelLoop*> loops;
    collect_loops(prog.phases, loops, b);
    ASSERT_FALSE(loops.empty()) << prog.name;
    const LayoutMap layouts = make_layouts(prog, b, kBlock);

    for (bool align : {true, false}) {
      for (int me = 0; me < kNp; ++me) {
        PlanCache cache;
        for (const hpf::ParallelLoop* loop : loops) {
          // First visit must miss; populate exactly as the executor does.
          ASSERT_EQ(cache.lookup(*loop, prog, b), nullptr)
              << prog.name << "/" << loop->name;
          auto transfers = hpf::analyze_transfers(*loop, prog, b, kNp);
          CommPlan fresh =
              plan_from_transfers(transfers, layouts, me, kBlock, align);
          cache.insert(*loop, prog, b, transfers, fresh);

          // Second visit: hit, and the cached plan is structurally equal to
          // a from-scratch build_comm_plan (schedules, counts, flags — the
          // full CommPlan operator==).
          const PlanCache::Entry* e = cache.lookup(*loop, prog, b);
          ASSERT_NE(e, nullptr) << prog.name << "/" << loop->name;
          EXPECT_EQ(e->plan, fresh) << prog.name << "/" << loop->name;
          EXPECT_EQ(e->plan, build_comm_plan(*loop, prog, b, layouts, kNp, me,
                                             kBlock, align))
              << prog.name << "/" << loop->name << " me=" << me
              << " align=" << align;
          EXPECT_EQ(e->transfers.size(), transfers.size());
        }
        EXPECT_EQ(cache.misses(), loops.size());
        EXPECT_EQ(cache.hits(), loops.size());
      }
    }
  }
}

TEST(PlanCache, KeySymbolChangeMissesUnrelatedChangeHits) {
  constexpr int kNp = 4;
  const hpf::Program prog = apps::jacobi(96, 4);
  hpf::Bindings b = base_bindings(prog, kNp);
  std::vector<const hpf::ParallelLoop*> loops;
  collect_loops(prog.phases, loops, b);
  const hpf::ParallelLoop& loop = *loops.front();

  const std::vector<std::string> keys = plan_key_symbols(loop, prog);
  ASSERT_FALSE(keys.empty());  // jacobi bounds/extents reference the size
  const std::string& key_sym = keys.front();

  const LayoutMap layouts = make_layouts(prog, b, 128);
  PlanCache cache;
  auto transfers = hpf::analyze_transfers(loop, prog, b, kNp);
  CommPlan plan = plan_from_transfers(transfers, layouts, 0, 128, true);
  cache.insert(loop, prog, b, transfers, plan);
  ASSERT_NE(cache.lookup(loop, prog, b), nullptr);

  // Changing a symbol the loop never references must not invalidate.
  hpf::Bindings unrelated = b;
  unrelated.set("$some_unreferenced_symbol", 42);
  EXPECT_NE(cache.lookup(loop, prog, unrelated), nullptr);

  // Changing a referenced symbol must miss...
  hpf::Bindings changed = b;
  changed.set(key_sym, b.get(key_sym) + 8);
  EXPECT_EQ(cache.lookup(loop, prog, changed), nullptr);

  // ...and re-inserting under the new key serves the new value, not stale.
  auto transfers2 = hpf::analyze_transfers(loop, prog, changed, kNp);
  const LayoutMap layouts2 = make_layouts(prog, changed, 128);
  CommPlan plan2 = plan_from_transfers(transfers2, layouts2, 0, 128, true);
  cache.insert(loop, prog, changed, transfers2, plan2);
  const PlanCache::Entry* e = cache.lookup(loop, prog, changed);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->plan, plan2);
  // The old key is gone (single-entry per loop): original bindings miss now.
  EXPECT_EQ(cache.lookup(loop, prog, b), nullptr);
}

TEST(PlanCache, GivesUpOnLoopsThatNeverHit) {
  // LU-style loops key on the time counter and miss every visit; after
  // kGiveUpAfter consecutive misses the cache abandons the loop (frees the
  // entry, stops storing) but keeps counting misses.
  constexpr int kNp = 4;
  const hpf::Program prog = apps::jacobi(96, 4);
  hpf::Bindings b = base_bindings(prog, kNp);
  std::vector<const hpf::ParallelLoop*> loops;
  collect_loops(prog.phases, loops, b);
  const hpf::ParallelLoop& loop = *loops.front();
  const std::string key_sym = plan_key_symbols(loop, prog).front();
  const LayoutMap layouts = make_layouts(prog, b, 128);

  PlanCache cache;
  hpf::Bindings cur = b;
  for (int visit = 0; visit < PlanCache::kGiveUpAfter; ++visit) {
    cur.set(key_sym, b.get(key_sym) + visit);  // new key: always a miss
    ASSERT_EQ(cache.lookup(loop, prog, cur), nullptr);
    if (cache.should_store(loop)) {
      auto transfers = hpf::analyze_transfers(loop, prog, cur, kNp);
      CommPlan plan = plan_from_transfers(transfers, layouts, 0, 128, true);
      cache.insert(loop, prog, cur, std::move(transfers), std::move(plan));
    }
  }
  EXPECT_FALSE(cache.should_store(loop));
  // Even a key that was stored earlier no longer hits: the slot is dead.
  EXPECT_EQ(cache.lookup(loop, prog, cur), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(),
            static_cast<std::uint64_t>(PlanCache::kGiveUpAfter) + 1);
  // Other loops are unaffected.
  EXPECT_TRUE(cache.should_store(*loops.back()));
}

// The caller-supplied extra key (the inspector's index-array write
// versions) participates in the cache key: same extra hits, different
// extra misses, and a lookup with no extra does not alias an entry stored
// with one.
TEST(PlanCache, ExtraKeyParticipatesInKey) {
  constexpr int kNp = 4;
  const hpf::Program prog = apps::jacobi(96, 4);
  hpf::Bindings b = base_bindings(prog, kNp);
  std::vector<const hpf::ParallelLoop*> loops;
  collect_loops(prog.phases, loops, b);
  const hpf::ParallelLoop& loop = *loops.front();
  const LayoutMap layouts = make_layouts(prog, b, 128);

  PlanCache cache;
  auto transfers = hpf::analyze_transfers(loop, prog, b, kNp);
  CommPlan plan = plan_from_transfers(transfers, layouts, 0, 128, true);
  cache.insert(loop, prog, b, transfers, plan, /*extra_key=*/{7});

  const PlanCache::Entry* e = cache.lookup(loop, prog, b, {7});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->plan, plan);
  EXPECT_EQ(cache.lookup(loop, prog, b, {8}), nullptr);   // version bumped
  EXPECT_EQ(cache.lookup(loop, prog, b, {}), nullptr);    // no extra at all
  EXPECT_EQ(cache.lookup(loop, prog, b, {7, 7}), nullptr);  // extra length
  // The stored entry is intact after all those misses.
  ASSERT_NE(cache.lookup(loop, prog, b, {7}), nullptr);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

// The abandonment threshold is configurable (--plan-cache-misses=N): with
// give_up_after(2), two consecutive misses kill the slot; non-positive
// values clamp to 1.
TEST(PlanCache, GiveUpThresholdIsConfigurable) {
  constexpr int kNp = 4;
  const hpf::Program prog = apps::jacobi(96, 4);
  hpf::Bindings b = base_bindings(prog, kNp);
  std::vector<const hpf::ParallelLoop*> loops;
  collect_loops(prog.phases, loops, b);
  const hpf::ParallelLoop& loop = *loops.front();
  const LayoutMap layouts = make_layouts(prog, b, 128);
  auto transfers = hpf::analyze_transfers(loop, prog, b, kNp);
  const CommPlan plan = plan_from_transfers(transfers, layouts, 0, 128, true);

  {
    PlanCache cache;
    cache.set_give_up_after(2);
    EXPECT_EQ(cache.give_up_after(), 2);
    // Drive misses by bumping the extra key each visit (the inspector's
    // index-array version changing every timestep).
    for (std::int64_t v = 0; v < 2; ++v) {
      ASSERT_EQ(cache.lookup(loop, prog, b, {v}), nullptr);
      if (cache.should_store(loop))
        cache.insert(loop, prog, b, transfers, plan, {v});
    }
    EXPECT_FALSE(cache.should_store(loop));
    // The slot is dead: even the most recently stored key misses.
    EXPECT_EQ(cache.lookup(loop, prog, b, {1}), nullptr);
    EXPECT_EQ(cache.hits(), 0u);
    // A hit before the streak completes resets it — fresh cache, default
    // kGiveUpAfter would be 8, but 2 still allows hit-miss-hit patterns.
    PlanCache c2;
    c2.set_give_up_after(2);
    c2.insert(loop, prog, b, transfers, plan, {0});
    ASSERT_EQ(c2.lookup(loop, prog, b, {1}), nullptr);  // one miss
    ASSERT_NE(c2.lookup(loop, prog, b, {0}), nullptr);  // hit resets streak
    ASSERT_EQ(c2.lookup(loop, prog, b, {1}), nullptr);  // one miss again
    EXPECT_TRUE(c2.should_store(loop));                 // still alive
  }
  {
    PlanCache cache;
    cache.set_give_up_after(0);
    EXPECT_EQ(cache.give_up_after(), 1);  // clamps: 0 would never store
    cache.set_give_up_after(-3);
    EXPECT_EQ(cache.give_up_after(), 1);
    ASSERT_EQ(cache.lookup(loop, prog, b, {0}), nullptr);
    EXPECT_FALSE(cache.should_store(loop));  // one miss is the limit
  }
}

// Executor integration: with the cache enabled, iterative apps serve loop
// visits from cache (hits counted in RunStats) and every simulated
// observable is bit-identical to a cache-disabled run.
TEST(PlanCache, ExecutorRunsIdenticalWithAndWithoutCache) {
  for (const hpf::Program& prog : {apps::jacobi(96, 12), apps::pde(48, 6)}) {
    for (const core::Options& base :
         {core::shmem_opt_full(), core::shmem_opt_pre(),
          core::msg_passing()}) {
      exec::RunConfig on;
      on.cluster.nnodes = 4;
      on.opt = base;
      on.opt.plan_cache = true;
      exec::RunConfig off = on;
      off.opt.plan_cache = false;

      const exec::RunResult a = exec::run(prog, on);
      const exec::RunResult b = exec::run(prog, off);
      const std::string label = prog.name + "/" + base.label();

      EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns) << label;
      EXPECT_EQ(a.scalars, b.scalars) << label;
      for (std::size_t i = 0; i < a.stats.node.size(); ++i) {
        EXPECT_EQ(a.stats.node[i].messages_sent, b.stats.node[i].messages_sent)
            << label << " node " << i;
        EXPECT_EQ(a.stats.node[i].bytes_sent, b.stats.node[i].bytes_sent)
            << label << " node " << i;
        EXPECT_EQ(a.stats.node[i].total_misses(),
                  b.stats.node[i].total_misses())
            << label << " node " << i;
        EXPECT_EQ(a.stats.node[i].ccc_runtime_calls,
                  b.stats.node[i].ccc_runtime_calls)
            << label << " node " << i;
        EXPECT_EQ(a.stats.node[i].ccc_calls_elided,
                  b.stats.node[i].ccc_calls_elided)
            << label << " node " << i;
      }

      // Iterative apps revisit the same loops each timestep: the cache must
      // actually engage. Hits only exist on the cached run.
      EXPECT_GT(a.stats.totals().plan_cache_hits, 0u) << label;
      EXPECT_GT(a.stats.totals().plan_cache_hits,
                a.stats.totals().plan_cache_misses)
          << label;
      EXPECT_EQ(b.stats.totals().plan_cache_hits, 0u) << label;
      EXPECT_EQ(b.stats.totals().plan_cache_misses, 0u) << label;
    }
  }
}

}  // namespace
}  // namespace fgdsm::core
