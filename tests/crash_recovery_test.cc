// Fail-stop crashes with checkpoint/rollback recovery, end to end.
//
// The load-bearing properties:
//   - a run that loses a node mid-computation (scheduled or probabilistic
//     crash) detects the death through retry-budget exhaustion, rolls every
//     survivor back to the last barrier checkpoint, reincarnates the dead
//     node, and finishes with results BIT-IDENTICAL to a fault-free run;
//   - the same crash configuration reproduces the identical run (elapsed,
//     every counter) — crashes are counter-mode draws, not RNG state;
//   - checkpointing without crashes is result-passive: it costs simulated
//     time but cannot change any answer;
//   - a crash with checkpointing disabled is an unrecoverable, structured
//     failure: exit 87 naming the dead node, never a hang;
//   - the ReliableChannel detection edge (retry exhaustion, capped RTO
//     backoff) surfaces a structured dead-link diagnostic with the link
//     named and the unacked count — and the backoff cap bounds detection
//     latency to a computable constant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/executor.h"
#include "src/sim/channel.h"
#include "src/sim/cost_model.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/network.h"
#include "src/sim/task.h"

namespace fgdsm {
namespace {

// ---------------------------------------------------------------------------
// Crash spec parsing.

TEST(CrashSpec, ParsesScheduledAndProbabilisticCrashes) {
  std::string err;
  const sim::FaultConfig c =
      sim::FaultConfig::parse("crash=3@1000000,crash=0@2500000,crashp=0.01",
                              &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_TRUE(c.has_crashes());
  ASSERT_EQ(c.crashes.size(), 2u);
  EXPECT_EQ(c.crashes[0].first, 3);
  EXPECT_EQ(c.crashes[0].second, 1000000);
  EXPECT_EQ(c.crashes[1].first, 0);
  EXPECT_EQ(c.crashes[1].second, 2500000);
  EXPECT_DOUBLE_EQ(c.crashp, 0.01);
}

TEST(CrashSpec, TypoGetsLevenshteinSuggestionNotSilence) {
  std::string err;
  const sim::FaultConfig c = sim::FaultConfig::parse("crahsp=0.1", &err);
  EXPECT_FALSE(c.enabled);
  EXPECT_NE(err.find("crahsp"), std::string::npos) << err;
  // Plain Levenshtein ties 'crash' and 'crashp' at distance 2; either is a
  // useful pointer at the crash family.
  EXPECT_NE(err.find("did you mean 'crash"), std::string::npos) << err;
}

TEST(CrashSpec, RejectsMalformedCrashSchedules) {
  std::string err;
  EXPECT_FALSE(sim::FaultConfig::parse("crash=3", &err).enabled);
  EXPECT_FALSE(sim::FaultConfig::parse("crash=@100", &err).enabled);
  EXPECT_FALSE(sim::FaultConfig::parse("crash=x@100", &err).enabled);
  EXPECT_FALSE(sim::FaultConfig::parse("crashp=1.5", &err).enabled);
}

TEST(CrashSpec, CrashDrawsAreDeterministicPerNodeAndEpoch) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.crashp = 0.2;
  cfg.seed = 17;
  const sim::FaultInjector a(cfg, 8, 1000);
  const sim::FaultInjector b(cfg, 8, 1000);
  int fired = 0;
  for (int node = 0; node < 8; ++node)
    for (std::uint64_t e = 1; e <= 50; ++e) {
      EXPECT_EQ(a.crash_at_barrier(node, e), b.crash_at_barrier(node, e));
      fired += a.crash_at_barrier(node, e) ? 1 : 0;
    }
  EXPECT_GT(fired, 0);    // 400 draws at p=.2: zero would be broken
  EXPECT_LT(fired, 400);
}

// ---------------------------------------------------------------------------
// End-to-end crash + recovery.

exec::RunConfig crash_cfg(const std::string& spec, int nodes,
                          int checkpoint_every) {
  exec::RunConfig c;
  c.cluster.nnodes = nodes;
  c.opt = core::shmem_opt_full();
  c.gather_arrays = false;
  c.cluster.checkpoint_every = checkpoint_every;
  if (!spec.empty()) {
    std::string err;
    c.cluster.faults = sim::FaultConfig::parse(spec, &err);
    EXPECT_TRUE(err.empty()) << err;
    c.cluster.watchdog_ns = 5'000'000'000;
  }
  return c;
}

void expect_scalars_identical(const exec::RunResult& a,
                              const exec::RunResult& b) {
  ASSERT_EQ(a.scalars.size(), b.scalars.size());
  for (const auto& [name, v] : a.scalars)
    EXPECT_EQ(v, b.scalars.at(name)) << name;
}

TEST(CrashRecovery, ScheduledCrashRecoversBitIdentically) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunResult clean = exec::run(prog, crash_cfg("", 4, 0));
  // Kill node 2 a third of the way through the fault-free timeline.
  const std::string spec =
      "crash=2@" + std::to_string(clean.stats.elapsed_ns / 3);
  const exec::RunResult rec = exec::run(prog, crash_cfg(spec, 4, 4));

  expect_scalars_identical(clean, rec);

  // The crash and the repair must actually have happened (non-vacuity).
  util::NodeStats t;
  for (const auto& ns : rec.stats.node) t += ns;
  EXPECT_EQ(t.crashes, 1u);
  EXPECT_GT(t.recoveries, 0u);
  EXPECT_GT(t.checkpoints, 0u);
  EXPECT_GT(t.checkpoint_bytes, 0u);
  EXPECT_GT(t.rollback_ns, 0u);
  // Detection + rollback + replay cost simulated time.
  EXPECT_GT(rec.stats.elapsed_ns, clean.stats.elapsed_ns);
}

TEST(CrashRecovery, ProbabilisticCrashesRecoverBitIdentically) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunResult clean = exec::run(prog, crash_cfg("", 4, 0));
  const exec::RunResult rec =
      exec::run(prog, crash_cfg("crashp=0.04,seed=9", 4, 2));

  expect_scalars_identical(clean, rec);
  util::NodeStats t;
  for (const auto& ns : rec.stats.node) t += ns;
  EXPECT_GT(t.crashes, 0u);  // seed 9 must actually fire; else vacuous
  EXPECT_GT(t.recoveries, 0u);
}

TEST(CrashRecovery, SameCrashConfigIsBitIdenticalAcrossRuns) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunConfig cfg = crash_cfg("crashp=0.04,seed=9", 4, 2);
  const exec::RunResult a = exec::run(prog, cfg);
  const exec::RunResult b = exec::run(prog, cfg);
  EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns);
  expect_scalars_identical(a, b);
  for (std::size_t i = 0; i < a.stats.node.size(); ++i) {
    EXPECT_EQ(a.stats.node[i].crashes, b.stats.node[i].crashes) << i;
    EXPECT_EQ(a.stats.node[i].recoveries, b.stats.node[i].recoveries) << i;
    EXPECT_EQ(a.stats.node[i].rollback_ns, b.stats.node[i].rollback_ns) << i;
  }
}

TEST(CrashRecovery, CheckpointingWithoutCrashesIsResultPassive) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunResult base = exec::run(prog, crash_cfg("", 4, 0));
  const exec::RunResult ck = exec::run(prog, crash_cfg("", 4, 2));
  expect_scalars_identical(base, ck);
  util::NodeStats t;
  for (const auto& ns : ck.stats.node) t += ns;
  EXPECT_GT(t.checkpoints, 0u);
  EXPECT_EQ(t.crashes, 0u);
  EXPECT_EQ(t.recoveries, 0u);
  // The premium is real but bounded: checkpoint bytes are charged to the
  // cost model, so elapsed grows, monotonically with frequency.
  EXPECT_GE(ck.stats.elapsed_ns, base.stats.elapsed_ns);
}

// cg stresses the state the tag-based capture predicate cannot see: its
// replicated vectors (x, p) bypass access control, so every node's replica
// lives in blocks whose tags stay kInvalid away from the block's home. A
// rollback that restores only tag-visible blocks leaves the doomed
// timeline's `x += alpha*p` in the surviving replicas — the residual
// trajectory reconverges (CG solves the same system) but ||x||^2 does not.
TEST(CrashRecovery, ReplicatedArraysRollBackWithTheRest) {
  const auto prog = apps::cg(64, 128, 60);
  for (const core::Options& opt :
       {core::shmem_opt_full(), core::shmem_unopt()}) {
    exec::RunConfig clean = crash_cfg("", 4, 0);
    clean.opt = opt;
    const exec::RunResult base = exec::run(prog, clean);
    exec::RunConfig cfg = crash_cfg(
        "crash=2@" + std::to_string(base.stats.elapsed_ns / 2), 4, 4);
    cfg.opt = opt;
    const exec::RunResult rec = exec::run(prog, cfg);
    expect_scalars_identical(base, rec);
    util::NodeStats t;
    for (const auto& ns : rec.stats.node) t += ns;
    EXPECT_EQ(t.crashes, 1u);
    EXPECT_GT(t.recoveries, 0u);
  }
}

// In message-passing mode there is no protocol at all: every array's local
// copy is private storage with bootstrap tags, so the checkpoint must
// capture nodes' memory by explicit range, not by tag visibility.
TEST(CrashRecovery, MessagePassingReplaysPrivateMemoryExactly) {
  const auto prog = apps::cg(64, 128, 60);
  exec::RunConfig clean = crash_cfg("", 4, 0);
  clean.opt = core::msg_passing();
  const exec::RunResult base = exec::run(prog, clean);
  exec::RunConfig cfg =
      crash_cfg("crash=2@" + std::to_string(base.stats.elapsed_ns / 2), 4, 4);
  cfg.opt = core::msg_passing();
  const exec::RunResult rec = exec::run(prog, cfg);
  expect_scalars_identical(base, rec);
  util::NodeStats t;
  for (const auto& ns : rec.stats.node) t += ns;
  EXPECT_EQ(t.crashes, 1u);
  EXPECT_GT(t.recoveries, 0u);
}

TEST(CrashRecovery, MessagePassingModeRecoversToo) {
  const auto prog = apps::jacobi(96, 6);
  exec::RunConfig clean = crash_cfg("", 4, 0);
  clean.opt = core::msg_passing();
  const exec::RunResult base = exec::run(prog, clean);
  exec::RunConfig cfg =
      crash_cfg("crash=1@" + std::to_string(base.stats.elapsed_ns / 2), 4, 4);
  cfg.opt = core::msg_passing();
  const exec::RunResult rec = exec::run(prog, cfg);
  expect_scalars_identical(base, rec);
  util::NodeStats t;
  for (const auto& ns : rec.stats.node) t += ns;
  EXPECT_EQ(t.crashes, 1u);
  EXPECT_GT(t.recoveries, 0u);
}

TEST(CrashRecovery, IrregularInspectorExecutorRecoversToo) {
  const auto prog = apps::spmv(512, 8, 4, /*pattern=*/0);
  const exec::RunResult clean = exec::run(prog, crash_cfg("", 4, 0));
  const std::string spec =
      "crash=3@" + std::to_string(clean.stats.elapsed_ns / 2);
  const exec::RunResult rec = exec::run(prog, crash_cfg(spec, 4, 4));
  expect_scalars_identical(clean, rec);
  util::NodeStats t;
  for (const auto& ns : rec.stats.node) t += ns;
  EXPECT_EQ(t.crashes, 1u);
  EXPECT_GT(t.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Unrecoverable: crash with checkpointing disabled.

TEST(CrashRecoveryDeathTest, CrashWithoutCheckpointsExits87NamingTheNode) {
  const auto prog = apps::jacobi(64, 4);
  EXPECT_EXIT(
      {
        try {
          exec::run(prog, crash_cfg("crash=1@200000", 4,
                                    /*checkpoint_every=*/0));
        } catch (const sim::CrashError& e) {
          sim::exit_crash(e);
        } catch (const sim::StallError& e) {
          sim::exit_stall(e);
        }
      },
      ::testing::ExitedWithCode(sim::kCrashExitCode),
      "node 1 crashed with no checkpoint");
}

// ---------------------------------------------------------------------------
// The detection edge: ReliableChannel retry exhaustion and RTO backoff cap.

TEST(ChannelDetection, RetryExhaustionNamesLinkAndUnackedCount) {
  sim::Engine engine;
  sim::CostModel costs;
  sim::Network net(engine, costs, 2);
  sim::ChannelConfig ccfg;
  ccfg.rto_ns = 1000;
  ccfg.max_retries = 3;
  sim::ReliableChannel ch(engine, net, 2, ccfg);
  ch.attach(0, [](sim::Message&&, sim::Time) {});
  ch.attach(1, [](sim::Message&&, sim::Time) {});
  ch.set_down_probe([](int node) { return node == 1; });  // 1 never acks
  // An unfinished task keeps the engine from treating the silence as normal
  // end-of-run ack loss.
  sim::Task blocked(engine, "blocked", [](sim::Task& t) { t.block(); });
  blocked.start();

  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.type = 7;
  ch.send(0, std::move(m));
  try {
    engine.run();
    FAIL() << "a dead peer must exhaust the retry budget";
  } catch (const sim::StallError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget exhausted on link 0->1"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("unacked on link"), std::string::npos) << what;
    EXPECT_NE(what.find("peer node 1 is unresponsive"), std::string::npos)
        << what;
  }
}

TEST(ChannelDetection, BackoffCapBoundsDetectionLatency) {
  sim::Engine engine;
  sim::CostModel costs;
  sim::Network net(engine, costs, 2);
  sim::ChannelConfig ccfg;
  ccfg.rto_ns = 1000;
  ccfg.max_retries = 10;  // well past the cap at shift 6
  sim::ReliableChannel ch(engine, net, 2, ccfg);
  ch.attach(0, [](sim::Message&&, sim::Time) {});
  ch.attach(1, [](sim::Message&&, sim::Time) {});
  ch.set_down_probe([](int node) { return node == 1; });
  sim::Task blocked(engine, "blocked", [](sim::Task& t) { t.block(); });
  blocked.start();

  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.type = 7;
  ch.send(0, std::move(m));
  // Attempt a's timer fires backoff(a) = rto << min(a, kBackoffCapShift)
  // after it is armed; the budget check fails at attempt max_retries. So
  // detection lands at exactly sum_{a=0..max_retries} backoff(a) — uncapped
  // doubling would instead take rto * (2^11 - 1), ~5.3x longer.
  sim::Time expected = 0;
  for (int a = 0; a <= ccfg.max_retries; ++a)
    expected +=
        ccfg.rto_ns << (a < sim::ReliableChannel::kBackoffCapShift
                            ? a
                            : sim::ReliableChannel::kBackoffCapShift);
  try {
    engine.run();
    FAIL() << "a dead peer must exhaust the retry budget";
  } catch (const sim::StallError&) {
    EXPECT_EQ(engine.now(), expected);
  }
}

}  // namespace
}  // namespace fgdsm
