#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <random>
#include <vector>

#include "src/proto/stache.h"
#include "src/tempest/cluster.h"
#include "src/util/assert.h"

namespace fgdsm::proto {
namespace {

using tempest::Access;
using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::GAddr;
using tempest::MsgType;
using tempest::Node;

ClusterConfig cfg(int nnodes, std::size_t block = 64,
                  std::size_t page = 256) {
  ClusterConfig c;
  c.nnodes = nnodes;
  c.block_size = block;
  c.page_size = page;
  return c;
}

// Convenience: a simulated store of one double through the access-check path.
void store(Node& n, sim::Task& t, GAddr a, double v) {
  n.ensure_writable(t, a, 8);
  std::memcpy(n.mem(a), &v, 8);
  n.note_writes(a, 8);
}

double load(Node& n, sim::Task& t, GAddr a) {
  n.ensure_readable(t, a, 8);
  double v;
  std::memcpy(&v, n.mem(a), 8);
  return v;
}

TEST(Stache, ColdReadMissFetchesData) {
  Cluster c(cfg(2));
  Stache proto(c);
  const GAddr a = c.allocate("x", 64);  // page 0 -> home is node 0
  ASSERT_EQ(c.home_of(c.block_of(a)), 0);
  double seen = 0;
  auto rs = c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) store(n, t, a, 42.5);  // home: silent (tag RW)
    n.barrier(t);
    if (n.id() == 1) seen = load(n, t, a);
    n.barrier(t);
  });
  EXPECT_DOUBLE_EQ(seen, 42.5);
  EXPECT_EQ(rs.node[1].read_misses, 1u);
  EXPECT_EQ(rs.node[0].read_misses, 0u);
  EXPECT_EQ(rs.node[0].write_misses, 0u);  // home holds RW at start
}

TEST(Stache, ThreeHopReadRecallsFromOwner) {
  // Owner != home != reader: the full Figure 1(a) chain.
  Cluster c(cfg(4));
  Stache proto(c);
  // Page 1 -> home node 1.
  c.allocate("pad", 256);
  const GAddr a = c.allocate("x", 64);
  ASSERT_EQ(c.home_of(c.block_of(a)), 1);
  double seen = 0;
  int put_data_reqs = 0;
  // Wrap the kPutDataReq handler to count recalls.
  const Cluster::Handler orig = c.handler(MsgType::kPutDataReq);
  c.register_handler(MsgType::kPutDataReq,
                     [&, orig](Node& n, sim::Message& m,
                               tempest::HandlerClock& clk) {
                       ++put_data_reqs;
                       orig(n, m, clk);
                     });
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 2) store(n, t, a, 7.25);  // node 2 becomes exclusive owner
    n.barrier(t);
    if (n.id() == 3) seen = load(n, t, a);
    n.barrier(t);
  });
  EXPECT_DOUBLE_EQ(seen, 7.25);
  EXPECT_EQ(put_data_reqs, 1);
  auto snap = proto.dir_snapshot(c.block_of(a));
  EXPECT_EQ(snap.state, Stache::DirState::kShared);
  EXPECT_FALSE(snap.busy);
}

TEST(Stache, EagerUpgradeDoesNotStall) {
  Cluster c(cfg(2));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("x", 64);  // home node 1
  ASSERT_EQ(c.home_of(c.block_of(a)), 1);
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      (void)load(n, t, a);  // node 0 becomes a sharer (read miss stalls)
      const sim::Time t0 = t.now();
      store(n, t, a, 1.0);  // upgrade must be eager: cost ~ fault + send
      const sim::Time upgrade_cost = t.now() - t0;
      EXPECT_LT(upgrade_cost, c.costs().fault_cost +
                                  c.costs().msg_send_overhead + 2 * sim::kUs);
      EXPECT_EQ(proto.outstanding(0), 1);
      n.barrier(t);  // drains
      EXPECT_EQ(proto.outstanding(0), 0);
    } else {
      n.barrier(t);
    }
  });
  auto snap = proto.dir_snapshot(c.block_of(a));
  EXPECT_EQ(snap.state, Stache::DirState::kExcl);
  EXPECT_EQ(snap.owner, 0);
}

TEST(Stache, ProducerConsumerRepeated) {
  // The paper's motivating pattern: p writes, q reads, in a time-step loop.
  Cluster c(cfg(2));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("x", 64);
  std::vector<double> seen;
  auto rs = c.run([&](Node& n, sim::Task& t) {
    for (int it = 0; it < 5; ++it) {
      if (n.id() == 0) store(n, t, a, 10.0 + it);
      n.barrier(t);
      if (n.id() == 1) seen.push_back(load(n, t, a));
      n.barrier(t);
    }
  });
  ASSERT_EQ(seen.size(), 5u);
  for (int it = 0; it < 5; ++it) EXPECT_DOUBLE_EQ(seen[it], 10.0 + it);
  // Every iteration after the first: reader misses (invalidated) and writer
  // re-upgrades (downgraded by the recall).
  EXPECT_EQ(rs.node[1].read_misses, 5u);
  EXPECT_GE(rs.node[0].write_misses, 4u);
  EXPECT_GE(rs.node[1].invalidations_received, 4u);
}

TEST(Stache, FalseSharingWritersMergeByWord) {
  // Two nodes write disjoint words of the same block in the same epoch; both
  // values must survive (multiple-writer merge via dirty masks).
  Cluster c(cfg(3));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("x", 64);  // words a+0..a+56
  double r0 = 0, r8 = 0;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) store(n, t, a + 0, 111.0);
    if (n.id() == 1) store(n, t, a + 8, 222.0);
    n.barrier(t);
    if (n.id() == 2) {
      r0 = load(n, t, a + 0);
      r8 = load(n, t, a + 8);
    }
    n.barrier(t);
  });
  EXPECT_DOUBLE_EQ(r0, 111.0);
  EXPECT_DOUBLE_EQ(r8, 222.0);
}

TEST(Stache, FalseSharingSurvivorReadsLoserWords) {
  // The *winning* concurrent writer must also observe the loser's words
  // after synchronization (grant fix-up / re-fetch path).
  Cluster c(cfg(2));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("x", 64);
  double got0 = -1, got1 = -1;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) store(n, t, a + 0, 5.0);
    if (n.id() == 1) store(n, t, a + 8, 6.0);
    n.barrier(t);
    if (n.id() == 0) got1 = load(n, t, a + 8);
    if (n.id() == 1) got0 = load(n, t, a + 0);
    n.barrier(t);
  });
  EXPECT_DOUBLE_EQ(got1, 6.0);
  EXPECT_DOUBLE_EQ(got0, 5.0);
}

TEST(Stache, MkWritableFetchesExclusivePipelined) {
  Cluster c(cfg(4));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("arr", 512);  // 8 blocks of 64B
  const tempest::BlockId b0 = c.block_of(a);
  c.run([&](Node& n, sim::Task& t) {
    n.barrier(t);
    if (n.id() == 2)
      proto.mk_writable(n, t, b0, b0 + 7);
    // Pipelined: mk_writable returns before grants; the barrier drains.
    n.barrier(t);
    if (n.id() == 2) {
      for (int i = 0; i < 8; ++i)
        EXPECT_EQ(n.access(b0 + i), Access::kReadWrite);
      EXPECT_EQ(proto.outstanding(2), 0);
    }
    n.barrier(t);
  });
  for (int i = 0; i < 8; ++i) {
    auto snap = proto.dir_snapshot(b0 + i);
    if (c.home_of(b0 + i) == 2) {
      // Node 2 is the home: it held these writable from bootstrap; no
      // transaction was needed and the directory stays Idle.
      EXPECT_EQ(snap.state, Stache::DirState::kIdle);
    } else {
      EXPECT_EQ(snap.state, Stache::DirState::kExcl);
      EXPECT_EQ(snap.owner, 2);
    }
  }
}

TEST(Stache, MkWritableIsNoOpWhenAlreadyWritable) {
  Cluster c(cfg(2));
  Stache proto(c);
  const GAddr a = c.allocate("arr", 256);
  const tempest::BlockId b0 = c.block_of(a);
  auto rs = c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      // Home already holds page 0 writable.
      const std::uint64_t before = n.stats.messages_sent;
      proto.mk_writable(n, t, b0, b0 + 3);
      EXPECT_EQ(n.stats.messages_sent, before);
    }
    n.barrier(t);
  });
  (void)rs;
}

TEST(Stache, ImplicitCallsAreLocal) {
  Cluster c(cfg(2));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("arr", 256);
  const tempest::BlockId b0 = c.block_of(a);
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      const std::uint64_t before = n.stats.messages_sent;
      proto.implicit_writable(n, t, b0, b0 + 3);
      for (int i = 0; i < 4; ++i)
        EXPECT_EQ(n.access(b0 + i), Access::kReadWrite);
      proto.implicit_invalidate(n, t, b0, b0 + 3);
      for (int i = 0; i < 4; ++i)
        EXPECT_EQ(n.access(b0 + i), Access::kInvalid);
      EXPECT_EQ(n.stats.messages_sent, before);  // zero protocol traffic
    }
    n.barrier(t);
  });
}

TEST(Stache, DirectTransferMovesDataWithoutCoherence) {
  // The Figure 1(b) path: owner sends, reader receives; the directory never
  // learns the reader has a copy.
  Cluster c(cfg(2));
  Stache proto(c);
  const GAddr a = c.allocate("arr", 256);  // home node 0
  const tempest::BlockId b0 = c.block_of(a);
  std::vector<double> got(4, 0.0);
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      for (int i = 0; i < 4; ++i) store(n, t, a + 64 * i, 100.0 + i);
      n.barrier(t);  // both prepared
      proto.send_blocks(n, t, a, 256, {1}, /*max_payload=*/64);
      n.barrier(t);
    } else {
      proto.implicit_writable(n, t, b0, b0 + 3);
      n.barrier(t);
      proto.ready_to_recv(n, t, 4);
      for (int i = 0; i < 4; ++i)
        std::memcpy(&got[i], n.mem(a + 64 * i), 8);
      proto.implicit_invalidate(n, t, b0, b0 + 3);
      n.barrier(t);
    }
  });
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(got[i], 100.0 + i);
  for (int i = 0; i < 4; ++i) {
    auto snap = proto.dir_snapshot(b0 + i);
    // Directory believes nothing about node 1 (Idle: home wrote silently).
    EXPECT_EQ(snap.state, Stache::DirState::kIdle);
  }
}

TEST(Stache, BulkTransferCoalescesMessages) {
  auto run_with_payload = [&](std::size_t payload) {
    Cluster c(cfg(2));
    Stache proto(c);
    const GAddr a = c.allocate("arr", 1024);  // 16 blocks
    const tempest::BlockId b0 = c.block_of(a);
    std::uint64_t ccc_msgs = 0;
    c.run([&](Node& n, sim::Task& t) {
      if (n.id() == 0) {
        n.barrier(t);
        proto.send_blocks(n, t, a, 1024, {1}, payload);
        ccc_msgs = n.stats.ccc_messages_sent;
        n.barrier(t);
      } else {
        proto.implicit_writable(n, t, b0, b0 + 15);
        n.barrier(t);
        proto.ready_to_recv(n, t, 16);
        n.barrier(t);
      }
    });
    return ccc_msgs;
  };
  EXPECT_EQ(run_with_payload(64), 16u);    // one message per block
  EXPECT_EQ(run_with_payload(512), 2u);    // bulk: 8 blocks per message
  EXPECT_EQ(run_with_payload(1024), 1u);   // single payload
}

TEST(Stache, CccFlushReturnsNonOwnerWrites) {
  Cluster c(cfg(2));
  Stache proto(c);
  const GAddr a = c.allocate("arr", 128);  // home node 0 = owner
  const tempest::BlockId b0 = c.block_of(a);
  double got = 0;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      // Owner: send current contents, let node 1 write, await flush.
      store(n, t, a, 1.0);
      n.barrier(t);
      proto.send_blocks(n, t, a, 128, {1}, 128);
      n.barrier(t);
      proto.ready_to_recv(n, t, 2);  // the flush comes back
      got = load(n, t, a);
      n.barrier(t);
    } else {
      proto.implicit_writable(n, t, b0, b0 + 1);
      n.barrier(t);
      proto.ready_to_recv(n, t, 2);
      double v = 0;
      std::memcpy(&v, n.mem(a), 8);
      v += 41.0;
      std::memcpy(n.mem(a), &v, 8);
      proto.ccc_flush(n, t, a, 128, /*owner=*/0, /*max_payload=*/128);
      proto.implicit_invalidate(n, t, b0, b0 + 1);
      n.barrier(t);
      n.barrier(t);
    }
  });
  EXPECT_DOUBLE_EQ(got, 42.0);
}

// ---------------------------------------------------------------------------
// Property test: random data-race-free word traces against a reference
// memory, across block sizes and node counts.
// ---------------------------------------------------------------------------

struct DrfParam {
  int nnodes;
  std::size_t block;
  unsigned seed;
};

class StacheDrfTest : public ::testing::TestWithParam<DrfParam> {};

TEST_P(StacheDrfTest, RandomTracesMatchReference) {
  const DrfParam p = GetParam();
  constexpr int kWords = 192;
  constexpr int kEpochs = 6;
  Cluster c(cfg(p.nnodes, p.block, /*page=*/512));
  Stache proto(c);
  const GAddr base = c.allocate("arena", kWords * 8);

  // Deterministic plan, shared by all nodes: per epoch, each word gets at
  // most one writer; every node reads a pseudo-random subset after the
  // barrier.
  std::mt19937 rng(p.seed);
  std::vector<std::vector<int>> writer(kEpochs, std::vector<int>(kWords));
  for (int e = 0; e < kEpochs; ++e)
    for (int w = 0; w < kWords; ++w) {
      // -1 = nobody writes this epoch.
      writer[e][w] = static_cast<int>(rng() % (p.nnodes + 1)) - 1;
    }
  std::vector<double> expected(kWords, 0.0);

  std::vector<int> mismatches(p.nnodes, 0);
  std::vector<std::string> detail;
  c.run([&](Node& n, sim::Task& t) {
    for (int e = 0; e < kEpochs; ++e) {
      for (int w = 0; w < kWords; ++w) {
        if (writer[e][w] != n.id()) continue;
        store(n, t, base + 8 * w, 1000.0 * e + w);
      }
      n.barrier(t);
      // Everyone reads every word and checks against the reference.
      std::mt19937 lrng(p.seed * 77 + e);
      for (int w = 0; w < kWords; ++w) {
        if (lrng() % 3 == 0) continue;  // skip some reads
        const double v = load(n, t, base + 8 * w);
        const double want =
            writer[e][w] >= 0 ? 1000.0 * e + w : expected[w];
        if (v != want) {
          ++mismatches[n.id()];
          if (detail.size() < 10) {
            std::ostringstream os;
            os << "node " << n.id() << " epoch " << e << " word " << w
               << " (block " << c.block_of(base + 8 * w) << ", home "
               << c.home_of(c.block_of(base + 8 * w)) << ", writer "
               << writer[e][w] << "): got " << v << " want " << want;
            detail.push_back(os.str());
          }
        }
      }
      n.barrier(t);
      if (n.id() == 0)  // update host-side reference once per epoch
        for (int w = 0; w < kWords; ++w)
          if (writer[e][w] >= 0) expected[w] = 1000.0 * e + w;
      n.barrier(t);
    }
  });
  for (const std::string& d : detail) ADD_FAILURE() << d;
  for (int i = 0; i < p.nnodes; ++i) EXPECT_EQ(mismatches[i], 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StacheDrfTest,
    ::testing::Values(DrfParam{2, 32, 1}, DrfParam{2, 64, 2},
                      DrfParam{2, 128, 3}, DrfParam{4, 64, 4},
                      DrfParam{4, 128, 5}, DrfParam{8, 128, 6},
                      DrfParam{8, 32, 7}, DrfParam{3, 64, 8}),
    [](const ::testing::TestParamInfo<DrfParam>& info) {
      return "n" + std::to_string(info.param.nnodes) + "_b" +
             std::to_string(info.param.block) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace fgdsm::proto
