// Run-level observability: the event tracer, per-loop phase attribution,
// the --check-coherence protocol invariant checker, and the NodeStats
// aggregation machinery they all depend on.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/executor.h"
#include "src/proto/stache.h"
#include "src/sim/trace.h"
#include "src/tempest/cluster.h"
#include "src/util/assert.h"
#include "src/util/json.h"
#include "src/util/options.h"
#include "src/util/stats.h"

namespace fgdsm {
namespace {

using tempest::Access;
using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::GAddr;
using tempest::Node;

// ---------------------------------------------------------------------------
// NodeStats completeness. Every field must flow through visit_members (which
// drives +=, -=, totals() and the JSON emission). The sizeof tripwire makes
// adding a field without extending the visitor a compile error.

static_assert(sizeof(util::NodeStats) == 32 * 8,
              "NodeStats changed size: extend visit_members (stats.h) and "
              "update this tripwire");

TEST(NodeStats, VisitorCoversEveryField) {
  std::size_t count = 0;
  util::NodeStats s;
  util::NodeStats::visit_fields(s, [&](const char*, auto) { ++count; });
  EXPECT_EQ(count, 32u);
}

TEST(NodeStats, AccumulateRoundTripsAllDistinctValues) {
  // Give every field a distinct value so a field dropped from += or -=
  // cannot cancel against another.
  util::NodeStats a;
  std::uint64_t v = 1;
  util::NodeStats::visit_members(
      [&](const char*, auto mem) { a.*mem = v++; });

  util::NodeStats acc;
  acc += a;
  acc += a;
  util::NodeStats::visit_members([&](const char* name, auto mem) {
    EXPECT_EQ(static_cast<std::uint64_t>(acc.*mem),
              2 * static_cast<std::uint64_t>(a.*mem))
        << name;
  });

  acc -= a;
  acc -= a;
  util::NodeStats::visit_members([&](const char* name, auto mem) {
    EXPECT_EQ(static_cast<std::uint64_t>(acc.*mem), 0u) << name;
  });
}

TEST(RunStats, TotalsSumEveryFieldAcrossNodes) {
  util::RunStats rs;
  rs.node.resize(3);
  std::uint64_t v = 1;
  for (auto& n : rs.node)
    util::NodeStats::visit_members(
        [&](const char*, auto mem) { n.*mem = v++; });
  const util::NodeStats tot = rs.totals();
  util::NodeStats::visit_members([&](const char* name, auto mem) {
    std::uint64_t want = 0;
    for (const auto& n : rs.node)
      want += static_cast<std::uint64_t>(n.*mem);
    EXPECT_EQ(static_cast<std::uint64_t>(tot.*mem), want) << name;
  });
}

// ---------------------------------------------------------------------------
// format_ns: negative durations keep their sign and format by magnitude
// (previously the threshold comparisons all failed for ns < 0 and the value
// fell through to the raw-ns branch).

TEST(FormatNs, NegativeDurations) {
  EXPECT_EQ(util::format_ns(-1'500'000'000), "-1.500 s");
  EXPECT_EQ(util::format_ns(-2'500'000), "-2.50 ms");
  EXPECT_EQ(util::format_ns(-42'000), "-42.00 us");
  EXPECT_EQ(util::format_ns(-999), "-999 ns");
  EXPECT_EQ(util::format_ns(0), "0 ns");
}

// ---------------------------------------------------------------------------
// Options: malformed numeric values are fatal (exit 2), not silently 0.

TEST(OptionsStrict, MalformedIntegerExits) {
  const char* argv[] = {"prog", "--nodes=8x"};
  util::Options o(2, argv);
  EXPECT_EXIT((void)o.get_int("nodes", 8), ::testing::ExitedWithCode(2),
              "invalid integer value '8x' for --nodes");
}

TEST(OptionsStrict, MalformedDoubleExits) {
  const char* argv[] = {"prog", "--scale=0.5x"};
  util::Options o(2, argv);
  EXPECT_EXIT((void)o.get_double("scale", 1.0), ::testing::ExitedWithCode(2),
              "invalid numeric value '0.5x' for --scale");
}

TEST(OptionsStrict, EmptyValueExits) {
  const char* argv[] = {"prog", "--jobs="};
  util::Options o(2, argv);
  EXPECT_EXIT((void)o.get_int("jobs", 1), ::testing::ExitedWithCode(2),
              "invalid integer value '' for --jobs");
}

TEST(OptionsStrict, WellFormedValuesStillParse) {
  const char* argv[] = {"prog", "--nodes=-3", "--scale=2.5e-1"};
  util::Options o(3, argv);
  EXPECT_EQ(o.get_int("nodes", 0), -3);
  EXPECT_DOUBLE_EQ(o.get_double("scale", 0), 0.25);
}

// ---------------------------------------------------------------------------
// JsonWriter: structure, escaping, and the raw-literal path the tracer uses.

TEST(JsonWriter, EmitsValidStructure) {
  std::ostringstream os;
  {
    util::JsonWriter w(os);
    w.begin_object();
    w.kv("name", "a\"b\\c\n");
    w.key("list");
    w.begin_array();
    w.value(1);
    w.value_raw("2.500");
    w.value(true);
    w.null();
    w.end_array();
    w.kv("n", static_cast<std::int64_t>(-7));
    w.end_object();
    EXPECT_TRUE(w.balanced());
  }
  EXPECT_EQ(os.str(),
            "{\n  \"name\": \"a\\\"b\\\\c\\n\",\n  \"list\": [\n    1,\n"
            "    2.500,\n    true,\n    null\n  ],\n  \"n\": -7\n}");
}

// ---------------------------------------------------------------------------
// Per-loop phase attribution.

exec::RunConfig jacobi_config() {
  exec::RunConfig cfg;
  cfg.cluster.nnodes = 4;
  cfg.cluster.block_size = 128;
  cfg.cluster.dual_cpu = true;
  cfg.opt = core::shmem_opt_full();
  cfg.gather_arrays = false;
  return cfg;
}

TEST(PerLoop, JacobiAttributesPhases) {
  const hpf::Program prog = apps::jacobi(48, 4);
  const exec::RunResult r = exec::run(prog, jacobi_config());
  ASSERT_FALSE(r.stats.per_loop.empty());
  EXPECT_TRUE(r.stats.per_loop.count("init"));
  EXPECT_TRUE(r.stats.per_loop.count("sweep-uv"));

  const util::NodeStats tot = r.stats.totals();
  util::NodeStats loops;
  for (const auto& [name, s] : r.stats.per_loop) loops += s;
  // Every miss happens inside some parallel loop; compute/sync also accrue
  // in the serial glue between loops, so those only bound from below.
  EXPECT_EQ(loops.read_misses, tot.read_misses);
  EXPECT_EQ(loops.write_misses, tot.write_misses);
  EXPECT_LE(loops.compute_ns, tot.compute_ns);
  EXPECT_LE(loops.sync_ns, tot.sync_ns);
  EXPECT_GT(loops.compute_ns, 0u);
  EXPECT_GT(r.stats.per_loop.at("sweep-uv").compute_ns, 0u);
}

TEST(PerLoop, SerialRunAttributesToo) {
  const hpf::Program prog = apps::jacobi(32, 2);
  exec::RunConfig cfg = jacobi_config();
  cfg.cluster.nnodes = 1;
  cfg.opt = core::serial();
  const exec::RunResult r = exec::run(prog, cfg);
  EXPECT_FALSE(r.stats.per_loop.empty());
}

// ---------------------------------------------------------------------------
// Tracer: a traced run writes structurally valid trace-event JSON and does
// not perturb the simulation.

// Light structural validation: brackets/braces balance outside strings.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) esc = false;
      else if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_str && stack.empty();
}

TEST(Tracer, JacobiTraceIsValidAndPassive) {
  const hpf::Program prog = apps::jacobi(48, 3);
  const exec::RunResult plain = exec::run(prog, jacobi_config());

  const std::string path = ::testing::TempDir() + "fgdsm_trace_test.json";
  exec::RunConfig cfg = jacobi_config();
  cfg.trace_path = path;
  const exec::RunResult traced = exec::run(prog, cfg);

  // Zero perturbation: identical simulated results with tracing on.
  EXPECT_EQ(plain.stats.elapsed_ns, traced.stats.elapsed_ns);
  const util::NodeStats a = plain.stats.totals();
  const util::NodeStats b = traced.stats.totals();
  util::NodeStats::visit_members([&](const char* name, auto mem) {
    EXPECT_EQ(a.*mem, b.*mem) << name;
  });

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  std::remove(path.c_str());

  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_TRUE(json_balanced(text));
  // Compute, sync, miss and protocol-handler spans all present.
  EXPECT_NE(text.find("\"barrier\""), std::string::npos);
  EXPECT_NE(text.find("\"rd miss\""), std::string::npos);
  EXPECT_NE(text.find("\"h read_req\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  // Message flows: sends bind to their remote dispatch.
  EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"f\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Coherence invariant checker.

TEST(CheckCoherence, FullAppSuitePassesUnchangedResults) {
  for (const auto& app : apps::registry()) {
    const hpf::Program prog = app.scaled(0.05);
    for (const core::Options& opt :
         {core::shmem_unopt(), core::shmem_opt_full()}) {
      exec::RunConfig cfg = jacobi_config();
      cfg.opt = opt;
      const exec::RunResult plain = exec::run(prog, cfg);
      cfg.cluster.check_coherence = true;
      const exec::RunResult checked = exec::run(prog, cfg);
      EXPECT_EQ(plain.stats.elapsed_ns, checked.stats.elapsed_ns)
          << app.name << " " << opt.label();
    }
  }
}

TEST(CheckCoherence, DetectsCorruptedTag) {
  ClusterConfig cc;
  cc.nnodes = 4;
  cc.block_size = 64;
  cc.check_coherence = true;
  Cluster c(cc);
  proto::Stache proto(c);
  const GAddr a = c.allocate("x", 256);
  EXPECT_THROW(
      c.run([&](Node& n, sim::Task& t) {
        if (n.id() == 1) {
          n.ensure_readable(t, a, 8);  // dir: Shared, sharers {0?, 1}
          // Corrupt: promote the read-only copy behind the directory's back
          // (no upgrade request, no CCC contract).
          n.set_access(c.block_of(a), Access::kReadWrite);
        }
        n.barrier(t);
      }),
      AssertionError);
}

TEST(CheckCoherence, DetectsDirectoryTagMismatchDirectly) {
  ClusterConfig cc;
  cc.nnodes = 2;
  cc.block_size = 64;
  cc.check_coherence = true;
  Cluster c(cc);
  proto::Stache proto(c);
  const GAddr a = c.allocate("x", 256);
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 1) n.ensure_readable(t, a, 8);
    n.barrier(t);
  });
  EXPECT_TRUE(proto.find_violations().empty());
  // Reader invalidates its copy without telling the home: the directory
  // still believes node 1 shares the block. That direction (stale belief,
  // superset of reality) is legal. The reverse — a writable tag the
  // directory does not know about — is not.
  c.node(1).set_access(c.block_of(a), Access::kReadWrite);
  const std::vector<std::string> v = proto.find_violations();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("writable tag"), std::string::npos);
}

TEST(CheckCoherence, CccOpenedBlocksAreExempt) {
  ClusterConfig cc;
  cc.nnodes = 2;
  cc.block_size = 64;
  cc.check_coherence = true;
  Cluster c(cc);
  proto::Stache proto(c);
  const GAddr a = c.allocate("x", 256);
  const tempest::BlockId b = c.block_of(a);
  // implicit_writable breaks tag/directory agreement BY CONTRACT (§4 of the
  // paper): the checker must not flag compiler-contracted incoherence.
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 1) {
      n.ensure_readable(t, a, 8);
      proto.implicit_writable(n, t, b, b);
    }
    n.barrier(t);
    if (n.id() == 1) proto.implicit_invalidate(n, t, b, b);
    n.barrier(t);
  });
}

}  // namespace
}  // namespace fgdsm
