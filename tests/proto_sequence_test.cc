// Message-sequence assertions on the default protocol: exact handler chains
// for the Figure-1 flows, home-side transaction queueing, and the deny path
// for stale eager upgrades.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/proto/stache.h"
#include "src/tempest/cluster.h"

namespace fgdsm::proto {
namespace {

using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::GAddr;
using tempest::HandlerClock;
using tempest::MsgType;
using tempest::Node;

struct Recorder {
  std::vector<std::pair<MsgType, int>> events;  // (type, destination node)
  void install(Cluster& c) {
    for (MsgType mt :
         {MsgType::kReadReq, MsgType::kPutDataReq, MsgType::kPutDataResp,
          MsgType::kReadResp, MsgType::kWriteReq, MsgType::kInval,
          MsgType::kInvalAck, MsgType::kWriteGrant, MsgType::kFetchExclReq,
          MsgType::kFetchExclResp}) {
      const Cluster::Handler orig = c.handler(mt);
      c.register_handler(mt, [this, mt, orig](Node& n, sim::Message& m,
                                              HandlerClock& clk) {
        events.emplace_back(mt, n.id());
        orig(n, m, clk);
      });
    }
  }
  std::vector<MsgType> types() const {
    std::vector<MsgType> t;
    for (auto& [mt, dst] : events) t.push_back(mt);
    return t;
  }
};

ClusterConfig cfg(int nnodes) {
  ClusterConfig c;
  c.nnodes = nnodes;
  c.block_size = 64;
  c.page_size = 256;
  return c;
}

TEST(Sequence, ColdReadIsTwoMessages) {
  Cluster c(cfg(2));
  Stache proto(c);
  Recorder rec;
  rec.install(c);
  const GAddr a = c.allocate("x", 64);  // home node 0
  c.run([&](Node& n, sim::Task& t) {
    n.barrier(t);
    if (n.id() == 1) n.ensure_readable(t, a, 8);
    n.barrier(t);
  });
  std::vector<MsgType> got;
  for (auto& [mt, dst] : rec.events) got.push_back(mt);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], MsgType::kReadReq);
  EXPECT_EQ(got[1], MsgType::kReadResp);
}

TEST(Sequence, ThreeHopReadIsFullRecallChain) {
  Cluster c(cfg(4));
  Stache proto(c);
  const GAddr pad = c.allocate("pad", 256);
  (void)pad;
  const GAddr a = c.allocate("x", 64);  // home node 1
  ASSERT_EQ(c.home_of(c.block_of(a)), 1);
  Recorder rec;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 2) {  // owner
      n.ensure_writable(t, a, 8);
      double v = 5;
      std::memcpy(n.mem(a), &v, 8);
      n.note_writes(a, 8);
    }
    n.barrier(t);
    if (n.id() == 0) rec.install(c);  // record only the read chain
    n.barrier(t);
    if (n.id() == 3) n.ensure_readable(t, a, 8);
    n.barrier(t);
  });
  const auto got = rec.types();
  ASSERT_EQ(got.size(), 4u);  // Figure 1(a), messages 1-4
  EXPECT_EQ(got[0], MsgType::kReadReq);
  EXPECT_EQ(got[1], MsgType::kPutDataReq);
  EXPECT_EQ(got[2], MsgType::kPutDataResp);
  EXPECT_EQ(got[3], MsgType::kReadResp);
  EXPECT_EQ(rec.events[1].second, 2);  // recall goes to the owner
  EXPECT_EQ(rec.events[3].second, 3);  // data lands at the reader
}

TEST(Sequence, UpgradeIsWriteReqInvalAckGrant) {
  Cluster c(cfg(2));
  Stache proto(c);
  const GAddr a = c.allocate("x", 64);  // home node 0, holds it RW
  Recorder rec;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 1) n.ensure_readable(t, a, 8);  // both now share
    n.barrier(t);
    if (n.id() == 0) rec.install(c);
    n.barrier(t);
    if (n.id() == 1) n.ensure_writable(t, a, 8);  // upgrade: inval node 0
    n.barrier(t);
  });
  const auto got = rec.types();
  ASSERT_EQ(got.size(), 4u);  // Figure 1(a), messages 5-8
  EXPECT_EQ(got[0], MsgType::kWriteReq);
  EXPECT_EQ(got[1], MsgType::kInval);
  EXPECT_EQ(got[2], MsgType::kInvalAck);
  EXPECT_EQ(got[3], MsgType::kWriteGrant);
}

TEST(Sequence, HomeQueuesConflictingTransactions) {
  // Two readers fault on a block owned exclusively by a third node; the
  // home must serialize: exactly one recall, then two responses.
  Cluster c(cfg(4));
  Stache proto(c);
  c.allocate("pad", 256);
  const GAddr a = c.allocate("x", 64);  // home node 1
  Recorder rec;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 2) {
      n.ensure_writable(t, a, 8);
      double v = 1;
      std::memcpy(n.mem(a), &v, 8);
      n.note_writes(a, 8);
    }
    n.barrier(t);
    if (n.id() == 0) rec.install(c);
    n.barrier(t);
    if (n.id() == 0 || n.id() == 3) n.ensure_readable(t, a, 8);
    n.barrier(t);
  });
  int recalls = 0, resps = 0;
  for (auto& [mt, dst] : rec.events) {
    if (mt == MsgType::kPutDataReq) ++recalls;
    if (mt == MsgType::kReadResp) ++resps;
  }
  EXPECT_EQ(recalls, 1);
  EXPECT_EQ(resps, 2);
  const auto snap = proto.dir_snapshot(c.block_of(a));
  EXPECT_EQ(snap.state, Stache::DirState::kShared);
  EXPECT_FALSE(snap.busy);
}

TEST(Sequence, StaleUpgradeIsDenied) {
  // Nodes 0 (home) and 1 both hold the block read-only and upgrade
  // concurrently; the home's own upgrade is processed inline first, so
  // node 1's in-flight request finds itself no longer a sharer -> denied,
  // and node 1's data survives through the invalidation-ack dirty words.
  Cluster c(cfg(2));
  Stache proto(c);
  const GAddr a = c.allocate("x", 64);
  double final0 = 0, final1 = 0;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 1) n.ensure_readable(t, a, 8);  // Shared{0,1}
    n.barrier(t);
    // Concurrent disjoint-word writes (false sharing).
    const GAddr mine = a + 8 * n.id();
    n.ensure_writable(t, mine, 8);
    const double v = 100.0 + n.id();
    std::memcpy(n.mem(mine), &v, 8);
    n.note_writes(mine, 8);
    n.barrier(t);
    n.ensure_readable(t, a, 16);
    std::memcpy(n.id() == 0 ? &final1 : &final0,
                n.mem(a + 8 * (1 - n.id())), 8);
    n.barrier(t);
  });
  EXPECT_DOUBLE_EQ(final0, 100.0);  // node 1 read node 0's word
  EXPECT_DOUBLE_EQ(final1, 101.0);  // node 0 read node 1's word
}

}  // namespace
}  // namespace fgdsm::proto
