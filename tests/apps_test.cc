// Cross-mode correctness for the whole application suite: each program must
// produce identical array contents (bit-for-bit) and matching checksums in
// every execution mode, at small problem sizes and several cluster shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/apps.h"
#include "src/exec/executor.h"

namespace fgdsm::exec {
namespace {

RunConfig config(core::Options opt, int nnodes, std::size_t block = 128) {
  RunConfig cfg;
  cfg.cluster.nnodes = nnodes;
  cfg.cluster.block_size = block;
  cfg.opt = opt;
  cfg.gather_arrays = true;
  return cfg;
}

void expect_match(const RunResult& ref, const RunResult& r,
                  const std::string& label) {
  for (const auto& [name, va] : ref.arrays) {
    const auto it = r.arrays.find(name);
    ASSERT_NE(it, r.arrays.end()) << label;
    ASSERT_EQ(va.size(), it->second.size()) << label;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < va.size(); ++i)
      if (va[i] != it->second[i]) ++bad;
    EXPECT_EQ(bad, 0u) << label << ": array " << name << " has " << bad
                       << " mismatching elements of " << va.size();
  }
  for (const auto& [name, sv] : ref.scalars) {
    auto it = r.scalars.find(name);
    ASSERT_NE(it, r.scalars.end()) << label << " scalar " << name;
    EXPECT_EQ(sv, it->second) << label << " scalar " << name;
  }
}

// Programs whose reduction results feed back into the computation (cg's
// alpha/beta) legitimately diverge from the serial run in low-order bits:
// a reduction over 1 partial groups differently than over N. Arrays must
// therefore be bit-identical across all *parallel* modes (same node count,
// same reduction grouping), while serial agreement is checked through the
// checksum scalars with a loose tolerance.
void check_all_modes(const hpf::Program& prog, int nnodes,
                     std::size_t block = 128) {
  const RunResult serial = run(prog, config(core::serial(), 1, block));
  ASSERT_FALSE(serial.scalars.empty()) << prog.name;
  const RunResult reference =
      run(prog, config(core::shmem_unopt(), nnodes, block));
  for (const auto& [name, sv] : serial.scalars) {
    auto it = reference.scalars.find(name);
    ASSERT_NE(it, reference.scalars.end()) << prog.name << " " << name;
    EXPECT_NEAR(sv, it->second, 1e-6 * (1.0 + std::abs(sv)))
        << prog.name << " serial-vs-parallel scalar " << name;
  }
  for (const core::Options& opt :
       {core::shmem_opt_base(), core::shmem_opt_bulk(),
        core::shmem_opt_full(), core::shmem_opt_pre(),
        core::msg_passing()}) {
    const RunResult r = run(prog, config(opt, nnodes, block));
    expect_match(reference, r, prog.name + "/" + opt.label());
  }
}

TEST(Apps, PdeAllModes) { check_all_modes(apps::pde(18, 3), 4); }
TEST(Apps, PdeOddNodes) { check_all_modes(apps::pde(20, 2), 3, 64); }

TEST(Apps, ShallowAllModes) { check_all_modes(apps::shallow(33, 17, 3), 4); }
TEST(Apps, ShallowEightNodes) {
  check_all_modes(apps::shallow(33, 33, 2), 8, 64);
}

TEST(Apps, GravAllModes) { check_all_modes(apps::grav(16, 2), 4); }

TEST(Apps, LuAllModes) { check_all_modes(apps::lu(40), 4); }
TEST(Apps, LuEightNodesSmallBlocks) { check_all_modes(apps::lu(32), 8, 32); }

TEST(Apps, CgAllModes) { check_all_modes(apps::cg(24, 48, 8), 4); }
TEST(Apps, CgEightNodes) { check_all_modes(apps::cg(32, 64, 6), 8); }

TEST(Apps, LuComputesCorrectFactorization) {
  // Check LU numerics directly: L*U must reproduce the original matrix.
  const std::int64_t n = 24;
  const auto prog = apps::lu(n);
  const RunResult r = run(prog, config(core::shmem_opt_full(), 4));
  const auto& a = r.arrays.at("a");
  // Rebuild the original matrix.
  auto orig = [&](std::int64_t i, std::int64_t j) {
    double v = std::sin(0.013 * static_cast<double>(i * 7 + j * 3 + 1));
    if (i == j) v += static_cast<double>(n);
    return v;
  };
  auto lu_at = [&](std::int64_t i, std::int64_t j) {
    return a[static_cast<std::size_t>(i + j * n)];
  };
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::int64_t kmax = std::min(i, j);
      for (std::int64_t k = 0; k <= kmax; ++k) {
        const double lik = i == k ? 1.0 : lu_at(i, k);
        sum += lik * lu_at(k, j);
      }
      EXPECT_NEAR(sum, orig(i, j), 1e-9)
          << "LU mismatch at (" << i << "," << j << ")";
    }
}

TEST(Apps, CgConverges) {
  // The synthetic system is conditioned so CGNR takes a few hundred
  // iterations at the paper's size (~630); at this small size it must still
  // drive the residual down by many orders of magnitude.
  const auto prog = apps::cg(24, 48, 500);
  const RunResult r = run(prog, config(core::shmem_opt_full(), 4));
  ASSERT_TRUE(r.scalars.count("rho"));
  EXPECT_LT(r.scalars.at("rho"), 1e-12);
}

TEST(Apps, PdeResidualDecreases) {
  const auto few = run(apps::pde(16, 1), config(core::serial(), 1));
  const auto many = run(apps::pde(16, 12), config(core::serial(), 1));
  EXPECT_LT(many.scalars.at("residual"), few.scalars.at("residual"));
}

TEST(Apps, RegistryListsSuite) {
  const auto& reg = apps::registry();
  ASSERT_EQ(reg.size(), 6u);
  // Table 2 order and contents.
  EXPECT_EQ(reg[0].name, "pde");
  EXPECT_EQ(reg[1].name, "shallow");
  EXPECT_EQ(reg[2].name, "grav");
  EXPECT_EQ(reg[3].name, "lu");
  EXPECT_EQ(reg[4].name, "cg");
  EXPECT_EQ(reg[5].name, "jacobi");
  for (const auto& app : reg) {
    const hpf::Program p = app.scaled(0.05);
    EXPECT_FALSE(p.phases.empty()) << app.name;
    EXPECT_GT(app.paper_memory_mb, 0.0);
  }
}

}  // namespace
}  // namespace fgdsm::exec
