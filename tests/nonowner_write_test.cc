// End-to-end coverage for the paper's non-owner *write* contract (§4.2
// last paragraph): when the computation distribution differs from the data
// distribution, the owner ships the blocks to the writer before the loop,
// the writer flushes its changes back after, and the directory ends up
// consistent (owner exclusive).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/options.h"
#include "src/exec/executor.h"
#include "src/hpf/ir.h"

namespace fgdsm::exec {
namespace {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::TimeLoop;

// Writes are distributed by loop index while the data lives BLOCK-wise with
// a shifted subscript, so every node writes columns it does not own.
Program shifted_writer(std::int64_t n, std::int64_t steps) {
  Program prog;
  prog.name = "shifted-writer";
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  prog.arrays.push_back({"a", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"b", {N, N}, DistKind::kBlock});
  prog.sizes.set("n", n);
  prog.sizes.set("steps", steps);

  ParallelLoop init;
  init.name = "init";
  init.dist = LoopVar{"j", AffineExpr(0), N - 1};
  init.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
  init.home_array = "a";
  init.home_sub = J;
  init.writes = {{"a", {I, J}}, {"b", {I, J}}};
  init.body = [](BodyCtx& c) {
    auto a = hpf::view2(c, "a");
    auto b = hpf::view2(c, "b");
    const std::int64_t n = c.sym("n");
    const std::int64_t j = c.dist();
    for (std::int64_t i = 0; i < n; ++i) {
      a(i, j) = 0.01 * static_cast<double>(i + 3 * j);
      b(i, j) = 0.0;
    }
  };
  prog.phases.push_back(Phase::make(std::move(init)));

  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");
  {
    // Computation split by index over [0, n-9); writes b(:, j+8): the last
    // nodes write into columns owned by others.
    ParallelLoop w;
    w.name = "shifted-write";
    w.dist = LoopVar{"j", AffineExpr(0), N - 9};
    w.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    w.comp = ParallelLoop::Comp::kBlockByIndex;
    w.reads = {{"a", {I, J}}, {"b", {I, J + 8}}};
    w.writes = {{"b", {I, J + 8}}};
    w.cost_per_iter_ns = 60;
    w.body = [](BodyCtx& c) {
      auto a = hpf::view2(c, "a");
      auto b = hpf::view2(c, "b");
      const std::int64_t n = c.sym("n");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < n; ++i)
        b(i, j + 8) = 0.5 * b(i, j + 8) + a(i, j);
    };
    tl.phases.push_back(Phase::make(std::move(w)));
  }
  {
    // Owner-computes consumer keeps the data moving.
    ParallelLoop r;
    r.name = "consume";
    r.dist = LoopVar{"j", AffineExpr(0), N - 1};
    r.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    r.home_array = "a";
    r.home_sub = AffineExpr::sym("j");
    r.reads = {{"b", {I, J}}};
    r.writes = {{"a", {I, J}}};
    r.cost_per_iter_ns = 60;
    r.body = [](BodyCtx& c) {
      auto a = hpf::view2(c, "a");
      auto b = hpf::view2(c, "b");
      const std::int64_t n = c.sym("n");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < n; ++i)
        a(i, j) += 0.1 * b(i, j);
    };
    tl.phases.push_back(Phase::make(std::move(r)));
  }
  prog.phases.push_back(Phase::make(std::move(tl)));

  ParallelLoop sum;
  sum.name = "checksum";
  sum.dist = LoopVar{"j", AffineExpr(0), N - 1};
  sum.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
  sum.home_array = "a";
  sum.home_sub = AffineExpr::sym("j");
  sum.reads = {{"a", {I, J}}};
  sum.has_reduce = true;
  sum.reduce_scalar = "checksum";
  sum.body = [](BodyCtx& c) {
    auto a = hpf::view2(c, "a");
    const std::int64_t n = c.sym("n");
    double acc = 0;
    for (std::int64_t i = 0; i < n; ++i) acc += a(i, c.dist());
    c.contribute(acc);
  };
  prog.phases.push_back(Phase::make(std::move(sum)));
  return prog;
}

RunConfig config(core::Options opt, int nnodes, std::size_t block = 128) {
  RunConfig cfg;
  cfg.cluster.nnodes = nnodes;
  cfg.cluster.block_size = block;
  cfg.opt = opt;
  cfg.gather_arrays = true;
  return cfg;
}

TEST(NonOwnerWrite, AllModesAgree) {
  const Program prog = shifted_writer(48, 3);
  const RunResult serial = run(prog, config(core::serial(), 1));
  for (int nnodes : {2, 4, 8}) {
    for (const core::Options& opt :
         {core::shmem_unopt(), core::shmem_opt_base(),
          core::shmem_opt_full(), core::msg_passing()}) {
      const RunResult r = run(prog, config(opt, nnodes));
      for (const auto& [name, va] : serial.arrays) {
        const auto& vr = r.arrays.at(name);
        std::size_t bad = 0;
        for (std::size_t i = 0; i < va.size(); ++i)
          if (va[i] != vr[i]) ++bad;
        EXPECT_EQ(bad, 0u) << opt.label() << " n" << nnodes << " array "
                           << name;
      }
    }
  }
}

TEST(NonOwnerWrite, OptimizedPathActuallyFlushes) {
  // The plan must contain flush traffic: compare compiler-directed block
  // counts against a pure-read program of the same shape.
  const Program prog = shifted_writer(64, 2);
  const RunResult r = run(prog, config(core::shmem_opt_full(), 4));
  EXPECT_GT(r.stats.totals().ccc_blocks_sent, 0u);
  // Flush-backs are tagged messages through the same counter; the writer
  // also received data first, so counts exceed a one-way transfer of the
  // same sections.
  EXPECT_GT(r.stats.totals().ccc_messages_sent, 0u);
}

}  // namespace
}  // namespace fgdsm::exec
