#include <gtest/gtest.h>

#include <vector>

#include "src/tempest/cluster.h"
#include "src/tempest/node.h"
#include "src/tempest/types.h"
#include "src/util/assert.h"

namespace fgdsm::tempest {
namespace {

ClusterConfig small_config(int nnodes = 4) {
  ClusterConfig cfg;
  cfg.nnodes = nnodes;
  cfg.block_size = 64;
  cfg.page_size = 256;
  return cfg;
}

TEST(ClusterGeometry, BlockAndHomeMath) {
  Cluster c(small_config(4));
  EXPECT_EQ(c.block_of(0), 0u);
  EXPECT_EQ(c.block_of(63), 0u);
  EXPECT_EQ(c.block_of(64), 1u);
  EXPECT_EQ(c.block_addr(3), 192u);
  // Pages of 256 bytes round-robin over 4 nodes.
  EXPECT_EQ(c.home_of(c.block_of(0)), 0);
  EXPECT_EQ(c.home_of(c.block_of(255)), 0);
  EXPECT_EQ(c.home_of(c.block_of(256)), 1);
  EXPECT_EQ(c.home_of(c.block_of(1024)), 0);  // wraps around
}

TEST(ClusterGeometry, AllocationIsPageAligned) {
  Cluster c(small_config());
  const GAddr a = c.allocate("a", 100);
  const GAddr b = c.allocate("b", 1);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
  EXPECT_GE(c.segment_bytes(), b + 1);
}

TEST(ClusterConfigValidation, RejectsBadGeometry) {
  ClusterConfig cfg;
  cfg.block_size = 48;  // not a power of two
  EXPECT_THROW(Cluster c(cfg), AssertionError);
  ClusterConfig cfg2;
  cfg2.block_size = 128;
  cfg2.page_size = 200;  // not a multiple
  EXPECT_THROW(Cluster c2(cfg2), AssertionError);
}

TEST(ClusterRun, InitialAccessTags) {
  Cluster c(small_config(2));
  c.allocate("arr", 1024);
  c.run([&](Node& n, sim::Task&) {
    for (BlockId b = 0; b < c.num_blocks(); ++b) {
      if (c.home_of(b) == n.id())
        EXPECT_EQ(n.access(b), Access::kReadWrite);
      else
        EXPECT_EQ(n.access(b), Access::kInvalid);
    }
  });
}

TEST(ClusterRun, NodesHaveIndependentMemory) {
  Cluster c(small_config(2));
  const GAddr a = c.allocate("x", 64);
  c.run([&](Node& n, sim::Task&) {
    *n.ptr<int>(a) = 100 + n.id();
  });
  EXPECT_EQ(*c.node(0).ptr<int>(a), 100);
  EXPECT_EQ(*c.node(1).ptr<int>(a), 101);
}

TEST(Barrier, SynchronizesAllNodes) {
  Cluster c(small_config(4));
  c.allocate("pad", 64);
  std::vector<sim::Time> before(4), after(4);
  c.run([&](Node& n, sim::Task& t) {
    // Stagger arrival; everyone leaves at (or after) the last arrival.
    t.charge(1000 * (n.id() + 1));
    before[n.id()] = t.now();
    n.barrier(t);
    after[n.id()] = t.now();
  });
  const sim::Time last_arrival =
      *std::max_element(before.begin(), before.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(after[i], last_arrival);
    EXPECT_EQ(c.node(i).stats.barriers, 1u);
    EXPECT_GT(c.node(i).stats.sync_ns, 0);
  }
}

TEST(Barrier, ManyBarriersStayPaired) {
  Cluster c(small_config(3));
  c.allocate("pad", 64);
  std::vector<int> rounds(3, 0);
  c.run([&](Node& n, sim::Task& t) {
    for (int r = 0; r < 10; ++r) {
      t.charge(100 * (n.id() + 1) * (r + 1));
      n.barrier(t);
      ++rounds[n.id()];
    }
  });
  EXPECT_EQ(rounds, (std::vector<int>{10, 10, 10}));
}

TEST(Barrier, SingleNodeIsLocal) {
  Cluster c(small_config(1));
  c.allocate("pad", 64);
  auto rs = c.run([&](Node& n, sim::Task& t) { n.barrier(t); });
  EXPECT_EQ(rs.node[0].messages_sent, 0u);
}

TEST(Reduce, SumAcrossNodes) {
  Cluster c(small_config(4));
  c.allocate("pad", 64);
  std::vector<double> results(4);
  c.run([&](Node& n, sim::Task& t) {
    results[n.id()] = n.allreduce(t, static_cast<double>(n.id() + 1));
  });
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(results[i], 10.0);
}

TEST(Reduce, MaxAndMin) {
  Cluster c(small_config(4));
  c.allocate("pad", 64);
  std::vector<double> mx(4), mn(4);
  c.run([&](Node& n, sim::Task& t) {
    const double v = static_cast<double>((n.id() * 7) % 5);
    mx[n.id()] = n.allreduce(t, v, Node::ReduceOp::kMax);
    mn[n.id()] = n.allreduce(t, v, Node::ReduceOp::kMin);
  });
  // values: 0, 2, 4, 1
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(mx[i], 4.0);
    EXPECT_DOUBLE_EQ(mn[i], 0.0);
  }
}

TEST(Reduce, RepeatedReductionsAreConsistent) {
  Cluster c(small_config(3));
  c.allocate("pad", 64);
  std::vector<std::vector<double>> res(3);
  c.run([&](Node& n, sim::Task& t) {
    for (int r = 0; r < 5; ++r)
      res[n.id()].push_back(n.allreduce(t, static_cast<double>(r)));
  });
  for (int i = 0; i < 3; ++i)
    for (int r = 0; r < 5; ++r) EXPECT_DOUBLE_EQ(res[i][r], 3.0 * r);
}

TEST(Messaging, TaskSendChargesAndCounts) {
  Cluster c(small_config(2));
  c.allocate("pad", 64);
  // Install a trivial user of an unused slot: reuse kMpData.
  int received = 0;
  c.register_handler(MsgType::kMpData,
                     [&](Node&, sim::Message& m, HandlerClock&) {
                       received += static_cast<int>(m.arg[0]);
                     });
  auto rs = c.run([&](Node& n, sim::Task& t) {
    if (n.id() == 0) {
      sim::Message m;
      m.dst = 1;
      m.type = static_cast<std::uint16_t>(MsgType::kMpData);
      m.arg[0] = 5;
      const sim::Time before = t.now();
      n.send(t, std::move(m));
      EXPECT_EQ(t.now() - before, c.costs().msg_send_overhead);
    } else {
      t.charge(sim::kMs);  // stay alive long enough to receive
    }
  });
  EXPECT_EQ(received, 5);
  EXPECT_EQ(rs.node[0].messages_sent, 1u);
  EXPECT_GT(rs.node[0].bytes_sent, 0u);
}

TEST(Messaging, SingleCpuHandlerStealsComputeTime) {
  auto run_mode = [](bool dual) {
    ClusterConfig cfg = small_config(2);
    cfg.dual_cpu = dual;
    Cluster c(cfg);
    c.allocate("pad", 64);
    c.register_handler(MsgType::kMpData,
                       [](Node&, sim::Message&, HandlerClock& clk) {
                         clk.charge(50 * sim::kUs);  // heavy handler
                       });
    auto rs = c.run([&](Node& n, sim::Task& t) {
      if (n.id() == 0) {
        for (int i = 0; i < 10; ++i) {
          sim::Message m;
          m.dst = 1;
          m.type = static_cast<std::uint16_t>(MsgType::kMpData);
          n.send(t, std::move(m));
        }
      } else {
        t.charge(5 * sim::kMs);
      }
    });
    return rs.node[1].handler_steal_ns;
  };
  EXPECT_EQ(run_mode(true), 0);      // dedicated protocol processor
  EXPECT_GT(run_mode(false), 0);     // interleaved: handlers steal cpu
}

TEST(ClusterRun, ElapsedIsMaxNodeFinish) {
  Cluster c(small_config(2));
  c.allocate("pad", 64);
  auto rs = c.run([&](Node& n, sim::Task& t) {
    t.charge(n.id() == 0 ? 100 : 7777);
  });
  EXPECT_EQ(rs.elapsed_ns, 7777);
}

TEST(ClusterRun, RunIsOneShot) {
  Cluster c(small_config(2));
  c.allocate("pad", 64);
  c.run([](Node&, sim::Task&) {});
  EXPECT_THROW(c.run([](Node&, sim::Task&) {}), AssertionError);
}

}  // namespace
}  // namespace fgdsm::tempest
