// Chaos-mode networking: deterministic fault injection, the reliable
// transport channel, the stall watchdog, and strict flag parsing.
//
// The load-bearing properties:
//   - application results under faults are bit-identical to fault-free runs
//     (the channel hides drops/dups/delays/reordering completely);
//   - a given --faults seed reproduces the identical run at any host thread
//     count (counter-mode hashing, no RNG state);
//   - fault injection disabled is *passive*: every chaos counter stays zero
//     and the run is untouched;
//   - a dead link terminates the process with the documented exit code (86)
//     and a diagnostic naming the link, not a hang.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/util/options.h"

namespace fgdsm {
namespace {

// ---------------------------------------------------------------------------
// FaultConfig parsing.

TEST(FaultConfig, ParsesFullSpec) {
  std::string err;
  const sim::FaultConfig c = sim::FaultConfig::parse(
      "drop=0.01,dup=0.002,delay=0.1,reorder=0.05,delay-ns=80000,"
      "rto-ns=150000,seed=7,retries=5",
      &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.drop, 0.01);
  EXPECT_DOUBLE_EQ(c.dup, 0.002);
  EXPECT_DOUBLE_EQ(c.delay, 0.1);
  EXPECT_DOUBLE_EQ(c.reorder, 0.05);
  EXPECT_EQ(c.delay_ns, 80000);
  EXPECT_EQ(c.rto_ns, 150000);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_EQ(c.max_retries, 5);
}

TEST(FaultConfig, BareFlagEnablesChaosPlumbingWithZeroRates) {
  std::string err;
  const sim::FaultConfig c = sim::FaultConfig::parse("1", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.drop, 0.0);
}

TEST(FaultConfig, RejectsUnknownKeyAndBadValues) {
  std::string err;
  sim::FaultConfig c = sim::FaultConfig::parse("dorp=0.01", &err);
  EXPECT_FALSE(c.enabled);
  EXPECT_NE(err.find("dorp"), std::string::npos) << err;

  c = sim::FaultConfig::parse("drop=1.5", &err);
  EXPECT_FALSE(c.enabled);
  EXPECT_NE(err.find("drop"), std::string::npos) << err;

  c = sim::FaultConfig::parse("seed=abc", &err);
  EXPECT_FALSE(c.enabled);
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// FaultInjector determinism.

TEST(FaultInjector, SameSeedSameVerdictsAnyCallOrder) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop = 0.2;
  cfg.dup = 0.1;
  cfg.delay = 0.3;
  cfg.seed = 99;
  sim::FaultInjector a(cfg, 4, 1000);
  sim::FaultInjector b(cfg, 4, 1000);
  // b interleaves an unrelated link's draws between a's — per-link counters
  // must make link (1,2)'s sequence independent of other links' traffic.
  std::vector<sim::FaultInjector::Decision> va, vb;
  for (int i = 0; i < 200; ++i) va.push_back(a.decide(1, 2));
  for (int i = 0; i < 200; ++i) {
    b.decide(0, 3);
    vb.push_back(b.decide(1, 2));
  }
  int dropped = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(va[i].drop, vb[i].drop) << i;
    EXPECT_EQ(va[i].duplicate, vb[i].duplicate) << i;
    EXPECT_EQ(va[i].extra_delay, vb[i].extra_delay) << i;
    dropped += va[i].drop ? 1 : 0;
  }
  EXPECT_GT(dropped, 0);      // 200 draws at p=.2: zero would be broken
  EXPECT_LT(dropped, 200);
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop = 0.5;
  cfg.seed = 1;
  sim::FaultInjector a(cfg, 2, 1000);
  cfg.seed = 2;
  sim::FaultInjector b(cfg, 2, 1000);
  int differ = 0;
  for (int i = 0; i < 100; ++i)
    differ += a.decide(0, 1).drop != b.decide(0, 1).drop ? 1 : 0;
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, ZeroRatesNeverFault) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  sim::FaultInjector inj(cfg, 2, 1000);
  for (int i = 0; i < 100; ++i) {
    const auto d = inj.decide(0, 1);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay, 0);
  }
}

// ---------------------------------------------------------------------------
// Strict flag parsing.

TEST(OptionsStrict, ClosestMatchSuggestsPlausibleTyposOnly) {
  const std::vector<std::string> known = {"trace", "scale", "nodes",
                                          "check-coherence"};
  EXPECT_EQ(util::Options::closest_match("tarce", known), "trace");
  EXPECT_EQ(util::Options::closest_match("check-coherance", known),
            "check-coherence");
  EXPECT_EQ(util::Options::closest_match("zzzzzz", known), "");
}

TEST(OptionsStrictDeathTest, UnknownFlagExits2NamingFlagAndSuggestion) {
  const char* argv[] = {"bench", "--tarce=x.json"};
  util::Options o(2, argv);
  EXPECT_EXIT(o.check_known({"trace", "scale"}),
              ::testing::ExitedWithCode(2),
              "unknown option --tarce \\(did you mean --trace\\?\\)");
}

TEST(OptionsStrict, KnownFlagsPass) {
  const char* argv[] = {"bench", "--trace=x.json", "--scale=0.5"};
  util::Options o(3, argv);
  o.check_known({"trace", "scale"});  // must not exit
}

// ---------------------------------------------------------------------------
// End-to-end chaos runs.

exec::RunConfig chaos_cfg(const std::string& spec, int nodes = 4) {
  exec::RunConfig c;
  c.cluster.nnodes = nodes;
  c.cluster.check_coherence = true;
  c.opt = core::shmem_opt_full();
  c.gather_arrays = false;
  if (!spec.empty()) {
    std::string err;
    c.cluster.faults = sim::FaultConfig::parse(spec, &err);
    EXPECT_TRUE(err.empty()) << err;
    c.cluster.watchdog_ns = 2'000'000'000;
  }
  return c;
}

TEST(Chaos, ApplicationResultsSurviveFaultsBitIdentically) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunResult clean = exec::run(prog, chaos_cfg(""));
  const exec::RunResult chaos = exec::run(
      prog, chaos_cfg("drop=0.03,dup=0.01,delay=0.1,reorder=0.05,seed=42"));

  // The channel must hide every fault: same answers, coherence clean.
  ASSERT_EQ(clean.scalars.size(), chaos.scalars.size());
  for (const auto& [name, v] : clean.scalars)
    EXPECT_EQ(v, chaos.scalars.at(name)) << name;

  // And the chaos must actually have happened (else the test is vacuous).
  util::NodeStats t;
  for (const auto& ns : chaos.stats.node) t += ns;
  EXPECT_GT(t.faults_dropped, 0u);
  EXPECT_GT(t.retransmits, 0u);
  // Timing shifts under chaos (it may move either way: delays also change
  // protocol race outcomes), but only timing — results matched above.
  EXPECT_NE(chaos.stats.elapsed_ns, clean.stats.elapsed_ns);
}

TEST(Chaos, SameSeedIsBitIdentical) {
  const auto prog = apps::jacobi(96, 6);
  const char* spec = "drop=0.05,dup=0.02,delay=0.2,reorder=0.1,seed=7";
  const exec::RunResult a = exec::run(prog, chaos_cfg(spec));
  const exec::RunResult b = exec::run(prog, chaos_cfg(spec));
  EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns);
  for (std::size_t i = 0; i < a.stats.node.size(); ++i)
    util::NodeStats::visit_fields(
        a.stats.node[i], [&](const char* name, auto v) {
          util::NodeStats::visit_fields(
              b.stats.node[i], [&](const char* name2, auto v2) {
                if (std::string(name) == name2) {
                  EXPECT_EQ(static_cast<double>(v), static_cast<double>(v2))
                      << name << " node " << i;
                }
              });
        });
  for (const auto& [name, v] : a.scalars)
    EXPECT_EQ(v, b.scalars.at(name)) << name;
}

TEST(Chaos, DifferentSeedsChangeTimingNotResults) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunResult a =
      exec::run(prog, chaos_cfg("drop=0.05,delay=0.2,seed=1"));
  const exec::RunResult b =
      exec::run(prog, chaos_cfg("drop=0.05,delay=0.2,seed=2"));
  for (const auto& [name, v] : a.scalars)
    EXPECT_EQ(v, b.scalars.at(name)) << name;
  EXPECT_NE(a.stats.elapsed_ns, b.stats.elapsed_ns);
}

TEST(Chaos, DisabledFaultsArePassive) {
  const auto prog = apps::jacobi(96, 6);
  const exec::RunResult r = exec::run(prog, chaos_cfg(""));
  for (const auto& ns : r.stats.node) {
    EXPECT_EQ(ns.retransmits, 0u);
    EXPECT_EQ(ns.channel_acks, 0u);
    EXPECT_EQ(ns.dup_suppressed, 0u);
    EXPECT_EQ(ns.faults_dropped, 0u);
    EXPECT_EQ(ns.faults_duplicated, 0u);
    EXPECT_EQ(ns.faults_delayed, 0u);
  }
}

TEST(Chaos, MessagePassingModeSurvivesFaultsToo) {
  const auto prog = apps::jacobi(96, 6);
  exec::RunConfig clean = chaos_cfg("");
  clean.opt = core::msg_passing();
  exec::RunConfig chaos = chaos_cfg("drop=0.03,dup=0.01,seed=11");
  chaos.opt = core::msg_passing();
  const exec::RunResult a = exec::run(prog, clean);
  const exec::RunResult b = exec::run(prog, chaos);
  for (const auto& [name, v] : a.scalars)
    EXPECT_EQ(v, b.scalars.at(name)) << name;
}

// ---------------------------------------------------------------------------
// Liveness failure: dead link.

TEST(ChaosDeathTest, DeadLinkExhaustsRetriesAndExitsWithStallCode) {
  const auto prog = apps::jacobi(64, 2);
  EXPECT_EXIT(
      {
        try {
          exec::run(prog, chaos_cfg("drop=1.0,retries=0,seed=3"));
        } catch (const sim::StallError& e) {
          sim::exit_stall(e);
        }
      },
      ::testing::ExitedWithCode(sim::kStallExitCode),
      "retry budget exhausted on link [0-9]+->[0-9]+");
}

TEST(ChaosDeathTest, WatchdogFiresOnStallAndNamesBlockedTasks) {
  const auto prog = apps::jacobi(64, 2);
  EXPECT_EXIT(
      {
        exec::RunConfig c = chaos_cfg("drop=1.0,retries=30,seed=3");
        c.cluster.watchdog_ns = 1'000'000;  // 1 ms: fire before retries end
        try {
          exec::run(prog, c);
        } catch (const sim::StallError& e) {
          sim::exit_stall(e);
        }
      },
      ::testing::ExitedWithCode(sim::kStallExitCode),
      "watchdog: no compute-task progress");
}

TEST(Chaos, StallReportNamesLinkAndBlockedTasks) {
  const auto prog = apps::jacobi(64, 2);
  try {
    exec::run(prog, chaos_cfg("drop=1.0,retries=0,seed=3"));
    FAIL() << "a fully dead network must stall";
  } catch (const sim::StallError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked tasks:"), std::string::npos) << what;
    EXPECT_NE(what.find("node"), std::string::npos) << what;
    EXPECT_NE(what.find("channel state:"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace fgdsm
