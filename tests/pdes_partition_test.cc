// Partitioned event queues + conservative synchronous-window PDES
// (--sim-threads): the bit-identity contract of src/sim/engine.h.
//
// The load-bearing properties:
//   - cross-partition events merged at a window barrier execute in the fixed
//     global order (dst, time, source seq, source partition), even when an
//     adversarial schedule lands equal timestamps from several sources on
//     one destination — and the order is identical at any worker count;
//   - per-partition sequence counters survive crossing the former 32-bit
//     space without truncation anywhere in the CrossEvent path;
//   - --sim-threads above the partition count clamps harmlessly;
//   - a chaos-mode (fault-injected) application run at --sim-threads=4 is
//     bit-identical to the same run at --sim-threads=1.
//
// Worker threads are real here even on a 1-core host: the tests size the
// process-wide HostBudget explicitly (grants change wall time only).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/executor.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/host_budget.h"

namespace fgdsm {
namespace {

// Restores the real host budget when a test that resizes it exits.
struct BudgetOverride {
  explicit BudgetOverride(int cores) {
    sim::HostBudget::instance().set_total_for_test(cores);
  }
  ~BudgetOverride() { sim::HostBudget::instance().set_total_for_test(saved); }
  int saved = sim::HostBudget::instance().total();
};

// ---------------------------------------------------------------------------
// Engine-level merge determinism.

// One executed event: (partition it ran in, virtual time, payload tag).
using Log = std::vector<std::vector<std::pair<sim::Time, int>>>;

// An adversarial cross-partition storm: every partition runs a lockstep
// driver that, each round, lands one tagged event on EVERY partition at the
// SAME future timestamp. Each (dst, time) slot thus collects one local event
// plus one cross event per other source — equal times colliding from all
// directions — so only the (source seq, source partition) merge key orders
// them. The log records execution order per partition.
Log run_storm(int nparts, int sim_threads, std::uint64_t seq_base,
              int rounds) {
  sim::Engine e;
  e.set_partitions(nparts);
  e.set_window_lookahead(10);
  e.set_sim_threads(sim_threads);
  if (seq_base != 0) e.set_seq_base(seq_base);
  Log log(static_cast<std::size_t>(nparts));
  std::function<void(int, int)> driver = [&](int src, int round) {
    const sim::Time t = e.now() + 10;
    for (int d = 0; d < nparts; ++d) {
      const int dst = (src + d) % nparts;
      const int tag = src * 1000 + round;
      e.schedule_node(dst, t, [&log, dst, t, tag] {
        log[static_cast<std::size_t>(dst)].emplace_back(t, tag);
      });
    }
    if (round + 1 < rounds)
      e.schedule_node(src, t,
                      [&driver, src, round] { driver(src, round + 1); });
  };
  for (int p = 0; p < nparts; ++p)
    e.schedule_node(p, 0, [&driver, p] { driver(p, 0); });
  e.run();
  return log;
}

TEST(PartitionMerge, EqualTimestampCrossEventsOrderDeterministically) {
  const Log a = run_storm(4, 1, 0, 5);
  const Log b = run_storm(4, 1, 0, 5);
  EXPECT_EQ(a, b);
  // Every partition saw every round's fan-in.
  for (const auto& part : a) EXPECT_EQ(part.size(), 20u);
}

TEST(PartitionMerge, WorkerCountNeverChangesTheOrder) {
  BudgetOverride cores(8);
  const Log serial = run_storm(4, 1, 0, 6);
  for (int threads : {2, 3, 4}) {
    const Log par = run_storm(4, threads, 0, 6);
    EXPECT_EQ(serial, par) << "sim_threads=" << threads;
  }
}

TEST(PartitionMerge, SeqCountersSurviveThe32BitBoundary) {
  // Start every partition's counter just below 2^32: the storm's seqs cross
  // the boundary mid-run, and any 32-bit truncation in the cross-event path
  // would fold post-boundary seqs below pre-boundary ones and reorder the
  // equal-timestamp merges.
  BudgetOverride cores(8);
  const std::uint64_t base = (1ull << 32) - 4;
  const Log low = run_storm(4, 1, 0, 5);
  const Log high = run_storm(4, 1, base, 5);
  EXPECT_EQ(low, high);  // seq values differ; the ORDER must not
  EXPECT_EQ(high, run_storm(4, 4, base, 5));
}

// ---------------------------------------------------------------------------
// Application-level identity.

exec::RunConfig app_cfg(int nodes, int sim_threads,
                        const std::string& faults = "") {
  exec::RunConfig c;
  c.cluster.nnodes = nodes;
  c.cluster.sim_threads = sim_threads;
  c.opt = core::shmem_opt_full();
  c.gather_arrays = true;
  if (!faults.empty()) {
    std::string err;
    c.cluster.faults = sim::FaultConfig::parse(faults, &err);
    EXPECT_TRUE(err.empty()) << err;
  }
  return c;
}

void expect_identical(const exec::RunResult& a, const exec::RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns) << label;
  EXPECT_EQ(a.scalars, b.scalars) << label;
  EXPECT_EQ(a.arrays, b.arrays) << label;
  ASSERT_EQ(a.stats.node.size(), b.stats.node.size()) << label;
  for (std::size_t i = 0; i < a.stats.node.size(); ++i) {
    EXPECT_EQ(a.stats.node[i].total_misses(), b.stats.node[i].total_misses())
        << label << " node " << i;
    EXPECT_EQ(a.stats.node[i].messages_sent, b.stats.node[i].messages_sent)
        << label << " node " << i;
    EXPECT_EQ(a.stats.node[i].bytes_sent, b.stats.node[i].bytes_sent)
        << label << " node " << i;
  }
}

TEST(SimThreads, MoreThreadsThanNodesClampsHarmlessly) {
  BudgetOverride cores(16);
  const auto prog = apps::jacobi(96, 4);
  const exec::RunResult one = exec::run(prog, app_cfg(4, 1));
  const exec::RunResult many = exec::run(prog, app_cfg(4, 64));
  expect_identical(one, many, "sim_threads=64 on 4 nodes");
}

TEST(SimThreads, ChaosRunIsBitIdenticalAtFourThreads) {
  BudgetOverride cores(8);
  const std::string faults =
      "drop=0.05,dup=0.02,delay=0.1,reorder=0.05,seed=13";
  const auto prog = apps::jacobi(96, 4);
  const exec::RunResult st1 = exec::run(prog, app_cfg(4, 1, faults));
  const exec::RunResult st4 = exec::run(prog, app_cfg(4, 4, faults));
  expect_identical(st1, st4, "chaos sim_threads=4");
  // And the channel still hides every fault: identical to the clean run.
  const exec::RunResult clean = exec::run(prog, app_cfg(4, 1));
  EXPECT_EQ(clean.scalars, st4.scalars);
  EXPECT_EQ(clean.arrays, st4.arrays);
}

}  // namespace
}  // namespace fgdsm
