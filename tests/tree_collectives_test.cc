#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/apps/apps.h"
#include "src/exec/executor.h"
#include "src/tempest/cluster.h"

namespace fgdsm::tempest {
namespace {

ClusterConfig cfg(int nnodes, Collectives topo, int group = 0) {
  ClusterConfig c;
  c.nnodes = nnodes;
  c.collectives = topo;
  c.collective_group = group;
  return c;
}

const Collectives kTreeShapes[] = {Collectives::kBinary,
                                   Collectives::kBinomial,
                                   Collectives::kTwoLevel};

// The old implementation was a binary tree while its comments claimed
// "binomial" — pin down both shapes explicitly at a non-power-of-two node
// count so the labels can never drift from the structure again.
TEST(TreeCollectives, BinaryShapeAtTwelveNodes) {
  const int n = 12;
  using V = std::vector<int>;
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinary, 0, n),
            (V{1, 2}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinary, 1, n),
            (V{3, 4}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinary, 4, n),
            (V{9, 10}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinary, 5, n),
            (V{11}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinary, 6, n), V{});
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinary, 11, n), 5);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinary, 9, n), 4);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinary, 2, n), 0);
  EXPECT_EQ(Cluster::collective_depth(Collectives::kBinary, n), 3);
}

TEST(TreeCollectives, BinomialShapeAtTwelveNodes) {
  const int n = 12;
  using V = std::vector<int>;
  // Root: every power of two below n. Node i: i | (1<<k) for bits below
  // i's lowest set bit. This is NOT the binary tree above.
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 0, n),
            (V{1, 2, 4, 8}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 2, n),
            (V{3}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 4, n),
            (V{5, 6}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 6, n),
            (V{7}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 8, n),
            (V{9, 10}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 10, n),
            (V{11}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kBinomial, 1, n), V{});
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinomial, 11, n), 10);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinomial, 10, n), 8);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinomial, 7, n), 6);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinomial, 6, n), 4);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kBinomial, 8, n), 0);
  EXPECT_EQ(Cluster::collective_depth(Collectives::kBinomial, n), 3);
}

TEST(TreeCollectives, TwoLevelShapeAtTenNodesGroupFour) {
  const int n = 10, g = 4;  // leaders 0, 4, 8
  using V = std::vector<int>;
  EXPECT_EQ(Cluster::collective_children(Collectives::kTwoLevel, 0, n, g),
            (V{1, 2, 3, 4, 8}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kTwoLevel, 4, n, g),
            (V{5, 6, 7}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kTwoLevel, 8, n, g),
            (V{9}));
  EXPECT_EQ(Cluster::collective_children(Collectives::kTwoLevel, 3, n, g),
            V{});
  EXPECT_EQ(Cluster::collective_parent(Collectives::kTwoLevel, 9, n, g), 8);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kTwoLevel, 4, n, g), 0);
  EXPECT_EQ(Cluster::collective_parent(Collectives::kTwoLevel, 3, n, g), 0);
  EXPECT_EQ(Cluster::collective_depth(Collectives::kTwoLevel, n, g), 2);
  // Auto group size: ceil(sqrt(n)).
  EXPECT_EQ(Cluster::resolve_group(10, 0), 4);
  EXPECT_EQ(Cluster::resolve_group(64, 0), 8);
  EXPECT_EQ(Cluster::resolve_group(10, 3), 3);
}

// Structural invariants every shape must satisfy at awkward node counts:
// parent/children are mutual inverses, children ascend, and the union of
// all child lists covers exactly nodes 1..n-1 (a spanning tree rooted at 0).
TEST(TreeCollectives, ShapesAreSpanningTrees) {
  for (Collectives topo : kTreeShapes) {
    for (int n : {2, 3, 5, 6, 7, 12, 13, 64, 100, 129}) {
      std::set<int> covered;
      for (int i = 0; i < n; ++i) {
        int prev = 0;
        for (int c : Cluster::collective_children(topo, i, n)) {
          EXPECT_GT(c, i) << to_string(topo) << " n=" << n;
          EXPECT_LT(c, n) << to_string(topo) << " n=" << n;
          EXPECT_GT(c, prev) << to_string(topo) << " n=" << n
                             << ": children not ascending";
          prev = c;
          EXPECT_EQ(Cluster::collective_parent(topo, c, n), i)
              << to_string(topo) << " n=" << n << " child " << c;
          EXPECT_TRUE(covered.insert(c).second)
              << to_string(topo) << " n=" << n << ": node " << c
              << " has two parents";
        }
      }
      EXPECT_EQ(static_cast<int>(covered.size()), n - 1)
          << to_string(topo) << " n=" << n << ": tree does not span";
    }
  }
}

TEST(TreeCollectives, BarrierSynchronizes) {
  for (Collectives topo : kTreeShapes) {
    for (int nnodes : {2, 3, 5, 8}) {
      Cluster c(cfg(nnodes, topo));
      c.allocate("pad", 64);
      std::vector<sim::Time> before(nnodes), after(nnodes);
      c.run([&](Node& n, sim::Task& t) {
        for (int r = 0; r < 4; ++r) {
          t.charge(1000 * (n.id() + 1) * (r + 1));
          if (r == 2) before[n.id()] = t.now();
          n.barrier(t);
          if (r == 2) after[n.id()] = t.now();
        }
      });
      const sim::Time last = *std::max_element(before.begin(), before.end());
      for (int i = 0; i < nnodes; ++i)
        EXPECT_GE(after[i], last) << to_string(topo) << " nnodes=" << nnodes
                                  << " node " << i;
    }
  }
}

TEST(TreeCollectives, ReduceMatchesCentralized) {
  for (auto op : {Node::ReduceOp::kSum, Node::ReduceOp::kMax,
                  Node::ReduceOp::kMin}) {
    double central = 0;
    {
      Cluster c(cfg(7, Collectives::kFlat));
      c.allocate("pad", 64);
      std::vector<double> results(7);
      c.run([&](Node& n, sim::Task& t) {
        const double v = std::sin(1.7 * (n.id() + 1)) * 10.0;
        results[n.id()] = n.allreduce(t, v, op);
      });
      for (int i = 1; i < 7; ++i) EXPECT_EQ(results[i], results[0]);
      central = results[0];
    }
    for (Collectives topo : kTreeShapes) {
      Cluster c(cfg(7, topo));
      c.allocate("pad", 64);
      std::vector<double> results(7);
      c.run([&](Node& n, sim::Task& t) {
        const double v = std::sin(1.7 * (n.id() + 1)) * 10.0;
        results[n.id()] = n.allreduce(t, v, op);
      });
      for (int i = 1; i < 7; ++i)
        EXPECT_EQ(results[i], results[0]);  // same value everywhere
      EXPECT_NEAR(central, results[0], 1e-12 * (1.0 + std::abs(central)))
          << to_string(topo);
    }
  }
}

TEST(TreeCollectives, LatencyVsSerializationCrossover) {
  // The tree replaces the coordinator's serial release broadcast with extra
  // wire hops: on the paper's high-latency Myrinet (10 us hops) the
  // centralized barrier actually wins at 8 nodes; when the wire is cheap,
  // the tree's reduced serialization wins. Both regimes must hold.
  auto barrier_time = [&](Collectives topo, sim::Time wire) {
    ClusterConfig c8 = cfg(8, topo);
    c8.costs.wire_latency = wire;
    Cluster c(c8);
    c.allocate("pad", 64);
    sim::Time total = 0;
    c.run([&](Node& n, sim::Task& t) {
      for (int r = 0; r < 10; ++r) n.barrier(t);
      if (n.id() == 0) total = t.now();
    });
    return total;
  };
  EXPECT_GE(barrier_time(Collectives::kBinary, 10 * sim::kUs),
            barrier_time(Collectives::kFlat, 10 * sim::kUs));
  EXPECT_LE(barrier_time(Collectives::kBinary, 1 * sim::kUs),
            barrier_time(Collectives::kFlat, 1 * sim::kUs));
}

TEST(TreeCollectives, WholeAppAgrees) {
  // jacobi under every tree topology must produce the same arrays as the
  // centralized coordinator.
  const auto prog = apps::jacobi(64, 4);
  exec::RunConfig a;
  a.cluster.nnodes = 4;
  a.opt = core::shmem_opt_full();
  a.gather_arrays = true;
  const auto ra = exec::run(prog, a);
  for (Collectives topo : kTreeShapes) {
    exec::RunConfig b = a;
    b.cluster.collectives = topo;
    const auto rb = exec::run(prog, b);
    EXPECT_EQ(ra.arrays.at("u"), rb.arrays.at("u")) << to_string(topo);
    EXPECT_NEAR(ra.scalars.at("checksum"), rb.scalars.at("checksum"),
                1e-9 * std::abs(ra.scalars.at("checksum")))
        << to_string(topo);
  }
}

TEST(TreeCollectives, ParseFlag) {
  Collectives c = Collectives::kFlat;
  int g = 0;
  EXPECT_TRUE(parse_collectives("binomial", &c, &g));
  EXPECT_EQ(c, Collectives::kBinomial);
  EXPECT_TRUE(parse_collectives("twolevel:16", &c, &g));
  EXPECT_EQ(c, Collectives::kTwoLevel);
  EXPECT_EQ(g, 16);
  EXPECT_TRUE(parse_collectives("flat", &c, &g));
  EXPECT_EQ(c, Collectives::kFlat);
  EXPECT_FALSE(parse_collectives("binominal", &c, &g));
  EXPECT_FALSE(parse_collectives("twolevel:x", &c, &g));
}

}  // namespace
}  // namespace fgdsm::tempest
