#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/apps.h"
#include "src/exec/executor.h"
#include "src/tempest/cluster.h"

namespace fgdsm::tempest {
namespace {

ClusterConfig cfg(int nnodes, bool tree) {
  ClusterConfig c;
  c.nnodes = nnodes;
  c.tree_collectives = tree;
  return c;
}

TEST(TreeCollectives, BarrierSynchronizes) {
  for (int nnodes : {2, 3, 5, 8}) {
    Cluster c(cfg(nnodes, true));
    c.allocate("pad", 64);
    std::vector<sim::Time> before(nnodes), after(nnodes);
    c.run([&](Node& n, sim::Task& t) {
      for (int r = 0; r < 4; ++r) {
        t.charge(1000 * (n.id() + 1) * (r + 1));
        if (r == 2) before[n.id()] = t.now();
        n.barrier(t);
        if (r == 2) after[n.id()] = t.now();
      }
    });
    const sim::Time last = *std::max_element(before.begin(), before.end());
    for (int i = 0; i < nnodes; ++i)
      EXPECT_GE(after[i], last) << "nnodes=" << nnodes << " node " << i;
  }
}

TEST(TreeCollectives, ReduceMatchesCentralized) {
  for (auto op : {Node::ReduceOp::kSum, Node::ReduceOp::kMax,
                  Node::ReduceOp::kMin}) {
    double central = 0, tree = 0;
    for (bool use_tree : {false, true}) {
      Cluster c(cfg(7, use_tree));
      c.allocate("pad", 64);
      std::vector<double> results(7);
      c.run([&](Node& n, sim::Task& t) {
        const double v = std::sin(1.7 * (n.id() + 1)) * 10.0;
        results[n.id()] = n.allreduce(t, v, op);
      });
      for (int i = 1; i < 7; ++i)
        EXPECT_EQ(results[i], results[0]);  // same value everywhere
      (use_tree ? tree : central) = results[0];
    }
    EXPECT_NEAR(central, tree, 1e-12 * (1.0 + std::abs(central)));
  }
}

TEST(TreeCollectives, LatencyVsSerializationCrossover) {
  // The tree replaces the coordinator's serial release broadcast with extra
  // wire hops: on the paper's high-latency Myrinet (10 us hops) the
  // centralized barrier actually wins at 8 nodes; when the wire is cheap,
  // the tree's reduced serialization wins. Both regimes must hold.
  auto barrier_time = [&](bool tree, sim::Time wire) {
    ClusterConfig c8 = cfg(8, tree);
    c8.costs.wire_latency = wire;
    Cluster c(c8);
    c.allocate("pad", 64);
    sim::Time total = 0;
    c.run([&](Node& n, sim::Task& t) {
      for (int r = 0; r < 10; ++r) n.barrier(t);
      if (n.id() == 0) total = t.now();
    });
    return total;
  };
  EXPECT_GE(barrier_time(true, 10 * sim::kUs),
            barrier_time(false, 10 * sim::kUs));
  EXPECT_LE(barrier_time(true, 1 * sim::kUs),
            barrier_time(false, 1 * sim::kUs));
}

TEST(TreeCollectives, WholeAppAgrees) {
  // jacobi under tree collectives must produce the same arrays.
  const auto prog = apps::jacobi(64, 4);
  exec::RunConfig a;
  a.cluster.nnodes = 4;
  a.opt = core::shmem_opt_full();
  a.gather_arrays = true;
  exec::RunConfig b = a;
  b.cluster.tree_collectives = true;
  const auto ra = exec::run(prog, a);
  const auto rb = exec::run(prog, b);
  EXPECT_EQ(ra.arrays.at("u"), rb.arrays.at("u"));
  EXPECT_NEAR(ra.scalars.at("checksum"), rb.scalars.at("checksum"),
              1e-9 * std::abs(ra.scalars.at("checksum")));
}

}  // namespace
}  // namespace fgdsm::tempest
