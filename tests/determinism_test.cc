// Determinism and timing-invariant properties of the whole stack: repeated
// runs are bit-identical in results AND virtual time; configuration changes
// move timing in the physically sensible direction; host-parallel batch
// execution is indistinguishable from sequential execution.
#include <gtest/gtest.h>

#include <vector>

#include "src/apps/apps.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"

namespace fgdsm::exec {
namespace {

RunConfig cfg(core::Options opt, int nodes, bool dual = true,
              std::size_t block = 128) {
  RunConfig c;
  c.cluster.nnodes = nodes;
  c.cluster.dual_cpu = dual;
  c.cluster.block_size = block;
  c.opt = opt;
  c.gather_arrays = false;
  return c;
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const auto prog = apps::jacobi(96, 6);
  for (const core::Options& opt :
       {core::shmem_unopt(), core::shmem_opt_full(), core::msg_passing()}) {
    const RunResult a = run(prog, cfg(opt, 4));
    const RunResult b = run(prog, cfg(opt, 4));
    EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns) << opt.label();
    EXPECT_EQ(a.scalars.at("checksum"), b.scalars.at("checksum"))
        << opt.label();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(a.stats.node[i].total_misses(),
                b.stats.node[i].total_misses())
          << opt.label();
      EXPECT_EQ(a.stats.node[i].messages_sent,
                b.stats.node[i].messages_sent)
          << opt.label();
    }
  }
}

// Every observable of a run must be bit-identical whether the specs execute
// serially in order or overlapped on a thread pool: stats counters, virtual
// times, scalars (checksums), and gathered array contents.
void expect_results_identical(const RunResult& a, const RunResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.stats.elapsed_ns, b.stats.elapsed_ns) << label;
  ASSERT_EQ(a.stats.node.size(), b.stats.node.size()) << label;
  for (std::size_t i = 0; i < a.stats.node.size(); ++i) {
    const util::NodeStats& x = a.stats.node[i];
    const util::NodeStats& y = b.stats.node[i];
    EXPECT_EQ(x.read_misses, y.read_misses) << label << " node " << i;
    EXPECT_EQ(x.write_misses, y.write_misses) << label << " node " << i;
    EXPECT_EQ(x.invalidations_received, y.invalidations_received)
        << label << " node " << i;
    EXPECT_EQ(x.ccc_blocks_sent, y.ccc_blocks_sent) << label << " node " << i;
    EXPECT_EQ(x.ccc_messages_sent, y.ccc_messages_sent)
        << label << " node " << i;
    EXPECT_EQ(x.ccc_runtime_calls, y.ccc_runtime_calls)
        << label << " node " << i;
    EXPECT_EQ(x.ccc_calls_elided, y.ccc_calls_elided)
        << label << " node " << i;
    EXPECT_EQ(x.plan_cache_hits, y.plan_cache_hits) << label << " node " << i;
    EXPECT_EQ(x.plan_cache_misses, y.plan_cache_misses)
        << label << " node " << i;
    EXPECT_EQ(x.messages_sent, y.messages_sent) << label << " node " << i;
    EXPECT_EQ(x.bytes_sent, y.bytes_sent) << label << " node " << i;
    EXPECT_EQ(x.barriers, y.barriers) << label << " node " << i;
    EXPECT_EQ(x.reductions, y.reductions) << label << " node " << i;
    EXPECT_EQ(x.compute_ns, y.compute_ns) << label << " node " << i;
    EXPECT_EQ(x.miss_ns, y.miss_ns) << label << " node " << i;
    EXPECT_EQ(x.ccc_ns, y.ccc_ns) << label << " node " << i;
    EXPECT_EQ(x.sync_ns, y.sync_ns) << label << " node " << i;
    EXPECT_EQ(x.handler_steal_ns, y.handler_steal_ns)
        << label << " node " << i;
  }
  EXPECT_EQ(a.scalars, b.scalars) << label;
  EXPECT_EQ(a.arrays, b.arrays) << label;
}

TEST(Determinism, BatchMatchesSequential) {
  // A mixed matrix: two apps, every execution mode, varying node counts and
  // one gather_arrays spec — the shapes run_experiments.sh sweeps.
  const auto jac = apps::jacobi(96, 6);
  const auto grav = apps::grav(32, 2);
  std::vector<ExperimentSpec> specs;
  for (const hpf::Program* prog : {&jac, &grav}) {
    for (const core::Options& opt :
         {core::serial(), core::shmem_unopt(), core::shmem_opt_full(),
          core::shmem_opt_pre(), core::msg_passing()}) {
      ExperimentSpec s;
      s.program = prog;
      s.config = cfg(opt, 4);
      s.label = prog->name + "/" + opt.label();
      specs.push_back(s);
    }
    ExperimentSpec g;
    g.program = prog;
    g.config = cfg(core::shmem_opt_full(), 2);
    g.config.gather_arrays = true;
    g.label = prog->name + "/gather";
    specs.push_back(g);
  }

  std::vector<RunResult> seq;
  seq.reserve(specs.size());
  for (const auto& s : specs) seq.push_back(run(*s.program, s.config));

  for (int jobs : {1, 4, 13}) {
    const std::vector<RunResult> batch = BatchRunner(jobs).run_all(specs);
    ASSERT_EQ(batch.size(), seq.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      expect_results_identical(seq[i], batch[i],
                               specs[i].label + " jobs=" +
                                   std::to_string(jobs));
  }
}

TEST(Determinism, BatchPropagatesFailures) {
  // A failing spec (unbound size symbol) must not poison its neighbors:
  // the good specs still produce results and the failure is rethrown.
  const auto jac = apps::jacobi(64, 2);
  hpf::Program broken = jac;
  broken.sizes = hpf::Bindings{};  // evaluation of extents will throw
  std::vector<ExperimentSpec> specs;
  specs.push_back({&jac, cfg(core::shmem_opt_full(), 2), "good"});
  specs.push_back({&broken, cfg(core::shmem_opt_full(), 2), "broken"});
  EXPECT_THROW(BatchRunner(2).run_all(specs), AssertionError);
}

TEST(Determinism, SingleCpuNeverFasterThanDual) {
  const auto prog = apps::jacobi(96, 6);
  for (const core::Options& opt :
       {core::shmem_unopt(), core::shmem_opt_full()}) {
    const RunResult dual = run(prog, cfg(opt, 4, /*dual=*/true));
    const RunResult single = run(prog, cfg(opt, 4, /*dual=*/false));
    EXPECT_GE(single.stats.elapsed_ns, dual.stats.elapsed_ns) << opt.label();
  }
}

TEST(Determinism, OptimizationNeverIncreasesMisses) {
  for (double scale : {0.05, 0.1}) {
    const auto prog = apps::jacobi(
        static_cast<std::int64_t>(2048 * scale), 6);
    const RunResult unopt = run(prog, cfg(core::shmem_unopt(), 4));
    const RunResult opt = run(prog, cfg(core::shmem_opt_full(), 4));
    EXPECT_LE(opt.stats.totals().total_misses(),
              unopt.stats.totals().total_misses());
  }
}

TEST(Determinism, BulkTransferReducesCccMessages) {
  // jacobi's ghost columns are long contiguous block runs — the case bulk
  // transfer coalesces. (pde's ghost planes at tiny sizes are strided
  // 1-2-block runs with nothing to coalesce.)
  const auto prog = apps::jacobi(128, 4);
  const RunResult base = run(prog, cfg(core::shmem_opt_base(), 4));
  const RunResult bulk = run(prog, cfg(core::shmem_opt_bulk(), 4));
  EXPECT_LT(bulk.stats.totals().ccc_messages_sent,
            base.stats.totals().ccc_messages_sent);
  EXPECT_EQ(bulk.stats.totals().ccc_blocks_sent,
            base.stats.totals().ccc_blocks_sent);
  // At this tiny size a coalesced payload can lengthen the critical path by
  // a hair (its serialization finishes before any block lands, while
  // per-block messages pipeline); at Figure-4 scale bulk wins. Allow 2%.
  EXPECT_LE(bulk.stats.elapsed_ns,
            base.stats.elapsed_ns + base.stats.elapsed_ns / 50);
}

TEST(Determinism, RtElimReducesRuntimeCalls) {
  const auto prog = apps::jacobi(128, 8);
  const RunResult bulk = run(prog, cfg(core::shmem_opt_bulk(), 4));
  const RunResult full = run(prog, cfg(core::shmem_opt_full(), 4));
  EXPECT_LT(full.stats.totals().ccc_runtime_calls,
            bulk.stats.totals().ccc_runtime_calls);
  EXPECT_GT(full.stats.totals().ccc_calls_elided, 0u);
  EXPECT_LE(full.stats.elapsed_ns, bulk.stats.elapsed_ns);
}

TEST(Determinism, PreEliminationSkipsRedundantTransfers) {
  // cg re-gathers q and w every iteration even though at/atr never change;
  // only transfers whose data was overwritten repeat — the +pre level must
  // elide at least some communication on a program with a stable
  // read-only broadcast. Build one directly: two loops both reading the
  // same never-written ghost column.
  using hpf::AffineExpr;
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  hpf::Program prog;
  prog.name = "stable-read";
  prog.arrays.push_back({"u", {N, N}, hpf::DistKind::kBlock});
  prog.arrays.push_back({"v", {N, N}, hpf::DistKind::kBlock});
  prog.sizes.set("n", 64);
  prog.sizes.set("steps", 6);
  hpf::ParallelLoop sweep;
  sweep.name = "sweep";
  sweep.dist = hpf::LoopVar{"j", AffineExpr(1), N - 2};
  sweep.free.push_back(hpf::LoopVar{"i", AffineExpr(0), N - 1});
  sweep.home_array = "v";
  sweep.home_sub = J;
  sweep.reads = {{"u", {I, J - 1}}, {"u", {I, J + 1}}};
  sweep.writes = {{"v", {I, J}}};
  sweep.body = [](hpf::BodyCtx& c) {
    auto u = hpf::view2(c, "u");
    auto v = hpf::view2(c, "v");
    const std::int64_t n = c.sym("n");
    const std::int64_t j = c.dist();
    for (std::int64_t i = 0; i < n; ++i)
      v(i, j) = 0.5 * (u(i, j - 1) + u(i, j + 1));
  };
  hpf::TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");
  tl.phases.push_back(hpf::Phase::make(std::move(sweep)));
  prog.phases.push_back(hpf::Phase::make(std::move(tl)));

  const RunResult full = run(prog, cfg(core::shmem_opt_full(), 4));
  const RunResult pre = run(prog, cfg(core::shmem_opt_pre(), 4));
  // u is never written inside the time loop: after the first iteration the
  // ghost columns are still valid, so +pre ships blocks once instead of six
  // times.
  EXPECT_LT(pre.stats.totals().ccc_blocks_sent,
            full.stats.totals().ccc_blocks_sent / 3);
  EXPECT_LT(pre.stats.elapsed_ns, full.stats.elapsed_ns);
}

TEST(Determinism, SmallerBlocksShrinkEdgeLosses) {
  // grav's 129-point columns: with 32-byte blocks, far more of each ghost
  // column is compiler-controllable than with 128-byte blocks.
  const auto prog = apps::grav(32, 2);  // 33-point columns
  const RunResult b128 = run(prog, cfg(core::shmem_opt_full(), 4, true, 128));
  const RunResult b32 = run(prog, cfg(core::shmem_opt_full(), 4, true, 32));
  const RunResult u128 = run(prog, cfg(core::shmem_unopt(), 4, true, 128));
  const RunResult u32 = run(prog, cfg(core::shmem_unopt(), 4, true, 32));
  const double red128 = 1.0 - b128.stats.avg_misses_per_node() /
                                  u128.stats.avg_misses_per_node();
  const double red32 = 1.0 - b32.stats.avg_misses_per_node() /
                                 u32.stats.avg_misses_per_node();
  EXPECT_GT(red32, red128);
}

}  // namespace
}  // namespace fgdsm::exec
