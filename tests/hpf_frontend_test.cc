#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/hpf/analysis.h"
#include "src/hpf/frontend/lower.h"
#include "src/hpf/frontend/parser.h"

namespace fgdsm::hpf::frontend {
namespace {

const char* kJacobiSrc = R"(
PROGRAM relax
  PARAMETER (n = 32)
  REAL u(n, n), v(n, n)
!HPF$ PROCESSORS P(*)
!HPF$ DISTRIBUTE u(*, BLOCK)
!HPF$ DISTRIBUTE v(*, BLOCK)

!HPF$ INDEPENDENT, ON HOME (u(:, j))
  DO j = 1, n
    DO i = 1, n
      u(i, j) = 0.01 * (i + 2*j)
      v(i, j) = 0
    END DO
  END DO

!HPF$ INDEPENDENT, ON HOME (v(:, j))
  DO j = 2, n-1
    DO i = 2, n-1
      v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
    END DO
  END DO
END
)";

TEST(Lexer, TokenizesDirectivesAndExpressions) {
  const auto toks = lex("!HPF$ DISTRIBUTE a(*, BLOCK)\nx(i) = y + 2.5e1\n");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::kHpfDirective);
  EXPECT_EQ(toks[1].text, "distribute");
  EXPECT_EQ(toks[2].text, "a");
  bool saw_num = false;
  for (const auto& t : toks)
    if (t.kind == Tok::kNumber && t.number == 25.0) saw_num = true;
  EXPECT_TRUE(saw_num);
}

TEST(Lexer, CommentsAreSkippedButDirectivesAreNot) {
  const auto toks = lex("! a plain comment\n!HPF$ INDEPENDENT\n");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kHpfDirective);
  EXPECT_EQ(toks[1].text, "independent");
}

TEST(Parser, ParsesFullProgram) {
  const ProgramAst ast = parse(kJacobiSrc);
  EXPECT_EQ(ast.name, "relax");
  ASSERT_EQ(ast.parameters.size(), 1u);
  EXPECT_EQ(ast.parameters[0].first, "n");
  EXPECT_EQ(ast.parameters[0].second, 32.0);
  ASSERT_EQ(ast.arrays.size(), 2u);
  EXPECT_EQ(ast.arrays[0].dist, "block");
  ASSERT_EQ(ast.loops.size(), 2u);
  EXPECT_EQ(ast.loops[1].home_array, "v");
  EXPECT_EQ(ast.loops[1].home_var, "j");
  ASSERT_EQ(ast.loops[1].levels.size(), 2u);
  EXPECT_EQ(ast.loops[1].levels[0].var, "j");
  ASSERT_EQ(ast.loops[1].body.size(), 1u);
}

TEST(Parser, RejectsBadPrograms) {
  EXPECT_THROW(parse("DO i = 1, 2\n"), ParseError);
  EXPECT_THROW(parse("PROGRAM p\n!HPF$ FROBNICATE\nEND\n"), ParseError);
  EXPECT_THROW(
      parse("PROGRAM p\nREAL a(4)\n!HPF$ DISTRIBUTE b(BLOCK)\nEND\n"),
      ParseError);
}

TEST(Lower, RejectsNonLastDistribution) {
  EXPECT_THROW(
      parse("PROGRAM p\nREAL a(4, 4)\n!HPF$ DISTRIBUTE a(BLOCK, *)\nEND\n"),
      ParseError);
}

TEST(Lower, RejectsNonAffineSubscripts) {
  const char* src = R"(
PROGRAM p
  PARAMETER (n = 8)
  REAL a(n)
!HPF$ DISTRIBUTE a(BLOCK)
!HPF$ INDEPENDENT
  DO i = 1, n
    a(i) = a(i*i)
  END DO
END
)";
  EXPECT_THROW(compile(src), ParseError);
}

TEST(Lower, BuildsIrWithShiftedSubscripts) {
  const hpf::Program prog = compile(kJacobiSrc);
  EXPECT_EQ(prog.name, "relax");
  ASSERT_EQ(prog.arrays.size(), 2u);
  EXPECT_EQ(prog.arrays[0].dist, DistKind::kBlock);
  ASSERT_EQ(prog.phases.size(), 2u);
  const hpf::ParallelLoop& sweep = *prog.phases[1].loop;
  EXPECT_EQ(sweep.dist.sym, "j");
  ASSERT_EQ(sweep.free.size(), 1u);
  // Reads must include u(i, j-1): subscripts (i-1, j-2) after the 0-based
  // shift.
  bool found = false;
  for (const auto& r : sweep.reads) {
    if (r.array != "u") continue;
    Bindings b;
    b.set("i", 5);
    b.set("j", 7);
    if (r.subs[0].eval(b) == 4 && r.subs[1].eval(b) == 5) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(sweep.writes.size(), 1u);
  EXPECT_EQ(sweep.writes[0].array, "v");
}

TEST(Lower, AnalysisFindsGhostColumns) {
  const hpf::Program prog = compile(kJacobiSrc);
  Bindings b = prog.sizes;
  b.set(kSymNProcs, 4);
  b.set(kSymProc, 0);
  const auto transfers =
      analyze_transfers(*prog.phases[1].loop, prog, b, 4);
  // Same pattern as the hand-built jacobi: 6 neighbor ghost columns.
  EXPECT_EQ(transfers.size(), 6u);
  for (const auto& t : transfers) EXPECT_EQ(t.array, "u");
}

TEST(Lower, CompiledProgramExecutesCorrectly) {
  const hpf::Program prog = compile(kJacobiSrc);
  auto run_with = [&](core::Options opt, int nodes) {
    exec::RunConfig cfg;
    cfg.cluster.nnodes = nodes;
    cfg.opt = opt;
    cfg.gather_arrays = true;
    return exec::run(prog, cfg);
  };
  const auto serial = run_with(core::serial(), 1);
  const auto opt = run_with(core::shmem_opt_full(), 4);
  const auto mp = run_with(core::msg_passing(), 4);

  // Spot-check the serial numerics directly.
  const auto& u = serial.arrays.at("u");
  const auto& v = serial.arrays.at("v");
  const std::int64_t n = 32;
  auto at = [&](const std::vector<double>& a, std::int64_t i,
                std::int64_t j) { return a[i + j * n]; };
  EXPECT_DOUBLE_EQ(at(u, 4, 6), 0.01 * (5 + 2 * 7));  // u(5,7) 1-based
  EXPECT_DOUBLE_EQ(at(v, 10, 10),
                   0.25 * (at(u, 9, 10) + at(u, 11, 10) + at(u, 10, 9) +
                           at(u, 10, 11)));

  // Parallel runs agree bit-for-bit.
  for (const auto& [name, va] : serial.arrays) {
    const auto& vo = opt.arrays.at(name);
    const auto& vm = mp.arrays.at(name);
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i], vo[i]) << name << "[" << i << "]";
      ASSERT_EQ(va[i], vm[i]) << name << "[" << i << "]";
    }
  }
}

// Irregular gather source: y(j) = 2 * x(idx(j)). The frontend must lower
// the x(idx(j)) reference to an IndirectRef (with the Fortran 1-based
// value_offset), classify idx as an affine read, and keep x out of the
// affine read set (its footprint is only known at inspection time).
const char* kGatherSrc = R"(
PROGRAM gather
  PARAMETER (n = 64)
  REAL x(n), y(n), idx(n)
!HPF$ PROCESSORS P(*)
!HPF$ DISTRIBUTE x(BLOCK)
!HPF$ DISTRIBUTE y(BLOCK)
!HPF$ DISTRIBUTE idx(BLOCK)

!HPF$ INDEPENDENT, ON HOME (x(j))
  DO j = 1, n
    x(j) = 0.5 * j
    idx(j) = n + 1 - j
    y(j) = 0
  END DO

!HPF$ INDEPENDENT, ON HOME (y(j))
  DO j = 1, n
    y(j) = 2 * x(idx(j))
  END DO
END
)";

TEST(Lower, IndirectReadBecomesIndirectRef) {
  const hpf::Program prog = compile(kGatherSrc);
  ASSERT_EQ(prog.phases.size(), 2u);
  const hpf::ParallelLoop& gather = *prog.phases[1].loop;

  ASSERT_EQ(gather.ind_reads.size(), 1u);
  const hpf::IndirectRef& ir = gather.ind_reads[0];
  EXPECT_EQ(ir.array, "x");
  EXPECT_EQ(ir.index_array, "idx");
  ASSERT_EQ(ir.index_subs.size(), 1u);
  EXPECT_EQ(ir.value_offset, -1);  // Fortran sources store 1-based indices
  Bindings b;
  b.set("j", 5);
  EXPECT_EQ(ir.index_subs[0].eval(b), 4);  // 0-based shift applied

  // idx itself is read through an affine subscript; x is not (its
  // footprint is data-dependent, owned by the inspector).
  bool reads_idx = false, reads_x = false;
  for (const auto& r : gather.reads) {
    if (r.array == "idx") reads_idx = true;
    if (r.array == "x") reads_x = true;
  }
  EXPECT_TRUE(reads_idx);
  EXPECT_FALSE(reads_x);
}

TEST(Lower, RejectsIndirectWrite) {
  const char* src = R"(
PROGRAM scatter
  PARAMETER (n = 8)
  REAL x(n), idx(n)
!HPF$ DISTRIBUTE x(BLOCK)
!HPF$ DISTRIBUTE idx(BLOCK)
!HPF$ INDEPENDENT
  DO j = 1, n
    x(idx(j)) = 1.0
  END DO
END
)";
  EXPECT_THROW(compile(src), ParseError);  // gather only, no scatter
}

TEST(Lower, CompiledGatherExecutesCorrectly) {
  const hpf::Program prog = compile(kGatherSrc);
  auto run_with = [&](core::Options opt, int nodes) {
    exec::RunConfig cfg;
    cfg.cluster.nnodes = nodes;
    cfg.opt = opt;
    cfg.gather_arrays = true;
    return exec::run(prog, cfg);
  };
  const auto serial = run_with(core::serial(), 1);
  const auto unopt = run_with(core::shmem_unopt(), 4);
  const auto opt = run_with(core::shmem_opt_full(), 4);
  const auto mp = run_with(core::msg_passing(), 4);

  // y(j) = 2 * x(n+1-j) = 2 * 0.5 * (n+1-j) = 65 - j (1-based j).
  const auto& y = serial.arrays.at("y");
  ASSERT_EQ(y.size(), 64u);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_DOUBLE_EQ(y[i], 64.0 - static_cast<double>(i)) << i;

  for (const auto& [name, va] : serial.arrays) {
    for (const auto* r : {&unopt, &opt, &mp}) {
      const auto& vr = r->arrays.at(name);
      ASSERT_EQ(va.size(), vr.size()) << name;
      for (std::size_t i = 0; i < va.size(); ++i)
        ASSERT_EQ(va[i], vr[i]) << name << "[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace fgdsm::hpf::frontend
