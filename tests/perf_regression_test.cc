// Regression tests for the simulator hot-path overhaul:
//   - Engine::run is reusable after an event throws (RAII running-flag);
//   - ReliableChannel sequence numbers are 64-bit and survive crossing the
//     former 32-bit wrap point under drops and duplication;
//   - steady-state operation allocates nothing: the event slab and the
//     payload pool reach a high-water mark and stay there.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/event_pool.h"
#include "src/sim/fault.h"
#include "src/sim/network.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/util/assert.h"

namespace fgdsm::sim {
namespace {

// ---- Engine reuse after an exception (running_ released on every exit) ----

TEST(EngineReuse, RunAgainAfterEventThrows) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.schedule(20, [] { throw std::runtime_error("boom"); });
  e.schedule(30, [&] { ++ran; });
  EXPECT_THROW(e.run(), std::runtime_error);
  EXPECT_EQ(ran, 1);
  // The guard must have released the running flag: scheduling and a second
  // run() both work, and the event after the throwing one still executes.
  e.schedule(40, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(e.now(), 40);
}

TEST(EngineReuse, RunAfterNormalCompletion) {
  Engine e;
  int ran = 0;
  e.schedule(5, [&] { ++ran; });
  e.run();
  e.schedule(15, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(e.now(), 15);
}

// ---- 64-bit channel sequence numbers across the old 32-bit wrap ----

struct WrapHarness {
  CostModel costs;
  Engine engine;
  Network net{engine, costs, 2};
  FaultConfig fcfg;
  std::string err;
  std::unique_ptr<FaultInjector> fault;
  std::unique_ptr<ReliableChannel> channel;
  std::vector<std::uint64_t> delivered;  // arg[0] of each in-order delivery
  Semaphore done;
  std::size_t expected = 0;

  explicit WrapHarness(const std::string& faults) {
    fcfg = FaultConfig::parse(faults, &err);
    EXPECT_TRUE(err.empty()) << err;
    fault = std::make_unique<FaultInjector>(fcfg, 2, /*default_window=*/
                                            8 * costs.wire_latency);
    net.set_fault_injector(fault.get());
    ChannelConfig ch;
    ch.ack_type = 999;
    channel = std::make_unique<ReliableChannel>(engine, net, 2, ch);
    channel->attach(0, [](Message&&, Time) {});
    channel->attach(1, [this](Message&& m, Time) {
      delivered.push_back(static_cast<std::uint64_t>(m.arg[0]));
      if (delivered.size() == expected) done.post(engine.now());
    });
  }

  void send_burst(int n) {
    expected = static_cast<std::size_t>(n);
    // A live task keeps the channel retrying dropped messages (with no
    // unfinished task it treats the run as complete and stops); it blocks
    // until the full burst has been delivered in order.
    Task waiter(engine, "waiter", [&](Task& self) { done.wait(self); });
    waiter.start(0);
    Time t = 0;
    for (int i = 0; i < n; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.type = 7;
      m.arg[0] = i;
      t = channel->send(t, std::move(m));
    }
    engine.run();
  }
};

TEST(ChannelSeqWrap, InOrderExactlyOnceAcrossUint32Max) {
  // Start every link as if it had already carried nearly 2^32 messages; the
  // burst crosses the former overflow point. With 32-bit sequence fields the
  // post-wrap seqs compared below the cumulative ack and the stream
  // misordered/stalled; 64-bit seqs must deliver in order exactly once.
  WrapHarness h("drop=0.2,dup=0.1,seed=7");
  h.channel->set_initial_seq((1ull << 32) - 8);
  h.send_burst(64);
  ASSERT_EQ(h.delivered.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(h.delivered[i], i);
}

TEST(ChannelSeqWrap, DeterministicAcrossRuns) {
  auto run = [] {
    WrapHarness h("drop=0.15,dup=0.05,reorder=0.1,seed=11");
    h.channel->set_initial_seq((1ull << 32) - 3);
    h.send_burst(40);
    return std::pair(h.delivered, h.engine.now());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);  // bit-identical virtual end time
}

// ---- Zero allocation in steady state ----

TEST(SteadyState, EventSlabStopsGrowing) {
  Engine e;
  // Self-rescheduling chains: a fixed event population cycling through the
  // pool. Identical laps after the first must be served entirely from the
  // free list — the slab's high-water mark is reached once.
  std::vector<std::function<void()>> chains(32);
  int remaining = 0;
  auto lap = [&] {
    remaining = 10'000;
    for (int k = 0; k < 32; ++k) {
      chains[k] = [&, k] {
        if (remaining-- > 0) e.schedule(e.now() + 1 + k % 7, chains[k]);
      };
      e.schedule(e.now() + 1 + k, chains[k]);
    }
    e.run();
  };
  lap();  // warm-up: slab grows to the population's high-water mark
  const std::uint64_t grows = e.event_slab_grows();
  EXPECT_GT(grows, 0u);
  lap();  // steady state: every push reuses a freed slot
  EXPECT_EQ(e.event_slab_grows(), grows)
      << "event slab grew after warm-up: steady state is allocating";
}

TEST(SteadyState, BufferPoolReusesPayloads) {
  BufferPool pool;
  // Warm up with the working-set of buffer sizes.
  std::vector<std::vector<std::byte>> in_flight;
  for (int i = 0; i < 16; ++i) in_flight.push_back(pool.acquire(4096));
  for (auto& b : in_flight) pool.release(std::move(b));
  in_flight.clear();
  const std::uint64_t fresh = pool.fresh_allocs();
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 16; ++i) in_flight.push_back(pool.acquire(4096));
    for (auto& b : in_flight) pool.release(std::move(b));
    in_flight.clear();
  }
  EXPECT_EQ(pool.fresh_allocs(), fresh)
      << "payload pool allocated in steady state";
}

TEST(SteadyState, ChannelRetransmissionRingStopsGrowing) {
  // Long fault-free burst: the window stays small, so the retained-copy ring
  // must never grow past its initial size and the ooo buffer stays empty.
  WrapHarness h("");  // chaos plumbing enabled, zero fault rates
  h.send_burst(20'000);
  ASSERT_EQ(h.delivered.size(), 20'000u);
  for (std::uint64_t i = 0; i < h.delivered.size(); ++i)
    ASSERT_EQ(h.delivered[i], i);
}

TEST(InlineFnTest, TypicalEventsAreNotBoxed) {
  const std::uint64_t boxed = InlineFn::boxed_count;
  Engine e;
  // A Message-carrying lambda (the network delivery event, the largest
  // common event) must ride inline in the event record.
  Message m;
  m.payload.resize(128);
  int sunk = 0;
  e.schedule(1, [&sunk, m2 = std::move(m)]() mutable {
    sunk += static_cast<int>(m2.payload.size());
  });
  e.run();
  EXPECT_EQ(sunk, 128);
  EXPECT_EQ(InlineFn::boxed_count, boxed)
      << "delivery-sized event was heap-boxed";
}

}  // namespace
}  // namespace fgdsm::sim
