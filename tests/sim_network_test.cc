#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/engine.h"
#include "src/sim/network.h"

namespace fgdsm::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  Engine engine;
  CostModel costs;
};

TEST_F(NetworkTest, DeliversWithLatencyAndBandwidth) {
  Network net(engine, costs, 2);
  std::vector<std::pair<Message, Time>> got;
  net.attach(1, [&](Message&& m, Time t) { got.emplace_back(std::move(m), t); });
  net.attach(0, [&](Message&&, Time) { FAIL() << "nothing for node 0"; });

  Message m;
  m.src = 0;
  m.dst = 1;
  m.type = 7;
  m.addr = 0x1000;
  m.payload.resize(128);
  const Time inject_end = net.send(/*earliest=*/0, std::move(m));

  const Time expect_inject =
      costs.bytes_time(128 + costs.msg_header_bytes);
  EXPECT_EQ(inject_end, expect_inject);
  engine.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first.type, 7);
  EXPECT_EQ(got[0].first.addr, 0x1000u);
  EXPECT_EQ(got[0].first.payload.size(), 128u);
  EXPECT_EQ(got[0].second, expect_inject + costs.wire_latency);
}

TEST_F(NetworkTest, SenderTransmitSerializes) {
  Network net(engine, costs, 2);
  std::vector<Time> arrivals;
  net.attach(1, [&](Message&&, Time t) { arrivals.push_back(t); });

  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    net.send(0, std::move(m));
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const Time per_msg = costs.bytes_time(costs.msg_header_bytes);
  EXPECT_EQ(arrivals[0], per_msg + costs.wire_latency);
  EXPECT_EQ(arrivals[1], 2 * per_msg + costs.wire_latency);
  EXPECT_EQ(arrivals[2], 3 * per_msg + costs.wire_latency);
}

TEST_F(NetworkTest, SelfSendSkipsWire) {
  Network net(engine, costs, 2);
  Time arrival = -1;
  net.attach(0, [&](Message&&, Time t) { arrival = t; });
  Message m;
  m.src = 0;
  m.dst = 0;
  const Time inject_end = net.send(0, std::move(m));
  engine.run();
  EXPECT_EQ(arrival, inject_end);
}

TEST_F(NetworkTest, CountsTraffic) {
  Network net(engine, costs, 2);
  net.attach(1, [](Message&&, Time) {});
  Message m;
  m.src = 0;
  m.dst = 1;
  m.payload.resize(100);
  net.send(0, std::move(m));
  engine.run();
  EXPECT_EQ(net.total_messages(), 1u);
  EXPECT_EQ(net.total_bytes(),
            static_cast<std::uint64_t>(100 + costs.msg_header_bytes));
}

TEST_F(NetworkTest, BandwidthMatchesTable1) {
  // Table 1: 20 MB/s network bandwidth => 50 ns/byte.
  EXPECT_DOUBLE_EQ(costs.ns_per_byte, 50.0);
  EXPECT_EQ(costs.bytes_time(1'000'000), 50 * kMs);
}

}  // namespace
}  // namespace fgdsm::sim
