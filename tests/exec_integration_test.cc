// End-to-end: the jacobi program runs under every execution mode and every
// optimization level, on several cluster shapes, and produces bit-identical
// results; the optimized runs also show the paper's headline effects
// (fewer misses, less communication time).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/apps.h"
#include "src/exec/executor.h"

namespace fgdsm::exec {
namespace {

RunConfig config(core::Options opt, int nnodes = 4,
                 std::size_t block = 128, bool dual = true) {
  RunConfig cfg;
  cfg.cluster.nnodes = nnodes;
  cfg.cluster.block_size = block;
  cfg.cluster.dual_cpu = dual;
  cfg.opt = opt;
  cfg.gather_arrays = true;
  return cfg;
}

// Arrays must match bit-for-bit; reduction-derived scalars may differ in
// the last bits between different node counts (different partial-sum
// grouping), so they get a tight relative tolerance.
void expect_same_arrays(const RunResult& a, const RunResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.arrays.size(), b.arrays.size()) << label;
  for (const auto& [name, va] : a.arrays) {
    const auto it = b.arrays.find(name);
    ASSERT_NE(it, b.arrays.end()) << label << " missing " << name;
    ASSERT_EQ(va.size(), it->second.size()) << label << " " << name;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < va.size(); ++i)
      if (va[i] != it->second[i] && ++bad <= 3)
        ADD_FAILURE() << label << ": " << name << "[" << i << "] "
                      << it->second[i] << " != " << va[i];
    EXPECT_EQ(bad, 0u) << label << ": " << name << " has " << bad
                       << " mismatches";
  }
  for (const auto& [name, sa] : a.scalars) {
    auto it = b.scalars.find(name);
    ASSERT_NE(it, b.scalars.end()) << label;
    EXPECT_NEAR(sa, it->second, 1e-9 * (1.0 + std::abs(sa)))
        << label << " scalar " << name;
  }
}

class JacobiModes : public ::testing::Test {
 protected:
  static constexpr std::int64_t kN = 64;
  static constexpr std::int64_t kSweeps = 6;
  hpf::Program prog = apps::jacobi(kN, kSweeps);
  RunResult serial = run(prog, config(core::serial()));
};

TEST_F(JacobiModes, SerialProducesChecksum) {
  EXPECT_TRUE(serial.scalars.count("checksum"));
  EXPECT_NE(serial.scalars.at("checksum"), 0.0);
  EXPECT_EQ(serial.arrays.at("u").size(), std::size_t(kN * kN));
}

TEST_F(JacobiModes, ShmemUnoptMatchesSerial) {
  const RunResult r = run(prog, config(core::shmem_unopt()));
  expect_same_arrays(serial, r, "sm-unopt");
}

TEST_F(JacobiModes, ShmemOptBaseMatchesSerial) {
  const RunResult r = run(prog, config(core::shmem_opt_base()));
  expect_same_arrays(serial, r, "sm-opt");
}

TEST_F(JacobiModes, ShmemOptBulkMatchesSerial) {
  const RunResult r = run(prog, config(core::shmem_opt_bulk()));
  expect_same_arrays(serial, r, "sm-opt+bulk");
}

TEST_F(JacobiModes, ShmemOptFullMatchesSerial) {
  const RunResult r = run(prog, config(core::shmem_opt_full()));
  expect_same_arrays(serial, r, "sm-opt+rtelim");
}

TEST_F(JacobiModes, ShmemOptPreMatchesSerial) {
  const RunResult r = run(prog, config(core::shmem_opt_pre()));
  expect_same_arrays(serial, r, "sm-opt+pre");
}

TEST_F(JacobiModes, MsgPassingMatchesSerial) {
  const RunResult r = run(prog, config(core::msg_passing()));
  expect_same_arrays(serial, r, "msg-passing");
}

TEST_F(JacobiModes, OptimizationReducesMissesAndTime) {
  // At n=64 a ghost column is only 4 blocks and its two boundary blocks stay
  // with the default protocol (the paper's edge effect, §6/grav), so the
  // reduction is moderate here; see EdgeEffectShrinksWithProblemSize.
  const RunResult unopt = run(prog, config(core::shmem_unopt()));
  const RunResult opt = run(prog, config(core::shmem_opt_full()));
  EXPECT_LT(opt.stats.avg_misses_per_node(),
            0.85 * unopt.stats.avg_misses_per_node());
  EXPECT_LT(opt.stats.elapsed_ns, unopt.stats.elapsed_ns);
}

TEST_F(JacobiModes, EdgeEffectShrinksWithProblemSize) {
  // With 256-row columns (16 blocks each) the trimmed edge blocks are a
  // small fraction; the optimized run should eliminate most misses after
  // the cold start, mirroring Table 3's jacobi row (96.7% reduction).
  hpf::Program big = apps::jacobi(128, 40);  // enough sweeps to amortize cold-start misses
  RunConfig base = config(core::shmem_unopt());
  base.gather_arrays = false;
  RunConfig optc = config(core::shmem_opt_full());
  optc.gather_arrays = false;
  const RunResult unopt = run(big, base);
  const RunResult opt = run(big, optc);
  // Compare misses excluding the identical cold-start (init) portion: total
  // reduction should still be strong.
  EXPECT_LT(opt.stats.avg_misses_per_node(),
            0.65 * unopt.stats.avg_misses_per_node());
  EXPECT_LT(opt.stats.elapsed_ns, unopt.stats.elapsed_ns);
}

TEST_F(JacobiModes, SingleCpuSlowerThanDualCpu) {
  const RunResult dual =
      run(prog, config(core::shmem_unopt(), 4, 128, /*dual=*/true));
  const RunResult single =
      run(prog, config(core::shmem_unopt(), 4, 128, /*dual=*/false));
  expect_same_arrays(dual, single, "single-vs-dual");
  EXPECT_GT(single.stats.elapsed_ns, dual.stats.elapsed_ns);
  EXPECT_GT(single.stats.totals().handler_steal_ns, 0);
}

struct ShapeParam {
  int nnodes;
  std::size_t block;
};

class JacobiShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(JacobiShapes, AllModesAgree) {
  const auto p = GetParam();
  hpf::Program prog = apps::jacobi(48, 4);
  const RunResult serial = run(prog, config(core::serial()));
  for (const core::Options& opt :
       {core::shmem_unopt(), core::shmem_opt_base(), core::shmem_opt_full(),
        core::msg_passing()}) {
    const RunResult r = run(prog, config(opt, p.nnodes, p.block));
    expect_same_arrays(serial, r, opt.label());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiShapes,
    ::testing::Values(ShapeParam{2, 128}, ShapeParam{3, 64},
                      ShapeParam{8, 128}, ShapeParam{8, 32},
                      ShapeParam{5, 64}, ShapeParam{1, 128}),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      return "n" + std::to_string(info.param.nnodes) + "_b" +
             std::to_string(info.param.block);
    });

}  // namespace
}  // namespace fgdsm::exec
