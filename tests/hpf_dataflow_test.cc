#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/executor.h"
#include "src/hpf/dataflow.h"

namespace fgdsm::hpf {
namespace {

const ParallelLoop* find_loop(const Program& p, const std::string& name) {
  const ParallelLoop* out = nullptr;
  std::function<void(const std::vector<Phase>&)> rec =
      [&](const std::vector<Phase>& phases) {
        for (const auto& ph : phases) {
          if (ph.kind == Phase::Kind::kParallelLoop &&
              ph.loop->name == name)
            out = ph.loop.get();
          if (ph.kind == Phase::Kind::kTimeLoop) rec(ph.time->phases);
        }
      };
  rec(p.phases);
  return out;
}

TEST(Dataflow, JacobiSweepsAreKilledByAlternation) {
  // u is rewritten by sweep-vu inside the same time loop, so sweep-uv's
  // ghost columns must be re-communicated every iteration.
  const Program prog = apps::jacobi(64, 8);
  const auto report = analyze_redundancy(prog);
  const ParallelLoop* uv = find_loop(prog, "sweep-uv");
  ASSERT_NE(uv, nullptr);
  const CommFact* f = report.find(uv, "u");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, CommFact::Kind::kEveryTime);
  EXPECT_EQ(f->killed_by, "sweep-vu");
}

TEST(Dataflow, LuBroadcastDependsOnCounter) {
  // The pivot column section moves with k: never hoistable even though the
  // writes alone would already kill it.
  const Program prog = apps::lu(32);
  const auto report = analyze_redundancy(prog);
  const ParallelLoop* upd = find_loop(prog, "update");
  ASSERT_NE(upd, nullptr);
  const CommFact* f = report.find(upd, "a");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, CommFact::Kind::kEveryTime);
}

TEST(Dataflow, StableReadOnlyBroadcastIsFirstOnly) {
  // An array read inside a time loop but never written there: hoistable.
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  Program prog;
  prog.name = "stable";
  prog.arrays.push_back({"u", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"v", {N, N}, DistKind::kBlock});
  prog.sizes.set("n", 32);
  prog.sizes.set("steps", 4);
  ParallelLoop sweep;
  sweep.name = "sweep";
  sweep.dist = LoopVar{"j", AffineExpr(1), N - 2};
  sweep.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
  sweep.home_array = "v";
  sweep.home_sub = J;
  sweep.reads = {{"u", {I, J - 1}}};
  sweep.writes = {{"v", {I, J}}};
  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");
  tl.phases.push_back(Phase::make(std::move(sweep)));
  prog.phases.push_back(Phase::make(std::move(tl)));

  const auto report = analyze_redundancy(prog);
  const ParallelLoop* loop = find_loop(prog, "sweep");
  const CommFact* f = report.find(loop, "u");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, CommFact::Kind::kFirstOnly);

  // Permission fact: section is counter-independent, so the receiver's
  // implicit_writable can use the first-time-only fast path.
  bool found_perm = false;
  for (const auto& p : report.permissions)
    if (p.loop == loop && p.array == "u") {
      found_perm = true;
      EXPECT_FALSE(p.reopen_needed_every_time);
    }
  EXPECT_TRUE(found_perm);
}

TEST(Dataflow, StraightLinePhasesAreFirstOnly) {
  const Program prog = apps::jacobi(64, 4);
  const auto report = analyze_redundancy(prog);
  const ParallelLoop* checksum = find_loop(prog, "checksum");
  ASSERT_NE(checksum, nullptr);
  const CommFact* f = report.find(checksum, "u");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, CommFact::Kind::kFirstOnly);
}

TEST(Dataflow, ReplicatedArraysProduceNoFacts) {
  const Program prog = apps::cg(24, 48, 4);
  const auto report = analyze_redundancy(prog);
  for (const auto& f : report.comm) {
    EXPECT_NE(f.array, "p");
    EXPECT_NE(f.array, "x");
  }
}

TEST(Dataflow, StaticAnalysisAgreesWithRuntimeScheme) {
  // The executor's +pre run-time scheme must elide communication exactly
  // where the static analysis says kFirstOnly: compare transfer volume of
  // the paper-level (+rtelim) run against +pre on a program with one stable
  // and one killed read.
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  Program prog;
  prog.name = "mixed";
  prog.arrays.push_back({"stable", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"hot", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"out", {N, N}, DistKind::kBlock});
  prog.sizes.set("n", 64);
  prog.sizes.set("steps", 5);

  auto consumer = [&](const char* name, const char* src) {
    ParallelLoop l;
    l.name = name;
    l.dist = LoopVar{"j", AffineExpr(1), N - 2};
    l.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    l.home_array = "out";
    l.home_sub = J;
    l.reads = {{src, {I, J - 1}}};
    l.writes = {{"out", {I, J}}};
    l.body = [src = std::string(src)](BodyCtx& c) {
      auto s = view2(c, src);
      auto o = view2(c, "out");
      const std::int64_t n = c.sym("n");
      for (std::int64_t i = 0; i < n; ++i)
        o(i, c.dist()) += s(i, c.dist() - 1);
    };
    return l;
  };
  ParallelLoop writer;  // rewrites `hot` each iteration
  writer.name = "write-hot";
  writer.dist = LoopVar{"j", AffineExpr(0), N - 1};
  writer.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
  writer.home_array = "hot";
  writer.home_sub = J;
  writer.writes = {{"hot", {I, J}}};
  writer.body = [](BodyCtx& c) {
    auto h = view2(c, "hot");
    const std::int64_t n = c.sym("n");
    for (std::int64_t i = 0; i < n; ++i) h(i, c.dist()) += 1.0;
  };

  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");
  tl.phases.push_back(Phase::make(consumer("read-stable", "stable")));
  tl.phases.push_back(Phase::make(std::move(writer)));
  tl.phases.push_back(Phase::make(consumer("read-hot", "hot")));
  prog.phases.push_back(Phase::make(std::move(tl)));

  const auto report = analyze_redundancy(prog);
  EXPECT_EQ(report.find(find_loop(prog, "read-stable"), "stable")->kind,
            CommFact::Kind::kFirstOnly);
  EXPECT_EQ(report.find(find_loop(prog, "read-hot"), "hot")->kind,
            CommFact::Kind::kEveryTime);

  exec::RunConfig cfg;
  cfg.cluster.nnodes = 4;
  cfg.opt = core::shmem_opt_full();
  const auto full = exec::run(prog, cfg);
  cfg.opt = core::shmem_opt_pre();
  const auto pre = exec::run(prog, cfg);
  // 5 iterations: full ships stable 5x + hot 5x; pre ships stable 1x +
  // hot 5x -> expect a reduction of roughly (5-1)/(5+5) = 40%.
  const double ratio =
      static_cast<double>(pre.stats.totals().ccc_blocks_sent) /
      static_cast<double>(full.stats.totals().ccc_blocks_sent);
  EXPECT_NEAR(ratio, 0.6, 0.05);
}

}  // namespace
}  // namespace fgdsm::hpf
