#include "src/proto/stache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#include "src/util/assert.h"
#include "src/util/log.h"

namespace fgdsm::proto {

Stache::Stache(tempest::Cluster& cluster)
    : cluster_(cluster),
      dir_(static_cast<std::size_t>(cluster.nnodes())),
      nodes_(static_cast<std::size_t>(cluster.nnodes())),
      ccc_open_(static_cast<std::size_t>(cluster.nnodes())) {
  // Sharer sets spill past 64 nodes lazily (SharerSet); the dirty-word mask
  // below is a genuine geometry limit (block <= 512 bytes), not a cluster
  // size limit.
  FGDSM_ASSERT_MSG(cluster.words_per_block() <= 64,
                   "dirty masks are 64 bits (block <= 512 bytes)");
  for (NodeState& ns : nodes_) {
    ns.miss_sem.set_name("read miss");
    ns.drain_sem.set_name("transaction drain");
  }
  auto bind = [this](void (Stache::*fn)(Node&, sim::Message&,
                                        HandlerClock&)) {
    return [this, fn](Node& n, sim::Message& m, HandlerClock& c) {
      (this->*fn)(n, m, c);
    };
  };
  cluster.register_handler(MsgType::kReadReq, bind(&Stache::h_read_req));
  cluster.register_handler(MsgType::kPutDataReq,
                           bind(&Stache::h_put_data_req));
  cluster.register_handler(MsgType::kPutDataResp,
                           bind(&Stache::h_put_data_resp));
  cluster.register_handler(MsgType::kReadResp, bind(&Stache::h_read_resp));
  cluster.register_handler(MsgType::kWriteReq, bind(&Stache::h_write_req));
  cluster.register_handler(MsgType::kInval, bind(&Stache::h_inval));
  cluster.register_handler(MsgType::kInvalAck, bind(&Stache::h_inval_ack));
  cluster.register_handler(MsgType::kWriteGrant,
                           bind(&Stache::h_write_grant));
  cluster.register_handler(MsgType::kFetchExclReq,
                           bind(&Stache::h_fetch_excl_req));
  cluster.register_handler(MsgType::kFetchExclResp,
                           bind(&Stache::h_fetch_excl_resp));
  cluster.register_handler(MsgType::kDirectData,
                           bind(&Stache::h_direct_data));
  cluster.register_handler(MsgType::kCccFlush, bind(&Stache::h_ccc_flush));
  for (int i = 0; i < cluster.nnodes(); ++i)
    cluster.node(i).protocol = this;
}

std::uint64_t Stache::full_mask() const {
  const std::size_t w = cluster_.words_per_block();
  return w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
}

Stache::PendingUpgrade* Stache::find_upgrade(NodeState& st, BlockId b) {
  for (PendingUpgrade& up : st.upgrade)
    if (up.b == b) return &up;
  return nullptr;
}

const Stache::PendingUpgrade* Stache::find_upgrade(const NodeState& st,
                                                   BlockId b) {
  for (const PendingUpgrade& up : st.upgrade)
    if (up.b == b) return &up;
  return nullptr;
}

std::uint64_t Stache::pending_mask_of(int node, BlockId b) const {
  const PendingUpgrade* up =
      find_upgrade(nodes_[static_cast<std::size_t>(node)], b);
  return up == nullptr ? 0 : up->mask;
}

void Stache::reset_pending_mask(int node, BlockId b) {
  if (PendingUpgrade* up =
          find_upgrade(nodes_[static_cast<std::size_t>(node)], b))
    up->mask = 0;
}

Stache::DirEntry& Stache::dir(Node& home, BlockId b) {
  auto& d = dir_[static_cast<std::size_t>(home.id())];
  const std::size_t idx = dir_index(b);
  if (idx >= d.size()) d.resize(idx + 1);
  return d[idx];
}

const Stache::DirEntry* Stache::dir_find(int home, BlockId b) const {
  const auto& d = dir_[static_cast<std::size_t>(home)];
  const std::size_t idx = dir_index(b);
  return idx < d.size() ? &d[idx] : nullptr;
}

Stache::DirSnapshot Stache::dir_snapshot(BlockId b) const {
  const DirEntry* e = dir_find(cluster_.home_of(b), b);
  if (e == nullptr) return DirSnapshot{};
  return DirSnapshot{e->state, e->sharers.low64(), e->owner, e->busy};
}

// ---------------------------------------------------------------------------
// Fault entry points (compute-task context)
// ---------------------------------------------------------------------------

void Stache::on_read_fault(Node& node, sim::Task& task, BlockId b) {
  NodeState& st = nodes_[static_cast<std::size_t>(node.id())];
  task.charge(cluster_.costs().fault_cost);
  sim::Message m;
  m.dst = cluster_.home_of(b);
  m.type = static_cast<std::uint16_t>(MsgType::kReadReq);
  m.addr = cluster_.block_addr(b);
  node.send(task, std::move(m));
  st.miss_sem.wait(task);  // posted by h_read_resp
}

void Stache::issue_upgrade(Node& node, sim::Task& task, BlockId b) {
  NodeState& st = nodes_[static_cast<std::size_t>(node.id())];
  FGDSM_LOG("stache", "t=" << task.now() << " upgrade@" << node.id()
                           << " blk=" << b);
  node.set_access(b, Access::kReadWrite);  // eager: do not wait for grant
  PendingUpgrade* up = find_upgrade(st, b);
  if (up == nullptr) {
    st.upgrade.push_back(PendingUpgrade{b, 0, 0});
    up = &st.upgrade.back();
  }
  ++up->reqs;
  ++st.outstanding;
  sim::Message m;
  m.dst = cluster_.home_of(b);
  m.type = static_cast<std::uint16_t>(MsgType::kWriteReq);
  m.addr = cluster_.block_addr(b);
  node.send(task, std::move(m));
}

void Stache::on_write_fault(Node& node, sim::Task& task, BlockId b) {
  task.charge(cluster_.costs().fault_cost);
  if (node.access(b) == Access::kInvalid) {
    // Cold or conflict write miss: fetch the data first (a store writes only
    // part of a block; the rest must be valid for later loads), then upgrade.
    NodeState& st = nodes_[static_cast<std::size_t>(node.id())];
    sim::Message m;
    m.dst = cluster_.home_of(b);
    m.type = static_cast<std::uint16_t>(MsgType::kReadReq);
    m.addr = cluster_.block_addr(b);
    node.send(task, std::move(m));
    st.miss_sem.wait(task);
  }
  // The fetched copy can be revoked at this very instant (a racing
  // invalidation handler); only upgrade a copy we actually hold. The caller
  // (ensure_writable) rescans and retries otherwise.
  if (node.access(b) == Access::kReadOnly) issue_upgrade(node, task, b);
}

void Stache::drain(Node& node, sim::Task& task) {
  NodeState& st = nodes_[static_cast<std::size_t>(node.id())];
  while (st.outstanding > 0) st.drain_sem.wait(task);
}

void Stache::note_writes(Node& node, GAddr addr, std::size_t len) {
  NodeState& st = nodes_[static_cast<std::size_t>(node.id())];
  if (st.upgrade.empty() || len == 0) return;
  const std::size_t bs = cluster_.block_size();
  const BlockId first = cluster_.block_of(addr);
  const BlockId last = cluster_.block_of(addr + len - 1);
  for (BlockId b = first; b <= last; ++b) {
    PendingUpgrade* up = find_upgrade(st, b);
    if (up == nullptr) continue;
    FGDSM_LOG("stache", "note_writes@" << node.id() << " blk=" << b
                                       << " addr=" << addr << " len=" << len);
    const GAddr bstart = cluster_.block_addr(b);
    const GAddr lo = addr > bstart ? addr : bstart;
    const GAddr hi = (addr + len) < (bstart + bs) ? (addr + len)
                                                  : (bstart + bs);
    const std::size_t w0 = (lo - bstart) / 8;
    const std::size_t w1 = (hi - 1 - bstart) / 8;
    for (std::size_t w = w0; w <= w1; ++w)
      up->mask |= std::uint64_t{1} << w;
  }
}

// ---------------------------------------------------------------------------
// Home-side directory machinery
// ---------------------------------------------------------------------------

void Stache::send_block_msg(Node& from, HandlerClock& clk, int dst,
                            MsgType type, BlockId b, std::uint64_t mask,
                            bool with_data) {
  sim::Message m;
  m.dst = dst;
  m.type = static_cast<std::uint16_t>(type);
  m.addr = cluster_.block_addr(b);
  m.arg[0] = static_cast<std::int64_t>(mask);
  if (with_data) {
    m.payload = cluster_.payload_pool().acquire(cluster_.block_size());
    std::memcpy(m.payload.data(), from.mem(m.addr), cluster_.block_size());
    clk.charge(cluster_.costs().copy_time(
        static_cast<std::int64_t>(cluster_.block_size())));
  }
  from.send_from_handler(clk, std::move(m));
}

void Stache::h_read_req(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  FGDSM_DCHECK(cluster_.home_of(b) == self.id());
  DirEntry& e = dir(self, b);
  clk.charge(cluster_.costs().dir_lookup_cost);
  if (e.busy) {
    e.queue_push({MsgType::kReadReq, m.src});
    return;
  }
  service(self, MsgType::kReadReq, m.src, b, clk);
}

void Stache::h_write_req(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  FGDSM_DCHECK(cluster_.home_of(b) == self.id());
  DirEntry& e = dir(self, b);
  clk.charge(cluster_.costs().dir_lookup_cost);
  if (e.busy) {
    e.queue_push({MsgType::kWriteReq, m.src});
    return;
  }
  service(self, MsgType::kWriteReq, m.src, b, clk);
}

void Stache::h_fetch_excl_req(Node& self, sim::Message& m,
                              HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  FGDSM_DCHECK(cluster_.home_of(b) == self.id());
  DirEntry& e = dir(self, b);
  clk.charge(cluster_.costs().dir_lookup_cost);
  if (e.busy) {
    e.queue_push({MsgType::kFetchExclReq, m.src});
    return;
  }
  service(self, MsgType::kFetchExclReq, m.src, b, clk);
}

void Stache::service(Node& home, MsgType type, int requester, BlockId b,
                     HandlerClock& clk) {
  DirEntry& e = dir(home, b);
  FGDSM_DCHECK(!e.busy);
  const int self = home.id();
  FGDSM_LOG("stache", "t=" << clk.t << " service blk=" << b << " type="
                           << static_cast<int>(type) << " req=" << requester
                           << " state=" << static_cast<int>(e.state)
                           << " sharers=" << e.sharers.low64() << " owner="
                           << e.owner);

  switch (type) {
    case MsgType::kReadReq: {
      switch (e.state) {
        case DirState::kIdle:
          // Home memory is authoritative. If the home still holds the block
          // writable, downgrade it (it becomes an implicit sharer) so its
          // future writes fault and invalidate the new reader.
          if (home.access(b) == Access::kReadWrite) {
            home.set_access(b, Access::kReadOnly);
            clk.charge(cluster_.costs().access_change_cost);
            e.sharers.add(self);
          }
          e.state = DirState::kShared;
          e.sharers.add(requester);
          send_block_msg(home, clk, requester, MsgType::kReadResp, b, 0,
                         /*with_data=*/true);
          break;
        case DirState::kShared:
          e.sharers.add(requester);
          send_block_msg(home, clk, requester, MsgType::kReadResp, b, 0,
                         /*with_data=*/true);
          break;
        case DirState::kExcl: {
          FGDSM_ASSERT_MSG(e.owner != requester,
                           "read fault from the exclusive owner (block "
                               << b << ", node " << requester << ")");
          if (e.owner == self) {
            // Home itself is the owner: downgrade in place, serve from
            // memory (no recall messages needed).
            FGDSM_DCHECK(home.access(b) == Access::kReadWrite);
            home.set_access(b, Access::kReadOnly);
            clk.charge(cluster_.costs().access_change_cost);
            reset_pending_mask(self, b);
            e.state = DirState::kShared;
            e.sharers.clear();
            e.sharers.add(self);
            e.sharers.add(requester);
            e.owner = -1;
            send_block_msg(home, clk, requester, MsgType::kReadResp, b, 0,
                           /*with_data=*/true);
          } else {
            e.busy = true;
            e.txn = Txn{Txn::Kind::kRead, requester, 1, 0};
            send_block_msg(home, clk, e.owner, MsgType::kPutDataReq, b, 0,
                           /*with_data=*/false);
          }
          break;
        }
      }
      break;
    }

    case MsgType::kWriteReq: {
      // Legitimate upgrades come from current sharers; anything else means
      // the requester's copy was invalidated while this request was in
      // flight — deny (its dirty words already travelled with the
      // invalidation ack).
      if (e.state != DirState::kShared || !e.sharers.contains(requester)) {
        sim::Message g;
        g.dst = requester;
        g.type = static_cast<std::uint16_t>(MsgType::kWriteGrant);
        g.addr = cluster_.block_addr(b);
        g.arg[1] = 1;  // denied
        home.send_from_handler(clk, std::move(g));
        break;
      }
      const int ninval = e.sharers.count() - 1;  // everyone but the requester
      if (ninval == 0) {
        e.state = DirState::kExcl;
        e.owner = requester;
        e.sharers.clear();
        sim::Message g;
        g.dst = requester;
        g.type = static_cast<std::uint16_t>(MsgType::kWriteGrant);
        g.addr = cluster_.block_addr(b);
        home.send_from_handler(clk, std::move(g));
        break;
      }
      e.busy = true;
      e.txn = Txn{Txn::Kind::kWrite, requester, ninval, 0};
      e.sharers.for_each([&](int n) {
        if (n == requester) return;
        send_block_msg(home, clk, n, MsgType::kInval, b, 0,
                       /*with_data=*/false);
      });
      break;
    }

    case MsgType::kFetchExclReq: {
      switch (e.state) {
        case DirState::kIdle: {
          FGDSM_ASSERT_MSG(requester != self,
                           "fetch-exclusive from home on an idle block");
          if (home.access(b) != Access::kInvalid) {
            home.set_access(b, Access::kInvalid);
            clk.charge(cluster_.costs().access_change_cost);
          }
          reset_pending_mask(self, b);
          e.state = DirState::kExcl;
          e.owner = requester;
          e.sharers.clear();
          send_block_msg(home, clk, requester, MsgType::kFetchExclResp, b, 0,
                         /*with_data=*/true);
          break;
        }
        case DirState::kShared: {
          SharerSet to_inval = e.sharers;
          to_inval.remove(requester);
          // Invalidate the home's own read-only copy inline (its memory is
          // the authoritative storage; no message needed).
          if (to_inval.contains(self)) {
            home.set_access(b, Access::kInvalid);
            clk.charge(cluster_.costs().access_change_cost);
            reset_pending_mask(self, b);
            to_inval.remove(self);
          }
          if (to_inval.empty()) {
            e.state = DirState::kExcl;
            e.owner = requester;
            e.sharers.clear();
            send_block_msg(home, clk, requester, MsgType::kFetchExclResp, b,
                           0, /*with_data=*/true);
            break;
          }
          e.busy = true;
          e.txn = Txn{Txn::Kind::kFetchExcl, requester, to_inval.count(), 0};
          e.sharers.clear();
          to_inval.for_each([&](int n) {
            send_block_msg(home, clk, n, MsgType::kInval, b, 0,
                           /*with_data=*/false);
          });
          break;
        }
        case DirState::kExcl: {
          FGDSM_ASSERT_MSG(e.owner != requester,
                           "fetch-exclusive from current owner (block " << b
                                                                        << ")");
          if (e.owner == self) {
            FGDSM_DCHECK(home.access(b) == Access::kReadWrite);
            home.set_access(b, Access::kInvalid);
            clk.charge(cluster_.costs().access_change_cost);
            reset_pending_mask(self, b);
            e.owner = requester;
            send_block_msg(home, clk, requester, MsgType::kFetchExclResp, b,
                           0, /*with_data=*/true);
          } else {
            e.busy = true;
            e.txn = Txn{Txn::Kind::kFetchExcl, requester, 1, 0};
            const int prev = e.owner;
            e.owner = -1;
            send_block_msg(home, clk, prev, MsgType::kInval, b, 0,
                           /*with_data=*/false);
          }
          break;
        }
      }
      break;
    }

    default:
      FGDSM_ASSERT_MSG(false, "unexpected request type in service()");
  }
}

void Stache::h_put_data_req(Node& self, sim::Message& m, HandlerClock& clk) {
  // We are the exclusive owner; the home recalls the data for a reader.
  const BlockId b = cluster_.block_of(m.addr);
  FGDSM_LOG("stache", "t=" << clk.t << " putdatareq@" << self.id() << " blk="
                           << b);
  FGDSM_ASSERT_MSG(self.access(b) == Access::kReadWrite,
                   "put-data request at non-owner (block " << b << ")");
  self.set_access(b, Access::kReadOnly);
  clk.charge(cluster_.costs().access_change_cost);
  // A granted owner's copy is complete (see grant fix-up), so it carries
  // full-block authority back to the home.
  send_block_msg(self, clk, m.src, MsgType::kPutDataResp, b, full_mask(),
                 /*with_data=*/true);
}

void Stache::apply_masked_words(Node& dst, BlockId b, std::uint64_t mask,
                                const std::vector<std::byte>& payload) {
  const GAddr base = cluster_.block_addr(b);
  const std::size_t words = cluster_.words_per_block();
  FGDSM_DCHECK(payload.size() == cluster_.block_size());
  for (std::size_t w = 0; w < words; ++w) {
    if ((mask & (std::uint64_t{1} << w)) == 0) continue;
    std::memcpy(dst.mem(base + w * 8), payload.data() + w * 8, 8);
  }
}

void Stache::h_put_data_resp(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  DirEntry& e = dir(self, b);
  FGDSM_DCHECK(e.busy && e.txn.kind == Txn::Kind::kRead);
  // The home's own in-flight eager writes live directly in home memory (the
  // home's copy *is* the storage); never let an incoming flush stomp them.
  apply_masked_words(self, b,
                     static_cast<std::uint64_t>(m.arg[0]) &
                         ~pending_mask_of(self.id(), b),
                     m.payload);
  clk.charge(cluster_.costs().copy_time(
      static_cast<std::int64_t>(cluster_.block_size())));
  const int prev_owner = e.owner;
  e.state = DirState::kShared;
  e.sharers.clear();
  e.sharers.add(prev_owner);
  e.sharers.add(e.txn.requester);
  e.owner = -1;
  send_block_msg(self, clk, e.txn.requester, MsgType::kReadResp, b, 0,
                 /*with_data=*/true);
  e.busy = false;
  pump_queue(self, b, clk);
}

void Stache::h_read_resp(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  FGDSM_LOG("stache", "t=" << clk.t << " readresp@" << self.id() << " blk="
                           << b);
  FGDSM_DCHECK(self.access(b) == Access::kInvalid);
  std::memcpy(self.mem(m.addr), m.payload.data(), cluster_.block_size());
  self.set_access(b, Access::kReadOnly);
  clk.charge(cluster_.costs().copy_time(
                 static_cast<std::int64_t>(cluster_.block_size())) +
             cluster_.costs().access_change_cost);
  nodes_[static_cast<std::size_t>(self.id())].miss_sem.post(clk.t);
}

void Stache::h_inval(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  FGDSM_LOG("stache", "t=" << clk.t << " inval@" << self.id() << " blk=" << b
                           << " tag=" << static_cast<int>(self.access(b))
                           << " pend=" << pending_mask_of(self.id(), b));
  NodeState& st = nodes_[static_cast<std::size_t>(self.id())];
  ++self.stats.invalidations_received;
  std::uint64_t mask = 0;
  if (PendingUpgrade* up = find_upgrade(st, b)) {
    // Eager upgrade in flight: ship the words we wrote since the last fetch
    // so they are not lost, and reset the mask — the in-flight requests
    // still get their grant/deny answers, counted by up->reqs.
    mask = up->mask;
    up->mask = 0;
  } else if (self.access(b) == Access::kReadWrite) {
    // Granted exclusive copy: complete, full authority.
    mask = full_mask();
  }
  if (self.access(b) != Access::kInvalid) {
    self.set_access(b, Access::kInvalid);
    clk.charge(cluster_.costs().access_change_cost);
  }
  send_block_msg(self, clk, m.src, MsgType::kInvalAck, b, mask,
                 /*with_data=*/mask != 0);
}

void Stache::h_inval_ack(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  DirEntry& e = dir(self, b);
  FGDSM_DCHECK(e.busy);
  const std::uint64_t mask = static_cast<std::uint64_t>(m.arg[0]);
  FGDSM_LOG("stache", "t=" << clk.t << " invalack@" << self.id() << " blk="
                           << b << " from=" << m.src << " mask=" << mask);
  if (mask != 0) {
    // Skip words the home itself has dirtied under a live eager upgrade
    // (home memory is the home's copy; see h_put_data_resp).
    apply_masked_words(self, b, mask & ~pending_mask_of(self.id(), b),
                       m.payload);
    clk.charge(cluster_.costs().copy_time(
        static_cast<std::int64_t>(cluster_.block_size())));
    e.txn.fixup_mask |= mask;
  }
  FGDSM_DCHECK(e.txn.acks_needed > 0);
  --e.txn.acks_needed;
  finish_txn_if_done(self, b, e, clk);
}

void Stache::finish_txn_if_done(Node& home, BlockId b, DirEntry& e,
                                HandlerClock& clk) {
  if (e.txn.acks_needed > 0) return;
  switch (e.txn.kind) {
    case Txn::Kind::kWrite: {
      e.state = DirState::kExcl;
      e.owner = e.txn.requester;
      e.sharers.clear();
      // Grant; forward any words merged from concurrently-invalidated
      // writers so the new owner's copy becomes complete.
      send_block_msg(home, clk, e.txn.requester, MsgType::kWriteGrant, b,
                     e.txn.fixup_mask, /*with_data=*/e.txn.fixup_mask != 0);
      break;
    }
    case Txn::Kind::kFetchExcl: {
      e.state = DirState::kExcl;
      e.owner = e.txn.requester;
      e.sharers.clear();
      send_block_msg(home, clk, e.txn.requester, MsgType::kFetchExclResp, b,
                     0, /*with_data=*/true);
      break;
    }
    case Txn::Kind::kRead:
      FGDSM_ASSERT_MSG(false, "read transactions complete in put_data_resp");
  }
  e.busy = false;
  pump_queue(home, b, clk);
}

void Stache::pump_queue(Node& home, BlockId b, HandlerClock& clk) {
  DirEntry& e = dir(home, b);
  while (!e.busy && !e.queue_empty()) {
    const QueuedReq req = e.queue_pop();
    clk.charge(cluster_.costs().dir_lookup_cost);
    service(home, req.type, req.requester, b, clk);
  }
}

void Stache::h_write_grant(Node& self, sim::Message& m, HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  NodeState& st = nodes_[static_cast<std::size_t>(self.id())];
  PendingUpgrade* up = find_upgrade(st, b);
  FGDSM_ASSERT_MSG(up != nullptr,
                   "grant/deny without in-flight upgrade (block " << b
                                                                  << ")");
  const bool denied = m.arg[1] != 0;
  FGDSM_LOG("stache", "t=" << clk.t << " grant@" << self.id() << " blk=" << b
                           << " denied=" << denied << " fixup=" << m.arg[0]
                           << " mymask=" << up->mask << " reqs="
                           << up->reqs);
  if (!denied) {
    const std::uint64_t fixup = static_cast<std::uint64_t>(m.arg[0]);
    if (fixup != 0) {
      // Apply every forwarded word we did not write ourselves.
      apply_masked_words(self, b, fixup & ~up->mask, m.payload);
      clk.charge(cluster_.costs().copy_time(
          static_cast<std::int64_t>(cluster_.block_size())));
    }
    FGDSM_DCHECK(self.access(b) == Access::kReadWrite);
  }
  if (--up->reqs == 0) {
    *up = st.upgrade.back();  // swap-erase; order is irrelevant
    st.upgrade.pop_back();
  }
  FGDSM_DCHECK(st.outstanding > 0);
  --st.outstanding;
  st.drain_sem.post(clk.t);
}

void Stache::h_fetch_excl_resp(Node& self, sim::Message& m,
                               HandlerClock& clk) {
  const BlockId b = cluster_.block_of(m.addr);
  NodeState& st = nodes_[static_cast<std::size_t>(self.id())];
  std::memcpy(self.mem(m.addr), m.payload.data(), cluster_.block_size());
  self.set_access(b, Access::kReadWrite);
  clk.charge(cluster_.costs().copy_time(
                 static_cast<std::int64_t>(cluster_.block_size())) +
             cluster_.costs().access_change_cost);
  FGDSM_DCHECK(st.outstanding > 0);
  --st.outstanding;
  st.drain_sem.post(clk.t);
}

// ---------------------------------------------------------------------------
// Compiler-directed primitives
// ---------------------------------------------------------------------------

void Stache::mk_writable(Node& node, sim::Task& task, BlockId first,
                         BlockId last) {
  NodeState& st = nodes_[static_cast<std::size_t>(node.id())];
  ++node.stats.ccc_runtime_calls;
  task.charge(cluster_.costs().ccc_call_overhead);
  for (BlockId b = first; b <= last; ++b) {
    task.charge(cluster_.costs().ccc_per_block_cost);
    switch (node.access(b)) {
      case Access::kReadWrite:
        break;  // nothing to do (the common §4.3 case)
      case Access::kReadOnly:
        issue_upgrade(node, task, b);
        break;
      case Access::kInvalid: {
        ++st.outstanding;
        sim::Message m;
        m.dst = cluster_.home_of(b);
        m.type = static_cast<std::uint16_t>(MsgType::kFetchExclReq);
        m.addr = cluster_.block_addr(b);
        node.send(task, std::move(m));
        break;
      }
    }
  }
  // Pipelined: no wait here. The barrier that follows (Fig. 2) drains.
}

void Stache::implicit_writable(Node& node, sim::Task& task, BlockId first,
                               BlockId last) {
  ++node.stats.ccc_runtime_calls;
  task.charge(cluster_.costs().ccc_call_overhead);
  for (BlockId b = first; b <= last; ++b) {
    task.charge(cluster_.costs().ccc_per_block_cost +
                cluster_.costs().access_change_cost);
    node.set_access(b, Access::kReadWrite);
    if (cluster_.config().check_coherence)
      ccc_open_[static_cast<std::size_t>(node.id())].insert(b);
  }
}

void Stache::implicit_invalidate(Node& node, sim::Task& task, BlockId first,
                                 BlockId last) {
  ++node.stats.ccc_runtime_calls;
  task.charge(cluster_.costs().ccc_call_overhead);
  for (BlockId b = first; b <= last; ++b) {
    task.charge(cluster_.costs().ccc_per_block_cost +
                cluster_.costs().access_change_cost);
    node.set_access(b, Access::kInvalid);
    if (cluster_.config().check_coherence)
      ccc_open_[static_cast<std::size_t>(node.id())].erase(b);
  }
}

std::int64_t Stache::blocks_in(GAddr addr, std::size_t len) const {
  FGDSM_ASSERT_MSG(addr % cluster_.block_size() == 0 &&
                       len % cluster_.block_size() == 0,
                   "compiler-controlled range must be block-aligned");
  return static_cast<std::int64_t>(len / cluster_.block_size());
}

void Stache::send_blocks(Node& node, sim::Task& task, GAddr addr,
                         std::size_t len, const std::vector<int>& dests,
                         std::size_t max_payload) {
  if (len == 0 || dests.empty()) return;
  FGDSM_LOG("ccc", "send_blocks@" << node.id() << " addr=" << addr
                                  << " len=" << len << " dst=" << dests[0]
                                  << " t=" << task.now());
  const std::int64_t nblocks = blocks_in(addr, len);
  ++node.stats.ccc_runtime_calls;
  task.charge(cluster_.costs().ccc_call_overhead);
  FGDSM_ASSERT(max_payload >= cluster_.block_size() &&
               max_payload % cluster_.block_size() == 0);
  for (int dst : dests) {
    FGDSM_ASSERT_MSG(dst != node.id(), "send_blocks to self");
    std::size_t off = 0;
    while (off < len) {
      const std::size_t chunk = std::min(max_payload, len - off);
      sim::Message m;
      m.dst = dst;
      m.type = static_cast<std::uint16_t>(MsgType::kDirectData);
      m.addr = addr + off;
      m.arg[0] = static_cast<std::int64_t>(chunk / cluster_.block_size());
      m.payload = cluster_.payload_pool().acquire(chunk);
      std::memcpy(m.payload.data(), node.mem(addr + off), chunk);
      node.send(task, std::move(m));
      ++node.stats.ccc_messages_sent;
      off += chunk;
    }
    node.stats.ccc_blocks_sent += static_cast<std::uint64_t>(nblocks);
  }
}

void Stache::ready_to_recv(Node& node, sim::Task& task,
                           std::int64_t nblocks) {
  ++node.stats.ccc_runtime_calls;
  task.charge(cluster_.costs().ccc_call_overhead);
  if (nblocks > 0) node.recv_sem.wait(task, nblocks);
}

void Stache::ccc_flush(Node& node, sim::Task& task, GAddr addr,
                       std::size_t len, int owner, std::size_t max_payload) {
  if (len == 0) return;
  FGDSM_LOG("ccc", "ccc_flush@" << node.id() << " addr=" << addr << " len="
                                << len << " owner=" << owner << " t="
                                << task.now());
  ++node.stats.ccc_runtime_calls;
  task.charge(cluster_.costs().ccc_call_overhead);
  FGDSM_ASSERT(owner != node.id());
  std::size_t off = 0;
  while (off < len) {
    const std::size_t chunk = std::min(max_payload, len - off);
    sim::Message m;
    m.dst = owner;
    m.type = static_cast<std::uint16_t>(MsgType::kCccFlush);
    m.addr = addr + off;
    m.arg[0] = static_cast<std::int64_t>(chunk / cluster_.block_size());
    m.payload = cluster_.payload_pool().acquire(chunk);
    std::memcpy(m.payload.data(), node.mem(addr + off), chunk);
    node.send(task, std::move(m));
    ++node.stats.ccc_messages_sent;
    off += chunk;
  }
  node.stats.ccc_blocks_sent +=
      static_cast<std::uint64_t>(blocks_in(addr, len));
}

void Stache::h_direct_data(Node& self, sim::Message& m, HandlerClock& clk) {
  FGDSM_LOG("ccc", "directdata@" << self.id() << " addr=" << m.addr
                                 << " len=" << m.payload.size() << " t="
                                 << clk.t);
  // Compiler contract: the receiver opened these blocks with
  // implicit_writable before the transfer barrier.
  const BlockId first = cluster_.block_of(m.addr);
  const std::int64_t nblocks = m.arg[0];
  for (std::int64_t i = 0; i < nblocks; ++i)
    FGDSM_DCHECK(self.access(first + static_cast<BlockId>(i)) ==
                 Access::kReadWrite);
  std::memcpy(self.mem(m.addr), m.payload.data(), m.payload.size());
  clk.charge(cluster_.costs().copy_time(
      static_cast<std::int64_t>(m.payload.size())));
  self.recv_sem.post(clk.t, nblocks);
}

// ---------------------------------------------------------------------------
// Coherence-invariant checker
// ---------------------------------------------------------------------------

std::vector<std::string> Stache::find_violations() const {
  std::vector<std::string> out;
  auto report = [&out](const std::string& s) {
    if (out.size() < 32) out.push_back(s);  // cap: one bug floods all blocks
  };
  const int np = cluster_.nnodes();

  // Transaction drain: at a quiescent point every node's initiated
  // transactions have completed, which also means every eager-upgrade entry
  // (and with it every live dirty mask) has been consumed by a grant/deny.
  for (int n = 0; n < np; ++n) {
    const NodeState& st = nodes_[static_cast<std::size_t>(n)];
    if (st.outstanding != 0) {
      std::ostringstream os;
      os << "node " << n << ": " << st.outstanding
         << " transactions outstanding at quiescent point";
      report(os.str());
    }
    for (const PendingUpgrade& up : st.upgrade) {
      std::ostringstream os;
      os << "node " << n << " block " << up.b << ": undrained eager upgrade ("
         << up.reqs << " reqs, dirty mask 0x" << std::hex << up.mask << ")";
      report(os.str());
    }
  }

  // Directory engine drained: no busy entries, no queued requests.
  for (int h = 0; h < np; ++h) {
    const auto& d = dir_[static_cast<std::size_t>(h)];
    for (std::size_t i = 0; i < d.size(); ++i) {
      const DirEntry& e = d[i];
      if (e.busy || !e.queue_empty()) {
        std::ostringstream os;
        os << "home " << h << " block " << dir_block(h, i)
           << ": directory entry " << (e.busy ? "busy" : "")
           << (e.busy && !e.queue_empty() ? ", " : "")
           << (!e.queue_empty() ? "has queued requests" : "")
           << " at quiescent point";
        report(os.str());
      }
    }
  }

  // Directory belief vs. actual tags. A non-Invalid tag at node n for block
  // b must be justified by the directory — or by a compiler-contracted open
  // (implicit_writable), which the directory deliberately does not know
  // about.
  const std::size_t nblocks = cluster_.num_blocks();
  for (BlockId b = 0; b < nblocks; ++b) {
    const int home = cluster_.home_of(b);
    const DirEntry* e = dir_find(home, b);
    const DirState state = e == nullptr ? DirState::kIdle : e->state;
    static const SharerSet kNoSharers;
    const SharerSet& sharers = e == nullptr ? kNoSharers : e->sharers;
    const int owner = e == nullptr ? -1 : e->owner;
    for (int n = 0; n < np; ++n) {
      const Access a = cluster_.node(n).access(b);
      const bool opened =
          ccc_open_[static_cast<std::size_t>(n)].count(b) != 0;
      if (opened) continue;  // contracted incoherence: any tag is legal
      std::ostringstream os;
      switch (state) {
        case DirState::kIdle:
          // Only the home's copy exists (its memory is the storage).
          if (a != Access::kInvalid && n != home) {
            os << "block " << b << " Idle at home " << home << " but node "
               << n << " holds tag " << tempest::to_string(a);
            report(os.str());
          }
          break;
        case DirState::kShared:
          // Read-only copies at the sharer set; nobody writable.
          if (a == Access::kReadWrite) {
            os << "block " << b << " Shared (sharers 0x" << std::hex
               << sharers.low64() << std::dec << ") but node " << n
               << " holds a writable tag";
            report(os.str());
          } else if (a == Access::kReadOnly && !sharers.contains(n)) {
            os << "block " << b << " Shared (sharers 0x" << std::hex
               << sharers.low64() << std::dec << ") but non-sharer node " << n
               << " holds a readonly tag";
            report(os.str());
          }
          break;
        case DirState::kExcl:
          if (n == owner) {
            if (a != Access::kReadWrite) {
              os << "block " << b << " Excl at node " << owner
                 << " but the owner's tag is " << tempest::to_string(a);
              report(os.str());
            }
          } else if (a != Access::kInvalid) {
            os << "block " << b << " Excl at node " << owner << " but node "
               << n << " holds tag " << tempest::to_string(a);
            report(os.str());
          }
          break;
      }
    }
  }
  return out;
}

void Stache::check_invariants(Node& node) {
  const std::vector<std::string> v = find_violations();
  if (v.empty()) return;
  std::ostringstream os;
  os << "coherence invariants violated at barrier (checked from node "
     << node.id() << "): ";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i == 0 ? "" : "; ") << v[i];
  FGDSM_ASSERT_MSG(false, os.str());
}

std::shared_ptr<void> Stache::capture_snapshot(Node& node) {
  const std::size_t n = static_cast<std::size_t>(node.id());
  auto s = std::make_shared<NodeSnapshot>();
  for (const DirEntry& e : dir_[n])
    FGDSM_ASSERT_MSG(!e.busy && e.queue_empty(),
                     "checkpoint capture at a non-quiescent directory (node "
                         << node.id() << ")");
  s->dir = dir_[n];
  s->ccc_open = ccc_open_[n];
  const NodeState& st = nodes_[n];
  s->upgrade = st.upgrade;
  s->outstanding = st.outstanding;
  s->miss_sem = st.miss_sem.count();
  s->drain_sem = st.drain_sem.count();
  return s;
}

void Stache::restore_snapshot(Node& node, const std::shared_ptr<void>& sp) {
  const std::size_t n = static_cast<std::size_t>(node.id());
  NodeState& st = nodes_[n];
  if (sp == nullptr) {
    // Pristine initial state: an empty directory (entries regrow on first
    // request) and no transaction bookkeeping.
    dir_[n].clear();
    ccc_open_[n].clear();
    st.outstanding = 0;
    st.upgrade.clear();
    st.miss_sem.restore_for_recovery(0);
    st.drain_sem.restore_for_recovery(0);
    return;
  }
  const auto& s = *std::static_pointer_cast<NodeSnapshot>(sp);
  dir_[n] = s.dir;
  ccc_open_[n] = s.ccc_open;
  st.outstanding = s.outstanding;
  st.upgrade = s.upgrade;
  st.miss_sem.restore_for_recovery(s.miss_sem);
  st.drain_sem.restore_for_recovery(s.drain_sem);
}

void Stache::h_ccc_flush(Node& self, sim::Message& m, HandlerClock& clk) {
  FGDSM_LOG("ccc", "cccflush@" << self.id() << " addr=" << m.addr << " len="
                               << m.payload.size() << " t=" << clk.t);
  // We are the owner; a compiler-identified non-owner writer returns its
  // results. Our copy is exclusive and writable; just store the bytes.
  const BlockId first = cluster_.block_of(m.addr);
  const std::int64_t nblocks = m.arg[0];
  for (std::int64_t i = 0; i < nblocks; ++i)
    FGDSM_DCHECK(self.access(first + static_cast<BlockId>(i)) ==
                 Access::kReadWrite);
  std::memcpy(self.mem(m.addr), m.payload.data(), m.payload.size());
  clk.charge(cluster_.costs().copy_time(
      static_cast<std::int64_t>(m.payload.size())));
  self.recv_sem.post(clk.t, nblocks);
}

}  // namespace fgdsm::proto
