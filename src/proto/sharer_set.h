// Sharer set for one directory entry.
//
// The original directory kept sharers in a raw 64-bit bitmask, hard-limiting
// the cluster to 64 nodes. This type keeps that representation as the inline
// fast path — nodes 0–63 live in one word, no heap, identical operations —
// and spills nodes >= 64 into a lazily allocated vector of additional 64-bit
// words sized only as high as the largest member ever added. A 1024-node
// cluster therefore pays extra memory only for directory entries whose
// blocks are actually shared above node 63 (page-granular homing makes most
// sharer sets small and low-numbered).
//
// Iteration (for_each) visits members in ascending node order — the
// invalidation fan-out loops over this, and ascending order is part of the
// simulator's bit-identity contract (the old code scanned n = 0..nnodes).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace fgdsm::proto {

class SharerSet {
 public:
  void add(int n) {
    if (n < 64) {
      lo_ |= std::uint64_t{1} << n;
      return;
    }
    const std::size_t w = word(n);
    if (w >= hi_.size()) hi_.resize(w + 1, 0);
    hi_[w] |= mask(n);
  }

  void remove(int n) {
    if (n < 64) {
      lo_ &= ~(std::uint64_t{1} << n);
      return;
    }
    const std::size_t w = word(n);
    if (w < hi_.size()) hi_[w] &= ~mask(n);
  }

  bool contains(int n) const {
    if (n < 64) return (lo_ >> n) & 1;
    const std::size_t w = word(n);
    return w < hi_.size() && (hi_[w] & mask(n)) != 0;
  }

  // Drops membership but keeps the spill capacity — a directory entry that
  // once went wide will likely go wide again.
  void clear() {
    lo_ = 0;
    for (std::uint64_t& w : hi_) w = 0;
  }

  int count() const {
    int c = std::popcount(lo_);
    for (std::uint64_t w : hi_) c += std::popcount(w);
    return c;
  }

  bool empty() const {
    if (lo_ != 0) return false;
    for (std::uint64_t w : hi_)
      if (w != 0) return false;
    return true;
  }

  // The inline word (nodes 0–63) — snapshot/logging compatibility.
  std::uint64_t low64() const { return lo_; }

  // Visit members in ascending node order.
  template <class F>
  void for_each(F&& f) const {
    for (std::uint64_t w = lo_; w != 0; w &= w - 1)
      f(std::countr_zero(w));
    for (std::size_t i = 0; i < hi_.size(); ++i)
      for (std::uint64_t w = hi_[i]; w != 0; w &= w - 1)
        f(static_cast<int>(64 * (i + 1)) + std::countr_zero(w));
  }

 private:
  static std::size_t word(int n) {
    return static_cast<std::size_t>(n) / 64 - 1;
  }
  static std::uint64_t mask(int n) {
    return std::uint64_t{1} << (static_cast<std::size_t>(n) % 64);
  }

  std::uint64_t lo_ = 0;               // nodes 0–63 (the paper-scale path)
  std::vector<std::uint64_t> hi_;      // nodes 64+; allocated on first use
};

}  // namespace fgdsm::proto
