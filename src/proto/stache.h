// "Stache" — the default coherence protocol of the paper's platform: a
// directory-based, eager-invalidate, multiple-writer release-consistency
// protocol implemented entirely as user-level active-message handlers on the
// Tempest substrate (paper §3, §5).
//
// Protocol outline
// ----------------
// Every block has a *home* node (page-granularity round-robin); the home's
// backing memory is the block's storage and the home runs its directory
// entry. Directory states: Idle (home memory authoritative, no remote
// copies), Shared{S} (read-only copies at S; home memory authoritative),
// Excl{o} (node o holds the one authoritative read-write copy).
//
// A read fault sends kReadReq to the home and stalls until kReadResp. If the
// directory is Excl, the home first recalls the data with
// kPutDataReq/kPutDataResp (the owner downgrades to ReadOnly) — this is the
// 4-message chain of the paper's Figure 1(a).
//
// A write fault on a ReadOnly copy upgrades *eagerly*: the tag flips to
// ReadWrite immediately and kWriteReq is sent, but the processor does not
// wait for kWriteGrant ("it attempts to hide write latency by not waiting
// for the write ownership grant", §5). The transaction stays outstanding and
// drain() — called at release points — waits for it. A write fault on an
// Invalid block first fetches the data (read path), then upgrades.
//
// Multiple-writer correctness. Between the eager upgrade and its grant,
// several nodes can hold writable copies of one block (false sharing at
// array column boundaries — exactly the "edge" blocks the compiler leaves to
// this protocol). Correctness is preserved by per-word dirty masks:
//   - while an upgrade is in flight, the node records which words it stores
//     (Node::note_writes drives this);
//   - an invalidation acknowledges with only the dirty words; the home
//     merges them into its memory *and forwards them inside the eventual
//     kWriteGrant* to the winning writer, which applies every word it has
//     not itself dirtied. A granted (sole) writer's copy is therefore always
//     complete, so its later flushes can carry full-block authority.
//   - a kWriteReq from a node whose copy was invalidated while the request
//     was in flight is *denied* (the home sees the requester is no longer a
//     sharer); the denied node simply closes the transaction — its dirty
//     words already travelled with the invalidation acknowledgement.
//
// Compiler-directed extensions (§4.2). The same module implements the
// primitives the paper adds for compiler-controlled blocks: mk_writable
// (pipelined fetch-exclusive), implicit_writable / implicit_invalidate
// (purely local tag flips — deliberate, compiler-contracted incoherence),
// send_blocks / ready_to_recv (sender-initiated tagged data + counting
// semaphore), and ccc_flush (non-owner writes returning to the owner).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/proto/sharer_set.h"
#include "src/sim/sync.h"
#include "src/tempest/cluster.h"
#include "src/tempest/node.h"
#include "src/tempest/protocol.h"
#include "src/tempest/types.h"

namespace fgdsm::proto {

using tempest::Access;
using tempest::BlockId;
using tempest::GAddr;
using tempest::HandlerClock;
using tempest::MsgType;
using tempest::Node;

class Stache : public tempest::Protocol {
 public:
  // Construct and install: registers all protocol message handlers on the
  // cluster and sets itself as every node's protocol. Must outlive the run.
  explicit Stache(tempest::Cluster& cluster);

  // ---- tempest::Protocol ----
  void on_read_fault(Node& node, sim::Task& task, BlockId b) override;
  void on_write_fault(Node& node, sim::Task& task, BlockId b) override;
  void drain(Node& node, sim::Task& task) override;
  void note_writes(Node& node, GAddr addr, std::size_t len) override;

  // ---- Compiler-directed primitives (task context; see file comment) ----

  // Bring [first,last] to writable state at `node`, pipelined: issues one
  // transaction per block not already ReadWrite and returns without waiting
  // (the following barrier's drain provides the completion point).
  void mk_writable(Node& node, sim::Task& task, BlockId first, BlockId last);

  // Locally open [first,last] for incoming stores. No messages: the
  // directory deliberately keeps believing the owner is exclusive.
  void implicit_writable(Node& node, sim::Task& task, BlockId first,
                         BlockId last);

  // Locally drop [first,last]; restores consistency with the directory's
  // belief after a compiler-controlled phase.
  void implicit_invalidate(Node& node, sim::Task& task, BlockId first,
                           BlockId last);

  // Ship [addr, addr+len) from this node's memory to each destination as
  // specially tagged data messages. Contiguous blocks are coalesced into
  // payloads of up to max_payload bytes (the paper's bulk-transfer
  // optimization; pass block_size to disable coalescing).
  void send_blocks(Node& node, sim::Task& task, GAddr addr, std::size_t len,
                   const std::vector<int>& dests, std::size_t max_payload);

  // Block until `nblocks` compiler-directed data blocks have arrived
  // (counting semaphore, §4.2).
  void ready_to_recv(Node& node, sim::Task& task, std::int64_t nblocks);

  // Non-owner write epilogue: ship [addr, addr+len) back to the owner.
  // The owner must pair this with ready_to_recv for the same block count.
  void ccc_flush(Node& node, sim::Task& task, GAddr addr, std::size_t len,
                 int owner, std::size_t max_payload);

  // Number of blocks fully contained in [addr, addr+len) — what send_blocks
  // will transmit and the receiver must await.
  std::int64_t blocks_in(GAddr addr, std::size_t len) const;

  // ---- Introspection for tests ----
  enum class DirState : std::uint8_t { kIdle, kShared, kExcl };
  struct DirSnapshot {
    DirState state = DirState::kIdle;
    std::uint64_t sharers = 0;  // inline word: members among nodes 0–63
    int owner = -1;
    bool busy = false;
  };
  DirSnapshot dir_snapshot(BlockId b) const;
  int outstanding(int node) const { return nodes_[node].outstanding; }

  // ---- Coherence-invariant checker (--check-coherence) ----
  // Validates the global protocol invariants at a quiescent point (all
  // transactions drained, every compute task blocked except the caller's):
  //   - no directory entry busy or with queued requests;
  //   - per-node transaction counts and dirty-mask upgrade state drained;
  //   - every non-Invalid tag is justified by the directory's belief (home
  //     under Idle; sharer-set membership under Shared; the owner under
  //     Excl) or by a compiler-contracted open (implicit_writable).
  // Returns human-readable descriptions, empty if all invariants hold.
  // The opened-block bookkeeping it relies on is maintained only when the
  // cluster runs with check_coherence set.
  std::vector<std::string> find_violations() const override;
  // tempest::Protocol hook: asserts find_violations() is empty.
  void check_invariants(Node& node) override;

  // ---- Checkpoint / rollback (crash recovery) ----
  // Per-node protocol state at a quiescent point: the directory entries
  // homed at the node (all idle — no busy entries or queued requests), its
  // compiler-contracted opens, and its (drained) transaction bookkeeping.
  std::shared_ptr<void> capture_snapshot(Node& node) override;
  void restore_snapshot(Node& node,
                        const std::shared_ptr<void>& s) override;

 private:
  struct Txn {
    enum class Kind : std::uint8_t { kRead, kWrite, kFetchExcl };
    Kind kind = Kind::kRead;
    int requester = -1;
    int acks_needed = 0;
    std::uint64_t fixup_mask = 0;  // dirty words merged during this txn
  };
  struct QueuedReq {
    MsgType type;
    int requester;
  };
  struct DirEntry {
    DirState state = DirState::kIdle;
    SharerSet sharers;  // inline bitmask for nodes 0–63, lazy spill above
    int owner = -1;
    bool busy = false;
    Txn txn;
    // FIFO of requests deferred while busy: a vector drained by index (the
    // backing store is reused across transactions, so steady-state queueing
    // allocates nothing).
    std::vector<QueuedReq> queue;
    std::uint32_t queue_head = 0;
    bool queue_empty() const { return queue_head == queue.size(); }
    void queue_push(QueuedReq r) { queue.push_back(r); }
    QueuedReq queue_pop() {
      QueuedReq r = queue[queue_head++];
      if (queue_empty()) {
        queue.clear();
        queue_head = 0;
      }
      return r;
    }
  };
  // In-flight eager-upgrade state for one block at one node. A node can have
  // more than one WriteReq outstanding for the same block: if its copy is
  // invalidated while a request is in flight, it may refetch and re-upgrade
  // before the old request is answered. Each request eventually produces one
  // grant or deny; `reqs` counts them. `mask` records words written since
  // the last fetch/invalidation and resets when the copy is invalidated
  // (those words travel with the invalidation ack).
  struct PendingUpgrade {
    BlockId b = 0;
    int reqs = 0;
    std::uint64_t mask = 0;
  };
  struct NodeState {
    int outstanding = 0;
    sim::Semaphore miss_sem;   // read-miss completion (one at a time)
    sim::Semaphore drain_sem;  // one post per completed transaction
    // In-flight eager upgrades, linear-scanned: a node has at most a handful
    // live at once (bounded by its outstanding transactions), so a flat
    // vector beats a hash map on every note_writes probe.
    std::vector<PendingUpgrade> upgrade;
  };
  // One node's capture_snapshot payload (opaque to the cluster).
  struct NodeSnapshot {
    std::vector<DirEntry> dir;
    std::unordered_set<BlockId> ccc_open;
    std::vector<PendingUpgrade> upgrade;
    int outstanding = 0;
    std::int64_t miss_sem = 0;
    std::int64_t drain_sem = 0;
  };

  // Handler bodies (run at the node owning the directory / the copy).
  void h_read_req(Node& self, sim::Message& m, HandlerClock& clk);
  void h_put_data_req(Node& self, sim::Message& m, HandlerClock& clk);
  void h_put_data_resp(Node& self, sim::Message& m, HandlerClock& clk);
  void h_read_resp(Node& self, sim::Message& m, HandlerClock& clk);
  void h_write_req(Node& self, sim::Message& m, HandlerClock& clk);
  void h_inval(Node& self, sim::Message& m, HandlerClock& clk);
  void h_inval_ack(Node& self, sim::Message& m, HandlerClock& clk);
  void h_write_grant(Node& self, sim::Message& m, HandlerClock& clk);
  void h_fetch_excl_req(Node& self, sim::Message& m, HandlerClock& clk);
  void h_fetch_excl_resp(Node& self, sim::Message& m, HandlerClock& clk);
  void h_direct_data(Node& self, sim::Message& m, HandlerClock& clk);
  void h_ccc_flush(Node& self, sim::Message& m, HandlerClock& clk);

  // Home-side helpers.
  static PendingUpgrade* find_upgrade(NodeState& st, BlockId b);
  static const PendingUpgrade* find_upgrade(const NodeState& st, BlockId b);
  std::uint64_t pending_mask_of(int node, BlockId b) const;
  void reset_pending_mask(int node, BlockId b);
  void apply_masked_words(Node& dst, BlockId b, std::uint64_t mask,
                          const std::vector<std::byte>& payload);
  // Dense per-home directory indexing: pages are assigned to homes
  // round-robin, so the blocks homed at one node form a regular lattice.
  // dir_index maps a global BlockId to its slot in that home's flat array
  // and dir_block inverts it (for whole-directory sweeps).
  std::size_t blocks_per_page() const {
    return cluster_.config().page_size / cluster_.block_size();
  }
  std::size_t dir_index(BlockId b) const {
    const std::size_t bpp = blocks_per_page();
    return (b / bpp) / static_cast<std::size_t>(cluster_.nnodes()) * bpp +
           b % bpp;
  }
  BlockId dir_block(int home, std::size_t idx) const {
    const std::size_t bpp = blocks_per_page();
    return (idx / bpp * static_cast<std::size_t>(cluster_.nnodes()) +
            static_cast<std::size_t>(home)) *
               bpp +
           idx % bpp;
  }
  DirEntry& dir(Node& home, BlockId b);
  const DirEntry* dir_find(int home, BlockId b) const;
  void service(Node& home, MsgType type, int requester, BlockId b,
               HandlerClock& clk);
  void finish_txn_if_done(Node& home, BlockId b, DirEntry& e,
                          HandlerClock& clk);
  void pump_queue(Node& home, BlockId b, HandlerClock& clk);
  void send_block_msg(Node& from, HandlerClock& clk, int dst, MsgType type,
                      BlockId b, std::uint64_t mask, bool with_data);
  void issue_upgrade(Node& node, sim::Task& task, BlockId b);

  std::uint64_t full_mask() const;

  tempest::Cluster& cluster_;
  // dir_[home][dir_index(block)] — flat per-home arrays over the blocks
  // homed there, grown lazily to the highest block that ever saw a remote
  // request. Directory lookups on the request hot path are one indexed load.
  std::vector<std::vector<DirEntry>> dir_;
  std::vector<NodeState> nodes_;
  // Per node: blocks deliberately opened by implicit_writable (compiler-
  // contracted incoherence the directory does not know about). Maintained
  // only under ClusterConfig::check_coherence, consumed by find_violations.
  std::vector<std::unordered_set<BlockId>> ccc_open_;
};

}  // namespace fgdsm::proto
