#include "src/core/plan_cache.h"

#include <algorithm>
#include <set>

namespace fgdsm::core {

std::vector<std::string> plan_key_symbols(const hpf::ParallelLoop& loop,
                                          const hpf::Program& prog) {
  std::set<std::string> loop_vars;
  loop_vars.insert(loop.dist.sym);
  for (const auto& fv : loop.free) loop_vars.insert(fv.sym);

  std::set<std::string> syms;
  auto add_expr = [&](const hpf::AffineExpr& e) {
    for (const auto& [s, c] : e.terms()) {
      (void)c;
      if (!loop_vars.count(s)) syms.insert(s);
    }
  };
  add_expr(loop.dist.lo);
  add_expr(loop.dist.hi);
  for (const auto& fv : loop.free) {
    add_expr(fv.lo);
    add_expr(fv.hi);
  }
  add_expr(loop.home_sub);

  std::set<std::string> arrays;
  if (!loop.home_array.empty()) arrays.insert(loop.home_array);
  auto add_ref = [&](const hpf::ArrayRef& r) {
    arrays.insert(r.array);
    for (const auto& sub : r.subs) add_expr(sub);
  };
  for (const auto& r : loop.reads) add_ref(r);
  for (const auto& w : loop.writes) add_ref(w);
  for (const auto& ir : loop.ind_reads) {
    arrays.insert(ir.array);
    arrays.insert(ir.index_array);
    for (const auto& sub : ir.index_subs) add_expr(sub);
  }
  for (const auto& name : arrays)
    for (const auto& e : prog.array(name).extents) add_expr(e);

  return {syms.begin(), syms.end()};
}

std::vector<std::int64_t> PlanCache::key_of(
    const Slot& s, const hpf::Bindings& b,
    const std::vector<std::int64_t>& extra) {
  std::vector<std::int64_t> key;
  key.reserve(s.symbols.size() + extra.size());
  for (const auto& sym : s.symbols) key.push_back(b.get(sym));
  key.insert(key.end(), extra.begin(), extra.end());
  return key;
}

const PlanCache::Entry* PlanCache::lookup(
    const hpf::ParallelLoop& loop, const hpf::Program& prog,
    const hpf::Bindings& b, const std::vector<std::int64_t>& extra_key) {
  auto [it, fresh] = slots_.try_emplace(&loop);
  if (fresh) it->second.symbols = plan_key_symbols(loop, prog);
  Slot& slot = it->second;
  if (slot.miss_streak >= give_up_after_) {  // abandoned: skip key evaluation
    ++misses_;
    return nullptr;
  }
  if (slot.filled && slot.entry.key == key_of(slot, b, extra_key)) {
    slot.miss_streak = 0;
    ++hits_;
    return &slot.entry;
  }
  ++misses_;
  if (++slot.miss_streak >= give_up_after_) {
    slot.entry = Entry{};  // free the storage; the loop will never hit
    slot.filled = false;
  }
  return nullptr;
}

bool PlanCache::should_store(const hpf::ParallelLoop& loop) const {
  auto it = slots_.find(&loop);
  return it == slots_.end() || it->second.miss_streak < give_up_after_;
}

const PlanCache::Entry& PlanCache::insert(
    const hpf::ParallelLoop& loop, const hpf::Program& prog,
    const hpf::Bindings& b, std::vector<hpf::Transfer> transfers,
    CommPlan plan, const std::vector<std::int64_t>& extra_key) {
  auto [it, fresh] = slots_.try_emplace(&loop);
  if (fresh) it->second.symbols = plan_key_symbols(loop, prog);
  Slot& slot = it->second;
  slot.entry.key = key_of(slot, b, extra_key);
  slot.entry.transfers = std::move(transfers);
  slot.entry.plan = std::move(plan);
  slot.filled = true;
  return slot.entry;
}

}  // namespace fgdsm::core
