// Per-node cache of communication plans across repeated visits to the same
// parallel loop (iterative apps run the same loops every timestep).
//
// The paper's model is a compiler that emits the communication schedule
// once; our executor originally re-ran section analysis and planning on
// every loop visit. The analysis (hpf::analyze_transfers) and the plan
// lowering (core::plan_from_transfers) are pure functions of
//   (loop structure, array declarations, referenced symbol values, np)
// and (transfers, layouts, me, block size, alignment) respectively — all of
// which are fixed per run except the symbol values. So the cache key for a
// loop is the value vector of exactly the non-loop-variable symbols its
// bounds, subscripts, home reference, and referenced arrays' extents
// mention: if none of those changed since the last visit, the cached
// transfers and plan are byte-identical to a fresh computation.
//
// Loops whose structure references a time-loop counter (e.g. LU's
// elimination loops, whose bounds shift with the pivot) key on that counter
// and correctly miss every timestep; stencil sweeps (jacobi/pde/shallow)
// key only on problem sizes and hit from the second visit on.
//
// Loops that never hit (kGiveUpAfter consecutive misses — e.g. LU, where
// every elimination step has new bounds) are abandoned: the cache frees
// their entry, stops evaluating key symbols on lookup, and should_store()
// turns false so the executor skips storing, keeping the steady-state miss
// path within noise of an uncached run. Misses are still counted, so the
// hit-rate statistics remain per-visit.
//
// A PlanCache belongs to one node of one run (it bakes in me / np / block
// size / alignment via the plans it stores) and is not thread-safe; the
// executor owns one per NodeRun.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/plan.h"
#include "src/hpf/analysis.h"
#include "src/hpf/ir.h"

namespace fgdsm::core {

// The non-loop-variable symbols whose values the transfer analysis of
// `loop` can observe: dist/free bounds, the home subscript, every read and
// write subscript, and the extents of every referenced array (including the
// home array). Sorted, deduplicated. Loop variables themselves (dist + free)
// are excluded — the analysis ranges over them symbolically.
std::vector<std::string> plan_key_symbols(const hpf::ParallelLoop& loop,
                                          const hpf::Program& prog);

class PlanCache {
 public:
  struct Entry {
    std::vector<std::int64_t> key;          // values of the key symbols
    std::vector<hpf::Transfer> transfers;   // unfiltered analysis result
    CommPlan plan;                          // lowered from `transfers`
  };

  // Returns the cached entry for `loop` if the key symbol values under `b`
  // (plus any caller-supplied extra key components, e.g. the inspector's
  // index-array version counters) match the stored key; nullptr on miss
  // (including first visit).
  const Entry* lookup(const hpf::ParallelLoop& loop,
                      const hpf::Program& prog, const hpf::Bindings& b,
                      const std::vector<std::int64_t>& extra_key = {});

  // Stores (replacing any previous entry) the analysis + plan for `loop`
  // under the key extracted from `b` (appended with `extra_key`), and
  // returns the stored entry.
  const Entry& insert(const hpf::ParallelLoop& loop,
                      const hpf::Program& prog, const hpf::Bindings& b,
                      std::vector<hpf::Transfer> transfers, CommPlan plan,
                      const std::vector<std::int64_t>& extra_key = {});

  // False once `loop` has been abandoned (give_up_after consecutive
  // misses): callers should not bother building an entry to store.
  bool should_store(const hpf::ParallelLoop& loop) const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  // Abandonment threshold (consecutive misses). Set before the first
  // lookup; benches wire --plan-cache-misses=N through here.
  void set_give_up_after(int n) { give_up_after_ = n > 0 ? n : 1; }
  int give_up_after() const { return give_up_after_; }

  static constexpr int kGiveUpAfter = 8;  // the default threshold

 private:
  struct Slot {
    std::vector<std::string> symbols;  // computed once per loop (structural)
    Entry entry;
    bool filled = false;
    int miss_streak = 0;  // consecutive lookup misses; >= give_up_after_: dead
  };
  std::vector<std::int64_t> key_of(const Slot& s, const hpf::Bindings& b,
                                   const std::vector<std::int64_t>& extra);

  std::map<const hpf::ParallelLoop*, Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  int give_up_after_ = kGiveUpAfter;
};

}  // namespace fgdsm::core
