// Execution modes and optimization levels — the configurations the paper
// evaluates (Figures 3 and 4).
#pragma once

#include <cstddef>
#include <string>

namespace fgdsm::core {

enum class Mode {
  kSerial,       // 1 node, no checks: the speedup denominator
  kShmemUnopt,   // default protocol only (transparent shared memory)
  kShmemOpt,     // compiler-directed coherence (Fig. 2 call sequence)
  kMsgPassing,   // the pghpf-style message-passing backend baseline
};

struct Options {
  Mode mode = Mode::kShmemUnopt;

  // Bulk transfer (§4.2 / Fig. 4): coalesce contiguous compiler-controlled
  // blocks into payloads of up to max_payload bytes. Off = one message per
  // block.
  bool bulk_transfer = false;
  std::size_t max_payload = 4096;

  // Run-time overhead elimination (§4.3 / Fig. 4): under whole-program
  // owner-computes assumptions, drop mk_writable (and its barrier), make
  // implicit_writable first-time-only, and drop implicit_invalidate.
  bool rt_overhead_elim = false;

  // Extension (paper's §4.3/§7 future work): availability-based redundant
  // communication elimination — skip a transfer when the same section was
  // already communicated and nothing wrote the array in between.
  bool elim_redundant_comm = false;

  // Host-side (wall-clock) optimization, no effect on simulated results:
  // cache each loop's transfer analysis + CommPlan per node and reuse it
  // while the symbols the loop's structure references keep their values
  // (core::PlanCache). Models the paper's compiler emitting the schedule
  // once instead of re-planning every visit. Off exists only for the
  // equivalence tests and A/B timing. Exception: for loops with indirect
  // reads the same cache holds the inspector's gather schedule, whose
  // misses cost *simulated* time (the needs exchange is real
  // communication) — turning the cache off makes such runs slower in
  // virtual time too, though numerically identical.
  bool plan_cache = true;

  // PlanCache give-up threshold: a loop missing this many consecutive
  // lookups is abandoned (entry freed, key evaluation skipped). Benches
  // expose it as --plan-cache-misses=N. Must be >= 1.
  int plan_cache_misses = 8;

  std::string label() const;
};

// The named configurations used by benches/tests.
Options serial();
Options shmem_unopt();
Options shmem_opt_base();   // sender-initiated transfers only
Options shmem_opt_bulk();   // + bulk transfer
Options shmem_opt_full();   // + run-time overhead elimination
Options shmem_opt_pre();    // + redundant-communication elimination (ext.)
Options msg_passing();

}  // namespace fgdsm::core
