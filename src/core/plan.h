// The communication planner — the paper's second compiler task (§4.2):
// turn the analyzed non-owner read/write sets of a parallel loop into the
// per-node schedule of runtime calls that bypass the default protocol.
//
// Every node computes the same transfer set deterministically, so senders
// and receivers agree on each range and on the block counts the counting
// semaphores await. shmem_limits (block_align_inner) shrinks every range to
// whole blocks; the trimmed edges stay with the default protocol.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/hpf/analysis.h"
#include "src/hpf/layout.h"

namespace fgdsm::core {

using hpf::GAddr;
using hpf::Run;

// Instantiated communication schedule of one parallel loop, from the
// perspective of node `me`.
struct CommPlan {
  // Sender side (I am the HPF owner of the data).
  struct Send {
    Run run;
    int dst;
    bool operator==(const Send& o) const {
      return run == o.run && dst == o.dst;
    }
  };
  std::vector<Send> sends;          // data shipped before the loop
  std::vector<Run> mk_writable;     // ranges I must hold writable first

  // Receiver side.
  std::vector<Run> recv;            // ranges opened with implicit_writable
  // ready_to_recv counts. Units: blocks when the plan is block-aligned
  // (shared memory), bytes otherwise (message passing).
  std::int64_t expected_pre = 0;    // data arriving before the loop
  std::int64_t expected_post = 0;   // flush-backs arriving after (I own them)

  // Non-owner-write epilogue (I am the writer): flush back to the owner.
  struct Flush {
    Run run;
    int owner;
    bool operator==(const Flush& o) const {
      return run == o.run && owner == o.owner;
    }
  };
  std::vector<Flush> flushes;

  // True if ANY node participates in communication for this loop (set
  // identically on every node) — gates the barrier structure, which must be
  // a global decision even for nodes with nothing to send or receive.
  bool any_comm = false;
  // True if ANY transfer in the loop is a non-owner write (set identically
  // on every node) — gates the MP backend's flush epoch.
  bool any_flush = false;

  bool trivial() const {
    return sends.empty() && recv.empty() && expected_pre == 0 &&
           expected_post == 0 && flushes.empty();
  }

  // Full structural equality: schedules, counts, and the global flags.
  bool operator==(const CommPlan& o) const {
    return sends == o.sends && mk_writable == o.mk_writable &&
           recv == o.recv && expected_pre == o.expected_pre &&
           expected_post == o.expected_post && flushes == o.flushes &&
           any_comm == o.any_comm && any_flush == o.any_flush;
  }
  bool operator!=(const CommPlan& o) const { return !(*this == o); }
};

// Layout table for the program's arrays (built by the executor at
// instantiation).
using LayoutMap = std::map<std::string, hpf::ArrayLayout>;

// Build the plan for `loop` as seen by node `me`. The same call on every
// node yields mutually consistent plans. block_align=true (shared memory):
// ranges shrink to whole blocks (shmem_limits) and counts are in blocks;
// block_align=false (message passing): exact section bytes, counts in bytes.
CommPlan build_comm_plan(const hpf::ParallelLoop& loop,
                         const hpf::Program& prog, const hpf::Bindings& b,
                         const LayoutMap& layouts, int np, int me,
                         std::size_t block_size, bool block_align = true);

// Lower an explicit (possibly availability-filtered) transfer list into a
// plan; build_comm_plan is analyze_transfers + this.
CommPlan plan_from_transfers(const std::vector<hpf::Transfer>& transfers,
                             const LayoutMap& layouts, int me,
                             std::size_t block_size, bool block_align);

// Normalize: sort runs by address and merge adjacent/overlapping ones.
std::vector<Run> normalize_runs(std::vector<Run> runs);

}  // namespace fgdsm::core
