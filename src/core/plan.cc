#include "src/core/plan.h"

#include <algorithm>

#include "src/util/assert.h"

namespace fgdsm::core {

std::vector<Run> normalize_runs(std::vector<Run> runs) {
  std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
    return a.addr != b.addr ? a.addr < b.addr : a.len < b.len;
  });
  std::vector<Run> out;
  for (const Run& r : runs) {
    if (r.len == 0) continue;
    if (!out.empty() && r.addr <= out.back().addr + out.back().len) {
      const GAddr end = std::max(out.back().addr + out.back().len,
                                 r.addr + r.len);
      out.back().len = static_cast<std::size_t>(end - out.back().addr);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

CommPlan build_comm_plan(const hpf::ParallelLoop& loop,
                         const hpf::Program& prog, const hpf::Bindings& b,
                         const LayoutMap& layouts, int np, int me,
                         std::size_t block_size, bool block_align) {
  return plan_from_transfers(hpf::analyze_transfers(loop, prog, b, np),
                             layouts, me, block_size, block_align);
}

CommPlan plan_from_transfers(const std::vector<hpf::Transfer>& transfers,
                             const LayoutMap& layouts, int me,
                             std::size_t block_size, bool block_align) {
  CommPlan plan;
  std::vector<Run> recv_runs;
  std::vector<Run> mk_runs;
  const auto units = [&](const Run& r) {
    return static_cast<std::int64_t>(block_align ? r.len / block_size
                                                 : r.len);
  };
  for (const auto& t : transfers) {
    auto lit = layouts.find(t.array);
    FGDSM_ASSERT_MSG(lit != layouts.end(), "no layout for " << t.array);
    std::vector<Run> runs = hpf::linearize(lit->second, t.section);
    if (block_align) {
      // shmem_limits: keep only whole blocks; trimmed edges stay with the
      // default coherence protocol.
      runs = hpf::block_align_inner(runs, block_size);
    }
    if (runs.empty()) continue;
    plan.any_comm = true;
    if (t.for_write) plan.any_flush = true;
    if (t.sender == me) {
      for (const Run& r : runs) {
        plan.sends.push_back(CommPlan::Send{r, t.receiver});
        mk_runs.push_back(r);
        if (t.for_write) plan.expected_post += units(r);
      }
    }
    if (t.receiver == me) {
      for (const Run& r : runs) {
        recv_runs.push_back(r);
        plan.expected_pre += units(r);
        if (t.for_write)
          plan.flushes.push_back(CommPlan::Flush{r, t.sender});
      }
    }
  }
  plan.recv = normalize_runs(std::move(recv_runs));
  plan.mk_writable = normalize_runs(std::move(mk_runs));
  return plan;
}

}  // namespace fgdsm::core
