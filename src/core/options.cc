#include "src/core/options.h"

namespace fgdsm::core {

std::string Options::label() const {
  switch (mode) {
    case Mode::kSerial: return "serial";
    case Mode::kShmemUnopt: return "sm-unopt";
    case Mode::kMsgPassing: return "msg-passing";
    case Mode::kShmemOpt: {
      std::string s = "sm-opt";
      if (bulk_transfer) s += "+bulk";
      if (rt_overhead_elim) s += "+rtelim";
      if (elim_redundant_comm) s += "+pre";
      return s;
    }
  }
  return "?";
}

Options serial() {
  Options o;
  o.mode = Mode::kSerial;
  return o;
}
Options shmem_unopt() {
  Options o;
  o.mode = Mode::kShmemUnopt;
  return o;
}
Options shmem_opt_base() {
  Options o;
  o.mode = Mode::kShmemOpt;
  return o;
}
Options shmem_opt_bulk() {
  Options o = shmem_opt_base();
  o.bulk_transfer = true;
  return o;
}
Options shmem_opt_full() {
  Options o = shmem_opt_bulk();
  o.rt_overhead_elim = true;
  return o;
}
Options shmem_opt_pre() {
  Options o = shmem_opt_full();
  o.elim_redundant_comm = true;
  return o;
}
Options msg_passing() {
  Options o;
  o.mode = Mode::kMsgPassing;
  return o;
}

}  // namespace fgdsm::core
