// Column-major array layout in the global shared segment, and the
// linearization of rectangular sections into contiguous address runs —
// the bridge between index-space analysis and the block-granular runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/hpf/section.h"
#include "src/util/assert.h"

namespace fgdsm::hpf {

using GAddr = std::uint64_t;

// A contiguous byte range in the shared segment.
struct Run {
  GAddr addr = 0;
  std::size_t len = 0;
  bool operator==(const Run& o) const {
    return addr == o.addr && len == o.len;
  }
};

struct ArrayLayout {
  std::string name;
  GAddr base = 0;
  std::vector<std::int64_t> extents;  // dim 0 varies fastest (column-major)
  std::size_t elem = 8;               // bytes per element (REAL*8)

  std::int64_t elements() const {
    std::int64_t n = 1;
    for (auto e : extents) n *= e;
    return n;
  }
  std::size_t bytes() const {
    return static_cast<std::size_t>(elements()) * elem;
  }
  // Column-major linear element index.
  std::int64_t linear(const std::vector<std::int64_t>& idx) const {
    FGDSM_DCHECK(idx.size() == extents.size());
    std::int64_t lin = 0, mult = 1;
    for (std::size_t d = 0; d < extents.size(); ++d) {
      FGDSM_DCHECK(idx[d] >= 0 && idx[d] < extents[d]);
      lin += idx[d] * mult;
      mult *= extents[d];
    }
    return lin;
  }
  GAddr addr_of(const std::vector<std::int64_t>& idx) const {
    return base + static_cast<GAddr>(linear(idx)) * elem;
  }
};

// Convert a rectangular section into maximal contiguous address runs,
// merging adjacent runs (a full-column family with consecutive columns
// becomes one run). Unit stride required in dimension 0; outer-dimension
// strides produce one run family per member.
std::vector<Run> linearize(const ArrayLayout& layout,
                           const ConcreteSection& s);

// Same, appending to *out without clearing it — the allocation-free form
// for per-chunk callers that reuse a scratch vector (merging never reaches
// across the append boundary: the first appended run is always pushed).
void linearize_into(const ArrayLayout& layout, const ConcreteSection& s,
                    std::vector<Run>* out);

// Total bytes covered by runs.
std::size_t run_bytes(const std::vector<Run>& runs);

// Shrink each run to the blocks fully contained in it — the paper's
// shmem_limits subsetting (§4.2): compiler-controlled ranges must not claim
// blocks shared with unanalyzed data. Runs that do not cover a whole block
// vanish (their data stays with the default protocol).
std::vector<Run> block_align_inner(const std::vector<Run>& runs,
                                   std::size_t block_size);

}  // namespace fgdsm::hpf
