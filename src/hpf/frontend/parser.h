// Recursive-descent parser for the mini-HPF dialect.
//
// Grammar sketch (newline-terminated statements, case-insensitive):
//   PROGRAM <name>
//   PARAMETER (n = 64, m = 32)
//   REAL u(n, n), v(n, n)
//   !HPF$ PROCESSORS P(*)
//   !HPF$ DISTRIBUTE u(*, BLOCK)
//   !HPF$ INDEPENDENT, ON HOME (v(:, j))
//   DO j = 2, n-1
//     DO i = 2, n-1
//       v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
//     END DO
//   END DO
//   END
#pragma once

#include <string>

#include "src/hpf/frontend/ast.h"
#include "src/hpf/frontend/lexer.h"

namespace fgdsm::hpf::frontend {

ProgramAst parse(const std::string& source);

}  // namespace fgdsm::hpf::frontend
