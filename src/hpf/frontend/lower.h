// Lowering: mini-HPF AST -> hpf::Program.
//
// This is the front half of the paper's compiler pipeline: array
// declarations plus DISTRIBUTE directives fix the owner relation; each
// INDEPENDENT nest becomes a ParallelLoop whose read/write reference lists
// (affine subscripts, 1-based Fortran indexing shifted to 0-based) feed the
// communication analysis. The loop body is lowered to an interpreted
// closure, so parsed programs execute — slower than the hand-written
// applications, but through exactly the same executor and protocol.
#pragma once

#include "src/hpf/frontend/ast.h"
#include "src/hpf/ir.h"

namespace fgdsm::hpf::frontend {

// Throws ParseError on semantic violations (unknown names, non-affine
// subscripts, distributed non-last dimensions).
hpf::Program lower(const ProgramAst& ast);

// Convenience: parse + lower.
hpf::Program compile(const std::string& source);

}  // namespace fgdsm::hpf::frontend
