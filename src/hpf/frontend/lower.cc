#include "src/hpf/frontend/lower.h"

#include <cmath>
#include <map>
#include <set>

#include "src/hpf/frontend/parser.h"
#include "src/util/assert.h"

namespace fgdsm::hpf::frontend {

namespace {

// ---- AST expression -> AffineExpr (for bounds and subscripts) ----
AffineExpr to_affine(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kNumber: {
      const double r = std::round(e->number);
      if (r != e->number)
        throw ParseError(e->line, "expected an integer expression");
      return AffineExpr(static_cast<std::int64_t>(r));
    }
    case Expr::Kind::kVar:
      return AffineExpr::sym(e->name);
    case Expr::Kind::kNeg:
      return to_affine(e->lhs) * -1;
    case Expr::Kind::kBinOp: {
      switch (e->op) {
        case '+': return to_affine(e->lhs) + to_affine(e->rhs);
        case '-': return to_affine(e->lhs) - to_affine(e->rhs);
        case '*': {
          const AffineExpr a = to_affine(e->lhs);
          const AffineExpr b = to_affine(e->rhs);
          if (a.is_constant()) return b * a.constant();
          if (b.is_constant()) return a * b.constant();
          throw ParseError(e->line, "non-affine product in index expression");
        }
        default:
          throw ParseError(e->line,
                           "division is not affine in index expressions");
      }
    }
    case Expr::Kind::kArrayRef:
      throw ParseError(e->line, "array reference in index expression");
  }
  throw ParseError(e->line, "bad expression");
}

// ---- collect array references ----
// `ind` receives indirect references A(idx(...)) — a gather through an
// indirection array, the inspector–executor runtime's input. Null for
// contexts where indirection is not supported (the left-hand side: a
// runtime scatter schedule would need multi-writer flush merging).
void collect_refs(const ExprPtr& e, std::vector<hpf::ArrayRef>& out,
                  std::vector<hpf::IndirectRef>* ind) {
  switch (e->kind) {
    case Expr::Kind::kArrayRef: {
      if (e->subs.size() == 1 &&
          e->subs[0]->kind == Expr::Kind::kArrayRef) {
        if (ind == nullptr)
          throw ParseError(e->line,
                           "indirect reference is not allowed on the "
                           "left-hand side (gather only)");
        const ExprPtr& ix = e->subs[0];
        hpf::IndirectRef r;
        r.array = e->name;
        r.index_array = ix->name;
        for (const auto& s : ix->subs)
          r.index_subs.push_back(to_affine(s) - 1);
        r.value_offset = -1;  // stored values are Fortran 1-based
        bool dup = false;
        for (const auto& existing : *ind)
          if (existing.array == r.array &&
              existing.index_array == r.index_array &&
              existing.index_subs == r.index_subs) {
            dup = true;
            break;
          }
        if (!dup) ind->push_back(std::move(r));
        // The indirection array itself is an ordinary affine read.
        collect_refs(ix, out, ind);
        return;
      }
      hpf::ArrayRef r;
      r.array = e->name;
      for (const auto& s : e->subs)
        r.subs.push_back(to_affine(s) - 1);  // Fortran 1-based -> 0-based
      // Deduplicate exact repeats.
      for (const auto& existing : out)
        if (existing.array == r.array && existing.subs == r.subs) return;
      out.push_back(std::move(r));
      for (const auto& s : e->subs) collect_refs(s, out, ind);
      return;
    }
    case Expr::Kind::kBinOp:
      collect_refs(e->lhs, out, ind);
      collect_refs(e->rhs, out, ind);
      return;
    case Expr::Kind::kNeg:
      collect_refs(e->lhs, out, ind);
      return;
    default:
      return;
  }
}

// ---- interpreter ----
struct Env {
  std::map<std::string, std::int64_t> loop_vars;
  hpf::BodyCtx* ctx = nullptr;
};

double eval_expr(const Expr& e, Env& env);

std::int64_t eval_index(const Expr& e, Env& env) {
  const double v = eval_expr(e, env);
  const double r = std::round(v);
  FGDSM_ASSERT_MSG(std::abs(v - r) < 1e-9, "non-integer subscript");
  return static_cast<std::int64_t>(r);
}

double* element(const Expr& ref, Env& env) {
  FGDSM_DCHECK(ref.kind == Expr::Kind::kArrayRef);
  const hpf::ArrayLayout& lay = env.ctx->layout(ref.name);
  std::vector<std::int64_t> idx;
  idx.reserve(ref.subs.size());
  for (const auto& s : ref.subs)
    idx.push_back(eval_index(*s, env) - 1);  // 1-based -> 0-based
  return env.ctx->data(ref.name) + lay.linear(idx);
}

double eval_expr(const Expr& e, Env& env) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.number;
    case Expr::Kind::kVar: {
      auto it = env.loop_vars.find(e.name);
      if (it != env.loop_vars.end()) return static_cast<double>(it->second);
      return static_cast<double>(env.ctx->sym(e.name));
    }
    case Expr::Kind::kNeg:
      return -eval_expr(*e.lhs, env);
    case Expr::Kind::kBinOp: {
      const double a = eval_expr(*e.lhs, env);
      const double b = eval_expr(*e.rhs, env);
      switch (e.op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': return a / b;
      }
      return 0;
    }
    case Expr::Kind::kArrayRef:
      return *element(e, env);
  }
  return 0;
}

// Recursively run the free loop levels, innermost executing the statements.
void run_levels(const std::vector<LoopNest::Level>& levels, std::size_t i,
                const std::vector<Assign>& body, Env& env) {
  if (i == levels.size()) {
    for (const Assign& a : body) *element(*a.lhs, env) = eval_expr(*a.rhs, env);
    return;
  }
  const std::int64_t lo = eval_index(*levels[i].lo, env);
  const std::int64_t hi = eval_index(*levels[i].hi, env);
  for (std::int64_t v = lo; v <= hi; ++v) {
    env.loop_vars[levels[i].var] = v;
    run_levels(levels, i + 1, body, env);
  }
}

}  // namespace

hpf::Program lower(const ProgramAst& ast) {
  hpf::Program prog;
  prog.name = ast.name;

  // Parameters: integers become size symbols (usable in bounds/extents);
  // all parameters are also bound for the interpreter.
  for (const auto& [name, value] : ast.parameters) {
    const double r = std::round(value);
    if (r == value)
      prog.sizes.set(name, static_cast<std::int64_t>(r));
    else
      throw ParseError(0, "non-integer PARAMETER '" + name +
                              "' is not supported");
  }

  for (const auto& a : ast.arrays) {
    hpf::ArrayDecl d;
    d.name = a.name;
    for (const auto& e : a.extents) d.extents.push_back(to_affine(e));
    d.dist = a.dist == "block"    ? hpf::DistKind::kBlock
             : a.dist == "cyclic" ? hpf::DistKind::kCyclic
                                  : hpf::DistKind::kReplicated;
    prog.arrays.push_back(std::move(d));
  }

  for (const auto& nest : ast.loops) {
    if (nest.levels.empty())
      throw ParseError(nest.line, "INDEPENDENT without a DO loop");
    hpf::ParallelLoop loop;
    loop.name = prog.name + "-loop@" + std::to_string(nest.line);

    // Which level is the distributed one?
    std::size_t dist_level = 0;
    if (!nest.home_var.empty()) {
      bool found = false;
      for (std::size_t i = 0; i < nest.levels.size(); ++i)
        if (nest.levels[i].var == nest.home_var) {
          dist_level = i;
          found = true;
        }
      if (!found)
        throw ParseError(nest.line, "ON HOME variable '" + nest.home_var +
                                        "' is not a loop index");
    }
    const LoopNest::Level& dl = nest.levels[dist_level];
    loop.dist = hpf::LoopVar{dl.var, to_affine(dl.lo), to_affine(dl.hi)};
    std::vector<LoopNest::Level> free_levels;
    for (std::size_t i = 0; i < nest.levels.size(); ++i) {
      if (i == dist_level) continue;
      loop.free.push_back(hpf::LoopVar{nest.levels[i].var,
                                       to_affine(nest.levels[i].lo),
                                       to_affine(nest.levels[i].hi)});
      free_levels.push_back(nest.levels[i]);
    }

    // Computation distribution: ON HOME names the home array; otherwise
    // owner-computes on the first statement's left-hand side.
    if (!nest.home_array.empty()) {
      loop.home_array = nest.home_array;
    } else if (!nest.body.empty()) {
      loop.home_array = nest.body.front().lhs->name;
    } else {
      throw ParseError(nest.line, "empty INDEPENDENT loop");
    }
    loop.home_sub = AffineExpr::sym(loop.dist.sym) - 1;  // 0-based

    for (const Assign& a : nest.body) {
      collect_refs(a.lhs, loop.writes, nullptr);
      // The LHS subscripts themselves are reads.
      for (const auto& s : a.lhs->subs)
        collect_refs(s, loop.reads, &loop.ind_reads);
      collect_refs(a.rhs, loop.reads, &loop.ind_reads);
    }
    loop.cost_per_iter_ns = 60.0 * static_cast<double>(nest.body.size());

    // Interpreted body: fix the dist variable, run the free levels.
    const std::string dist_var = dl.var;
    const auto body = nest.body;
    loop.body = [dist_var, free_levels, body](hpf::BodyCtx& c) {
      Env env;
      env.ctx = &c;
      env.loop_vars[dist_var] = c.dist();
      std::vector<LoopNest::Level> lv = free_levels;
      run_levels(lv, 0, body, env);
    };
    prog.phases.push_back(hpf::Phase::make(std::move(loop)));
  }
  return prog;
}

hpf::Program compile(const std::string& source) {
  return lower(parse(source));
}

}  // namespace fgdsm::hpf::frontend
