#include "src/hpf/frontend/lexer.h"

#include <cctype>

namespace fgdsm::hpf::frontend {

namespace {
bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$'; }
bool ident_char(char c) { return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)); }
}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  auto push = [&](Tok k, std::string text = "") {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      // Collapse repeated newlines.
      if (!out.empty() && out.back().kind != Tok::kNewline)
        push(Tok::kNewline);
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '!') {
      // '!HPF$' introduces a directive; any other '!' is a comment.
      if (src.compare(i, 5, "!HPF$") == 0 || src.compare(i, 5, "!hpf$") == 0) {
        push(Tok::kHpfDirective);
        i += 5;
        continue;
      }
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (ident_start(c)) {
      std::string s;
      while (i < src.size() && ident_char(src[i]))
        s += static_cast<char>(
            std::tolower(static_cast<unsigned char>(src[i++])));
      push(Tok::kIdent, std::move(s));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::string s;
      bool is_int = true;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) ||
              src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
              ((src[i] == '+' || src[i] == '-') && !s.empty() &&
               (s.back() == 'e' || s.back() == 'E')))) {
        if (src[i] == '.' || src[i] == 'e' || src[i] == 'E') is_int = false;
        s += src[i++];
      }
      Token t;
      t.kind = Tok::kNumber;
      t.text = s;
      t.number = std::stod(s);
      t.is_integer = is_int;
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case ',': push(Tok::kComma); break;
      case ':': push(Tok::kColon); break;
      case '=': push(Tok::kAssign); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      default:
        throw ParseError(line, std::string("unexpected character '") + c +
                                   "'");
    }
    ++i;
  }
  push(Tok::kNewline);
  push(Tok::kEof);
  return out;
}

}  // namespace fgdsm::hpf::frontend
