// Abstract syntax for the mini-HPF dialect. The parser produces this; the
// lowering pass (lower.h) turns it into an hpf::Program — computing the read
// and write reference sets with affine subscripts for the communication
// analysis, and building an interpreted loop body for execution.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace fgdsm::hpf::frontend {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  enum class Kind { kNumber, kVar, kArrayRef, kBinOp, kNeg };
  Kind kind = Kind::kNumber;
  double number = 0;          // kNumber
  std::string name;           // kVar (loop index / parameter) or kArrayRef
  std::vector<ExprPtr> subs;  // kArrayRef subscripts
  char op = '+';              // kBinOp: + - * /
  ExprPtr lhs, rhs;           // kBinOp (lhs only for kNeg)
  int line = 0;
};

struct Assign {
  ExprPtr lhs;  // must be kArrayRef
  ExprPtr rhs;
  int line = 0;
};

// A DO-loop nest annotated INDEPENDENT (one per directive). Loops are
// recorded outermost-first.
struct LoopNest {
  struct Level {
    std::string var;
    ExprPtr lo;
    ExprPtr hi;
  };
  std::vector<Level> levels;
  std::vector<Assign> body;
  // ON HOME (array(..., <var>)) — names the home array and which loop
  // variable indexes its last dimension.
  std::string home_array;
  std::string home_var;
  int line = 0;
};

struct ArrayDeclAst {
  std::string name;
  std::vector<ExprPtr> extents;  // in source (Fortran) order
  // Distribution of the last dimension: "block", "cyclic" or "" (none ->
  // replicated).
  std::string dist;
  int line = 0;
};

struct ProgramAst {
  std::string name;
  std::vector<std::pair<std::string, double>> parameters;  // PARAMETER (...)
  std::vector<ArrayDeclAst> arrays;
  std::vector<LoopNest> loops;
};

}  // namespace fgdsm::hpf::frontend
