// Lexer for the mini-HPF dialect: a Fortran-like surface language with the
// HPF directives the paper's compiler consumes (!HPF$ PROCESSORS,
// DISTRIBUTE, INDEPENDENT, ON HOME). Line-oriented, case-insensitive
// keywords, '!' comments (except '!HPF$', which begins a directive).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fgdsm::hpf::frontend {

enum class Tok : std::uint8_t {
  kEof,
  kNewline,
  kIdent,      // identifiers / keywords (normalized to lower case)
  kNumber,     // integer or real literal
  kLParen,
  kRParen,
  kComma,
  kColon,
  kAssign,     // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kHpfDirective,  // '!HPF$' sentinel; directive words follow as idents
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier (lower-cased) or literal text
  double number = 0;  // valid for kNumber
  bool is_integer = false;
  int line = 0;
};

// Thrown on any malformed program text.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line(line) {}
  int line;
};

std::vector<Token> lex(const std::string& source);

}  // namespace fgdsm::hpf::frontend
