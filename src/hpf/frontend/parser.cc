#include "src/hpf/frontend/parser.h"

#include <memory>

namespace fgdsm::hpf::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  ProgramAst parse_program() {
    ProgramAst prog;
    skip_newlines();
    expect_keyword("program");
    prog.name = expect(Tok::kIdent).text;
    expect(Tok::kNewline);
    for (;;) {
      skip_newlines();
      const Token& t = peek();
      if (t.kind == Tok::kEof)
        throw ParseError(t.line, "missing END");
      if (t.kind == Tok::kIdent && t.text == "end") {
        next();
        break;
      }
      if (t.kind == Tok::kIdent && t.text == "parameter") {
        parse_parameters(prog);
      } else if (t.kind == Tok::kIdent && t.text == "real") {
        parse_real_decl(prog);
      } else if (t.kind == Tok::kHpfDirective) {
        parse_directive(prog);
      } else {
        throw ParseError(t.line, "expected declaration, directive or END, "
                                 "got '" + t.text + "'");
      }
    }
    return prog;
  }

 private:
  // ---- token plumbing ----
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  const Token& expect(Tok k) {
    const Token& t = next();
    if (t.kind != k)
      throw ParseError(t.line, "unexpected token '" + t.text + "'");
    return t;
  }
  void expect_keyword(const std::string& kw) {
    const Token& t = next();
    if (t.kind != Tok::kIdent || t.text != kw)
      throw ParseError(t.line, "expected '" + kw + "', got '" + t.text + "'");
  }
  bool accept_keyword(const std::string& kw) {
    if (peek().kind == Tok::kIdent && peek().text == kw) {
      next();
      return true;
    }
    return false;
  }
  bool accept(Tok k) {
    if (peek().kind == k) {
      next();
      return true;
    }
    return false;
  }
  void skip_newlines() {
    while (peek().kind == Tok::kNewline) next();
  }

  // ---- declarations ----
  void parse_parameters(ProgramAst& prog) {
    expect_keyword("parameter");
    expect(Tok::kLParen);
    do {
      const std::string name = expect(Tok::kIdent).text;
      expect(Tok::kAssign);
      bool negative = accept(Tok::kMinus);
      const Token& v = expect(Tok::kNumber);
      prog.parameters.emplace_back(name,
                                   negative ? -v.number : v.number);
    } while (accept(Tok::kComma));
    expect(Tok::kRParen);
    expect(Tok::kNewline);
  }

  void parse_real_decl(ProgramAst& prog) {
    expect_keyword("real");
    do {
      ArrayDeclAst a;
      a.line = peek().line;
      a.name = expect(Tok::kIdent).text;
      expect(Tok::kLParen);
      do {
        a.extents.push_back(parse_expr());
      } while (accept(Tok::kComma));
      expect(Tok::kRParen);
      prog.arrays.push_back(std::move(a));
    } while (accept(Tok::kComma));
    expect(Tok::kNewline);
  }

  // ---- directives ----
  void parse_directive(ProgramAst& prog) {
    expect(Tok::kHpfDirective);
    const Token& t = next();
    if (t.kind != Tok::kIdent)
      throw ParseError(t.line, "expected directive keyword after !HPF$");
    if (t.text == "processors") {
      // PROCESSORS P(*) — accepted and recorded nowhere: the arrangement is
      // the one-dimensional cluster.
      while (peek().kind != Tok::kNewline && peek().kind != Tok::kEof) next();
      expect(Tok::kNewline);
    } else if (t.text == "distribute") {
      const std::string array = expect(Tok::kIdent).text;
      expect(Tok::kLParen);
      std::vector<std::string> specs;
      do {
        const Token& s = next();
        if (s.kind == Tok::kStar)
          specs.push_back("*");
        else if (s.kind == Tok::kIdent &&
                 (s.text == "block" || s.text == "cyclic"))
          specs.push_back(s.text);
        else
          throw ParseError(s.line, "bad DISTRIBUTE spec");
      } while (accept(Tok::kComma));
      expect(Tok::kRParen);
      expect(Tok::kNewline);
      ArrayDeclAst* decl = find_array(prog, array, t.line);
      if (specs.size() != decl->extents.size())
        throw ParseError(t.line, "DISTRIBUTE rank mismatch for " + array);
      for (std::size_t d = 0; d + 1 < specs.size(); ++d)
        if (specs[d] != "*")
          throw ParseError(
              t.line,
              "only the last dimension may be distributed (paper §4.1)");
      decl->dist = specs.back() == "*" ? "" : specs.back();
    } else if (t.text == "independent") {
      LoopNest nest;
      nest.line = t.line;
      if (accept(Tok::kComma)) {
        expect_keyword("on");
        expect_keyword("home");
        expect(Tok::kLParen);
        nest.home_array = expect(Tok::kIdent).text;
        expect(Tok::kLParen);
        // Subscripts: ':' for undistributed dims, a loop variable last.
        std::string var;
        do {
          if (accept(Tok::kColon)) continue;
          var = expect(Tok::kIdent).text;
        } while (accept(Tok::kComma));
        expect(Tok::kRParen);
        expect(Tok::kRParen);
        if (var.empty())
          throw ParseError(t.line, "ON HOME needs a loop variable subscript");
        nest.home_var = var;
      }
      expect(Tok::kNewline);
      skip_newlines();
      parse_do(nest, /*depth=*/0);
      prog.loops.push_back(std::move(nest));
    } else {
      throw ParseError(t.line, "unknown directive '" + t.text + "'");
    }
  }

  // ---- loops and statements ----
  void parse_do(LoopNest& nest, int depth) {
    expect_keyword("do");
    LoopNest::Level lvl;
    lvl.var = expect(Tok::kIdent).text;
    expect(Tok::kAssign);
    lvl.lo = parse_expr();
    expect(Tok::kComma);
    lvl.hi = parse_expr();
    expect(Tok::kNewline);
    nest.levels.push_back(std::move(lvl));
    for (;;) {
      skip_newlines();
      const Token& t = peek();
      if (t.kind == Tok::kIdent && (t.text == "enddo" || t.text == "end")) {
        next();
        if (t.text == "end") expect_keyword("do");
        expect(Tok::kNewline);
        return;
      }
      if (t.kind == Tok::kIdent && t.text == "do") {
        parse_do(nest, depth + 1);
        continue;
      }
      // assignment: arrayref '=' expr
      Assign a;
      a.line = t.line;
      a.lhs = parse_factor();
      if (a.lhs->kind != Expr::Kind::kArrayRef)
        throw ParseError(t.line, "left-hand side must be an array element");
      expect(Tok::kAssign);
      a.rhs = parse_expr();
      expect(Tok::kNewline);
      nest.body.push_back(std::move(a));
    }
  }

  // ---- expressions ----
  ExprPtr parse_expr() {
    ExprPtr e = parse_term();
    while (peek().kind == Tok::kPlus || peek().kind == Tok::kMinus) {
      const char op = next().kind == Tok::kPlus ? '+' : '-';
      auto bin = std::make_shared<Expr>();
      bin->kind = Expr::Kind::kBinOp;
      bin->op = op;
      bin->lhs = e;
      bin->rhs = parse_term();
      bin->line = bin->rhs->line;
      e = bin;
    }
    return e;
  }
  ExprPtr parse_term() {
    ExprPtr e = parse_factor();
    while (peek().kind == Tok::kStar || peek().kind == Tok::kSlash) {
      const char op = next().kind == Tok::kStar ? '*' : '/';
      auto bin = std::make_shared<Expr>();
      bin->kind = Expr::Kind::kBinOp;
      bin->op = op;
      bin->lhs = e;
      bin->rhs = parse_factor();
      bin->line = bin->rhs->line;
      e = bin;
    }
    return e;
  }
  ExprPtr parse_factor() {
    const Token& t = next();
    auto e = std::make_shared<Expr>();
    e->line = t.line;
    switch (t.kind) {
      case Tok::kNumber:
        e->kind = Expr::Kind::kNumber;
        e->number = t.number;
        return e;
      case Tok::kMinus:
        e->kind = Expr::Kind::kNeg;
        e->lhs = parse_factor();
        return e;
      case Tok::kLParen: {
        ExprPtr inner = parse_expr();
        expect(Tok::kRParen);
        return inner;
      }
      case Tok::kIdent: {
        if (peek().kind == Tok::kLParen) {
          next();
          e->kind = Expr::Kind::kArrayRef;
          e->name = t.text;
          do {
            e->subs.push_back(parse_expr());
          } while (accept(Tok::kComma));
          expect(Tok::kRParen);
          return e;
        }
        e->kind = Expr::Kind::kVar;
        e->name = t.text;
        return e;
      }
      default:
        throw ParseError(t.line, "unexpected token in expression");
    }
  }

  ArrayDeclAst* find_array(ProgramAst& prog, const std::string& name,
                           int line) {
    for (auto& a : prog.arrays)
      if (a.name == name) return &a;
    throw ParseError(line, "unknown array '" + name + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramAst parse(const std::string& source) {
  Parser p(lex(source));
  return p.parse_program();
}

}  // namespace fgdsm::hpf::frontend
