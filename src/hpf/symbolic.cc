#include "src/hpf/symbolic.h"

#include <sstream>

namespace fgdsm::hpf {

std::string AffineExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  if (c0_ != 0 || terms_.empty()) {
    os << c0_;
    first = false;
  }
  for (const auto& [s, c] : terms_) {
    if (c >= 0 && !first) os << "+";
    if (c == -1)
      os << "-";
    else if (c != 1)
      os << c << "*";
    os << s;
    first = false;
  }
  return os.str();
}

}  // namespace fgdsm::hpf
