#include "src/hpf/dataflow.h"

#include <functional>

#include "src/util/assert.h"

namespace fgdsm::hpf {

namespace {

// Does any bound or subscript of `loop` reference `sym`? (If a section
// depends on the enclosing time counter — LU's shrinking pivot column — its
// communication is different every iteration and can never be hoisted.)
bool loop_references(const ParallelLoop& loop, const std::string& sym) {
  auto expr_refs = [&](const AffineExpr& e) { return e.references(sym); };
  if (expr_refs(loop.dist.lo) || expr_refs(loop.dist.hi)) return true;
  for (const auto& fv : loop.free)
    if (expr_refs(fv.lo) || expr_refs(fv.hi)) return true;
  for (const auto& refs : {loop.reads, loop.writes})
    for (const auto& r : refs)
      for (const auto& s : r.subs)
        if (expr_refs(s)) return true;
  if (expr_refs(loop.home_sub)) return true;
  return false;
}

struct Walker {
  const Program& prog;
  RedundancyReport report;

  // Stack of enclosing time-loop counters (innermost last).
  std::vector<const TimeLoop*> cycles;

  // For the innermost enclosing cycle: which arrays are written by any
  // phase of the cycle body, and by which loop (computed per TimeLoop).
  std::map<const TimeLoop*, std::map<std::string, std::string>>
      cycle_writers;

  void collect_writers(const TimeLoop& tl) {
    auto& writers = cycle_writers[&tl];
    std::function<void(const std::vector<Phase>&)> rec =
        [&](const std::vector<Phase>& phases) {
          for (const auto& ph : phases) {
            switch (ph.kind) {
              case Phase::Kind::kParallelLoop:
                for (const auto& w : ph.loop->writes)
                  writers.emplace(w.array, ph.loop->name);
                break;
              case Phase::Kind::kTimeLoop:
                rec(ph.time->phases);
                break;
              case Phase::Kind::kScalar:
                break;
            }
          }
        };
    rec(tl.phases);
  }

  void visit(const std::vector<Phase>& phases) {
    for (const auto& ph : phases) {
      switch (ph.kind) {
        case Phase::Kind::kParallelLoop:
          visit_loop(*ph.loop);
          break;
        case Phase::Kind::kTimeLoop:
          collect_writers(*ph.time);
          cycles.push_back(ph.time.get());
          visit(ph.time->phases);
          cycles.pop_back();
          break;
        case Phase::Kind::kScalar:
          break;
      }
    }
  }

  void visit_loop(const ParallelLoop& loop) {
    // One fact per distinct read array that could imply communication.
    std::set<std::string> seen;
    for (const auto& r : loop.reads) {
      if (!seen.insert(r.array).second) continue;
      const ArrayDecl& a = prog.array(r.array);
      if (a.dist == DistKind::kReplicated) continue;

      CommFact fact;
      fact.loop = &loop;
      fact.array = r.array;
      if (cycles.empty()) {
        // Straight-line phase: executes once; trivially first-only.
        fact.kind = CommFact::Kind::kFirstOnly;
      } else {
        const TimeLoop* cyc = cycles.back();
        const auto& writers = cycle_writers.at(cyc);
        auto wit = writers.find(r.array);
        const bool counter_dep = loop_references(loop, cyc->counter);
        if (wit != writers.end()) {
          fact.kind = CommFact::Kind::kEveryTime;
          fact.killed_by = wit->second;
        } else if (counter_dep) {
          fact.kind = CommFact::Kind::kEveryTime;
          fact.killed_by = "<section depends on " + cyc->counter + ">";
        } else {
          fact.kind = CommFact::Kind::kFirstOnly;
        }
      }
      report.comm.push_back(std::move(fact));

      // Permission fact (§4.3): the receiver must re-open its blocks on
      // every execution only if the section moves (counter dependence);
      // otherwise the first-time-only test suffices.
      PermissionFact perm;
      perm.loop = &loop;
      perm.array = r.array;
      perm.reopen_needed_every_time =
          !cycles.empty() && loop_references(loop, cycles.back()->counter);
      report.permissions.push_back(std::move(perm));
    }
  }
};

}  // namespace

RedundancyReport analyze_redundancy(const Program& prog) {
  Walker w{prog, {}, {}, {}};
  w.visit(prog.phases);
  return w.report;
}

}  // namespace fgdsm::hpf
