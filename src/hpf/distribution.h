// HPF data distributions. Following the paper's simplifying assumption
// (§4.1): "only the last dimension of a global array is distributed (either
// blockwise or cyclically) on a linear arrangement of processors."
#pragma once

#include <cstdint>

#include "src/hpf/section.h"
#include "src/util/assert.h"

namespace fgdsm::hpf {

enum class DistKind : std::uint8_t {
  kBlock,       // (*,...,BLOCK)
  kCyclic,      // (*,...,CYCLIC)
  kReplicated,  // no distribution: every processor owns a full copy
};

inline const char* to_string(DistKind k) {
  switch (k) {
    case DistKind::kBlock: return "BLOCK";
    case DistKind::kCyclic: return "CYCLIC";
    case DistKind::kReplicated: return "REPLICATED";
  }
  return "?";
}

// Owner of last-dimension index j (0-based) for an extent-n dimension over
// np processors.
inline int owner_of(DistKind kind, std::int64_t j, std::int64_t n, int np) {
  FGDSM_DCHECK(j >= 0 && j < n);
  switch (kind) {
    case DistKind::kBlock: {
      const std::int64_t bsz = (n + np - 1) / np;
      return static_cast<int>(j / bsz);
    }
    case DistKind::kCyclic:
      return static_cast<int>(j % np);
    case DistKind::kReplicated:
      return -1;  // everyone
  }
  return -1;
}

// The last-dimension indices processor p owns.
inline ConcreteInterval owned_interval(DistKind kind, int p, std::int64_t n,
                                       int np) {
  switch (kind) {
    case DistKind::kBlock: {
      const std::int64_t bsz = (n + np - 1) / np;
      const std::int64_t lo = p * bsz;
      const std::int64_t hi = std::min(n, (p + 1) * bsz) - 1;
      return ConcreteInterval{lo, hi, 1}.normalized();
    }
    case DistKind::kCyclic:
      return ConcreteInterval{p, n - 1, np}.normalized();
    case DistKind::kReplicated:
      return ConcreteInterval{0, n - 1, 1}.normalized();
  }
  return {0, -1, 1};
}

}  // namespace fgdsm::hpf
