// Compile-time redundancy analysis over the phase graph — the PRE-style
// framework the paper sketches in §4.3 and names as future work in §7
// ("we intend to incorporate PRE based analysis to systematically reduce
// overheads"), cast over this compiler's program structure:
//
//  - **Communication availability** (the paper's "second problem", after
//    [12,14,18]): a loop's non-owner read of array A need not be
//    re-communicated if, on every path from the previous communication of
//    the same section, nothing wrote A. In a time-step loop this reduces to:
//    is A written anywhere in the cycle, and does the section depend on the
//    loop counter?
//  - **Permission availability** (the paper's "first problem", the placement
//    of mk_writable/implicit_invalidate): which loops are guaranteed by a
//    dominating loop to find their blocks already writable/opened.
//
// The executor's run-time scheme (Options::rt_overhead_elim /
// elim_redundant_comm) discovers the same facts dynamically; this module is
// the static counterpart, used by tooling (examples/hpf_compile) and tested
// against the run-time scheme's observed behaviour.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/hpf/ir.h"

namespace fgdsm::hpf {

struct CommFact {
  const ParallelLoop* loop = nullptr;
  std::string array;

  enum class Kind {
    // The transfer must run on every execution of the loop (the array is
    // re-written between executions, or the section moves with the time
    // counter).
    kEveryTime,
    // Loop-invariant: the transfer can be hoisted / performed only on the
    // first execution (nothing writes the array inside the enclosing cycle
    // and the section is counter-independent).
    kFirstOnly,
  } kind = Kind::kEveryTime;

  // Why (for diagnostics): name of the killing writer loop, or empty.
  std::string killed_by;
};

struct PermissionFact {
  const ParallelLoop* loop = nullptr;
  std::string array;
  // True if a previous execution of the *same* loop (same ranges) is
  // guaranteed to have left the receiver's blocks open, so
  // implicit_writable can use the test-only fast path after the first
  // execution (§4.3).
  bool reopen_needed_every_time = false;
};

struct RedundancyReport {
  std::vector<CommFact> comm;
  std::vector<PermissionFact> permissions;

  const CommFact* find(const ParallelLoop* loop,
                       const std::string& array) const {
    for (const auto& f : comm)
      if (f.loop == loop && f.array == array) return &f;
    return nullptr;
  }
};

// Analyze the whole program. Facts are reported for every (parallel loop,
// distributed array read) pair whose references are non-owner-analyzable;
// arrays only written or replicated produce no facts.
RedundancyReport analyze_redundancy(const Program& prog);

}  // namespace fgdsm::hpf
