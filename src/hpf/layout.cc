#include "src/hpf/layout.h"

#include <algorithm>
#include <functional>

namespace fgdsm::hpf {

std::vector<Run> linearize(const ArrayLayout& layout,
                           const ConcreteSection& s) {
  std::vector<Run> runs;
  if (s.empty()) return runs;
  FGDSM_ASSERT(s.dims.size() == layout.extents.size());
  FGDSM_ASSERT_MSG(s.dims[0].normalized().stride == 1 ||
                       s.dims[0].count() == 1,
                   "dimension 0 must be unit-stride for linearization");

  const std::int64_t row_lo = s.dims[0].lo;
  const std::int64_t row_count = s.dims[0].count();
  const std::size_t run_len = static_cast<std::size_t>(row_count) * layout.elem;

  std::vector<std::int64_t> idx(s.dims.size(), 0);
  std::function<void(std::size_t)> rec = [&](std::size_t d) {
    if (d == 0) {
      idx[0] = row_lo;
      const GAddr a = layout.addr_of(idx);
      if (!runs.empty() &&
          runs.back().addr + runs.back().len == a) {
        runs.back().len += run_len;  // merge contiguous columns
      } else {
        runs.push_back(Run{a, run_len});
      }
      return;
    }
    const ConcreteInterval iv = s.dims[d].normalized();
    for (std::int64_t v = iv.lo; v <= iv.hi; v += iv.stride) {
      idx[d] = v;
      rec(d - 1);
    }
  };
  rec(s.dims.size() - 1);
  return runs;
}

std::size_t run_bytes(const std::vector<Run>& runs) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.len;
  return total;
}

std::vector<Run> block_align_inner(const std::vector<Run>& runs,
                                   std::size_t block_size) {
  std::vector<Run> out;
  for (const auto& r : runs) {
    const GAddr lo = (r.addr + block_size - 1) / block_size * block_size;
    const GAddr hi = (r.addr + r.len) / block_size * block_size;
    if (hi > lo) out.push_back(Run{lo, static_cast<std::size_t>(hi - lo)});
  }
  return out;
}

}  // namespace fgdsm::hpf
