#include "src/hpf/layout.h"

#include <algorithm>
#include <functional>

namespace fgdsm::hpf {

std::vector<Run> linearize(const ArrayLayout& layout,
                           const ConcreteSection& s) {
  std::vector<Run> runs;
  linearize_into(layout, s, &runs);
  return runs;
}

void linearize_into(const ArrayLayout& layout, const ConcreteSection& s,
                    std::vector<Run>* out) {
  if (s.empty()) return;
  FGDSM_ASSERT(s.dims.size() == layout.extents.size());
  FGDSM_ASSERT_MSG(s.dims[0].normalized().stride == 1 ||
                       s.dims[0].count() == 1,
                   "dimension 0 must be unit-stride for linearization");

  const std::int64_t row_lo = s.dims[0].lo;
  const std::int64_t row_count = s.dims[0].count();
  const std::size_t run_len = static_cast<std::size_t>(row_count) * layout.elem;

  // Odometer over the outer dimensions (dimension 1 varies fastest —
  // column-major, same visit order as the recursive formulation). Fixed
  // local arrays keep this allocation-free; it runs per chunk.
  constexpr std::size_t kMaxRank = 8;
  const std::size_t nd = s.dims.size();
  FGDSM_ASSERT_MSG(nd <= kMaxRank, "array rank > " << kMaxRank);
  ConcreteInterval iv[kMaxRank];
  std::int64_t val[kMaxRank];
  std::int64_t mult[kMaxRank];
  std::int64_t m = 1;
  for (std::size_t d = 0; d < nd; ++d) {
    mult[d] = m;
    m *= layout.extents[d];
    if (d > 0) {
      iv[d] = s.dims[d].normalized();
      val[d] = iv[d].lo;
    }
  }
  // Address of the current run from the odometer state.
  const std::size_t first_new = out->size();
  for (;;) {
    std::int64_t lin = row_lo * mult[0];
    for (std::size_t d = 1; d < nd; ++d) lin += val[d] * mult[d];
    const GAddr a = layout.base + static_cast<GAddr>(lin) * layout.elem;
    if (out->size() > first_new &&
        out->back().addr + out->back().len == a) {
      out->back().len += run_len;  // merge contiguous columns
    } else {
      out->push_back(Run{a, run_len});
    }
    std::size_t d = 1;
    while (d < nd) {
      val[d] += iv[d].stride;
      if (val[d] <= iv[d].hi) break;
      val[d] = iv[d].lo;
      ++d;
    }
    if (d >= nd) break;
  }
}

std::size_t run_bytes(const std::vector<Run>& runs) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.len;
  return total;
}

std::vector<Run> block_align_inner(const std::vector<Run>& runs,
                                   std::size_t block_size) {
  std::vector<Run> out;
  for (const auto& r : runs) {
    const GAddr lo = (r.addr + block_size - 1) / block_size * block_size;
    const GAddr hi = (r.addr + r.len) / block_size * block_size;
    if (hi > lo) out.push_back(Run{lo, static_cast<std::size_t>(hi - lo)});
  }
  return out;
}

}  // namespace fgdsm::hpf
