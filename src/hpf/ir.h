// The compiler's program representation: an HPF-like data-parallel program —
// distributed arrays, INDEPENDENT loop nests with affine bounds and affine
// subscripts, reductions, replicated scalar code, and time-step loops.
//
// This mirrors what the paper's modified pghpf front end hands to the
// communication-analysis phase (§4): the distribution directives fix the
// owner relation; each parallel loop carries its computation distribution
// (owner-computes via an ON-HOME-style reference, or blockwise by loop
// index) and the set of array references with affine subscripts. Loop
// *bodies* are native C++ callables operating on raw column-major storage —
// the simulator executes computation at full speed while the declared
// reference lists drive the access-set analysis and the block-granular
// access checks (direct-execution style).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hpf/distribution.h"
#include "src/hpf/layout.h"
#include "src/hpf/symbolic.h"

namespace fgdsm::hpf {

struct ArrayDecl {
  std::string name;
  std::vector<AffineExpr> extents;  // dim 0 varies fastest (column-major)
  DistKind dist = DistKind::kBlock;  // applies to the last dimension
};

// A loop variable with (inclusive) affine bounds, step +1.
struct LoopVar {
  std::string sym;
  AffineExpr lo;
  AffineExpr hi;
};

// An array reference with one affine subscript per dimension. Subscripts may
// reference at most one loop variable each (the affine single-index form the
// paper's optimization targets).
struct ArrayRef {
  std::string array;
  std::vector<AffineExpr> subs;
};

// An indirection-array read: array(index_array(index_subs) + value_offset).
// The data array must be 1-D; the index array's subscripts are affine, so the
// compiler can reason about *which index elements* a chunk reads, while the
// *data* access set exists only at run time — the inspector–executor
// subsystem (src/irreg) computes it by scanning the index values. The stored
// values are interpreted as element indices after adding value_offset
// (e.g. -1 for Fortran 1-based sources).
struct IndirectRef {
  std::string array;                  // the 1-D data array being gathered
  std::string index_array;            // the indirection array
  std::vector<AffineExpr> index_subs; // affine subscripts into index_array
  std::int64_t value_offset = 0;      // added to each stored index value
};

enum class ReduceOp { kSum, kMax, kMin };

// Execution-time context handed to loop bodies; implemented by the executor.
class BodyCtx {
 public:
  virtual ~BodyCtx() = default;

  // Value of the distributed loop variable for the current chunk.
  virtual std::int64_t dist() const = 0;
  // Value of any bound symbol (problem sizes, time-loop counters, $p, $np).
  virtual std::int64_t sym(const std::string& name) const = 0;

  // Replicated scalar state (identical on every node by construction).
  virtual double scalar(const std::string& name) const = 0;
  virtual void set_scalar(const std::string& name, double v) = 0;

  // Reduction contribution from this chunk (loops with a reduce spec).
  virtual void contribute(double v) = 0;

  // Raw storage access (this node's backing of the shared segment).
  virtual double* data(const std::string& array) = 0;
  virtual const ArrayLayout& layout(const std::string& array) const = 0;
};

// Lightweight column-major views for bodies.
struct View1 {
  double* p;
  double& operator()(std::int64_t i) const { return p[i]; }
};
struct View2 {
  double* p;
  std::int64_t n0;
  double& operator()(std::int64_t i, std::int64_t j) const {
    return p[i + j * n0];
  }
};
struct View3 {
  double* p;
  std::int64_t n0, n1;
  double& operator()(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return p[i + (j + k * n1) * n0];
  }
};
inline View1 view1(BodyCtx& c, const std::string& a) {
  return View1{c.data(a)};
}
inline View2 view2(BodyCtx& c, const std::string& a) {
  return View2{c.data(a), c.layout(a).extents[0]};
}
inline View3 view3(BodyCtx& c, const std::string& a) {
  return View3{c.data(a), c.layout(a).extents[0], c.layout(a).extents[1]};
}

struct ParallelLoop {
  std::string name;

  // The loop aligned with the arrays' distributed (last) dimension; the
  // executor iterates it chunk-by-chunk per node.
  LoopVar dist;
  // Remaining loop variables; the body iterates them natively. Their bounds
  // may reference the dist variable (triangular nests, e.g. LU).
  std::vector<LoopVar> free;

  enum class Comp { kOwnerComputes, kBlockByIndex } comp =
      Comp::kOwnerComputes;
  // Owner-computes: iteration dist=j runs on the owner of
  // home_array(last dim = home_sub(j)).
  std::string home_array;
  AffineExpr home_sub;

  std::vector<ArrayRef> reads;
  std::vector<ArrayRef> writes;
  // Irregular (runtime-resolved) reads; empty for purely affine loops. The
  // index arrays must also appear in `reads` with the same subscripts so the
  // affine machinery keeps them coherent.
  std::vector<IndirectRef> ind_reads;

  // Executes one chunk (one value of the dist variable) on local storage.
  std::function<void(BodyCtx&)> body;

  // Compute model: virtual ns charged per inner iteration (product of free
  // loop trip counts) of one chunk. Calibrated per application.
  double cost_per_iter_ns = 50.0;

  // Optional reduction: body calls BodyCtx::contribute; the executor
  // all-reduces and stores the result as a replicated scalar.
  bool has_reduce = false;
  ReduceOp reduce_op = ReduceOp::kSum;
  std::string reduce_scalar;
};

// Replicated scalar computation: runs identically on every node (no
// communication, no distributed accesses).
struct ScalarPhase {
  std::string name;
  std::function<void(BodyCtx&)> body;
  double cost_ns = 200.0;
};

struct TimeLoop;

struct Phase {
  enum class Kind { kParallelLoop, kScalar, kTimeLoop } kind =
      Kind::kParallelLoop;
  std::shared_ptr<ParallelLoop> loop;
  std::shared_ptr<ScalarPhase> scalar;
  std::shared_ptr<TimeLoop> time;

  static Phase make(ParallelLoop l) {
    Phase p;
    p.kind = Kind::kParallelLoop;
    p.loop = std::make_shared<ParallelLoop>(std::move(l));
    return p;
  }
  static Phase make(ScalarPhase s) {
    Phase p;
    p.kind = Kind::kScalar;
    p.scalar = std::make_shared<ScalarPhase>(std::move(s));
    return p;
  }
  static Phase make(TimeLoop t);
};

// A counted (optionally early-exiting) sequence of phases, e.g. the
// time-step loop of a stencil code or the elimination loop of LU.
struct TimeLoop {
  std::string counter;  // bound to 0..count-1 for nested phases
  AffineExpr count;
  std::vector<Phase> phases;
  // Early exit, evaluated (replicated, deterministic) after each iteration.
  std::function<bool(BodyCtx&)> exit_when;
};

inline Phase Phase::make(TimeLoop t) {
  Phase p;
  p.kind = Kind::kTimeLoop;
  p.time = std::make_shared<TimeLoop>(std::move(t));
  return p;
}

struct Program {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<Phase> phases;
  Bindings sizes;  // default problem-size symbol values

  const ArrayDecl& array(const std::string& n) const {
    for (const auto& a : arrays)
      if (a.name == n) return a;
    FGDSM_ASSERT_MSG(false, "unknown array " << n);
    __builtin_unreachable();
  }
};

}  // namespace fgdsm::hpf
