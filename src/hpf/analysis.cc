#include "src/hpf/analysis.h"

#include <algorithm>

#include "src/util/assert.h"

namespace fgdsm::hpf {

ConcreteInterval eval_subscript(
    const AffineExpr& sub,
    const std::vector<std::pair<std::string, ConcreteInterval>>& ranges,
    const Bindings& b) {
  // Find the (single) loop variable this subscript references.
  const std::string* var = nullptr;
  std::int64_t coeff = 0;
  for (const auto& [sym, iv] : ranges) {
    (void)iv;
    const std::int64_t c = sub.coeff(sym);
    if (c != 0) {
      FGDSM_ASSERT_MSG(var == nullptr,
                       "subscript references two loop variables: "
                           << sub.to_string());
      var = &sym;
      coeff = c;
    }
  }
  // Evaluate `sub` with every loop variable in `ranges` bound to 0 and all
  // other symbols from `b` — the copy-free equivalent of duplicating the
  // bindings and zeroing the loop variables (this runs per chunk).
  const auto eval_outside_loop_vars = [&] {
    std::int64_t v = sub.constant_term();
    for (const auto& [s, c] : sub.terms()) {
      bool is_loop_var = false;
      for (const auto& [sym, iv] : ranges) {
        (void)iv;
        if (sym == s) {
          is_loop_var = true;
          break;
        }
      }
      if (!is_loop_var) v += c * b.get(s);
    }
    return v;
  };
  if (var == nullptr) {
    // Constant in loop variables; evaluate directly.
    const std::int64_t v = eval_outside_loop_vars();
    return ConcreteInterval{v, v, 1};
  }
  // sub = coeff * var + rest. Evaluate rest with var := 0.
  ConcreteInterval r;
  for (const auto& [sym, iv] : ranges)
    if (sym == *var) r = iv.normalized();
  const std::int64_t rest = eval_outside_loop_vars();
  if (r.empty()) return {0, -1, 1};
  const std::int64_t a = coeff * r.lo + rest;
  const std::int64_t z = coeff * r.hi + rest;
  return ConcreteInterval{std::min(a, z), std::max(a, z),
                          std::abs(coeff) * r.stride}
      .normalized();
}

std::vector<std::int64_t> array_extents(const ArrayDecl& a,
                                        const Bindings& b) {
  std::vector<std::int64_t> e;
  e.reserve(a.extents.size());
  for (const auto& x : a.extents) e.push_back(x.eval(b));
  return e;
}

ConcreteSection owned_section(const ArrayDecl& a, const Bindings& b, int np,
                              int p) {
  const auto ext = array_extents(a, b);
  ConcreteSection s;
  s.dims.reserve(ext.size());
  for (std::size_t d = 0; d + 1 < ext.size(); ++d)
    s.dims.push_back(ConcreteInterval{0, ext[d] - 1, 1});
  s.dims.push_back(owned_interval(a.dist, p, ext.back(), np));
  return s;
}

ConcreteInterval local_iters(const ParallelLoop& loop, const Program& prog,
                             const Bindings& b, int np, int p) {
  const ConcreteInterval range =
      ConcreteInterval{loop.dist.lo.eval(b), loop.dist.hi.eval(b), 1}
          .normalized();
  if (range.empty()) return range;
  switch (loop.comp) {
    case ParallelLoop::Comp::kOwnerComputes: {
      const ArrayDecl& home = prog.array(loop.home_array);
      const auto ext = array_extents(home, b);
      // home_sub must be dist_var + const (unit coefficient) so the owned
      // home indices map back to a strided iteration interval.
      const std::int64_t c = loop.home_sub.coeff(loop.dist.sym);
      FGDSM_ASSERT_MSG(c == 1, "ON HOME subscript must be <distvar> + const");
      const std::int64_t off = eval_with(loop.home_sub, b, loop.dist.sym, 0);
      ConcreteInterval owned =
          owned_interval(home.dist, p, ext.back(), np);
      if (owned.empty()) return {0, -1, 1};
      owned.lo -= off;
      owned.hi -= off;
      return intersect(owned, range);
    }
    case ParallelLoop::Comp::kBlockByIndex: {
      const std::int64_t n = range.count();
      const std::int64_t bsz = (n + np - 1) / np;
      const std::int64_t lo = range.lo + p * bsz;
      const std::int64_t hi = std::min(range.lo + (p + 1) * bsz, range.hi + 1) - 1;
      return ConcreteInterval{lo, std::min(hi, range.hi), 1}.normalized();
    }
  }
  return {0, -1, 1};
}

namespace {
// Loop-variable ranges for a ref evaluation: dist + free variables. Clears
// and refills `ranges` (the per-chunk callers reuse one vector; the symbol
// names are short enough for SSO, so a refill touches no allocator).
void var_ranges_into(
    const ParallelLoop& loop, const Bindings& b,
    const ConcreteInterval& dist_range, bool allow_dist_dependent_free,
    std::vector<std::pair<std::string, ConcreteInterval>>& ranges) {
  ranges.clear();
  ranges.emplace_back(loop.dist.sym, dist_range);
  for (const auto& fv : loop.free) {
    FGDSM_ASSERT_MSG(
        allow_dist_dependent_free ||
            (!fv.lo.references(loop.dist.sym) &&
             !fv.hi.references(loop.dist.sym)),
        "free loop bounds of " << fv.sym
                               << " reference the distributed variable; "
                                  "whole-loop sections must be rectangular");
    // dist.sym's binding is only used when dist-dependent bounds are allowed
    ranges.emplace_back(
        fv.sym,
        ConcreteInterval{eval_with(fv.lo, b, loop.dist.sym, dist_range.lo),
                         eval_with(fv.hi, b, loop.dist.sym, dist_range.lo), 1}
            .normalized());
  }
}

void section_for_into(const ParallelLoop& loop, const ArrayRef& ref,
                      const Program& prog, const Bindings& b,
                      const ConcreteInterval& dist_range,
                      bool allow_dist_dependent_free,
                      std::vector<std::pair<std::string, ConcreteInterval>>&
                          ranges,
                      ConcreteSection* out) {
  const ArrayDecl& a = prog.array(ref.array);
  FGDSM_ASSERT_MSG(ref.subs.size() == a.extents.size(),
                   "rank mismatch on " << ref.array);
  var_ranges_into(loop, b, dist_range, allow_dist_dependent_free, ranges);
  out->dims.clear();
  out->dims.reserve(ref.subs.size());
  for (const auto& sub : ref.subs)
    out->dims.push_back(eval_subscript(sub, ranges, b));
}

ConcreteSection section_for(const ParallelLoop& loop, const ArrayRef& ref,
                            const Program& prog, const Bindings& b,
                            const ConcreteInterval& dist_range,
                            bool allow_dist_dependent_free) {
  std::vector<std::pair<std::string, ConcreteInterval>> ranges;
  ConcreteSection s;
  section_for_into(loop, ref, prog, b, dist_range, allow_dist_dependent_free,
                   ranges, &s);
  return s;
}
}  // namespace

ConcreteSection ref_section(const ParallelLoop& loop, const ArrayRef& ref,
                            const Program& prog, const Bindings& b,
                            const ConcreteInterval& dist_range) {
  return section_for(loop, ref, prog, b, dist_range,
                     /*allow_dist_dependent_free=*/false);
}

ConcreteSection chunk_footprint(const ParallelLoop& loop, const ArrayRef& ref,
                                const Program& prog, const Bindings& b,
                                std::int64_t dist_value) {
  return section_for(loop, ref, prog, b,
                     ConcreteInterval{dist_value, dist_value, 1},
                     /*allow_dist_dependent_free=*/true);
}

void chunk_footprint_into(const ParallelLoop& loop, const ArrayRef& ref,
                          const Program& prog, const Bindings& b,
                          std::int64_t dist_value, FootprintScratch& scratch,
                          ConcreteSection* out) {
  section_for_into(loop, ref, prog, b,
                   ConcreteInterval{dist_value, dist_value, 1},
                   /*allow_dist_dependent_free=*/true, scratch.ranges, out);
}

namespace {
// Merge transfers with identical (array, sender, receiver) whose sections
// differ only in dimension 0, taking the hull there. Overshoot is harmless:
// the sender owns the whole column, extra rows are merely extra bytes.
void merge_into(std::vector<Transfer>& out, Transfer t) {
  for (Transfer& e : out) {
    if (e.array != t.array || e.sender != t.sender ||
        e.receiver != t.receiver || e.for_write != t.for_write)
      continue;
    if (e.section == t.section) return;
    if (e.section.dims.size() == t.section.dims.size()) {
      bool same_outer = true;
      for (std::size_t d = 1; d < e.section.dims.size(); ++d)
        if (!(e.section.dims[d] == t.section.dims[d])) same_outer = false;
      if (same_outer) {
        ConcreteInterval& a = e.section.dims[0];
        const ConcreteInterval bdim = t.section.dims[0].normalized();
        a = a.normalized();
        FGDSM_ASSERT(a.stride == 1 && bdim.stride == 1);
        a.lo = std::min(a.lo, bdim.lo);
        a.hi = std::max(a.hi, bdim.hi);
        return;
      }
    }
  }
  out.push_back(std::move(t));
}
// Ascending candidate senders for one piece: exactly the processors whose
// owned_interval can intersect the piece's distributed (last) dimension.
// The original code scanned every q in 0..np for every piece, which made
// each plan build O(np^2) section intersections — at 256+ nodes that
// dominated the harness (and each node builds its own plan, so the full
// cluster paid O(np^3)). Block ownership is contiguous, so [owner(lo),
// owner(hi)] is tight; cyclic ownership is j % np, so a piece shorter than
// np enumerates its elements and a longer one covers every processor
// anyway. Candidates come out ascending — the transfer list must stay in
// the exact order the full scan produced (plans feed the simulation;
// ordering is part of the bit-identity contract).
void candidate_owners_into(DistKind kind, const ConcreteInterval& iv,
                           std::int64_t n, int np, std::vector<int>& out) {
  out.clear();
  if (iv.empty()) return;
  switch (kind) {
    case DistKind::kBlock: {
      // iv is already clipped to [0, n-1]; contiguous block ownership makes
      // [owner(lo), owner(hi)] tight.
      const int qlo = owner_of(kind, iv.lo, n, np);
      const int qhi = owner_of(kind, iv.hi, n, np);
      for (int q = qlo; q <= qhi; ++q) out.push_back(q);
      return;
    }
    case DistKind::kCyclic: {
      if (iv.count() >= np) {
        for (int q = 0; q < np; ++q) out.push_back(q);
        return;
      }
      for (std::int64_t j = iv.lo; j <= iv.hi; j += iv.stride)
        out.push_back(static_cast<int>(j % np));
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return;
    }
    case DistKind::kReplicated:
      return;
  }
}
}  // namespace

std::vector<Transfer> analyze_transfers(const ParallelLoop& loop,
                                        const Program& prog,
                                        const Bindings& b, int np) {
  std::vector<Transfer> out;
  std::vector<int> owners;  // scratch, reused across pieces
  auto process = [&](const ArrayRef& ref, bool for_write) {
    const ArrayDecl& a = prog.array(ref.array);
    if (a.dist == DistKind::kReplicated) {
      // Replicated arrays are private per-node copies: reads are local, and
      // writes are only legal from replicated computation (every node
      // writes its own copy identically) — either way, no transfers.
      return;
    }
    const auto ext = array_extents(a, b);
    for (int p = 0; p < np; ++p) {
      const ConcreteInterval iters = local_iters(loop, prog, b, np, p);
      if (iters.empty()) continue;
      ConcreteSection sec = ref_section(loop, ref, prog, b, iters);
      if (sec.empty()) continue;
      // Clip to array bounds (stencil edges reach outside; those iterations
      // are the body's responsibility to skip, and the analysis must not
      // claim out-of-range elements).
      for (std::size_t d = 0; d < sec.dims.size(); ++d)
        sec.dims[d] = intersect(sec.dims[d],
                                ConcreteInterval{0, ext[d] - 1, 1});
      if (sec.empty()) continue;
      const ConcreteSet nonowner =
          ConcreteSet(sec).subtract(owned_section(a, b, np, p));
      for (const auto& piece : nonowner.pieces()) {
        candidate_owners_into(a.dist, piece.dims.back().normalized(),
                              ext.back(), np, owners);
        for (const int q : owners) {
          if (q == p) continue;
          const ConcreteSet part =
              ConcreteSet(piece).intersect(owned_section(a, b, np, q));
          for (const auto& sub : part.pieces())
            merge_into(out, Transfer{ref.array, q, p, sub, for_write});
        }
      }
    }
  };
  for (const auto& r : loop.reads) process(r, /*for_write=*/false);
  for (const auto& w : loop.writes) process(w, /*for_write=*/true);
  return out;
}

}  // namespace fgdsm::hpf
