// Access-set analysis (paper §4.1): for each distributed array referenced in
// a parallel loop, compute — per processor — the sections read and written,
// the owned section, and from their difference the *non-owner-read* and
// *non-owner-write* sets, partitioned by the owning (sending) processor.
//
// The analysis is deterministic and runs identically on every node (the
// compiled program evaluates the same parametric expressions with the same
// symbol values), so senders and receivers independently agree on every
// transfer — including the expected block counts for ready_to_recv.
#pragma once

#include <string>
#include <vector>

#include "src/hpf/ir.h"
#include "src/hpf/section.h"

namespace fgdsm::hpf {

// A single producer->consumer section movement implied by a parallel loop.
struct Transfer {
  std::string array;
  int sender = -1;    // the HPF owner of the section
  int receiver = -1;  // the non-owner reader (or writer)
  ConcreteSection section;
  // false: non-owner read (owner ships data before the loop).
  // true:  non-owner write (owner ships data before; writer flushes back
  //        after the loop).
  bool for_write = false;
};

// Evaluate a subscript expression over concrete ranges for the loop
// variables it references (at most one), with every other symbol bound.
ConcreteInterval eval_subscript(
    const AffineExpr& sub,
    const std::vector<std::pair<std::string, ConcreteInterval>>& ranges,
    const Bindings& b);

// Concrete extents of an array under the given bindings.
std::vector<std::int64_t> array_extents(const ArrayDecl& a,
                                        const Bindings& b);

// The full section owned by processor p (all dims full, last dim the
// distribution's owned interval).
ConcreteSection owned_section(const ArrayDecl& a, const Bindings& b, int np,
                              int p);

// Which dist-loop iterations processor p executes (owner-computes or
// block-by-index).
ConcreteInterval local_iters(const ParallelLoop& loop, const Program& prog,
                             const Bindings& b, int np, int p);

// Section of `ref.array` touched by `ref` as the dist variable ranges over
// dist_range and free variables over their bounds. Free-variable bounds must
// not reference the dist variable (rectangular sections only).
ConcreteSection ref_section(const ParallelLoop& loop, const ArrayRef& ref,
                            const Program& prog, const Bindings& b,
                            const ConcreteInterval& dist_range);

// Footprint of `ref` for a single chunk (dist variable fixed); free-variable
// bounds may reference the dist variable here.
ConcreteSection chunk_footprint(const ParallelLoop& loop, const ArrayRef& ref,
                                const Program& prog, const Bindings& b,
                                std::int64_t dist_value);

// Reusable temporaries for chunk_footprint_into: the loop-variable range
// list. Loop-variable names are short (SSO), so once the vector has grown
// to the loop's variable count a refill touches no allocator.
struct FootprintScratch {
  std::vector<std::pair<std::string, ConcreteInterval>> ranges;
};

// Allocation-free form of chunk_footprint for per-chunk hot loops: clears
// and refills out->dims, drawing temporaries from `scratch`; both keep
// their capacity across calls.
void chunk_footprint_into(const ParallelLoop& loop, const ArrayRef& ref,
                          const Program& prog, const Bindings& b,
                          std::int64_t dist_value, FootprintScratch& scratch,
                          ConcreteSection* out);

// All transfers implied by one parallel loop: non-owner reads and non-owner
// writes, merged per (array, sender, receiver).
std::vector<Transfer> analyze_transfers(const ParallelLoop& loop,
                                        const Program& prog,
                                        const Bindings& b, int np);

}  // namespace fgdsm::hpf
