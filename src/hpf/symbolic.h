// Affine symbolic expressions — the compiler's currency.
//
// The paper's compiler computes access sets with the Omega library and keeps
// them "parametric with respect to processor number" and problem-size
// symbols; the generated code is evaluated at run time with concrete symbol
// values (§4.1). We reproduce that split: analysis manipulates AffineExpr
// (integer-linear combinations of named symbols), and the planner evaluates
// them against a Bindings table when the runtime instantiates the
// communication schedule.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/util/assert.h"

namespace fgdsm::hpf {

// Well-known symbol names used across the compiler.
inline constexpr const char* kSymProc = "$p";      // executing processor id
inline constexpr const char* kSymNProcs = "$np";   // number of processors

class Bindings {
 public:
  void set(const std::string& sym, std::int64_t v) { values_[sym] = v; }
  std::int64_t get(const std::string& sym) const {
    auto it = values_.find(sym);
    FGDSM_ASSERT_MSG(it != values_.end(), "unbound symbol " << sym);
    return it->second;
  }
  bool has(const std::string& sym) const { return values_.count(sym) > 0; }
  const std::map<std::string, std::int64_t>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::int64_t> values_;
};

class AffineExpr {
 public:
  AffineExpr() = default;
  AffineExpr(std::int64_t c) : c0_(c) {}  // NOLINT: implicit by design
  static AffineExpr sym(const std::string& name, std::int64_t coeff = 1) {
    AffineExpr e;
    if (coeff != 0) e.terms_[name] = coeff;
    return e;
  }

  bool is_constant() const { return terms_.empty(); }
  std::int64_t constant() const {
    FGDSM_ASSERT(is_constant());
    return c0_;
  }
  // The constant part regardless of symbolic terms (overlay evaluation).
  std::int64_t constant_term() const { return c0_; }
  std::int64_t coeff(const std::string& s) const {
    auto it = terms_.find(s);
    return it == terms_.end() ? 0 : it->second;
  }
  bool references(const std::string& s) const { return coeff(s) != 0; }
  // Symbol -> coefficient map (non-zero coefficients only).
  const std::map<std::string, std::int64_t>& terms() const { return terms_; }

  std::int64_t eval(const Bindings& b) const {
    std::int64_t v = c0_;
    for (const auto& [s, c] : terms_) v += c * b.get(s);
    return v;
  }

  // Substitute a symbol with another expression (used to rewrite loop-index
  // symbols in subscripts by loop bounds).
  AffineExpr substitute(const std::string& s, const AffineExpr& repl) const {
    AffineExpr r = *this;
    auto it = r.terms_.find(s);
    if (it == r.terms_.end()) return r;
    const std::int64_t c = it->second;
    r.terms_.erase(it);
    r = r + repl * c;
    return r;
  }

  AffineExpr operator+(const AffineExpr& o) const {
    AffineExpr r = *this;
    r.c0_ += o.c0_;
    for (const auto& [s, c] : o.terms_) {
      r.terms_[s] += c;
      if (r.terms_[s] == 0) r.terms_.erase(s);
    }
    return r;
  }
  AffineExpr operator-(const AffineExpr& o) const { return *this + o * -1; }
  AffineExpr operator*(std::int64_t k) const {
    AffineExpr r;
    if (k == 0) return r;
    r.c0_ = c0_ * k;
    for (const auto& [s, c] : terms_) r.terms_[s] = c * k;
    return r;
  }
  bool operator==(const AffineExpr& o) const {
    return c0_ == o.c0_ && terms_ == o.terms_;
  }
  bool operator!=(const AffineExpr& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  std::int64_t c0_ = 0;
  std::map<std::string, std::int64_t> terms_;
};

inline AffineExpr operator+(std::int64_t k, const AffineExpr& e) {
  return AffineExpr(k) + e;
}

// Overlay evaluation: e.eval(b) with `sym` bound to `val`, without copying
// the bindings map. Equivalent to {Bindings t = b; t.set(sym, val);
// e.eval(t)} — the copy-free form for per-chunk hot paths.
inline std::int64_t eval_with(const AffineExpr& e, const Bindings& b,
                              const std::string& sym, std::int64_t val) {
  std::int64_t v = e.constant_term();
  for (const auto& [s, c] : e.terms()) v += c * (s == sym ? val : b.get(s));
  return v;
}

}  // namespace fgdsm::hpf
