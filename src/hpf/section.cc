#include "src/hpf/section.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>
#include <sstream>

#include "src/util/assert.h"

namespace fgdsm::hpf {

namespace {
// Extended gcd: returns g = gcd(a,b) and x,y with a*x + b*y = g.
std::int64_t egcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                  std::int64_t& y) {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  std::int64_t x1, y1;
  const std::int64_t g = egcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return a / b - ((a % b != 0) && ((a % b < 0) != (b < 0)) ? 1 : 0);
}
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return floor_div(a + b - 1, b);
}
}  // namespace

ConcreteInterval intersect(const ConcreteInterval& a0,
                           const ConcreteInterval& b0) {
  const ConcreteInterval a = a0.normalized(), b = b0.normalized();
  if (a.empty() || b.empty()) return {0, -1, 1};
  // Solve lo_a + i*s_a == lo_b + j*s_b.
  std::int64_t x, y;
  const std::int64_t g = egcd(a.stride, b.stride, x, y);
  const std::int64_t diff = b.lo - a.lo;
  if (diff % g != 0) return {0, -1, 1};
  const std::int64_t lcm = a.stride / g * b.stride;
  // One solution: value v0 = a.lo + (diff/g)*x*a.stride; bring into range.
  // Use __int128 to avoid overflow in the multiply.
  const __int128 v0w =
      static_cast<__int128>(a.lo) +
      static_cast<__int128>(diff / g) * x % (lcm / a.stride) * a.stride;
  std::int64_t v0 = static_cast<std::int64_t>(v0w);
  const std::int64_t lo = std::max(a.lo, b.lo);
  const std::int64_t hi = std::min(a.hi, b.hi);
  // Align v0 to the smallest member >= lo.
  v0 = v0 + ceil_div(lo - v0, lcm) * lcm;
  if (v0 > hi) return {0, -1, 1};
  return ConcreteInterval{v0, hi, lcm}.normalized();
}

std::vector<ConcreteInterval> subtract(const ConcreteInterval& a0,
                                       const ConcreteInterval& b0) {
  const ConcreteInterval a = a0.normalized(), b = b0.normalized();
  std::vector<ConcreteInterval> out;
  if (a.empty()) return out;
  const ConcreteInterval both = intersect(a, b);
  if (both.empty()) {
    out.push_back(a);
    return out;
  }
  if (a.stride == 1 && both.stride == 1) {
    // Exact unit-stride difference: up to two pieces.
    if (a.lo <= both.lo - 1) out.push_back({a.lo, both.lo - 1, 1});
    if (both.hi + 1 <= a.hi) out.push_back({both.hi + 1, a.hi, 1});
    return out;
  }
  // General strided case: enumerate (sections in this compiler are small in
  // the strided dimension — CYCLIC columns per processor).
  for (std::int64_t v = a.lo; v <= a.hi; v += a.stride)
    if (!both.contains(v)) out.push_back({v, v, 1});
  // Merge adjacent singletons into runs where possible.
  std::vector<ConcreteInterval> merged;
  for (const auto& iv : out) {
    if (!merged.empty() && merged.back().stride == 1 &&
        merged.back().hi + 1 == iv.lo)
      merged.back().hi = iv.hi;
    else
      merged.push_back(iv);
  }
  return merged;
}

bool ConcreteSection::contains(const std::vector<std::int64_t>& idx) const {
  FGDSM_ASSERT(idx.size() == dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d)
    if (!dims[d].contains(idx[d])) return false;
  return !dims.empty();
}

void ConcreteSet::add(ConcreteSection s) {
  if (!s.empty()) pieces_.push_back(std::move(s));
}

bool ConcreteSet::contains(const std::vector<std::int64_t>& idx) const {
  for (const auto& p : pieces_)
    if (p.contains(idx)) return true;
  return false;
}

ConcreteSet ConcreteSet::intersect(const ConcreteSection& s) const {
  ConcreteSet out;
  for (const auto& p : pieces_) {
    FGDSM_ASSERT(p.dims.size() == s.dims.size());
    ConcreteSection r;
    r.dims.reserve(p.dims.size());
    for (std::size_t d = 0; d < p.dims.size(); ++d)
      r.dims.push_back(hpf::intersect(p.dims[d], s.dims[d]));
    out.add(std::move(r));
  }
  return out;
}

ConcreteSet ConcreteSet::subtract(const ConcreteSection& s) const {
  // Rectangle difference: for each piece, split along each dimension.
  ConcreteSet out;
  for (const auto& p : pieces_) {
    FGDSM_ASSERT(p.dims.size() == s.dims.size());
    ConcreteSection rest = p;
    for (std::size_t d = 0; d < p.dims.size(); ++d) {
      // Pieces where dimension d falls outside s.dims[d] (other dims as in
      // `rest` so far).
      for (const auto& outside : hpf::subtract(rest.dims[d], s.dims[d])) {
        ConcreteSection piece = rest;
        piece.dims[d] = outside;
        out.add(std::move(piece));
      }
      // Continue splitting within the overlap.
      rest.dims[d] = hpf::intersect(rest.dims[d], s.dims[d]);
      if (rest.dims[d].empty()) break;
    }
    // If rest survived every dimension, it is fully inside s: dropped.
  }
  return out;
}

std::int64_t ConcreteSet::exact_count_slow(
    const std::vector<ConcreteInterval>& universe) const {
  // Enumerate the universe and count membership — reference implementation
  // for property tests.
  std::int64_t count = 0;
  std::vector<std::int64_t> idx(universe.size());
  std::function<void(std::size_t)> rec = [&](std::size_t d) {
    if (d == universe.size()) {
      if (contains(idx)) ++count;
      return;
    }
    const ConcreteInterval u = universe[d].normalized();
    for (std::int64_t v = u.lo; v <= u.hi; v += u.stride) {
      idx[d] = v;
      rec(d + 1);
    }
  };
  if (!universe.empty()) rec(0);
  return count;
}

std::string Section::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (d) os << ", ";
    os << dims[d].lo.to_string() << ":" << dims[d].hi.to_string();
    if (dims[d].stride != 1) os << ":" << dims[d].stride;
  }
  os << ")";
  return os.str();
}

}  // namespace fgdsm::hpf
