// Regular-section algebra ("omega-lite").
//
// The paper represents the array sections it optimizes as contiguous ranges
// (optionally a 2-D family of ranges separated by a fixed stride) — it notes
// (§4.1) they "could be represented by traditional regular section
// descriptors"; Omega was used for engineering convenience. This module is
// that RSD package, in two layers:
//
//   - Section / SectionSet: symbolic per-dimension strided intervals whose
//     bounds are AffineExpr (parametric in processor id, problem sizes and
//     time-step symbols). Built by the access analysis at "compile time".
//   - ConcreteSection / ConcreteSet: fully evaluated integer sections with
//     exact set algebra (intersect, subtract, enumerate), used when the
//     runtime instantiates a plan with concrete symbol values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/hpf/symbolic.h"

namespace fgdsm::hpf {

// ---------------------------------------------------------------------------
// Concrete layer
// ---------------------------------------------------------------------------

// One dimension: { lo + k*stride : 0 <= k, lo + k*stride <= hi }.
// Empty iff lo > hi.
struct ConcreteInterval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;
  std::int64_t stride = 1;

  bool empty() const { return lo > hi; }
  std::int64_t count() const {
    return empty() ? 0 : (hi - lo) / stride + 1;
  }
  bool contains(std::int64_t v) const {
    return !empty() && v >= lo && v <= hi && (v - lo) % stride == 0;
  }
  // Normalize so hi is exactly the last member.
  ConcreteInterval normalized() const {
    if (empty()) return {0, -1, 1};
    ConcreteInterval r = *this;
    r.hi = lo + (hi - lo) / stride * stride;
    if (r.stride <= 0) r.stride = 1;
    return r;
  }
  bool operator==(const ConcreteInterval& o) const {
    const ConcreteInterval a = normalized(), b = o.normalized();
    if (a.empty() && b.empty()) return true;
    return a.lo == b.lo && a.hi == b.hi &&
           (a.count() == 1 || a.stride == b.stride);
  }
};

// Intersection of two strided intervals (solves the CRT alignment).
ConcreteInterval intersect(const ConcreteInterval& a,
                           const ConcreteInterval& b);
// a \ b, as a union of at most... pieces (general strided difference falls
// back to enumeration for small sets; unit-stride difference is exact and
// cheap).
std::vector<ConcreteInterval> subtract(const ConcreteInterval& a,
                                       const ConcreteInterval& b);

// A rectangular section of an array: one interval per dimension
// (dimension 0 varies fastest — Fortran column-major order).
struct ConcreteSection {
  std::vector<ConcreteInterval> dims;

  bool empty() const {
    for (const auto& d : dims)
      if (d.empty()) return true;
    return dims.empty() ? true : false;
  }
  std::int64_t count() const {
    if (empty()) return 0;
    std::int64_t c = 1;
    for (const auto& d : dims) c *= d.count();
    return c;
  }
  bool contains(const std::vector<std::int64_t>& idx) const;
  bool operator==(const ConcreteSection& o) const { return dims == o.dims; }
};

// Union of rectangular sections (pieces may be disjoint or overlap; count()
// de-duplicates only if you ask via contains-based enumeration).
class ConcreteSet {
 public:
  ConcreteSet() = default;
  explicit ConcreteSet(ConcreteSection s) { add(std::move(s)); }

  void add(ConcreteSection s);
  bool empty() const { return pieces_.empty(); }
  const std::vector<ConcreteSection>& pieces() const { return pieces_; }
  bool contains(const std::vector<std::int64_t>& idx) const;

  ConcreteSet intersect(const ConcreteSection& s) const;
  ConcreteSet subtract(const ConcreteSection& s) const;

  // Exact element count, counting overlapping pieces once (enumerates; use
  // only on test-sized sets).
  std::int64_t exact_count_slow(
      const std::vector<ConcreteInterval>& universe) const;

 private:
  std::vector<ConcreteSection> pieces_;
};

// ---------------------------------------------------------------------------
// Symbolic layer
// ---------------------------------------------------------------------------

struct Interval {
  AffineExpr lo;
  AffineExpr hi;
  std::int64_t stride = 1;

  ConcreteInterval eval(const Bindings& b) const {
    return ConcreteInterval{lo.eval(b), hi.eval(b), stride}.normalized();
  }
  bool operator==(const Interval& o) const {
    return lo == o.lo && hi == o.hi && stride == o.stride;
  }
};

struct Section {
  std::vector<Interval> dims;

  ConcreteSection eval(const Bindings& b) const {
    ConcreteSection s;
    s.dims.reserve(dims.size());
    for (const auto& d : dims) s.dims.push_back(d.eval(b));
    return s;
  }
  bool operator==(const Section& o) const { return dims == o.dims; }
  std::string to_string() const;
};

}  // namespace fgdsm::hpf
