// Message-passing backend — the baseline the paper compares against: PGI's
// pghpf message-passing runtime ported to Tempest messages (§5, Fig. 3).
//
// No access control, no directory, no coherence: owners simply ship section
// bytes to consumers before each loop, and a byte-counting semaphore gates
// the consumer. Every node keeps the full-segment backing (the port uses the
// same global addresses), so a received section lands at its natural
// address.
//
// Epochs. The backend runs without barriers, so a fast sender can race one
// or more communication phases ahead of a slow receiver. Messages are tagged
// with the sender's communication-epoch counter (advanced at the same
// program points on every node); the receiver stashes future-epoch payloads
// and applies them when it advances — otherwise early data could clobber a
// section the receiver is still reading.
//
// The per-message software overhead (CostModel::mp_msg_overhead) models the
// marshalling/progress-engine cost of the ported runtime. The paper found
// this backend slower than dual-cpu shared memory on most of the suite
// (strikingly so on cg) and attributed it to unidentified overheads in the
// messaging runtime; this knob reproduces that behaviour and is the honest
// place to tune the MP baseline.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/tempest/cluster.h"
#include "src/tempest/node.h"

namespace fgdsm::mp {

using tempest::GAddr;
using tempest::Node;

class MpRuntime {
 public:
  // Registers the kMpData handler. Must outlive the run.
  explicit MpRuntime(tempest::Cluster& cluster);

  // Enter the next communication epoch (call at the same program point on
  // every node); applies any stashed early arrivals for the new epoch.
  void advance_epoch(Node& node, sim::Task& task);

  // Ship [addr, addr+len) of this node's memory to dst, split into messages
  // of at most max_payload bytes, tagged with the current epoch.
  void send(Node& node, sim::Task& task, GAddr addr, std::size_t len,
            int dst, std::size_t max_payload);

  // Block until `bytes` of current-epoch MP data have arrived.
  void recv(Node& node, sim::Task& task, std::int64_t bytes);

  std::int64_t epoch(int node) const { return st_[node].epoch; }

 private:
  struct NodeState {
    std::int64_t epoch = 0;
    std::map<std::int64_t, std::vector<sim::Message>> stash;
  };
  void apply(Node& node, const sim::Message& m);

  tempest::Cluster& cluster_;
  std::vector<NodeState> st_;
};

}  // namespace fgdsm::mp
