#include "src/mp/runtime.h"

#include <cstring>

#include "src/util/assert.h"

namespace fgdsm::mp {

MpRuntime::MpRuntime(tempest::Cluster& cluster)
    : cluster_(cluster),
      st_(static_cast<std::size_t>(cluster.nnodes())) {
  cluster_.register_handler(
      tempest::MsgType::kMpData,
      [this](Node& self, sim::Message& m, tempest::HandlerClock& clk) {
        clk.charge(cluster_.costs().mp_msg_overhead +
                   cluster_.costs().copy_time(
                       static_cast<std::int64_t>(m.payload.size())));
        NodeState& st = st_[static_cast<std::size_t>(self.id())];
        const std::int64_t epoch = m.arg[1];
        if (epoch == st.epoch) {
          apply(self, m);
          self.recv_sem.post(clk.t,
                             static_cast<std::int64_t>(m.payload.size()));
        } else {
          FGDSM_ASSERT_MSG(epoch > st.epoch,
                           "stale MP message (epoch " << epoch << " < "
                                                      << st.epoch << ")");
          st.stash[epoch].push_back(std::move(m));
        }
      });
  // Crash recovery: epochs and stashed future-epoch payloads are host state
  // the cluster checkpoint cannot see. NodeState is deep-copyable (payloads
  // are owned vectors), so the whole table is the snapshot.
  cluster_.register_host_state_hook(
      {[this]() -> std::shared_ptr<void> {
         return std::make_shared<std::vector<NodeState>>(st_);
       },
       [this](const std::shared_ptr<void>& b) {
         st_ = *std::static_pointer_cast<std::vector<NodeState>>(b);
       }});
}

void MpRuntime::apply(Node& node, const sim::Message& m) {
  std::memcpy(node.mem(m.addr), m.payload.data(), m.payload.size());
}

void MpRuntime::advance_epoch(Node& node, sim::Task& task) {
  NodeState& st = st_[static_cast<std::size_t>(node.id())];
  task.sync();  // settle handlers due now before flipping the epoch
  ++st.epoch;
  auto it = st.stash.find(st.epoch);
  if (it == st.stash.end()) return;
  for (const sim::Message& m : it->second) {
    task.charge(cluster_.costs().copy_time(
        static_cast<std::int64_t>(m.payload.size())));
    apply(node, m);
    node.recv_sem.post(task.now(),
                       static_cast<std::int64_t>(m.payload.size()));
  }
  st.stash.erase(it);
}

void MpRuntime::send(Node& node, sim::Task& task, GAddr addr,
                     std::size_t len, int dst, std::size_t max_payload) {
  FGDSM_ASSERT(dst != node.id());
  FGDSM_ASSERT(max_payload > 0);
  const std::int64_t epoch =
      st_[static_cast<std::size_t>(node.id())].epoch;
  std::size_t off = 0;
  while (off < len) {
    const std::size_t chunk = std::min(max_payload, len - off);
    // Marshalling cost: the runtime copies the section into a message
    // buffer, converts descriptors and runs its progress engine once per
    // message (see CostModel::mp_per_byte_extra_ns).
    task.charge(cluster_.costs().mp_msg_overhead +
                cluster_.costs().copy_time(static_cast<std::int64_t>(chunk)) +
                static_cast<sim::Time>(
                    cluster_.costs().mp_per_byte_extra_ns * chunk));
    sim::Message m;
    m.dst = dst;
    m.type = static_cast<std::uint16_t>(tempest::MsgType::kMpData);
    m.addr = addr + off;
    m.arg[1] = epoch;
    m.payload = node.cluster().payload_pool().acquire(chunk);
    std::memcpy(m.payload.data(), node.mem(addr + off), chunk);
    node.send(task, std::move(m));
    off += chunk;
  }
}

void MpRuntime::recv(Node& node, sim::Task& task, std::int64_t bytes) {
  if (bytes > 0) node.recv_sem.wait(task, bytes);
}

}  // namespace fgdsm::mp
