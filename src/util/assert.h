// Invariant checking for the fgdsm libraries.
//
// FGDSM_ASSERT is always on (including release builds): the simulator's value
// comes from its internal consistency, and the cost of the checks is dwarfed
// by event-queue overhead. FGDSM_DCHECK compiles out in NDEBUG builds and is
// meant for hot-path checks (per-block access tests).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fgdsm {

// Thrown on any violated invariant; carries the failing expression and
// location so tests can assert on failures without aborting the process.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "FGDSM_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}
}  // namespace detail

}  // namespace fgdsm

#define FGDSM_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::fgdsm::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define FGDSM_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream fgdsm_os_;                                     \
      fgdsm_os_ << msg;                                                 \
      ::fgdsm::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                   fgdsm_os_.str());                    \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the expression unevaluated (zero cost) while still
// referencing its operands, so variables used only in DCHECKs do not trip
// -Wunused-variable in release builds.
#define FGDSM_DCHECK(expr) ((void)sizeof(expr))
#else
#define FGDSM_DCHECK(expr) FGDSM_ASSERT(expr)
#endif
