// Per-node statistics counters for a simulation run.
//
// The counters mirror the quantities the paper reports in Table 3 and
// Figures 3/4: miss counts, protocol messages, bytes moved, and the split of
// each node's wall time into compute / communication (miss stalls + protocol
// call time) / synchronization (barrier + reduction waits).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgdsm::util {

// One node's counters. All times are virtual nanoseconds.
struct NodeStats {
  // Memory-system events (the default protocol path).
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;   // write faults (upgrade or fetch)
  std::uint64_t invalidations_received = 0;

  // Compiler-controlled coherence events.
  std::uint64_t ccc_blocks_sent = 0;
  std::uint64_t ccc_messages_sent = 0;     // direct-data messages (post-bulk)
  std::uint64_t ccc_runtime_calls = 0;     // mk_writable/implicit_*/limits
  std::uint64_t ccc_calls_elided = 0;      // removed by run-time overhead elim

  // Host-side planner cache (core::PlanCache): loop visits served from the
  // cached schedule vs. visits that re-ran section analysis + planning.
  // These measure wall-clock work saved, not simulated behavior — cached
  // and fresh plans are identical by construction.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  // Inspector–executor runtime (src/irreg): inspections actually performed
  // (index-array scan + needs exchange) and schedule-cache outcomes for
  // irregular-loop visits in the scheduled modes. Unlike the plan-cache
  // counters, a sched_cache miss costs simulated time (the exchange is real
  // communication), so the hit rate is a *simulated* quantity.
  std::uint64_t irreg_inspections = 0;
  std::uint64_t sched_cache_hits = 0;
  std::uint64_t sched_cache_misses = 0;

  // Network traffic (all causes).
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;

  // Chaos-mode networking (--faults): reliable-transport and fault-injector
  // activity. All zero when fault injection is off (the channel is inactive
  // and the wire is perfect). Sender-side counters (retransmits, injected
  // faults) land on the message's source node; receiver-side counters
  // (acks, suppressed duplicates) on its destination.
  std::uint64_t retransmits = 0;        // copies re-sent after an RTO expiry
  std::uint64_t channel_acks = 0;       // pure (non-piggybacked) acks sent
  std::uint64_t dup_suppressed = 0;     // already-delivered copies discarded
  std::uint64_t faults_dropped = 0;     // messages the injector dropped
  std::uint64_t faults_duplicated = 0;  // messages the injector duplicated
  std::uint64_t faults_delayed = 0;     // messages the injector delayed

  // Fail-stop crash injection + checkpoint/rollback recovery (--faults=
  // crash=/crashp= with --checkpoint-every=K). All zero in fault-free runs.
  // crashes land on the node that died; recoveries/checkpoints are counted
  // on every participating node (a rollback is cluster-wide);
  // checkpoint_bytes is the serialized state this node contributed;
  // rollback_ns is virtual time lost to rollback (resume point minus the
  // restored checkpoint's capture time), summed over recoveries.
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::int64_t rollback_ns = 0;

  // Barriers/reductions participated in.
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;

  // Virtual-time breakdown of this node's execution.
  std::int64_t compute_ns = 0;   // charged loop-body work + access checks
  std::int64_t miss_ns = 0;      // stalled waiting for protocol misses
  std::int64_t ccc_ns = 0;       // spent inside compiler-inserted calls
  std::int64_t sync_ns = 0;      // waiting at barriers / reductions
  std::int64_t handler_steal_ns = 0;  // single-cpu: handler occupancy observed

  // "Communication time" in the paper's sense: everything that is not the
  // loop-body computation.
  std::int64_t comm_ns() const { return miss_ns + ccc_ns + sync_ns; }
  std::uint64_t total_misses() const { return read_misses + write_misses; }

  // The one canonical field list. Every aggregate (+=, -=), the JSON report
  // and the field-completeness test derive from it, so a new counter added
  // above but forgotten here fails the sizeof tripwire in tests.
  template <typename Fn>
  static void visit_members(Fn&& fn) {
    fn("read_misses", &NodeStats::read_misses);
    fn("write_misses", &NodeStats::write_misses);
    fn("invalidations_received", &NodeStats::invalidations_received);
    fn("ccc_blocks_sent", &NodeStats::ccc_blocks_sent);
    fn("ccc_messages_sent", &NodeStats::ccc_messages_sent);
    fn("ccc_runtime_calls", &NodeStats::ccc_runtime_calls);
    fn("ccc_calls_elided", &NodeStats::ccc_calls_elided);
    fn("plan_cache_hits", &NodeStats::plan_cache_hits);
    fn("plan_cache_misses", &NodeStats::plan_cache_misses);
    fn("irreg_inspections", &NodeStats::irreg_inspections);
    fn("sched_cache_hits", &NodeStats::sched_cache_hits);
    fn("sched_cache_misses", &NodeStats::sched_cache_misses);
    fn("messages_sent", &NodeStats::messages_sent);
    fn("bytes_sent", &NodeStats::bytes_sent);
    fn("retransmits", &NodeStats::retransmits);
    fn("channel_acks", &NodeStats::channel_acks);
    fn("dup_suppressed", &NodeStats::dup_suppressed);
    fn("faults_dropped", &NodeStats::faults_dropped);
    fn("faults_duplicated", &NodeStats::faults_duplicated);
    fn("faults_delayed", &NodeStats::faults_delayed);
    fn("crashes", &NodeStats::crashes);
    fn("recoveries", &NodeStats::recoveries);
    fn("checkpoints", &NodeStats::checkpoints);
    fn("checkpoint_bytes", &NodeStats::checkpoint_bytes);
    fn("rollback_ns", &NodeStats::rollback_ns);
    fn("barriers", &NodeStats::barriers);
    fn("reductions", &NodeStats::reductions);
    fn("compute_ns", &NodeStats::compute_ns);
    fn("miss_ns", &NodeStats::miss_ns);
    fn("ccc_ns", &NodeStats::ccc_ns);
    fn("sync_ns", &NodeStats::sync_ns);
    fn("handler_steal_ns", &NodeStats::handler_steal_ns);
  }
  // Name/value visitation (works on const and non-const stats).
  template <typename S, typename Fn>
  static void visit_fields(S& s, Fn&& fn) {
    visit_members([&](const char* name, auto mem) { fn(name, s.*mem); });
  }

  NodeStats& operator+=(const NodeStats& o);
  NodeStats& operator-=(const NodeStats& o);
};

// Whole-run statistics: one NodeStats per node plus run-level results.
struct RunStats {
  std::vector<NodeStats> node;
  std::int64_t elapsed_ns = 0;  // max node finish time
  // Per-parallel-loop attribution: loop name -> the summed-over-nodes delta
  // of every counter while that loop (including its communication schedule
  // and end-of-loop synchronization) executed. Populated by the executor at
  // phase boundaries; empty for runs driven outside exec::run.
  std::map<std::string, NodeStats> per_loop;

  explicit RunStats(int nnodes = 0) : node(nnodes) {}

  NodeStats totals() const;
  // Per-node averages, as the paper reports ("average number of misses
  // per-node").
  double avg_misses_per_node() const;
  double avg_comm_ns_per_node() const;
  double avg_compute_ns_per_node() const;
};

// Human-readable helpers.
std::string format_ns(std::int64_t ns);       // "12.34 ms"
std::string format_count(std::uint64_t n);    // "293.8K"
double percent_reduction(double base, double opt);  // 100*(base-opt)/base

}  // namespace fgdsm::util
