// Per-node statistics counters for a simulation run.
//
// The counters mirror the quantities the paper reports in Table 3 and
// Figures 3/4: miss counts, protocol messages, bytes moved, and the split of
// each node's wall time into compute / communication (miss stalls + protocol
// call time) / synchronization (barrier + reduction waits).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgdsm::util {

// One node's counters. All times are virtual nanoseconds.
struct NodeStats {
  // Memory-system events (the default protocol path).
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;   // write faults (upgrade or fetch)
  std::uint64_t invalidations_received = 0;

  // Compiler-controlled coherence events.
  std::uint64_t ccc_blocks_sent = 0;
  std::uint64_t ccc_messages_sent = 0;     // direct-data messages (post-bulk)
  std::uint64_t ccc_runtime_calls = 0;     // mk_writable/implicit_*/limits
  std::uint64_t ccc_calls_elided = 0;      // removed by run-time overhead elim

  // Host-side planner cache (core::PlanCache): loop visits served from the
  // cached schedule vs. visits that re-ran section analysis + planning.
  // These measure wall-clock work saved, not simulated behavior — cached
  // and fresh plans are identical by construction.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  // Network traffic (all causes).
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;

  // Barriers/reductions participated in.
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;

  // Virtual-time breakdown of this node's execution.
  std::int64_t compute_ns = 0;   // charged loop-body work + access checks
  std::int64_t miss_ns = 0;      // stalled waiting for protocol misses
  std::int64_t ccc_ns = 0;       // spent inside compiler-inserted calls
  std::int64_t sync_ns = 0;      // waiting at barriers / reductions
  std::int64_t handler_steal_ns = 0;  // single-cpu: handler occupancy observed

  // "Communication time" in the paper's sense: everything that is not the
  // loop-body computation.
  std::int64_t comm_ns() const { return miss_ns + ccc_ns + sync_ns; }
  std::uint64_t total_misses() const { return read_misses + write_misses; }

  NodeStats& operator+=(const NodeStats& o);
};

// Whole-run statistics: one NodeStats per node plus run-level results.
struct RunStats {
  std::vector<NodeStats> node;
  std::int64_t elapsed_ns = 0;  // max node finish time

  explicit RunStats(int nnodes = 0) : node(nnodes) {}

  NodeStats totals() const;
  // Per-node averages, as the paper reports ("average number of misses
  // per-node").
  double avg_misses_per_node() const;
  double avg_comm_ns_per_node() const;
  double avg_compute_ns_per_node() const;
};

// Human-readable helpers.
std::string format_ns(std::int64_t ns);       // "12.34 ms"
std::string format_count(std::uint64_t n);    // "293.8K"
double percent_reduction(double base, double opt);  // 100*(base-opt)/base

}  // namespace fgdsm::util
