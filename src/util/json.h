// Minimal streaming JSON writer with deterministic output — the machine-
// readable side of the observability layer (bench --json reports, Chrome
// trace_event export). Emits pretty-printed UTF-8 with stable number
// formatting, so two runs that compute identical values produce
// byte-identical files regardless of host thread count or locale.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fgdsm::util {

// Escape a string for inclusion inside JSON double quotes.
std::string json_escape(const std::string& s);

// Format a double exactly as the writer would ("%.17g" trimmed to the
// shortest round-trip form is deliberately NOT attempted: fixed %.17g is
// stable and byte-identical everywhere).
std::string json_double(double v);

// Structured writer. Usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("config"); w.begin_object(); ... w.end_object();
//   w.key("runs"); w.begin_array(); ... w.end_array();
//   w.end_object();
// The writer tracks nesting and inserts commas/newlines; destruction with
// unbalanced begin/end is an assertion failure in tests' debug builds but
// otherwise harmless (the stream simply ends early).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent_width = 2)
      : os_(os), indent_width_(indent_width) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(const std::string& k);

  void value(const std::string& s);
  void value(const char* s) { value(std::string(s)); }
  void value(bool b);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void null();
  // Pre-formatted JSON literal (a number the caller formatted itself).
  void value_raw(const std::string& literal);

  // key + scalar in one call.
  template <typename T>
  void kv(const std::string& k, T v) {
    key(k);
    value(v);
  }

  bool balanced() const { return stack_.empty(); }

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_width_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;   // parallel to stack_: no comma yet?
  bool key_pending_ = false;  // a key was written; next value follows inline
};

}  // namespace fgdsm::util
