// Tiny command-line option parser used by examples and benchmark binaries.
// Supports "--name=value" and boolean "--flag" forms; anything else is a
// positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgdsm::util {

class Options {
 public:
  Options(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fgdsm::util
