// Tiny command-line option parser used by examples and benchmark binaries.
// Supports "--name=value" and boolean "--flag" forms; anything else is a
// positional argument.
//
// Strict mode: a harness that declares its known flags with check_known()
// turns any unrecognized --flag into a fatal error (exit 2) naming the flag
// and the closest declared match — a typo like --tarce=x.json must not
// silently run a different experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgdsm::util {

class Options {
 public:
  Options(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Strict mode: every parsed --flag must appear in `known`, or the process
  // exits with code 2 and a message naming the offending flag (plus a
  // "did you mean --X?" suggestion when a declared flag is close).
  void check_known(const std::vector<std::string>& known) const;

  // Nearest declared name by edit distance (empty if nothing is close
  // enough to be a plausible typo). Exposed for tests.
  static std::string closest_match(const std::string& name,
                                   const std::vector<std::string>& known);

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fgdsm::util
