#include "src/util/stats.h"

#include <algorithm>
#include <cstdio>

#include "src/util/assert.h"

namespace fgdsm::util {

NodeStats& NodeStats::operator+=(const NodeStats& o) {
  read_misses += o.read_misses;
  write_misses += o.write_misses;
  invalidations_received += o.invalidations_received;
  ccc_blocks_sent += o.ccc_blocks_sent;
  ccc_messages_sent += o.ccc_messages_sent;
  ccc_runtime_calls += o.ccc_runtime_calls;
  ccc_calls_elided += o.ccc_calls_elided;
  plan_cache_hits += o.plan_cache_hits;
  plan_cache_misses += o.plan_cache_misses;
  messages_sent += o.messages_sent;
  bytes_sent += o.bytes_sent;
  barriers += o.barriers;
  reductions += o.reductions;
  compute_ns += o.compute_ns;
  miss_ns += o.miss_ns;
  ccc_ns += o.ccc_ns;
  sync_ns += o.sync_ns;
  handler_steal_ns += o.handler_steal_ns;
  return *this;
}

NodeStats RunStats::totals() const {
  NodeStats t;
  for (const auto& n : node) t += n;
  return t;
}

double RunStats::avg_misses_per_node() const {
  if (node.empty()) return 0.0;
  return static_cast<double>(totals().total_misses()) /
         static_cast<double>(node.size());
}

double RunStats::avg_comm_ns_per_node() const {
  if (node.empty()) return 0.0;
  return static_cast<double>(totals().comm_ns()) /
         static_cast<double>(node.size());
}

double RunStats::avg_compute_ns_per_node() const {
  if (node.empty()) return 0.0;
  return static_cast<double>(totals().compute_ns) /
         static_cast<double>(node.size());
}

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double d = static_cast<double>(ns);
  if (ns >= 1'000'000'000)
    std::snprintf(buf, sizeof buf, "%.3f s", d / 1e9);
  else if (ns >= 1'000'000)
    std::snprintf(buf, sizeof buf, "%.2f ms", d / 1e6);
  else if (ns >= 1'000)
    std::snprintf(buf, sizeof buf, "%.2f us", d / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  return buf;
}

std::string format_count(std::uint64_t n) {
  char buf[64];
  const double d = static_cast<double>(n);
  if (n >= 10'000'000)
    std::snprintf(buf, sizeof buf, "%.1fM", d / 1e6);
  else if (n >= 10'000)
    std::snprintf(buf, sizeof buf, "%.1fK", d / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}

double percent_reduction(double base, double opt) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - opt) / base;
}

}  // namespace fgdsm::util
