#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/assert.h"

namespace fgdsm::util {

NodeStats& NodeStats::operator+=(const NodeStats& o) {
  visit_members([&](const char*, auto mem) { this->*mem += o.*mem; });
  return *this;
}

NodeStats& NodeStats::operator-=(const NodeStats& o) {
  visit_members([&](const char*, auto mem) { this->*mem -= o.*mem; });
  return *this;
}

NodeStats RunStats::totals() const {
  NodeStats t;
  for (const auto& n : node) t += n;
  return t;
}

double RunStats::avg_misses_per_node() const {
  if (node.empty()) return 0.0;
  return static_cast<double>(totals().total_misses()) /
         static_cast<double>(node.size());
}

double RunStats::avg_comm_ns_per_node() const {
  if (node.empty()) return 0.0;
  return static_cast<double>(totals().comm_ns()) /
         static_cast<double>(node.size());
}

double RunStats::avg_compute_ns_per_node() const {
  if (node.empty()) return 0.0;
  return static_cast<double>(totals().compute_ns) /
         static_cast<double>(node.size());
}

std::string format_ns(std::int64_t ns) {
  // Pick the unit by magnitude and keep the sign, so negative durations
  // (deltas can legitimately go negative) render as "-2.50 ms", not as a
  // raw nanosecond count.
  char buf[64];
  const double d = std::abs(static_cast<double>(ns));
  const char* sign = ns < 0 ? "-" : "";
  if (d >= 1e9)
    std::snprintf(buf, sizeof buf, "%s%.3f s", sign, d / 1e9);
  else if (d >= 1e6)
    std::snprintf(buf, sizeof buf, "%s%.2f ms", sign, d / 1e6);
  else if (d >= 1e3)
    std::snprintf(buf, sizeof buf, "%s%.2f us", sign, d / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  return buf;
}

std::string format_count(std::uint64_t n) {
  char buf[64];
  const double d = static_cast<double>(n);
  if (n >= 10'000'000)
    std::snprintf(buf, sizeof buf, "%.1fM", d / 1e6);
  else if (n >= 10'000)
    std::snprintf(buf, sizeof buf, "%.1fK", d / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}

double percent_reduction(double base, double opt) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - opt) / base;
}

}  // namespace fgdsm::util
