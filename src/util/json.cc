#include "src/util/json.h"

#include <cstdio>

namespace fgdsm::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  // Integral doubles print as integers (stable and friendlier to schema
  // checks); everything else as %.17g, which round-trips exactly.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -1e15 && v < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i)
    for (int j = 0; j < indent_width_; ++j) os_ << ' ';
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
}

void JsonWriter::key(const std::string& k) {
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
  os_ << '"' << json_escape(k) << "\": ";
  key_pending_ = true;
}

void JsonWriter::value(const std::string& s) {
  before_value();
  os_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(double v) {
  before_value();
  os_ << json_double(v);
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

void JsonWriter::value_raw(const std::string& literal) {
  before_value();
  os_ << literal;
}

}  // namespace fgdsm::util
