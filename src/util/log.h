// Minimal leveled logger. Logging is off by default (simulation runs are the
// product; logs are a debugging aid) and enabled per-category via
// util::Log::enable() or the FGDSM_LOG environment variable
// (comma-separated category names, or "all").
#pragma once

#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>

namespace fgdsm::util {

class Log {
 public:
  static Log& instance();

  void enable(const std::string& category);
  void disable(const std::string& category);
  bool enabled(const std::string& category) const;

  void write(const std::string& category, const std::string& msg);

 private:
  Log();
  mutable std::mutex mu_;
  std::set<std::string> categories_;
  bool all_ = false;
};

}  // namespace fgdsm::util

// Usage: FGDSM_LOG("proto", "node " << n << " read fault @" << addr);
#define FGDSM_LOG(category, expr)                                  \
  do {                                                             \
    if (::fgdsm::util::Log::instance().enabled(category)) {        \
      std::ostringstream fgdsm_log_os_;                            \
      fgdsm_log_os_ << expr;                                       \
      ::fgdsm::util::Log::instance().write(category,               \
                                           fgdsm_log_os_.str());   \
    }                                                              \
  } while (0)
