// Plain-text table formatting for the benchmark harnesses, so each bench
// binary can print rows shaped like the paper's tables/figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fgdsm::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: format doubles / ints into cells.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::int64_t v);
  static std::string cell(std::uint64_t v);
  static std::string percent(double v, int precision = 1);  // "42.0%"

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fgdsm::util
