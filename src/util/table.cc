#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/assert.h"

namespace fgdsm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FGDSM_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FGDSM_ASSERT_MSG(cells.size() == headers_.size(),
                   "row arity " << cells.size() << " != header arity "
                                << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(std::uint64_t v) { return std::to_string(v); }

std::string Table::percent(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  auto print_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << "+";
    }
    os << "\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace fgdsm::util
