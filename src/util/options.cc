#include "src/util/options.h"

#include <cstdio>
#include <cstdlib>

namespace fgdsm::util {

namespace {

// Malformed numeric values must not silently become 0 (strtoll/strtod's
// behaviour): a typo like --scale=0.5x would quietly run a different
// experiment. Reject anything but a fully-consumed number.
[[noreturn]] void bad_value(const std::string& name, const std::string& v,
                            const char* kind) {
  std::fprintf(stderr, "fgdsm: invalid %s value '%s' for --%s\n", kind,
               v.c_str(), name.c_str());
  std::exit(2);
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos)
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    else
      values_[arg] = "1";  // bare flag == boolean true
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get(const std::string& name,
                         const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  const std::int64_t r = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size())
    bad_value(name, v, "integer");
  return r;
}

double Options::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size())
    bad_value(name, v, "numeric");
  return r;
}

bool Options::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace fgdsm::util
