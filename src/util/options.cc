#include "src/util/options.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fgdsm::util {

namespace {

// Malformed numeric values must not silently become 0 (strtoll/strtod's
// behaviour): a typo like --scale=0.5x would quietly run a different
// experiment. Reject anything but a fully-consumed number.
[[noreturn]] void bad_value(const std::string& name, const std::string& v,
                            const char* kind) {
  std::fprintf(stderr, "fgdsm: invalid %s value '%s' for --%s\n", kind,
               v.c_str(), name.c_str());
  std::exit(2);
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos)
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    else
      values_[arg] = "1";  // bare flag == boolean true
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

namespace {

// Classic Levenshtein distance; flag names are short, so the O(nm) table is
// immaterial.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string Options::closest_match(const std::string& name,
                                   const std::vector<std::string>& known) {
  std::string best;
  std::size_t best_d = name.size();  // a full rewrite is not a typo
  for (const std::string& k : known) {
    const std::size_t d = edit_distance(name, k);
    if (d < best_d || (d == best_d && !best.empty() && k < best)) {
      best = k;
      best_d = d;
    }
  }
  // Suggest only plausible typos: at most 3 edits and fewer than half the
  // flag rewritten.
  if (best_d > 3 || 2 * best_d >= std::max<std::size_t>(name.size(), 1))
    return "";
  return best;
}

void Options::check_known(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    const std::string suggestion = closest_match(name, known);
    if (suggestion.empty())
      std::fprintf(stderr, "fgdsm: unknown option --%s\n", name.c_str());
    else
      std::fprintf(stderr,
                   "fgdsm: unknown option --%s (did you mean --%s?)\n",
                   name.c_str(), suggestion.c_str());
    std::exit(2);
  }
}

std::string Options::get(const std::string& name,
                         const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  const std::int64_t r = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size())
    bad_value(name, v, "integer");
  return r;
}

double Options::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size())
    bad_value(name, v, "numeric");
  return r;
}

bool Options::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace fgdsm::util
