#include "src/util/log.h"

#include <cstdlib>

namespace fgdsm::util {

Log& Log::instance() {
  static Log log;
  return log;
}

Log::Log() {
  if (const char* env = std::getenv("FGDSM_LOG")) {
    std::string s(env);
    size_t pos = 0;
    while (pos != std::string::npos) {
      size_t comma = s.find(',', pos);
      std::string cat = s.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!cat.empty()) enable(cat);
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
}

void Log::enable(const std::string& category) {
  std::lock_guard<std::mutex> g(mu_);
  if (category == "all")
    all_ = true;
  else
    categories_.insert(category);
}

void Log::disable(const std::string& category) {
  std::lock_guard<std::mutex> g(mu_);
  if (category == "all")
    all_ = false;
  else
    categories_.erase(category);
}

bool Log::enabled(const std::string& category) const {
  std::lock_guard<std::mutex> g(mu_);
  return all_ || categories_.count(category) > 0;
}

void Log::write(const std::string& category, const std::string& msg) {
  std::lock_guard<std::mutex> g(mu_);
  std::cerr << "[" << category << "] " << msg << "\n";
}

}  // namespace fgdsm::util
