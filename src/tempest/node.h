// One cluster node: a full backing copy of the global shared segment,
// per-block fine-grain access tags, compute + protocol resources, and the
// active-message plumbing. This is the Tempest substrate a coherence
// protocol (src/proto) and the compiler-directed runtime (src/core) build on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/network.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/tempest/types.h"
#include "src/util/stats.h"

namespace fgdsm::tempest {

class Cluster;
class Protocol;

class Node {
 public:
  Node(Cluster& cluster, int id);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  Cluster& cluster() { return cluster_; }

  // ---- Memory and fine-grain access control ----

  // Raw pointer into this node's backing of the shared segment. Valid after
  // the cluster finalizes allocation (Cluster::run).
  std::byte* mem(GAddr a);
  const std::byte* mem(GAddr a) const;
  // Bytes of this node's segment backing the OS has actually committed
  // (resident pages). Scaling diagnostics; 0 when unsupported.
  std::size_t resident_mem_bytes() const;
  template <typename T>
  T* ptr(GAddr a) {
    return reinterpret_cast<T*>(mem(a));
  }

  Access access(BlockId b) const { return tags_[b]; }
  void set_access(BlockId b, Access a) { tags_[b] = a; }

  // ---- Compiled-in access checks (task context) ----
  // The executor performs these at block granularity over each loop chunk's
  // footprint — the check itself is free (hardware-accelerated access
  // control, §5); only faults enter protocol software. Stall time is
  // recorded into stats.miss_ns.
  void ensure_readable(sim::Task& task, GAddr addr, std::size_t len);
  void ensure_writable(sim::Task& task, GAddr addr, std::size_t len);
  // Validate a whole loop chunk's footprint at once: every read range
  // non-Invalid AND every write range ReadWrite, simultaneously, in one
  // yield-free pass. This is required for correctness, not just speed: a
  // block validated early can be recalled while a later range's fault
  // stalls, and the chunk body must not store through a stale tag.
  struct Extent {
    GAddr addr;
    std::size_t len;
  };
  void ensure_chunk(sim::Task& task, const std::vector<Extent>& reads,
                    const std::vector<Extent>& writes);
  // Tell the protocol which words were stored to (needed only while an
  // eager ownership upgrade is in flight; see proto/stache).
  void note_writes(GAddr addr, std::size_t len);

  // ---- Messaging ----
  // Task context: charges the task the message-composition overhead, then
  // injects. Handler context: charges the handler clock instead.
  void send(sim::Task& task, sim::Message m);
  void send_from_handler(HandlerClock& clk, sim::Message m);
  // Delivery entry (installed as the network sink). Messages are queued in
  // an inbox and their handlers *execute* as engine events at the time the
  // protocol resource actually becomes free — not at delivery. This keeps
  // handler side effects ordered in virtual time against compute-task code
  // (a task never observes a state change whose handler starts later than
  // the task's clock). Handlers for one node run strictly serialized.
  void deliver(sim::Message&& m, sim::Time arrival);

  // ---- Synchronization (task context) ----
  void barrier(sim::Task& task);
  enum class ReduceOp { kSum, kMax, kMin };
  double allreduce(sim::Task& task, double v, ReduceOp op = ReduceOp::kSum);

  // ---- Plumbing ----
  sim::Resource& cpu_res() { return cpu_res_; }
  // The resource protocol handlers occupy: the dedicated protocol processor
  // (dual-cpu) or the compute processor itself (single-cpu).
  sim::Resource& proto_res() { return dual_cpu_ ? proto_res_ : cpu_res_; }
  sim::Task* task() { return task_; }

  Protocol* protocol = nullptr;
  util::NodeStats stats;

  // Semaphores protocol/runtime layers wait on (one waiter each: this
  // node's compute task).
  sim::Semaphore barrier_sem;
  sim::Semaphore reduce_sem;
  sim::Semaphore recv_sem;   // compiler-directed ready_to_recv (data blocks)
  sim::Semaphore drain_sem;  // outstanding-transaction drain
  double reduce_result = 0.0;

  // Internal wiring (Cluster only).
  void finalize_memory(std::size_t segment_bytes, std::size_t nblocks,
                       bool dual_cpu);
  void bind_task(sim::Task* t);

  // ---- Fail-stop crash + rollback recovery (Cluster only) ----
  // Fail-stop this node at virtual time t: the compute task halts, queued
  // and future inbound messages are dropped (deliver() turns into a sink),
  // and the node stops acking (the channel's down-probe reads crashed()).
  // Runs as an event in this node's own partition — no cross-partition
  // state is touched.
  void crash(sim::Time t);
  bool crashed() const { return crashed_; }
  // Recovery: bring a crashed node back (its state is rolled back by the
  // cluster alongside every survivor's).
  void reincarnate() { crashed_ = false; }
  void clear_inbox() { inbox_.clear(); }
  // Checkpoint cost debit: set by the barrier-root capture, charged to this
  // node's clock (plus stats) when its own barrier release arrives (the
  // first point the node's task runs after the capture). -1 = none pending.
  void set_pending_checkpoint(std::int64_t bytes) {
    pending_ckpt_bytes_ = bytes;
  }
  // Raw state access for checkpoint capture/restore.
  std::size_t mem_bytes() const { return mem_bytes_; }
  std::size_t ntags() const { return ntags_; }
  Access* tags_data() { return tags_.get(); }
  const Access* tags_data() const { return tags_.get(); }

 private:
  struct PendingMsg {
    sim::Message msg;
    sim::Time arrival;
  };
  // FIFO inbox as a power-of-two flat ring (the reliable channel's
  // retained-copy ring pattern): slot for logical index i is i & mask, and
  // steady-state push/pop touches no allocator — std::deque frees and
  // reallocates a block every few messages as the front chases the back.
  class InboxRing {
   public:
    bool empty() const { return head_ == tail_; }
    void clear() { head_ = tail_ = 0; }  // slots are overwritten on reuse
    PendingMsg& front() { return buf_[head_ & (buf_.size() - 1)]; }
    void push_back(PendingMsg&& m) {
      if (tail_ - head_ == buf_.size()) grow();
      buf_[tail_++ & (buf_.size() - 1)] = std::move(m);
    }
    PendingMsg pop_front() { return std::move(buf_[head_++ & (buf_.size() - 1)]); }

   private:
    void grow() {
      std::vector<PendingMsg> bigger(buf_.empty() ? 16 : buf_.size() * 2);
      for (std::uint64_t i = head_; i != tail_; ++i)
        bigger[(i - head_) & (bigger.size() - 1)] =
            std::move(buf_[i & (buf_.size() - 1)]);
      tail_ -= head_;
      head_ = 0;
      buf_ = std::move(bigger);
    }
    std::vector<PendingMsg> buf_;
    std::uint64_t head_ = 0;  // logical index of front
    std::uint64_t tail_ = 0;  // logical index one past back
  };
  void schedule_next_handler(sim::Time earliest);
  void execute_one_handler();

  // Zero-initialized buffer backed by calloc: for multi-megabyte segments
  // the allocator hands back untouched kernel zero pages, so physical
  // memory is committed only where the run actually reads or writes. Every
  // node "backs the whole segment", but a 1024-node cluster must not pay
  // 1024 eager copies of it — the old vector's value-initialization wrote
  // (and thus committed) every byte up front.
  struct FreeDeleter {
    void operator()(void* p) const { std::free(p); }
  };
  template <typename T>
  using ZeroBuf = std::unique_ptr<T[], FreeDeleter>;
  template <typename T>
  static ZeroBuf<T> make_zero_buf(std::size_t n) {
    return ZeroBuf<T>(static_cast<T*>(std::calloc(n ? n : 1, sizeof(T))));
  }

  Cluster& cluster_;
  int id_;
  bool dual_cpu_ = true;
  ZeroBuf<std::byte> mem_;   // contiguous: handlers memcpy via raw mem()
  std::size_t mem_bytes_ = 0;
  ZeroBuf<Access> tags_;     // zero == kInvalid, the non-home default
  std::size_t ntags_ = 0;
  sim::Resource cpu_res_;
  sim::Resource proto_res_;
  sim::Task* task_ = nullptr;
  InboxRing inbox_;
  bool handler_active_ = false;
  bool crashed_ = false;  // fail-stopped; written only from our partition
  std::int64_t pending_ckpt_bytes_ = -1;  // -1 = no checkpoint debit pending
};

}  // namespace fgdsm::tempest
