// Core types of the Tempest-like fine-grain DSM substrate.
//
// The shared segment is a single global byte-addressed space; every node
// backs the whole segment in its own main memory ("software-managed remote
// data in main memory — there is no replacement from this cache", paper
// §4.2 fn. 1). Fine-grain access control attaches one of
// {Invalid, ReadOnly, ReadWrite} to each block (32–128 bytes).
#pragma once

#include <cstdint>

#include "src/sim/time.h"

namespace fgdsm::tempest {

using GAddr = std::uint64_t;    // byte offset into the global shared segment
using BlockId = std::uint64_t;  // GAddr / block_size

// Fine-grain access-control tag for one block on one node.
enum class Access : std::uint8_t { kInvalid = 0, kReadOnly = 1,
                                   kReadWrite = 2 };

inline const char* to_string(Access a) {
  switch (a) {
    case Access::kInvalid: return "invalid";
    case Access::kReadOnly: return "readonly";
    case Access::kReadWrite: return "readwrite";
  }
  return "?";
}

// Active-message types. One flat space so a single dispatch table serves the
// default protocol, the compiler-controlled extensions, the message-passing
// backend and synchronization.
enum class MsgType : std::uint16_t {
  // Default coherence protocol — exactly the messages of the paper's Fig. 1.
  kReadReq = 0,      // 1. reader -> home
  kPutDataReq,       // 2. home -> exclusive owner
  kPutDataResp,      // 3. owner -> home (carries block data)
  kReadResp,         // 4. home -> reader (carries block data)
  kWriteReq,         // 5. writer -> home
  kInval,            // 6. home -> sharer/owner
  kInvalAck,         // 7. sharer -> home (carries dirty words if any)
  kWriteGrant,       // 8. home -> writer

  // Pipelined fetch-exclusive (data + ownership in one transaction), used by
  // the compiler's mk_writable when the HPF owner does not hold a block.
  kFetchExclReq,     // requester -> home
  kFetchExclResp,    // home -> requester (carries block data)

  // Compiler-controlled coherence (the paper's §4.2 contract).
  kDirectData,       // owner -> reader: specially tagged sender-initiated data
  kCccFlush,         // non-owner writer -> owner: flush changes back

  // Message-passing backend.
  kMpData,

  // Inspector–executor runtime (src/irreg): broadcast of one node's needed
  // element intervals for an irregular loop, tagged with the sender's
  // inspection sequence number.
  kIrregNeeds,

  // Synchronization.
  kBarrierArrive,
  kBarrierRelease,
  kReduceUp,
  kReduceDown,

  // Reliable-transport pure ack (chaos mode): consumed by the channel layer,
  // never dispatched to a protocol handler.
  kChannelAck,

  kCount
};

inline const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kReadReq: return "read_req";
    case MsgType::kPutDataReq: return "put_data_req";
    case MsgType::kPutDataResp: return "put_data_resp";
    case MsgType::kReadResp: return "read_resp";
    case MsgType::kWriteReq: return "write_req";
    case MsgType::kInval: return "inval";
    case MsgType::kInvalAck: return "inval_ack";
    case MsgType::kWriteGrant: return "write_grant";
    case MsgType::kFetchExclReq: return "fetch_excl_req";
    case MsgType::kFetchExclResp: return "fetch_excl_resp";
    case MsgType::kDirectData: return "direct_data";
    case MsgType::kCccFlush: return "ccc_flush";
    case MsgType::kMpData: return "mp_data";
    case MsgType::kIrregNeeds: return "irreg_needs";
    case MsgType::kBarrierArrive: return "barrier_arrive";
    case MsgType::kBarrierRelease: return "barrier_release";
    case MsgType::kReduceUp: return "reduce_up";
    case MsgType::kReduceDown: return "reduce_down";
    case MsgType::kChannelAck: return "channel_ack";
    case MsgType::kCount: break;
  }
  return "?";
}

// Virtual clock of an active-message handler while it executes. Handlers are
// run-to-completion user-level code (Tempest's model); their occupancy lands
// on the node's protocol resource (dual-cpu: the dedicated second processor;
// single-cpu: the compute processor itself, delaying computation).
struct HandlerClock {
  sim::Time t = 0;
  void charge(sim::Time d) { t += d; }
};

}  // namespace fgdsm::tempest
