#include "src/tempest/cluster.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "src/sim/trace.h"
#include "src/tempest/protocol.h"
#include "src/util/assert.h"

namespace fgdsm::tempest {

namespace {
std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      net_(engine_, cfg_.costs, cfg.nnodes),
      pools_(static_cast<std::size_t>(cfg.nnodes)) {
  cfg_.validate();
  // One event partition per node, ALWAYS — regardless of sim_threads — so
  // window boundaries, sequence numbers, and merge order are identical at
  // any thread count (the bit-identity contract). The worker count only
  // changes which host thread drains a partition.
  engine_.set_partitions(cfg_.nnodes);
  engine_.set_window_lookahead(net_.min_link_latency());
  // The tracer appends flow spans in drain order; keep that order
  // deterministic by draining single-threaded when tracing. Results are
  // unchanged (thread count never affects them).
  engine_.set_sim_threads(cfg_.tracer != nullptr ? 1 : cfg_.sim_threads);
  if (cfg_.faults.enabled) {
    // Chaos mode: deterministic faults on the wire, reliable channel under
    // every node. Defaults derive from the cost model so the knobs scale
    // with the platform: delay window 8x wire latency, base RTO 20x (well
    // past a round trip plus handler occupancy), pure acks at RTO/4.
    fault_ = std::make_unique<sim::FaultInjector>(
        cfg_.faults, cfg_.nnodes, 8 * cfg_.costs.wire_latency);
    net_.set_fault_injector(fault_.get());
    sim::ChannelConfig ch;
    ch.rto_ns = cfg_.faults.rto_ns > 0 ? cfg_.faults.rto_ns
                                       : 20 * cfg_.costs.wire_latency;
    ch.ack_delay_ns = std::max<sim::Time>(1, ch.rto_ns / 4);
    ch.max_retries = cfg_.faults.max_retries;
    ch.ack_type = static_cast<std::uint16_t>(MsgType::kChannelAck);
    channel_ = std::make_unique<sim::ReliableChannel>(engine_, net_,
                                                      cfg_.nnodes, ch);
    channel_->set_type_namer([](std::uint16_t t) {
      return to_string(static_cast<MsgType>(t));
    });
  }
  std::vector<util::NodeStats*> stat_sinks;
  for (int i = 0; i < cfg_.nnodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
    Node* n = nodes_.back().get();
    stat_sinks.push_back(&n->stats);
    auto sink = [n](sim::Message&& m, sim::Time arrival) {
      n->deliver(std::move(m), arrival);
    };
    if (channel_ != nullptr)
      channel_->attach(i, std::move(sink));
    else
      net_.attach(i, std::move(sink));
  }
  if (fault_ != nullptr) fault_->set_stats(stat_sinks);
  if (channel_ != nullptr) channel_->set_stats(std::move(stat_sinks));
  // Lookahead: a lower bound on how quickly one node's compute task can
  // affect another node — composing a message plus the wire latency.
  engine_.set_lookahead(cfg_.costs.msg_send_overhead +
                        cfg_.costs.wire_latency);
  engine_.set_watchdog(cfg_.watchdog_ns);
  engine_.set_stall_reporter([this] {
    std::string out;
    if (channel_ != nullptr) out += channel_->describe_state();
    for (const auto& n : nodes_) {
      if (n->protocol == nullptr) continue;
      for (const std::string& v : n->protocol->find_violations())
        out += "  node " + std::to_string(n->id()) + ": " + v + "\n";
      break;  // protocols share global state; one node's view suffices
    }
    return out;
  });
  register_builtin_handlers();
}

Cluster::~Cluster() = default;

GAddr Cluster::allocate(const std::string& name, std::size_t bytes) {
  FGDSM_ASSERT_MSG(!ran_, "allocate after run");
  const GAddr addr = round_up(segment_bytes_, cfg_.page_size);
  regions_.emplace_back(name, addr);
  segment_bytes_ = addr + round_up(bytes, cfg_.page_size);
  return addr;
}

std::size_t Cluster::num_blocks() const {
  return (segment_bytes_ + cfg_.block_size - 1) / cfg_.block_size;
}

void Cluster::register_handler(MsgType t, Handler h) {
  handlers_[static_cast<std::size_t>(t)] = std::move(h);
}

const Cluster::Handler& Cluster::handler(MsgType t) const {
  const Handler& h = handlers_[static_cast<std::size_t>(t)];
  FGDSM_ASSERT_MSG(h, "no handler registered for message type "
                          << static_cast<int>(t));
  return h;
}

int Cluster::resolve_group(int nnodes, int group) {
  if (group > 0) return group;
  int g = 1;
  while (g * g < nnodes) ++g;  // ceil(sqrt(n)) balances the two levels
  return g;
}

int Cluster::collective_parent(Collectives topo, int node, int nnodes,
                               int group) {
  FGDSM_ASSERT(node > 0 && node < nnodes);
  switch (topo) {
    case Collectives::kFlat:
      return 0;
    case Collectives::kBinary:
      return (node - 1) / 2;
    case Collectives::kBinomial:
      return node & (node - 1);  // clear the lowest set bit
    case Collectives::kTwoLevel: {
      const int g = resolve_group(nnodes, group);
      const int leader = node / g * g;
      return node == leader ? 0 : leader;
    }
  }
  return 0;
}

std::vector<int> Cluster::collective_children(Collectives topo, int node,
                                              int nnodes, int group) {
  // Children are always produced in ascending node order: the fan-out loops
  // below send in list order, and ascending order is part of the
  // bit-identity contract (it matches the historical binary fan-out).
  std::vector<int> out;
  switch (topo) {
    case Collectives::kFlat:
      if (node == 0)
        for (int i = 1; i < nnodes; ++i) out.push_back(i);
      break;
    case Collectives::kBinary:
      if (2 * node + 1 < nnodes) out.push_back(2 * node + 1);
      if (2 * node + 2 < nnodes) out.push_back(2 * node + 2);
      break;
    case Collectives::kBinomial: {
      // Node i's children are i | (1<<k) for each bit k below i's lowest
      // set bit (all powers of two for the root). Ascending in k.
      const int low = node == 0 ? nnodes : node & -node;
      for (int bit = 1; bit < low; bit <<= 1) {
        const int c = node | bit;
        if (c >= nnodes) break;  // children only grow with k
        out.push_back(c);
      }
      break;
    }
    case Collectives::kTwoLevel: {
      const int g = resolve_group(nnodes, group);
      if (node % g == 0) {
        // Leader: the members of its group...
        for (int c = node + 1; c < std::min(node + g, nnodes); ++c)
          out.push_back(c);
        // ...and, for the root, every other leader. Members of group 0 all
        // precede the first leader, so the list stays ascending.
        if (node == 0)
          for (int c = g; c < nnodes; c += g) out.push_back(c);
      }
      break;
    }
  }
  return out;
}

int Cluster::collective_depth(Collectives topo, int nnodes, int group) {
  if (nnodes <= 1) return 0;
  switch (topo) {
    case Collectives::kFlat:
      return 1;
    case Collectives::kBinary: {
      int d = 0;
      for (int span = 1; span < nnodes; span = 2 * span + 1) ++d;
      return d;
    }
    case Collectives::kBinomial: {
      // Node i sits popcount(i) hops below the root.
      int d = 0;
      for (int i = 1; i < nnodes; ++i)
        d = std::max(d, std::popcount(static_cast<unsigned>(i)));
      return d;
    }
    case Collectives::kTwoLevel:
      return resolve_group(nnodes, group) >= nnodes ? 1 : 2;
  }
  return 1;
}

double Cluster::reduce_identity(int op) {
  switch (static_cast<Node::ReduceOp>(op)) {
    case Node::ReduceOp::kSum: return 0.0;
    case Node::ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    case Node::ReduceOp::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double Cluster::reduce_combine(int op, double a, double b) {
  switch (static_cast<Node::ReduceOp>(op)) {
    case Node::ReduceOp::kSum: return a + b;
    case Node::ReduceOp::kMax: return std::max(a, b);
    case Node::ReduceOp::kMin: return std::min(a, b);
  }
  return a;
}

void Cluster::tree_barrier_step(int node, sim::Time t, const SendFn& send) {
  if (tree_self_arrived[static_cast<std::size_t>(node)] == 0 ||
      tree_arrived[static_cast<std::size_t>(node)] != tree_nchildren(node))
    return;
  // Subtree complete: reset for the next round, then combine upward (or
  // release downward at the root).
  tree_self_arrived[static_cast<std::size_t>(node)] = 0;
  tree_arrived[static_cast<std::size_t>(node)] = 0;
  if (node == 0) {
    // Barrier complete, nothing released yet: all nodes drained and blocked
    // — the globally quiescent point (see the centralized handler).
    if (cfg_.check_coherence && nodes_[0]->protocol != nullptr)
      nodes_[0]->protocol->check_invariants(*nodes_[0]);
    for (int c : tree_children(0)) {
      sim::Message rel;
      rel.dst = c;
      rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
      send(std::move(rel));
    }
    nodes_[0]->barrier_sem.post(t);
  } else {
    sim::Message up;
    up.dst = tree_parent(node);
    up.type = static_cast<std::uint16_t>(MsgType::kBarrierArrive);
    send(std::move(up));
  }
}

void Cluster::tree_reduce_step(int node, sim::Time t, const SendFn& send) {
  if (tree_red_self[static_cast<std::size_t>(node)] == 0 ||
      tree_red_arrived[static_cast<std::size_t>(node)] != tree_nchildren(node))
    return;
  tree_red_self[static_cast<std::size_t>(node)] = 0;
  tree_red_arrived[static_cast<std::size_t>(node)] = 0;
  // Fold in a fixed order — own value first, then children ascending — so
  // the subtree's floating-point result is independent of arrival order
  // (chaos delays reorder kReduceUp messages; results must not move).
  double partial = tree_partial[static_cast<std::size_t>(node)];
  const std::vector<double>& contrib =
      tree_red_contrib[static_cast<std::size_t>(node)];
  for (const double c : contrib)
    partial = reduce_combine(tree_red_op[static_cast<std::size_t>(node)],
                             partial, c);
  if (node == 0) {
    nodes_[0]->reduce_result = partial;
    for (int c : tree_children(0)) {
      sim::Message down;
      down.dst = c;
      down.type = static_cast<std::uint16_t>(MsgType::kReduceDown);
      down.arg[0] = std::bit_cast<std::int64_t>(partial);
      send(std::move(down));
    }
    nodes_[0]->reduce_sem.post(t);
  } else {
    sim::Message up;
    up.dst = tree_parent(node);
    up.type = static_cast<std::uint16_t>(MsgType::kReduceUp);
    up.arg[0] = std::bit_cast<std::int64_t>(partial);
    up.arg[1] = tree_red_op[static_cast<std::size_t>(node)];
    send(std::move(up));
  }
}

void Cluster::register_builtin_handlers() {
  if (cfg_.collectives != Collectives::kFlat) {
    register_tree_handlers();
    return;
  }
  // Centralized barrier: node 0 counts arrivals and broadcasts the release.
  // The linear broadcast occupies node 0's protocol processor and transmit
  // path serially — barrier cost grows with cluster size, as on the real
  // platform.
  register_handler(
      MsgType::kBarrierArrive,
      [this](Node& self, sim::Message&, HandlerClock& clk) {
        FGDSM_ASSERT(self.id() == 0);
        if (++barrier_state.arrived == cfg_.nnodes) {
          // Every node has drained its transactions and is blocked waiting
          // for release: the one globally quiescent, race-free point where
          // the protocol's invariants can be checked.
          if (cfg_.check_coherence && self.protocol != nullptr)
            self.protocol->check_invariants(self);
          barrier_state.arrived = 0;
          for (int i = 0; i < cfg_.nnodes; ++i) {
            sim::Message rel;
            rel.dst = i;
            rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
            self.send_from_handler(clk, std::move(rel));
          }
        }
      });
  register_handler(MsgType::kBarrierRelease,
                   [](Node& self, sim::Message&, HandlerClock& clk) {
                     self.barrier_sem.post(clk.t);
                   });

  register_handler(
      MsgType::kReduceUp,
      [this](Node& self, sim::Message& m, HandlerClock& clk) {
        FGDSM_ASSERT(self.id() == 0);
        const double v = std::bit_cast<double>(m.arg[0]);
        const int op = static_cast<int>(m.arg[1]);
        if (reduce_state.arrived == 0) {
          reduce_state.op = op;
          reduce_state.contrib.assign(
              static_cast<std::size_t>(cfg_.nnodes), 0.0);
        } else {
          FGDSM_ASSERT_MSG(reduce_state.op == op,
                           "mismatched reduction ops across nodes");
        }
        reduce_state.contrib[static_cast<std::size_t>(m.src)] = v;
        if (++reduce_state.arrived == cfg_.nnodes) {
          reduce_state.arrived = 0;
          double acc = reduce_state.contrib[0];
          for (int i = 1; i < cfg_.nnodes; ++i) {
            const double c = reduce_state.contrib[static_cast<std::size_t>(i)];
            switch (static_cast<Node::ReduceOp>(op)) {
              case Node::ReduceOp::kSum: acc += c; break;
              case Node::ReduceOp::kMax: acc = std::max(acc, c); break;
              case Node::ReduceOp::kMin: acc = std::min(acc, c); break;
            }
          }
          for (int i = 0; i < cfg_.nnodes; ++i) {
            sim::Message down;
            down.dst = i;
            down.type = static_cast<std::uint16_t>(MsgType::kReduceDown);
            down.arg[0] = std::bit_cast<std::int64_t>(acc);
            self.send_from_handler(clk, std::move(down));
          }
        }
      });
  register_handler(MsgType::kReduceDown,
                   [](Node& self, sim::Message& m, HandlerClock& clk) {
                     self.reduce_result = std::bit_cast<double>(m.arg[0]);
                     self.reduce_sem.post(clk.t);
                   });
}

void Cluster::register_tree_handlers() {
  // Precompute the configured shape once; the steps and handlers below are
  // topology-agnostic table walks.
  const std::size_t n = static_cast<std::size_t>(cfg_.nnodes);
  tree_parent_.assign(n, 0);
  tree_children_.assign(n, {});
  for (int i = 0; i < cfg_.nnodes; ++i) {
    if (i > 0)
      tree_parent_[static_cast<std::size_t>(i)] = collective_parent(
          cfg_.collectives, i, cfg_.nnodes, cfg_.collective_group);
    tree_children_[static_cast<std::size_t>(i)] = collective_children(
        cfg_.collectives, i, cfg_.nnodes, cfg_.collective_group);
  }
  tree_arrived.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_self_arrived.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_partial.assign(static_cast<std::size_t>(cfg_.nnodes), 0.0);
  tree_red_contrib.assign(static_cast<std::size_t>(cfg_.nnodes), {});
  for (int i = 0; i < cfg_.nnodes; ++i)
    tree_red_contrib[static_cast<std::size_t>(i)].resize(
        tree_children_[static_cast<std::size_t>(i)].size(), 0.0);
  tree_red_arrived.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_red_self.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_red_op.assign(static_cast<std::size_t>(cfg_.nnodes), 0);

  register_handler(MsgType::kBarrierArrive,
                   [this](Node& self, sim::Message&, HandlerClock& clk) {
                     ++tree_arrived[static_cast<std::size_t>(self.id())];
                     tree_barrier_step(self.id(), clk.t,
                                       [&](sim::Message m) {
                                         self.send_from_handler(clk,
                                                                std::move(m));
                                       });
                   });
  register_handler(
      MsgType::kBarrierRelease,
      [this](Node& self, sim::Message&, HandlerClock& clk) {
        // Forward down the tree, then release the local task.
        for (int c : tree_children(self.id())) {
          sim::Message rel;
          rel.dst = c;
          rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
          self.send_from_handler(clk, std::move(rel));
        }
        self.barrier_sem.post(clk.t);
      });
  register_handler(
      MsgType::kReduceUp,
      [this](Node& self, sim::Message& m, HandlerClock& clk) {
        const std::size_t id = static_cast<std::size_t>(self.id());
        tree_red_op[id] = static_cast<int>(m.arg[1]);
        // Buffer the child's value in its slot; the fold happens in
        // tree_reduce_step once the subtree is complete, in child order.
        const std::vector<int>& kids = tree_children(self.id());
        std::size_t slot = 0;
        while (slot < kids.size() && kids[slot] != m.src) ++slot;
        FGDSM_ASSERT_MSG(slot < kids.size(),
                         "kReduceUp from a non-child node");
        tree_red_contrib[id][slot] = std::bit_cast<double>(m.arg[0]);
        ++tree_red_arrived[id];
        tree_reduce_step(self.id(), clk.t, [&](sim::Message msg) {
          self.send_from_handler(clk, std::move(msg));
        });
      });
  register_handler(
      MsgType::kReduceDown,
      [this](Node& self, sim::Message& m, HandlerClock& clk) {
        for (int c : tree_children(self.id())) {
          sim::Message down;
          down.dst = c;
          down.type = static_cast<std::uint16_t>(MsgType::kReduceDown);
          down.arg[0] = m.arg[0];
          self.send_from_handler(clk, std::move(down));
        }
        self.reduce_result = std::bit_cast<double>(m.arg[0]);
        self.reduce_sem.post(clk.t);
      });
}

util::RunStats Cluster::run(
    const std::function<void(Node&, sim::Task&)>& program) {
  FGDSM_ASSERT_MSG(!ran_, "Cluster::run is one-shot");
  ran_ = true;
  const std::size_t seg = std::max<std::size_t>(segment_bytes_, cfg_.page_size);
  for (auto& n : nodes_)
    n->finalize_memory(seg, num_blocks(), cfg_.dual_cpu);

  if (sim::Tracer* tr = cfg_.tracer) {
    for (int i = 0; i < cfg_.nnodes; ++i) {
      tr->set_track_name(sim::Tracer::compute_track(i),
                         "node " + std::to_string(i) + " compute");
      tr->set_track_name(sim::Tracer::protocol_track(i),
                         "node " + std::to_string(i) + " protocol");
    }
  }

  std::vector<std::unique_ptr<sim::Task>> tasks;
  tasks.reserve(nodes_.size());
  for (int i = 0; i < cfg_.nnodes; ++i) {
    Node* n = nodes_[static_cast<std::size_t>(i)].get();
    tasks.push_back(std::make_unique<sim::Task>(
        engine_, "node" + std::to_string(i),
        [n, &program](sim::Task& t) { program(*n, t); }));
    sim::Task* t = tasks.back().get();
    t->set_partition(i);  // node i's compute task lives in partition i
    t->set_cpu(&n->cpu_res());
    t->set_node_id(i);
    t->set_steal_counter(&n->stats.handler_steal_ns);
    n->bind_task(t);
    t->start(0);
  }
  engine_.run();

  util::RunStats rs(cfg_.nnodes);
  rs.elapsed_ns = 0;
  for (int i = 0; i < cfg_.nnodes; ++i) {
    rs.node[static_cast<std::size_t>(i)] = nodes_[static_cast<std::size_t>(i)]->stats;
    rs.elapsed_ns = std::max(rs.elapsed_ns, tasks[static_cast<std::size_t>(i)]->now());
    nodes_[static_cast<std::size_t>(i)]->bind_task(nullptr);
  }
  return rs;
}

}  // namespace fgdsm::tempest
