#include "src/tempest/cluster.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/sim/trace.h"
#include "src/tempest/protocol.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace fgdsm::tempest {

namespace {
std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      net_(engine_, cfg_.costs, cfg.nnodes),
      pools_(static_cast<std::size_t>(cfg.nnodes)) {
  cfg_.validate();
  // One event partition per node, ALWAYS — regardless of sim_threads — so
  // window boundaries, sequence numbers, and merge order are identical at
  // any thread count (the bit-identity contract). The worker count only
  // changes which host thread drains a partition.
  engine_.set_partitions(cfg_.nnodes);
  engine_.set_window_lookahead(net_.min_link_latency());
  // The tracer appends flow spans in drain order; keep that order
  // deterministic by draining single-threaded when tracing. Results are
  // unchanged (thread count never affects them).
  engine_.set_sim_threads(cfg_.tracer != nullptr ? 1 : cfg_.sim_threads);
  if (cfg_.faults.enabled) {
    // Chaos mode: deterministic faults on the wire, reliable channel under
    // every node. Defaults derive from the cost model so the knobs scale
    // with the platform: delay window 8x wire latency, base RTO 20x (well
    // past a round trip plus handler occupancy), pure acks at RTO/4.
    fault_ = std::make_unique<sim::FaultInjector>(
        cfg_.faults, cfg_.nnodes, 8 * cfg_.costs.wire_latency);
    net_.set_fault_injector(fault_.get());
    sim::ChannelConfig ch;
    ch.rto_ns = cfg_.faults.rto_ns > 0 ? cfg_.faults.rto_ns
                                       : 20 * cfg_.costs.wire_latency;
    ch.ack_delay_ns = std::max<sim::Time>(1, ch.rto_ns / 4);
    ch.max_retries = cfg_.faults.max_retries;
    ch.ack_type = static_cast<std::uint16_t>(MsgType::kChannelAck);
    channel_ = std::make_unique<sim::ReliableChannel>(engine_, net_,
                                                      cfg_.nnodes, ch);
    channel_->set_type_namer([](std::uint16_t t) {
      return to_string(static_cast<MsgType>(t));
    });
  }
  std::vector<util::NodeStats*> stat_sinks;
  for (int i = 0; i < cfg_.nnodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
    Node* n = nodes_.back().get();
    stat_sinks.push_back(&n->stats);
    auto sink = [this, n](sim::Message&& m, sim::Time arrival) {
      // Timeline filter: a message stamped by a pre-rollback epoch is dead
      // traffic from an abandoned timeline. This matters for loopback
      // self-sends, which bypass the channel's duplicate suppression.
      // Outside crash runs the stamp and the counter are both 0.
      if (m.epoch != recovery_epoch_) return;
      n->deliver(std::move(m), arrival);
    };
    if (channel_ != nullptr)
      channel_->attach(i, std::move(sink));
    else
      net_.attach(i, std::move(sink));
  }
  if (fault_ != nullptr) fault_->set_stats(stat_sinks);
  if (channel_ != nullptr) channel_->set_stats(std::move(stat_sinks));
  if (fault_ != nullptr && cfg_.faults.has_crashes() && cfg_.nnodes > 1) {
    // Fail-stop mode: stamp outbound traffic with the recovery epoch, let
    // the channel observe fail-stopped endpoints (a down node stops acking
    // — the detection signal), and install the rollback hook the engine
    // calls when the cluster stops making progress.
    net_.set_epoch_stamp(&recovery_epoch_);
    channel_->set_down_probe([this](int node) {
      return nodes_[static_cast<std::size_t>(node)]->crashed();
    });
    engine_.set_recovery_hook([this] { return recover(); });
  }
  if (cfg_.checkpoint_every > 0 && cfg_.nnodes > 1)
    engine_.set_window_hook([this] {
      if (!ckpt_request_) return;
      ckpt_request_ = false;
      capture_checkpoint(ckpt_request_t_, /*at_barrier=*/true);
    });
  // Lookahead: a lower bound on how quickly one node's compute task can
  // affect another node — composing a message plus the wire latency.
  engine_.set_lookahead(cfg_.costs.msg_send_overhead +
                        cfg_.costs.wire_latency);
  engine_.set_watchdog(cfg_.watchdog_ns);
  engine_.set_stall_reporter([this] {
    std::string out;
    if (channel_ != nullptr) out += channel_->describe_state();
    for (const auto& n : nodes_) {
      if (n->protocol == nullptr) continue;
      for (const std::string& v : n->protocol->find_violations())
        out += "  node " + std::to_string(n->id()) + ": " + v + "\n";
      break;  // protocols share global state; one node's view suffices
    }
    return out;
  });
  register_builtin_handlers();
}

Cluster::~Cluster() = default;

GAddr Cluster::allocate(const std::string& name, std::size_t bytes) {
  FGDSM_ASSERT_MSG(!ran_, "allocate after run");
  const GAddr addr = round_up(segment_bytes_, cfg_.page_size);
  regions_.emplace_back(name, addr);
  segment_bytes_ = addr + round_up(bytes, cfg_.page_size);
  return addr;
}

std::size_t Cluster::num_blocks() const {
  return (segment_bytes_ + cfg_.block_size - 1) / cfg_.block_size;
}

void Cluster::register_handler(MsgType t, Handler h) {
  handlers_[static_cast<std::size_t>(t)] = std::move(h);
}

const Cluster::Handler& Cluster::handler(MsgType t) const {
  const Handler& h = handlers_[static_cast<std::size_t>(t)];
  FGDSM_ASSERT_MSG(h, "no handler registered for message type "
                          << static_cast<int>(t));
  return h;
}

int Cluster::resolve_group(int nnodes, int group) {
  if (group > 0) return group;
  int g = 1;
  while (g * g < nnodes) ++g;  // ceil(sqrt(n)) balances the two levels
  return g;
}

int Cluster::collective_parent(Collectives topo, int node, int nnodes,
                               int group) {
  FGDSM_ASSERT(node > 0 && node < nnodes);
  switch (topo) {
    case Collectives::kFlat:
      return 0;
    case Collectives::kBinary:
      return (node - 1) / 2;
    case Collectives::kBinomial:
      return node & (node - 1);  // clear the lowest set bit
    case Collectives::kTwoLevel: {
      const int g = resolve_group(nnodes, group);
      const int leader = node / g * g;
      return node == leader ? 0 : leader;
    }
  }
  return 0;
}

std::vector<int> Cluster::collective_children(Collectives topo, int node,
                                              int nnodes, int group) {
  // Children are always produced in ascending node order: the fan-out loops
  // below send in list order, and ascending order is part of the
  // bit-identity contract (it matches the historical binary fan-out).
  std::vector<int> out;
  switch (topo) {
    case Collectives::kFlat:
      if (node == 0)
        for (int i = 1; i < nnodes; ++i) out.push_back(i);
      break;
    case Collectives::kBinary:
      if (2 * node + 1 < nnodes) out.push_back(2 * node + 1);
      if (2 * node + 2 < nnodes) out.push_back(2 * node + 2);
      break;
    case Collectives::kBinomial: {
      // Node i's children are i | (1<<k) for each bit k below i's lowest
      // set bit (all powers of two for the root). Ascending in k.
      const int low = node == 0 ? nnodes : node & -node;
      for (int bit = 1; bit < low; bit <<= 1) {
        const int c = node | bit;
        if (c >= nnodes) break;  // children only grow with k
        out.push_back(c);
      }
      break;
    }
    case Collectives::kTwoLevel: {
      const int g = resolve_group(nnodes, group);
      if (node % g == 0) {
        // Leader: the members of its group...
        for (int c = node + 1; c < std::min(node + g, nnodes); ++c)
          out.push_back(c);
        // ...and, for the root, every other leader. Members of group 0 all
        // precede the first leader, so the list stays ascending.
        if (node == 0)
          for (int c = g; c < nnodes; c += g) out.push_back(c);
      }
      break;
    }
  }
  return out;
}

int Cluster::collective_depth(Collectives topo, int nnodes, int group) {
  if (nnodes <= 1) return 0;
  switch (topo) {
    case Collectives::kFlat:
      return 1;
    case Collectives::kBinary: {
      int d = 0;
      for (int span = 1; span < nnodes; span = 2 * span + 1) ++d;
      return d;
    }
    case Collectives::kBinomial: {
      // Node i sits popcount(i) hops below the root.
      int d = 0;
      for (int i = 1; i < nnodes; ++i)
        d = std::max(d, std::popcount(static_cast<unsigned>(i)));
      return d;
    }
    case Collectives::kTwoLevel:
      return resolve_group(nnodes, group) >= nnodes ? 1 : 2;
  }
  return 1;
}

double Cluster::reduce_identity(int op) {
  switch (static_cast<Node::ReduceOp>(op)) {
    case Node::ReduceOp::kSum: return 0.0;
    case Node::ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    case Node::ReduceOp::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double Cluster::reduce_combine(int op, double a, double b) {
  switch (static_cast<Node::ReduceOp>(op)) {
    case Node::ReduceOp::kSum: return a + b;
    case Node::ReduceOp::kMax: return std::max(a, b);
    case Node::ReduceOp::kMin: return std::min(a, b);
  }
  return a;
}

void Cluster::tree_barrier_step(int node, sim::Time t, const SendFn& send) {
  if (tree_self_arrived[static_cast<std::size_t>(node)] == 0 ||
      tree_arrived[static_cast<std::size_t>(node)] != tree_nchildren(node))
    return;
  // Subtree complete: reset for the next round, then combine upward (or
  // release downward at the root).
  tree_self_arrived[static_cast<std::size_t>(node)] = 0;
  tree_arrived[static_cast<std::size_t>(node)] = 0;
  if (node == 0) {
    // Barrier complete, nothing released yet: all nodes drained and blocked
    // — the globally quiescent point (see the centralized handler).
    if (cfg_.check_coherence && nodes_[0]->protocol != nullptr)
      nodes_[0]->protocol->check_invariants(*nodes_[0]);
    if (on_barrier_complete(t)) return;  // releases deferred past the capture
    for (int c : tree_children(0)) {
      sim::Message rel;
      rel.dst = c;
      rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
      send(std::move(rel));
    }
    nodes_[0]->barrier_sem.post(t);
  } else {
    sim::Message up;
    up.dst = tree_parent(node);
    up.type = static_cast<std::uint16_t>(MsgType::kBarrierArrive);
    send(std::move(up));
  }
}

void Cluster::tree_reduce_step(int node, sim::Time t, const SendFn& send) {
  if (tree_red_self[static_cast<std::size_t>(node)] == 0 ||
      tree_red_arrived[static_cast<std::size_t>(node)] != tree_nchildren(node))
    return;
  tree_red_self[static_cast<std::size_t>(node)] = 0;
  tree_red_arrived[static_cast<std::size_t>(node)] = 0;
  // Fold in a fixed order — own value first, then children ascending — so
  // the subtree's floating-point result is independent of arrival order
  // (chaos delays reorder kReduceUp messages; results must not move).
  double partial = tree_partial[static_cast<std::size_t>(node)];
  const std::vector<double>& contrib =
      tree_red_contrib[static_cast<std::size_t>(node)];
  for (const double c : contrib)
    partial = reduce_combine(tree_red_op[static_cast<std::size_t>(node)],
                             partial, c);
  if (node == 0) {
    nodes_[0]->reduce_result = partial;
    for (int c : tree_children(0)) {
      sim::Message down;
      down.dst = c;
      down.type = static_cast<std::uint16_t>(MsgType::kReduceDown);
      down.arg[0] = std::bit_cast<std::int64_t>(partial);
      send(std::move(down));
    }
    nodes_[0]->reduce_sem.post(t);
  } else {
    sim::Message up;
    up.dst = tree_parent(node);
    up.type = static_cast<std::uint16_t>(MsgType::kReduceUp);
    up.arg[0] = std::bit_cast<std::int64_t>(partial);
    up.arg[1] = tree_red_op[static_cast<std::size_t>(node)];
    send(std::move(up));
  }
}

void Cluster::register_builtin_handlers() {
  if (cfg_.collectives != Collectives::kFlat) {
    register_tree_handlers();
    return;
  }
  // Centralized barrier: node 0 counts arrivals and broadcasts the release.
  // The linear broadcast occupies node 0's protocol processor and transmit
  // path serially — barrier cost grows with cluster size, as on the real
  // platform.
  register_handler(
      MsgType::kBarrierArrive,
      [this](Node& self, sim::Message&, HandlerClock& clk) {
        FGDSM_ASSERT(self.id() == 0);
        if (++barrier_state.arrived == cfg_.nnodes) {
          // Every node has drained its transactions and is blocked waiting
          // for release: the one globally quiescent, race-free point where
          // the protocol's invariants can be checked.
          if (cfg_.check_coherence && self.protocol != nullptr)
            self.protocol->check_invariants(self);
          barrier_state.arrived = 0;
          if (on_barrier_complete(clk.t)) return;  // releases deferred
          for (int i = 0; i < cfg_.nnodes; ++i) {
            sim::Message rel;
            rel.dst = i;
            rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
            self.send_from_handler(clk, std::move(rel));
          }
        }
      });
  register_handler(MsgType::kBarrierRelease,
                   [](Node& self, sim::Message&, HandlerClock& clk) {
                     self.barrier_sem.post(clk.t);
                   });

  register_handler(
      MsgType::kReduceUp,
      [this](Node& self, sim::Message& m, HandlerClock& clk) {
        FGDSM_ASSERT(self.id() == 0);
        const double v = std::bit_cast<double>(m.arg[0]);
        const int op = static_cast<int>(m.arg[1]);
        if (reduce_state.arrived == 0) {
          reduce_state.op = op;
          reduce_state.contrib.assign(
              static_cast<std::size_t>(cfg_.nnodes), 0.0);
        } else {
          FGDSM_ASSERT_MSG(reduce_state.op == op,
                           "mismatched reduction ops across nodes");
        }
        reduce_state.contrib[static_cast<std::size_t>(m.src)] = v;
        if (++reduce_state.arrived == cfg_.nnodes) {
          reduce_state.arrived = 0;
          double acc = reduce_state.contrib[0];
          for (int i = 1; i < cfg_.nnodes; ++i) {
            const double c = reduce_state.contrib[static_cast<std::size_t>(i)];
            switch (static_cast<Node::ReduceOp>(op)) {
              case Node::ReduceOp::kSum: acc += c; break;
              case Node::ReduceOp::kMax: acc = std::max(acc, c); break;
              case Node::ReduceOp::kMin: acc = std::min(acc, c); break;
            }
          }
          for (int i = 0; i < cfg_.nnodes; ++i) {
            sim::Message down;
            down.dst = i;
            down.type = static_cast<std::uint16_t>(MsgType::kReduceDown);
            down.arg[0] = std::bit_cast<std::int64_t>(acc);
            self.send_from_handler(clk, std::move(down));
          }
        }
      });
  register_handler(MsgType::kReduceDown,
                   [](Node& self, sim::Message& m, HandlerClock& clk) {
                     self.reduce_result = std::bit_cast<double>(m.arg[0]);
                     self.reduce_sem.post(clk.t);
                   });
}

void Cluster::register_tree_handlers() {
  // Precompute the configured shape once; the steps and handlers below are
  // topology-agnostic table walks.
  const std::size_t n = static_cast<std::size_t>(cfg_.nnodes);
  tree_parent_.assign(n, 0);
  tree_children_.assign(n, {});
  for (int i = 0; i < cfg_.nnodes; ++i) {
    if (i > 0)
      tree_parent_[static_cast<std::size_t>(i)] = collective_parent(
          cfg_.collectives, i, cfg_.nnodes, cfg_.collective_group);
    tree_children_[static_cast<std::size_t>(i)] = collective_children(
        cfg_.collectives, i, cfg_.nnodes, cfg_.collective_group);
  }
  tree_arrived.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_self_arrived.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_partial.assign(static_cast<std::size_t>(cfg_.nnodes), 0.0);
  tree_red_contrib.assign(static_cast<std::size_t>(cfg_.nnodes), {});
  for (int i = 0; i < cfg_.nnodes; ++i)
    tree_red_contrib[static_cast<std::size_t>(i)].resize(
        tree_children_[static_cast<std::size_t>(i)].size(), 0.0);
  tree_red_arrived.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_red_self.assign(static_cast<std::size_t>(cfg_.nnodes), 0);
  tree_red_op.assign(static_cast<std::size_t>(cfg_.nnodes), 0);

  register_handler(MsgType::kBarrierArrive,
                   [this](Node& self, sim::Message&, HandlerClock& clk) {
                     ++tree_arrived[static_cast<std::size_t>(self.id())];
                     tree_barrier_step(self.id(), clk.t,
                                       [&](sim::Message m) {
                                         self.send_from_handler(clk,
                                                                std::move(m));
                                       });
                   });
  register_handler(
      MsgType::kBarrierRelease,
      [this](Node& self, sim::Message&, HandlerClock& clk) {
        // Forward down the tree, then release the local task.
        for (int c : tree_children(self.id())) {
          sim::Message rel;
          rel.dst = c;
          rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
          self.send_from_handler(clk, std::move(rel));
        }
        self.barrier_sem.post(clk.t);
      });
  register_handler(
      MsgType::kReduceUp,
      [this](Node& self, sim::Message& m, HandlerClock& clk) {
        const std::size_t id = static_cast<std::size_t>(self.id());
        tree_red_op[id] = static_cast<int>(m.arg[1]);
        // Buffer the child's value in its slot; the fold happens in
        // tree_reduce_step once the subtree is complete, in child order.
        const std::vector<int>& kids = tree_children(self.id());
        std::size_t slot = 0;
        while (slot < kids.size() && kids[slot] != m.src) ++slot;
        FGDSM_ASSERT_MSG(slot < kids.size(),
                         "kReduceUp from a non-child node");
        tree_red_contrib[id][slot] = std::bit_cast<double>(m.arg[0]);
        ++tree_red_arrived[id];
        tree_reduce_step(self.id(), clk.t, [&](sim::Message msg) {
          self.send_from_handler(clk, std::move(msg));
        });
      });
  register_handler(
      MsgType::kReduceDown,
      [this](Node& self, sim::Message& m, HandlerClock& clk) {
        for (int c : tree_children(self.id())) {
          sim::Message down;
          down.dst = c;
          down.type = static_cast<std::uint16_t>(MsgType::kReduceDown);
          down.arg[0] = m.arg[0];
          self.send_from_handler(clk, std::move(down));
        }
        self.reduce_result = std::bit_cast<double>(m.arg[0]);
        self.reduce_sem.post(clk.t);
      });
}

// ---- Fail-stop crashes + checkpoint/rollback recovery ----

bool Cluster::on_barrier_complete(sim::Time t) {
  if (cfg_.nnodes <= 1) return false;
  ++barrier_epoch_;
  if (fault_ != nullptr && cfg_.faults.crashp > 0.0) {
    // Per-(seed, node, epoch) counter-mode draws: the verdicts are fixed by
    // the configuration, identical at any --jobs/--sim-threads. The crash
    // lands one window out so the event clears the merge horizon when it
    // crosses partitions.
    for (int i = 0; i < cfg_.nnodes; ++i) {
      if (!fault_->crash_at_barrier(i, barrier_epoch_)) continue;
      Node* np = nodes_[static_cast<std::size_t>(i)].get();
      const sim::Time tc = t + engine_.window_lookahead();
      engine_.schedule_node(i, tc, [np, tc] {
        if (!np->crashed()) np->crash(tc);
      });
    }
  }
  if (cfg_.checkpoint_every <= 0 ||
      barrier_epoch_ % static_cast<std::uint64_t>(cfg_.checkpoint_every) != 0)
    return false;
  // Checkpoint epoch: request the capture — it runs at the engine's window
  // barrier, the only point where every task fiber is host-quiescent (this
  // code runs inside one partition's drain; a late arriver's fiber may
  // still be executing on another worker) — and hold the release fan-out
  // until the window after it, so no node moves past the barrier before
  // the capture sees it. The replayed fan-out is epoch-guarded: should a
  // rollback intervene, the stale release must not fire.
  ckpt_request_ = true;
  ckpt_request_t_ = t;
  const sim::Time tr = t + engine_.window_lookahead();
  engine_.schedule_node(0, tr, [this, tr, e = recovery_epoch_] {
    if (e == recovery_epoch_) finish_barrier_release(tr);
  });
  return true;
}

void Cluster::finish_barrier_release(sim::Time t) {
  Node& root = *nodes_[0];
  // A root that crashed in the deferral window sends nothing; the parked
  // survivors stop the clock, and the engine's drained-queue path hands
  // control to the recovery hook.
  if (root.crashed()) return;
  HandlerClock clk{root.proto_res().acquire(t, 0)};
  if (cfg_.collectives == Collectives::kFlat) {
    for (int i = 0; i < cfg_.nnodes; ++i) {
      sim::Message rel;
      rel.dst = i;
      rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
      root.send_from_handler(clk, std::move(rel));
    }
  } else {
    for (int c : tree_children(0)) {
      sim::Message rel;
      rel.dst = c;
      rel.type = static_cast<std::uint16_t>(MsgType::kBarrierRelease);
      root.send_from_handler(clk, std::move(rel));
    }
    root.barrier_sem.post(clk.t);
  }
  root.proto_res().set_available(clk.t);
}

void Cluster::capture_always(GAddr base, std::size_t bytes) {
  if (bytes == 0) return;
  capture_always_ranges_.emplace_back(base, bytes);
  capture_always_blocks_.clear();  // rebuilt at the next capture
}

void Cluster::capture_checkpoint(sim::Time t, bool at_barrier) {
  const std::size_t bs = cfg_.block_size;
  const std::size_t nb = num_blocks();
  if (capture_always_blocks_.size() != nb) {
    capture_always_blocks_.assign(nb, 0);
    for (const auto& [base, bytes] : capture_always_ranges_) {
      const BlockId last = block_of(base + bytes - 1);
      for (BlockId b = block_of(base); b <= last && b < nb; ++b)
        capture_always_blocks_[b] = 1;
    }
  }
  ckpt_.t = t;
  ckpt_.nodes.assign(static_cast<std::size_t>(cfg_.nnodes), NodeCheckpoint{});
  ckpt_.host_blobs.clear();
  ckpt_.host_blobs.reserve(host_hooks_.size());
  for (const HostStateHook& h : host_hooks_)
    ckpt_.host_blobs.push_back(h.capture ? h.capture() : nullptr);
  for (int i = 0; i < cfg_.nnodes; ++i) {
    Node& n = *nodes_[static_cast<std::size_t>(i)];
    NodeCheckpoint& c = ckpt_.nodes[static_cast<std::size_t>(i)];
    c.tags.assign(n.tags_data(), n.tags_data() + n.ntags());
    // Memory: only blocks this node can legitimately read, or homes (their
    // backing is the directory's ground truth even while invalid locally),
    // plus capture-always ranges — storage outside the protocol's view.
    // Everything else re-faults through the protocol after rollback.
    for (BlockId b = 0; b < nb; ++b)
      if (c.tags[b] != Access::kInvalid || home_of(b) == i ||
          capture_always_blocks_[b] != 0)
        c.blocks.push_back(b);
    c.data.resize(c.blocks.size() * bs);
    for (std::size_t k = 0; k < c.blocks.size(); ++k)
      std::memcpy(c.data.data() + k * bs, n.mem(block_addr(c.blocks[k])), bs);
    c.task = n.task()->snapshot();
    // At a barrier capture the completed barrier's never-resent release is
    // folded in as a count of 1: a restored node resumes inside
    // barrier_sem.wait and proceeds as if the release had just arrived.
    c.barrier_sem = at_barrier ? 1 : n.barrier_sem.count();
    c.reduce_sem = n.reduce_sem.count();
    c.recv_sem = n.recv_sem.count();
    c.drain_sem = n.drain_sem.count();
    c.reduce_result = n.reduce_result;
    c.protocol =
        n.protocol != nullptr ? n.protocol->capture_snapshot(n) : nullptr;
    c.bytes = static_cast<std::int64_t>(
        c.data.size() + c.tags.size() * sizeof(Access) + c.task.bytes());
    n.stats.checkpoints += 1;
    n.stats.checkpoint_bytes += static_cast<std::uint64_t>(c.bytes);
    // The serialization charge lands when this node's release arrives —
    // the first point its task runs after the capture. (The initial t=0
    // capture is free: it models the job's pristine on-disk image.)
    if (at_barrier) n.set_pending_checkpoint(c.bytes);
  }
  ckpt_.valid = true;
  FGDSM_LOG("ckpt", "checkpoint @" << t << " barrier_epoch="
                                   << barrier_epoch_);
}

bool Cluster::recover() {
  int dead = -1;
  for (int i = 0; i < cfg_.nnodes; ++i)
    if (nodes_[static_cast<std::size_t>(i)]->crashed()) {
      dead = i;
      break;
    }
  if (dead < 0) return false;  // a genuine stall/deadlock, not a crash
  if (!ckpt_.valid) {
    std::ostringstream os;
    os << "node " << dead
       << " crashed with no checkpoint to roll back to "
          "(run with --checkpoint-every=K to enable recovery)\n"
       << engine_.describe_blocked_tasks();
    throw sim::CrashError(os.str());
  }
  // Coordinated rollback-restart. Resume strictly after every partition's
  // committed time (events must not land in the past), plus the fixed
  // coordination cost of the restart itself.
  const sim::Time t_rec = engine_.max_partition_now() + cfg_.costs.ckpt_base_ns;
  ++recovery_epoch_;  // everything stamped before this instant is now dead
  if (channel_ != nullptr) channel_->reset_for_recovery();
  const std::size_t bs = cfg_.block_size;
  for (int i = 0; i < cfg_.nnodes; ++i) {
    Node& n = *nodes_[static_cast<std::size_t>(i)];
    const NodeCheckpoint& c = ckpt_.nodes[static_cast<std::size_t>(i)];
    n.reincarnate();
    n.clear_inbox();  // survivors too: queued handlers are dead-timeline work
    std::copy(c.tags.begin(), c.tags.end(), n.tags_data());
    for (std::size_t k = 0; k < c.blocks.size(); ++k)
      std::memcpy(n.mem(block_addr(c.blocks[k])), c.data.data() + k * bs, bs);
    n.barrier_sem.restore_for_recovery(c.barrier_sem);
    n.reduce_sem.restore_for_recovery(c.reduce_sem);
    n.recv_sem.restore_for_recovery(c.recv_sem);
    n.drain_sem.restore_for_recovery(c.drain_sem);
    n.reduce_result = c.reduce_result;
    if (n.protocol != nullptr) n.protocol->restore_snapshot(n, c.protocol);
    n.set_pending_checkpoint(-1);
    n.task()->restore(c.task, t_rec);
    // Stats deliberately NOT rolled back: re-executed work is real simulated
    // work, and the bit-identity gate covers results, not effort counters.
    n.stats.recoveries += 1;
    n.stats.rollback_ns += static_cast<std::int64_t>(t_rec - ckpt_.t);
  }
  // Coordinator collective books restart from scratch; partial arrivals
  // belong to the abandoned timeline.
  barrier_state.arrived = 0;
  reduce_state.arrived = 0;
  std::fill(tree_arrived.begin(), tree_arrived.end(), 0);
  std::fill(tree_self_arrived.begin(), tree_self_arrived.end(), 0);
  std::fill(tree_red_arrived.begin(), tree_red_arrived.end(), 0);
  std::fill(tree_red_self.begin(), tree_red_self.end(), 0);
  ckpt_request_ = false;  // any capture requested on the dead timeline
  for (std::size_t h = 0; h < host_hooks_.size(); ++h)
    if (host_hooks_[h].restore) host_hooks_[h].restore(ckpt_.host_blobs[h]);
  if (sim::Tracer* tr = cfg_.tracer)
    tr->span(sim::Tracer::compute_track(dead), "recovery", "rollback",
             ckpt_.t, t_rec);
  FGDSM_LOG("ckpt", "rollback: node " << dead << " crashed; restored @"
                                      << ckpt_.t << ", resuming @" << t_rec);
  return true;
}

util::RunStats Cluster::run(
    const std::function<void(Node&, sim::Task&)>& program) {
  FGDSM_ASSERT_MSG(!ran_, "Cluster::run is one-shot");
  ran_ = true;
  const std::size_t seg = std::max<std::size_t>(segment_bytes_, cfg_.page_size);
  for (auto& n : nodes_)
    n->finalize_memory(seg, num_blocks(), cfg_.dual_cpu);

  if (sim::Tracer* tr = cfg_.tracer) {
    for (int i = 0; i < cfg_.nnodes; ++i) {
      tr->set_track_name(sim::Tracer::compute_track(i),
                         "node " + std::to_string(i) + " compute");
      tr->set_track_name(sim::Tracer::protocol_track(i),
                         "node " + std::to_string(i) + " protocol");
    }
  }

  tasks_.reserve(nodes_.size());
  for (int i = 0; i < cfg_.nnodes; ++i) {
    Node* n = nodes_[static_cast<std::size_t>(i)].get();
    tasks_.push_back(std::make_unique<sim::Task>(
        engine_, "node" + std::to_string(i),
        [n, &program](sim::Task& t) { program(*n, t); }));
    sim::Task* t = tasks_.back().get();
    t->set_partition(i);  // node i's compute task lives in partition i
    t->set_cpu(&n->cpu_res());
    t->set_node_id(i);
    t->set_steal_counter(&n->stats.handler_steal_ns);
    n->bind_task(t);
    t->start(0);
  }
  // Explicit fail-stop schedules (--faults=crash=N@T). Single-node runs
  // have no peers to detect or recover a crash, so injection is skipped
  // there (matching run_single, which has no recovery hooks); out-of-range
  // nodes are tolerated so one fault spec can serve several cluster sizes.
  if (fault_ != nullptr && cfg_.nnodes > 1) {
    for (const std::pair<int, sim::Time>& cr : cfg_.faults.crashes) {
      const int nd = cr.first;
      if (nd < 0 || nd >= cfg_.nnodes) continue;
      Node* np = nodes_[static_cast<std::size_t>(nd)].get();
      const sim::Time tc = cr.second;
      engine_.schedule_node(nd, tc, [np, tc] {
        if (!np->crashed()) np->crash(tc);
      });
    }
  }
  // Initial checkpoint: a crash before the first checkpointed barrier must
  // still be recoverable. Capture the pristine post-layout state at t=0 —
  // tasks are created but not yet activated, and a kReady snapshot restores
  // through the first-activation path.
  if (cfg_.checkpoint_every > 0 && cfg_.nnodes > 1)
    capture_checkpoint(0, /*at_barrier=*/false);
  engine_.run();

  util::RunStats rs(cfg_.nnodes);
  rs.elapsed_ns = 0;
  for (int i = 0; i < cfg_.nnodes; ++i) {
    rs.node[static_cast<std::size_t>(i)] = nodes_[static_cast<std::size_t>(i)]->stats;
    rs.elapsed_ns = std::max(rs.elapsed_ns, tasks_[static_cast<std::size_t>(i)]->now());
    nodes_[static_cast<std::size_t>(i)]->bind_task(nullptr);
  }
  return rs;
}

}  // namespace fgdsm::tempest
