// Cluster configuration — the experimental platform knobs of the paper's
// Section 5 (Table 1) plus block/page geometry.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {
class Tracer;
}

namespace fgdsm::tempest {

// Hard ceiling on --nodes. Everything downstream (partition counts, sharer
// sets, link keys) is sized/verified for this range; values beyond it are
// rejected up front with a clear error instead of risking silent overflow.
inline constexpr int kMaxNodes = 65536;

// Barrier/reduction topology.
//   kFlat     — the platform's centralized coordinator: node 0 counts
//               arrivals and linearly broadcasts releases (the paper's
//               8-node cluster behavior; cost grows O(nodes)).
//   kBinary   — binary tree rooted at 0 (parent (i-1)/2, children
//               {2i+1, 2i+2}). This is the shape the old ablation actually
//               implemented while its comments claimed "binomial".
//   kBinomial — true binomial tree rooted at 0 (parent clears the lowest
//               set bit: i & (i-1); node i's children are i | (1<<k) for
//               each bit k below i's lowest set bit — for the root, every
//               power of two below nnodes).
//   kTwoLevel — groups of G: members report to their group leader
//               (i / G * G), leaders report to node 0. G defaults to
//               ceil(sqrt(nodes)) which balances the two levels.
enum class Collectives { kFlat = 0, kBinary, kBinomial, kTwoLevel };

inline const char* to_string(Collectives c) {
  switch (c) {
    case Collectives::kFlat: return "flat";
    case Collectives::kBinary: return "binary";
    case Collectives::kBinomial: return "binomial";
    case Collectives::kTwoLevel: return "twolevel";
  }
  return "?";
}

// Parses "flat" | "binary" | "binomial" | "twolevel[:G]" (e.g.
// "twolevel:16"). Returns false on an unrecognized name or malformed group.
inline bool parse_collectives(const std::string& s, Collectives* out,
                              int* group) {
  std::string name = s;
  if (auto colon = s.find(':'); colon != std::string::npos) {
    name = s.substr(0, colon);
    const std::string g = s.substr(colon + 1);
    if (g.empty() || g.find_first_not_of("0123456789") != std::string::npos)
      return false;
    *group = std::stoi(g);
  }
  if (name == "flat") *out = Collectives::kFlat;
  else if (name == "binary") *out = Collectives::kBinary;
  else if (name == "binomial") *out = Collectives::kBinomial;
  else if (name == "twolevel") *out = Collectives::kTwoLevel;
  else return false;
  return true;
}

// Default virtual-time stall watchdog budget for chaos runs. The historical
// 2e9 ns default was calibrated on the paper's 8-node cluster; larger
// clusters legitimately take longer between progress ticks — the flat
// release broadcast serializes O(nodes) sends through node 0, while tree
// topologies only deepen the critical path O(log nodes) — so the default
// scales with both node count and collective depth to keep healthy runs from
// false-tripping exit 86.
inline sim::Time default_watchdog_ns(int nnodes, Collectives topo) {
  constexpr sim::Time kBase = 2'000'000'000;  // the 8-node calibration
  if (nnodes <= 8) return kBase;
  const sim::Time ratio = (static_cast<sim::Time>(nnodes) + 7) / 8;
  if (topo == Collectives::kFlat) return kBase * ratio;
  // Tree-shaped: depth (and retransmission pile-ups behind it) grows with
  // log2 of the fan-in ratio, not linearly.
  sim::Time depth = 1;
  while ((sim::Time{1} << depth) < ratio) ++depth;
  return kBase * (1 + depth);
}

struct ClusterConfig {
  int nnodes = 8;            // the paper's 8-node SS20 cluster
  std::size_t block_size = 128;   // Tempest fine-grain unit (32–128 bytes)
  std::size_t page_size = 4096;   // home assignment granularity
  bool dual_cpu = true;      // dedicated protocol processor vs interleaved
  // Collectives topology (see enum above). kFlat reproduces the paper's
  // platform; the tree shapes are the scaling ablation.
  Collectives collectives = Collectives::kFlat;
  // Two-level group size G; 0 = auto (ceil(sqrt(nnodes))). Ignored by the
  // other topologies.
  int collective_group = 0;
  // Run the protocol's coherence-invariant checker at each global barrier
  // (debug aid; adds host-time cost but charges no virtual time).
  bool check_coherence = false;
  // Optional event tracer (not owned; null = tracing off). The tracer is
  // passive — it records spans/flows but never charges virtual time.
  sim::Tracer* tracer = nullptr;
  // Chaos mode (--faults=...): with faults.enabled the cluster interposes a
  // deterministic FaultInjector on the wire and layers the reliable channel
  // under every node. Disabled (the default) leaves the original direct
  // network path — zero overhead, bit-identical behavior.
  sim::FaultConfig faults;
  // Progress watchdog (--watchdog-ns=N): fail with sim::StallError if no
  // compute task advances for N virtual ns while work remains. 0 = off.
  sim::Time watchdog_ns = 0;
  // Checkpoint interval in barriers (--checkpoint-every=K): at every K-th
  // completed global barrier each node serializes its owned pages, tags,
  // protocol directory and runtime state into the in-sim checkpoint store
  // (bytes/time charged via CostModel::ckpt_*). 0 disables checkpointing —
  // a crash then raises sim::CrashError instead of recovering.
  int checkpoint_every = 0;
  // Worker threads for the engine's conservative synchronous-window
  // parallel mode (--sim-threads=N). Bit-identical results at any value —
  // the engine always partitions per node and only the draining thread
  // assignment changes; the effective count is further clamped by the
  // process-wide sim::HostBudget. 1 = drain all partitions on the caller.
  int sim_threads = 1;
  sim::CostModel costs;

  void validate() const {
    FGDSM_ASSERT(nnodes >= 1);
    FGDSM_ASSERT_MSG(nnodes <= kMaxNodes,
                     "--nodes=" << nnodes << " exceeds the supported maximum "
                                << kMaxNodes
                                << " (index/bitmask arithmetic is only "
                                   "validated up to this size)");
    FGDSM_ASSERT_MSG(collective_group >= 0,
                     "two-level collective group size must be >= 0 (0 = auto)");
    FGDSM_ASSERT_MSG((block_size & (block_size - 1)) == 0 && block_size >= 8,
                     "block size must be a power of two >= 8");
    FGDSM_ASSERT_MSG(page_size % block_size == 0,
                     "page size must be a multiple of block size");
    FGDSM_ASSERT_MSG(checkpoint_every >= 0,
                     "--checkpoint-every must be >= 0 (0 = off)");
  }
};

}  // namespace fgdsm::tempest
