// Cluster configuration — the experimental platform knobs of the paper's
// Section 5 (Table 1) plus block/page geometry.
#pragma once

#include <cstddef>

#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {
class Tracer;
}

namespace fgdsm::tempest {

struct ClusterConfig {
  int nnodes = 8;            // the paper's 8-node SS20 cluster
  std::size_t block_size = 128;   // Tempest fine-grain unit (32–128 bytes)
  std::size_t page_size = 4096;   // home assignment granularity
  bool dual_cpu = true;      // dedicated protocol processor vs interleaved
  // Collectives topology: false = the platform's centralized coordinator
  // (node 0 counts arrivals and linearly broadcasts releases — the paper's
  // cluster); true = binomial-tree barriers/reductions (an ablation for the
  // synchronization-bound applications).
  bool tree_collectives = false;
  // Run the protocol's coherence-invariant checker at each global barrier
  // (debug aid; adds host-time cost but charges no virtual time).
  bool check_coherence = false;
  // Optional event tracer (not owned; null = tracing off). The tracer is
  // passive — it records spans/flows but never charges virtual time.
  sim::Tracer* tracer = nullptr;
  // Chaos mode (--faults=...): with faults.enabled the cluster interposes a
  // deterministic FaultInjector on the wire and layers the reliable channel
  // under every node. Disabled (the default) leaves the original direct
  // network path — zero overhead, bit-identical behavior.
  sim::FaultConfig faults;
  // Progress watchdog (--watchdog-ns=N): fail with sim::StallError if no
  // compute task advances for N virtual ns while work remains. 0 = off.
  sim::Time watchdog_ns = 0;
  // Worker threads for the engine's conservative synchronous-window
  // parallel mode (--sim-threads=N). Bit-identical results at any value —
  // the engine always partitions per node and only the draining thread
  // assignment changes; the effective count is further clamped by the
  // process-wide sim::HostBudget. 1 = drain all partitions on the caller.
  int sim_threads = 1;
  sim::CostModel costs;

  void validate() const {
    FGDSM_ASSERT(nnodes >= 1);
    FGDSM_ASSERT_MSG((block_size & (block_size - 1)) == 0 && block_size >= 8,
                     "block size must be a power of two >= 8");
    FGDSM_ASSERT_MSG(page_size % block_size == 0,
                     "page size must be a multiple of block size");
  }
};

}  // namespace fgdsm::tempest
