#include "src/tempest/node.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "src/sim/trace.h"
#include "src/tempest/cluster.h"
#include "src/tempest/protocol.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace fgdsm::tempest {

namespace {
// "tx <type>" / "h <type>" span labels, interned: the send and dispatch hot
// paths record one of these per message, and building a std::string there
// dominated allocs/event in traced runs.
const char* msg_label(sim::Tracer& tr, const char* prefix, MsgType type) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s %s", prefix, to_string(type));
  return tr.intern(buf);
}
}  // namespace

Node::Node(Cluster& cluster, int id) : cluster_(cluster), id_(id) {
  barrier_sem.set_name("barrier");
  reduce_sem.set_name("allreduce");
  recv_sem.set_name("ready_to_recv");
  drain_sem.set_name("drain");
}

void Node::finalize_memory(std::size_t segment_bytes, std::size_t nblocks,
                           bool dual_cpu) {
  dual_cpu_ = dual_cpu;
  mem_ = make_zero_buf<std::byte>(segment_bytes);
  mem_bytes_ = segment_bytes;
  tags_ = make_zero_buf<Access>(nblocks);
  ntags_ = nblocks;
  FGDSM_ASSERT(segment_bytes == 0 || mem_ != nullptr);
  FGDSM_ASSERT(nblocks == 0 || tags_ != nullptr);
  // Bootstrap state: the home node of a block holds it writable (its backing
  // store *is* the block's home storage); everyone else starts Invalid. The
  // directory starts Idle, matching this. calloc-zeroed tags are already
  // kInvalid, so only the home-owned runs are written — one page in nnodes
  // of the tag array is ever touched here, keeping per-node startup cost
  // O(segment / nnodes) rather than O(segment).
  static_assert(static_cast<std::uint8_t>(Access::kInvalid) == 0,
                "zero-filled tags must read as kInvalid");
  const std::size_t blocks_per_page =
      cluster_.config().page_size / cluster_.config().block_size;
  const std::size_t nnodes = static_cast<std::size_t>(cluster_.nnodes());
  for (std::size_t page = static_cast<std::size_t>(id_);
       page * blocks_per_page < nblocks; page += nnodes) {
    const BlockId first = page * blocks_per_page;
    const BlockId last = std::min<BlockId>(first + blocks_per_page, nblocks);
    for (BlockId b = first; b < last; ++b) tags_[b] = Access::kReadWrite;
  }
}

void Node::bind_task(sim::Task* t) { task_ = t; }

std::byte* Node::mem(GAddr a) {
  FGDSM_DCHECK(a < mem_bytes_);
  return mem_.get() + a;
}

const std::byte* Node::mem(GAddr a) const {
  FGDSM_DCHECK(a < mem_bytes_);
  return mem_.get() + a;
}

std::size_t Node::resident_mem_bytes() const {
#if defined(__linux__)
  if (mem_bytes_ == 0) return 0;
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(mem_.get());
  const std::uintptr_t lo = (base + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (base + mem_bytes_) & ~(page - 1);
  if (hi <= lo) return 0;
  std::vector<unsigned char> incore((hi - lo) / page);
  if (mincore(reinterpret_cast<void*>(lo), hi - lo, incore.data()) != 0)
    return 0;
  std::size_t resident = 0;
  for (unsigned char v : incore)
    if (v & 1) resident += page;
  return resident;
#else
  return 0;
#endif
}

// Both ensure_* routines loop until one *yield-free* pass over the footprint
// observes every tag in the required state. Fault handling can yield to the
// engine (miss stalls, pipelined sends), and a concurrent invalidation may
// revoke an earlier block while a later one is being fetched — or even
// revoke the very block whose upgrade was just issued, at the same virtual
// instant. The caller's subsequent stores + note_writes run with no further
// yields, so after the final clean pass the whole check/store/mark sequence
// is atomic with respect to message handlers.
void Node::ensure_readable(sim::Task& task, GAddr addr, std::size_t len) {
  if (len == 0) return;
  const BlockId first = cluster_.block_of(addr);
  const BlockId last = cluster_.block_of(addr + len - 1);
  for (;;) {
    task.sync();  // observe every message handler due by now
    BlockId faulting = 0;
    bool clean = true;
    for (BlockId b = first; b <= last; ++b) {
      if (tags_[b] == Access::kInvalid) {
        faulting = b;
        clean = false;
        break;
      }
    }
    if (clean) return;
    FGDSM_ASSERT_MSG(protocol != nullptr,
                     "read fault with no protocol installed (node "
                         << id_ << ", block " << faulting << ")");
    ++stats.read_misses;
    FGDSM_LOG("fault", "rd node=" << id_ << " blk=" << faulting << " t="
                                  << task.now());
    const sim::Time t0 = task.now();
    protocol->on_read_fault(*this, task, faulting);
    stats.miss_ns += task.now() - t0;
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(id_), "miss", "rd miss", t0,
               task.now());
  }
}

void Node::ensure_writable(sim::Task& task, GAddr addr, std::size_t len) {
  if (len == 0) return;
  const BlockId first = cluster_.block_of(addr);
  const BlockId last = cluster_.block_of(addr + len - 1);
  for (;;) {
    task.sync();
    BlockId faulting = 0;
    bool clean = true;
    for (BlockId b = first; b <= last; ++b) {
      if (tags_[b] != Access::kReadWrite) {
        faulting = b;
        clean = false;
        break;
      }
    }
    if (clean) return;
    FGDSM_ASSERT_MSG(protocol != nullptr,
                     "write fault with no protocol installed (node "
                         << id_ << ", block " << faulting << ")");
    ++stats.write_misses;
    FGDSM_LOG("fault", "wr node=" << id_ << " blk=" << faulting << " tag="
                                  << static_cast<int>(tags_[faulting])
                                  << " t=" << task.now());
    const sim::Time t0 = task.now();
    protocol->on_write_fault(*this, task, faulting);
    stats.miss_ns += task.now() - t0;
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(id_), "miss", "wr miss", t0,
               task.now());
  }
}

void Node::ensure_chunk(sim::Task& task, const std::vector<Extent>& reads,
                        const std::vector<Extent>& writes) {
  // Requirements, matching what per-access checks give the real platform:
  //  - WRITE blocks must all be ReadWrite in one yield-free final pass (a
  //    store through a revoked tag would bypass the dirty-word machinery
  //    and lose the update);
  //  - READ blocks only need to have been *fetched once* during this call.
  //    Invalidation flips the tag but the fetched bytes remain, and under
  //    release consistency a read concurrent with a remote write may return
  //    the older value — exactly what a per-access system does when a block
  //    is consumed and invalidated afterwards. Requiring reads to stay
  //    valid simultaneously with conflicting writes would deadlock in-place
  //    stencils (pde's red/black planes) in livelock.
  //
  // Residual write-write contention (false-sharing writers cycling through
  // fetch+upgrade) is broken by an id-proportional backoff on re-faults of
  // the same block: node 0 never waits, so the lowest-id contender wins
  // within a few rounds. (The real platform escapes through per-access
  // faults and timing jitter; the backoff is the deterministic stand-in,
  // charged as miss stall time.)
  std::unordered_set<BlockId> fetched;
  std::unordered_set<BlockId> faulted;
  int contention = 0;
  for (;;) {
    if (contention > 1 && id_ > 0) {
      const sim::Time backoff = static_cast<sim::Time>(contention - 1) *
                                id_ * cluster_.costs().wire_latency;
      const sim::Time t0 = task.now();
      task.charge(backoff);
      stats.miss_ns += task.now() - t0;
    }
    task.sync();
    // One pass over the whole footprint; any violation triggers a fault and
    // a full rescan (the fault handling may yield, and other blocks can be
    // revoked meanwhile).
    BlockId faulting = 0;
    int kind = 0;  // 0 = clean, 1 = read fault, 2 = write fault
    for (const Extent& e : writes) {
      if (e.len == 0) continue;
      const BlockId first = cluster_.block_of(e.addr);
      const BlockId last = cluster_.block_of(e.addr + e.len - 1);
      for (BlockId b = first; b <= last && kind == 0; ++b)
        if (tags_[b] != Access::kReadWrite) {
          faulting = b;
          kind = 2;
        }
      if (kind != 0) break;
    }
    if (kind == 0) {
      for (const Extent& e : reads) {
        if (e.len == 0) continue;
        const BlockId first = cluster_.block_of(e.addr);
        const BlockId last = cluster_.block_of(e.addr + e.len - 1);
        for (BlockId b = first; b <= last && kind == 0; ++b)
          if (tags_[b] == Access::kInvalid && fetched.count(b) == 0) {
            faulting = b;
            kind = 1;
          }
        if (kind != 0) break;
      }
    }
    if (kind == 0) return;
    FGDSM_ASSERT_MSG(protocol != nullptr, "fault with no protocol installed");
    if (!faulted.insert(faulting).second) ++contention;
    FGDSM_LOG("fault", (kind == 2 ? "wr" : "rd")
                           << " node=" << id_ << " blk=" << faulting
                           << " tag=" << static_cast<int>(tags_[faulting])
                           << " contention=" << contention
                           << " t=" << task.now());
    const sim::Time t0 = task.now();
    if (kind == 2) {
      ++stats.write_misses;
      protocol->on_write_fault(*this, task, faulting);
    } else {
      ++stats.read_misses;
      protocol->on_read_fault(*this, task, faulting);
      fetched.insert(faulting);
    }
    stats.miss_ns += task.now() - t0;
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(id_), "miss",
               kind == 2 ? "wr miss" : "rd miss", t0, task.now());
  }
}

void Node::note_writes(GAddr addr, std::size_t len) {
  if (protocol != nullptr) protocol->note_writes(*this, addr, len);
}

void Node::send(sim::Task& task, sim::Message m) {
  m.src = id_;
  task.charge(cluster_.costs().msg_send_overhead);
  ++stats.messages_sent;
  stats.bytes_sent += static_cast<std::uint64_t>(
      m.size_bytes(cluster_.costs().msg_header_bytes));
  if (auto* tr = cluster_.tracer()) {
    m.trace_id = tr->flow_begin(
        sim::Tracer::compute_track(id_), "msg",
        msg_label(*tr, "tx", static_cast<MsgType>(m.type)),
        task.now() - cluster_.costs().msg_send_overhead, task.now());
  }
  cluster_.transmit(task.now(), std::move(m));
}

void Node::send_from_handler(HandlerClock& clk, sim::Message m) {
  m.src = id_;
  clk.charge(cluster_.costs().msg_send_overhead);
  ++stats.messages_sent;
  stats.bytes_sent += static_cast<std::uint64_t>(
      m.size_bytes(cluster_.costs().msg_header_bytes));
  if (auto* tr = cluster_.tracer()) {
    m.trace_id = tr->flow_begin(
        sim::Tracer::protocol_track(id_), "msg",
        msg_label(*tr, "tx", static_cast<MsgType>(m.type)),
        clk.t - cluster_.costs().msg_send_overhead, clk.t);
  }
  cluster_.transmit(clk.t, std::move(m));
}

void Node::deliver(sim::Message&& m, sim::Time arrival) {
  if (crashed_) return;  // a fail-stopped node absorbs traffic silently
  inbox_.push_back(PendingMsg{std::move(m), arrival});
  if (!handler_active_) schedule_next_handler(arrival);
}

void Node::crash(sim::Time t) {
  FGDSM_ASSERT_MSG(!crashed_, "node " << id_ << " crashed twice");
  crashed_ = true;
  ++stats.crashes;
  inbox_.clear();
  if (task_ != nullptr) task_->halt();
  FGDSM_LOG("crash", "node " << id_ << " fail-stop at t=" << t);
  if (auto* tr = cluster_.tracer())
    tr->span(sim::Tracer::compute_track(id_), "crash", "crash", t, t);
}

void Node::schedule_next_handler(sim::Time earliest) {
  handler_active_ = true;
  const sim::Time avail = proto_res().available();
  cluster_.engine().schedule(avail > earliest ? avail : earliest,
                             [this] { execute_one_handler(); });
}

void Node::execute_one_handler() {
  if (inbox_.empty()) {
    // A crash or rollback cleared the inbox under an already-scheduled
    // handler event (or a pre-rollback event outlived the timeline that
    // scheduled it). Resetting the flag re-arms scheduling for the next
    // delivery; if a fresher delivery already chained onto the stale event,
    // FIFO order is preserved either way.
    handler_active_ = false;
    return;
  }
  PendingMsg pm = inbox_.pop_front();
  // The protocol resource may have moved on (single-cpu: computation shares
  // it); acquire() starts the handler no earlier than now and no earlier
  // than the resource frees up.
  HandlerClock clk{proto_res().acquire(cluster_.engine().now(),
                                       cluster_.costs().msg_dispatch_overhead)};
  const sim::Time h_start = clk.t;
  const Cluster::Handler& h =
      cluster_.handler(static_cast<MsgType>(pm.msg.type));
  h(*this, pm.msg, clk);
  proto_res().set_available(clk.t);
  // The handler consumed the message; hand its payload buffer back so the
  // next block/chunk producer reuses it instead of allocating.
  cluster_.payload_pool().release(std::move(pm.msg.payload));
  if (auto* tr = cluster_.tracer()) {
    const char* name =
        msg_label(*tr, "h", static_cast<MsgType>(pm.msg.type));
    if (pm.msg.trace_id != 0)
      tr->flow_end(pm.msg.trace_id, sim::Tracer::protocol_track(id_), "msg",
                   name, h_start, clk.t);
    else
      tr->span(sim::Tracer::protocol_track(id_), "msg", name, h_start, clk.t);
  }
  if (!inbox_.empty())
    schedule_next_handler(inbox_.front().arrival > clk.t
                              ? inbox_.front().arrival
                              : clk.t);
  else
    handler_active_ = false;
}

void Node::barrier(sim::Task& task) {
  const sim::Time t0 = task.now();
  ++stats.barriers;
  if (protocol != nullptr) protocol->drain(*this, task);
  task.charge(cluster_.costs().barrier_local_cost);
  if (cluster_.nnodes() > 1) {
    if (cluster_.config().collectives != Collectives::kFlat) {
      cluster_.tree_self_arrived[static_cast<std::size_t>(id_)] = 1;
      cluster_.tree_barrier_step(
          id_, task.now(), [&](sim::Message m) { send(task, std::move(m)); });
    } else {
      sim::Message m;
      m.dst = 0;
      m.type = static_cast<std::uint16_t>(MsgType::kBarrierArrive);
      send(task, std::move(m));
    }
    barrier_sem.wait(task);
    // The coherence check itself happens at the barrier's completion point
    // (the last arrival at the root — see Cluster), not here: by the time a
    // release reaches this node, earlier-released nodes may already be
    // issuing new requests.
  } else if (cluster_.config().check_coherence && protocol != nullptr) {
    // Single node: drained means quiescent.
    protocol->check_invariants(*this);
  }
  stats.sync_ns += task.now() - t0;
  if (auto* tr = cluster_.tracer())
    tr->span(sim::Tracer::compute_track(id_), "sync", "barrier", t0,
             task.now());
  if (pending_ckpt_bytes_ >= 0) {
    // The barrier-root capture ran at this barrier's completion point and
    // left our byte count; pay the serialization cost on our own clock, at
    // the first instant we run after the capture.
    const std::int64_t bytes = pending_ckpt_bytes_;
    pending_ckpt_bytes_ = -1;
    const sim::Time c0 = task.now();
    task.charge(cluster_.costs().ckpt_base_ns +
                static_cast<sim::Time>(static_cast<double>(bytes) *
                                       cluster_.costs().ckpt_ns_per_byte));
    ++stats.checkpoints;
    stats.checkpoint_bytes += static_cast<std::uint64_t>(bytes);
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(id_), "ckpt", "checkpoint", c0,
               task.now());
  }
}

double Node::allreduce(sim::Task& task, double v, ReduceOp op) {
  const sim::Time t0 = task.now();
  ++stats.reductions;
  if (protocol != nullptr) protocol->drain(*this, task);
  task.charge(cluster_.costs().barrier_local_cost);
  if (cluster_.nnodes() == 1) {
    stats.sync_ns += task.now() - t0;
    return v;
  }
  if (cluster_.config().collectives != Collectives::kFlat) {
    const std::size_t id = static_cast<std::size_t>(id_);
    cluster_.tree_red_op[id] = static_cast<int>(op);
    // Own value only; child contributions live in tree_red_contrib slots
    // and tree_reduce_step folds everything in a fixed order.
    cluster_.tree_partial[id] = v;
    cluster_.tree_red_self[id] = 1;
    cluster_.tree_reduce_step(
        id_, task.now(), [&](sim::Message m) { send(task, std::move(m)); });
  } else {
    sim::Message m;
    m.dst = 0;
    m.type = static_cast<std::uint16_t>(MsgType::kReduceUp);
    m.arg[0] = std::bit_cast<std::int64_t>(v);
    m.arg[1] = static_cast<std::int64_t>(op);
    send(task, std::move(m));
  }
  reduce_sem.wait(task);
  stats.sync_ns += task.now() - t0;
  if (auto* tr = cluster_.tracer())
    tr->span(sim::Tracer::compute_track(id_), "sync", "allreduce", t0,
             task.now());
  return reduce_result;
}

}  // namespace fgdsm::tempest
