// Interface between a node and the coherence protocol running on it.
//
// Tempest's defining feature is that the coherence protocol is *user-level
// code*: the system provides fine-grain access control, access-fault
// dispatch, and fine-grain messaging; everything else — including the paper's
// compiler-directed bypasses — is protocol software layered on those
// primitives. This interface is that dispatch surface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/sim/task.h"
#include "src/tempest/types.h"

namespace fgdsm::tempest {

class Node;

class Protocol {
 public:
  virtual ~Protocol() = default;

  // A load touched an Invalid block. Must return with the block readable;
  // may block `task` (stall the processor) until data arrives.
  virtual void on_read_fault(Node& node, sim::Task& task, BlockId b) = 0;

  // A store touched an Invalid or ReadOnly block. In an eager
  // release-consistent protocol this typically upgrades locally and returns
  // without waiting for the ownership grant.
  virtual void on_write_fault(Node& node, sim::Task& task, BlockId b) = 0;

  // Release fence: wait until every transaction this node initiated has
  // completed (write grants received, flushes acknowledged). Called before
  // barriers and before compiler-directed protocol calls.
  virtual void drain(Node& node, sim::Task& task) = 0;

  // The executor reports the word ranges a loop chunk stored to. Protocols
  // that track per-word dirty state for in-flight ownership upgrades
  // override this; the default ignores it.
  virtual void note_writes(Node& node, GAddr addr, std::size_t len) {
    (void)node;
    (void)addr;
    (void)len;
  }

  // Debug aid (--check-coherence): called when the last arrival completes a
  // barrier at the root, before any release is sent — every node has drained
  // its transactions and sits blocked, so the cluster is globally quiescent.
  // Implementations validate their global invariants — directory belief vs.
  // actual per-node tags, transaction and dirty-mask drain — and abort on
  // violation. Must not charge virtual time.
  virtual void check_invariants(Node& node) { (void)node; }

  // Non-fatal variant for stall diagnostics: describe any in-flight
  // transactions / violated invariants instead of aborting. Called from the
  // watchdog's stall reporter, where the cluster is *not* quiescent, so
  // "violations" here usually mean "stuck mid-transaction".
  virtual std::vector<std::string> find_violations() const { return {}; }

  // ---- Checkpoint / rollback (crash recovery) ----
  // Capture this node's protocol state at a globally quiescent point (the
  // same barrier-root instant as check_invariants: all transactions drained,
  // every task parked). The returned handle is opaque to the cluster; null
  // means "nothing to capture" (the default for stateless protocols).
  virtual std::shared_ptr<void> capture_snapshot(Node& node) {
    (void)node;
    return nullptr;
  }
  // Roll this node's protocol state back to a handle previously returned by
  // capture_snapshot (null restores the pristine initial state). Any
  // in-flight transaction bookkeeping must be reset — the abandoned
  // timeline's messages never arrive.
  virtual void restore_snapshot(Node& node, const std::shared_ptr<void>& s) {
    (void)node;
    (void)s;
  }
};

}  // namespace fgdsm::tempest
