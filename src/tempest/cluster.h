// The simulated cluster: engine + network + nodes + the global shared
// segment layout, plus the handler dispatch table and the coordinator state
// for barriers and reductions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/network.h"
#include "src/tempest/config.h"
#include "src/tempest/node.h"
#include "src/tempest/types.h"
#include "src/util/stats.h"

namespace fgdsm::tempest {

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  // ---- Segment layout (before run) ----
  // Allocate a named region of the global shared segment; the returned
  // address is page-aligned so arrays start on block boundaries.
  GAddr allocate(const std::string& name, std::size_t bytes);
  std::size_t segment_bytes() const { return segment_bytes_; }
  // Mark an address range capture-always: its blocks join every node's
  // checkpoint regardless of tag state. Storage that bypasses access
  // control (replicated arrays, the MP backend's private copies) keeps live
  // data in blocks whose tags never leave the bootstrap state, so the
  // tag-predicated capture cannot see it — and a rollback that skips those
  // blocks leaves abandoned-timeline writes in the surviving replicas.
  void capture_always(GAddr base, std::size_t bytes);

  // ---- Geometry ----
  int nnodes() const { return cfg_.nnodes; }
  std::size_t block_size() const { return cfg_.block_size; }
  std::size_t words_per_block() const { return cfg_.block_size / 8; }
  BlockId block_of(GAddr a) const { return a / cfg_.block_size; }
  GAddr block_addr(BlockId b) const { return b * cfg_.block_size; }
  std::size_t num_blocks() const;
  // Home node: pages are assigned round-robin, as in a system that maps the
  // shared segment across the cluster (owner in the HPF sense is usually a
  // different node — the paper leans on this distinction in §4.2).
  int home_of(BlockId b) const {
    return static_cast<int>((block_addr(b) / cfg_.page_size) %
                            static_cast<std::size_t>(cfg_.nnodes));
  }

  // ---- Handler dispatch ----
  using Handler = std::function<void(Node&, sim::Message&, HandlerClock&)>;
  void register_handler(MsgType t, Handler h);
  const Handler& handler(MsgType t) const;

  // ---- Execution ----
  // Run `program` as one compute task per node. One-shot per Cluster.
  // Returns per-node statistics and the elapsed virtual time.
  util::RunStats run(
      const std::function<void(Node&, sim::Task&)>& program);

  // ---- Host-state checkpoint hooks ----
  // Layers above the cluster (the executor, the MP/irregular runtimes) keep
  // per-node execution state outside node memory — loop counters, scalars,
  // message stashes. They register a capture/restore pair here; capture runs
  // at every checkpoint and returns an opaque blob, restore applies it
  // during rollback. Registration order is preserved (blobs are
  // index-aligned). Register before run().
  struct HostStateHook {
    std::function<std::shared_ptr<void>()> capture;
    std::function<void(const std::shared_ptr<void>&)> restore;
  };
  void register_host_state_hook(HostStateHook h) {
    host_hooks_.push_back(std::move(h));
  }

  sim::Engine& engine() { return engine_; }
  sim::Network& network() { return net_; }

  // Payload recycler: protocol/runtime producers acquire block and chunk
  // buffers here, and the handler dispatch returns them after the handler
  // consumed the message — steady-state block transfers allocate nothing.
  // Sharded per event partition (selected by the engine's drain context) so
  // concurrently drained partitions never touch the same free list; a
  // buffer released in one partition simply re-enters that partition's
  // pool. Pool choice never affects simulated results.
  sim::BufferPool& payload_pool() {
    return pools_[static_cast<std::size_t>(engine_.current_partition_id())];
  }

  // The one egress point for node traffic: routes through the reliable
  // channel in chaos mode, or straight to the network otherwise (same
  // contract as Network::send). Nodes must use this instead of
  // network().send so that sequencing/retransmission can interpose.
  sim::Time transmit(sim::Time earliest, sim::Message m) {
    return channel_ != nullptr ? channel_->send(earliest, std::move(m))
                               : net_.send(earliest, std::move(m));
  }
  sim::ReliableChannel* channel() { return channel_.get(); }
  sim::FaultInjector* fault_injector() { return fault_.get(); }
  sim::Tracer* tracer() const { return cfg_.tracer; }
  const ClusterConfig& config() const { return cfg_; }
  const sim::CostModel& costs() const { return cfg_.costs; }
  Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

  // ---- Coordinator state ----
  // Centralized (kFlat): node 0 counts arrivals. Tree topologies: every
  // node counts arrivals from its children in the configured shape (binary,
  // binomial, or two-level groups — see Collectives); the release flows
  // back down the same shape.
  struct BarrierState {
    int arrived = 0;
  } barrier_state;
  std::vector<int> tree_arrived;        // per node: children heard this round
  std::vector<char> tree_self_arrived;  // per node: own arrival this round
  std::vector<double> tree_partial;     // per node: own contribution
  // Per node, one slot per child (same index as tree_children(node)).
  // Child contributions are buffered here and folded in child order only
  // once the subtree is complete — never in arrival order, which chaos
  // delays can permute (floating-point combines are order-sensitive, and
  // the determinism contract says faults may move timing, not results).
  std::vector<std::vector<double>> tree_red_contrib;
  std::vector<int> tree_red_arrived;    // reduction children heard
  std::vector<char> tree_red_self;      // own contribution made
  // Per node (a single shared scalar would be written concurrently by every
  // partition's reduction path under --sim-threads).
  std::vector<int> tree_red_op;         // reduction op this round

  // ---- Collective tree shapes ----
  // Pure shape functions (usable without a Cluster — the unit tests assert
  // parent/child sets directly). For kFlat they describe the centralized
  // star (node 0 fans out to everyone) for diagnostics; the flat path never
  // routes through the tree handlers.
  static int resolve_group(int nnodes, int group);  // 0 -> ceil(sqrt(n))
  static int collective_parent(Collectives topo, int node, int nnodes,
                               int group = 0);
  static std::vector<int> collective_children(Collectives topo, int node,
                                              int nnodes, int group = 0);
  // Longest root-to-leaf hop count of the shape (0 for a single node).
  static int collective_depth(Collectives topo, int nnodes, int group = 0);

  // Table lookups for the configured topology (built by
  // register_tree_handlers; valid only when collectives != kFlat).
  int tree_parent(int node) const {
    return tree_parent_[static_cast<std::size_t>(node)];
  }
  const std::vector<int>& tree_children(int node) const {
    return tree_children_[static_cast<std::size_t>(node)];
  }
  int tree_nchildren(int node) const {
    return static_cast<int>(tree_children(node).size());
  }
  // Barrier/reduction tree steps shared by task- and handler-context
  // arrivals; `send` abstracts who pays the injection cost.
  using SendFn = std::function<void(sim::Message)>;
  void tree_barrier_step(int node, sim::Time t, const SendFn& send);
  void tree_reduce_step(int node, sim::Time t, const SendFn& send);
  static double reduce_identity(int op);
  static double reduce_combine(int op, double a, double b);
  // Contributions are folded in node-id order once all have arrived, so a
  // reduction's floating-point result depends only on the values and the
  // node count — not on message timing (results are comparable across
  // modes and optimization levels).
  struct ReduceState {
    int arrived = 0;
    int op = 0;
    std::vector<double> contrib;
  } reduce_state;

 private:
  void register_builtin_handlers();
  void register_tree_handlers();

  // ---- Checkpoint / rollback recovery (fail-stop crashes) ----
  // One node's share of a checkpoint. Memory is captured per block, only for
  // blocks the node can legitimately read (tag != kInvalid) or homes —
  // everything else re-faults through the protocol after rollback, exactly
  // as the paper's fine-grain access control intends.
  struct NodeCheckpoint {
    std::vector<BlockId> blocks;   // captured block ids, ascending
    std::vector<std::byte> data;   // blocks.size() * block_size bytes
    std::vector<Access> tags;      // full tag array
    sim::Task::Snapshot task;
    std::int64_t barrier_sem = 0;  // value to restore (1 at barrier capture:
                                   // the completed barrier's release, folded)
    std::int64_t reduce_sem = 0;
    std::int64_t recv_sem = 0;
    std::int64_t drain_sem = 0;
    double reduce_result = 0.0;
    std::shared_ptr<void> protocol;  // Protocol::capture_snapshot handle
    std::int64_t bytes = 0;          // serialized size charged to the model
  };
  struct Checkpoint {
    bool valid = false;
    sim::Time t = 0;  // virtual time of capture (rollback_ns accounting)
    std::vector<NodeCheckpoint> nodes;
    std::vector<std::shared_ptr<void>> host_blobs;  // per registered hook
  };
  // Barrier-completion bookkeeping shared by the flat and tree coordinators:
  // advance the (monotonic, never rolled back) barrier epoch, draw
  // probabilistic crashes for it, and request a checkpoint on every K-th
  // epoch. Runs at the root-completion quiescent point, before any release
  // is sent. Returns true when this is a checkpoint epoch: the caller must
  // then SKIP its inline release fan-out — the capture itself runs at the
  // engine's window barrier (the request event runs inside one partition's
  // drain, where other partitions' task fibers may still be executing on
  // their host workers and cannot be snapshotted), and the releases are
  // replayed one window later by finish_barrier_release so no node moves
  // past the barrier before the capture sees it.
  bool on_barrier_complete(sim::Time t);
  // Deferred release fan-out for checkpoint epochs: same messages/costs as
  // the inline path, charged to node 0's protocol processor at time t.
  void finish_barrier_release(sim::Time t);
  void capture_checkpoint(sim::Time t, bool at_barrier);
  // Engine recovery hook: true = rolled back and rescheduled, keep running;
  // false = no crashed node (let the normal failure path proceed). Throws
  // sim::CrashError when a node crashed but no checkpoint exists.
  bool recover();

  ClusterConfig cfg_;
  sim::Engine engine_;
  sim::Network net_;
  std::vector<sim::BufferPool> pools_;  // one per event partition
  // Chaos mode only (both null when cfg_.faults is disabled, keeping the
  // fault-free path untouched).
  std::unique_ptr<sim::FaultInjector> fault_;
  std::unique_ptr<sim::ReliableChannel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Configured collective shape, precomputed once (empty under kFlat).
  std::vector<int> tree_parent_;
  std::vector<std::vector<int>> tree_children_;
  std::array<Handler, static_cast<std::size_t>(MsgType::kCount)> handlers_;
  std::size_t segment_bytes_ = 0;
  std::vector<std::pair<std::string, GAddr>> regions_;
  bool ran_ = false;
  // Compute tasks live for the whole run (member, not run()-local, so the
  // recovery hook can restore their snapshots mid-run).
  std::vector<std::unique_ptr<sim::Task>> tasks_;
  std::vector<HostStateHook> host_hooks_;
  Checkpoint ckpt_;
  // capture_always ranges and the per-block bitmap derived from them. The
  // bitmap is (re)built inside capture_checkpoint — ranges can be marked
  // before the segment layout is final, when num_blocks() is still growing.
  std::vector<std::pair<GAddr, std::size_t>> capture_always_ranges_;
  std::vector<std::uint8_t> capture_always_blocks_;
  // Capture request handed from the barrier root (partition-drain context)
  // to the engine window hook (coordinator context); the window barrier
  // provides the happens-before.
  bool ckpt_request_ = false;
  sim::Time ckpt_request_t_ = 0;
  // Completed-global-barrier count. Monotonic across recoveries on purpose:
  // a rolled-back run re-executes its barriers under FRESH epoch numbers, so
  // crashp draws (keyed on the epoch) never replay the same verdict and the
  // run makes progress.
  std::uint64_t barrier_epoch_ = 0;
  // Bumped once per rollback. Outbound messages are stamped with it
  // (Network::set_epoch_stamp) and the delivery sink drops any message from
  // an abandoned timeline — the kill switch for stale in-flight traffic the
  // channel's sequence reset cannot see (loopback self-sends bypass the
  // channel's dedup).
  std::uint32_t recovery_epoch_ = 0;
};

}  // namespace fgdsm::tempest
