#include "src/apps/apps.h"

#include <algorithm>
#include <cmath>

namespace fgdsm::apps {

namespace {
std::int64_t scale_dim(std::int64_t full, double s, std::int64_t min_v) {
  return std::max<std::int64_t>(min_v,
                                static_cast<std::int64_t>(full * s));
}
std::int64_t scale_it(std::int64_t full, double s, std::int64_t min_v) {
  return std::max<std::int64_t>(min_v,
                                static_cast<std::int64_t>(full * s));
}
}  // namespace

const std::vector<AppInfo>& registry() {
  static const std::vector<AppInfo> apps = {
      {"pde", [] { return pde(128, 40); },
       [](double s) {
         return pde(scale_dim(128, s, 48), scale_it(40, s, 2));
       },
       56.0, "grid size 128, 40 iters (RELAX routine only)"},
      {"shallow", [] { return shallow(1025, 513, 100); },
       [](double s) {
         return shallow(scale_dim(1025, s, 33), scale_dim(513, s, 17),
                        scale_it(100, s, 4));
       },
       28.0, "1025x513 grid, 100 iters"},
      {"grav", [] { return grav(128, 5); },
       [](double s) { return grav(scale_dim(128, s, 16), 5); },
       17.0, "grid size 128, 5 iters"},
      {"lu", [] { return lu(1024); },
       [](double s) { return lu(scale_dim(1024, s, 32)); },
       4.0, "1024x1024 matrix"},
      {"cg", [] { return cg(180, 360, 630); },
       [](double s) {
         // The paper's matrix is already small; scaling it down guts the
         // compute/communication ratio. Keep the full matrix and scale the
         // iteration count instead.
         return cg(180, 360, scale_it(630, s, 10));
       },
       4.6, "180x360 matrix, converges in 630 iters"},
      {"jacobi", [] { return jacobi(2048, 100); },
       [](double s) {
         return jacobi(scale_dim(2048, s, 32), scale_it(100, s, 4));
       },
       32.0, "2048x2048 matrix, 100 iters"},
  };
  return apps;
}

}  // namespace fgdsm::apps
