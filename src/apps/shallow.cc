// shallow — the NCAR shallow-water benchmark (Table 2: 1025x513 grid, 100
// time steps): the classic three-loop stencil structure (loop 100: mass
// fluxes cu/cv, vorticity z, height h; loop 200: the u/v/p update; loop
// 300: time smoothing), plus the periodic column wrap, which becomes a
// long-distance single-column transfer between the first and last
// processors.
//
// Arrays are REAL*8 here (the original is REAL*4): communication volume
// doubles but every pattern is preserved; see DESIGN.md deviations.
#include <cmath>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::ScalarPhase;
using hpf::TimeLoop;

namespace {
constexpr double kDx = 1e5, kDy = 1e5, kDt = 90.0, kAlpha = 0.001;
}

Program shallow(std::int64_t nx, std::int64_t ny, std::int64_t steps) {
  Program prog;
  prog.name = "shallow";
  const AffineExpr NX = AffineExpr::sym("nx"), NY = AffineExpr::sym("ny");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  for (const char* a : {"u", "v", "p", "unew", "vnew", "pnew", "uold",
                        "vold", "pold", "cu", "cv", "z", "h"})
    prog.arrays.push_back({a, {NX, NY}, DistKind::kBlock});
  prog.sizes.set("nx", nx);
  prog.sizes.set("ny", ny);
  prog.sizes.set("steps", steps);

  // ---- Initial conditions ----
  {
    ParallelLoop init;
    init.name = "init";
    init.dist = LoopVar{"j", AffineExpr(0), NY - 1};
    init.free.push_back(LoopVar{"i", AffineExpr(0), NX - 1});
    init.home_array = "p";
    init.home_sub = J;
    for (const char* a : {"u", "v", "p", "unew", "vnew", "pnew", "uold",
                          "vold", "pold", "cu", "cv", "z", "h"})
      init.writes.push_back({a, {I, J}});
    init.cost_per_iter_ns = costs::kInitNs * 3;
    init.body = [](BodyCtx& c) {
      const std::int64_t nx = c.sym("nx");
      const std::int64_t j = c.dist();
      auto u = view2(c, "u");
      auto v = view2(c, "v");
      auto p = view2(c, "p");
      auto uold = view2(c, "uold");
      auto vold = view2(c, "vold");
      auto pold = view2(c, "pold");
      for (std::int64_t i = 0; i < nx; ++i) {
        const double a = 1e6 * std::cos(2.0 * M_PI * i / 200.0);
        const double b = std::sin(2.0 * M_PI * j / 200.0);
        const double psi_like = a * b;
        u(i, j) = -psi_like / kDy * 1e-6;
        v(i, j) = psi_like / kDx * 1e-6;
        p(i, j) = 5e4 + 1e3 * std::cos(0.05 * (i + 2.0 * j));
        uold(i, j) = u(i, j);
        vold(i, j) = v(i, j);
        pold(i, j) = p(i, j);
      }
      for (const char* a2 : {"unew", "vnew", "pnew", "cu", "cv", "z", "h"}) {
        auto w = view2(c, a2);
        for (std::int64_t i = 0; i < nx; ++i) w(i, j) = 0.0;
      }
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }

  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");

  // tdt: first step integrates dt, later steps 2*dt (leapfrog).
  {
    ScalarPhase tdt;
    tdt.name = "tdt";
    tdt.body = [](BodyCtx& c) {
      c.set_scalar("tdt", c.sym("t") == 0 ? kDt : 2.0 * kDt);
    };
    tl.phases.push_back(Phase::make(std::move(tdt)));
  }

  // ---- Loop 100: cu, cv, z, h ----
  {
    ParallelLoop l100;
    l100.name = "loop100";
    l100.dist = LoopVar{"j", AffineExpr(0), NY - 1};
    l100.free.push_back(LoopVar{"i", AffineExpr(0), NX - 1});
    l100.home_array = "cu";
    l100.home_sub = J;
    l100.reads = {{"p", {I, J}},     {"p", {I - 1, J}}, {"p", {I, J - 1}},
                  {"p", {I - 1, J - 1}},
                  {"u", {I, J}},     {"u", {I, J - 1}}, {"u", {I + 1, J}},
                  {"v", {I, J}},     {"v", {I - 1, J}}, {"v", {I, J + 1}}};
    l100.writes = {{"cu", {I, J}}, {"cv", {I, J}}, {"z", {I, J}},
                   {"h", {I, J}}};
    l100.cost_per_iter_ns = costs::kShallowLoopNs;
    l100.body = [](BodyCtx& c) {
      auto u = view2(c, "u");
      auto v = view2(c, "v");
      auto p = view2(c, "p");
      auto cu = view2(c, "cu");
      auto cv = view2(c, "cv");
      auto z = view2(c, "z");
      auto h = view2(c, "h");
      const std::int64_t nx = c.sym("nx"), ny = c.sym("ny");
      const std::int64_t j = c.dist();
      const double fsdx = 4.0 / kDx, fsdy = 4.0 / kDy;
      for (std::int64_t i = 1; i < nx; ++i)
        cu(i, j) = 0.5 * (p(i, j) + p(i - 1, j)) * u(i, j);
      if (j >= 1) {
        for (std::int64_t i = 0; i < nx; ++i)
          cv(i, j) = 0.5 * (p(i, j) + p(i, j - 1)) * v(i, j);
        for (std::int64_t i = 1; i < nx; ++i)
          z(i, j) = (fsdx * (v(i, j) - v(i - 1, j)) -
                     fsdy * (u(i, j) - u(i, j - 1))) /
                    (p(i - 1, j - 1) + p(i, j - 1) + p(i, j) + p(i - 1, j));
      }
      if (j <= ny - 2)
        for (std::int64_t i = 0; i < nx - 1; ++i)
          h(i, j) = p(i, j) + 0.25 * (u(i + 1, j) * u(i + 1, j) +
                                      u(i, j) * u(i, j) +
                                      v(i, j + 1) * v(i, j + 1) +
                                      v(i, j) * v(i, j));
    };
    tl.phases.push_back(Phase::make(std::move(l100)));
  }

  // ---- Periodic continuation: wrap column 0 -> column ny-1 (and the row
  // wrap, which is node-local). The column wrap is a single-column
  // transfer from the first processor to the last.
  {
    ParallelLoop wrap;
    wrap.name = "periodic";
    wrap.dist = LoopVar{"j", NY - 1, NY - 1};
    wrap.free.push_back(LoopVar{"i", AffineExpr(0), NX - 1});
    wrap.home_array = "cu";
    wrap.home_sub = J;
    wrap.reads = {{"cu", {I, J - (NY - 1)}},
                  {"cv", {I, J - (NY - 1)}},
                  {"z", {I, J - (NY - 1)}},
                  {"h", {I, J - (NY - 1)}}};
    wrap.writes = {{"cu", {I, J}}, {"cv", {I, J}}, {"z", {I, J}},
                   {"h", {I, J}}};
    wrap.cost_per_iter_ns = costs::kInitNs;
    wrap.body = [](BodyCtx& c) {
      const std::int64_t nx = c.sym("nx");
      const std::int64_t j = c.dist();
      for (const char* a : {"cu", "cv", "z", "h"}) {
        auto w = view2(c, a);
        for (std::int64_t i = 0; i < nx; ++i) {
          // Column wrap plus the local row wrap.
          w(i, j) = w(i, 0);
        }
        w(0, j) = w(nx - 1, j);
      }
    };
    tl.phases.push_back(Phase::make(std::move(wrap)));
  }

  // ---- Loop 200: unew, vnew, pnew ----
  {
    ParallelLoop l200;
    l200.name = "loop200";
    l200.dist = LoopVar{"j", AffineExpr(1), NY - 2};
    l200.free.push_back(LoopVar{"i", AffineExpr(1), NX - 2});
    l200.home_array = "unew";
    l200.home_sub = J;
    l200.reads = {{"uold", {I, J}},   {"vold", {I, J}},  {"pold", {I, J}},
                  {"z", {I, J}},      {"z", {I + 1, J}}, {"z", {I, J + 1}},
                  {"cv", {I, J}},     {"cv", {I - 1, J}},
                  {"cv", {I, J + 1}}, {"cv", {I - 1, J + 1}},
                  {"cu", {I, J}},     {"cu", {I + 1, J}},
                  {"cu", {I, J - 1}}, {"cu", {I + 1, J - 1}},
                  {"h", {I, J}},      {"h", {I - 1, J}}, {"h", {I, J - 1}}};
    l200.writes = {{"unew", {I, J}}, {"vnew", {I, J}}, {"pnew", {I, J}}};
    l200.cost_per_iter_ns = costs::kShallowLoopNs;
    l200.body = [](BodyCtx& c) {
      auto uold = view2(c, "uold");
      auto vold = view2(c, "vold");
      auto pold = view2(c, "pold");
      auto cu = view2(c, "cu");
      auto cv = view2(c, "cv");
      auto z = view2(c, "z");
      auto h = view2(c, "h");
      auto unew = view2(c, "unew");
      auto vnew = view2(c, "vnew");
      auto pnew = view2(c, "pnew");
      const std::int64_t nx = c.sym("nx");
      const std::int64_t j = c.dist();
      const double tdt = c.scalar("tdt");
      const double tdts8 = tdt / 8.0;
      const double tdtsdx = tdt / kDx, tdtsdy = tdt / kDy;
      for (std::int64_t i = 1; i < nx - 1; ++i) {
        unew(i, j) = uold(i, j) +
                     tdts8 * (z(i, j + 1) + z(i, j)) *
                         (cv(i, j + 1) + cv(i - 1, j + 1) + cv(i - 1, j) +
                          cv(i, j)) -
                     tdtsdx * (h(i, j) - h(i - 1, j));
        vnew(i, j) = vold(i, j) -
                     tdts8 * (z(i + 1, j) + z(i, j)) *
                         (cu(i + 1, j) + cu(i, j) + cu(i, j - 1) +
                          cu(i + 1, j - 1)) -
                     tdtsdy * (h(i, j) - h(i, j - 1));
        pnew(i, j) = pold(i, j) - tdtsdx * (cu(i + 1, j) - cu(i, j)) -
                     tdtsdy * (cv(i, j + 1) - cv(i, j));
      }
    };
    tl.phases.push_back(Phase::make(std::move(l200)));
  }

  // ---- Loop 300: time smoothing and rotation ----
  {
    ParallelLoop l300;
    l300.name = "loop300";
    l300.dist = LoopVar{"j", AffineExpr(0), NY - 1};
    l300.free.push_back(LoopVar{"i", AffineExpr(0), NX - 1});
    l300.home_array = "u";
    l300.home_sub = J;
    l300.reads = {{"u", {I, J}},    {"v", {I, J}},    {"p", {I, J}},
                  {"unew", {I, J}}, {"vnew", {I, J}}, {"pnew", {I, J}},
                  {"uold", {I, J}}, {"vold", {I, J}}, {"pold", {I, J}}};
    l300.writes = {{"u", {I, J}},    {"v", {I, J}},    {"p", {I, J}},
                   {"uold", {I, J}}, {"vold", {I, J}}, {"pold", {I, J}}};
    l300.cost_per_iter_ns = costs::kShallowLoopNs;
    l300.body = [](BodyCtx& c) {
      auto u = view2(c, "u");
      auto v = view2(c, "v");
      auto p = view2(c, "p");
      auto unew = view2(c, "unew");
      auto vnew = view2(c, "vnew");
      auto pnew = view2(c, "pnew");
      auto uold = view2(c, "uold");
      auto vold = view2(c, "vold");
      auto pold = view2(c, "pold");
      const std::int64_t nx = c.sym("nx");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < nx; ++i) {
        uold(i, j) =
            u(i, j) + kAlpha * (unew(i, j) - 2.0 * u(i, j) + uold(i, j));
        vold(i, j) =
            v(i, j) + kAlpha * (vnew(i, j) - 2.0 * v(i, j) + vold(i, j));
        pold(i, j) =
            p(i, j) + kAlpha * (pnew(i, j) - 2.0 * p(i, j) + pold(i, j));
        u(i, j) = unew(i, j);
        v(i, j) = vnew(i, j);
        p(i, j) = pnew(i, j);
      }
    };
    tl.phases.push_back(Phase::make(std::move(l300)));
  }
  prog.phases.push_back(Phase::make(std::move(tl)));

  // Checksums over the prognostic fields.
  for (const char* a : {"p", "u", "v"}) {
    ParallelLoop sum;
    sum.name = std::string("checksum-") + a;
    sum.dist = LoopVar{"j", AffineExpr(0), NY - 1};
    sum.free.push_back(LoopVar{"i", AffineExpr(0), NX - 1});
    sum.home_array = a;
    sum.home_sub = J;
    sum.reads = {{a, {I, J}}};
    sum.cost_per_iter_ns = costs::kReduceNs;
    sum.has_reduce = true;
    sum.reduce_scalar = std::string("checksum_") + a;
    sum.body = [a = std::string(a)](BodyCtx& c) {
      auto w = view2(c, a);
      const std::int64_t nx = c.sym("nx");
      const std::int64_t j = c.dist();
      double acc = 0.0;
      for (std::int64_t i = 0; i < nx; ++i) acc += w(i, j);
      c.contribute(acc);
    };
    prog.phases.push_back(Phase::make(std::move(sum)));
  }
  return prog;
}

}  // namespace fgdsm::apps
