// jacobi — 2048x2048 five-point Jacobi relaxation, 100 sweeps (Table 2).
//
// The canonical producer-consumer stencil the paper's technique targets:
// each sweep reads one ghost column from each neighbor; the compiler turns
// those into two sender-initiated column transfers per node per sweep.
#include <cmath>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::ArrayRef;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::TimeLoop;

namespace {

ParallelLoop sweep(const char* name, const char* src, const char* dst) {
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  ParallelLoop loop;
  loop.name = name;
  loop.dist = LoopVar{"j", AffineExpr(1), N - 2};
  loop.free.push_back(LoopVar{"i", AffineExpr(1), N - 2});
  loop.home_array = dst;
  loop.home_sub = J;
  loop.reads = {{src, {I, J}},
                {src, {I - 1, J}},
                {src, {I + 1, J}},
                {src, {I, J - 1}},
                {src, {I, J + 1}}};
  loop.writes = {{dst, {I, J}}};
  loop.cost_per_iter_ns = costs::kJacobiSweepNs;
  loop.body = [src = std::string(src), dst = std::string(dst)](BodyCtx& c) {
    auto u = view2(c, src);
    auto v = view2(c, dst);
    const std::int64_t n = c.sym("n");
    const std::int64_t j = c.dist();
    for (std::int64_t i = 1; i < n - 1; ++i)
      v(i, j) =
          0.25 * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1));
  };
  return loop;
}

}  // namespace

Program jacobi(std::int64_t n, std::int64_t sweeps) {
  Program prog;
  prog.name = "jacobi";
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  prog.arrays.push_back({"u", {N, N}, DistKind::kBlock});
  prog.arrays.push_back({"v", {N, N}, DistKind::kBlock});
  prog.sizes.set("n", n);
  // Two sweeps per time step (u->v, v->u); `sweeps` counts single sweeps.
  prog.sizes.set("steps", (sweeps + 1) / 2);

  // Initialization: a deterministic boundary-value problem. Writes the
  // whole of both arrays (cold write faults populate ownership, as on the
  // real system).
  {
    ParallelLoop init;
    init.name = "init";
    init.dist = LoopVar{"j", AffineExpr(0), N - 1};
    init.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    init.home_array = "u";
    init.home_sub = J;
    init.writes = {{"u", {I, J}}, {"v", {I, J}}};
    init.cost_per_iter_ns = costs::kInitNs;
    init.body = [](BodyCtx& c) {
      auto u = view2(c, "u");
      auto v = view2(c, "v");
      const std::int64_t n = c.sym("n");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < n; ++i) {
        const bool boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
        const double val =
            boundary ? std::sin(0.71 * static_cast<double>(i + 2 * j)) : 0.0;
        u(i, j) = val;
        v(i, j) = val;
      }
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }

  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("steps");
  tl.phases.push_back(Phase::make(sweep("sweep-uv", "u", "v")));
  tl.phases.push_back(Phase::make(sweep("sweep-vu", "v", "u")));
  prog.phases.push_back(Phase::make(std::move(tl)));

  // Checksum: sum of u over owned columns.
  {
    ParallelLoop sum;
    sum.name = "checksum";
    sum.dist = LoopVar{"j", AffineExpr(0), N - 1};
    sum.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    sum.home_array = "u";
    sum.home_sub = J;
    sum.reads = {{"u", {I, J}}};
    sum.cost_per_iter_ns = costs::kReduceNs;
    sum.has_reduce = true;
    sum.reduce_scalar = "checksum";
    sum.body = [](BodyCtx& c) {
      auto u = view2(c, "u");
      const std::int64_t n = c.sym("n");
      const std::int64_t j = c.dist();
      double acc = 0;
      for (std::int64_t i = 0; i < n; ++i) acc += u(i, j);
      c.contribute(acc);
    };
    prog.phases.push_back(Phase::make(std::move(sum)));
  }
  return prog;
}

}  // namespace fgdsm::apps
