// spmv — iterated sparse matrix–vector product with normalization, the
// irregular workload for the inspector–executor runtime (src/irreg/).
//
// The matrix is held in an ELL-style fixed-k layout: for column-block-
// distributed row j, a(i,j) is the i-th nonzero coefficient and col(i,j)
// the (0-based) index of the x element it multiplies — so the inner product
// reads x(col(i,j)), an indirection the affine analysis cannot plan. The
// indirection pattern is configurable:
//
//   pattern 0 "band": col = j + (i - k/2)*37 wrapped mod n. Each node's
//     gather set merges into long intervals (~ k/2 * 37 elements of halo
//     per side), most of whose blocks survive the shmem_limits trimming —
//     the inspector's schedule carries nearly all the traffic.
//   pattern 1 "hash": col = hash(i, j) mod n. Scattered single elements:
//     after trimming almost everything falls back to the default protocol,
//     the honest worst case for block-granular schedules.
//
// x and col versions never change inside the time loop (only x's *values*
// do, via the aligned normalization loop), so the inspection runs once and
// the schedule replays every iteration — the CHAOS/PARTI amortization the
// schedule cache models.
//
// Deliberately not in apps::registry(): the paper-suite benches stay
// byte-stable; bench_irreg drives this app directly.
#include <cmath>
#include <cstdint>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::ScalarPhase;
using hpf::TimeLoop;

namespace {
std::int64_t col_of(std::int64_t i, std::int64_t j, std::int64_t k,
                    std::int64_t n, std::int64_t pattern) {
  if (pattern == 0) {  // band
    const std::int64_t c = j + (i - k / 2) * 37;
    return ((c % n) + n) % n;
  }
  // hash: splitmix64-style scramble of (i, j), reduced mod n.
  std::uint64_t z = static_cast<std::uint64_t>(i * 0x9e3779b9 + j) +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return static_cast<std::int64_t>(z % static_cast<std::uint64_t>(n));
}
}  // namespace

Program spmv(std::int64_t n, std::int64_t k, std::int64_t iters,
             std::int64_t pattern) {
  Program prog;
  prog.name = "spmv";
  const AffineExpr N = AffineExpr::sym("n"), K = AffineExpr::sym("k");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  prog.arrays.push_back({"a", {K, N}, DistKind::kBlock});
  prog.arrays.push_back({"col", {K, N}, DistKind::kBlock});
  prog.arrays.push_back({"x", {N}, DistKind::kBlock});
  prog.arrays.push_back({"y", {N}, DistKind::kBlock});
  prog.sizes.set("n", n);
  prog.sizes.set("k", k);
  prog.sizes.set("iters", iters);
  prog.sizes.set("pattern", pattern);

  {
    ParallelLoop init;
    init.name = "init";
    init.dist = LoopVar{"j", AffineExpr(0), N - 1};
    init.free.push_back(LoopVar{"i", AffineExpr(0), K - 1});
    init.home_array = "x";
    init.home_sub = J;
    init.writes = {{"a", {I, J}}, {"col", {I, J}}, {"x", {J}}, {"y", {J}}};
    init.cost_per_iter_ns = costs::kInitNs;
    init.body = [](BodyCtx& c) {
      auto a = view2(c, "a");
      auto col = view2(c, "col");
      auto x = view1(c, "x");
      auto y = view1(c, "y");
      const std::int64_t nn = c.sym("n"), kk = c.sym("k");
      const std::int64_t pat = c.sym("pattern");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < kk; ++i) {
        col(i, j) = static_cast<double>(col_of(i, j, kk, nn, pat));
        // Positive coefficients keep ||A x|| bounded away from zero.
        a(i, j) = 0.5 + 0.25 * std::sin(0.013 * static_cast<double>(
                                            3 * i + 7 * j + 1));
      }
      x(j) = 1.0 + 0.001 * static_cast<double>(j % 13);
      y(j) = 0.0;
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }

  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("iters");
  {
    // y(j) = sum_i a(i,j) * x(col(i,j)) — the gather.
    ParallelLoop mv;
    mv.name = "y=A*x";
    mv.dist = LoopVar{"j", AffineExpr(0), N - 1};
    mv.free.push_back(LoopVar{"i", AffineExpr(0), K - 1});
    mv.home_array = "y";
    mv.home_sub = J;
    mv.reads = {{"a", {I, J}}, {"col", {I, J}}};
    mv.ind_reads.push_back({"x", "col", {I, J}, /*value_offset=*/0});
    mv.writes = {{"y", {J}}};
    mv.cost_per_iter_ns = costs::kCgMatvecNs;
    mv.has_reduce = true;
    mv.reduce_scalar = "ynorm";
    mv.body = [](BodyCtx& c) {
      auto a = view2(c, "a");
      auto col = view2(c, "col");
      auto x = view1(c, "x");
      auto y = view1(c, "y");
      const std::int64_t kk = c.sym("k");
      const std::int64_t j = c.dist();
      double acc = 0.0;
      for (std::int64_t i = 0; i < kk; ++i)
        acc += a(i, j) * x(static_cast<std::int64_t>(col(i, j)));
      y(j) = acc;
      c.contribute(acc * acc);
    };
    tl.phases.push_back(Phase::make(std::move(mv)));
  }
  {
    ScalarPhase sc;
    sc.name = "scale";
    sc.body = [](BodyCtx& c) {
      const double yn = c.scalar("ynorm");
      c.set_scalar("scale", yn > 0 ? 1.0 / std::sqrt(yn) : 0.0);
    };
    tl.phases.push_back(Phase::make(std::move(sc)));
  }
  {
    // x = scale * y — aligned: refreshes x's *values* without touching the
    // indirection arrays, so the cached gather schedule stays valid.
    ParallelLoop xl;
    xl.name = "x=scale*y";
    xl.dist = LoopVar{"j", AffineExpr(0), N - 1};
    xl.home_array = "x";
    xl.home_sub = J;
    xl.reads = {{"y", {J}}};
    xl.writes = {{"x", {J}}};
    xl.cost_per_iter_ns = costs::kCgVecNs;
    xl.body = [](BodyCtx& c) {
      auto x = view1(c, "x");
      auto y = view1(c, "y");
      x(c.dist()) = c.scalar("scale") * y(c.dist());
    };
    tl.phases.push_back(Phase::make(std::move(xl)));
  }
  prog.phases.push_back(Phase::make(std::move(tl)));

  {
    // Weighted checksum (plain ||x||^2 would be identically 1 after the
    // normalization — insensitive to gather correctness).
    ParallelLoop sum;
    sum.name = "checksum";
    sum.dist = LoopVar{"j", AffineExpr(0), N - 1};
    sum.home_array = "x";
    sum.home_sub = J;
    sum.reads = {{"x", {J}}};
    sum.cost_per_iter_ns = costs::kReduceNs;
    sum.has_reduce = true;
    sum.reduce_scalar = "checksum";
    sum.body = [](BodyCtx& c) {
      auto x = view1(c, "x");
      const std::int64_t j = c.dist();
      c.contribute(x(j) * static_cast<double>((j % 7) + 1));
    };
    prog.phases.push_back(Phase::make(std::move(sum)));
  }
  return prog;
}

}  // namespace fgdsm::apps
