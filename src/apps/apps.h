// The application suite of the paper's Table 2, re-implemented against the
// HPF IR. Every program is built once and runs unchanged under every
// execution mode (serial, transparent shared memory, compiler-directed
// coherence at each optimization level, message passing).
//
// Problem sizes: build(n, iters) gives full control; paper() uses the
// paper's Table 2 sizes; scaled(s) shrinks the linear dimension and the
// iteration count by s for quick runs. Each program ends by computing one
// or more checksum scalars through its own reductions, so runs can be
// compared across modes at any size without gathering arrays.
//
// Compute-cost calibration: each loop's cost_per_iter_ns approximates the
// per-element time of a 66 MHz HyperSPARC on that kernel, chosen so the
// 8-node per-node compute times land near the paper's Table 3 "Compute
// time" column at full problem size (see src/apps/costs.h).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/hpf/ir.h"

namespace fgdsm::apps {

// jacobi: 2048x2048 five-point relaxation, 100 sweeps (Table 2 row 6).
hpf::Program jacobi(std::int64_t n, std::int64_t sweeps);

// pde: Genesis PDE1 RELAX — 3-D 128^3 red/black relaxation, 40 iterations.
hpf::Program pde(std::int64_t n, std::int64_t iters);

// shallow: NCAR shallow-water benchmark, 1025x513 grid, 100 time steps.
hpf::Program shallow(std::int64_t nx, std::int64_t ny, std::int64_t steps);

// grav: Syracuse gravitational potential kernel — 129x129(x129) grids,
// SUM-reduction heavy, 5 iterations.
hpf::Program grav(std::int64_t n, std::int64_t iters);

// lu: 1024x1024 right-looking LU decomposition, CYCLIC columns.
hpf::Program lu(std::int64_t n);

// cg: CGNR on a synthetic 180x360 system; cap iterations (the paper's run
// converges in 630).
hpf::Program cg(std::int64_t nrows, std::int64_t ncols, std::int64_t iters);

// spmv: iterated normalized sparse matvec y = A x in ELL-style fixed-k
// storage — the irregular workload for the inspector–executor runtime.
// pattern 0 = banded indirection (gather intervals survive block trimming),
// pattern 1 = hashed (scattered; trims to the default protocol). Not in the
// registry: driven by bench_irreg, not the paper-suite benches.
hpf::Program spmv(std::int64_t n, std::int64_t k, std::int64_t iters,
                  std::int64_t pattern);

// Registry for benches/examples.
struct AppInfo {
  std::string name;
  std::function<hpf::Program()> paper;            // Table 2 size
  std::function<hpf::Program(double)> scaled;     // shrunk by factor s
  double paper_memory_mb;                         // Table 2 "Memory" column
  std::string paper_problem;                      // Table 2 description
};
const std::vector<AppInfo>& registry();

}  // namespace fgdsm::apps
