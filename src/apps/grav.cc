// grav — gravitational potential kernel (Syracuse HPF suite): a 129x129
// potential grid relaxed against a 129x129x129 mass distribution, SUM
// reductions per source plane (Table 2: grid size 128 -> 129 points, 5
// iterations, ~17 MB).
//
// Two properties the paper highlights (§6):
//  - array extents of 129 make columns 1032 bytes — never block-aligned at
//    128-byte blocks, so the compiler's inner subsets lose two blocks per
//    column and only ~38% of misses are removed;
//  - a large number of SUM reductions (one per moment order per iteration,
//    plus the total source mass) limits speedup in every configuration.
#include <cmath>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::ScalarPhase;
using hpf::TimeLoop;

Program grav(std::int64_t n, std::int64_t iters) {
  // n is the grid size; arrays have n+1 points per dimension (129 for 128).
  Program prog;
  prog.name = "grav";
  const AffineExpr M = AffineExpr::sym("m");  // m = n + 1
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j"),
                   K = AffineExpr::sym("k");
  prog.arrays.push_back({"phi", {M, M}, DistKind::kBlock});
  prog.arrays.push_back({"phinew", {M, M}, DistKind::kBlock});
  prog.arrays.push_back({"rho", {M, M, M}, DistKind::kBlock});
  prog.sizes.set("m", n + 1);
  prog.sizes.set("iters", iters);

  {
    ParallelLoop init2d;
    init2d.name = "init-phi";
    init2d.dist = LoopVar{"j", AffineExpr(0), M - 1};
    init2d.free.push_back(LoopVar{"i", AffineExpr(0), M - 1});
    init2d.home_array = "phi";
    init2d.home_sub = J;
    init2d.writes = {{"phi", {I, J}}, {"phinew", {I, J}}};
    init2d.cost_per_iter_ns = costs::kInitNs;
    init2d.body = [](BodyCtx& c) {
      auto phi = view2(c, "phi");
      auto phinew = view2(c, "phinew");
      const std::int64_t m = c.sym("m");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < m; ++i) {
        phi(i, j) = 0.01 * std::cos(0.2 * static_cast<double>(i + j));
        phinew(i, j) = 0.0;
      }
    };
    prog.phases.push_back(Phase::make(std::move(init2d)));
  }
  {
    ParallelLoop init3d;
    init3d.name = "init-rho";
    init3d.dist = LoopVar{"k", AffineExpr(0), M - 1};
    init3d.free.push_back(LoopVar{"i", AffineExpr(0), M - 1});
    init3d.free.push_back(LoopVar{"j", AffineExpr(0), M - 1});
    init3d.home_array = "rho";
    init3d.home_sub = K;
    init3d.writes = {{"rho", {I, J, K}}};
    init3d.cost_per_iter_ns = costs::kInitNs;
    init3d.body = [](BodyCtx& c) {
      auto rho = view3(c, "rho");
      const std::int64_t m = c.sym("m");
      const std::int64_t k = c.dist();
      for (std::int64_t j = 0; j < m; ++j)
        for (std::int64_t i = 0; i < m; ++i)
          rho(i, j, k) =
              std::exp(-1e-3 * static_cast<double>((i - 60) * (i - 60) +
                                                   (j - 70) * (j - 70) +
                                                   (k - 50) * (k - 50)));
    };
    prog.phases.push_back(Phase::make(std::move(init3d)));
  }

  TimeLoop outer;
  outer.counter = "t";
  outer.count = AffineExpr::sym("iters");

  // Per iteration: one SUM reduction per moment order (the reduction storm
  // the paper describes — "a large number of SUM reductions, which, while
  // efficiently implemented using low-level messages, ultimately limit
  // speedups"). Each round sums a differently-weighted functional of the
  // distributed potential grid: the summand is parallel over owned columns,
  // but every round costs a full cluster synchronization.
  {
    TimeLoop moments;
    moments.counter = "kp";
    moments.count = M;
    ParallelLoop mom;
    mom.name = "moment";
    mom.dist = LoopVar{"j", AffineExpr(0), M - 1};
    mom.free.push_back(LoopVar{"i", AffineExpr(0), M - 1});
    mom.home_array = "phi";
    mom.home_sub = J;
    // Each round also reads the kp-th potential column — a per-round
    // broadcast from its owner. phi is rewritten every iteration, so these
    // columns must move again each time; their 129-point extent is the
    // paper's pronounced-edge-effect case for the optimizer.
    mom.reads = {{"phi", {I, J}}, {"phi", {I, AffineExpr::sym("kp")}}};
    mom.cost_per_iter_ns = costs::kGravMomentNs;
    mom.has_reduce = true;
    mom.reduce_scalar = "moment_sum";
    mom.body = [](BodyCtx& c) {
      auto phi = view2(c, "phi");
      const std::int64_t m = c.sym("m");
      const std::int64_t j = c.dist();
      const std::int64_t kp = c.sym("kp");
      const double wj =
          1.0 + 0.5 * static_cast<double>((j * (kp + 1)) % 7);
      double acc = 0.0;
      for (std::int64_t i = 0; i < m; ++i)
        acc += wj * phi(i, j) + 0.01 * phi(i, kp);
      c.contribute(acc);
    };
    moments.phases.push_back(Phase::make(std::move(mom)));
    ScalarPhase fold;
    fold.name = "fold-moment";
    fold.body = [](BodyCtx& c) {
      const double prev =
          c.sym("kp") == 0 ? 0.0 : c.scalar("moment_acc");
      const double kp = static_cast<double>(c.sym("kp"));
      c.set_scalar("moment_acc",
                   prev + c.scalar("moment_sum") / (1.0 + 0.01 * kp));
    };
    moments.phases.push_back(Phase::make(std::move(fold)));
    outer.phases.push_back(Phase::make(std::move(moments)));
  }

  // The mass of the source distribution: one parallel pass over the 3-D
  // grid per iteration (each node reads only its owned planes).
  {
    ParallelLoop mass;
    mass.name = "mass";
    mass.dist = LoopVar{"k", AffineExpr(0), M - 1};
    mass.free.push_back(LoopVar{"i", AffineExpr(0), M - 1});
    mass.free.push_back(LoopVar{"j", AffineExpr(0), M - 1});
    mass.home_array = "rho";
    mass.home_sub = K;
    mass.reads = {{"rho", {I, J, K}}};
    mass.cost_per_iter_ns = costs::kReduceNs;
    mass.has_reduce = true;
    mass.reduce_scalar = "total_mass";
    mass.body = [](BodyCtx& c) {
      auto rho = view3(c, "rho");
      const std::int64_t m = c.sym("m");
      const std::int64_t k = c.dist();
      double acc = 0.0;
      for (std::int64_t j = 0; j < m; ++j)
        for (std::int64_t i = 0; i < m; ++i) acc += rho(i, j, k);
      c.contribute(acc);
    };
    outer.phases.push_back(Phase::make(std::move(mass)));
  }

  // ...then relax the potential under the accumulated source term: a
  // five-point sweep whose ghost columns are the 129-point edge-effect case.
  {
    ParallelLoop relax;
    relax.name = "relax";
    relax.dist = LoopVar{"j", AffineExpr(1), M - 2};
    relax.free.push_back(LoopVar{"i", AffineExpr(1), M - 2});
    relax.home_array = "phinew";
    relax.home_sub = J;
    relax.reads = {{"phi", {I, J}},
                   {"phi", {I - 1, J}},
                   {"phi", {I + 1, J}},
                   {"phi", {I, J - 1}},
                   {"phi", {I, J + 1}}};
    relax.writes = {{"phinew", {I, J}}};
    relax.cost_per_iter_ns = costs::kGravRelaxNs;
    relax.body = [](BodyCtx& c) {
      auto phi = view2(c, "phi");
      auto phinew = view2(c, "phinew");
      const std::int64_t m = c.sym("m");
      const std::int64_t j = c.dist();
      const double g =
          (c.scalar("total_mass") + c.scalar("moment_acc")) * 1e-6;
      for (std::int64_t i = 1; i < m - 1; ++i)
        phinew(i, j) = 0.25 * (phi(i - 1, j) + phi(i + 1, j) +
                               phi(i, j - 1) + phi(i, j + 1) - g);
    };
    outer.phases.push_back(Phase::make(std::move(relax)));
  }
  {
    ParallelLoop copy;
    copy.name = "copy-back";
    copy.dist = LoopVar{"j", AffineExpr(1), M - 2};
    copy.free.push_back(LoopVar{"i", AffineExpr(1), M - 2});
    copy.home_array = "phi";
    copy.home_sub = J;
    copy.reads = {{"phinew", {I, J}}};
    copy.writes = {{"phi", {I, J}}};
    copy.cost_per_iter_ns = costs::kInitNs;
    copy.body = [](BodyCtx& c) {
      auto phi = view2(c, "phi");
      auto phinew = view2(c, "phinew");
      const std::int64_t m = c.sym("m");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 1; i < m - 1; ++i) phi(i, j) = phinew(i, j);
    };
    outer.phases.push_back(Phase::make(std::move(copy)));
  }
  prog.phases.push_back(Phase::make(std::move(outer)));

  // Checksum over phi.
  {
    ParallelLoop sum;
    sum.name = "checksum";
    sum.dist = LoopVar{"j", AffineExpr(0), M - 1};
    sum.free.push_back(LoopVar{"i", AffineExpr(0), M - 1});
    sum.home_array = "phi";
    sum.home_sub = J;
    sum.reads = {{"phi", {I, J}}};
    sum.cost_per_iter_ns = costs::kReduceNs;
    sum.has_reduce = true;
    sum.reduce_scalar = "checksum";
    sum.body = [](BodyCtx& c) {
      auto phi = view2(c, "phi");
      const std::int64_t m = c.sym("m");
      const std::int64_t j = c.dist();
      double acc = 0.0;
      for (std::int64_t i = 0; i < m; ++i) acc += phi(i, j);
      c.contribute(acc);
    };
    prog.phases.push_back(Phase::make(std::move(sum)));
  }
  return prog;
}

}  // namespace fgdsm::apps
