// cg — conjugate gradient on the normal equations (CGNR) for a synthetic
// moderately ill-conditioned nrows x ncols system (Table 2: 180x360, converging in
// 630 iterations).
//
// Communication profile: the matrix is stored twice (at = A^T, ncols x
// nrows, distributed on A's rows; atr = A, nrows x ncols, distributed on
// A's columns), x and p are replicated, and each iteration all-gathers the
// two distributed vectors q (nrows) and w (ncols) — many small section
// transfers, which is exactly why the paper's cg is communication-bound and
// why its message-passing backend does poorly on it.
#include <cmath>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::ScalarPhase;
using hpf::TimeLoop;

namespace {
double a_elem(std::int64_t i, std::int64_t j, std::int64_t nr) {
  // Moderately ill-conditioned: banded dominant entries whose magnitude
  // varies by ~30x across rows, plus correlated off-band noise. CGNR needs
  // several hundred iterations — the paper's run converges in 630.
  double v = 0.10 * std::sin(0.017 * static_cast<double>(3 * i + 5 * j + 1));
  if (j % nr == i) v += 1.0;
  if ((j + 1) % nr == i) v += 0.45;
  // Geometric column scaling sets the condition number (~10^4.1), which
  // fixes the CGNR iteration count in the several-hundreds, like the
  // paper's 630-iteration run.
  return v * std::pow(10.0, -4.1 * static_cast<double>(j) /
                                static_cast<double>(2 * nr));
}
}  // namespace

Program cg(std::int64_t nrows, std::int64_t ncols, std::int64_t iters) {
  Program prog;
  prog.name = "cg";
  const AffineExpr NR = AffineExpr::sym("nr"), NC = AffineExpr::sym("nc");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j");
  // at(j,i) = A(i,j): ncols x nrows, distributed on i (rows of A).
  prog.arrays.push_back({"at", {NC, NR}, DistKind::kBlock});
  // atr(i,j) = A(i,j): nrows x ncols, distributed on j (columns of A).
  prog.arrays.push_back({"atr", {NR, NC}, DistKind::kBlock});
  prog.arrays.push_back({"q", {NR}, DistKind::kBlock});   // q = A p
  prog.arrays.push_back({"r", {NR}, DistKind::kBlock});   // residual
  prog.arrays.push_back({"w", {NC}, DistKind::kBlock});   // w = A^T r
  prog.arrays.push_back({"p", {NC}, DistKind::kReplicated});
  prog.arrays.push_back({"x", {NC}, DistKind::kReplicated});
  prog.sizes.set("nr", nrows);
  prog.sizes.set("nc", ncols);
  prog.sizes.set("iters", iters);

  // ---- Initialization ----
  {
    ParallelLoop init;
    init.name = "init-at";
    init.dist = LoopVar{"i", AffineExpr(0), NR - 1};
    init.free.push_back(LoopVar{"j", AffineExpr(0), NC - 1});
    init.home_array = "at";
    init.home_sub = I;
    init.writes = {{"at", {J, I}}, {"q", {I}}, {"r", {I}}};
    init.cost_per_iter_ns = costs::kInitNs;
    init.body = [](BodyCtx& c) {
      auto at = view2(c, "at");
      auto q = view1(c, "q");
      auto r = view1(c, "r");
      const std::int64_t nr = c.sym("nr"), nc = c.sym("nc");
      const std::int64_t i = c.dist();
      for (std::int64_t j = 0; j < nc; ++j) at(j, i) = a_elem(i, j, nr);
      q(i) = 0.0;
      r(i) = 1.0 + 0.01 * static_cast<double>(i % 7);  // b (x0 = 0)
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }
  {
    ParallelLoop init;
    init.name = "init-atr";
    init.dist = LoopVar{"j", AffineExpr(0), NC - 1};
    init.free.push_back(LoopVar{"i", AffineExpr(0), NR - 1});
    init.home_array = "atr";
    init.home_sub = J;
    init.writes = {{"atr", {I, J}}, {"w", {J}}};
    init.cost_per_iter_ns = costs::kInitNs;
    init.body = [](BodyCtx& c) {
      auto atr = view2(c, "atr");
      auto w = view1(c, "w");
      const std::int64_t nr = c.sym("nr");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < nr; ++i) atr(i, j) = a_elem(i, j, nr);
      w(j) = 0.0;
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }

  // w0 = A^T r0; rho0 = ||w0||^2; p0 = w0 (needs w gathered).
  ParallelLoop wloop;  // reused template: w = A^T r (reads all of r)
  {
    wloop.name = "w=At*r";
    wloop.dist = LoopVar{"j", AffineExpr(0), NC - 1};
    wloop.free.push_back(LoopVar{"i", AffineExpr(0), NR - 1});
    wloop.home_array = "w";
    wloop.home_sub = J;
    wloop.reads = {{"atr", {I, J}}, {"r", {I}}};
    wloop.writes = {{"w", {J}}};
    wloop.cost_per_iter_ns = costs::kCgMatvecNs;
    wloop.has_reduce = true;
    wloop.reduce_scalar = "rho";
    wloop.body = [](BodyCtx& c) {
      auto atr = view2(c, "atr");
      auto r = view1(c, "r");
      auto w = view1(c, "w");
      const std::int64_t nr = c.sym("nr");
      const std::int64_t j = c.dist();
      double acc = 0.0;
      for (std::int64_t i = 0; i < nr; ++i) acc += atr(i, j) * r(i);
      w(j) = acc;
      c.contribute(acc * acc);
    };
  }
  prog.phases.push_back(Phase::make(wloop));

  // p = w (+ beta p): reads ALL of w (all-gather), replicated computation.
  auto make_ploop = [&](bool first) {
    ParallelLoop pl;
    pl.name = first ? "p=w" : "p=w+beta*p";
    pl.dist = LoopVar{"j", AffineExpr(0), NC - 1};
    pl.comp = ParallelLoop::Comp::kOwnerComputes;
    pl.home_array = "p";  // replicated: every node runs every iteration
    pl.home_sub = J;
    pl.reads = {{"w", {J}}};
    pl.writes = {{"p", {J}}};
    pl.cost_per_iter_ns = costs::kCgVecNs;
    pl.body = [first](BodyCtx& c) {
      auto w = view1(c, "w");
      auto p = view1(c, "p");
      const std::int64_t j = c.dist();
      p(j) = first ? w(j) : w(j) + c.scalar("beta") * p(j);
    };
    return pl;
  };
  prog.phases.push_back(Phase::make(make_ploop(true)));

  // ---- Iteration ----
  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("iters");
  {
    // q = A p; contribute ||q||^2 (for alpha).
    ParallelLoop ql;
    ql.name = "q=A*p";
    ql.dist = LoopVar{"i", AffineExpr(0), NR - 1};
    ql.free.push_back(LoopVar{"j", AffineExpr(0), NC - 1});
    ql.home_array = "q";
    ql.home_sub = I;
    ql.reads = {{"at", {J, I}}, {"p", {J}}};
    ql.writes = {{"q", {I}}};
    ql.cost_per_iter_ns = costs::kCgMatvecNs;
    ql.has_reduce = true;
    ql.reduce_scalar = "qq";
    ql.body = [](BodyCtx& c) {
      auto at = view2(c, "at");
      auto p = view1(c, "p");
      auto q = view1(c, "q");
      const std::int64_t nc = c.sym("nc");
      const std::int64_t i = c.dist();
      double acc = 0.0;
      for (std::int64_t j = 0; j < nc; ++j) acc += at(j, i) * p(j);
      q(i) = acc;
      c.contribute(acc * acc);
    };
    tl.phases.push_back(Phase::make(std::move(ql)));
  }
  {
    ScalarPhase alpha;
    alpha.name = "alpha";
    alpha.body = [](BodyCtx& c) {
      const double qq = c.scalar("qq");
      c.set_scalar("alpha", qq > 0 ? c.scalar("rho") / qq : 0.0);
    };
    tl.phases.push_back(Phase::make(std::move(alpha)));
  }
  {
    // x += alpha p (replicated, local); r -= alpha q (aligned, local).
    ParallelLoop xl;
    xl.name = "x+=alpha*p";
    xl.dist = LoopVar{"j", AffineExpr(0), NC - 1};
    xl.home_array = "x";
    xl.home_sub = J;
    xl.reads = {{"p", {J}}};
    xl.writes = {{"x", {J}}};
    xl.cost_per_iter_ns = costs::kCgVecNs;
    xl.body = [](BodyCtx& c) {
      auto x = view1(c, "x");
      auto p = view1(c, "p");
      x(c.dist()) += c.scalar("alpha") * p(c.dist());
    };
    tl.phases.push_back(Phase::make(std::move(xl)));
  }
  {
    ParallelLoop rl;
    rl.name = "r-=alpha*q";
    rl.dist = LoopVar{"i", AffineExpr(0), NR - 1};
    rl.home_array = "r";
    rl.home_sub = I;
    rl.reads = {{"q", {I}}, {"r", {I}}};
    rl.writes = {{"r", {I}}};
    rl.cost_per_iter_ns = costs::kCgVecNs;
    rl.body = [](BodyCtx& c) {
      auto r = view1(c, "r");
      auto q = view1(c, "q");
      r(c.dist()) -= c.scalar("alpha") * q(c.dist());
    };
    tl.phases.push_back(Phase::make(std::move(rl)));
  }
  {
    // w = A^T r again; new rho.
    ParallelLoop wl = wloop;
    wl.reduce_scalar = "rho_new";
    tl.phases.push_back(Phase::make(std::move(wl)));
  }
  {
    ScalarPhase beta;
    beta.name = "beta";
    beta.body = [](BodyCtx& c) {
      const double rho = c.scalar("rho");
      c.set_scalar("beta", rho > 0 ? c.scalar("rho_new") / rho : 0.0);
      c.set_scalar("rho", c.scalar("rho_new"));
    };
    tl.phases.push_back(Phase::make(std::move(beta)));
  }
  tl.phases.push_back(Phase::make(make_ploop(false)));
  tl.exit_when = [](BodyCtx& c) { return c.scalar("rho") < 1e-18; };
  prog.phases.push_back(Phase::make(std::move(tl)));

  // Checksum: ||x||^2.
  {
    ParallelLoop sum;
    sum.name = "checksum";
    sum.dist = LoopVar{"j", AffineExpr(0), NC - 1};
    sum.home_array = "x";
    sum.home_sub = J;
    sum.reads = {{"x", {J}}};
    sum.cost_per_iter_ns = costs::kReduceNs;
    sum.has_reduce = true;
    sum.reduce_scalar = "checksum";
    sum.body = [](BodyCtx& c) {
      auto x = view1(c, "x");
      const std::int64_t j = c.dist();
      // Replicated x: every node contributes its slice only once — use the
      // block partition of j by node id to avoid double counting.
      const std::int64_t np = c.sym(hpf::kSymNProcs);
      const std::int64_t nc = c.sym("nc");
      const std::int64_t bsz = (nc + np - 1) / np;
      if (j / bsz == c.sym(hpf::kSymProc)) c.contribute(x(j) * x(j));
    };
    prog.phases.push_back(Phase::make(std::move(sum)));
  }
  return prog;
}

}  // namespace fgdsm::apps
