// lu — right-looking LU decomposition (no pivoting; the synthetic matrix is
// diagonally dominant) of an n x n matrix with CYCLIC column distribution
// (Table 2: 1024x1024).
//
// Each elimination step broadcasts the pivot column to every processor —
// the paper's one app where message passing beats shared memory. The
// broadcast column shrinks with k, so in late iterations the block-aligned
// inner subset vanishes and the edge effects limit the optimization (§6).
#include <cmath>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::TimeLoop;

Program lu(std::int64_t n) {
  Program prog;
  prog.name = "lu";
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j"),
                   K = AffineExpr::sym("k");
  prog.arrays.push_back({"a", {N, N}, DistKind::kCyclic});
  prog.sizes.set("n", n);

  {
    ParallelLoop init;
    init.name = "init";
    init.dist = LoopVar{"j", AffineExpr(0), N - 1};
    init.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    init.home_array = "a";
    init.home_sub = J;
    init.writes = {{"a", {I, J}}};
    init.cost_per_iter_ns = costs::kInitNs;
    init.body = [](BodyCtx& c) {
      auto a = view2(c, "a");
      const std::int64_t n = c.sym("n");
      const std::int64_t j = c.dist();
      for (std::int64_t i = 0; i < n; ++i) {
        a(i, j) = std::sin(0.013 * static_cast<double>(i * 7 + j * 3 + 1));
        if (i == j) a(i, j) += static_cast<double>(n);  // dominance
      }
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }

  TimeLoop tl;
  tl.counter = "k";
  tl.count = N - 1;

  // Scale the pivot column: a(i,k) /= a(k,k), i > k. Runs only on the
  // pivot column's owner.
  {
    ParallelLoop scale;
    scale.name = "scale";
    scale.dist = LoopVar{"j", K, K};  // the single column j == k
    scale.free.push_back(LoopVar{"i", K + 1, N - 1});
    scale.home_array = "a";
    scale.home_sub = J;
    scale.reads = {{"a", {I, J}}, {"a", {K, K}}};
    scale.writes = {{"a", {I, J}}};
    scale.cost_per_iter_ns = costs::kLuScaleNs;
    scale.body = [](BodyCtx& c) {
      auto a = view2(c, "a");
      const std::int64_t n = c.sym("n");
      const std::int64_t k = c.dist();  // == the column being scaled
      const double pivot = a(k, k);
      for (std::int64_t i = k + 1; i < n; ++i) a(i, k) /= pivot;
    };
    tl.phases.push_back(Phase::make(std::move(scale)));
  }

  // Trailing update: a(i,j) -= a(i,k) * a(k,j), i,j > k. Reads the pivot
  // column a(:,k) — broadcast from its owner to everyone.
  {
    ParallelLoop upd;
    upd.name = "update";
    upd.dist = LoopVar{"j", K + 1, N - 1};
    upd.free.push_back(LoopVar{"i", K + 1, N - 1});
    upd.home_array = "a";
    upd.home_sub = J;
    upd.reads = {{"a", {I, J}}, {"a", {I, K}}, {"a", {K, J}}};
    upd.writes = {{"a", {I, J}}};
    upd.cost_per_iter_ns = costs::kLuUpdateNs;
    upd.body = [](BodyCtx& c) {
      auto a = view2(c, "a");
      const std::int64_t n = c.sym("n");
      const std::int64_t k = c.sym("k");
      const std::int64_t j = c.dist();
      const double akj = a(k, j);
      for (std::int64_t i = k + 1; i < n; ++i) a(i, j) -= a(i, k) * akj;
    };
    tl.phases.push_back(Phase::make(std::move(upd)));
  }
  prog.phases.push_back(Phase::make(std::move(tl)));

  // Checksum: sum of log|diag(U)| (the log-determinant), plus a plain sum
  // of L+U entries.
  {
    ParallelLoop sum;
    sum.name = "checksum";
    sum.dist = LoopVar{"j", AffineExpr(0), N - 1};
    sum.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    sum.home_array = "a";
    sum.home_sub = J;
    sum.reads = {{"a", {I, J}}};
    sum.cost_per_iter_ns = costs::kReduceNs;
    sum.has_reduce = true;
    sum.reduce_scalar = "checksum";
    sum.body = [](BodyCtx& c) {
      auto a = view2(c, "a");
      const std::int64_t n = c.sym("n");
      const std::int64_t j = c.dist();
      double acc = std::log(std::abs(a(j, j)));
      for (std::int64_t i = 0; i < n; ++i) acc += 1e-6 * a(i, j);
      c.contribute(acc);
    };
    prog.phases.push_back(Phase::make(std::move(sum)));
  }
  return prog;
}

}  // namespace fgdsm::apps
