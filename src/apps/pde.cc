// pde — Genesis PDE1's RELAX routine: 3-D red/black relaxation of a Poisson
// problem on an n^3 grid, distributed on the last (plane) dimension
// (Table 2: grid size 128, 40 iterations, ~56 MB).
//
// Each half-sweep reads the two neighbouring planes (ghost planes): the
// compiler turns those into two whole-plane sender-initiated transfers per
// node per half-sweep — large contiguous sections, ideal for bulk transfer.
#include <cmath>

#include "src/apps/apps.h"
#include "src/apps/costs.h"

namespace fgdsm::apps {

using hpf::AffineExpr;
using hpf::BodyCtx;
using hpf::DistKind;
using hpf::LoopVar;
using hpf::ParallelLoop;
using hpf::Phase;
using hpf::Program;
using hpf::TimeLoop;

namespace {

ParallelLoop half_sweep(const char* name, int color) {
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j"),
                   K = AffineExpr::sym("k");
  ParallelLoop loop;
  loop.name = name;
  loop.dist = LoopVar{"k", AffineExpr(1), N - 2};
  loop.free.push_back(LoopVar{"i", AffineExpr(1), N - 2});
  loop.free.push_back(LoopVar{"j", AffineExpr(1), N - 2});
  loop.home_array = "u";
  loop.home_sub = K;
  loop.reads = {{"u", {I, J, K}},     {"u", {I - 1, J, K}},
                {"u", {I + 1, J, K}}, {"u", {I, J - 1, K}},
                {"u", {I, J + 1, K}}, {"u", {I, J, K - 1}},
                {"u", {I, J, K + 1}}, {"f", {I, J, K}}};
  loop.writes = {{"u", {I, J, K}}};
  // Half the points update per sweep; the cost constant reflects the full
  // masked traversal of the plane.
  loop.cost_per_iter_ns = costs::kPdeRelaxNs / 2.0;
  loop.body = [color](BodyCtx& c) {
    auto u = view3(c, "u");
    auto f = view3(c, "f");
    const std::int64_t n = c.sym("n");
    const std::int64_t k = c.dist();
    const double w = 1.15;  // over-relaxation
    for (std::int64_t j = 1; j < n - 1; ++j)
      for (std::int64_t i = 1; i < n - 1; ++i) {
        if (((i + j + k) & 1) != color) continue;
        const double nb = u(i - 1, j, k) + u(i + 1, j, k) + u(i, j - 1, k) +
                          u(i, j + 1, k) + u(i, j, k - 1) + u(i, j, k + 1);
        u(i, j, k) =
            (1.0 - w) * u(i, j, k) + w * (nb - f(i, j, k)) / 6.0;
      }
  };
  return loop;
}

}  // namespace

Program pde(std::int64_t n, std::int64_t iters) {
  Program prog;
  prog.name = "pde";
  const AffineExpr N = AffineExpr::sym("n");
  const AffineExpr I = AffineExpr::sym("i"), J = AffineExpr::sym("j"),
                   K = AffineExpr::sym("k");
  prog.arrays.push_back({"u", {N, N, N}, DistKind::kBlock});
  prog.arrays.push_back({"f", {N, N, N}, DistKind::kBlock});
  prog.arrays.push_back({"r", {N, N, N}, DistKind::kBlock});  // residual work
  prog.sizes.set("n", n);
  prog.sizes.set("iters", iters);

  {
    ParallelLoop init;
    init.name = "init";
    init.dist = LoopVar{"k", AffineExpr(0), N - 1};
    init.free.push_back(LoopVar{"i", AffineExpr(0), N - 1});
    init.free.push_back(LoopVar{"j", AffineExpr(0), N - 1});
    init.home_array = "u";
    init.home_sub = K;
    init.writes = {{"u", {I, J, K}}, {"f", {I, J, K}}, {"r", {I, J, K}}};
    init.cost_per_iter_ns = costs::kInitNs;
    init.body = [](BodyCtx& c) {
      auto u = view3(c, "u");
      auto f = view3(c, "f");
      auto r = view3(c, "r");
      const std::int64_t n = c.sym("n");
      const std::int64_t k = c.dist();
      for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < n; ++i) {
          const bool bnd = i == 0 || j == 0 || k == 0 || i == n - 1 ||
                           j == n - 1 || k == n - 1;
          u(i, j, k) =
              bnd ? std::cos(0.37 * static_cast<double>(i + j + k)) : 0.0;
          f(i, j, k) = 1e-3 * std::sin(0.11 * static_cast<double>(i - j + k));
          r(i, j, k) = 0.0;
        }
    };
    prog.phases.push_back(Phase::make(std::move(init)));
  }

  TimeLoop tl;
  tl.counter = "t";
  tl.count = AffineExpr::sym("iters");
  tl.phases.push_back(Phase::make(half_sweep("relax-red", 0)));
  tl.phases.push_back(Phase::make(half_sweep("relax-black", 1)));
  prog.phases.push_back(Phase::make(std::move(tl)));

  // Residual norm (the RELAX driver's convergence quantity).
  {
    ParallelLoop res;
    res.name = "residual";
    res.dist = LoopVar{"k", AffineExpr(1), N - 2};
    res.free.push_back(LoopVar{"i", AffineExpr(1), N - 2});
    res.free.push_back(LoopVar{"j", AffineExpr(1), N - 2});
    res.home_array = "u";
    res.home_sub = K;
    res.reads = {{"u", {I, J, K}},     {"u", {I - 1, J, K}},
                 {"u", {I + 1, J, K}}, {"u", {I, J - 1, K}},
                 {"u", {I, J + 1, K}}, {"u", {I, J, K - 1}},
                 {"u", {I, J, K + 1}}, {"f", {I, J, K}}};
    res.writes = {{"r", {I, J, K}}};
    res.cost_per_iter_ns = costs::kPdeRelaxNs / 2.0;
    res.has_reduce = true;
    res.reduce_scalar = "residual";
    res.body = [](BodyCtx& c) {
      auto u = view3(c, "u");
      auto f = view3(c, "f");
      auto r = view3(c, "r");
      const std::int64_t n = c.sym("n");
      const std::int64_t k = c.dist();
      double acc = 0.0;
      for (std::int64_t j = 1; j < n - 1; ++j)
        for (std::int64_t i = 1; i < n - 1; ++i) {
          const double nb = u(i - 1, j, k) + u(i + 1, j, k) +
                            u(i, j - 1, k) + u(i, j + 1, k) +
                            u(i, j, k - 1) + u(i, j, k + 1);
          const double res_ijk = nb - 6.0 * u(i, j, k) - f(i, j, k);
          r(i, j, k) = res_ijk;
          acc += res_ijk * res_ijk;
        }
      c.contribute(acc);
    };
    prog.phases.push_back(Phase::make(std::move(res)));
  }
  return prog;
}

}  // namespace fgdsm::apps
