// Per-kernel compute-cost calibration (virtual ns per innermost iteration).
//
// Targets: the per-node compute times of the paper's Table 3 at full
// problem size on 8 nodes, for a 66 MHz HyperSPARC (~15 ns/cycle):
//
//   app      Table 3 compute   work/node (full size)        implied ns/elem
//   jacobi   31   s            2048^2/8 els x 100 sweeps      ~ 590
//   pde      33.6 s            128^3/8 els x 40 iters         ~ 3200*
//   shallow  35.2 s            1025x513/8 els x 100 x ~9 lp   ~ 53/loop-el
//   grav     12.0 s            129^2(x129)/8 x 5 iters        (reduction heavy)
//   lu       51.1 s            (2/3)1024^3 / 8 flop-pairs     ~ 5.7/el-update
//   cg       13.6 s            2x180x360/8 els x 630 iters    ~ 1330/matvec-row
//
// (*) pde's RELAX does a 7-point double-precision update with red/black
// masking; the Genesis kernel also recomputes residuals, hence the higher
// per-element cost.
#pragma once

namespace fgdsm::apps::costs {

inline constexpr double kInitNs = 120.0;    // cheap init stores
inline constexpr double kReduceNs = 60.0;   // sum/accumulate per element

inline constexpr double kJacobiSweepNs = 590.0;
inline constexpr double kPdeRelaxNs = 3300.0;   // per red/black half-sweep el
inline constexpr double kShallowLoopNs = 420.0;  // per element per loop
inline constexpr double kGravRelaxNs = 700.0;
// grav's moment rounds carry real math per point (the paper's grav computes
// 12 s/node over 5 iterations, dominated by these reduction rounds).
inline constexpr double kGravMomentNs = 4000.0;
inline constexpr double kLuUpdateNs = 90.0;      // per (i,j) update
inline constexpr double kLuScaleNs = 120.0;      // pivot column scaling
inline constexpr double kCgMatvecNs = 95.0;      // per a(i,j) mac
inline constexpr double kCgVecNs = 70.0;         // per vector element

}  // namespace fgdsm::apps::costs
