// The executor: runs a compiled hpf::Program on the simulated cluster under
// any configuration (serial / transparent shared memory / compiler-directed
// coherence at each optimization level / message passing).
//
// Direct-execution style: loop bodies run natively on each node's backing of
// the shared segment, while the executor performs the compiled-in
// block-granular access checks over each chunk's declared footprint
// (coalesced checks — the per-block state test is free on the paper's
// hardware-assisted platform; only faults enter protocol software) and
// charges the compute cost model. In the optimized modes it first executes
// the planner's Figure-2 call schedule around every loop.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/hpf/ir.h"
#include "src/tempest/config.h"
#include "src/util/stats.h"

namespace fgdsm::exec {

struct RunConfig {
  tempest::ClusterConfig cluster;  // nodes, block size, dual-cpu, costs
  core::Options opt;
  hpf::Bindings size_overrides;    // overrides the program's default sizes
  // Verification support: after the timed run, gather every array's
  // authoritative contents (through the protocol itself in shared-memory
  // modes). Costs host time; benches leave it off and compare checksums
  // computed by the programs themselves.
  bool gather_arrays = false;
  // Event tracing: when non-empty, record spans and message flows during the
  // run and write Chrome trace_event JSON to this path. Tracing is passive
  // (no virtual-time charges): a traced run is bit-identical to an untraced
  // one.
  std::string trace_path;
};

struct RunResult {
  util::RunStats stats;            // snapshot at program completion
  std::map<std::string, std::vector<double>> arrays;  // if gathered
  std::map<std::string, double> scalars;              // final (node 0)
  // Host-side throughput accounting (bench_selfperf): how many engine
  // events the run processed. Deterministic (a simulated quantity), but
  // deliberately kept out of the fgdsm-bench-v1 JSON schema.
  std::uint64_t engine_events = 0;
  double elapsed_seconds() const {
    return static_cast<double>(stats.elapsed_ns) / 1e9;
  }
};

// Reentrant: a run is a self-contained value (engine + cluster + executor
// state all live on this call's stack/heap; see src/sim/engine.h for the
// invariant), so concurrent calls from different host threads are safe and
// bit-identical to sequential execution. exec::BatchRunner builds on this.
RunResult run(const hpf::Program& prog, RunConfig cfg);

}  // namespace fgdsm::exec
