// Host-parallel execution of independent experiments.
//
// A simulation run (exec::run) is a fully self-contained value — the
// engine/cluster/executor stack holds no process-global mutable state (see
// src/sim/engine.h), so independent runs may execute concurrently on
// separate host threads. BatchRunner exploits that: it fans a list of
// ExperimentSpecs out over a std::thread pool and returns results in spec
// order, byte-identical to running the same specs sequentially (each run is
// internally deterministic; threads only choose *which* runs overlap in
// wall-clock time, never how any one of them unfolds).
#pragma once

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/hpf/ir.h"

namespace fgdsm::exec {

// One experiment: a compiled program plus the configuration to run it
// under. The program is shared (not copied) across specs — hpf::Program is
// immutable during execution — so a sweep of one app across many
// configurations stores it once.
struct ExperimentSpec {
  const hpf::Program* program = nullptr;
  RunConfig config;
  std::string label;  // for reporting; not interpreted
};

class BatchRunner {
 public:
  // jobs <= 1 runs inline on the calling thread (no pool). jobs == 0 is
  // treated as 1.
  explicit BatchRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  // Executes every spec and returns results in the same order as `specs`.
  // If any run throws, the remaining queued specs still execute and the
  // first failure (in spec order) is rethrown after the pool drains.
  std::vector<RunResult> run_all(const std::vector<ExperimentSpec>& specs);

 private:
  int jobs_;
};

}  // namespace fgdsm::exec
