#include "src/exec/batch.h"

#include <atomic>
#include <exception>
#include <thread>

#include "src/sim/host_budget.h"
#include "src/util/assert.h"

namespace fgdsm::exec {

BatchRunner::BatchRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

std::vector<RunResult> BatchRunner::run_all(
    const std::vector<ExperimentSpec>& specs) {
  const std::size_t n = specs.size();
  std::vector<RunResult> results(n);
  std::vector<std::exception_ptr> errors(n);

  auto run_one = [&](std::size_t i) {
    FGDSM_ASSERT_MSG(specs[i].program != nullptr,
                     "ExperimentSpec '" << specs[i].label
                                        << "' has no program");
    try {
      results[i] = run(*specs[i].program, specs[i].config);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  // Batch-level and sim-level parallelism (--jobs × --sim-threads) share
  // one process-wide core budget: extra batch workers beyond the caller's
  // own thread are taken from sim::HostBudget, and each simulation's engine
  // draws its worker crew from the same pool. Thread counts never affect
  // results — the clamp only changes wall time.
  std::size_t workers =
      static_cast<std::size_t>(jobs_) < n ? static_cast<std::size_t>(jobs_)
                                          : n;
  int granted = 0;
  if (workers > 1) {
    granted = sim::HostBudget::instance().acquire(
        static_cast<int>(workers) - 1);
    workers = static_cast<std::size_t>(1 + granted);
  }
  struct BudgetGuard {
    int tokens;
    ~BudgetGuard() {
      if (tokens > 0) sim::HostBudget::instance().release(tokens);
    }
  } budget_guard{granted};
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Dynamic work-stealing over a shared index: spec runtimes vary by
    // orders of magnitude (serial 1-node vs 8-node unopt), so static
    // striping would leave threads idle.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  return results;
}

}  // namespace fgdsm::exec
