#include "src/exec/batch.h"

#include <atomic>
#include <exception>
#include <thread>

#include "src/util/assert.h"

namespace fgdsm::exec {

BatchRunner::BatchRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

std::vector<RunResult> BatchRunner::run_all(
    const std::vector<ExperimentSpec>& specs) {
  const std::size_t n = specs.size();
  std::vector<RunResult> results(n);
  std::vector<std::exception_ptr> errors(n);

  auto run_one = [&](std::size_t i) {
    FGDSM_ASSERT_MSG(specs[i].program != nullptr,
                     "ExperimentSpec '" << specs[i].label
                                        << "' has no program");
    try {
      results[i] = run(*specs[i].program, specs[i].config);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const std::size_t workers =
      static_cast<std::size_t>(jobs_) < n ? static_cast<std::size_t>(jobs_)
                                          : n;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Dynamic work-stealing over a shared index: spec runtimes vary by
    // orders of magnitude (serial 1-node vs 8-node unopt), so static
    // striping would leave threads idle.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  return results;
}

}  // namespace fgdsm::exec
