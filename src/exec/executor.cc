#include "src/exec/executor.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <set>

#include "src/core/plan.h"
#include "src/core/plan_cache.h"
#include "src/hpf/analysis.h"
#include "src/irreg/inspector.h"
#include "src/irreg/runtime.h"
#include "src/mp/runtime.h"
#include "src/proto/stache.h"
#include "src/sim/trace.h"
#include "src/tempest/cluster.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace fgdsm::exec {
namespace {

using core::CommPlan;
using core::Mode;
using hpf::Bindings;
using hpf::ConcreteInterval;
using hpf::ConcreteSection;
using hpf::GAddr;
using hpf::Run;
using tempest::BlockId;
using tempest::Node;

bool transfer_eq(const hpf::Transfer& a, const hpf::Transfer& b) {
  return a.array == b.array && a.sender == b.sender &&
         a.receiver == b.receiver && a.for_write == b.for_write &&
         a.section == b.section;
}
bool transfers_eq(const std::vector<hpf::Transfer>& a,
                  const std::vector<hpf::Transfer>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!transfer_eq(a[i], b[i])) return false;
  return true;
}

// Per-node execution state.
struct NodeRun {
  Node* node = nullptr;
  sim::Task* task = nullptr;
  Bindings bind;  // sizes + $p/$np + live time-loop counters
  std::map<std::string, double> scalars;
  double reduce_acc = 0.0;

  // §4.3 run-time overhead elimination: ranges already opened by
  // implicit_writable, per loop (first-time-only fast path).
  std::map<const hpf::ParallelLoop*, std::vector<Run>> opened;

  // Redundant-communication elimination (extension): per-array write
  // versions and the last communicated transfer set per loop.
  std::map<std::string, std::int64_t> write_version;
  struct AvailEntry {
    std::map<std::string, std::int64_t> versions;  // per array at comm time
    std::vector<hpf::Transfer> transfers;
  };
  std::map<const hpf::ParallelLoop*, AvailEntry> avail;

  // Communication-schedule cache across loop visits (core::PlanCache):
  // iterative apps re-run the same loops every timestep with unchanged
  // structural symbols, so analysis + planning runs once per loop.
  core::PlanCache plan_cache;

  // The plan for the loop currently executing. This lives here — not as an
  // exec_loop_inner stack local — because checkpoint capture copies raw
  // fiber-stack bytes: a heap-owning local that is live at a checkpoint
  // barrier would come back as dangling pointers after a rollback (the
  // abandoned timeline frees its heap before the restore). The fiber keeps
  // only a reference to this member; the checkpoint restores its value.
  CommPlan cur_plan;

  // Per-parallel-loop counter deltas, accumulated at phase boundaries.
  std::map<std::string, util::NodeStats> loop_stats;

  // Hot-path scratch, reused across chunks and timesteps so the steady
  // state allocates nothing: inspector need-list temporaries (spmv
  // re-inspects every step) and chunk-footprint evaluation temporaries.
  irreg::ScanScratch irreg_scratch;
  hpf::FootprintScratch fp_scratch;
  hpf::ConcreteSection fp_section;

  util::NodeStats snap;      // stats at program completion
  sim::Time snap_time = 0;
};

// Host state a checkpoint must carry for one node (see the hook registered
// in the Executor ctor): everything the replayed program path reads,
// including the in-flight plan and the elision registries (opened ranges,
// availability) — restored by value so the deterministic replay makes
// exactly the decisions the checkpointed timeline would have, keeping the
// collective any_comm/any_flush choices aligned with the rolled-back tags.
// The plan cache is deliberately NOT touched at restore: it is pure
// memoization of a deterministic analysis (either path yields byte-identical
// plans), so entries from the abandoned timeline stay valid.
struct NodeRunSnap {
  Bindings bind;
  std::map<std::string, double> scalars;
  double reduce_acc = 0.0;
  std::map<std::string, std::int64_t> write_version;
  std::map<const hpf::ParallelLoop*, std::vector<Run>> opened;
  std::map<const hpf::ParallelLoop*, NodeRun::AvailEntry> avail;
  CommPlan cur_plan;
};

class ExecCtx final : public hpf::BodyCtx {
 public:
  ExecCtx(NodeRun& st, const core::LayoutMap& layouts, std::int64_t dist)
      : st_(st), layouts_(layouts), dist_(dist) {}

  std::int64_t dist() const override { return dist_; }
  std::int64_t sym(const std::string& name) const override {
    return st_.bind.get(name);
  }
  double scalar(const std::string& name) const override {
    auto it = st_.scalars.find(name);
    FGDSM_ASSERT_MSG(it != st_.scalars.end(), "unknown scalar " << name);
    return it->second;
  }
  void set_scalar(const std::string& name, double v) override {
    st_.scalars[name] = v;
  }
  void contribute(double v) override { st_.reduce_acc += v; }
  double* data(const std::string& array) override {
    return reinterpret_cast<double*>(
        st_.node->mem(layouts_.at(array).base));
  }
  const hpf::ArrayLayout& layout(const std::string& array) const override {
    return layouts_.at(array);
  }

 private:
  NodeRun& st_;
  const core::LayoutMap& layouts_;
  std::int64_t dist_;
};

class Executor {
 public:
  Executor(const hpf::Program& prog, RunConfig cfg)
      : prog_(prog), cfg_(std::move(cfg)), cluster_([&] {
          tempest::ClusterConfig c = cfg_.cluster;
          if (cfg_.opt.mode == Mode::kSerial) c.nnodes = 1;
          if (!cfg_.trace_path.empty()) {
            tracer_ = std::make_unique<sim::Tracer>();
            c.tracer = tracer_.get();
          }
          return c;
        }()) {
    FGDSM_ASSERT_MSG(!cfg_.opt.elim_redundant_comm ||
                         cfg_.opt.rt_overhead_elim,
                     "redundant-communication elimination requires the "
                     "run-time overhead elimination level");
    // Bind sizes: program defaults overridden by the config.
    base_bind_ = prog_.sizes;
    // (Bindings has no iteration; apply overrides by name when evaluating —
    // instead we just overlay: overrides win.)
    // Allocate arrays.
    for (const auto& a : prog_.arrays) {
      hpf::ArrayLayout lay;
      lay.name = a.name;
      for (const auto& e : a.extents) lay.extents.push_back(e.eval(bind0()));
      lay.elem = 8;
      lay.base = cluster_.allocate(a.name, lay.bytes());
      layouts_[a.name] = lay;
      // Storage the coherence tags cannot account for must be checkpointed
      // unconditionally: replicated arrays are per-node private copies in
      // every mode, and the MP backend bypasses access control for all of
      // its arrays (each node's local copy is its own ground truth).
      if (a.dist == hpf::DistKind::kReplicated ||
          cfg_.opt.mode == Mode::kMsgPassing)
        cluster_.capture_always(lay.base, lay.bytes());
    }
    switch (cfg_.opt.mode) {
      case Mode::kShmemUnopt:
      case Mode::kShmemOpt:
        stache_ = std::make_unique<proto::Stache>(cluster_);
        break;
      case Mode::kMsgPassing:
        mp_ = std::make_unique<mp::MpRuntime>(cluster_);
        break;
      case Mode::kSerial:
        break;
    }
    // Inspector–executor runtime: only the planned modes inspect (the
    // default protocol and the serial interpreter handle indirection
    // transparently), and only programs with indirect reads need it.
    if ((cfg_.opt.mode == Mode::kShmemOpt ||
         cfg_.opt.mode == Mode::kMsgPassing) &&
        irreg::has_indirect(prog_))
      irreg_ = std::make_unique<irreg::IrregRuntime>(cluster_);
    nodes_.resize(static_cast<std::size_t>(cluster_.nnodes()));
    // Crash recovery: the cluster checkpoint covers node memory, tags and
    // task fibers, but the executor keeps per-node interpreter state on the
    // host. The initial t=0 capture sees default-constructed NodeRuns —
    // consistent with its not-yet-activated task snapshots (node_main
    // re-initializes both on replay).
    cluster_.register_host_state_hook(
        {[this]() -> std::shared_ptr<void> {
           auto blob = std::make_shared<std::vector<NodeRunSnap>>();
           blob->reserve(nodes_.size());
           for (const NodeRun& st : nodes_)
             blob->push_back({st.bind, st.scalars, st.reduce_acc,
                              st.write_version, st.opened, st.avail,
                              st.cur_plan});
           return blob;
         },
         [this](const std::shared_ptr<void>& b) {
           const auto& snap =
               *std::static_pointer_cast<std::vector<NodeRunSnap>>(b);
           for (std::size_t i = 0; i < nodes_.size(); ++i) {
             NodeRun& st = nodes_[i];
             st.bind = snap[i].bind;
             st.scalars = snap[i].scalars;
             st.reduce_acc = snap[i].reduce_acc;
             st.write_version = snap[i].write_version;
             st.opened = snap[i].opened;
             st.avail = snap[i].avail;
             st.cur_plan = snap[i].cur_plan;
           }
         }});
  }

  RunResult execute() {
    cluster_.run([this](Node& n, sim::Task& t) { node_main(n, t); });
    RunResult res;
    res.stats = util::RunStats(cluster_.nnodes());
    for (int i = 0; i < cluster_.nnodes(); ++i) {
      res.stats.node[static_cast<std::size_t>(i)] =
          nodes_[static_cast<std::size_t>(i)].snap;
      res.stats.elapsed_ns =
          std::max(res.stats.elapsed_ns,
                   nodes_[static_cast<std::size_t>(i)].snap_time);
    }
    res.scalars = nodes_[0].scalars;
    res.engine_events = cluster_.engine().events_processed();
    for (const auto& nr : nodes_)
      for (const auto& [name, delta] : nr.loop_stats)
        res.stats.per_loop[name] += delta;
    if (cfg_.gather_arrays) gather_into(res);
    if (tracer_) tracer_->write_file(cfg_.trace_path);
    return res;
  }

 private:
  Bindings bind0() const {
    Bindings b = prog_.sizes;
    // Overlay overrides (overrides win; Bindings::set replaces).
    overlay(b, cfg_.size_overrides);
    b.set(hpf::kSymNProcs, cluster_.nnodes());
    b.set(hpf::kSymProc, 0);
    return b;
  }
  static void overlay(Bindings& dst, const Bindings& src) {
    for (const auto& [k, v] : src.values()) dst.set(k, v);
  }

  bool shmem() const {
    return cfg_.opt.mode == Mode::kShmemUnopt ||
           cfg_.opt.mode == Mode::kShmemOpt;
  }

  void node_main(Node& n, sim::Task& t) {
    NodeRun& st = nodes_[static_cast<std::size_t>(n.id())];
    st.node = &n;
    st.task = &t;
    st.bind = bind0();
    st.bind.set(hpf::kSymProc, n.id());
    st.plan_cache.set_give_up_after(cfg_.opt.plan_cache_misses);
    exec_phases(prog_.phases, st);
    n.barrier(t);
    st.snap = n.stats;
    st.snap.plan_cache_hits = st.plan_cache.hits();
    st.snap.plan_cache_misses = st.plan_cache.misses();
    st.snap_time = t.now();
    if (cfg_.gather_arrays && shmem()) gather_owned(st);
  }

  void exec_phases(const std::vector<hpf::Phase>& phases, NodeRun& st) {
    for (const auto& ph : phases) {
      switch (ph.kind) {
        case hpf::Phase::Kind::kParallelLoop:
          exec_loop(*ph.loop, st);
          break;
        case hpf::Phase::Kind::kScalar:
          exec_scalar(*ph.scalar, st);
          break;
        case hpf::Phase::Kind::kTimeLoop:
          exec_time(*ph.time, st);
          break;
      }
    }
  }

  void exec_scalar(const hpf::ScalarPhase& sp, NodeRun& st) {
    ExecCtx ctx(st, layouts_, /*dist=*/0);
    sp.body(ctx);
    st.task->charge(static_cast<sim::Time>(sp.cost_ns));
    st.node->stats.compute_ns += static_cast<sim::Time>(sp.cost_ns);
  }

  void exec_time(const hpf::TimeLoop& tl, NodeRun& st) {
    const std::int64_t count = tl.count.eval(st.bind);
    for (std::int64_t it = 0; it < count; ++it) {
      st.bind.set(tl.counter, it);
      exec_phases(tl.phases, st);
      if (tl.exit_when) {
        ExecCtx ctx(st, layouts_, 0);
        if (tl.exit_when(ctx)) break;
      }
    }
  }

  // ---- The heart: one parallel loop under the configured mode ----
  void exec_loop(const hpf::ParallelLoop& loop, NodeRun& st) {
    const util::NodeStats before = st.node->stats;
    const sim::Time lt0 = st.task->now();
    exec_loop_inner(loop, st);
    util::NodeStats delta = st.node->stats;
    delta -= before;
    st.loop_stats[loop.name] += delta;
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(st.node->id()), "loop",
               tr->intern(loop.name),
               lt0, st.task->now());
  }

  void exec_loop_inner(const hpf::ParallelLoop& loop, NodeRun& st) {
    Node& n = *st.node;
    sim::Task& t = *st.task;
    FGDSM_LOG("exec", "node " << n.id() << " loop " << loop.name << " t="
                              << t.now());
    const int np = cluster_.nnodes();
    const ConcreteInterval iters =
        hpf::local_iters(loop, prog_, st.bind, np, n.id());

    if (cfg_.opt.mode == Mode::kSerial) {
      run_chunks(loop, st, iters, /*checks=*/false,
                 cluster_.costs().uni_cache_penalty);
      finish_reduce_and_sync(loop, st, /*need_barrier=*/false);
      bump_versions(loop, st);
      return;
    }

    const bool irregular = irreg::has_indirect(loop);
    // Host-resident plan (see NodeRun::cur_plan): the fiber stack must not
    // own heap across the checkpoint barriers below.
    CommPlan& plan = st.cur_plan;
    plan = CommPlan{};
    if (cfg_.opt.mode == Mode::kShmemOpt || cfg_.opt.mode == Mode::kMsgPassing)
      plan = irregular ? plan_for_irreg_loop(loop, st)
                       : plan_for_loop(loop, st);

    // Executor half of the inspector–executor pair: replaying the
    // materialized schedule is the ordinary prologue/epilogue below, traced
    // separately so schedule replay is attributable against inspection.
    const sim::Time sched0 = t.now();
    if (cfg_.opt.mode == Mode::kShmemOpt && plan.any_comm)
      ccc_prologue(loop, plan, st);
    if (cfg_.opt.mode == Mode::kMsgPassing && plan.any_comm)
      mp_prologue(plan, st);
    if (irregular && plan.any_comm)
      if (auto* tr = cluster_.tracer())
        tr->span(sim::Tracer::compute_track(n.id()), "schedule-exec",
                 tr->intern(loop.name), sched0, t.now());

    run_chunks(loop, st, iters, /*checks=*/shmem(), 1.0);

    if (cfg_.opt.mode == Mode::kShmemOpt && plan.any_comm)
      ccc_epilogue(loop, plan, st);
    if (cfg_.opt.mode == Mode::kMsgPassing && plan.any_comm)
      mp_epilogue(plan, st);

    // End-of-loop synchronization: the reduction is itself synchronizing;
    // otherwise a barrier separates this loop's writes from the next loop's
    // reads. The MP backend self-synchronizes through its receives.
    finish_reduce_and_sync(loop, st,
                           cfg_.opt.mode != Mode::kMsgPassing);
    bump_versions(loop, st);
  }

  void finish_reduce_and_sync(const hpf::ParallelLoop& loop, NodeRun& st,
                              bool need_barrier) {
    if (loop.has_reduce) {
      tempest::Node::ReduceOp op = tempest::Node::ReduceOp::kSum;
      if (loop.reduce_op == hpf::ReduceOp::kMax)
        op = tempest::Node::ReduceOp::kMax;
      if (loop.reduce_op == hpf::ReduceOp::kMin)
        op = tempest::Node::ReduceOp::kMin;
      st.scalars[loop.reduce_scalar] =
          st.node->allreduce(*st.task, st.reduce_acc, op);
      st.reduce_acc = 0.0;
    } else if (need_barrier) {
      st.node->barrier(*st.task);
    }
  }

  void bump_versions(const hpf::ParallelLoop& loop, NodeRun& st) {
    for (const auto& w : loop.writes) ++st.write_version[w.array];
  }

  // The plan for this visit of `loop`. With the cache enabled, the
  // unfiltered analysis + plan is computed once per (loop, structural-symbol
  // values) and reused; availability filtering (elim_redundant_comm) is
  // re-applied on every visit on top of the cached transfer set, since it
  // depends on the live write versions. Either path yields byte-identical
  // plans: the analysis is a pure function of the key symbols, and the
  // filter elides all-or-nothing (an elided visit's plan is exactly
  // plan_from_transfers({}) == CommPlan{}).
  CommPlan plan_for_loop(const hpf::ParallelLoop& loop, NodeRun& st) {
    const int np = cluster_.nnodes();
    const std::size_t bs = cluster_.block_size();
    const bool align = cfg_.opt.mode == Mode::kShmemOpt;
    const int me = st.node->id();

    if (!cfg_.opt.plan_cache) {
      auto transfers = hpf::analyze_transfers(loop, prog_, st.bind, np);
      if (cfg_.opt.elim_redundant_comm)
        transfers = filter_available(loop, st, std::move(transfers));
      return core::plan_from_transfers(transfers, layouts_, me, bs, align);
    }

    const core::PlanCache::Entry* e =
        st.plan_cache.lookup(loop, prog_, st.bind);
    if (e != nullptr) {
      if (!cfg_.opt.elim_redundant_comm) return e->plan;
      const std::vector<hpf::Transfer> filtered =
          filter_available(loop, st, e->transfers);
      if (filtered.empty() && !e->transfers.empty()) return CommPlan{};
      return e->plan;
    }
    // Miss: build fresh, store a copy for future hits (unless the cache has
    // given up on this loop), and return the local plan without copying.
    auto transfers = hpf::analyze_transfers(loop, prog_, st.bind, np);
    CommPlan plan =
        core::plan_from_transfers(transfers, layouts_, me, bs, align);
    bool elide = false;
    if (cfg_.opt.elim_redundant_comm)
      elide = filter_available(loop, st, transfers).empty() &&
              !transfers.empty();
    if (st.plan_cache.should_store(loop))
      st.plan_cache.insert(loop, prog_, st.bind, std::move(transfers), plan);
    if (elide) return CommPlan{};
    return plan;
  }

  // The plan for a loop with indirect reads. The affine analysis still
  // covers the loop's direct references (including the indirection arrays
  // themselves); the inspector contributes the data-dependent gather set:
  // scan the local index slice, exchange need lists, fold the identical
  // global set into transfers on every node, and lower the union.
  //
  // The schedule is cached keyed on the indirection arrays' write versions
  // (bumped identically on every node by bump_versions), so iterative apps
  // inspect once and replay — the CHAOS/PARTI amortization. Hits and misses
  // are symmetric cluster-wide (same versions, same symbols, same give-up
  // threshold), which keeps the collective exchange() calls aligned.
  //
  // Availability filtering (elim_redundant_comm) is deliberately not
  // applied: its transfer-set equality test would have to re-run the
  // inspector to produce the set it compares, defeating the elision.
  CommPlan plan_for_irreg_loop(const hpf::ParallelLoop& loop, NodeRun& st) {
    const int np = cluster_.nnodes();
    const std::size_t bs = cluster_.block_size();
    const bool align = cfg_.opt.mode == Mode::kShmemOpt;
    const int me = st.node->id();
    Node& n = *st.node;
    sim::Task& t = *st.task;

    std::vector<std::int64_t> extra;
    {
      std::set<std::string> idx;
      for (const auto& ir : loop.ind_reads) idx.insert(ir.index_array);
      for (const auto& name : idx) extra.push_back(st.write_version[name]);
    }

    if (cfg_.opt.plan_cache) {
      const core::PlanCache::Entry* e =
          st.plan_cache.lookup(loop, prog_, st.bind, extra);
      if (e != nullptr) {
        ++n.stats.sched_cache_hits;
        return e->plan;
      }
      ++n.stats.sched_cache_misses;
    }

    ++n.stats.irreg_inspections;
    const sim::Time t0 = t.now();
    irreg::ScanResult sr =
        irreg::scan(loop, prog_, st.bind, layouts_, np, n, t,
                    /*ensure_index=*/shmem(), &st.irreg_scratch);
    const std::vector<std::vector<irreg::Need>> all =
        irreg_->exchange(n, t, std::move(sr.needs));
    auto transfers = hpf::analyze_transfers(loop, prog_, st.bind, np);
    auto gathers = irreg::needs_to_transfers(all, loop, prog_, st.bind, np);
    transfers.insert(transfers.end(),
                     std::make_move_iterator(gathers.begin()),
                     std::make_move_iterator(gathers.end()));
    CommPlan plan =
        core::plan_from_transfers(transfers, layouts_, me, bs, align);
    n.stats.ccc_ns += t.now() - t0;
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(me), "inspect",
               tr->intern(loop.name), t0, t.now());
    if (cfg_.opt.plan_cache && st.plan_cache.should_store(loop))
      st.plan_cache.insert(loop, prog_, st.bind, std::move(transfers), plan,
                           extra);
    return plan;
  }

  std::vector<hpf::Transfer> filter_available(
      const hpf::ParallelLoop& loop, NodeRun& st,
      std::vector<hpf::Transfer> transfers) {
    // Availability (PRE-style, §4.3's second problem): if this loop's
    // transfer set is identical to the last one communicated here and none
    // of the involved arrays has been written since, the data is still
    // valid at the receivers (requires rt_overhead_elim: receivers keep
    // their copies open).
    auto it = st.avail.find(&loop);
    bool skip = it != st.avail.end() &&
                transfers_eq(it->second.transfers, transfers);
    if (skip) {
      for (const auto& tr : transfers) {
        auto vit = it->second.versions.find(tr.array);
        if (vit == it->second.versions.end() ||
            vit->second != st.write_version[tr.array]) {
          skip = false;
          break;
        }
      }
    }
    if (skip) {
      st.node->stats.ccc_calls_elided += transfers.size();
      return {};
    }
    NodeRun::AvailEntry e;
    e.transfers = transfers;
    for (const auto& tr : transfers)
      e.versions[tr.array] = st.write_version[tr.array];
    st.avail[&loop] = std::move(e);
    return transfers;
  }

  // ---- Compiler-directed coherence (Figure 2 call sequence) ----

  void ccc_prologue(const hpf::ParallelLoop& loop, const CommPlan& plan,
                    NodeRun& st) {
    Node& n = *st.node;
    sim::Task& t = *st.task;
    proto::Stache& p = *stache_;
    const std::size_t bs = cluster_.block_size();
    const std::size_t payload =
        cfg_.opt.bulk_transfer ? cfg_.opt.max_payload : bs;
    const sim::Time p0 = t.now();

    // CCC calls happen only after pending transactions complete (§5).
    sim::Time t0 = t.now();
    p.drain(n, t);

    if (!cfg_.opt.rt_overhead_elim) {
      for (const Run& r : plan.mk_writable)
        p.mk_writable(n, t, cluster_.block_of(r.addr),
                      cluster_.block_of(r.addr + r.len - 1));
      st.node->stats.ccc_ns += t.now() - t0;
      n.barrier(t);
      t0 = t.now();
    }

    // implicit_writable — first-time-only under rt overhead elimination.
    bool open_needed = !plan.recv.empty();
    if (cfg_.opt.rt_overhead_elim) {
      auto it = st.opened.find(&loop);
      if (it != st.opened.end() && it->second == plan.recv) {
        open_needed = false;
        t.charge(cluster_.costs().ccc_test_only_cost);
        ++n.stats.ccc_calls_elided;
      } else {
        st.opened[&loop] = plan.recv;
      }
    }
    if (open_needed)
      for (const Run& r : plan.recv)
        p.implicit_writable(n, t, cluster_.block_of(r.addr),
                            cluster_.block_of(r.addr + r.len - 1));
    st.node->stats.ccc_ns += t.now() - t0;

    n.barrier(t);

    t0 = t.now();
    for (const auto& s : plan.sends)
      p.send_blocks(n, t, s.run.addr, s.run.len, {s.dst}, payload);
    p.ready_to_recv(n, t, plan.expected_pre);
    st.node->stats.ccc_ns += t.now() - t0;

    // Non-owner writes add a post-loop flush phase that posts the same
    // counting semaphore; a fast writer's flush must not satisfy a slow
    // node's pre-loop wait (and the late pre-loop data would then overwrite
    // its freshly computed values). One barrier separates the phases —
    // any_flush is a global decision, so every node agrees.
    if (plan.any_flush) n.barrier(t);
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(n.id()), "ccc", "ccc_prologue", p0,
               t.now());
  }

  void ccc_epilogue(const hpf::ParallelLoop& loop, const CommPlan& plan,
                    NodeRun& st) {
    Node& n = *st.node;
    sim::Task& t = *st.task;
    proto::Stache& p = *stache_;
    const std::size_t bs = cluster_.block_size();
    const std::size_t payload =
        cfg_.opt.bulk_transfer ? cfg_.opt.max_payload : bs;

    const sim::Time t0 = t.now();
    // Non-owner writes return to the owner.
    for (const auto& f : plan.flushes)
      p.ccc_flush(n, t, f.run.addr, f.run.len, f.owner, payload);
    if (plan.expected_post > 0) p.ready_to_recv(n, t, plan.expected_post);

    if (!cfg_.opt.rt_overhead_elim) {
      for (const Run& r : plan.recv)
        p.implicit_invalidate(n, t, cluster_.block_of(r.addr),
                              cluster_.block_of(r.addr + r.len - 1));
      // Clear the first-time registry consistency: not needed (registry is
      // only consulted under rt_overhead_elim).
    }
    st.node->stats.ccc_ns += t.now() - t0;
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(n.id()), "ccc", "ccc_epilogue", t0,
               t.now());
    (void)loop;
    (void)bs;
  }

  // ---- Message-passing backend ----

  void mp_prologue(const CommPlan& plan, NodeRun& st) {
    Node& n = *st.node;
    sim::Task& t = *st.task;
    const sim::Time t0 = t.now();
    mp_->advance_epoch(n, t);
    for (const auto& s : plan.sends)
      mp_->send(n, t, s.run.addr, s.run.len, s.dst,
                cluster_.costs().mp_max_payload);
    mp_->recv(n, t, plan.expected_pre);
    n.stats.ccc_ns += t.now() - t0;  // "communication time" bucket
    if (auto* tr = cluster_.tracer())
      tr->span(sim::Tracer::compute_track(n.id()), "ccc", "mp_prologue", t0,
               t.now());
  }

  void mp_epilogue(const CommPlan& plan, NodeRun& st) {
    Node& n = *st.node;
    sim::Task& t = *st.task;
    // The flush phase gets its own epoch whenever ANY node flushes —
    // any_flush is a global decision (derived from the same transfer list
    // on every node), so epoch counters stay aligned cluster-wide.
    if (plan.any_flush) {
      const sim::Time t0 = t.now();
      mp_->advance_epoch(n, t);
      for (const auto& f : plan.flushes)
        mp_->send(n, t, f.run.addr, f.run.len, f.owner,
                  cluster_.costs().mp_max_payload);
      mp_->recv(n, t, plan.expected_post);
      n.stats.ccc_ns += t.now() - t0;
      if (auto* tr = cluster_.tracer())
        tr->span(sim::Tracer::compute_track(n.id()), "ccc", "mp_epilogue", t0,
                 t.now());
    }
  }

  // ---- Chunk execution ----

  void run_chunks(const hpf::ParallelLoop& loop, NodeRun& st,
                  const ConcreteInterval& iters, bool checks,
                  double cost_factor) {
    Node& n = *st.node;
    sim::Task& t = *st.task;
    if (iters.empty()) return;
    const auto ext_cache = extents_cache(loop);
    // Per-chunk scratch, hoisted out of the loop so steady state allocates
    // nothing (the vectors keep their high-water capacity across chunks).
    std::vector<Node::Extent> read_runs, write_runs;
    std::vector<Run> run_scratch, iruns;
    for (std::int64_t j = iters.lo; j <= iters.hi; j += iters.stride) {
      write_runs.clear();
      if (checks) {
        // Validate the whole chunk footprint atomically (a block validated
        // early must not be revoked while a later range's fault stalls).
        // Replicated arrays are per-node private storage: no access control.
        read_runs.clear();
        for (const auto& ref : loop.reads) {
          if (replicated(ref.array)) continue;
          footprint_runs_into(loop, ref, st, j, ext_cache, &run_scratch);
          for (const Run& r : run_scratch)
            read_runs.push_back(Node::Extent{r.addr, r.len});
        }
        for (const auto& ref : loop.writes) {
          if (replicated(ref.array)) continue;
          footprint_runs_into(loop, ref, st, j, ext_cache, &run_scratch);
          for (const Run& r : run_scratch)
            write_runs.push_back(Node::Extent{r.addr, r.len});
        }
        // Indirect reads: the chunk's index footprint is affine, but the
        // data footprint exists only as the stored index values. Fault the
        // index runs readable first (so the values can be read), then add
        // the per-element data extents to the same atomic validation.
        for (const auto& ir : loop.ind_reads) {
          hpf::ArrayRef iref;
          iref.array = ir.index_array;
          iref.subs = ir.index_subs;
          footprint_runs_into(loop, iref, st, j, ext_cache, &iruns);
          if (!replicated(ir.index_array)) {
            for (const Run& r : iruns) {
              n.ensure_readable(t, r.addr, r.len);
              read_runs.push_back(Node::Extent{r.addr, r.len});
            }
          }
          if (replicated(ir.array)) continue;
          const hpf::ArrayLayout& dlay = layouts_.at(ir.array);
          const std::int64_t dn = dlay.extents[0];
          for (const Run& r : iruns) {
            const double* vals =
                reinterpret_cast<const double*>(n.mem(r.addr));
            const std::size_t count = r.len / sizeof(double);
            for (std::size_t kk = 0; kk < count; ++kk) {
              const std::int64_t e =
                  std::llround(vals[kk]) + ir.value_offset;
              FGDSM_ASSERT_MSG(e >= 0 && e < dn,
                               "indirection value out of range: "
                                   << ir.array << "(" << e << ") of " << dn);
              read_runs.push_back(Node::Extent{
                  dlay.base + static_cast<GAddr>(e) * dlay.elem, dlay.elem});
            }
          }
        }
        n.ensure_chunk(t, read_runs, write_runs);
      }
      ExecCtx ctx(st, layouts_, j);
      if (loop.body) loop.body(ctx);
      if (checks) {
        for (const auto& e : write_runs) n.note_writes(e.addr, e.len);
      }
      const double inner = inner_count(loop, st, j);
      const sim::Time cost = static_cast<sim::Time>(
          loop.cost_per_iter_ns * inner * cost_factor);
      t.charge(cost);
      n.stats.compute_ns += cost;
    }
  }

  bool replicated(const std::string& array) const {
    return prog_.array(array).dist == hpf::DistKind::kReplicated;
  }

  std::map<std::string, std::vector<std::int64_t>> extents_cache(
      const hpf::ParallelLoop& loop) {
    std::map<std::string, std::vector<std::int64_t>> m;
    auto add = [&](const hpf::ArrayRef& r) {
      if (!m.count(r.array))
        m[r.array] = layouts_.at(r.array).extents;
    };
    for (const auto& r : loop.reads) add(r);
    for (const auto& w : loop.writes) add(w);
    for (const auto& ir : loop.ind_reads)
      if (!m.count(ir.index_array))
        m[ir.index_array] = layouts_.at(ir.index_array).extents;
    return m;
  }

  // Clears *out and fills it with the chunk's runs (reusable scratch form;
  // this is called several times per chunk).
  void footprint_runs_into(
      const hpf::ParallelLoop& loop, const hpf::ArrayRef& ref, NodeRun& st,
      std::int64_t j,
      const std::map<std::string, std::vector<std::int64_t>>& ext,
      std::vector<Run>* out) {
    out->clear();
    // The section and range-list temporaries live in NodeRun and are reused
    // across chunks and timesteps — this runs several times per chunk.
    ConcreteSection& s = st.fp_section;
    hpf::chunk_footprint_into(loop, ref, prog_, st.bind, j, st.fp_scratch,
                              &s);
    const auto& e = ext.at(ref.array);
    for (std::size_t d = 0; d < s.dims.size(); ++d)
      s.dims[d] = hpf::intersect(
          s.dims[d], ConcreteInterval{0, e[d] - 1, 1});
    if (s.empty()) return;
    hpf::linearize_into(layouts_.at(ref.array), s, out);
  }

  double inner_count(const hpf::ParallelLoop& loop, NodeRun& st,
                     std::int64_t j) {
    if (loop.free.empty()) return 1.0;
    double c = 1.0;
    for (const auto& fv : loop.free) {
      const std::int64_t lo = hpf::eval_with(fv.lo, st.bind, loop.dist.sym, j);
      const std::int64_t hi = hpf::eval_with(fv.hi, st.bind, loop.dist.sym, j);
      c *= static_cast<double>(hi >= lo ? hi - lo + 1 : 0);
    }
    return c;
  }

  // ---- Result gathering ----

  // In shared-memory modes, a node's copy of a lost boundary block can be
  // stale even for its *owned* words; ensure_readable forces a fetch of the
  // merged data before the host composes the result from owners.
  void gather_owned(NodeRun& st) {
    for (const auto& a : prog_.arrays) {
      const ConcreteSection owned = hpf::owned_section(
          a, st.bind, cluster_.nnodes(), st.node->id());
      for (const Run& r : hpf::linearize(layouts_.at(a.name), owned))
        st.node->ensure_readable(*st.task, r.addr, r.len);
    }
  }

  void gather_into(RunResult& res) {
    for (const auto& a : prog_.arrays) {
      const hpf::ArrayLayout& lay = layouts_.at(a.name);
      std::vector<double>& out = res.arrays[a.name];
      out.assign(static_cast<std::size_t>(lay.elements()), 0.0);
      const int np = cluster_.nnodes();
      const int copies = a.dist == hpf::DistKind::kReplicated ? 1 : np;
      for (int p = 0; p < copies; ++p) {
        const ConcreteSection owned =
            hpf::owned_section(a, nodes_[static_cast<std::size_t>(p)].bind,
                               np, p);
        for (const Run& r : hpf::linearize(lay, owned)) {
          const std::size_t elem0 =
              static_cast<std::size_t>((r.addr - lay.base) / 8);
          std::memcpy(out.data() + elem0, cluster_.node(p).mem(r.addr),
                      r.len);
        }
      }
    }
  }

  const hpf::Program& prog_;
  RunConfig cfg_;
  // Declared before cluster_: the cluster-config lambda in the constructor
  // allocates the tracer and hands the cluster a raw pointer to it.
  std::unique_ptr<sim::Tracer> tracer_;
  tempest::Cluster cluster_;
  std::unique_ptr<proto::Stache> stache_;
  std::unique_ptr<mp::MpRuntime> mp_;
  std::unique_ptr<irreg::IrregRuntime> irreg_;
  core::LayoutMap layouts_;
  Bindings base_bind_;
  std::vector<NodeRun> nodes_;
};

}  // namespace

RunResult run(const hpf::Program& prog, RunConfig cfg) {
  Executor ex(prog, cfg);
  return ex.execute();
}

}  // namespace fgdsm::exec
