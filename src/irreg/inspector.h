// Inspector half of the inspector–executor runtime for irregular accesses
// (CHAOS/PARTI lineage): the compiler cannot form the access set of
// A(idx(i)) — only *which index elements* each node reads is affine. The
// inspector closes the gap at run time:
//
//   1. scan(): each node reads its local iterations' slice of the
//      indirection array(s) and derives the set of data elements it needs
//      but does not own, merged into maximal disjoint intervals (Need
//      records).
//   2. The need lists are broadcast (irreg::IrregRuntime::exchange) so every
//      node holds all np lists.
//   3. needs_to_transfers(): every node independently folds the identical
//      global need set into hpf::Transfer records — the same currency the
//      affine planner produces — and core::plan_from_transfers lowers the
//      union into a CommPlan. Block alignment (shmem_limits trimming)
//      happens there: partially-owned blocks fall back to the default
//      protocol, exactly as for affine sections.
//
// Determinism contract: scan() is a pure function of (loop, bindings,
// layouts, memory contents); needs_to_transfers() of its inputs. Every node
// derives the same transfer set, so the counting semaphores of the executor
// contract stay consistent without any reply round.
//
// Scope: gather only (indirect reads of 1-D BLOCK-distributed arrays).
// Indirect writes (scatter) stay with the default protocol — a runtime
// scatter schedule would need multi-writer flush merging the CCC contract
// does not provide.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/plan.h"
#include "src/hpf/analysis.h"
#include "src/hpf/ir.h"
#include "src/hpf/layout.h"
#include "src/sim/task.h"
#include "src/tempest/node.h"

namespace fgdsm::irreg {

// One needed element interval [lo, hi] of one gathered data array, as found
// by one node's scan. `array` indexes the loop's canonical gather-array list
// (gather_arrays) — the id space the needs exchange serializes.
struct Need {
  std::int64_t array = 0;
  std::int64_t lo = 0;  // inclusive, element units
  std::int64_t hi = 0;  // inclusive
  bool operator==(const Need& o) const {
    return array == o.array && lo == o.lo && hi == o.hi;
  }
};

// True if the loop (or any loop of the program) carries indirect reads.
bool has_indirect(const hpf::ParallelLoop& loop);
bool has_indirect(const hpf::Program& prog);

// Canonical (sorted, deduplicated) list of the data arrays `loop` gathers
// through indirection, excluding replicated arrays (their reads are local).
// Asserts the remaining arrays are 1-D and BLOCK-distributed.
std::vector<std::string> gather_arrays(const hpf::ParallelLoop& loop,
                                       const hpf::Program& prog);
// Allocation-free form: clears and refills *out, reusing its capacity.
void gather_arrays_into(const hpf::ParallelLoop& loop,
                        const hpf::Program& prog,
                        std::vector<std::string>* out);

struct ScanResult {
  std::vector<Need> needs;             // sorted by (array, lo), disjoint
  std::int64_t elements_scanned = 0;   // index elements read
};

// Reusable arena for scan()'s need-list temporaries. Iterative apps with a
// changing indirection array (the spmv sweep) re-inspect every timestep;
// holding one of these per node across timesteps keeps the steady-state
// scan allocation-free — the element log replaces the per-element
// node-allocating std::set the scan used to build.
struct ScanScratch {
  std::vector<std::string> canon;  // canonical gather-array list
  // Out-of-owner elements as (array id, element); sorted + deduplicated in
  // place, then folded into maximal intervals.
  std::vector<std::pair<std::int64_t, std::int64_t>> elems;
  std::vector<hpf::Run> runs;      // linearized index-slice runs
};

// Scan the indirection arrays over this node's local iterations and return
// the non-owned data intervals it needs. With ensure_index set (shared
// memory) the index blocks are faulted readable through the default protocol
// first; without it (message passing) the index footprint must already be
// owned by this node (aligned indirection arrays) — asserted.
// Charges the deterministic inspection cost to `task`. `scratch` (optional)
// donates reusable temporaries; pass the same one across timesteps to make
// repeat inspections allocation-free.
ScanResult scan(const hpf::ParallelLoop& loop, const hpf::Program& prog,
                const hpf::Bindings& b, const core::LayoutMap& layouts,
                int np, tempest::Node& node, sim::Task& task,
                bool ensure_index, ScanScratch* scratch = nullptr);

// Fold all nodes' need lists (indexed by node id, each sorted/disjoint as
// produced by scan) into the implied transfer set: for every needed interval
// of node p, one Transfer per owning node q != p of the overlap. Pure and
// deterministic — identical inputs give an identical list on every node.
std::vector<hpf::Transfer> needs_to_transfers(
    const std::vector<std::vector<Need>>& needs_by_node,
    const hpf::ParallelLoop& loop, const hpf::Program& prog,
    const hpf::Bindings& b, int np);

}  // namespace fgdsm::irreg
