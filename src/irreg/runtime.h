// Needs exchange of the inspector–executor runtime: an all-to-all broadcast
// of each node's Need list so every node can fold the identical global
// transfer set (inspector.h step 2).
//
// Broadcast, not owner-targeted queries, on purpose: the executor's CCC
// contract counts expected sends/receives with semaphores, so every node
// must know the complete transfer set — including pairs it is not part of —
// to agree on any_comm/any_flush and barrier placement. A broadcast gives
// that in one round with no reply traffic.
//
// Like the MP backend, the exchange runs without barriers, so a fast node
// can start inspection round k+1 while a slow node still waits in round k.
// Messages carry the sender's inspection sequence number; future-sequence
// arrivals are stashed and applied when the receiver's exchange() catches up
// (the MpRuntime epoch-stash pattern). Per-link FIFO delivery (restored by
// the reliable channel under chaos) keeps sequences monotone per link.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/irreg/inspector.h"
#include "src/sim/sync.h"
#include "src/tempest/cluster.h"
#include "src/tempest/node.h"

namespace fgdsm::irreg {

class IrregRuntime {
 public:
  // Registers the kIrregNeeds handler. Must outlive the run.
  explicit IrregRuntime(tempest::Cluster& cluster);

  // Broadcast this node's need list and collect every other node's.
  // Collective: every node must call it the same number of times in the
  // same order (guaranteed because inspection points are derived from the
  // identical program on every node). Returns the np need lists indexed by
  // node id; entry node.id() is `mine` moved through.
  std::vector<std::vector<Need>> exchange(tempest::Node& node,
                                          sim::Task& task,
                                          std::vector<Need> mine);

 private:
  struct NodeState {
    std::int64_t seq = 0;  // inspection sequence (next exchange to complete)
    std::vector<std::vector<Need>> recv;  // per sender, current sequence
    std::map<std::int64_t, std::vector<sim::Message>> stash;  // future seqs
    sim::Semaphore sem;  // one post per current-sequence arrival
  };
  void apply(NodeState& st, const sim::Message& m);

  tempest::Cluster& cluster_;
  std::vector<NodeState> st_;
};

}  // namespace fgdsm::irreg
