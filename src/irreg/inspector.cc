#include "src/irreg/inspector.h"

#include <algorithm>
#include <cmath>

#include "src/hpf/distribution.h"
#include "src/hpf/layout.h"
#include "src/tempest/cluster.h"
#include "src/util/assert.h"

namespace fgdsm::irreg {

using hpf::ConcreteInterval;
using hpf::ConcreteSection;
using hpf::Run;

bool has_indirect(const hpf::ParallelLoop& loop) {
  return !loop.ind_reads.empty();
}

namespace {
bool phases_have_indirect(const std::vector<hpf::Phase>& phases) {
  for (const auto& ph : phases) {
    switch (ph.kind) {
      case hpf::Phase::Kind::kParallelLoop:
        if (has_indirect(*ph.loop)) return true;
        break;
      case hpf::Phase::Kind::kTimeLoop:
        if (phases_have_indirect(ph.time->phases)) return true;
        break;
      case hpf::Phase::Kind::kScalar:
        break;
    }
  }
  return false;
}
}  // namespace

bool has_indirect(const hpf::Program& prog) {
  return phases_have_indirect(prog.phases);
}

void gather_arrays_into(const hpf::ParallelLoop& loop,
                        const hpf::Program& prog,
                        std::vector<std::string>* out) {
  out->clear();
  for (const auto& ir : loop.ind_reads) {
    const hpf::ArrayDecl& a = prog.array(ir.array);
    if (a.dist == hpf::DistKind::kReplicated) continue;  // local reads
    FGDSM_ASSERT_MSG(a.extents.size() == 1,
                     "indirect read of multi-dimensional array " << ir.array);
    FGDSM_ASSERT_MSG(a.dist == hpf::DistKind::kBlock,
                     "indirect read of non-BLOCK array " << ir.array);
    out->push_back(ir.array);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::vector<std::string> gather_arrays(const hpf::ParallelLoop& loop,
                                       const hpf::Program& prog) {
  std::vector<std::string> names;
  gather_arrays_into(loop, prog, &names);
  return names;
}

ScanResult scan(const hpf::ParallelLoop& loop, const hpf::Program& prog,
                const hpf::Bindings& b, const core::LayoutMap& layouts,
                int np, tempest::Node& node, sim::Task& task,
                bool ensure_index, ScanScratch* scratch) {
  ScanScratch local;
  ScanScratch& sc = scratch != nullptr ? *scratch : local;
  ScanResult res;
  gather_arrays_into(loop, prog, &sc.canon);
  const std::vector<std::string>& canon = sc.canon;
  if (canon.empty()) return res;
  const int me = node.id();
  const ConcreteInterval iters = hpf::local_iters(loop, prog, b, np, me);

  // Out-of-owner elements, logged as (array id, element) and deduplicated
  // after the fact: sort + unique over the flat log replaces a per-array
  // std::set, whose node allocations dominated the inspection's heap
  // traffic (one per needed element).
  sc.elems.clear();

  for (const auto& ir : loop.ind_reads) {
    const auto cit = std::find(canon.begin(), canon.end(), ir.array);
    if (cit == canon.end()) continue;  // replicated: local
    const std::size_t aid = static_cast<std::size_t>(cit - canon.begin());
    const std::int64_t n = hpf::array_extents(prog.array(ir.array), b)[0];
    const ConcreteInterval owned =
        hpf::owned_interval(hpf::DistKind::kBlock, me, n, np);
    if (iters.empty()) continue;

    hpf::ArrayRef idx_ref;
    idx_ref.array = ir.index_array;
    idx_ref.subs = ir.index_subs;
    ConcreteSection sec = hpf::ref_section(loop, idx_ref, prog, b, iters);
    const hpf::ArrayDecl& idx_decl = prog.array(ir.index_array);
    const std::vector<std::int64_t> ext = hpf::array_extents(idx_decl, b);
    for (std::size_t d = 0; d < sec.dims.size(); ++d)
      sec.dims[d] =
          hpf::intersect(sec.dims[d], ConcreteInterval{0, ext[d] - 1, 1});
    if (sec.empty()) continue;

    const hpf::ArrayLayout& lay = layouts.at(ir.index_array);
    const ConcreteSection idx_owned_sec =
        hpf::owned_section(idx_decl, b, np, me);
    sc.runs.clear();
    hpf::linearize_into(lay, sec, &sc.runs);
    for (const Run& r : sc.runs) {
      if (ensure_index) {
        node.ensure_readable(task, r.addr, r.len);
      } else if (idx_decl.dist != hpf::DistKind::kReplicated) {
        // Message passing has no fault path to pull remote index data in
        // before the schedule exists: the index footprint must be owned.
        const ConcreteInterval last = sec.dims.back();
        const ConcreteInterval idx_owned = idx_owned_sec.dims.back();
        FGDSM_ASSERT_MSG(last.lo >= idx_owned.lo && last.hi <= idx_owned.hi,
                         "message-passing inspector requires an aligned "
                         "indirection array ("
                             << ir.index_array << ")");
      }
      const double* vals = reinterpret_cast<const double*>(node.mem(r.addr));
      const std::size_t count = r.len / sizeof(double);
      for (std::size_t i = 0; i < count; ++i) {
        const std::int64_t e =
            std::llround(vals[i]) + ir.value_offset;
        FGDSM_ASSERT_MSG(e >= 0 && e < n,
                         "indirection value out of range: " << ir.array << "("
                             << e << ") of " << n);
        if (e < owned.lo || e > owned.hi)
          sc.elems.emplace_back(static_cast<std::int64_t>(aid), e);
      }
      res.elements_scanned += static_cast<std::int64_t>(count);
    }
  }

  // Deduplicate, then merge each array's elements into maximal disjoint
  // intervals. Lexicographic (array id, element) order reproduces exactly
  // the iteration order of the old per-array ordered sets.
  std::sort(sc.elems.begin(), sc.elems.end());
  sc.elems.erase(std::unique(sc.elems.begin(), sc.elems.end()),
                 sc.elems.end());
  for (std::size_t i = 0; i < sc.elems.size();) {
    Need nd;
    nd.array = sc.elems[i].first;
    nd.lo = nd.hi = sc.elems[i].second;
    ++i;
    while (i < sc.elems.size() && sc.elems[i].first == nd.array &&
           sc.elems[i].second == nd.hi + 1) {
      nd.hi = sc.elems[i].second;
      ++i;
    }
    res.needs.push_back(nd);
  }

  // Deterministic inspection cost: one runtime-call entry plus a streaming
  // pass over the scanned index values.
  const sim::CostModel& costs = node.cluster().costs();
  task.charge(costs.ccc_call_overhead +
              costs.copy_time(res.elements_scanned *
                              static_cast<std::int64_t>(sizeof(double))));
  return res;
}

std::vector<hpf::Transfer> needs_to_transfers(
    const std::vector<std::vector<Need>>& needs_by_node,
    const hpf::ParallelLoop& loop, const hpf::Program& prog,
    const hpf::Bindings& b, int np) {
  const std::vector<std::string> canon = gather_arrays(loop, prog);
  std::vector<hpf::Transfer> out;
  for (int p = 0; p < np; ++p) {
    for (const Need& nd : needs_by_node[static_cast<std::size_t>(p)]) {
      FGDSM_ASSERT_MSG(
          nd.array >= 0 &&
              nd.array < static_cast<std::int64_t>(canon.size()),
          "bad array id " << nd.array << " in needs exchange");
      const std::string& name = canon[static_cast<std::size_t>(nd.array)];
      const std::int64_t n = hpf::array_extents(prog.array(name), b)[0];
      for (int q = 0; q < np; ++q) {
        if (q == p) continue;
        const ConcreteInterval inter = hpf::intersect(
            ConcreteInterval{nd.lo, nd.hi, 1},
            hpf::owned_interval(hpf::DistKind::kBlock, q, n, np));
        if (inter.empty()) continue;
        hpf::Transfer t;
        t.array = name;
        t.sender = q;
        t.receiver = p;
        t.section.dims = {inter};
        t.for_write = false;
        out.push_back(std::move(t));
      }
    }
  }
  return out;
}

}  // namespace fgdsm::irreg
