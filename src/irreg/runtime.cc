#include "src/irreg/runtime.h"

#include <cstring>

#include "src/util/assert.h"

namespace fgdsm::irreg {

namespace {
constexpr std::size_t kRecordBytes = 3 * sizeof(std::int64_t);

std::vector<std::byte> encode(const std::vector<Need>& needs) {
  std::vector<std::byte> out(needs.size() * kRecordBytes);
  std::byte* p = out.data();
  for (const Need& nd : needs) {
    const std::int64_t rec[3] = {nd.array, nd.lo, nd.hi};
    std::memcpy(p, rec, kRecordBytes);
    p += kRecordBytes;
  }
  return out;
}

std::vector<Need> decode(const std::vector<std::byte>& payload) {
  FGDSM_ASSERT_MSG(payload.size() % kRecordBytes == 0,
                   "malformed needs payload (" << payload.size() << " bytes)");
  std::vector<Need> out(payload.size() / kRecordBytes);
  const std::byte* p = payload.data();
  for (Need& nd : out) {
    std::int64_t rec[3];
    std::memcpy(rec, p, kRecordBytes);
    nd.array = rec[0];
    nd.lo = rec[1];
    nd.hi = rec[2];
    p += kRecordBytes;
  }
  return out;
}
}  // namespace

IrregRuntime::IrregRuntime(tempest::Cluster& cluster)
    : cluster_(cluster),
      st_(static_cast<std::size_t>(cluster.nnodes())) {
  for (NodeState& st : st_) {
    st.recv.resize(static_cast<std::size_t>(cluster.nnodes()));
    st.sem.set_name("irreg_needs");
  }
  cluster_.register_handler(
      tempest::MsgType::kIrregNeeds,
      [this](tempest::Node& self, sim::Message& m,
             tempest::HandlerClock& clk) {
        clk.charge(cluster_.costs().copy_time(
            static_cast<std::int64_t>(m.payload.size())));
        NodeState& st = st_[static_cast<std::size_t>(self.id())];
        const std::int64_t seq = m.arg[1];
        if (seq == st.seq) {
          apply(st, m);
          st.sem.post(clk.t);
        } else {
          FGDSM_ASSERT_MSG(seq > st.seq,
                           "stale needs message (seq " << seq << " < "
                                                       << st.seq << ")");
          st.stash[seq].push_back(std::move(m));
        }
      });
  // Crash recovery: the exchange sequence, buffered per-sender lists and
  // future-sequence stash are host state the cluster checkpoint cannot see.
  // The semaphore is captured as a count and force-restored — a rolled-back
  // waiter resumes inside its wait loop and re-evaluates against it.
  struct NodeSnap {
    std::int64_t seq;
    std::vector<std::vector<Need>> recv;
    std::map<std::int64_t, std::vector<sim::Message>> stash;
    std::int64_t sem;
  };
  cluster_.register_host_state_hook(
      {[this]() -> std::shared_ptr<void> {
         auto blob = std::make_shared<std::vector<NodeSnap>>();
         blob->reserve(st_.size());
         for (const NodeState& st : st_)
           blob->push_back({st.seq, st.recv, st.stash, st.sem.count()});
         return blob;
       },
       [this](const std::shared_ptr<void>& b) {
         const auto& snap =
             *std::static_pointer_cast<std::vector<NodeSnap>>(b);
         for (std::size_t i = 0; i < st_.size(); ++i) {
           st_[i].seq = snap[i].seq;
           st_[i].recv = snap[i].recv;
           st_[i].stash = snap[i].stash;
           st_[i].sem.restore_for_recovery(snap[i].sem);
         }
       }});
}

void IrregRuntime::apply(NodeState& st, const sim::Message& m) {
  st.recv[static_cast<std::size_t>(m.src)] = decode(m.payload);
}

std::vector<std::vector<Need>> IrregRuntime::exchange(tempest::Node& node,
                                                      sim::Task& task,
                                                      std::vector<Need> mine) {
  const int np = cluster_.nnodes();
  const int me = node.id();
  NodeState& st = st_[static_cast<std::size_t>(me)];

  const std::vector<std::byte> payload = encode(mine);
  for (int dst = 0; dst < np; ++dst) {
    if (dst == me) continue;
    // Marshalling the need list into the message buffer.
    task.charge(cluster_.costs().copy_time(
        static_cast<std::int64_t>(payload.size())));
    sim::Message m;
    m.dst = dst;
    m.type = static_cast<std::uint16_t>(tempest::MsgType::kIrregNeeds);
    m.arg[1] = st.seq;
    m.payload = payload;
    node.send(task, std::move(m));
  }
  if (np > 1) st.sem.wait(task, np - 1);

  std::vector<std::vector<Need>> all(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    if (p == me)
      all[static_cast<std::size_t>(p)] = std::move(mine);
    else
      all[static_cast<std::size_t>(p)] =
          std::move(st.recv[static_cast<std::size_t>(p)]);
    st.recv[static_cast<std::size_t>(p)].clear();
  }

  // This exchange is complete; surface any stashed arrivals for the next.
  ++st.seq;
  auto it = st.stash.find(st.seq);
  if (it != st.stash.end()) {
    for (const sim::Message& m : it->second) {
      task.charge(cluster_.costs().copy_time(
          static_cast<std::int64_t>(m.payload.size())));
      apply(st, m);
      st.sem.post(task.now());
    }
    st.stash.erase(it);
  }
  return all;
}

}  // namespace fgdsm::irreg
