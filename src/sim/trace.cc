#include "src/sim/trace.h"

#include <cstdio>
#include <fstream>

#include "src/util/json.h"

namespace fgdsm::sim {

namespace {
// Virtual ns -> trace microseconds, at full ns resolution.
std::string us(Time t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}
}  // namespace

void Tracer::set_track_name(int tid, std::string name) {
  track_names_[tid] = std::move(name);
}

const char* Tracer::intern(std::string_view label) {
  auto it = interned_.find(label);
  if (it == interned_.end()) it = interned_.emplace(label).first;
  return it->c_str();
}

void Tracer::span(int tid, const char* cat, const char* name, Time t0,
                  Time t1) {
  events_.push_back(Event{Kind::kSpan, tid, cat, name, t0, t1, 0});
}

std::uint64_t Tracer::flow_begin(int tid, const char* cat, const char* name,
                                 Time t0, Time t1) {
  const std::uint64_t id = next_flow_++;
  events_.push_back(Event{Kind::kFlowSrc, tid, cat, name, t0, t1, id});
  return id;
}

void Tracer::flow_end(std::uint64_t id, int tid, const char* cat,
                      const char* name, Time t0, Time t1) {
  events_.push_back(Event{Kind::kFlowDst, tid, cat, name, t0, t1, id});
}

void Tracer::write(std::ostream& os) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  auto meta = [&](int tid, const char* what, auto&& emit_value) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", tid);
    w.kv("name", what);
    w.key("args");
    w.begin_object();
    emit_value();
    w.end_object();
    w.end_object();
  };
  for (const auto& [tid, name] : track_names_) {
    meta(tid, "thread_name", [&] { w.kv("name", name); });
    meta(tid, "thread_sort_index", [&] { w.kv("sort_index", tid); });
  }

  auto slice = [&](const Event& e) {
    w.begin_object();
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", e.tid);
    w.kv("cat", e.cat);
    w.kv("name", e.name);
    w.key("ts");
    w.value_raw(us(e.t0));
    w.key("dur");
    w.value_raw(us(e.t1 - e.t0));
    w.end_object();
  };
  auto flow = [&](const Event& e, const char* ph, bool binding_end) {
    w.begin_object();
    w.kv("ph", ph);
    w.kv("pid", 0);
    w.kv("tid", e.tid);
    w.kv("cat", e.cat);
    w.kv("name", e.name);
    w.kv("id", static_cast<std::int64_t>(e.flow));
    if (binding_end) w.kv("bp", "e");
    w.key("ts");
    w.value_raw(us(e.t0));
    w.end_object();
  };

  for (const Event& e : events_) {
    switch (e.kind) {
      case Kind::kSpan:
        slice(e);
        break;
      case Kind::kFlowSrc:
        slice(e);
        flow(e, "s", false);
        break;
      case Kind::kFlowDst:
        slice(e);
        flow(e, "f", true);
        break;
    }
  }

  w.end_array();
  w.kv("displayTimeUnit", "ns");
  w.end_object();
  os << '\n';
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "fgdsm: cannot open trace file '%s'\n",
                 path.c_str());
    return false;
  }
  write(f);
  return static_cast<bool>(f);
}

}  // namespace fgdsm::sim
