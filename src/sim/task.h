// A Task is a simulated thread of control (one per cluster node's compute
// processor) with its own virtual clock.
//
// Implementation: each Task runs its body on a ucontext fiber. Exactly one
// of {the partition's engine loop, one of its tasks} executes at any host
// instant: a task belongs to one event partition (set_partition), windowed
// runs pin each partition to one worker thread for the whole run, and the
// fiber hand-off slot is thread-local — so the fiber never migrates between
// host threads and the simulation stays deterministic and data-race-free by
// construction. A baton pass costs a userspace swapcontext (~1 us) rather
// than a kernel context switch — essential on small hosts, where a full
// experiment run performs millions of switches.
//
// Clock discipline: a running task's clock only moves forward through
// charge(), and charge() yields to the engine whenever the advance would
// cross a pending event's timestamp. Hence protocol message handlers always
// observe and mutate state in correct virtual-time order relative to the
// compute code, which is what makes access-control checks meaningful.
#pragma once

#include <ucontext.h>

#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/time.h"

namespace fgdsm::sim {

class Task {
 public:
  // Pooled callable for the task body: any callable whose captures fit the
  // inline buffer is stored without a heap allocation (unlike
  // std::function), which matters for runs constructing thousands of tasks.
  using TaskFn = BasicInlineFn<void(Task&)>;

  // `body` runs on the task's fiber once start() is scheduled.
  Task(Engine& engine, std::string name, TaskFn body);
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task();

  // Schedule the task's first activation at virtual time t.
  void start(Time t = 0);

  // ---- Callable only from inside the task body ----

  Time now() const { return clock_; }

  // Advance this task's clock by dt of useful work, interleaving correctly
  // with pending engine events (and with handler occupancy of cpu()).
  void charge(Time dt);

  // Process every pending event with timestamp <= now(). Call before
  // inspecting any state that message handlers may mutate.
  void sync();

  // Block until wake() is called; clock becomes max(now, wake time,
  // cpu()->available()). Used by Semaphore/Barrier; most code should use
  // those instead.
  void block();

  // ---- Callable from engine/handler context ----

  // Wake a blocked task; it resumes no earlier than virtual time t.
  void wake(Time t);

  // ---- Crash / rollback support (engine context only) ----

  // Fail-stop halt: park the task permanently and orphan every resume event
  // already scheduled for it (the events carry the resume epoch and fire as
  // no-ops once it moves). The fiber context is left intact so ~Task can
  // still unwind it, and restore() can later bring the task back.
  void halt();

  // A resumable copy of the task's execution state: the live region of the
  // fiber stack, the ucontext, clock and blocking state. Only valid for
  // restore() on the SAME Task object (the ucontext's stack pointer and
  // fpregs pointer reference this task's own members).
 private:
  enum class State : std::uint8_t { kNotStarted, kReady, kRunning, kBlocked,
                                    kFinished };

 public:
  struct Snapshot {
    std::vector<char> stack;     // bytes [stack_offset, kStackBytes)
    std::size_t stack_offset = 0;
    ucontext_t fiber{};
    Time clock = 0;
    State state;
    Time pending_wake_time = 0;
    const char* wait_reason = nullptr;
    bool started = false;
    std::size_t bytes() const { return stack.size() + sizeof(ucontext_t); }
  };
  // Capture the current state. The task must not be running (it is blocked
  // at a quiescent point, or not yet activated).
  Snapshot snapshot() const;
  // Roll back to `s` and schedule the task to resume at `resume_at`. Bumps
  // the resume epoch first, so resume events from the abandoned timeline
  // become no-ops.
  void restore(const Snapshot& s, Time resume_at);

  // ---- Configuration / inspection ----

  // The resource representing this task's processor. Handlers that share the
  // processor (single-cpu mode) acquire the same resource; the jump the task
  // observes on resume is recorded into *steal_counter (if set).
  void set_cpu(Resource* cpu) { cpu_ = cpu; }
  Resource* cpu() const { return cpu_; }
  void set_steal_counter(std::int64_t* c) { steal_counter_ = c; }

  // The event partition this task's resumes are scheduled into (the cluster
  // maps node i to partition i; default 0 covers single-partition engines).
  // Must be set before start().
  void set_partition(int p) { partition_ = p; }
  int partition() const { return partition_; }

  // Diagnostic context for deadlock/stall dumps: the cluster node this task
  // computes for (-1 = not a node task) and what the task is currently
  // waiting on (a static string set by Semaphore::wait; null = not waiting).
  void set_node_id(int id) { node_id_ = id; }
  int node_id() const { return node_id_; }
  void set_wait_reason(const char* r) { wait_reason_ = r; }
  const char* wait_reason() const { return wait_reason_; }

  bool finished() const { return state_ == State::kFinished; }
  bool blocked() const { return state_ == State::kBlocked; }
  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }

  // Engine internals.
  void resume_for_engine();  // run until the task yields/blocks/finishes

 private:
  struct Cancelled {};  // thrown into the body to unwind on destruction

  static void trampoline_entry();
  void run_body();
  // Give the baton to the engine with a resume event at now(); returns when
  // the engine hands it back.
  void yield_here();
  // Give the baton to the engine with no resume scheduled; wake() resumes.
  void yield_blocked();
  void switch_to_engine();
  void absorb_cpu_steal();
  // Highest clock value this task may currently advance to (pending events
  // and other tasks' resumes + lookahead).
  Time advance_limit() const;

  Engine& engine_;
  std::string name_;
  TaskFn body_;
  Time clock_ = 0;
  Resource* cpu_ = nullptr;
  std::int64_t* steal_counter_ = nullptr;
  int partition_ = 0;
  int node_id_ = -1;
  const char* wait_reason_ = nullptr;

  State state_ = State::kNotStarted;
  bool cancel_ = false;
  bool started_ = false;
  Time pending_wake_time_ = 0;
  // Resume-event epoch: every scheduled resume captures the epoch at
  // scheduling time and fires only if it still matches, so halt()/restore()
  // can invalidate in-flight resume events without touching the queues.
  std::uint64_t epoch_ = 0;
  std::exception_ptr exception_;

  std::vector<char> stack_;
  ucontext_t fiber_{};
  ucontext_t engine_ctx_{};
};

}  // namespace fgdsm::sim
