// All timing constants of the simulated platform, in one place.
//
// The constants are calibrated so the microbenchmarks of bench_table1
// reproduce the paper's Table 1 on the default configuration:
//   - minimum roundtrip latency for a short (4-byte) message ~ 40 us
//   - network bandwidth ~ 20 MB/s
//   - read-miss processing time for a 128-byte block (dual-cpu) ~ 93 us
//     (the paper's figure covers the common 3-hop case: reader -> home ->
//      owner -> home -> reader, all in user-level protocol software)
//
// The paper's Tempest implementation accelerates fine-grain access control
// with a custom memory-bus device, so ordinary loads/stores to blocks in the
// right state cost nothing extra; only faults enter protocol software.
#pragma once

#include <cstddef>

#include "src/sim/time.h"

namespace fgdsm::sim {

struct CostModel {
  // ---- Network / messaging (Myrinet-class interconnect of Table 1) ----
  Time msg_send_overhead = 4 * kUs;      // cpu time to compose+inject a message
  Time msg_dispatch_overhead = 5 * kUs;  // receiver-side handler dispatch
  Time wire_latency = 10 * kUs;          // interface-to-interface
  double ns_per_byte = 50.0;             // 20 MB/s
  int msg_header_bytes = 16;

  // ---- Protocol software ----
  Time fault_cost = 2 * kUs;          // detect access fault, enter handler
  Time dir_lookup_cost = 1 * kUs;     // directory state lookup/update
  Time access_change_cost = 500;      // flip one block's access tag (ns)
  double block_copy_ns_per_byte = 4.0;  // memcpy into/out of the segment

  // ---- Compiler-inserted runtime calls (the paper's primitives) ----
  Time ccc_call_overhead = 3 * kUs;   // fixed entry cost of a runtime call
  Time ccc_per_block_cost = 400;      // per block touched by a ranged call (ns)
  Time ccc_test_only_cost = 600;      // first-time-check fast path (ns, §4.3)

  // ---- Synchronization ----
  Time barrier_local_cost = 2 * kUs;  // per-node arrive/depart bookkeeping

  // ---- Message-passing backend (the pghpf-on-Tempest baseline) ----
  // Per-message software cost of the ported pghpf runtime (composition,
  // tag matching, buffer management — ~2600 cycles at 66 MHz). The paper
  // observed this backend losing to dual-cpu shared memory on most of the
  // suite and attributed it to runtime overheads; this is that knob.
  Time mp_msg_overhead = 40 * kUs;
  // Per-byte software cost of the ported runtime's buffering path (~2.5
  // MB/s of cpu-side copying/format conversion on top of the wire). The
  // paper measured its MP backend losing to dual-cpu shared memory on five
  // of six applications and could not fully explain it ("unidentified
  // performance bottlenecks in PGI's messaging runtime, or in our
  // adaptation of PGI's primitives"); these two constants reproduce that
  // observed behaviour and are the honest place to tune the baseline.
  double mp_per_byte_extra_ns = 120.0;
  std::size_t mp_max_payload = 16384;    // section bytes per message

  // ---- Checkpointing (crash recovery, --checkpoint-every) ----
  // A checkpoint happens at a barrier-completion quiescent point: fixed
  // coordination cost plus a per-byte serialization charge for the state
  // each node contributes (owned pages, tags, directory, runtime books).
  // Modeled on local-disk/memory checkpoint streaming — cheaper per byte
  // than wire bandwidth, far from free.
  Time ckpt_base_ns = 50 * kUs;
  double ckpt_ns_per_byte = 1.0;

  // ---- Computation ----
  // The paper's uniprocessor baselines "are not blocked for cache
  // performance", producing superlinear parallel speedups; this factor
  // inflates serial-run per-element cost to model that.
  double uni_cache_penalty = 1.25;

  Time bytes_time(std::int64_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) * ns_per_byte);
  }
  Time wire_time(std::int64_t payload_bytes) const {
    return wire_latency + bytes_time(payload_bytes + msg_header_bytes);
  }
  Time copy_time(std::int64_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) *
                             block_copy_ns_per_byte);
  }
};

}  // namespace fgdsm::sim
