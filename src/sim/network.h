// Point-to-point network with per-node transmit occupancy, wire latency and
// bandwidth. Messages are active messages in the Tempest sense: a type, a few
// word arguments, and an optional data payload (e.g. a cache block, or a
// bulk-transfer payload of several contiguous blocks).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/time.h"

namespace fgdsm::sim {

struct Message {
  int src = -1;
  int dst = -1;
  std::uint16_t type = 0;
  // Recovery-epoch stamp (crash/rollback mode; sits in the padding after
  // `type`, so Message stays within the inline event buffer). The cluster
  // stamps every transmitted message with the current recovery epoch and
  // drops deliveries stamped with an older one — this is what kills stale
  // loopback messages, which bypass channel sequencing entirely. Always 0
  // in fault-free runs.
  std::uint32_t epoch = 0;
  std::uint64_t addr = 0;                 // usually a global byte address
  std::array<std::int64_t, 4> arg{};      // small scalar arguments
  std::vector<std::byte> payload;         // optional data
  std::uint64_t trace_id = 0;             // tracer flow id (0 = untraced)
  // Reliable-transport framing (sim::ReliableChannel; chaos mode only).
  // ch_seq is the per-link sequence number (0 = unsequenced: loopback and
  // pure acks); ch_ack piggybacks the sender's cumulative receive count for
  // the reverse direction of the link. 64-bit so long soaks can never wrap:
  // the old 32-bit fields compared with plain </> and misordered once a
  // link's traffic crossed 2^32 messages.
  std::uint64_t ch_seq = 0;
  std::uint64_t ch_ack = 0;

  std::int64_t size_bytes(int header) const {
    return header + static_cast<std::int64_t>(payload.size());
  }
};

// Recycles payload buffers so steady-state block transfers allocate nothing.
// Per-cluster (owned by tempest::Cluster), preserving the engine's
// one-simulation-per-thread reentrancy invariant. acquire() returns a buffer
// of the requested size with UNSPECIFIED contents; every producer fully
// overwrites what it sends (block copies, chunk copies), so no stale-data
// scrubbing is needed. release() is safe for any vector, including empty
// ones and buffers that never came from the pool.
class BufferPool {
 public:
  std::vector<std::byte> acquire(std::size_t n) {
    if (!free_.empty()) {
      std::vector<std::byte> b = std::move(free_.back());
      free_.pop_back();
      if (b.capacity() < n) ++fresh_allocs_;
      b.resize(n);
      return b;
    }
    ++fresh_allocs_;
    return std::vector<std::byte>(n);
  }

  void release(std::vector<std::byte>&& b) {
    if (b.capacity() == 0 || free_.size() >= kMaxFree) return;
    free_.push_back(std::move(b));
    free_.back().clear();
  }

  // Buffers that had to be newly allocated (pool empty or too small). Flat
  // across iterations in steady state — the basis of the zero-allocation
  // regression tests.
  std::uint64_t fresh_allocs() const { return fresh_allocs_; }

 private:
  // Bounds pool memory; enough for every in-flight block transfer of an
  // 8..32-node run with bulk transfer enabled.
  static constexpr std::size_t kMaxFree = 1024;
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t fresh_allocs_ = 0;
};

class FaultInjector;

class Network {
 public:
  using DeliverFn = std::function<void(Message&&, Time arrival)>;

  Network(Engine& engine, const CostModel& costs, int nnodes);

  // Install the delivery sink for a node (the node's handler dispatcher).
  void attach(int node, DeliverFn deliver);

  // Chaos mode: route every wire crossing through `f` (drop/dup/delay
  // verdicts). Null (the default) is a perfect wire; the only cost of the
  // disabled path is this pointer test.
  void set_fault_injector(FaultInjector* f) { fault_ = f; }

  // Crash mode: stamp every message with *epoch at send time (see
  // Message::epoch). The pointer targets the cluster's recovery-epoch
  // counter; null (the default) leaves the stamp at 0.
  void set_epoch_stamp(const std::uint32_t* epoch) { epoch_stamp_ = epoch; }

  // Transmit msg; the sender's NI is occupied starting no earlier than
  // `earliest` (typically the sending cpu's clock after it has charged
  // msg_send_overhead) for the wire-serialization time. Returns serialization
  // end. Delivery is scheduled at serialization end + wire latency.
  // Self-sends (loopback) skip the wire. The cpu cost of composing the
  // message is the caller's to charge — on a compute task's clock or a
  // handler's clock — so that cpu and NI occupancy are modeled separately.
  Time send(Time earliest, Message msg);

  // Serialization-only cost (no send overhead), for cost queries.
  Time tx_time(std::int64_t payload_bytes) const;

  // Lower bound on the latency of any cross-node message: the wire latency
  // (injection/serialization only add). This is the engine's safe window
  // lookahead for conservative synchronous-window PDES — nothing one node
  // does can be observed by another sooner than this.
  Time min_link_latency() const;

  std::uint64_t total_messages() const {
    std::uint64_t n = 0;
    for (const TxCounters& c : counters_) n += c.messages;
    return n;
  }
  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const TxCounters& c : counters_) n += c.bytes;
    return n;
  }

 private:
  // Send-side accounting, sharded per source node so concurrently drained
  // partitions never write the same counter (send always runs in the source
  // node's partition). Padded off shared cache lines.
  struct alignas(64) TxCounters {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  Engine& engine_;
  const CostModel& costs_;
  std::vector<Resource> tx_;  // one transmit resource per node
  std::vector<DeliverFn> deliver_;
  FaultInjector* fault_ = nullptr;
  const std::uint32_t* epoch_stamp_ = nullptr;
  std::vector<TxCounters> counters_;  // indexed by msg.src
};

}  // namespace fgdsm::sim
