// Virtual time for the cluster simulator. All simulated durations and
// timestamps are integer nanoseconds, which keeps arithmetic exact and runs
// deterministic.
#pragma once

#include <cstdint>
#include <limits>

namespace fgdsm::sim {

using Time = std::int64_t;  // virtual nanoseconds

inline constexpr Time kNs = 1;
inline constexpr Time kUs = 1'000;
inline constexpr Time kMs = 1'000'000;
inline constexpr Time kSec = 1'000'000'000;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

inline constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / 1e9;
}
inline constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }

}  // namespace fgdsm::sim
