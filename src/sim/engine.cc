#include "src/sim/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "src/sim/host_budget.h"
#include "src/sim/task.h"
#include "src/util/assert.h"

namespace fgdsm::sim {
namespace {

// A stall detected inside a partition's drain (retry-budget exhaustion).
// Composing the full report needs cross-partition state (blocked tasks,
// channel diagnostics), so the reason unwinds the partition here and the
// coordinator composes the StallError single-threaded at the barrier.
struct PendingStall {
  std::string reason;
};

// Sense-free generation barrier: spin briefly (windows are ~microseconds of
// simulated work), then yield so an oversubscribed host still makes
// progress. The release/acquire pair on phase_ is the happens-before edge
// that publishes window_end_ and the partition outboxes across workers.
class SpinBarrier {
 public:
  explicit SpinBarrier(int n) : total_(n) {}

  void arrive_and_wait() {
    if (total_ == 1) return;
    const std::uint32_t my_phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(my_phase + 1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == my_phase) {
      if (++spins > 4096) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

 private:
  const int total_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
};

}  // namespace

void exit_stall(const StallError& e) {
  std::fprintf(stderr, "fgdsm: simulation stalled\n%s\n", e.what());
  std::exit(kStallExitCode);
}

void exit_crash(const CrashError& e) {
  std::fprintf(stderr, "fgdsm: unrecoverable node crash\n%s\n", e.what());
  std::exit(kCrashExitCode);
}

Engine::~Engine() {
  FGDSM_ASSERT_MSG(tasks_.empty(),
                   "engine destroyed with " << tasks_.size()
                                            << " live tasks");
}

Time Engine::Partition::front_time() const {
  Time t = kTimeInfinity;
  if (!events.empty()) t = events.top_time();
  if (!resumes.empty() && resumes.top_time() < t) t = resumes.top_time();
  return t;
}

void Engine::set_partitions(int n) {
  FGDSM_ASSERT_MSG(n >= 1, "partition count must be >= 1");
  FGDSM_ASSERT_MSG(!running_, "set_partitions during run()");
  FGDSM_ASSERT_MSG(tasks_.empty(), "set_partitions after registering tasks");
  for (const Partition& p : parts_)
    FGDSM_ASSERT_MSG(p.events.empty() && p.resumes.empty(),
                     "set_partitions after events were scheduled");
  // Construct in place (Partition is not movable once queues hold state).
  std::vector<Partition>(static_cast<std::size_t>(n)).swap(parts_);
  for (int i = 0; i < n; ++i) parts_[static_cast<std::size_t>(i)].index = i;
}

void Engine::set_lookahead(Time la) {
  FGDSM_ASSERT_MSG(la >= 2, "lookahead must be >= 2 to guarantee progress");
  lookahead_ = la;
}

void Engine::set_window_lookahead(Time w) {
  // Any positive value is sound (smaller windows are merely slower): each
  // window processes at least the event at the global safe time.
  FGDSM_ASSERT_MSG(w >= 1, "window lookahead must be positive");
  window_lookahead_ = w;
}

void Engine::set_seq_base(std::uint64_t base) {
  for (Partition& p : parts_) {
    FGDSM_ASSERT_MSG(p.events.empty() && p.resumes.empty(),
                     "set_seq_base after events were scheduled");
    p.next_seq = base;
  }
}

bool Engine::front_precedes(const EventQueue& a, const EventQueue& b) {
  if (a.empty()) return false;
  if (b.empty()) return true;
  return a.top_time() != b.top_time() ? a.top_time() < b.top_time()
                                      : a.top_seq() < b.top_seq();
}

void Engine::run() {
  FGDSM_ASSERT_MSG(!running_, "Engine::run is not reentrant");
  // Scope guard so every exit — normal return, StallError from the watchdog,
  // or an exception escaping an event callback — releases the flag and the
  // engine stays usable for a subsequent run().
  struct RunningGuard {
    bool& flag;
    explicit RunningGuard(bool& f) : flag(f) { flag = true; }
    ~RunningGuard() { flag = false; }
  } guard(running_);
  if (parts_.size() == 1)
    run_single();
  else
    run_windowed();
  check_deadlock();
}

// The historical serial loop: one partition, no window boundary, watchdog
// checked per handler event. Byte-for-byte the pre-partitioning behavior.
void Engine::run_single() {
  Partition& p = parts_[0];
  p.last_progress = p.now;
  const Engine* prev_e = tls_engine();
  Partition* prev_p = tls_partition();
  struct TlsGuard {
    const Engine* pe;
    Partition* pp;
    ~TlsGuard() {
      tls_engine() = pe;
      tls_partition() = pp;
    }
  } tls_guard{prev_e, prev_p};
  tls_engine() = this;
  tls_partition() = &p;
  while (!p.events.empty() || !p.resumes.empty()) {
    const bool is_resume = !front_precedes(p.events, p.resumes);
    EventQueue& q = is_resume ? p.resumes : p.events;
    Time t;
    InlineFn fn = q.pop(&t);
    p.now = t;
    now_ = t;
    if (is_resume) {
      p.last_progress = t;
    } else if (watchdog_ns_ > 0 && t - p.last_progress > watchdog_ns_ &&
               any_task_unfinished()) {
      // Handler/timer events keep firing (e.g. retransmissions cycling on a
      // dead link) but no compute task has run for a full stall window:
      // the simulation is spinning, not progressing.
      std::ostringstream os;
      os << "watchdog: no compute-task progress for " << (t - p.last_progress)
         << " virtual ns (threshold " << watchdog_ns_ << ")";
      fail_stall(os.str());
    }
    ++p.events_processed;
    fn();
  }
}

// Drain one partition's events strictly below the window boundary. Failures
// are captured on the partition (not thrown across the barrier) so every
// partition still completes its window — matching serial execution order —
// and the coordinator rethrows deterministically.
void Engine::drain_partition(Partition& p, Time wend) {
  const Engine* prev_e = tls_engine();
  Partition* prev_p = tls_partition();
  tls_engine() = this;
  tls_partition() = &p;
  try {
    for (;;) {
      const bool has_e = !p.events.empty() && p.events.top_time() < wend;
      const bool has_r = !p.resumes.empty() && p.resumes.top_time() < wend;
      if (!has_e && !has_r) break;
      const bool is_resume =
          has_e && has_r ? !front_precedes(p.events, p.resumes) : has_r;
      EventQueue& q = is_resume ? p.resumes : p.events;
      Time t;
      InlineFn fn = q.pop(&t);
      p.now = t;
      if (is_resume) p.last_progress = t;
      ++p.events_processed;
      fn();
    }
  } catch (const PendingStall& ps) {
    p.stalled = true;
    p.stall_reason = ps.reason;
  } catch (...) {
    p.error = std::current_exception();
  }
  tls_engine() = prev_e;
  tls_partition() = prev_p;
}

// Merge every partition's outbox into the destination queues in the fixed
// global order (dst, time, src seq, src partition). The key is unique
// ((src partition, src seq) never repeats) and independent of the host
// thread count, and destination seqs are assigned in merge order, so the
// post-merge queues are bit-identical at any --sim-threads.
void Engine::merge_cross(std::vector<CrossEvent>& scratch) {
  scratch.clear();
  for (Partition& p : parts_) {
    for (CrossEvent& ce : p.outbox) scratch.push_back(std::move(ce));
    p.outbox.clear();
  }
  if (scratch.empty()) return;
  std::sort(scratch.begin(), scratch.end(),
            [](const CrossEvent& a, const CrossEvent& b) {
              if (a.dst_part != b.dst_part) return a.dst_part < b.dst_part;
              if (a.t != b.t) return a.t < b.t;
              if (a.src_seq != b.src_seq) return a.src_seq < b.src_seq;
              return a.src_part < b.src_part;
            });
  for (CrossEvent& ce : scratch) {
    // The conservative-window soundness invariant: nothing scheduled during
    // [S, W) may land before W in another partition. A violation means the
    // configured min-link-latency overstates the real minimum.
    FGDSM_ASSERT_MSG(ce.t >= window_end_ || window_end_ == kTimeInfinity,
                     "cross-partition event at t="
                         << ce.t << " violates the window boundary W="
                         << window_end_
                         << " (window lookahead exceeds the true minimum "
                            "cross-partition latency)");
    Partition& d = parts_[static_cast<std::size_t>(ce.dst_part)];
    (ce.is_resume ? d.resumes : d.events)
        .push(ce.t, d.next_seq++, std::move(ce.fn));
  }
  scratch.clear();
}

// Rethrow the first failure of the completed window, by partition id — a
// deterministic choice at any thread count.
void Engine::throw_partition_error() {
  for (Partition& p : parts_) {
    if (p.error) {
      std::exception_ptr e = p.error;
      p.error = nullptr;
      std::rethrow_exception(e);
    }
    if (p.stalled) {
      p.stalled = false;
      const std::string reason = std::move(p.stall_reason);
      p.stall_reason.clear();
      compose_and_throw_stall(reason);
    }
  }
}

// Conservative synchronous-window PDES (see the file comment in engine.h).
void Engine::run_windowed() {
  const int nparts = static_cast<int>(parts_.size());
  const Time wla = window_lookahead();
  int want = sim_threads_ < nparts ? sim_threads_ : nparts;
  if (want < 1) want = 1;
  const int granted =
      want > 1 ? HostBudget::instance().acquire(want - 1) : 0;
  const int nworkers = 1 + granted;

  for (Partition& p : parts_) {
    p.last_progress = p.now;
    p.outbox.clear();
    p.error = nullptr;
    p.stalled = false;
    p.stall_reason.clear();
  }
  windowed_running_ = true;
  tasks_done_snapshot_ = !any_task_unfinished_raw();

  // Worker crew: partition i is drained by worker i % nworkers for the
  // whole run, so a task fiber never migrates between host threads. The
  // coordinator (this thread) is worker 0; merge, window computation, and
  // failure handling all happen single-threaded between the barriers.
  SpinBarrier start(nworkers);
  SpinBarrier finish(nworkers);
  std::atomic<bool> stop{false};
  std::vector<std::thread> crew;
  crew.reserve(static_cast<std::size_t>(nworkers - 1));
  for (int w = 1; w < nworkers; ++w) {
    crew.emplace_back([this, w, nworkers, nparts, &start, &finish, &stop] {
      for (;;) {
        start.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) return;
        for (int i = w; i < nparts; i += nworkers)
          drain_partition(parts_[static_cast<std::size_t>(i)], window_end_);
        finish.arrive_and_wait();
      }
    });
  }
  bool released = false;
  const auto release_crew = [&] {
    if (released) return;
    released = true;
    stop.store(true, std::memory_order_release);
    start.arrive_and_wait();
    for (std::thread& th : crew) th.join();
    if (granted > 0) HostBudget::instance().release(granted);
    windowed_running_ = false;
  };

  try {
    std::vector<CrossEvent> scratch;
    for (;;) {
      // Global safe time S: the earliest pending event anywhere. Every
      // partition may run past it by the window lookahead without missing a
      // cross-partition effect.
      Time safe = kTimeInfinity;
      for (const Partition& p : parts_) {
        const Time f = p.front_time();
        if (f < safe) safe = f;
      }
      if (safe == kTimeInfinity) {
        // Queues drained with tasks still blocked: normally a deadlock
        // (diagnosed after the loop), but with a crashed node it means the
        // survivors are parked waiting on the dead peer — give the recovery
        // hook a chance to roll back and repopulate the queues.
        if (recovery_hook_ && any_task_unfinished_raw() && recovery_hook_())
          continue;
        break;
      }
      now_ = safe;
      tasks_done_snapshot_ = !any_task_unfinished_raw();
      if (watchdog_ns_ > 0 && !tasks_done_snapshot_) {
        Time progress = 0;
        for (const Partition& p : parts_)
          progress = std::max(progress, p.last_progress);
        if (safe - progress > watchdog_ns_) {
          if (recovery_hook_ && recovery_hook_()) {
            for (Partition& p : parts_) p.last_progress = p.now;
            continue;
          }
          std::ostringstream os;
          os << "watchdog: no compute-task progress for " << (safe - progress)
             << " virtual ns (threshold " << watchdog_ns_ << ")";
          compose_and_throw_stall(os.str());
        }
      }
      window_end_ =
          safe > kTimeInfinity - wla ? kTimeInfinity : safe + wla;
      start.arrive_and_wait();
      for (int i = 0; i < nparts; i += nworkers)
        drain_partition(parts_[static_cast<std::size_t>(i)], window_end_);
      finish.arrive_and_wait();
      merge_cross(scratch);
      // Every partition has drained the window and the crew is parked at
      // the start barrier: task fibers are host-quiescent, so a checkpoint
      // capture requested by an event inside this window can walk them now.
      if (window_hook_) window_hook_();
      // A partition stall (channel retry-budget exhaustion) is the crash
      // detection signal: when a recovery hook is installed and no partition
      // carries a real error, let it repair the cluster instead of
      // composing a stall report. Hard errors always rethrow.
      if (recovery_hook_) {
        bool any_error = false;
        bool any_stall = false;
        for (const Partition& p : parts_) {
          if (p.error) any_error = true;
          if (p.stalled) any_stall = true;
        }
        if (!any_error && any_stall && recovery_hook_()) {
          for (Partition& p : parts_) {
            p.stalled = false;
            p.stall_reason.clear();
            p.last_progress = p.now;
          }
          continue;
        }
      }
      throw_partition_error();
    }
    for (const Partition& p : parts_) now_ = std::max(now_, p.now);
  } catch (...) {
    release_crew();
    throw;
  }
  release_crew();
}

bool Engine::any_task_unfinished_raw() const {
  for (const Task* t : tasks_)
    if (!t->finished()) return true;
  return false;
}

std::string Engine::describe_blocked_tasks() const {
  std::ostringstream os;
  for (const Task* t : tasks_) {
    if (t->finished()) continue;
    os << "  " << t->name();
    if (t->node_id() >= 0) os << " [node " << t->node_id() << "]";
    if (t->wait_reason() != nullptr)
      os << " waiting on " << t->wait_reason();
    else if (t->blocked())
      os << " blocked";
    else
      os << " runnable";
    os << " at t=" << t->now() << "\n";
  }
  return os.str();
}

void Engine::fail_stall(const std::string& reason) const {
  // Inside a windowed drain the full report cannot be composed here (it
  // reads cross-partition state); defer to the coordinator.
  if (windowed_running_ && tls_engine() == this && tls_partition() != nullptr)
    throw PendingStall{reason};
  compose_and_throw_stall(reason);
}

void Engine::compose_and_throw_stall(const std::string& reason) const {
  std::ostringstream os;
  os << reason << "\nblocked tasks:\n" << describe_blocked_tasks();
  if (stall_reporter_) os << stall_reporter_();
  throw StallError(os.str());
}

void Engine::check_deadlock() const {
  bool dead = false;
  for (const Task* t : tasks_)
    if (!t->finished()) dead = true;
  if (dead)
    throw AssertionError("simulation deadlock; blocked tasks:\n" +
                         describe_blocked_tasks());
}

void Engine::register_task(Task* t) { tasks_.push_back(t); }

void Engine::unregister_task(Task* t) {
  tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), t), tasks_.end());
}

}  // namespace fgdsm::sim
