#include "src/sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/sim/task.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

void exit_stall(const StallError& e) {
  std::fprintf(stderr, "fgdsm: simulation stalled\n%s\n", e.what());
  std::exit(kStallExitCode);
}

Engine::~Engine() {
  FGDSM_ASSERT_MSG(tasks_.empty(),
                   "engine destroyed with " << tasks_.size()
                                            << " live tasks");
}

void Engine::set_lookahead(Time la) {
  FGDSM_ASSERT_MSG(la >= 2, "lookahead must be >= 2 to guarantee progress");
  lookahead_ = la;
}

bool Engine::front_precedes(const EventQueue& a, const EventQueue& b) {
  if (a.empty()) return false;
  if (b.empty()) return true;
  return a.top_time() != b.top_time() ? a.top_time() < b.top_time()
                                      : a.top_seq() < b.top_seq();
}

void Engine::run() {
  FGDSM_ASSERT_MSG(!running_, "Engine::run is not reentrant");
  // Scope guard so every exit — normal return, StallError from the watchdog,
  // or an exception escaping an event callback — releases the flag and the
  // engine stays usable for a subsequent run().
  struct RunningGuard {
    bool& flag;
    explicit RunningGuard(bool& f) : flag(f) { flag = true; }
    ~RunningGuard() { flag = false; }
  } guard(running_);
  last_progress_ = now_;
  while (!events_.empty() || !resumes_.empty()) {
    const bool is_resume = !front_precedes(events_, resumes_);
    EventQueue& q = is_resume ? resumes_ : events_;
    Time t;
    InlineFn fn = q.pop(&t);
    now_ = t;
    if (is_resume) {
      last_progress_ = now_;
    } else if (watchdog_ns_ > 0 && now_ - last_progress_ > watchdog_ns_ &&
               any_task_unfinished()) {
      // Handler/timer events keep firing (e.g. retransmissions cycling on a
      // dead link) but no compute task has run for a full stall window:
      // the simulation is spinning, not progressing.
      std::ostringstream os;
      os << "watchdog: no compute-task progress for " << (now_ - last_progress_)
         << " virtual ns (threshold " << watchdog_ns_ << ")";
      fail_stall(os.str());
    }
    ++events_processed_;
    fn();
  }
  check_deadlock();
}

bool Engine::any_task_unfinished() const {
  for (const Task* t : tasks_)
    if (!t->finished()) return true;
  return false;
}

std::string Engine::describe_blocked_tasks() const {
  std::ostringstream os;
  for (const Task* t : tasks_) {
    if (t->finished()) continue;
    os << "  " << t->name();
    if (t->node_id() >= 0) os << " [node " << t->node_id() << "]";
    if (t->wait_reason() != nullptr)
      os << " waiting on " << t->wait_reason();
    else if (t->blocked())
      os << " blocked";
    else
      os << " runnable";
    os << " at t=" << t->now() << "\n";
  }
  return os.str();
}

void Engine::fail_stall(const std::string& reason) const {
  std::ostringstream os;
  os << reason << "\nblocked tasks:\n" << describe_blocked_tasks();
  if (stall_reporter_) os << stall_reporter_();
  throw StallError(os.str());
}

void Engine::check_deadlock() const {
  bool dead = false;
  for (const Task* t : tasks_)
    if (!t->finished()) dead = true;
  if (dead)
    throw AssertionError("simulation deadlock; blocked tasks:\n" +
                         describe_blocked_tasks());
}

void Engine::register_task(Task* t) { tasks_.push_back(t); }

void Engine::unregister_task(Task* t) {
  tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), t), tasks_.end());
}

}  // namespace fgdsm::sim
