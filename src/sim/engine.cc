#include "src/sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/sim/task.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

void exit_stall(const StallError& e) {
  std::fprintf(stderr, "fgdsm: simulation stalled\n%s\n", e.what());
  std::exit(kStallExitCode);
}

Engine::~Engine() {
  FGDSM_ASSERT_MSG(tasks_.empty(),
                   "engine destroyed with " << tasks_.size()
                                            << " live tasks");
}

void Engine::push(Queue& q, Time t, std::function<void()> fn) {
  FGDSM_ASSERT_MSG(t >= now_, "event scheduled in the past: " << t << " < "
                                                              << now_);
  q.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule(Time t, std::function<void()> fn) {
  push(events_, t, std::move(fn));
}

void Engine::schedule_task_resume(Time t, std::function<void()> fn) {
  push(resumes_, t, std::move(fn));
}

Time Engine::next_event_time() const {
  return events_.empty() ? kTimeInfinity : events_.top().t;
}

Time Engine::next_resume_time() const {
  return resumes_.empty() ? kTimeInfinity : resumes_.top().t;
}

void Engine::set_lookahead(Time la) {
  FGDSM_ASSERT_MSG(la >= 2, "lookahead must be >= 2 to guarantee progress");
  lookahead_ = la;
}

bool Engine::front_precedes(const Queue& a, const Queue& b) {
  // True if a's front event should run before b's (global time,seq order).
  if (a.empty()) return false;
  if (b.empty()) return true;
  return b.top() > a.top();
}

void Engine::run() {
  FGDSM_ASSERT_MSG(!running_, "Engine::run is not reentrant");
  running_ = true;
  last_progress_ = now_;
  while (!events_.empty() || !resumes_.empty()) {
    const bool is_resume = !front_precedes(events_, resumes_);
    Queue& q = is_resume ? resumes_ : events_;
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because we pop immediately after.
    Event ev = std::move(const_cast<Event&>(q.top()));
    q.pop();
    now_ = ev.t;
    if (is_resume) {
      last_progress_ = now_;
    } else if (watchdog_ns_ > 0 && now_ - last_progress_ > watchdog_ns_ &&
               any_task_unfinished()) {
      // Handler/timer events keep firing (e.g. retransmissions cycling on a
      // dead link) but no compute task has run for a full stall window:
      // the simulation is spinning, not progressing.
      std::ostringstream os;
      os << "watchdog: no compute-task progress for " << (now_ - last_progress_)
         << " virtual ns (threshold " << watchdog_ns_ << ")";
      running_ = false;
      fail_stall(os.str());
    }
    ++events_processed_;
    try {
      ev.fn();
    } catch (...) {
      running_ = false;
      throw;
    }
  }
  running_ = false;
  check_deadlock();
}

bool Engine::any_task_unfinished() const {
  for (const Task* t : tasks_)
    if (!t->finished()) return true;
  return false;
}

std::string Engine::describe_blocked_tasks() const {
  std::ostringstream os;
  for (const Task* t : tasks_) {
    if (t->finished()) continue;
    os << "  " << t->name();
    if (t->node_id() >= 0) os << " [node " << t->node_id() << "]";
    if (t->wait_reason() != nullptr)
      os << " waiting on " << t->wait_reason();
    else if (t->blocked())
      os << " blocked";
    else
      os << " runnable";
    os << " at t=" << t->now() << "\n";
  }
  return os.str();
}

void Engine::fail_stall(const std::string& reason) const {
  std::ostringstream os;
  os << reason << "\nblocked tasks:\n" << describe_blocked_tasks();
  if (stall_reporter_) os << stall_reporter_();
  throw StallError(os.str());
}

void Engine::check_deadlock() const {
  bool dead = false;
  for (const Task* t : tasks_)
    if (!t->finished()) dead = true;
  if (dead)
    throw AssertionError("simulation deadlock; blocked tasks:\n" +
                         describe_blocked_tasks());
}

void Engine::register_task(Task* t) { tasks_.push_back(t); }

void Engine::unregister_task(Task* t) {
  tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), t), tasks_.end());
}

}  // namespace fgdsm::sim
