#include "src/sim/engine.h"

#include <algorithm>
#include <sstream>

#include "src/sim/task.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

Engine::~Engine() {
  FGDSM_ASSERT_MSG(tasks_.empty(),
                   "engine destroyed with " << tasks_.size()
                                            << " live tasks");
}

void Engine::push(Queue& q, Time t, std::function<void()> fn) {
  FGDSM_ASSERT_MSG(t >= now_, "event scheduled in the past: " << t << " < "
                                                              << now_);
  q.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule(Time t, std::function<void()> fn) {
  push(events_, t, std::move(fn));
}

void Engine::schedule_task_resume(Time t, std::function<void()> fn) {
  push(resumes_, t, std::move(fn));
}

Time Engine::next_event_time() const {
  return events_.empty() ? kTimeInfinity : events_.top().t;
}

Time Engine::next_resume_time() const {
  return resumes_.empty() ? kTimeInfinity : resumes_.top().t;
}

void Engine::set_lookahead(Time la) {
  FGDSM_ASSERT_MSG(la >= 2, "lookahead must be >= 2 to guarantee progress");
  lookahead_ = la;
}

bool Engine::front_precedes(const Queue& a, const Queue& b) {
  // True if a's front event should run before b's (global time,seq order).
  if (a.empty()) return false;
  if (b.empty()) return true;
  return b.top() > a.top();
}

void Engine::run() {
  FGDSM_ASSERT_MSG(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (!events_.empty() || !resumes_.empty()) {
    Queue& q = front_precedes(events_, resumes_) ? events_ : resumes_;
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because we pop immediately after.
    Event ev = std::move(const_cast<Event&>(q.top()));
    q.pop();
    now_ = ev.t;
    ++events_processed_;
    try {
      ev.fn();
    } catch (...) {
      running_ = false;
      throw;
    }
  }
  running_ = false;
  check_deadlock();
}

void Engine::check_deadlock() const {
  std::ostringstream os;
  bool dead = false;
  for (const Task* t : tasks_) {
    if (!t->finished()) {
      if (!dead) os << "simulation deadlock; blocked tasks:";
      dead = true;
      os << " " << t->name();
    }
  }
  if (dead) throw AssertionError(os.str());
}

void Engine::register_task(Task* t) { tasks_.push_back(t); }

void Engine::unregister_task(Task* t) {
  tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), t), tasks_.end());
}

}  // namespace fgdsm::sim
