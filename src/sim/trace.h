// Run-level event tracing: records virtual-time spans (compute phases, miss
// stalls, protocol calls, synchronization waits) and message arrows
// (send -> handler dispatch, tagged by transaction kind) and exports them as
// Chrome trace_event JSON, loadable in chrome://tracing or Perfetto.
//
// The tracer is strictly passive: it never charges virtual time, so a traced
// run is bit-identical to an untraced one. It is also strictly optional —
// every recording site guards on a nullable Tracer*, so the disabled path
// costs one pointer test. One Tracer belongs to one simulation (same
// single-thread confinement as the Engine it observes).
//
// Track convention (one Chrome "thread" per track, pid 0): a node's compute
// processor is tid 2*node, its protocol processor tid 2*node + 1. Spans on
// one track come from one sequential context (a task, or the serialized
// handler chain), so slices nest properly.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace fgdsm::sim {

class Tracer {
 public:
  static int compute_track(int node) { return 2 * node; }
  static int protocol_track(int node) { return 2 * node + 1; }

  void set_track_name(int tid, std::string name);

  // Intern a dynamic label: returns a pointer that stays valid for the
  // tracer's lifetime, allocating only on a label's first appearance. Spans
  // and flows store `const char*` — recording a span with a label that
  // repeats every iteration (loop names, message-type labels) costs zero
  // allocations after the first, where it used to copy a std::string per
  // event. Labels that ARE string literals can skip the call entirely.
  const char* intern(std::string_view label);

  // Duration span [t0, t1] (virtual ns) on `tid`. Category is a static
  // string: "loop", "miss", "ccc", "sync", "msg". The name must be a string
  // literal or an intern()ed pointer — it is stored, not copied.
  void span(int tid, const char* cat, const char* name, Time t0, Time t1);

  // Message arrow. flow_begin records the send-side slice [t0, t1] plus a
  // flow start bound to it and returns the flow id to ship inside the
  // message; flow_end records the dispatch-side slice and closes the arrow.
  // Name lifetime contract as in span().
  std::uint64_t flow_begin(int tid, const char* cat, const char* name,
                           Time t0, Time t1);
  void flow_end(std::uint64_t id, int tid, const char* cat, const char* name,
                Time t0, Time t1);

  std::size_t num_events() const { return events_.size(); }

  // Chrome trace_event JSON ("traceEvents" array form).
  void write(std::ostream& os) const;
  // Returns false (and logs to stderr) if the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kSpan, kFlowSrc, kFlowDst };
  struct Event {
    Kind kind;
    int tid;
    const char* cat;
    const char* name;  // literal or interned — never owned by the event
    Time t0;
    Time t1;
    std::uint64_t flow = 0;
  };

  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
  // Interned label storage: node-based, so c_str() pointers stay stable as
  // the set grows. Heterogeneous lookup keeps repeat interning free of
  // temporary std::string construction.
  std::set<std::string, std::less<>> interned_;
  std::uint64_t next_flow_ = 1;
};

}  // namespace fgdsm::sim
