// Deterministic discrete-event engine.
//
// The engine owns a priority queue of (time, sequence, callback) events.
// Events at equal timestamps run in scheduling order, so every run of the
// same program is bit-identical. Simulated "threads" (sim::Task) hand a baton
// back and forth with the engine: at any host instant exactly one of
// {engine, one task} executes, which makes the whole simulator data-race-free
// without per-object locking.
//
// Events come in two kinds:
//   - ordinary events ("handler" events: message deliveries, timers) — a
//     running task must never let its virtual clock pass one of these,
//     because the event may mutate state the task observes (block tags);
//   - task-resume events — bookkeeping for the baton. A running task may run
//     ahead of another task's pending resume by strictly less than the
//     engine's *lookahead* (conservative-PDES style): lookahead must be a
//     lower bound on the latency with which one task's actions can affect
//     another (here: message injection + wire latency). This both preserves
//     causality — a laggard task always gets scheduled before its earliest
//     possible effect on anyone else — and breaks the livelock that arises
//     if equal-timestamp tasks yield to each other unconditionally.
// next_event_time() reports only ordinary events; the run loop interleaves
// both kinds in global (time, sequence) order.
//
// Reentrancy invariant: an Engine (and everything built on it — Task,
// Cluster, the executor) is a fully self-contained value. No function in the
// sim/tempest/proto/mp/exec layers touches process-global mutable state; the
// only thread-affine piece is the fiber hand-off slot in task.cc, which is
// thread_local. Hence any number of independent simulations may run
// concurrently on separate host threads (exec::BatchRunner), each confined
// to its own thread, with bit-identical results to running them serially.
// A single Engine must never be shared across threads.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace fgdsm::sim {

class Task;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  // Schedule an ordinary event at virtual time t (>= now()).
  void schedule(Time t, std::function<void()> fn);
  void schedule_after(Time dt, std::function<void()> fn) {
    schedule(now_ + dt, std::move(fn));
  }

  // Schedule a task resumption (Task internals only).
  void schedule_task_resume(Time t, std::function<void()> fn);

  // Time of the event currently being processed (or last processed).
  Time now() const { return now_; }

  // Timestamp of the earliest pending ordinary event, or kTimeInfinity.
  // Safe to call from a running task: while a task runs, the engine is
  // blocked and cannot pop events.
  Time next_event_time() const;

  // Timestamp of the earliest pending task resume, or kTimeInfinity.
  Time next_resume_time() const;

  // Minimum cross-task influence latency (see file comment). Must be >= 2 to
  // guarantee progress between equal-timestamp tasks; the cluster layer sets
  // it from the cost model (message injection + wire latency).
  void set_lookahead(Time la);
  Time lookahead() const { return lookahead_; }

  // Run the event loop until both queues are empty. Throws if registered
  // tasks are still blocked when the queues drain (deadlock).
  void run();

  // Task registration (used by sim::Task's constructor/destructor).
  void register_task(Task* t);
  void unregister_task(Task* t);

  std::uint64_t events_processed() const { return events_processed_; }

 private:
  friend class Task;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  using Queue =
      std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

  void push(Queue& q, Time t, std::function<void()> fn);
  static bool front_precedes(const Queue& a, const Queue& b);
  void check_deadlock() const;

  Queue events_;   // ordinary (handler) events
  Queue resumes_;  // task-resume events
  Time lookahead_ = 1000;  // conservative default; cluster overrides
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<Task*> tasks_;
  bool running_ = false;
};

}  // namespace fgdsm::sim
