// Deterministic discrete-event engine.
//
// The engine owns two queues of (time, sequence, callback) events backed by
// a pooled slab representation (src/sim/event_pool.h): records are recycled
// through a free list and ordered by a binary heap of indices, so the steady
// state processes events with zero heap allocations and no const_cast
// gymnastics. Events at equal timestamps run in scheduling order (seq is a
// global total order across both queues), so every run of the same program
// is bit-identical. Simulated "threads" (sim::Task) hand a baton back and
// forth with the engine: at any host instant exactly one of {engine, one
// task} executes, which makes the whole simulator data-race-free without
// per-object locking.
//
// Events come in two kinds:
//   - ordinary events ("handler" events: message deliveries, timers) — a
//     running task must never let its virtual clock pass one of these,
//     because the event may mutate state the task observes (block tags);
//   - task-resume events — bookkeeping for the baton. A running task may run
//     ahead of another task's pending resume by strictly less than the
//     engine's *lookahead* (conservative-PDES style): lookahead must be a
//     lower bound on the latency with which one task's actions can affect
//     another (here: message injection + wire latency). This both preserves
//     causality — a laggard task always gets scheduled before its earliest
//     possible effect on anyone else — and breaks the livelock that arises
//     if equal-timestamp tasks yield to each other unconditionally.
// next_event_time() reports only ordinary events; the run loop interleaves
// both kinds in global (time, sequence) order.
//
// Reentrancy invariant: an Engine (and everything built on it — Task,
// Cluster, the executor) is a fully self-contained value. No function in the
// sim/tempest/proto/mp/exec layers touches process-global mutable state; the
// only thread-affine pieces are the fiber hand-off slot in task.cc and
// InlineFn's diagnostic boxed-callable counter, both thread_local. Hence any
// number of independent simulations may run concurrently on separate host
// threads (exec::BatchRunner), each confined to its own thread, with
// bit-identical results to running them serially. A single Engine must never
// be shared across threads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_pool.h"
#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

class Task;

// Thrown when forward progress provably stopped: the watchdog saw no compute
// task advance for a full stall window of virtual time, or the reliable
// channel exhausted a message's retry budget. Carries the structured
// diagnostic (blocked tasks with node/wait reason, unacked channel state,
// the offending link and message type) so a harness can print it and exit
// with kStallExitCode instead of hanging.
class StallError : public AssertionError {
 public:
  explicit StallError(const std::string& what) : AssertionError(what) {}
};

// Distinct process exit code for watchdog/stall terminations, so scripts and
// CI can tell "the protocol hung" from an ordinary failure.
inline constexpr int kStallExitCode = 86;

// Print the stall diagnostic and terminate with the documented exit code.
// The standard catch-site epilogue for harness main()s.
[[noreturn]] void exit_stall(const StallError& e);

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  // Schedule an ordinary event at virtual time t (>= now()). Any callable
  // whose captures fit InlineFn::kCapacity is stored without allocating.
  template <typename F>
  void schedule(Time t, F&& fn) {
    check_not_past(t);
    events_.push(t, next_seq_++, InlineFn(std::forward<F>(fn)));
  }
  template <typename F>
  void schedule_after(Time dt, F&& fn) {
    schedule(now_ + dt, std::forward<F>(fn));
  }

  // Schedule a task resumption (Task internals only).
  template <typename F>
  void schedule_task_resume(Time t, F&& fn) {
    check_not_past(t);
    resumes_.push(t, next_seq_++, InlineFn(std::forward<F>(fn)));
  }

  // Time of the event currently being processed (or last processed).
  Time now() const { return now_; }

  // Timestamp of the earliest pending ordinary event, or kTimeInfinity.
  // Safe to call from a running task: while a task runs, the engine is
  // blocked and cannot pop events.
  Time next_event_time() const {
    return events_.empty() ? kTimeInfinity : events_.top_time();
  }

  // Timestamp of the earliest pending task resume, or kTimeInfinity.
  Time next_resume_time() const {
    return resumes_.empty() ? kTimeInfinity : resumes_.top_time();
  }

  // Minimum cross-task influence latency (see file comment). Must be >= 2 to
  // guarantee progress between equal-timestamp tasks; the cluster layer sets
  // it from the cost model (message injection + wire latency).
  void set_lookahead(Time la);
  Time lookahead() const { return lookahead_; }

  // Run the event loop until both queues are empty. Throws if registered
  // tasks are still blocked when the queues drain (deadlock), or StallError
  // if the watchdog detects a virtual-time stall (see set_watchdog).
  // Reusable: the running flag is released on every exit path (including
  // exceptions thrown out of event callbacks), so a caught failure does not
  // poison later run() calls on the same engine.
  void run();

  // ---- Progress watchdog (--watchdog-ns) ----
  // With stall_ns > 0, the run loop fails with StallError whenever event
  // time moves stall_ns past the last compute-task resume while unfinished
  // tasks remain — i.e. handlers/timers keep firing (retransmissions) but no
  // task makes progress. 0 disables the watchdog (the default).
  void set_watchdog(Time stall_ns) { watchdog_ns_ = stall_ns; }

  // Extra diagnostic context appended to every stall report (the cluster
  // wires in channel + protocol state).
  void set_stall_reporter(std::function<std::string()> fn) {
    stall_reporter_ = std::move(fn);
  }

  // Compose `reason` + blocked-task dump + reporter context and throw
  // StallError. Also the failure entry point for the reliable channel's
  // retry-budget exhaustion.
  [[noreturn]] void fail_stall(const std::string& reason) const;

  // One line per live task: name, node id, and what it is waiting on.
  std::string describe_blocked_tasks() const;

  // True while any registered task has not run to completion. The reliable
  // channel uses this to distinguish a real stall (work remains) from
  // transport cleanup after the program finished (a lost final ack is moot).
  bool any_task_unfinished() const;

  // Task registration (used by sim::Task's constructor/destructor).
  void register_task(Task* t);
  void unregister_task(Task* t);

  std::uint64_t events_processed() const { return events_processed_; }

  // Allocation accounting for the perf-regression tests: how many times the
  // two event slabs grew. Flat across iterations once a run reaches steady
  // state (records are recycled through the free lists).
  std::uint64_t event_slab_grows() const {
    return events_.slab_grows() + resumes_.slab_grows();
  }

 private:
  friend class Task;

  void check_not_past(Time t) const {
    FGDSM_ASSERT_MSG(t >= now_, "event scheduled in the past: " << t << " < "
                                                                << now_);
  }
  // True if a's front event should run before b's (global time,seq order).
  static bool front_precedes(const EventQueue& a, const EventQueue& b);
  void check_deadlock() const;

  EventQueue events_;   // ordinary (handler) events
  EventQueue resumes_;  // task-resume events
  Time lookahead_ = 1000;  // conservative default; cluster overrides
  Time watchdog_ns_ = 0;   // 0 = watchdog off
  Time last_progress_ = 0;  // event time of the latest task resume
  std::function<std::string()> stall_reporter_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<Task*> tasks_;
  bool running_ = false;
};

}  // namespace fgdsm::sim
