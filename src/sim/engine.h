// Deterministic discrete-event engine with partitioned event queues and a
// conservative synchronous-window parallel mode (--sim-threads).
//
// The engine owns one event partition per simulated node group (the cluster
// maps node i to partition i). Each partition holds two queues of
// (time, sequence, callback) events backed by a pooled slab representation
// (src/sim/event_pool.h): records are recycled through a free list and
// ordered by a binary heap of indices, so the steady state processes events
// with zero heap allocations. Within a partition, events at equal timestamps
// run in scheduling order (seq is a per-partition total order across both
// queues), so every run of the same program is bit-identical.
//
// Parallel mode (conservative synchronous-window PDES): with more than one
// partition, run() repeatedly
//   1. computes the global safe time S = min over all partitions of the
//      earliest pending event, and the window boundary
//      W = S + min-link-latency (set_window_lookahead; the cluster wires in
//      Network::min_link_latency());
//   2. lets every partition drain its events with t < W independently — one
//      worker thread per partition group, statically pinned so a task fiber
//      never migrates between host threads;
//   3. merges cross-partition sends. A send targeting another partition is
//      buffered into the source partition's outbox (stamped with the source
//      partition's next sequence number), and at the barrier all outboxes
//      are merged in the fixed global order (dst, time, src seq, src
//      partition) and appended to the destination queues with freshly
//      assigned destination sequence numbers. Because the merge key and the
//      per-partition execution order are both independent of the host
//      thread count, --sim-threads=N is bit-identical to --sim-threads=1.
// Correctness of the window rests on the same minimum-latency argument as
// the task lookahead below: nothing one partition does during [S, W) can be
// observed by another partition before W, because every cross-partition
// influence crosses the wire (>= min link latency). merge() asserts this
// invariant on every cross event.
//
// A single-partition engine (the default, and every serial/1-node run) takes
// the historical non-windowed path: one loop popping the global (time, seq)
// minimum, with no barriers and no worker threads.
//
// Events come in two kinds:
//   - ordinary events ("handler" events: message deliveries, timers) — a
//     running task must never let its virtual clock pass one of these,
//     because the event may mutate state the task observes (block tags);
//   - task-resume events — bookkeeping for the fiber baton. A running task
//     may run ahead of another task's pending resume by strictly less than
//     the engine's *lookahead* (conservative-PDES style): lookahead must be
//     a lower bound on the latency with which one task's actions can affect
//     another (here: message injection + wire latency). In windowed runs the
//     window boundary W additionally caps every task's clock; both bounds
//     preserve causality and break the livelock of equal-timestamp tasks
//     yielding to each other unconditionally.
// next_event_time() reports only ordinary events; the run loop interleaves
// both kinds in (time, sequence) order per partition.
//
// Reentrancy invariant (changed shape in the --sim-threads refactor): an
// Engine remains a fully self-contained value — no simulation RESULT ever
// depends on process-global mutable state — but a multi-partition engine is
// no longer confined to one host thread. During a windowed run() the engine
// fans partitions out over an internal worker crew; everything a partition's
// events touch (its node's memory, tags, per-link channel state, its task's
// fiber) is owned by exactly one partition, partitions are statically pinned
// to workers, and all cross-partition effects flow through the outbox merge
// at the window barrier, which is also the only cross-thread happens-before
// edge the simulation needs. The thread-affine pieces are per host thread
// (the fiber hand-off slot in task.cc, the drain context below, InlineFn's
// diagnostic boxed counter). Host-level sizing (how many workers actually
// spawn) comes from the process-wide sim::HostBudget so batch-level and
// sim-level parallelism share one core budget; the grant affects wall time
// only, never results. Any number of independent simulations may still run
// concurrently on separate host threads (exec::BatchRunner), bit-identical
// to running them serially. A single Engine must never be entered from two
// threads at once — only its own run() may fan out.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_pool.h"
#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

class Task;

// Thrown when forward progress provably stopped: the watchdog saw no compute
// task advance for a full stall window of virtual time, or the reliable
// channel exhausted a message's retry budget. Carries the structured
// diagnostic (blocked tasks with node/wait reason, unacked channel state,
// the offending link and message type) so a harness can print it and exit
// with kStallExitCode instead of hanging.
class StallError : public AssertionError {
 public:
  explicit StallError(const std::string& what) : AssertionError(what) {}
};

// Distinct process exit code for watchdog/stall terminations, so scripts and
// CI can tell "the protocol hung" from an ordinary failure.
inline constexpr int kStallExitCode = 86;

// Print the stall diagnostic and terminate with the documented exit code.
// The standard catch-site epilogue for harness main()s.
[[noreturn]] void exit_stall(const StallError& e);

// Thrown when a node suffered an unrecoverable fail-stop crash: crash
// injection is on but no checkpoint exists to roll back to
// (--checkpoint-every=0). Carries a structured diagnostic naming the dead
// node, so harnesses exit with kCrashExitCode instead of hanging or
// reporting a generic stall.
class CrashError : public AssertionError {
 public:
  explicit CrashError(const std::string& what) : AssertionError(what) {}
};

// Distinct process exit code for unrecoverable-crash terminations.
inline constexpr int kCrashExitCode = 87;

// Print the crash diagnostic and terminate with the documented exit code.
[[noreturn]] void exit_crash(const CrashError& e);

class Engine {
 public:
  Engine() : parts_(1) { parts_[0].index = 0; }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  // ---- Partition topology (before any scheduling) ----

  // Split the event space into n partitions (the cluster passes nnodes).
  // Must be called before any event is scheduled or task registered.
  void set_partitions(int n);
  int partitions() const { return static_cast<int>(parts_.size()); }

  // Node -> partition mapping: identity for a partitioned engine, everything
  // to partition 0 otherwise. Used by the network to route deliveries into
  // the destination's partition.
  int partition_of_node(int node) const {
    if (parts_.size() == 1) return 0;
    FGDSM_DCHECK(node >= 0 && node < static_cast<int>(parts_.size()));
    return node;
  }

  // Desired worker threads for windowed runs (clamped to the partition
  // count and the process-wide sim::HostBudget grant at run() time). The
  // thread count never affects simulated results — only wall time.
  void set_sim_threads(int n) { sim_threads_ = n < 1 ? 1 : n; }
  int sim_threads() const { return sim_threads_; }

  // The synchronous-window lookahead: a lower bound on the latency of any
  // cross-partition influence (the cluster passes
  // Network::min_link_latency()). 0 (the default) falls back to the task
  // lookahead.
  void set_window_lookahead(Time w);
  Time window_lookahead() const {
    return window_lookahead_ > 0 ? window_lookahead_ : lookahead_;
  }

  // ---- Scheduling ----

  // Schedule an ordinary event at virtual time t (>= now()) in the current
  // partition (the one whose event is executing; partition 0 outside a run).
  // Any callable whose captures fit InlineFn::kCapacity is stored without
  // allocating.
  template <typename F>
  void schedule(Time t, F&& fn) {
    schedule_impl(current_partition_index(), t, /*is_resume=*/false,
                  InlineFn(std::forward<F>(fn)));
  }
  template <typename F>
  void schedule_after(Time dt, F&& fn) {
    schedule(now() + dt, std::forward<F>(fn));
  }

  // Schedule into the partition owning `node` — the network's delivery
  // path. From inside another partition's drain this buffers the event into
  // the source outbox for the deterministic barrier merge.
  template <typename F>
  void schedule_node(int node, Time t, F&& fn) {
    schedule_impl(partition_of_node(node), t, /*is_resume=*/false,
                  InlineFn(std::forward<F>(fn)));
  }

  // Schedule a task resumption in partition `part` (Task internals only).
  template <typename F>
  void schedule_task_resume(int part, Time t, F&& fn) {
    schedule_impl(part, t, /*is_resume=*/true, InlineFn(std::forward<F>(fn)));
  }

  // ---- Time queries ----

  // Time of the event currently being processed in the calling partition
  // (or the last committed global time outside a drain).
  Time now() const {
    const Partition* cur = current_partition();
    return cur != nullptr ? cur->now : now_;
  }

  // Timestamp of the earliest pending ordinary event, or kTimeInfinity.
  // Inside a drain this reports the calling partition's queue — the only
  // events a running task must not overtake; cross-partition events are
  // bounded by window_end() instead. Safe to call from a running task:
  // while a task runs, its partition's engine loop is blocked.
  Time next_event_time() const {
    const Partition* cur = current_partition();
    if (cur != nullptr)
      return cur->events.empty() ? kTimeInfinity : cur->events.top_time();
    Time t = kTimeInfinity;
    for (const Partition& p : parts_)
      if (!p.events.empty() && p.events.top_time() < t)
        t = p.events.top_time();
    return t;
  }

  // Timestamp of the earliest pending task resume, or kTimeInfinity.
  Time next_resume_time() const {
    const Partition* cur = current_partition();
    if (cur != nullptr)
      return cur->resumes.empty() ? kTimeInfinity : cur->resumes.top_time();
    Time t = kTimeInfinity;
    for (const Partition& p : parts_)
      if (!p.resumes.empty() && p.resumes.top_time() < t)
        t = p.resumes.top_time();
    return t;
  }

  // Index of the partition whose event is executing on the calling thread
  // (0 outside a drain). Lets per-cluster facilities (the payload pool)
  // shard their state per partition without plumbing a node id through
  // every call site.
  int current_partition_id() const { return current_partition_index(); }

  // Current window boundary: no task in a windowed run may advance its
  // clock past this (cross-partition events merged at the barrier may land
  // exactly here). Infinity outside windowed runs.
  Time window_end() const {
    return windowed_running_ ? window_end_ : kTimeInfinity;
  }

  // Minimum cross-task influence latency (see file comment). Must be >= 2 to
  // guarantee progress between equal-timestamp tasks; the cluster layer sets
  // it from the cost model (message injection + wire latency).
  void set_lookahead(Time la);
  Time lookahead() const { return lookahead_; }

  // Run the event loop until all partitions drain. Throws if registered
  // tasks are still blocked when the queues drain (deadlock), or StallError
  // if the watchdog detects a virtual-time stall (see set_watchdog).
  // Reusable: the running flag is released on every exit path (including
  // exceptions thrown out of event callbacks), so a caught failure does not
  // poison later run() calls on the same engine.
  void run();

  // ---- Progress watchdog (--watchdog-ns) ----
  // With stall_ns > 0, the run loop fails with StallError whenever event
  // time moves stall_ns past the last compute-task resume while unfinished
  // tasks remain — i.e. handlers/timers keep firing (retransmissions) but no
  // task makes progress. 0 disables the watchdog (the default). Windowed
  // runs check at window granularity (S - last progress), which bounds the
  // detection delay by one window and keeps the check deterministic.
  void set_watchdog(Time stall_ns) { watchdog_ns_ = stall_ns; }

  // Extra diagnostic context appended to every stall report (the cluster
  // wires in channel + protocol state).
  void set_stall_reporter(std::function<std::string()> fn) {
    stall_reporter_ = std::move(fn);
  }

  // ---- Crash recovery hook (windowed runs) ----
  // Called single-threaded from the coordinator, between window barriers,
  // whenever the run would otherwise fail or finish with unfinished tasks:
  // (a) a partition stalled (channel retry-budget exhaustion — the crash
  // detection signal), (b) the watchdog fired, or (c) every queue drained
  // while tasks remain blocked. Return true to mean "state repaired, keep
  // running" (the hook typically rolled the cluster back to a checkpoint and
  // scheduled fresh resume events); false to proceed with the normal
  // failure path. The hook may itself throw (e.g. CrashError when no
  // checkpoint exists). No hook, or a single-partition engine, behaves
  // exactly as before.
  void set_recovery_hook(std::function<bool()> fn) {
    recovery_hook_ = std::move(fn);
  }

  // ---- Window hook (windowed runs) ----
  // Called single-threaded from the coordinator at every window barrier,
  // right after the cross-partition merge: every partition has fully drained
  // its window, so all task fibers are host-quiescent and may be inspected.
  // The cluster uses it to capture checkpoints requested by an event earlier
  // in the window (the request itself runs inside a partition drain, where
  // other partitions' fibers may still be executing on their workers).
  void set_window_hook(std::function<void()> fn) {
    window_hook_ = std::move(fn);
  }

  // Latest committed virtual time across all partitions — the earliest
  // instant a recovery hook may schedule new events at (coordinator context
  // only; used to place the rollback resume time).
  Time max_partition_now() const {
    Time t = now_;
    for (const Partition& p : parts_)
      if (p.now > t) t = p.now;
    return t;
  }

  // Compose `reason` + blocked-task dump + reporter context and throw
  // StallError. Also the failure entry point for the reliable channel's
  // retry-budget exhaustion. Inside a windowed drain the composition is
  // deferred: the reason unwinds the partition, the window completes on the
  // other partitions, and the coordinator composes the full report
  // single-threaded at the barrier (identical text at any --sim-threads).
  [[noreturn]] void fail_stall(const std::string& reason) const;

  // One line per live task: name, node id, and what it is waiting on.
  std::string describe_blocked_tasks() const;

  // True while any registered task has not run to completion. The reliable
  // channel uses this to distinguish a real stall (work remains) from
  // transport cleanup after the program finished (a lost final ack is moot).
  // During a windowed run this returns the barrier-published snapshot (at
  // most one window stale) so mid-window callers on any worker observe the
  // same deterministic value at any --sim-threads.
  bool any_task_unfinished() const {
    if (windowed_running_) return !tasks_done_snapshot_;
    return any_task_unfinished_raw();
  }

  // Task registration (used by sim::Task's constructor/destructor).
  void register_task(Task* t);
  void unregister_task(Task* t);

  std::uint64_t events_processed() const {
    std::uint64_t n = 0;
    for (const Partition& p : parts_) n += p.events_processed;
    return n;
  }

  // Allocation accounting for the perf-regression tests: how many times the
  // event slabs grew. Flat across iterations once a run reaches steady
  // state (records are recycled through the free lists).
  std::uint64_t event_slab_grows() const {
    std::uint64_t n = 0;
    for (const Partition& p : parts_)
      n += p.events.slab_grows() + p.resumes.slab_grows();
    return n;
  }

  // Test hook: start every partition's sequence counter at `base`, to
  // exercise ordering and the barrier merge near the top of the 64-bit
  // space (the seq-wraparound regression test). Traffic must not have
  // started yet.
  void set_seq_base(std::uint64_t base);

 private:
  friend class Task;

  // A cross-partition event buffered during a window, merged at the
  // barrier. src_seq was drawn from the SOURCE partition's counter (it is
  // the deterministic merge key); on insertion the destination assigns a
  // fresh seq so per-queue seqs stay monotone in insertion order.
  struct CrossEvent {
    int dst_part;
    Time t;
    std::uint64_t src_seq;
    std::uint32_t src_part;
    bool is_resume;
    InlineFn fn;
  };

  // One event partition. alignas(64) keeps concurrently drained partitions
  // off each other's cache lines.
  struct alignas(64) Partition {
    EventQueue events;   // ordinary (handler) events
    EventQueue resumes;  // task-resume events
    std::uint64_t next_seq = 0;
    std::uint64_t events_processed = 0;
    Time now = 0;
    Time last_progress = 0;  // event time of the latest task resume
    std::vector<CrossEvent> outbox;
    // First failure inside this partition's current window (composed and
    // rethrown by the coordinator; lowest partition id wins).
    std::exception_ptr error;
    std::string stall_reason;
    bool stalled = false;
    int index = 0;

    Time front_time() const;
  };

  // The partition whose event is executing on THIS host thread (null when
  // no drain is active here). Thread-local so concurrent workers — and
  // independent engines on batch threads — never alias.
  static const Engine*& tls_engine() {
    static thread_local const Engine* e = nullptr;
    return e;
  }
  static Partition*& tls_partition() {
    static thread_local Partition* p = nullptr;
    return p;
  }
  const Partition* current_partition() const {
    return tls_engine() == this ? tls_partition() : nullptr;
  }
  int current_partition_index() const {
    const Partition* cur = current_partition();
    return cur != nullptr ? cur->index : 0;
  }

  // Hot path: insert into the target partition, or — when called from
  // another partition's drain — buffer into the source outbox for the
  // barrier merge, stamped with the SOURCE partition's sequence number (the
  // deterministic merge key).
  void schedule_impl(int part, Time t, bool is_resume, InlineFn fn) {
    FGDSM_ASSERT_MSG(part >= 0 && part < static_cast<int>(parts_.size()),
                     "partition " << part << " out of range");
    Partition* cur = tls_engine() == this ? tls_partition() : nullptr;
    if (cur != nullptr && part != cur->index) {
      FGDSM_ASSERT_MSG(t >= cur->now,
                       "cross-partition event scheduled in the past: t=" << t
                           << " < now=" << cur->now);
      cur->outbox.push_back(CrossEvent{part, t, cur->next_seq++,
                                       static_cast<std::uint32_t>(cur->index),
                                       is_resume, std::move(fn)});
      return;
    }
    Partition& p =
        cur != nullptr ? *cur : parts_[static_cast<std::size_t>(part)];
    FGDSM_ASSERT_MSG(t >= p.now, "event scheduled in the past: t="
                                     << t << " < now=" << p.now);
    (is_resume ? p.resumes : p.events).push(t, p.next_seq++, std::move(fn));
  }

  // True if a's front event should run before b's ((time, seq) order).
  static bool front_precedes(const EventQueue& a, const EventQueue& b);

  void run_single();    // historical path: one partition, no windows
  void run_windowed();  // conservative synchronous-window PDES
  void drain_partition(Partition& p, Time wend);
  void merge_cross(std::vector<CrossEvent>& scratch);
  void throw_partition_error();
  bool any_task_unfinished_raw() const;
  void check_deadlock() const;
  [[noreturn]] void compose_and_throw_stall(const std::string& reason) const;

  std::vector<Partition> parts_;
  Time lookahead_ = 1000;  // conservative default; cluster overrides
  Time window_lookahead_ = 0;  // 0 = fall back to lookahead_
  int sim_threads_ = 1;
  Time watchdog_ns_ = 0;  // 0 = watchdog off
  std::function<std::string()> stall_reporter_;
  std::function<bool()> recovery_hook_;
  std::function<void()> window_hook_;
  Time now_ = 0;  // committed global time (outside any drain)
  // Window state: written by the coordinator between barriers, read by
  // workers during the window (the barrier provides the ordering).
  Time window_end_ = kTimeInfinity;
  bool windowed_running_ = false;
  bool tasks_done_snapshot_ = false;
  std::vector<Task*> tasks_;
  bool running_ = false;
};

}  // namespace fgdsm::sim
