#include "src/sim/fault.h"

#include <cstdlib>
#include <sstream>

#include "src/util/assert.h"

namespace fgdsm::sim {

namespace {

// splitmix64 — a full-avalanche mixer; counter-mode use (hash of a unique
// index) gives independent, reproducible draws with no carried state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

bool parse_rate(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return !v.empty() && end == v.c_str() + v.size() && *out >= 0.0 &&
         *out <= 1.0;
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(v.c_str(), &end, 10);
  return !v.empty() && end == v.c_str() + v.size();
}

}  // namespace

FaultConfig FaultConfig::parse(const std::string& spec, std::string* error) {
  FaultConfig c;
  error->clear();
  c.enabled = true;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty() || item == "1") continue;  // bare --faults
    const std::size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : item.substr(eq + 1);
    bool ok = true;
    std::uint64_t u = 0;
    if (key == "drop") {
      ok = parse_rate(val, &c.drop);
    } else if (key == "dup") {
      ok = parse_rate(val, &c.dup);
    } else if (key == "delay") {
      ok = parse_rate(val, &c.delay);
    } else if (key == "reorder") {
      ok = parse_rate(val, &c.reorder);
    } else if (key == "delay-ns") {
      ok = parse_u64(val, &u);
      c.delay_ns = static_cast<Time>(u);
    } else if (key == "rto-ns") {
      ok = parse_u64(val, &u);
      c.rto_ns = static_cast<Time>(u);
    } else if (key == "seed") {
      ok = parse_u64(val, &c.seed);
    } else if (key == "retries") {
      ok = parse_u64(val, &u) && u <= 30;  // 2^30 * rto already absurd
      c.max_retries = static_cast<int>(u);
    } else {
      *error = "unknown fault key '" + key +
               "' (expected drop/dup/delay/reorder/delay-ns/rto-ns/seed/"
               "retries)";
      return FaultConfig{};
    }
    if (!ok) {
      *error = "invalid value '" + val + "' for fault key '" + key + "'";
      return FaultConfig{};
    }
  }
  return c;
}

std::string FaultConfig::summary() const {
  std::ostringstream os;
  os << "drop=" << drop << " dup=" << dup << " delay=" << delay
     << " reorder=" << reorder << " seed=" << seed
     << " retries=" << max_retries;
  return os.str();
}

FaultInjector::FaultInjector(const FaultConfig& cfg, int nnodes,
                             Time default_window)
    : cfg_(cfg),
      nnodes_(nnodes),
      window_(cfg.delay_ns > 0 ? cfg.delay_ns : default_window) {
  FGDSM_ASSERT(nnodes >= 1);
  if (nnodes <= kFlatLinkNodes)
    link_count_.resize(static_cast<std::size_t>(nnodes) *
                       static_cast<std::size_t>(nnodes));
  FGDSM_ASSERT_MSG(window_ > 0, "fault delay window must be positive");
}

std::uint64_t FaultInjector::hash(int src, int dst, std::uint64_t n,
                                  std::uint64_t salt) const {
  const std::uint64_t link = static_cast<std::uint64_t>(src) *
                                 static_cast<std::uint64_t>(nnodes_) +
                             static_cast<std::uint64_t>(dst);
  // Mixing in stages keeps every (seed, link, index, salt) draw independent.
  return mix64(mix64(mix64(cfg_.seed ^ 0x5eedull) ^ link) ^
               (n * 4 + salt));
}

FaultInjector::Decision FaultInjector::decide(int src, int dst) {
  const std::size_t link = static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(nnodes_) +
                           static_cast<std::size_t>(dst);
  const std::uint64_t n = link_counter(link)++;
  Decision d;
  util::NodeStats* st =
      static_cast<std::size_t>(src) < stats_.size() ? stats_[src] : nullptr;
  if (cfg_.drop > 0 && u01(hash(src, dst, n, 0)) < cfg_.drop) {
    d.drop = true;
    if (st != nullptr) ++st->faults_dropped;
    return d;  // a dropped message needs no further verdicts
  }
  const std::uint64_t jitter = hash(src, dst, n, 1);
  if (cfg_.delay > 0 && u01(hash(src, dst, n, 2)) < cfg_.delay)
    d.extra_delay += 1 + static_cast<Time>(jitter % static_cast<std::uint64_t>(
                                               window_));
  if (cfg_.reorder > 0 && u01(hash(src, dst, n, 3)) < cfg_.reorder)
    d.extra_delay +=
        1 + static_cast<Time>(mix64(jitter) %
                              static_cast<std::uint64_t>(2 * window_));
  if (d.extra_delay > 0 && st != nullptr) ++st->faults_delayed;
  if (cfg_.dup > 0 && u01(hash(src, dst, n, 4)) < cfg_.dup) {
    d.duplicate = true;
    d.dup_delay = 1 + static_cast<Time>(mix64(jitter ^ 0xd0bull) %
                                        static_cast<std::uint64_t>(window_));
    if (st != nullptr) ++st->faults_duplicated;
  }
  return d;
}

}  // namespace fgdsm::sim
