#include "src/sim/fault.h"

#include <cstdlib>
#include <sstream>

#include "src/util/assert.h"
#include "src/util/options.h"

namespace fgdsm::sim {

namespace {

// splitmix64 — a full-avalanche mixer; counter-mode use (hash of a unique
// index) gives independent, reproducible draws with no carried state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

bool parse_rate(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return !v.empty() && end == v.c_str() + v.size() && *out >= 0.0 &&
         *out <= 1.0;
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(v.c_str(), &end, 10);
  return !v.empty() && end == v.c_str() + v.size();
}

}  // namespace

FaultConfig FaultConfig::parse(const std::string& spec, std::string* error) {
  FaultConfig c;
  error->clear();
  c.enabled = true;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty() || item == "1") continue;  // bare --faults
    const std::size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : item.substr(eq + 1);
    bool ok = true;
    std::uint64_t u = 0;
    if (key == "drop") {
      ok = parse_rate(val, &c.drop);
    } else if (key == "dup") {
      ok = parse_rate(val, &c.dup);
    } else if (key == "delay") {
      ok = parse_rate(val, &c.delay);
    } else if (key == "reorder") {
      ok = parse_rate(val, &c.reorder);
    } else if (key == "delay-ns") {
      ok = parse_u64(val, &u);
      c.delay_ns = static_cast<Time>(u);
    } else if (key == "rto-ns") {
      ok = parse_u64(val, &u);
      c.rto_ns = static_cast<Time>(u);
    } else if (key == "seed") {
      ok = parse_u64(val, &c.seed);
    } else if (key == "retries") {
      ok = parse_u64(val, &u) && u <= 30;  // 2^30 * rto already absurd
      c.max_retries = static_cast<int>(u);
    } else if (key == "crash") {
      // crash=<node>@<ns>: fail-stop the node at that virtual time.
      // Repeatable; each occurrence appends one scheduled crash.
      const std::size_t at = val.find('@');
      std::uint64_t node = 0, ns = 0;
      ok = at != std::string::npos && at > 0 &&
           parse_u64(val.substr(0, at), &node) &&
           parse_u64(val.substr(at + 1), &ns) && node <= 0x7fffffffull;
      if (ok)
        c.crashes.emplace_back(static_cast<int>(node),
                               static_cast<Time>(ns));
    } else if (key == "crashp") {
      ok = parse_rate(val, &c.crashp);
    } else {
      static const std::vector<std::string> kKnown = {
          "drop",   "dup",  "delay",   "reorder", "delay-ns",
          "rto-ns", "seed", "retries", "crash",   "crashp"};
      const std::string hint = util::Options::closest_match(key, kKnown);
      *error = "unknown fault key '" + key + "'" +
               (hint.empty() ? std::string() :
                               " (did you mean '" + hint + "'?)") +
               "; expected drop/dup/delay/reorder/delay-ns/rto-ns/seed/"
               "retries/crash/crashp";
      return FaultConfig{};
    }
    if (!ok) {
      *error = "invalid value '" + val + "' for fault key '" + key + "'";
      return FaultConfig{};
    }
  }
  return c;
}

std::string FaultConfig::summary() const {
  std::ostringstream os;
  os << "drop=" << drop << " dup=" << dup << " delay=" << delay
     << " reorder=" << reorder << " seed=" << seed
     << " retries=" << max_retries;
  if (crashp > 0.0) os << " crashp=" << crashp;
  for (const auto& [node, t] : crashes)
    os << " crash=" << node << "@" << t;
  return os.str();
}

FaultInjector::FaultInjector(const FaultConfig& cfg, int nnodes,
                             Time default_window)
    : cfg_(cfg),
      nnodes_(nnodes),
      window_(cfg.delay_ns > 0 ? cfg.delay_ns : default_window) {
  FGDSM_ASSERT(nnodes >= 1);
  if (nnodes <= kFlatLinkNodes)
    link_count_.resize(static_cast<std::size_t>(nnodes) *
                       static_cast<std::size_t>(nnodes));
  FGDSM_ASSERT_MSG(window_ > 0, "fault delay window must be positive");
}

std::uint64_t FaultInjector::hash(int src, int dst, std::uint64_t n,
                                  std::uint64_t salt) const {
  const std::uint64_t link = static_cast<std::uint64_t>(src) *
                                 static_cast<std::uint64_t>(nnodes_) +
                             static_cast<std::uint64_t>(dst);
  // Mixing in stages keeps every (seed, link, index, salt) draw independent.
  return mix64(mix64(mix64(cfg_.seed ^ 0x5eedull) ^ link) ^
               (n * 4 + salt));
}

bool FaultInjector::crash_at_barrier(int node, std::uint64_t epoch) const {
  if (cfg_.crashp <= 0.0) return false;
  // Disjoint chain from the per-link draws: a different salt on the seed
  // stage means no (link, index) message draw can collide with a
  // (node, epoch) crash draw. Stateless — safe from any thread.
  const std::uint64_t h =
      mix64(mix64(mix64(cfg_.seed ^ 0xc7a5b1ull) ^
                  static_cast<std::uint64_t>(node)) ^
            epoch);
  return u01(h) < cfg_.crashp;
}

FaultInjector::Decision FaultInjector::decide(int src, int dst) {
  const std::size_t link = static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(nnodes_) +
                           static_cast<std::size_t>(dst);
  const std::uint64_t n = link_counter(link)++;
  Decision d;
  util::NodeStats* st =
      static_cast<std::size_t>(src) < stats_.size() ? stats_[src] : nullptr;
  if (cfg_.drop > 0 && u01(hash(src, dst, n, 0)) < cfg_.drop) {
    d.drop = true;
    if (st != nullptr) ++st->faults_dropped;
    return d;  // a dropped message needs no further verdicts
  }
  const std::uint64_t jitter = hash(src, dst, n, 1);
  if (cfg_.delay > 0 && u01(hash(src, dst, n, 2)) < cfg_.delay)
    d.extra_delay += 1 + static_cast<Time>(jitter % static_cast<std::uint64_t>(
                                               window_));
  if (cfg_.reorder > 0 && u01(hash(src, dst, n, 3)) < cfg_.reorder)
    d.extra_delay +=
        1 + static_cast<Time>(mix64(jitter) %
                              static_cast<std::uint64_t>(2 * window_));
  if (d.extra_delay > 0 && st != nullptr) ++st->faults_delayed;
  if (cfg_.dup > 0 && u01(hash(src, dst, n, 4)) < cfg_.dup) {
    d.duplicate = true;
    d.dup_delay = 1 + static_cast<Time>(mix64(jitter ^ 0xd0bull) %
                                        static_cast<std::uint64_t>(window_));
    if (st != nullptr) ++st->faults_duplicated;
  }
  return d;
}

}  // namespace fgdsm::sim
