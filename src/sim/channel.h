// Reliable transport channel: turns the (possibly faulty) Network into an
// in-order, exactly-once message pipe per directed link.
//
// Mechanics, modeled on classic sliding-window transports:
//   - every wire-crossing message carries a per-link sequence number (ch_seq,
//     1-based; 0 marks unsequenced traffic: loopback and pure acks);
//   - every outgoing message piggybacks the sender's cumulative receive count
//     for the reverse link (ch_ack), so under steady protocol traffic acks
//     cost nothing; a delayed pure-ack message (cfg.ack_type) covers one-way
//     bursts;
//   - the sender keeps each unacked message and arms a retransmission timer
//     (base RTO, exponential backoff, bounded retry budget); exhaustion is a
//     provable liveness failure and escalates to Engine::fail_stall with the
//     offending link and message type;
//   - the receiver delivers in sequence order, buffers out-of-order arrivals,
//     and suppresses duplicates (retransmitted or fault-duplicated copies).
//
// Bookkeeping: the sender's retained copies live in a power-of-two ring
// indexed by sequence number (consecutive seqs make the sliding window a
// natural ring; the ring doubles on the rare occasion the window outgrows
// it), and the receiver's out-of-order buffer is a small sorted vector —
// no node-per-message containers on the retransmission path. Sequence
// numbers are 64-bit end to end, so they never wrap within any realistic
// soak (the earlier 32-bit fields, compared with plain </>, misordered after
// 2^32 messages on one link).
//
// Link-state residency: at paper scale (nnodes <= kFlatLinkNodes) the
// per-link books live in flat nnodes^2 vectors indexed src*nnodes+dst — the
// historical fast path, untouched. Larger clusters switch to per-source
// hash maps where a link's book is allocated on its first traffic, so
// resident state grows with *active* links rather than nodes^2 (a 1024-node
// cluster would otherwise hold ~1M tx+rx records before the first message).
// Lazily created links inherit initial_seq_ exactly as the flat path does,
// and every map is keyed/iterated deterministically (sorted on iteration),
// preserving bit-identity.
//
// The channel exists only in chaos mode (tempest::Cluster creates it iff
// --faults is given); a fault-free configuration keeps the original direct
// Network::send path, so reliability costs nothing when unused. Determinism:
// all per-link state lives in plain arrays keyed by (src,dst) and all
// timers go through the engine's (time, seq) order, so runs are bit-identical
// for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/network.h"
#include "src/sim/time.h"
#include "src/util/stats.h"

namespace fgdsm::sim {

struct ChannelConfig {
  Time rto_ns = 200'000;       // base retransmission timeout
  Time ack_delay_ns = 50'000;  // pure-ack deferral (hoping to piggyback)
  int max_retries = 10;        // attempts beyond the first send; 0 = none
  std::uint16_t ack_type = 0;  // message type reserved for pure acks
};

class ReliableChannel {
 public:
  ReliableChannel(Engine& engine, Network& net, int nnodes, ChannelConfig cfg);

  // Install the app-facing delivery sink for `node`. The channel installs
  // itself as the node's Network sink and forwards in-order traffic here.
  void attach(int node, Network::DeliverFn deliver);

  // Per-node counter sinks (retransmits/channel_acks land on the sending
  // node, dup_suppressed on the receiving node). Optional.
  void set_stats(std::vector<util::NodeStats*> stats) {
    stats_ = std::move(stats);
  }

  // Pretty-printer for diagnostics: message type id -> name.
  void set_type_namer(std::function<const char*(std::uint16_t)> fn) {
    type_name_ = std::move(fn);
  }

  // Crash mode: `down(node)` answers whether the node is currently
  // fail-stopped. A down node neither receives (inbound traffic at it is
  // dropped before ack processing — it stops acking, which is exactly the
  // detection signal), nor retransmits, nor sends pure acks. The probe is
  // only consulted at partition-safe sites: the receive path and timer
  // bodies all run in the probed node's own partition.
  void set_down_probe(std::function<bool(int)> down) {
    down_ = std::move(down);
  }

  // Rollback-restart: drop every retained copy, out-of-order buffer and
  // timer obligation, and restart all links (resident and future) at a
  // common sequence base past every seq ever assigned. In-flight copies
  // from the abandoned timeline then land strictly at-or-below the new base
  // and are suppressed as duplicates, while post-recovery traffic sequences
  // cleanly — the same inheritance path PR'd for set_initial_seq.
  void reset_for_recovery();

  // Exponential-backoff cap: RTO << min(attempt, kBackoffCapShift). Bounds
  // the inter-probe gap on a dead link (and so crash-detection latency) to
  // 2^6 * rto while keeping early backoff exponential.
  static constexpr int kBackoffCapShift = 6;

  // Sequence msg, stamp the piggyback ack, retain a retransmission copy and
  // arm its timer, then hand it to the network. Returns injection end (same
  // contract as Network::send). Loopback messages bypass the channel.
  Time send(Time earliest, Message msg);

  // One line per link with unacked traffic — appended to stall reports.
  std::string describe_state() const;

  // Test hook: make every link behave as if it had already carried `seq`
  // messages in each direction (all acked). Used by the wrap regression test
  // to start sequencing near former overflow points (e.g. UINT32_MAX - k).
  // Must be called before any traffic flows.
  void set_initial_seq(std::uint64_t seq);

  // Number of directed links with resident per-link state (allocated lazily
  // above kFlatLinkNodes; counted by traffic below it). Idle links
  // contribute nothing — the scaling tests assert this.
  std::size_t resident_links() const;

  // Node-count threshold for the flat vs lazy link-state layout.
  static constexpr int kFlatLinkNodes = 64;

 private:
  struct TxSlot {
    Message msg;
    std::uint64_t seq = 0;
    bool live = false;  // retained and awaiting ack
  };
  struct TxLink {
    std::uint64_t next_seq = 0;  // last sequence number assigned
    std::uint64_t acked = 0;     // highest cumulatively acked seq
    std::uint64_t win_base = 1;  // smallest seq that may still be live
    std::size_t live_count = 0;
    std::vector<TxSlot> ring;  // power-of-two; slot for seq s = s & mask
  };
  struct RxLink {
    std::uint64_t cum = 0;            // delivered in order through cum
    std::uint64_t last_ack_sent = 0;  // newest cum the peer has seen
    bool ack_timer_armed = false;
    std::vector<Message> ooo;  // out-of-order arrivals, sorted by ch_seq
  };

  std::size_t link(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(nnodes_) +
           static_cast<std::size_t>(dst);
  }
  bool flat() const { return nnodes_ <= kFlatLinkNodes; }

  // Get-or-create accessors (lazy above kFlatLinkNodes; created links
  // inherit initial_seq_). References stay valid across later creations —
  // unordered_map never invalidates references on rehash.
  TxLink& tx(int src, int dst);
  RxLink& rx(int src, int dst);
  // Lookup-only variants: null when the link has no resident state yet.
  TxLink* tx_find(int src, int dst);
  RxLink* rx_find(int src, int dst);
  // Sorted (src,dst) pairs with link state (all pairs in the flat layout).
  std::vector<std::pair<int, int>> active_links() const;
  util::NodeStats* stats_for(int node) {
    return static_cast<std::size_t>(node) < stats_.size() ? stats_[node]
                                                          : nullptr;
  }
  const char* type_name(std::uint16_t t) const {
    return type_name_ ? type_name_(t) : "?";
  }

  // Slot lookup for a seq that may already have been acked/cleaned; null if
  // it is no longer retained.
  TxSlot* find_slot(TxLink& t, std::uint64_t seq);
  void retain(TxLink& t, const Message& msg);
  void release_slot(TxLink& t, TxSlot& s);

  void on_receive(int node, Message&& m, Time arrival);
  void process_ack(int src, int dst, std::uint64_t ack);
  void arm_retransmit(int src, int dst, std::uint64_t seq, int attempt);
  void schedule_pure_ack(int src, int dst);
  [[noreturn]] void fail_retries(int src, int dst, std::uint64_t seq,
                                 const Message& m, int attempts);

  Engine& engine_;
  Network& net_;
  int nnodes_;
  ChannelConfig cfg_;
  // Flat layout (nnodes <= kFlatLinkNodes): nnodes^2 vectors, the original
  // fast path. Sparse layout: per-source maps keyed by dst, populated on a
  // link's first traffic.
  std::vector<TxLink> tx_;                   // sender side (flat)
  std::vector<RxLink> rx_;                   // receiver side (flat)
  std::vector<std::unordered_map<int, TxLink>> tx_sparse_;  // per src
  std::vector<std::unordered_map<int, RxLink>> rx_sparse_;  // per dst's src
  std::uint64_t initial_seq_ = 0;            // inherited by lazy links
  std::vector<Network::DeliverFn> deliver_;  // app sinks, per node
  std::vector<util::NodeStats*> stats_;
  std::function<const char*(std::uint16_t)> type_name_;
  std::function<bool(int)> down_;  // null = no node is ever down
};

}  // namespace fgdsm::sim
