// Reliable transport channel: turns the (possibly faulty) Network into an
// in-order, exactly-once message pipe per directed link.
//
// Mechanics, modeled on classic sliding-window transports:
//   - every wire-crossing message carries a per-link sequence number (ch_seq,
//     1-based; 0 marks unsequenced traffic: loopback and pure acks);
//   - every outgoing message piggybacks the sender's cumulative receive count
//     for the reverse link (ch_ack), so under steady protocol traffic acks
//     cost nothing; a delayed pure-ack message (cfg.ack_type) covers one-way
//     bursts;
//   - the sender keeps each unacked message and arms a retransmission timer
//     (base RTO, exponential backoff, bounded retry budget); exhaustion is a
//     provable liveness failure and escalates to Engine::fail_stall with the
//     offending link and message type;
//   - the receiver delivers in sequence order, buffers out-of-order arrivals,
//     and suppresses duplicates (retransmitted or fault-duplicated copies).
//
// The channel exists only in chaos mode (tempest::Cluster creates it iff
// --faults is given); a fault-free configuration keeps the original direct
// Network::send path, so reliability costs nothing when unused. Determinism:
// all per-link state lives in plain arrays/maps keyed by (src,dst) and all
// timers go through the engine's (time, seq) order, so runs are bit-identical
// for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/network.h"
#include "src/sim/time.h"
#include "src/util/stats.h"

namespace fgdsm::sim {

struct ChannelConfig {
  Time rto_ns = 200'000;       // base retransmission timeout
  Time ack_delay_ns = 50'000;  // pure-ack deferral (hoping to piggyback)
  int max_retries = 10;        // attempts beyond the first send; 0 = none
  std::uint16_t ack_type = 0;  // message type reserved for pure acks
};

class ReliableChannel {
 public:
  ReliableChannel(Engine& engine, Network& net, int nnodes, ChannelConfig cfg);

  // Install the app-facing delivery sink for `node`. The channel installs
  // itself as the node's Network sink and forwards in-order traffic here.
  void attach(int node, Network::DeliverFn deliver);

  // Per-node counter sinks (retransmits/channel_acks land on the sending
  // node, dup_suppressed on the receiving node). Optional.
  void set_stats(std::vector<util::NodeStats*> stats) {
    stats_ = std::move(stats);
  }

  // Pretty-printer for diagnostics: message type id -> name.
  void set_type_namer(std::function<const char*(std::uint16_t)> fn) {
    type_name_ = std::move(fn);
  }

  // Sequence msg, stamp the piggyback ack, retain a retransmission copy and
  // arm its timer, then hand it to the network. Returns injection end (same
  // contract as Network::send). Loopback messages bypass the channel.
  Time send(Time earliest, Message msg);

  // One line per link with unacked traffic — appended to stall reports.
  std::string describe_state() const;

 private:
  struct TxLink {
    std::uint32_t next_seq = 0;            // last sequence number assigned
    std::uint32_t acked = 0;               // highest cumulatively acked seq
    std::map<std::uint32_t, Message> unacked;  // seq -> retained copy
  };
  struct RxLink {
    std::uint32_t cum = 0;                 // delivered in order through cum
    std::uint32_t last_ack_sent = 0;       // newest cum the peer has seen
    bool ack_timer_armed = false;
    std::map<std::uint32_t, Message> ooo;  // buffered out-of-order arrivals
  };

  std::size_t link(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(nnodes_) +
           static_cast<std::size_t>(dst);
  }
  util::NodeStats* stats_for(int node) {
    return static_cast<std::size_t>(node) < stats_.size() ? stats_[node]
                                                          : nullptr;
  }
  const char* type_name(std::uint16_t t) const {
    return type_name_ ? type_name_(t) : "?";
  }

  void on_receive(int node, Message&& m, Time arrival);
  void process_ack(int src, int dst, std::uint32_t ack);
  void deliver_in_order(int node, RxLink& rx, Message&& m, Time arrival);
  void arm_retransmit(int src, int dst, std::uint32_t seq, int attempt);
  void schedule_pure_ack(int src, int dst);
  [[noreturn]] void fail_retries(int src, int dst, std::uint32_t seq,
                                 const Message& m, int attempts);

  Engine& engine_;
  Network& net_;
  int nnodes_;
  ChannelConfig cfg_;
  std::vector<TxLink> tx_;                    // nnodes^2, sender side
  std::vector<RxLink> rx_;                    // nnodes^2, receiver side
  std::vector<Network::DeliverFn> deliver_;   // app sinks, per node
  std::vector<util::NodeStats*> stats_;
  std::function<const char*(std::uint16_t)> type_name_;
};

}  // namespace fgdsm::sim
