// Process-wide host-core token pool, shared by every consumer of host-level
// parallelism: exec::BatchRunner draws tokens for its batch worker threads
// and Engine::run draws tokens for its simulation worker crew, so
// --jobs × --sim-threads never oversubscribes the machine. Each running
// thread of work holds one token; the calling thread's own token is
// implicit, so acquire() only hands out tokens for EXTRA threads and may
// grant fewer than requested (down to zero) when the budget is spent.
//
// Grants affect wall-clock time only, never simulated results — this pool is
// the one documented exception to the engine's "no simulation result depends
// on process-global mutable state" rule (src/sim/engine.h).
#pragma once

#include <atomic>
#include <cstdlib>
#include <thread>

namespace fgdsm::sim {

class HostBudget {
 public:
  static HostBudget& instance() {
    static HostBudget pool;
    return pool;
  }

  // Take up to `want` extra-thread tokens. Returns the number granted, in
  // [0, want]; never blocks.
  int acquire(int want) {
    if (want <= 0) return 0;
    int avail = available_.load(std::memory_order_relaxed);
    for (;;) {
      if (avail <= 0) return 0;
      const int take = want < avail ? want : avail;
      if (available_.compare_exchange_weak(avail, avail - take,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
        return take;
    }
  }

  void release(int n) {
    if (n > 0) available_.fetch_add(n, std::memory_order_acq_rel);
  }

  int total() const { return total_; }

  // Test hook: pretend the host has n cores. Resets the pool, so callers
  // must hold no outstanding tokens.
  void set_total_for_test(int n) {
    total_ = n < 1 ? 1 : n;
    available_.store(total_ - 1, std::memory_order_release);
  }

 private:
  HostBudget() {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    // Deliberate override for tests/CI on small runners (and for users who
    // want to cap the footprint): thread counts change wall time only.
    if (const char* env = std::getenv("FGDSM_HOST_CORES")) {
      const int v = std::atoi(env);
      if (v > 0) n = v;
    }
    if (n < 1) n = 1;
    total_ = n;
    available_.store(n - 1, std::memory_order_relaxed);
  }

  int total_ = 1;
  std::atomic<int> available_{0};
};

}  // namespace fgdsm::sim
