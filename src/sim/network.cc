#include "src/sim/network.h"

#include <memory>
#include <utility>

#include "src/sim/fault.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

Network::Network(Engine& engine, const CostModel& costs, int nnodes)
    : engine_(engine), costs_(costs), tx_(nnodes), deliver_(nnodes) {}

void Network::attach(int node, DeliverFn deliver) {
  FGDSM_ASSERT(node >= 0 && node < static_cast<int>(deliver_.size()));
  deliver_[node] = std::move(deliver);
}

Time Network::tx_time(std::int64_t payload_bytes) const {
  return costs_.bytes_time(payload_bytes + costs_.msg_header_bytes);
}

Time Network::send(Time earliest, Message msg) {
  FGDSM_ASSERT(msg.src >= 0 && msg.src < static_cast<int>(tx_.size()));
  FGDSM_ASSERT_MSG(msg.dst >= 0 && msg.dst < static_cast<int>(tx_.size()),
                   "bad destination " << msg.dst);
  const std::int64_t bytes = msg.size_bytes(costs_.msg_header_bytes);
  ++total_messages_;
  total_bytes_ += static_cast<std::uint64_t>(bytes);

  // Sender-side: serialization onto the wire occupies the transmit path.
  // (Message composition cpu time is charged by the caller.)
  const Time inject_end = tx_[msg.src].acquire(
      earliest,
      costs_.bytes_time(static_cast<std::int64_t>(msg.payload.size()) +
                        costs_.msg_header_bytes));

  Time arrival = msg.dst == msg.src
                     ? inject_end  // loopback: no wire traversal
                     : inject_end + costs_.wire_latency;

  FaultInjector::Decision verdict;
  if (fault_ != nullptr && msg.dst != msg.src) {
    verdict = fault_->decide(msg.src, msg.dst);
    if (verdict.drop) {
      // The wire ate it: the sender still paid injection, nothing arrives.
      return inject_end;
    }
    arrival += verdict.extra_delay;
  }

  // The payload moves with the event; shared_ptr lets the std::function stay
  // copyable as std::function requires.
  auto boxed = std::make_shared<Message>(std::move(msg));
  DeliverFn& sink = deliver_[boxed->dst];
  FGDSM_ASSERT_MSG(sink, "no delivery sink attached for node " << boxed->dst);
  if (verdict.duplicate) {
    // A second, independent copy arrives later; the channel's duplicate
    // suppression discards whichever copy loses the race.
    const Time dup_arrival = arrival + verdict.dup_delay;
    auto dup = std::make_shared<Message>(*boxed);
    engine_.schedule(dup_arrival, [&sink, dup, dup_arrival] {
      sink(std::move(*dup), dup_arrival);
    });
  }
  engine_.schedule(arrival, [&sink, boxed, arrival] {
    sink(std::move(*boxed), arrival);
  });
  return inject_end;
}

}  // namespace fgdsm::sim
