#include "src/sim/network.h"

#include <utility>

#include "src/sim/fault.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

// The delivery closure (sink reference + Message + arrival time) must fit
// the event record's inline buffer, or every delivery falls back to a heap
// box. Trips when someone grows Message past the budget.
static_assert(sizeof(Message) + sizeof(void*) + sizeof(Time) <=
                  InlineFn::kCapacity,
              "delivery closure no longer fits the inline event buffer; "
              "shrink Message or raise InlineFn::kCapacity");

Network::Network(Engine& engine, const CostModel& costs, int nnodes)
    : engine_(engine),
      costs_(costs),
      tx_(nnodes),
      deliver_(nnodes),
      counters_(nnodes) {}

Time Network::min_link_latency() const { return costs_.wire_latency; }

void Network::attach(int node, DeliverFn deliver) {
  FGDSM_ASSERT(node >= 0 && node < static_cast<int>(deliver_.size()));
  deliver_[node] = std::move(deliver);
}

Time Network::tx_time(std::int64_t payload_bytes) const {
  return costs_.bytes_time(payload_bytes + costs_.msg_header_bytes);
}

Time Network::send(Time earliest, Message msg) {
  FGDSM_ASSERT(msg.src >= 0 && msg.src < static_cast<int>(tx_.size()));
  FGDSM_ASSERT_MSG(msg.dst >= 0 && msg.dst < static_cast<int>(tx_.size()),
                   "bad destination " << msg.dst);
  if (epoch_stamp_ != nullptr) msg.epoch = *epoch_stamp_;
  const std::int64_t bytes = msg.size_bytes(costs_.msg_header_bytes);
  TxCounters& acct = counters_[msg.src];
  ++acct.messages;
  acct.bytes += static_cast<std::uint64_t>(bytes);

  // Sender-side: serialization onto the wire occupies the transmit path.
  // (Message composition cpu time is charged by the caller.)
  const Time inject_end = tx_[msg.src].acquire(
      earliest,
      costs_.bytes_time(static_cast<std::int64_t>(msg.payload.size()) +
                        costs_.msg_header_bytes));

  Time arrival = msg.dst == msg.src
                     ? inject_end  // loopback: no wire traversal
                     : inject_end + costs_.wire_latency;

  FaultInjector::Decision verdict;
  if (fault_ != nullptr && msg.dst != msg.src) {
    verdict = fault_->decide(msg.src, msg.dst);
    if (verdict.drop) {
      // The wire ate it: the sender still paid injection, nothing arrives.
      return inject_end;
    }
    arrival += verdict.extra_delay;
  }

  // The message rides inside the event record itself (InlineFn's buffer is
  // sized for exactly this closure), so delivery costs no heap allocation.
  // Delivery is scheduled into the DESTINATION node's partition: from the
  // sender's drain this buffers into the outbox for the deterministic
  // barrier merge (arrival >= window end, by the wire-latency lookahead).
  const int dst = msg.dst;
  DeliverFn& sink = deliver_[dst];
  FGDSM_ASSERT_MSG(sink, "no delivery sink attached for node " << dst);
  if (verdict.duplicate) {
    // A second, independent copy arrives later; the channel's duplicate
    // suppression discards whichever copy loses the race.
    const Time dup_arrival = arrival + verdict.dup_delay;
    engine_.schedule_node(dst, dup_arrival,
                          [&sink, m = Message(msg), dup_arrival]() mutable {
                            sink(std::move(m), dup_arrival);
                          });
  }
  engine_.schedule_node(dst, arrival,
                        [&sink, m = std::move(msg), arrival]() mutable {
                          sink(std::move(m), arrival);
                        });
  return inject_end;
}

}  // namespace fgdsm::sim
