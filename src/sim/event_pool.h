// Pooled, allocation-free event storage for the discrete-event engine.
//
// The engine's original representation — std::priority_queue<Event> with a
// std::function<void()> per event — performed one heap allocation per event
// whose captures exceeded std::function's tiny inline buffer (every message
// delivery: sink + Message + arrival), plus a const_cast move out of
// priority_queue::top() (UB per [basic.life]). This header replaces both:
//
//   BasicInlineFn<Sig>
//               a move-only callable with a 128-byte inline buffer, sized so
//               a whole sim::Message rides inside the event record. Oversized
//               callables still work (heap-boxed) but are counted, so tests
//               can assert the hot path never boxes. Parameterized on the
//               call signature: the engine stores InlineFn (= void()), and
//               sim::Task stores its body as TaskFn (= void(Task&)) so task
//               construction doesn't pay std::function's allocation either.
//   EventQueue  a slab of event records recycled through a free list, with a
//               binary min-heap of record indices keyed on (time, seq). The
//               key is a total order (seq is unique), so pop order is
//               bit-identical to the old priority_queue. Steady state pushes
//               and pops allocate nothing; slab growth is counted
//               (slab_grows) for the zero-allocation regression tests.
//
// Reentrancy: all state is per-instance; the only static is BasicInlineFn's
// thread_local boxed-callable counter (diagnostic only), which is per host
// thread and so composes with the partitioned engine's worker crew (each
// worker counts its own boxing; see engine.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

template <typename Sig>
class BasicInlineFn;

template <typename R, typename... Args>
class BasicInlineFn<R(Args...)> {
 public:
  // Large enough for a delivery closure: sink pointer + sim::Message +
  // arrival time. Raising it trades slab memory for inlining more captures.
  static constexpr std::size_t kCapacity = 128;

  BasicInlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, BasicInlineFn>>>
  BasicInlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (sizeof(D) <= kCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      // Fallback for oversized / throwing-move callables: box on the heap.
      // Counted so perf tests can assert the hot path stays inline.
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = boxed_ops<D>();
      ++boxed_count;
    }
  }

  BasicInlineFn(BasicInlineFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(o.buf_, buf_);
    o.ops_ = nullptr;
  }
  BasicInlineFn& operator=(BasicInlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }
  BasicInlineFn(const BasicInlineFn&) = delete;
  BasicInlineFn& operator=(const BasicInlineFn&) = delete;
  ~BasicInlineFn() { reset(); }

  R operator()(Args... args) {
    FGDSM_DCHECK(ops_ != nullptr);
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }
  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // Callables that did not fit inline on this thread (diagnostic; the
  // engine hot path is expected to keep this flat).
  inline static thread_local std::uint64_t boxed_count = 0;

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p, Args&&... args) -> R {
          return (*std::launder(reinterpret_cast<D*>(p)))(
              std::forward<Args>(args)...);
        },
        [](void* from, void* to) noexcept {
          D* src = std::launder(reinterpret_cast<D*>(from));
          ::new (to) D(std::move(*src));
          src->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
    };
    return &ops;
  }
  template <typename D>
  static const Ops* boxed_ops() {
    static constexpr Ops ops = {
        [](void* p, Args&&... args) -> R {
          return (**std::launder(reinterpret_cast<D**>(p)))(
              std::forward<Args>(args)...);
        },
        [](void* from, void* to) noexcept {
          ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
        },
        [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
    };
    return &ops;
  }

  alignas(std::max_align_t) std::byte buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

// The engine's event callable — the common case.
using InlineFn = BasicInlineFn<void()>;

// Min-heap of pooled event records ordered by (t, seq).
class EventQueue {
 public:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Time top_time() const { return slab_[heap_[0]].t; }
  std::uint64_t top_seq() const { return slab_[heap_[0]].seq; }

  void push(Time t, std::uint64_t seq, InlineFn fn) {
    std::uint32_t idx;
    if (free_ != kNone) {
      idx = free_;
      free_ = slab_[idx].next_free;
      slab_[idx].t = t;
      slab_[idx].seq = seq;
      slab_[idx].fn = std::move(fn);
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      if (slab_.size() == slab_.capacity()) ++slab_grows_;
      slab_.push_back(Rec{t, seq, std::move(fn), kNone});
    }
    heap_.push_back(idx);
    sift_up(heap_.size() - 1);
  }

  // Extract the earliest event's callable and recycle its record.
  InlineFn pop(Time* t_out) {
    FGDSM_DCHECK(!heap_.empty());
    const std::uint32_t idx = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    Rec& r = slab_[idx];
    *t_out = r.t;
    InlineFn fn = std::move(r.fn);
    r.fn.reset();
    r.next_free = free_;
    free_ = idx;
    return fn;
  }

  // Times the record slab's backing store grew (an allocation); flat in
  // steady state once the high-water mark is reached.
  std::uint64_t slab_grows() const { return slab_grows_; }
  std::size_t slab_capacity() const { return slab_.capacity(); }

 private:
  struct Rec {
    Time t = 0;
    std::uint64_t seq = 0;
    InlineFn fn;
    std::uint32_t next_free = kNone;
  };

  bool precedes(std::uint32_t a, std::uint32_t b) const {
    const Rec& ra = slab_[a];
    const Rec& rb = slab_[b];
    return ra.t != rb.t ? ra.t < rb.t : ra.seq < rb.seq;
  }

  void sift_up(std::size_t i) {
    const std::uint32_t v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!precedes(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = v;
  }

  void sift_down(std::size_t i) {
    const std::uint32_t v = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && precedes(heap_[child + 1], heap_[child])) ++child;
      if (!precedes(heap_[child], v)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = v;
  }

  std::vector<Rec> slab_;
  std::vector<std::uint32_t> heap_;
  std::uint32_t free_ = kNone;
  std::uint64_t slab_grows_ = 0;
};

}  // namespace fgdsm::sim
