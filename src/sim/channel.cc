#include "src/sim/channel.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/util/assert.h"

namespace fgdsm::sim {

namespace {
// Initial retained-copy ring per link; doubles if the unacked window ever
// outgrows it (deep reordering or a long ack outage).
constexpr std::size_t kInitialRing = 16;
}  // namespace

ReliableChannel::ReliableChannel(Engine& engine, Network& net, int nnodes,
                                 ChannelConfig cfg)
    : engine_(engine),
      net_(net),
      nnodes_(nnodes),
      cfg_(cfg),
      deliver_(static_cast<std::size_t>(nnodes)) {
  FGDSM_ASSERT(nnodes >= 1);
  FGDSM_ASSERT_MSG(cfg_.rto_ns > 0, "channel rto must be positive");
  FGDSM_ASSERT(cfg_.max_retries >= 0);
  if (flat()) {
    // Paper scale: the historical dense layout, no per-message hashing.
    tx_.resize(static_cast<std::size_t>(nnodes) *
               static_cast<std::size_t>(nnodes));
    rx_.resize(static_cast<std::size_t>(nnodes) *
               static_cast<std::size_t>(nnodes));
  } else {
    // Large clusters: per-link books materialize on first traffic only.
    tx_sparse_.resize(static_cast<std::size_t>(nnodes));
    rx_sparse_.resize(static_cast<std::size_t>(nnodes));
  }
}

ReliableChannel::TxLink& ReliableChannel::tx(int src, int dst) {
  if (flat()) return tx_[link(src, dst)];
  auto [it, created] =
      tx_sparse_[static_cast<std::size_t>(src)].try_emplace(dst);
  if (created && initial_seq_ > 0) {
    it->second.next_seq = initial_seq_;
    it->second.acked = initial_seq_;
    it->second.win_base = initial_seq_ + 1;
  }
  return it->second;
}

ReliableChannel::RxLink& ReliableChannel::rx(int src, int dst) {
  if (flat()) return rx_[link(src, dst)];
  auto [it, created] =
      rx_sparse_[static_cast<std::size_t>(dst)].try_emplace(src);
  if (created && initial_seq_ > 0) {
    it->second.cum = initial_seq_;
    it->second.last_ack_sent = initial_seq_;
  }
  return it->second;
}

ReliableChannel::TxLink* ReliableChannel::tx_find(int src, int dst) {
  if (flat()) return &tx_[link(src, dst)];
  auto& m = tx_sparse_[static_cast<std::size_t>(src)];
  auto it = m.find(dst);
  return it == m.end() ? nullptr : &it->second;
}

ReliableChannel::RxLink* ReliableChannel::rx_find(int src, int dst) {
  if (flat()) return &rx_[link(src, dst)];
  auto& m = rx_sparse_[static_cast<std::size_t>(dst)];
  auto it = m.find(src);
  return it == m.end() ? nullptr : &it->second;
}

void ReliableChannel::attach(int node, Network::DeliverFn deliver) {
  FGDSM_ASSERT(node >= 0 && node < nnodes_);
  deliver_[node] = std::move(deliver);
  net_.attach(node, [this, node](Message&& m, Time arrival) {
    on_receive(node, std::move(m), arrival);
  });
}

void ReliableChannel::set_initial_seq(std::uint64_t seq) {
  initial_seq_ = seq;
  for (TxLink& t : tx_) {
    FGDSM_ASSERT_MSG(t.next_seq == 0 && t.live_count == 0,
                     "set_initial_seq after traffic started");
    t.next_seq = seq;
    t.acked = seq;
    t.win_base = seq + 1;
  }
  for (RxLink& r : rx_) {
    r.cum = seq;
    r.last_ack_sent = seq;
  }
  // Sparse layout: links created later inherit initial_seq_ in tx()/rx().
  for (const auto& m : tx_sparse_)
    FGDSM_ASSERT_MSG(m.empty(), "set_initial_seq after traffic started");
}

ReliableChannel::TxSlot* ReliableChannel::find_slot(TxLink& t,
                                                    std::uint64_t seq) {
  if (seq < t.win_base || seq > t.next_seq || t.ring.empty()) return nullptr;
  TxSlot& s = t.ring[seq & (t.ring.size() - 1)];
  if (!s.live) return nullptr;
  FGDSM_DCHECK(s.seq == seq);
  return &s;
}

void ReliableChannel::retain(TxLink& t, const Message& msg) {
  if (t.ring.empty()) t.ring.resize(kInitialRing);
  // Grow (and re-place live slots) if the window no longer fits: with a
  // power-of-two ring and consecutive seqs, each in-window seq maps to a
  // distinct slot iff window <= ring size.
  if (msg.ch_seq - t.win_base + 1 > t.ring.size()) {
    std::vector<TxSlot> bigger(t.ring.size() * 2);
    for (TxSlot& s : t.ring) {
      if (!s.live) continue;
      TxSlot& d = bigger[s.seq & (bigger.size() - 1)];
      FGDSM_DCHECK(!d.live);
      d = std::move(s);
    }
    t.ring = std::move(bigger);
  }
  TxSlot& s = t.ring[msg.ch_seq & (t.ring.size() - 1)];
  FGDSM_DCHECK(!s.live);
  s.msg = msg;
  s.seq = msg.ch_seq;
  s.live = true;
  ++t.live_count;
}

void ReliableChannel::release_slot(TxLink& t, TxSlot& s) {
  s.msg.payload.clear();
  s.msg.payload.shrink_to_fit();
  s.live = false;
  --t.live_count;
}

Time ReliableChannel::send(Time earliest, Message msg) {
  if (msg.dst == msg.src) return net_.send(earliest, std::move(msg));

  TxLink& t = tx(msg.src, msg.dst);
  msg.ch_seq = ++t.next_seq;
  // Piggyback: "I've received through cum". A reverse link with no resident
  // state has received nothing beyond the initial seq — don't materialize
  // it just to read the default.
  if (RxLink* reverse = rx_find(msg.dst, msg.src)) {
    msg.ch_ack = reverse->cum;
    reverse->last_ack_sent = reverse->cum;
  } else {
    msg.ch_ack = initial_seq_;
  }
  retain(t, msg);  // retained for retransmission
  arm_retransmit(msg.src, msg.dst, msg.ch_seq, /*attempt=*/0);
  return net_.send(earliest, std::move(msg));
}

void ReliableChannel::arm_retransmit(int src, int dst, std::uint64_t seq,
                                     int attempt) {
  const Time base = engine_.now();
  // Exponential with a cap: uncapped doubling made late probes of a dead
  // link minutes of virtual time apart, pushing detection past the watchdog.
  const Time backoff =
      cfg_.rto_ns << (attempt < kBackoffCapShift ? attempt : kBackoffCapShift);
  engine_.schedule(base + backoff, [this, src, dst, seq, attempt] {
    if (down_ && down_(src)) return;  // a dead node does not retransmit
    TxLink* tp = tx_find(src, dst);
    if (tp == nullptr) return;  // link never materialized — nothing retained
    TxLink& t = *tp;
    TxSlot* slot = find_slot(t, seq);
    if (slot == nullptr) return;  // acked meanwhile — timer is moot
    if (!engine_.any_task_unfinished()) {
      // The program completed; only the final ack is missing. Not a stall —
      // stop retrying so the event queue can drain.
      release_slot(t, *slot);
      return;
    }
    if (attempt >= cfg_.max_retries)
      fail_retries(src, dst, seq, slot->msg, attempt);
    Message copy = slot->msg;
    if (RxLink* reverse = rx_find(dst, src)) {
      copy.ch_ack = reverse->cum;  // refresh the piggyback
      reverse->last_ack_sent = reverse->cum;
    } else {
      copy.ch_ack = initial_seq_;
    }
    if (util::NodeStats* st = stats_for(src)) ++st->retransmits;
    net_.send(engine_.now(), std::move(copy));
    arm_retransmit(src, dst, seq, attempt + 1);
  });
}

void ReliableChannel::fail_retries(int src, int dst, std::uint64_t seq,
                                   const Message& m, int attempts) {
  const TxLink* tp = tx_find(src, dst);
  std::ostringstream os;
  os << "reliable channel: retry budget exhausted on link " << src << "->"
     << dst << " (" << type_name(m.type) << " seq " << seq << " after "
     << attempts << " retransmissions, budget " << cfg_.max_retries << ", "
     << (tp != nullptr ? tp->live_count : 0)
     << " unacked on link); link is effectively dead — peer node " << dst
     << " is unresponsive";
  engine_.fail_stall(os.str());
}

void ReliableChannel::process_ack(int tx_src, int tx_dst, std::uint64_t ack) {
  TxLink* tp = tx_find(tx_src, tx_dst);
  if (tp == nullptr) return;  // never sent on this link — nothing retained
  TxLink& t = *tp;
  if (ack <= t.acked) return;
  t.acked = ack;
  // Cumulative: every retained seq through `ack` is now delivered.
  for (std::uint64_t s = t.win_base; s <= ack; ++s) {
    if (TxSlot* slot = find_slot(t, s)) release_slot(t, *slot);
  }
  t.win_base = std::max(t.win_base, ack + 1);
}

void ReliableChannel::on_receive(int node, Message&& m, Time arrival) {
  // A fail-stopped node receives nothing: no delivery, no ack processing,
  // no duplicate bookkeeping. Its silence is what peers eventually detect
  // as retry-budget exhaustion.
  if (down_ && down_(node)) return;
  // A cumulative ack rides on every wire message: it acknowledges the
  // traffic `node` sent to m.src.
  if (m.src != node && m.ch_ack > 0) process_ack(node, m.src, m.ch_ack);

  if (m.type == cfg_.ack_type && m.ch_seq == 0 && m.src != node) {
    return;  // pure ack: transport-level only, never surfaces to the app
  }
  if (m.ch_seq == 0) {
    // Unsequenced (loopback) traffic bypasses ordering entirely.
    deliver_[node](std::move(m), arrival);
    return;
  }

  RxLink& rx = this->rx(m.src, node);
  const int src = m.src;
  if (m.ch_seq <= rx.cum) {
    // Already delivered: a retransmitted or fault-duplicated copy. The
    // sender evidently missed our ack, so force another out (rewinding
    // last_ack_sent makes the ack timer consider cum unannounced).
    if (util::NodeStats* st = stats_for(node)) ++st->dup_suppressed;
    if (rx.last_ack_sent >= rx.cum && rx.cum > 0)
      rx.last_ack_sent = rx.cum - 1;
    schedule_pure_ack(node, src);
    return;
  }
  if (m.ch_seq == rx.cum + 1) {
    rx.cum = m.ch_seq;
    deliver_[node](std::move(m), arrival);
    // Drain any buffered successors that are now in order. Their own wire
    // arrival was earlier; they become *processable* only now.
    std::size_t drained = 0;
    while (drained < rx.ooo.size() &&
           rx.ooo[drained].ch_seq == rx.cum + 1) {
      rx.cum = rx.ooo[drained].ch_seq;
      deliver_[node](std::move(rx.ooo[drained]), arrival);
      ++drained;
    }
    if (drained > 0)
      rx.ooo.erase(rx.ooo.begin(),
                   rx.ooo.begin() + static_cast<std::ptrdiff_t>(drained));
  } else {
    // Gap: hold until the predecessors arrive (or are retransmitted). The
    // buffer is sorted by ch_seq; insert in place, dropping duplicates.
    auto it = std::lower_bound(
        rx.ooo.begin(), rx.ooo.end(), m.ch_seq,
        [](const Message& a, std::uint64_t s) { return a.ch_seq < s; });
    if (it != rx.ooo.end() && it->ch_seq == m.ch_seq) {
      if (util::NodeStats* st = stats_for(node)) ++st->dup_suppressed;
    } else {
      rx.ooo.insert(it, std::move(m));
    }
  }
  schedule_pure_ack(node, src);
}

void ReliableChannel::schedule_pure_ack(int from, int to) {
  RxLink& rx = this->rx(to, from);
  if (rx.ack_timer_armed) return;
  rx.ack_timer_armed = true;
  engine_.schedule(engine_.now() + cfg_.ack_delay_ns, [this, from, to] {
    RxLink& rx = this->rx(to, from);
    rx.ack_timer_armed = false;
    if (down_ && down_(from)) return;  // a dead node does not ack
    if (rx.last_ack_sent >= rx.cum && rx.ooo.empty())
      return;  // reverse traffic piggybacked it already and nothing is stuck
    Message ack;
    ack.src = from;
    ack.dst = to;
    ack.type = cfg_.ack_type;
    ack.ch_seq = 0;  // acks are unsequenced: cumulative => idempotent
    ack.ch_ack = rx.cum;
    rx.last_ack_sent = rx.cum;
    if (util::NodeStats* st = stats_for(from)) ++st->channel_acks;
    net_.send(engine_.now(), std::move(ack));
  });
}

void ReliableChannel::reset_for_recovery() {
  // Common restart base: past every sequence number ever assigned in either
  // direction, so any copy still in flight from the abandoned timeline
  // compares <= the base and is suppressed as a duplicate.
  std::uint64_t base = initial_seq_;
  for (const TxLink& t : tx_) base = std::max(base, t.next_seq);
  for (const RxLink& r : rx_) base = std::max(base, r.cum);
  for (const auto& m : tx_sparse_)
    for (const auto& [d, t] : m) base = std::max(base, t.next_seq);
  for (const auto& m : rx_sparse_)
    for (const auto& [s, r] : m) base = std::max(base, r.cum);

  const auto reset_tx = [base](TxLink& t) {
    t.next_seq = base;
    t.acked = base;
    t.win_base = base + 1;
    t.live_count = 0;
    t.ring.clear();
  };
  const auto reset_rx = [base](RxLink& r) {
    r.cum = base;
    r.last_ack_sent = base;
    r.ack_timer_armed = false;
    r.ooo.clear();
  };
  for (TxLink& t : tx_) reset_tx(t);
  for (RxLink& r : rx_) reset_rx(r);
  for (auto& m : tx_sparse_)
    for (auto& [d, t] : m) reset_tx(t);
  for (auto& m : rx_sparse_)
    for (auto& [s, r] : m) reset_rx(r);
  // Links materializing after recovery inherit the same base (tx()/rx()).
  initial_seq_ = base;
}

std::size_t ReliableChannel::resident_links() const {
  // Distinct directed links with resident (sparse) or touched (flat) state.
  std::vector<std::pair<int, int>> pairs = active_links();
  if (!flat()) return pairs.size();
  std::size_t n = 0;
  for (const auto& [s, d] : pairs) {
    const TxLink& t = tx_[link(s, d)];
    const RxLink& r = rx_[link(s, d)];
    if (t.next_seq > initial_seq_ || !t.ring.empty() ||
        r.cum > initial_seq_ || !r.ooo.empty() || r.ack_timer_armed)
      ++n;
  }
  return n;
}

std::vector<std::pair<int, int>> ReliableChannel::active_links() const {
  std::vector<std::pair<int, int>> pairs;
  if (flat()) {
    pairs.reserve(static_cast<std::size_t>(nnodes_) *
                  static_cast<std::size_t>(nnodes_));
    for (int s = 0; s < nnodes_; ++s)
      for (int d = 0; d < nnodes_; ++d) pairs.emplace_back(s, d);
    return pairs;
  }
  for (int s = 0; s < nnodes_; ++s)
    for (const auto& [d, t] : tx_sparse_[static_cast<std::size_t>(s)])
      pairs.emplace_back(s, d);
  for (int d = 0; d < nnodes_; ++d)
    for (const auto& [s, r] : rx_sparse_[static_cast<std::size_t>(d)])
      pairs.emplace_back(s, d);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::string ReliableChannel::describe_state() const {
  std::ostringstream os;
  for (const auto& [s, d] : active_links()) {
    {
      auto tx_at = [&](int a, int b) -> const TxLink* {
        if (flat()) return &tx_[link(a, b)];
        const auto& m = tx_sparse_[static_cast<std::size_t>(a)];
        auto it = m.find(b);
        return it == m.end() ? nullptr : &it->second;
      };
      auto rx_at = [&](int a, int b) -> const RxLink* {
        if (flat()) return &rx_[link(a, b)];
        const auto& m = rx_sparse_[static_cast<std::size_t>(b)];
        auto it = m.find(a);
        return it == m.end() ? nullptr : &it->second;
      };
      static const TxLink kNoTx;
      static const RxLink kNoRx;
      const TxLink* tp = tx_at(s, d);
      const RxLink* rp = rx_at(s, d);
      const TxLink& t = tp != nullptr ? *tp : kNoTx;
      const RxLink& r = rp != nullptr ? *rp : kNoRx;
      if (t.live_count == 0 && r.ooo.empty()) continue;
      os << "  link " << s << "->" << d << ":";
      if (t.live_count > 0) {
        const TxSlot* oldest = nullptr;
        for (std::uint64_t q = t.win_base; q <= t.next_seq && !oldest; ++q) {
          const TxSlot& cand = t.ring[q & (t.ring.size() - 1)];
          if (cand.live && cand.seq == q) oldest = &cand;
        }
        os << " " << t.live_count << " unacked";
        if (oldest != nullptr)
          os << " (oldest seq " << oldest->seq << " "
             << type_name(oldest->msg.type) << ", acked through " << t.acked
             << ")";
      }
      if (!r.ooo.empty())
        os << " " << r.ooo.size() << " buffered out-of-order at receiver"
           << " (delivered through " << r.cum << ")";
      os << "\n";
    }
  }
  std::string out = os.str();
  if (out.empty()) return out;
  return "channel state:\n" + out;
}

}  // namespace fgdsm::sim
