// Deterministic network fault injection (chaos mode, --faults=...).
//
// The injector sits between Network::send and delivery scheduling: for every
// wire-crossing message it decides — drop, duplicate, delay, or pass — from
// a counter-based hash of (seed, link, per-link message index). No global
// RNG state exists, so a given seed produces the identical fault sequence
// regardless of host thread count (exec::BatchRunner) or wall-clock timing,
// and two runs with the same seed are bit-identical. Loopback (self-send)
// messages never cross the wire and are never faulted.
//
// Fault injection is only meaningful under the reliable transport
// (sim::ReliableChannel): a dropped message with no retransmission layer is
// a guaranteed hang. tempest::Cluster enforces the pairing — enabling
// faults enables the channel.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/time.h"
#include "src/util/stats.h"

namespace fgdsm::sim {

// Parsed form of --faults=drop=0.01,dup=0.001,delay=0.05,delay-ns=80000,
// reorder=0.02,seed=42,retries=10,rto-ns=200000. All rates are independent
// per-message probabilities in [0,1]; delay-ns bounds the extra latency a
// delayed/duplicated message picks up (0 = a default derived from the cost
// model's wire latency); retries/rto-ns configure the reliable channel
// layered on top.
struct FaultConfig {
  bool enabled = false;    // set by parse(); gates the whole subsystem
  double drop = 0.0;       // P(message never delivered)
  double dup = 0.0;        // P(message delivered twice)
  double delay = 0.0;      // P(message held back by up to delay_ns)
  double reorder = 0.0;    // P(message held back past its successors)
  Time delay_ns = 0;       // max injected extra latency (0 = model default)
  std::uint64_t seed = 1;  // chaos seed; same seed => same fault sequence
  int max_retries = 10;    // channel retry budget per message (0 = none)
  Time rto_ns = 0;         // channel base retransmission timeout (0 = default)

  // Fail-stop crashes. `crashes` holds explicit schedules
  // (crash=<node>@<ns>, repeatable: the node dies at that virtual time);
  // `crashp` is the per-(node, barrier-epoch) crash probability, drawn
  // counter-mode like every other fault so runs are bit-identical at any
  // --jobs/--sim-threads. Recovery requires checkpointing
  // (--checkpoint-every=K); without it a crash is a structured stall.
  std::vector<std::pair<int, Time>> crashes;  // (node, virtual ns)
  double crashp = 0.0;

  bool has_crashes() const { return !crashes.empty() || crashp > 0.0; }

  // Parse a comma-separated key=value spec. On error, returns a disabled
  // config and stores a human-readable message in *error (empty on success).
  // A bare/empty spec ("--faults") enables chaos plumbing with zero rates.
  // Unknown keys are rejected with a Levenshtein "did you mean" suggestion
  // (the util::Options strict-mode diagnostic), so a typo like crahsp=0.1
  // cannot silently disable the fault it meant to enable.
  static FaultConfig parse(const std::string& spec, std::string* error);

  std::string summary() const;  // "drop=0.01 dup=0 ... seed=42" (diagnostics)
};

class FaultInjector {
 public:
  // `default_window`: extra-latency bound used when cfg.delay_ns == 0
  // (tempest::Cluster passes a multiple of the wire latency).
  FaultInjector(const FaultConfig& cfg, int nnodes, Time default_window);

  // Per-node counter sinks (faults_dropped/duplicated/delayed land on the
  // message's source node). Optional; unset entries are simply not counted.
  void set_stats(std::vector<util::NodeStats*> stats) {
    stats_ = std::move(stats);
  }

  // The verdict for one wire crossing of a src->dst message. Each call
  // consumes one per-link index, so retransmissions re-roll the dice —
  // a retransmitted copy can itself be dropped.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    Time extra_delay = 0;  // added to the primary copy's arrival
    Time dup_delay = 0;    // added on top for the duplicate copy
  };
  Decision decide(int src, int dst);

  // Probabilistic fail-stop draw: does `node` crash at its `epoch`-th
  // barrier? Pure counter-mode hash of (seed, node, epoch) on a chain
  // disjoint from the per-link message draws, so crash verdicts are
  // independent of traffic and bit-identical at any --jobs/--sim-threads.
  // Stateless and const: the same (node, epoch) always answers the same.
  bool crash_at_barrier(int node, std::uint64_t epoch) const;

  const FaultConfig& config() const { return cfg_; }
  Time window() const { return window_; }

 private:
  std::uint64_t hash(int src, int dst, std::uint64_t n, std::uint64_t salt)
      const;

  // Per-link message index. At paper scale (<= kFlatLinkNodes) a flat
  // nnodes^2 vector — the historical layout, untouched. Above that the
  // counters live in a hash map keyed src*nnodes+dst and materialize on a
  // link's first wire crossing, so an idle link costs nothing (a 1024-node
  // cluster would otherwise hold ~1M counters up front). The hash() draw is
  // keyed on (seed, link, index) either way, so fault sequences are
  // bit-identical across layouts.
  std::uint64_t& link_counter(std::size_t link) {
    if (!link_count_.empty()) return link_count_[link];
    return link_sparse_[link];  // value-initialized to 0 on first use
  }

  // Node-count threshold for the flat vs lazy counter layout.
  static constexpr int kFlatLinkNodes = 64;

  FaultConfig cfg_;
  int nnodes_;
  Time window_;
  std::vector<std::uint64_t> link_count_;  // flat layout (small clusters)
  std::unordered_map<std::uint64_t, std::uint64_t> link_sparse_;  // lazy
  std::vector<util::NodeStats*> stats_;
};

}  // namespace fgdsm::sim
