#include "src/sim/task.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "src/util/assert.h"

namespace fgdsm::sim {

namespace {
// Hand-off slot for fiber entry: makecontext cannot portably pass pointers.
// The slot is per host thread (thread_local), which makes it per WORKER in a
// windowed run: the engine statically pins each partition — and so each of
// its tasks — to one worker thread, so a fiber always enters and leaves on
// the thread whose slot carried it. Independent simulations on other threads
// (exec::BatchRunner) get their own slots the same way.
thread_local Task* g_entering_task = nullptr;
constexpr std::size_t kStackBytes = 512 * 1024;
}  // namespace

Task::Task(Engine& engine, std::string name, TaskFn body)
    : engine_(engine),
      name_(std::move(name)),
      body_(std::move(body)),
      stack_(kStackBytes) {
  engine_.register_task(this);
}

Task::~Task() {
  if (started_ && state_ != State::kFinished && state_ != State::kNotStarted) {
    // Unwind the fiber: resuming with cancel_ set makes the next yield
    // point throw Cancelled, which run_body() absorbs.
    cancel_ = true;
    resume_for_engine();
    FGDSM_ASSERT(state_ == State::kFinished);
  }
  engine_.unregister_task(this);
}

void Task::start(Time t) {
  FGDSM_ASSERT_MSG(!started_, "task " << name_ << " started twice");
  started_ = true;
  clock_ = t;
  state_ = State::kReady;
  engine_.schedule_task_resume(partition_, t, [this, e = epoch_] {
    if (e == epoch_) resume_for_engine();
  });
}

void Task::trampoline_entry() {
  Task* self = g_entering_task;
  g_entering_task = nullptr;
  self->run_body();
  // Falling off the trampoline resumes uc_link (the engine context saved by
  // the final swap into this fiber).
}

void Task::run_body() {
  if (!cancel_) {
    try {
      body_(*this);
    } catch (const Cancelled&) {
      // Unwound by ~Task; nothing to record.
    } catch (...) {
      exception_ = std::current_exception();
    }
  }
  state_ = State::kFinished;
}

void Task::resume_for_engine() {
  if (state_ == State::kFinished) return;
  FGDSM_ASSERT_MSG(state_ != State::kNotStarted || started_,
                   "resume before start");
  if (state_ == State::kBlocked && pending_wake_time_ > clock_)
    clock_ = pending_wake_time_;
  const bool first = state_ == State::kReady && fiber_.uc_stack.ss_sp == nullptr;
  state_ = State::kRunning;
  if (first) {
    getcontext(&fiber_);
    fiber_.uc_stack.ss_sp = stack_.data();
    fiber_.uc_stack.ss_size = stack_.size();
    fiber_.uc_link = &engine_ctx_;
    makecontext(&fiber_, &Task::trampoline_entry, 0);
    g_entering_task = this;
  }
  swapcontext(&engine_ctx_, &fiber_);
  if (exception_) {
    std::exception_ptr e = exception_;
    exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Task::switch_to_engine() {
  swapcontext(&fiber_, &engine_ctx_);
  // Resumed by the engine.
  if (cancel_) throw Cancelled{};
  state_ = State::kRunning;
}

void Task::absorb_cpu_steal() {
  if (cpu_ != nullptr && cpu_->available() > clock_) {
    if (steal_counter_ != nullptr)
      *steal_counter_ += cpu_->available() - clock_;
    clock_ = cpu_->available();
  }
}

void Task::yield_here() {
  state_ = State::kReady;
  engine_.schedule_task_resume(partition_, clock_, [this, e = epoch_] {
    if (e == epoch_) resume_for_engine();
  });
  switch_to_engine();
  absorb_cpu_steal();
}

void Task::yield_blocked() {
  state_ = State::kBlocked;
  switch_to_engine();
  absorb_cpu_steal();
}

Time Task::advance_limit() const {
  // We may never pass a pending ordinary event (its handler can mutate state
  // we observe), and may run ahead of another task's pending resume only by
  // strictly less than the engine lookahead (that task's future actions
  // cannot affect us sooner than resume + lookahead). In a windowed run the
  // window boundary additionally caps the clock: events from other
  // partitions may land exactly at W, and the queries above only see this
  // partition's queues.
  const Time ev = engine_.next_event_time();
  const Time rs = engine_.next_resume_time();
  const Time rs_limit = rs >= kTimeInfinity - engine_.lookahead()
                            ? kTimeInfinity
                            : rs + engine_.lookahead() - 1;
  const Time local = ev < rs_limit ? ev : rs_limit;
  const Time wend = engine_.window_end();
  return local < wend ? local : wend;
}

void Task::charge(Time dt) {
  FGDSM_DCHECK(dt >= 0);
  Time remaining = dt;
  for (;;) {
    const Time limit = advance_limit();
    if (limit > clock_) {
      const Time gap = limit == kTimeInfinity ? remaining : limit - clock_;
      const Time slice = remaining < gap ? remaining : gap;
      clock_ += slice;
      remaining -= slice;
      if (cpu_ != nullptr) cpu_->set_available(clock_);
      if (remaining == 0) return;
    }
    // An event is due, or a laggard task must catch up: let the engine run.
    yield_here();
  }
}

void Task::sync() {
  // Process every ordinary event <= now, and let any task that could still
  // produce such an event (pending resume <= now - lookahead) run first. In
  // a windowed run a clock at/past the boundary also yields: events from
  // other partitions merged at the barrier may still land at <= now, and
  // they become visible locally only once the window advances.
  while (engine_.next_event_time() <= clock_ ||
         engine_.next_resume_time() <= clock_ - engine_.lookahead() ||
         engine_.window_end() <= clock_)
    yield_here();
  if (cpu_ != nullptr) cpu_->set_available(clock_);
}

void Task::block() {
  // Draining events that may already satisfy the caller's wait condition is
  // the caller's job (Semaphore::wait does a sync() first). Here we just
  // park.
  pending_wake_time_ = clock_;
  yield_blocked();
}

void Task::wake(Time t) {
  // Called from engine/handler context. The task must be blocked or about
  // to block; schedule a resume no earlier than t.
  pending_wake_time_ = t > clock_ ? t : clock_;
  engine_.schedule_task_resume(partition_, pending_wake_time_,
                               [this, e = epoch_] {
                                 if (e == epoch_) resume_for_engine();
                               });
}

void Task::halt() {
  FGDSM_ASSERT_MSG(state_ != State::kRunning,
                   "halt() from inside the task body");
  ++epoch_;  // orphan scheduled resumes
  if (state_ != State::kFinished && state_ != State::kNotStarted) {
    state_ = State::kBlocked;
    wait_reason_ = "crashed (fail-stop)";
  }
}

Task::Snapshot Task::snapshot() const {
  FGDSM_ASSERT_MSG(state_ != State::kRunning,
                   "snapshot() of a running task");
  Snapshot s;
  s.clock = clock_;
  s.state = state_;
  s.pending_wake_time = pending_wake_time_;
  s.wait_reason = wait_reason_;
  s.started = started_;
  s.fiber = fiber_;
  if (fiber_.uc_stack.ss_sp != nullptr) {
    // Only the live region matters: the fiber stack grows downward from
    // stack_.end(), so everything below the saved stack pointer (minus the
    // ABI red zone) is dead. Falls back to the whole stack when the saved SP
    // is not recoverable from the mcontext.
    std::size_t off = 0;
#if defined(__linux__) && defined(__x86_64__) && defined(REG_RSP)
    const auto sp =
        static_cast<std::uintptr_t>(fiber_.uc_mcontext.gregs[REG_RSP]);
    const auto base = reinterpret_cast<std::uintptr_t>(stack_.data());
    constexpr std::uintptr_t kRedZone = 256;  // ABI says 128; keep margin
    if (sp > base + kRedZone && sp <= base + stack_.size())
      off = static_cast<std::size_t>(sp - base - kRedZone);
#endif
    s.stack_offset = off;
    s.stack.assign(stack_.begin() + static_cast<std::ptrdiff_t>(off),
                   stack_.end());
  }
  return s;
}

void Task::restore(const Snapshot& s, Time resume_at) {
  ++epoch_;  // resume events from the abandoned timeline become no-ops
  clock_ = s.clock;
  state_ = s.state;
  pending_wake_time_ = s.pending_wake_time;
  wait_reason_ = s.wait_reason;
  started_ = s.started;
  cancel_ = false;
  exception_ = nullptr;
  fiber_ = s.fiber;
  if (!s.stack.empty())
    std::copy(s.stack.begin(), s.stack.end(),
              stack_.begin() + static_cast<std::ptrdiff_t>(s.stack_offset));
  // fiber_.uc_stack/uc_link and the mcontext fpregs pointer reference this
  // task's own members; restoring into the same Task keeps them valid.
  if (state_ == State::kBlocked) {
    wake(resume_at);
  } else {
    // Initial-state snapshot (kReady, body never entered): restart the body
    // from the top at the rollback time.
    clock_ = resume_at;
    pending_wake_time_ = resume_at;
    engine_.schedule_task_resume(partition_, resume_at, [this, e = epoch_] {
      if (e == epoch_) resume_for_engine();
    });
  }
}

}  // namespace fgdsm::sim
