// Virtual-time synchronization primitives built on Task::block()/wake().
//
// Semaphore is the workhorse: protocol code posts it from message-handler
// (engine) context with the handler's completion time; compute tasks wait on
// it. It directly implements the paper's ready_to_recv counting semaphore and
// the "wait for all pending transactions" drain at release points.
#pragma once

#include <cstdint>

#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

class Semaphore {
 public:
  // Diagnostic label recorded as the waiting task's wait reason while it is
  // parked here; deadlock/stall dumps print it ("node3 waiting on
  // ready_to_recv"). Must point at a string that outlives the semaphore.
  void set_name(const char* name) { name_ = name; }
  const char* name() const { return name_; }

  // Post n units at virtual time t (typically the posting handler's
  // completion time). Engine/handler context only.
  void post(Time t, std::int64_t n = 1) {
    FGDSM_DCHECK(n >= 0);
    count_ += n;
    if (waiter_ != nullptr && count_ >= need_) {
      Task* w = waiter_;
      waiter_ = nullptr;
      w->wake(t);
    }
  }

  // Block `task` until the count reaches n, then subtract n. Task context
  // only; a semaphore supports one waiter at a time (each simulated node has
  // its own).
  void wait(Task& task, std::int64_t n = 1) {
    task.sync();  // a due event may already satisfy us
    while (count_ < n) {
      FGDSM_ASSERT_MSG(waiter_ == nullptr,
                       "semaphore already has a waiter (" << waiter_->name()
                                                          << ")");
      waiter_ = &task;
      need_ = n;
      task.set_wait_reason(name_);
      task.block();
    }
    task.set_wait_reason(nullptr);
    count_ -= n;
  }

  // True if wait(n) would not block right now.
  bool would_pass(std::int64_t n = 1) const { return count_ >= n; }
  std::int64_t count() const { return count_; }
  void reset() {
    FGDSM_ASSERT(waiter_ == nullptr);
    count_ = 0;
  }

  // Rollback-restart support: force the semaphore to `count` with no waiter
  // registered. A task restored from a checkpoint resumes *inside* its wait
  // loop and re-evaluates the condition against this count (re-registering
  // itself if it must keep blocking), so the waiter slot must be empty.
  void restore_for_recovery(std::int64_t count) {
    count_ = count;
    waiter_ = nullptr;
    need_ = 0;
  }

 private:
  const char* name_ = "semaphore";
  std::int64_t count_ = 0;
  Task* waiter_ = nullptr;
  std::int64_t need_ = 0;
};

}  // namespace fgdsm::sim
