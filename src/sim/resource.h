// A Resource models a serially-occupiable piece of simulated hardware (a cpu,
// a network interface's transmit side). It is a single monotonic
// "busy until" timestamp: acquire() serializes work on the resource.
//
// The single-cpu vs dual-cpu configurations of the paper's Tempest platform
// are expressed entirely through resources: in single-cpu mode the protocol
// handlers and the compute task acquire the *same* resource, so handler
// occupancy delays computation (and computation delays handlers); in dual-cpu
// mode they use separate resources.
#pragma once

#include "src/sim/time.h"
#include "src/util/assert.h"

namespace fgdsm::sim {

class Resource {
 public:
  Time available() const { return available_; }

  // Declare the resource busy through t (no-op if already later).
  void set_available(Time t) {
    if (t > available_) available_ = t;
  }

  // Occupy the resource for `duration` starting no earlier than `earliest`.
  // Returns the completion time.
  Time acquire(Time earliest, Time duration) {
    FGDSM_DCHECK(duration >= 0);
    const Time start = earliest > available_ ? earliest : available_;
    available_ = start + duration;
    return available_;
  }

  void reset() { available_ = 0; }

 private:
  Time available_ = 0;
};

}  // namespace fgdsm::sim
