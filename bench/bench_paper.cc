// Combined Figure 3 + Table 3 harness: runs each application once per
// configuration (serial, sm-unopt and sm-opt on single- and dual-cpu nodes,
// message passing) and prints both the speedup row and the
// communication/miss breakdown from the same runs — the cheapest way to
// regenerate the paper's two main results at full scale.
//
// The six configurations of each application run as one batch
// (exec::BatchRunner, --jobs=N host threads); partial tables still stream
// after every application so long full-scale runs stay inspectable.
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  std::printf(
      "Figure 3 + Table 3 (scale=%.2f, %d nodes, %zuB blocks)\n",
      bc.scale, bc.nodes, bc.block);
  util::Table fig3({"app", "sm-unopt 1cpu", "sm-opt 1cpu", "sm-unopt 2cpu",
                    "sm-opt 2cpu", "msg-passing"});
  util::Table t3({"app", "compute (s)", "comm 2cpu (s)", "% red 2cpu",
                  "comm 1cpu (s)", "% red 1cpu", "misses/node (K)",
                  "% red misses"});
  bench::JsonReport jr("paper", bc);
  for (const auto& app : apps::registry()) {
    if (!bc.selected(app.name)) continue;
    const hpf::Program prog = app.scaled(bc.scale);
    std::fprintf(stderr, "[%s] %d configurations, %d jobs...\n",
                 app.name.c_str(), 6, bc.jobs);
    bench::RunMatrix m;
    m.add(app.name, "serial", prog, core::serial(), 1, true, bc.block);
    m.add(app.name, "u2", prog, core::shmem_unopt(), bc.nodes, true,
          bc.block);
    m.add(app.name, "o2", prog, core::shmem_opt_full(), bc.nodes, true,
          bc.block);
    m.add(app.name, "u1", prog, core::shmem_unopt(), bc.nodes, false,
          bc.block);
    m.add(app.name, "o1", prog, core::shmem_opt_full(), bc.nodes, false,
          bc.block);
    m.add(app.name, "mp", prog, core::msg_passing(), bc.nodes, true,
          bc.block);
    m.run(bc.jobs);
    const auto& serial = m.at(app.name, "serial");
    const auto& u2 = m.at(app.name, "u2");
    const auto& o2 = m.at(app.name, "o2");
    const auto& u1 = m.at(app.name, "u1");
    const auto& o1 = m.at(app.name, "o1");
    const auto& mp = m.at(app.name, "mp");

    fig3.add_row({app.name, util::Table::cell(bench::speedup(serial, u1)),
                  util::Table::cell(bench::speedup(serial, o1)),
                  util::Table::cell(bench::speedup(serial, u2)),
                  util::Table::cell(bench::speedup(serial, o2)),
                  util::Table::cell(bench::speedup(serial, mp))});
    const double c2u = u2.stats.avg_comm_ns_per_node() / 1e9;
    const double c2o = o2.stats.avg_comm_ns_per_node() / 1e9;
    const double c1u = u1.stats.avg_comm_ns_per_node() / 1e9;
    const double c1o = o1.stats.avg_comm_ns_per_node() / 1e9;
    t3.add_row(
        {app.name,
         util::Table::cell(u2.stats.avg_compute_ns_per_node() / 1e9, 1),
         util::Table::cell(c2u, 2),
         util::Table::percent(util::percent_reduction(c2u, c2o)),
         util::Table::cell(c1u, 2),
         util::Table::percent(util::percent_reduction(c1u, c1o)),
         util::Table::cell(u2.stats.avg_misses_per_node() / 1e3, 1),
         util::Table::percent(util::percent_reduction(
             u2.stats.avg_misses_per_node(),
             o2.stats.avg_misses_per_node()))});
    // Stream partial results so long runs are inspectable.
    std::printf("--- after %s ---\n", app.name.c_str());
    fig3.print(std::cout);
    t3.print(std::cout);
    if (bc.per_loop) {
      bench::print_per_loop(app.name + " sm-unopt 2cpu", u2);
      bench::print_per_loop(app.name + " sm-opt 2cpu", o2);
    }
    std::fflush(stdout);
    m.export_to(jr);
  }
  jr.write();
  return 0;
}
