// Table 1 — platform microbenchmarks. Reproduces the paper's cluster
// characterization on the simulated platform:
//   - minimum roundtrip latency for a short (4-byte) message   (~40 us)
//   - network bandwidth                                        (~20 MB/s)
//   - read-miss processing time for a 128-byte block, dual-cpu (~93 us,
//     3-hop: reader -> home -> exclusive owner -> home -> reader)
// Also reports the 2-hop miss and the single-cpu variant for context.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench/common.h"
#include "src/proto/stache.h"
#include "src/sim/sync.h"
#include "src/tempest/cluster.h"
#include "src/util/table.h"

namespace fgdsm {
namespace {

using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::MsgType;
using tempest::Node;

// Roundtrip: node 0 sends a 4-byte payload to node 1, whose handler echoes
// it; repeat and average.
sim::Time measure_roundtrip(int reps) {
  ClusterConfig cfg;
  cfg.nnodes = 2;
  Cluster c(cfg);
  c.allocate("pad", 64);
  sim::Semaphore* pong_sem = nullptr;
  c.register_handler(MsgType::kMpData,
                     [&](Node& self, sim::Message& m, tempest::HandlerClock& clk) {
                       if (m.arg[0] == 0) {  // ping: echo back
                         sim::Message echo;
                         echo.dst = m.src;
                         echo.type = static_cast<std::uint16_t>(MsgType::kMpData);
                         echo.arg[0] = 1;
                         echo.payload.resize(4);
                         self.send_from_handler(clk, std::move(echo));
                       } else {  // pong
                         pong_sem->post(clk.t);
                       }
                     });
  sim::Time total = 0;
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() != 0) {
      t.charge(reps * sim::kMs);  // stay around to serve echoes
      return;
    }
    sim::Semaphore sem;
    pong_sem = &sem;
    for (int i = 0; i < reps; ++i) {
      const sim::Time t0 = t.now();
      sim::Message ping;
      ping.dst = 1;
      ping.type = static_cast<std::uint16_t>(MsgType::kMpData);
      ping.arg[0] = 0;
      ping.payload.resize(4);
      n.send(t, std::move(ping));
      sem.wait(t);
      total += t.now() - t0;
    }
  });
  return total / reps;
}

// Bandwidth: stream large payloads 0 -> 1, measure delivered bytes/sec.
double measure_bandwidth_mbps() {
  ClusterConfig cfg;
  cfg.nnodes = 2;
  Cluster c(cfg);
  c.allocate("pad", 64);
  constexpr int kMsgs = 64;
  constexpr std::size_t kBytes = 16384;
  sim::Time last_arrival = 0;
  c.register_handler(MsgType::kMpData,
                     [&](Node&, sim::Message&, tempest::HandlerClock& clk) {
                       last_arrival = clk.t;
                     });
  c.run([&](Node& n, sim::Task& t) {
    if (n.id() != 0) {
      t.charge(200 * sim::kMs);
      return;
    }
    for (int i = 0; i < kMsgs; ++i) {
      sim::Message m;
      m.dst = 1;
      m.type = static_cast<std::uint16_t>(MsgType::kMpData);
      m.payload.resize(kBytes);
      n.send(t, std::move(m));
    }
  });
  return static_cast<double>(kMsgs) * kBytes / (sim::to_seconds(last_arrival)) /
         1e6;
}

// Read miss, 128-byte block. hops==2: block idle at its home. hops==3: a
// third node holds it exclusive, forcing the recall chain of Figure 1(a).
sim::Time measure_read_miss(bool dual_cpu, int hops) {
  ClusterConfig cfg;
  cfg.nnodes = 4;
  cfg.block_size = 128;
  cfg.dual_cpu = dual_cpu;
  Cluster c(cfg);
  proto::Stache proto(c);
  const tempest::GAddr a = c.allocate("x", 4096);  // home node 0
  sim::Time miss_time = 0;
  c.run([&](Node& n, sim::Task& t) {
    // Optionally give node 2 an exclusive copy first.
    if (hops == 3 && n.id() == 2) {
      n.ensure_writable(t, a, 8);
      double v = 33.0;
      std::memcpy(n.mem(a), &v, 8);
      n.note_writes(a, 8);
    }
    n.barrier(t);
    if (n.id() == 1) {
      const sim::Time t0 = t.now();
      n.ensure_readable(t, a, 8);
      miss_time = t.now() - t0;
    }
    n.barrier(t);
  });
  return miss_time;
}

}  // namespace
}  // namespace fgdsm

int main(int argc, char** argv) {
  using namespace fgdsm;
  // Accepts the common flags (--jobs etc.) for uniform driving by
  // run_experiments.sh; the microbenchmarks themselves are fixed-size.
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  const sim::Time rtt = measure_roundtrip(16);
  const double bw = measure_bandwidth_mbps();
  const sim::Time miss2_dual = measure_read_miss(true, 2);
  const sim::Time miss3_dual = measure_read_miss(true, 3);
  const sim::Time miss3_single = measure_read_miss(false, 3);

  util::Table t({"Quantity", "Paper (Table 1)", "Simulated"});
  t.add_row({"Min roundtrip, 4-byte message", "40 us",
             util::Table::cell(sim::to_us(rtt), 1) + " us"});
  t.add_row({"Network bandwidth", "20 MB/s",
             util::Table::cell(bw, 1) + " MB/s"});
  t.add_row({"Read miss, 128B block (dual-cpu, 3-hop)", "93 us",
             util::Table::cell(sim::to_us(miss3_dual), 1) + " us"});
  t.add_row({"Read miss, 128B block (dual-cpu, 2-hop)", "-",
             util::Table::cell(sim::to_us(miss2_dual), 1) + " us"});
  t.add_row({"Read miss, 128B block (single-cpu, 3-hop)", "-",
             util::Table::cell(sim::to_us(miss3_single), 1) + " us"});
  std::printf("Table 1: cluster configuration microbenchmarks\n");
  t.print(std::cout);

  bench::JsonReport jr("table1", bc);
  jr.add_metric("roundtrip_us", sim::to_us(rtt));
  jr.add_metric("bandwidth_mbps", bw);
  jr.add_metric("read_miss_3hop_dual_us", sim::to_us(miss3_dual));
  jr.add_metric("read_miss_2hop_dual_us", sim::to_us(miss2_dual));
  jr.add_metric("read_miss_3hop_single_us", sim::to_us(miss3_single));
  jr.write();
  return 0;
}
