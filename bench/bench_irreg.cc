// Irregular-workload harness for the inspector–executor runtime: runs the
// spmv app (ELL-style sparse matvec, indirection pattern selectable with
// --pattern=band|hash) under
//
//   serial          the speedup denominator
//   sm-unopt        default protocol only — every gather faults
//   sm-opt          inspector–executor schedule over compiler-directed
//                   coherence (schedule cached across iterations)
//   sm-opt-nocache  same, but re-inspecting on every loop visit — the
//                   schedule-reuse sweep's "no amortization" endpoint
//   msg-passing     inspector–executor over the MP backend (exact bytes)
//
// and prints elapsed time, speedup, protocol message totals and the
// schedule-cache counters. The headline metric is msg_reduction_pct:
// how much of the default protocol's message traffic the materialized
// schedule eliminates.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc =
      bench::BenchConfig::from_args(argc, argv, {"pattern"});
  const util::Options o(argc, argv);
  const std::string pattern_name = o.get("pattern", "band");
  std::int64_t pattern = 0;
  if (pattern_name == "hash") {
    pattern = 1;
  } else if (pattern_name != "band") {
    std::fprintf(stderr, "fgdsm: bad --pattern '%s' (band|hash)\n",
                 pattern_name.c_str());
    return 2;
  }

  const std::int64_t n = std::max<std::int64_t>(
      512, static_cast<std::int64_t>(4096 * bc.scale));
  const std::int64_t k = 8;
  const std::int64_t iters = std::max<std::int64_t>(
      4, static_cast<std::int64_t>(20 * bc.scale));
  const hpf::Program prog = apps::spmv(n, k, iters, pattern);

  std::printf(
      "Inspector-executor irregular gather (spmv: n=%lld k=%lld iters=%lld "
      "pattern=%s, %d nodes, %zuB blocks)\n",
      static_cast<long long>(n), static_cast<long long>(k),
      static_cast<long long>(iters), pattern_name.c_str(), bc.nodes,
      bc.block);

  bench::RunMatrix m;
  m.add("spmv", "serial", prog, core::serial(), 1, true, bc.block);
  m.add("spmv", "sm-unopt", prog, core::shmem_unopt(), bc.nodes, true,
        bc.block);
  m.add("spmv", "sm-opt", prog, core::shmem_opt_full(), bc.nodes, true,
        bc.block);
  {
    // Schedule-reuse sweep endpoint: inspect on every visit.
    exec::ExperimentSpec s = bench::make_spec(
        prog, core::shmem_opt_full(), bc.nodes, true, bc.block);
    s.config.opt.plan_cache = false;
    m.add("spmv", "sm-opt-nocache", std::move(s));
  }
  m.add("spmv", "msg-passing", prog, core::msg_passing(), bc.nodes, true,
        bc.block);
  m.run(bc.jobs);

  const auto& serial = m.at("spmv", "serial");
  util::Table t({"config", "elapsed", "speedup", "messages", "sched h/m",
                 "inspections"});
  for (const char* cfg :
       {"serial", "sm-unopt", "sm-opt", "sm-opt-nocache", "msg-passing"}) {
    const auto& r = m.at("spmv", cfg);
    const util::NodeStats tot = r.stats.totals();
    t.add_row({cfg, util::format_ns(r.stats.elapsed_ns),
               util::Table::cell(bench::speedup(serial, r)),
               util::Table::cell(tot.messages_sent),
               util::Table::cell(tot.sched_cache_hits) + "/" +
                   util::Table::cell(tot.sched_cache_misses),
               util::Table::cell(tot.irreg_inspections)});
  }
  t.print(std::cout);

  const auto& unopt = m.at("spmv", "sm-unopt");
  const auto& opt = m.at("spmv", "sm-opt");
  const auto& nocache = m.at("spmv", "sm-opt-nocache");
  const double msg_red = util::percent_reduction(
      static_cast<double>(unopt.stats.totals().messages_sent),
      static_cast<double>(opt.stats.totals().messages_sent));
  const double reuse_gain = util::percent_reduction(
      static_cast<double>(nocache.stats.elapsed_ns),
      static_cast<double>(opt.stats.elapsed_ns));
  std::printf("message reduction (sm-opt vs sm-unopt):      %5.1f%%\n",
              msg_red);
  std::printf("schedule-reuse elapsed gain (vs re-inspect): %5.1f%%\n",
              reuse_gain);
  if (bc.per_loop) {
    bench::print_per_loop("spmv sm-unopt", unopt);
    bench::print_per_loop("spmv sm-opt", opt);
  }

  bench::JsonReport jr("irreg", bc);
  m.export_to(jr);
  jr.add_metric("msg_reduction_pct", msg_red);
  jr.add_metric("schedule_reuse_gain_pct", reuse_gain);
  jr.write();
  return 0;
}
