// Host-side (wall-clock) performance of the simulator itself — the perf
// regression gate. Unlike every other harness, this one measures how fast
// the *simulator* runs, not what it simulates:
//
//   events/sec        engine events processed per host second
//   ns/event          inverse, in host nanoseconds
//   allocs/event      heap allocations per event (operator new hook in this
//                     translation unit — counts every allocation the
//                     process makes while the workload runs)
//
// over five workloads: the full bench_paper default matrix ("paper"), the
// same matrix with the engine's windowed parallel mode at four workers
// ("paper_st4" — the intra-run scaling axis; compare its events/s against
// "paper"), the jacobi six-configuration slice ("jacobi"), the irregular
// spmv sweep ("spmv"), and jacobi under chaos-mode fault injection
// ("chaos"). --sim-threads=N additionally applies N engine workers to the
// four base workloads (default 1).
//
// Raw events/sec is machine-dependent, so the harness also times a fixed
// pure-CPU calibration loop (splitmix64) and reports each workload's
// throughput normalized by it; scripts/check_perf.py gates CI on the
// normalized number (see EXPERIMENTS.md for the methodology and caveats).
//
// Workloads execute one simulation at a time (--jobs has no analogue here);
// --reps=N keeps the best wall time of N repetitions.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/util/json.h"
#include "src/util/options.h"
#include "src/util/table.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: every operator new in the process bumps the
// counter. Local to this binary — the library never overrides the global
// allocator.
// ---------------------------------------------------------------------------
namespace {
// Atomic: the engine's --sim-threads worker crew allocates concurrently.
// Relaxed is enough — the count is read only between runs, after joins.
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fgdsm {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Measurement {
  std::uint64_t events = 0;
  double seconds = 0.0;
  std::uint64_t allocs = 0;

  double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
  double ns_per_event() const {
    return events > 0 ? seconds * 1e9 / static_cast<double>(events) : 0.0;
  }
  double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) /
                            static_cast<double>(events)
                      : 0.0;
  }
};

// Fixed-work splitmix64 loop: a host-speed yardstick with no allocation and
// no branches, so workload throughput can be normalized across machines.
double calibrate_mops() {
  constexpr std::uint64_t kOps = 200'000'000;
  std::uint64_t x = 0x9e3779b97f4a7c15ull, acc = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    acc ^= z ^ (z >> 31);
  }
  const double s = seconds_since(t0);
  // Defeat dead-code elimination without affecting output determinism.
  if (acc == 0x12345678) std::fprintf(stderr, "calib sentinel\n");
  return static_cast<double>(kOps) / 1e6 / s;
}

// One measured workload: a list of specs executed sequentially, best-of-reps.
Measurement measure(const std::vector<exec::ExperimentSpec>& specs,
                    int reps) {
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    Measurement m;
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    for (const exec::ExperimentSpec& s : specs) {
      const exec::RunResult res = exec::run(*s.program, s.config);
      m.events += res.engine_events;
    }
    m.seconds = seconds_since(t0);
    m.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    if (r == 0 || m.seconds < best.seconds) best = m;
  }
  return best;
}

// --sim-threads applied to every spec built by spec_for (the dedicated
// paper_st4 workload overrides it to 4 explicitly).
int g_sim_threads_default = 1;

exec::ExperimentSpec spec_for(const hpf::Program& prog,
                              const core::Options& opt, int nodes,
                              bool dual_cpu, std::size_t block) {
  exec::ExperimentSpec s;
  s.program = &prog;
  s.config.cluster.nnodes = nodes;
  s.config.cluster.block_size = block;
  s.config.cluster.dual_cpu = dual_cpu;
  s.config.cluster.sim_threads = g_sim_threads_default;
  s.config.opt = opt;
  s.config.gather_arrays = false;
  return s;
}

// The bench_paper six-configuration slice for one program.
void add_paper_configs(std::vector<exec::ExperimentSpec>& out,
                       const hpf::Program& prog, int nodes,
                       std::size_t block) {
  out.push_back(spec_for(prog, core::serial(), 1, true, block));
  out.push_back(spec_for(prog, core::shmem_unopt(), nodes, true, block));
  out.push_back(spec_for(prog, core::shmem_opt_full(), nodes, true, block));
  out.push_back(spec_for(prog, core::shmem_unopt(), nodes, false, block));
  out.push_back(spec_for(prog, core::shmem_opt_full(), nodes, false, block));
  out.push_back(spec_for(prog, core::msg_passing(), nodes, true, block));
}

std::string cpu_model() {
  std::ifstream f("/proc/cpuinfo");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t b = colon + 1;
        while (b < line.size() && line[b] == ' ') ++b;
        return line.substr(b);
      }
    }
  }
  return "unknown";
}

int selfperf_main(int argc, char** argv) {
  util::Options o(argc, argv);
  o.check_known(
      {"scale", "nodes", "block", "reps", "workload", "json", "sim-threads"});
  const double scale = o.get_double("scale", 0.15);
  const int nodes = static_cast<int>(o.get_int("nodes", 8));
  const std::size_t block = static_cast<std::size_t>(o.get_int("block", 128));
  const int reps = static_cast<int>(o.get_int("reps", 1));
  const std::string only = o.get("workload", "");
  const std::string json_path = o.get("json", "");
  const int sim_threads = static_cast<int>(o.get_int("sim-threads", 1));
  if (reps < 1) {
    std::fprintf(stderr, "fgdsm: --reps must be >= 1\n");
    return 2;
  }
  if (sim_threads < 1) {
    std::fprintf(stderr, "fgdsm: --sim-threads must be >= 1\n");
    return 2;
  }

  std::printf("Simulator self-performance (scale=%.2f, %d nodes, %zuB "
              "blocks, best of %d)\n",
              scale, nodes, block, reps);
  const double calib = calibrate_mops();
  std::printf("calibration: %.0f Mops/s (splitmix64)\n", calib);

  // Programs must outlive the spec lists; deque keeps references stable as
  // it grows (specs hold pointers into it).
  std::deque<hpf::Program> progs;

  struct Workload {
    std::string name;
    std::vector<exec::ExperimentSpec> specs;
  };
  std::vector<Workload> workloads;

  g_sim_threads_default = sim_threads;
  {
    // Full bench_paper default matrix — the headline workload.
    Workload w{"paper", {}};
    for (const auto& app : apps::registry()) {
      progs.push_back(app.scaled(scale));
      add_paper_configs(w.specs, progs.back(), nodes, block);
    }
    // Intra-run scaling axis: the same matrix with four engine workers
    // (conservative synchronous-window PDES). Bit-identical simulated
    // results; the tracked artifact is the events/s ratio vs "paper".
    Workload st4{"paper_st4", w.specs};
    for (exec::ExperimentSpec& s : st4.specs)
      s.config.cluster.sim_threads = 4;
    workloads.push_back(std::move(w));
    workloads.push_back(std::move(st4));
  }
  {
    // Jacobi alone: the stencil steady state, dominated by protocol events.
    Workload w{"jacobi", {}};
    for (const auto& app : apps::registry()) {
      if (app.name != "jacobi") continue;
      progs.push_back(app.scaled(scale));
      add_paper_configs(w.specs, progs.back(), nodes, block);
    }
    workloads.push_back(std::move(w));
  }
  {
    // Irregular gather path (inspector–executor), as in bench_irreg.
    const std::int64_t n = std::max<std::int64_t>(
        512, static_cast<std::int64_t>(4096 * scale));
    progs.push_back(apps::spmv(n, 8, std::max<std::int64_t>(
                                         4, static_cast<std::int64_t>(
                                                20 * scale)),
                               /*pattern=*/0));
    Workload w{"spmv", {}};
    w.specs.push_back(spec_for(progs.back(), core::serial(), 1, true, block));
    w.specs.push_back(
        spec_for(progs.back(), core::shmem_unopt(), nodes, true, block));
    w.specs.push_back(
        spec_for(progs.back(), core::shmem_opt_full(), nodes, true, block));
    w.specs.push_back(
        spec_for(progs.back(), core::msg_passing(), nodes, true, block));
    workloads.push_back(std::move(w));
  }
  {
    // Chaos mode: the reliable channel + fault injector on the hot path.
    Workload w{"chaos", {}};
    for (const auto& app : apps::registry()) {
      if (app.name != "jacobi") continue;
      progs.push_back(app.scaled(scale));
      std::string err;
      sim::FaultConfig fc = sim::FaultConfig::parse(
          "drop=0.01,dup=0.002,delay=0.05,reorder=0.01,seed=1", &err);
      exec::ExperimentSpec s = spec_for(progs.back(), core::shmem_opt_full(),
                                        nodes, true, block);
      s.config.cluster.faults = fc;
      s.config.cluster.watchdog_ns = 2'000'000'000;
      w.specs.push_back(s);
      exec::ExperimentSpec mp = spec_for(progs.back(), core::msg_passing(),
                                         nodes, true, block);
      mp.config.cluster.faults = fc;
      mp.config.cluster.watchdog_ns = 2'000'000'000;
      w.specs.push_back(mp);
    }
    workloads.push_back(std::move(w));
  }

  util::Table t({"workload", "events", "seconds", "events/s", "ns/event",
                 "allocs/event", "norm (ev/Mop)"});
  struct Row {
    std::string name;
    Measurement m;
  };
  std::vector<Row> rows;
  for (Workload& w : workloads) {
    if (!only.empty() && only != w.name) continue;
    std::fprintf(stderr, "[%s] %zu runs x %d reps...\n", w.name.c_str(),
                 w.specs.size(), reps);
    const Measurement m = measure(w.specs, reps);
    rows.push_back({w.name, m});
    t.add_row({w.name, util::format_count(m.events),
               util::Table::cell(m.seconds, 2),
               util::format_count(
                   static_cast<std::uint64_t>(m.events_per_sec())),
               util::Table::cell(m.ns_per_event(), 1),
               util::Table::cell(m.allocs_per_event(), 2),
               util::Table::cell(m.events_per_sec() / (calib * 1e6), 4)});
  }
  t.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      std::fprintf(stderr, "fgdsm: cannot open json file '%s'\n",
                   json_path.c_str());
      return 1;
    }
    util::JsonWriter w(f);
    w.begin_object();
    w.kv("schema", "fgdsm-selfperf-v1");
    w.key("host");
    w.begin_object();
    w.kv("cpu", cpu_model());
    w.kv("nproc",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.kv("calibration_mops", calib);
    w.end_object();
    w.key("config");
    w.begin_object();
    w.kv("scale", scale);
    w.kv("nodes", nodes);
    w.kv("block", static_cast<std::uint64_t>(block));
    w.kv("reps", static_cast<std::uint64_t>(reps));
    w.end_object();
    w.key("workloads");
    w.begin_object();
    for (const Row& r : rows) {
      w.key(r.name);
      w.begin_object();
      w.kv("events", r.m.events);
      w.kv("seconds", r.m.seconds);
      w.kv("events_per_sec", r.m.events_per_sec());
      w.kv("ns_per_event", r.m.ns_per_event());
      w.kv("allocs_per_event", r.m.allocs_per_event());
      w.kv("normalized_events_per_mop",
           r.m.events_per_sec() / (calib * 1e6));
      w.end_object();
    }
    w.end_object();
    w.end_object();
    f << '\n';
    std::fprintf(stderr, "fgdsm: wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fgdsm

int main(int argc, char** argv) { return fgdsm::selfperf_main(argc, argv); }
