// Ablations over the design choices DESIGN.md calls out:
//   1. block-size sweep (32/64/128 B): smaller blocks shrink the edge
//      effect but raise per-block protocol costs;
//   2. bulk-transfer payload sweep: the marginal value of coalescing;
//   3. the grav edge-effect study: 129-point vs 128-point arrays at 128 B
//      blocks (the paper's §6 explanation of grav's poor miss reduction).
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);

  // ---- 1. Block-size sweep on jacobi ----
  {
    std::printf("Ablation 1: block-size sweep (jacobi, scale=%.2f, %d "
                "nodes, sm-opt+bulk+rtelim)\n",
                bc.scale, bc.nodes);
    util::Table t({"block", "elapsed (ms)", "misses/node",
                   "% misses removed vs unopt"});
    const hpf::Program prog = apps::registry()[5].scaled(bc.scale);
    for (std::size_t block : {32u, 64u, 128u}) {
      const auto u =
          bench::run_app(prog, core::shmem_unopt(), bc.nodes, true, block);
      const auto o = bench::run_app(prog, core::shmem_opt_full(), bc.nodes,
                                    true, block);
      t.add_row({util::Table::cell(static_cast<std::int64_t>(block)),
                 util::Table::cell(o.stats.elapsed_ns / 1e6, 1),
                 util::Table::cell(o.stats.avg_misses_per_node(), 0),
                 util::Table::percent(util::percent_reduction(
                     u.stats.avg_misses_per_node(),
                     o.stats.avg_misses_per_node()))});
    }
    t.print(std::cout);
  }

  // ---- 2. Payload sweep on pde (large contiguous plane transfers) ----
  {
    std::printf("\nAblation 2: bulk-transfer payload sweep (pde)\n");
    util::Table t({"max payload", "elapsed (ms)", "ccc msgs/node"});
    const hpf::Program prog = apps::registry()[0].scaled(bc.scale);
    for (std::size_t payload : {128u, 512u, 2048u, 4096u, 16384u}) {
      core::Options opt = core::shmem_opt_full();
      opt.max_payload = payload;
      const auto r = bench::run_app(prog, opt, bc.nodes, true, bc.block);
      t.add_row(
          {util::Table::cell(static_cast<std::int64_t>(payload)),
           util::Table::cell(r.stats.elapsed_ns / 1e6, 1),
           util::Table::cell(static_cast<double>(
                                 r.stats.totals().ccc_messages_sent) /
                                 bc.nodes,
                             0)});
    }
    t.print(std::cout);
  }

  // ---- 3. grav's edge effect: 129-point vs 128-point arrays ----
  {
    std::printf("\nAblation 3: the grav edge effect (128B blocks)\n");
    util::Table t({"grid", "% misses removed", "note"});
    for (std::int64_t g : {127, 128}) {  // arrays are (g+1)^2: 128 vs 129
      const hpf::Program prog = apps::grav(g, 2);
      const auto u =
          bench::run_app(prog, core::shmem_unopt(), bc.nodes, true, 128);
      const auto o = bench::run_app(prog, core::shmem_opt_full(), bc.nodes,
                                    true, 128);
      t.add_row({util::Table::cell(g + 1) + "^2",
                 util::Table::percent(util::percent_reduction(
                     u.stats.avg_misses_per_node(),
                     o.stats.avg_misses_per_node())),
                 g == 127 ? "columns block-aligned"
                          : "129-point columns: pronounced edges (paper)"});
    }
    t.print(std::cout);
  }
  return 0;
}
