// Ablations over the design choices DESIGN.md calls out:
//   1. block-size sweep (32/64/128 B): smaller blocks shrink the edge
//      effect but raise per-block protocol costs;
//   2. bulk-transfer payload sweep: the marginal value of coalescing;
//   3. the grav edge-effect study: 129-point vs 128-point arrays at 128 B
//      blocks (the paper's §6 explanation of grav's poor miss reduction);
//   4. the comm-plan cache: host wall-clock of one optimized run per app
//      with section analysis re-run every loop visit vs served from
//      core::PlanCache, plus the cache hit rate (EXPERIMENTS.md records
//      these).
// Each section builds its sweep as a batch (--jobs=N host threads);
// section 4 runs sequentially because it measures host time.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  bench::JsonReport jr("ablation", bc);

  // ---- 1. Block-size sweep on jacobi ----
  {
    std::printf("Ablation 1: block-size sweep (jacobi, scale=%.2f, %d "
                "nodes, sm-opt+bulk+rtelim)\n",
                bc.scale, bc.nodes);
    util::Table t({"block", "elapsed (ms)", "misses/node",
                   "% misses removed vs unopt"});
    const hpf::Program prog = apps::registry()[5].scaled(bc.scale);
    bench::RunMatrix m;
    for (std::size_t block : {32u, 64u, 128u}) {
      const std::string row = std::to_string(block);
      m.add(row, "unopt", prog, core::shmem_unopt(), bc.nodes, true, block);
      m.add(row, "opt", prog, core::shmem_opt_full(), bc.nodes, true, block);
    }
    m.run(bc.jobs);
    for (std::size_t block : {32u, 64u, 128u}) {
      const std::string row = std::to_string(block);
      const auto& u = m.at(row, "unopt");
      const auto& o = m.at(row, "opt");
      t.add_row({util::Table::cell(static_cast<std::int64_t>(block)),
                 util::Table::cell(o.stats.elapsed_ns / 1e6, 1),
                 util::Table::cell(o.stats.avg_misses_per_node(), 0),
                 util::Table::percent(util::percent_reduction(
                     u.stats.avg_misses_per_node(),
                     o.stats.avg_misses_per_node()))});
      jr.add_run("jacobi", "block" + row + "/unopt", u);
      jr.add_run("jacobi", "block" + row + "/opt", o);
    }
    t.print(std::cout);
    if (bc.per_loop)
      bench::print_per_loop("jacobi opt 128B", m.at("128", "opt"));
  }

  // ---- 2. Payload sweep on pde (large contiguous plane transfers) ----
  {
    std::printf("\nAblation 2: bulk-transfer payload sweep (pde)\n");
    util::Table t({"max payload", "elapsed (ms)", "ccc msgs/node"});
    const hpf::Program prog = apps::registry()[0].scaled(bc.scale);
    bench::RunMatrix m;
    for (std::size_t payload : {128u, 512u, 2048u, 4096u, 16384u}) {
      core::Options opt = core::shmem_opt_full();
      opt.max_payload = payload;
      m.add(std::to_string(payload), "run", prog, opt, bc.nodes, true,
            bc.block);
    }
    m.run(bc.jobs);
    for (std::size_t payload : {128u, 512u, 2048u, 4096u, 16384u}) {
      const auto& r = m.at(std::to_string(payload), "run");
      jr.add_run("pde", "payload" + std::to_string(payload), r);
      t.add_row(
          {util::Table::cell(static_cast<std::int64_t>(payload)),
           util::Table::cell(r.stats.elapsed_ns / 1e6, 1),
           util::Table::cell(static_cast<double>(
                                 r.stats.totals().ccc_messages_sent) /
                                 bc.nodes,
                             0)});
    }
    t.print(std::cout);
  }

  // ---- 3. grav's edge effect: 129-point vs 128-point arrays ----
  {
    std::printf("\nAblation 3: the grav edge effect (128B blocks)\n");
    util::Table t({"grid", "% misses removed", "note"});
    const hpf::Program g127 = apps::grav(127, 2);
    const hpf::Program g128 = apps::grav(128, 2);
    bench::RunMatrix m;
    for (const auto* p : {&g127, &g128}) {
      const std::string row = p == &g127 ? "127" : "128";
      m.add(row, "unopt", *p, core::shmem_unopt(), bc.nodes, true, 128);
      m.add(row, "opt", *p, core::shmem_opt_full(), bc.nodes, true, 128);
    }
    m.run(bc.jobs);
    for (std::int64_t g : {127, 128}) {  // arrays are (g+1)^2: 128 vs 129
      const std::string row = std::to_string(g);
      jr.add_run("grav", "grid" + row + "/unopt", m.at(row, "unopt"));
      jr.add_run("grav", "grid" + row + "/opt", m.at(row, "opt"));
      t.add_row({util::Table::cell(g + 1) + "^2",
                 util::Table::percent(util::percent_reduction(
                     m.at(row, "unopt").stats.avg_misses_per_node(),
                     m.at(row, "opt").stats.avg_misses_per_node())),
                 g == 127 ? "columns block-aligned"
                          : "129-point columns: pronounced edges (paper)"});
    }
    t.print(std::cout);
  }

  // ---- 4. Comm-plan cache: host-side analysis cost per app ----
  {
    std::printf("\nAblation 4: comm-plan cache (host wall-clock, "
                "sm-opt+bulk+rtelim, scale=%.2f, %d nodes)\n",
                bc.scale, bc.nodes);
    util::Table t({"app", "host ms (re-analyze)", "host ms (cached)",
                   "saved", "hit rate", "plan visits"});
    for (const auto& e : apps::registry()) {
      if (!bc.selected(e.name)) continue;
      const hpf::Program prog = e.scaled(bc.scale);
      // Untimed warmup, then best-of-3 per variant, interleaved: host
      // wall-clock on a shared machine is noisy, and the min is the run
      // least disturbed by it.
      double ms[2] = {1e300, 1e300};
      exec::RunResult res[2];
      {
        const exec::ExperimentSpec w = bench::make_spec(
            prog, core::shmem_opt_full(), bc.nodes, true, bc.block);
        (void)exec::run(*w.program, w.config);
      }
      for (int rep = 0; rep < 3; ++rep) {
        for (int cached = 0; cached < 2; ++cached) {
          exec::ExperimentSpec s = bench::make_spec(
              prog, core::shmem_opt_full(), bc.nodes, true, bc.block);
          s.config.opt.plan_cache = cached != 0;
          const auto t0 = std::chrono::steady_clock::now();
          res[cached] = exec::run(*s.program, s.config);
          ms[cached] = std::min(
              ms[cached], std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        }
      }
      FGDSM_ASSERT(res[0].stats.elapsed_ns == res[1].stats.elapsed_ns);
      // Only the simulated result goes to JSON — host wall-clock is not
      // reproducible, so it would break byte-identical --json output.
      jr.add_run(e.name, "opt-cached", res[1]);
      if (bc.per_loop) bench::print_per_loop(e.name + " opt-cached", res[1]);
      const auto tot = res[1].stats.totals();
      const double visits = static_cast<double>(tot.plan_cache_hits +
                                                tot.plan_cache_misses);
      t.add_row({e.name, util::Table::cell(ms[0], 1),
                 util::Table::cell(ms[1], 1),
                 util::Table::percent(
                     util::percent_reduction(ms[0], ms[1])),
                 util::Table::percent(
                     visits == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(tot.plan_cache_hits) /
                               visits),
                 util::Table::cell(visits, 0)});
    }
    t.print(std::cout);
  }
  jr.write();
  return 0;
}
