// Host-side microbenchmarks (google-benchmark) for the simulator's own
// machinery: event engine throughput, section algebra, access-set analysis
// and plan construction. These gate the wall-clock cost of full-scale
// experiment runs.
#include <benchmark/benchmark.h>

#include "src/core/plan.h"
#include "src/hpf/analysis.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace fgdsm {
namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) e.schedule(e.now() + 10, chain);
    };
    e.schedule(0, chain);
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_TaskChargeYield(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    e.set_lookahead(100);
    sim::Task a(e, "a", [](sim::Task& t) {
      for (int i = 0; i < 200; ++i) t.charge(1000);
    });
    sim::Task b(e, "b", [](sim::Task& t) {
      for (int i = 0; i < 200; ++i) t.charge(1000);
    });
    a.start(0);
    b.start(0);
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_TaskChargeYield);

void BM_SectionSubtract(benchmark::State& state) {
  const hpf::ConcreteSection owned{{{0, 2047, 1}, {256, 511, 1}}};
  const hpf::ConcreteSection read{{{1, 2046, 1}, {255, 512, 1}}};
  for (auto _ : state) {
    auto r = hpf::ConcreteSet(read).subtract(owned);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SectionSubtract);

hpf::Program bench_prog() {
  hpf::Program prog;
  const hpf::AffineExpr N = hpf::AffineExpr::sym("n");
  const hpf::AffineExpr I = hpf::AffineExpr::sym("i"),
                        J = hpf::AffineExpr::sym("j");
  prog.arrays.push_back({"u", {N, N}, hpf::DistKind::kBlock});
  prog.sizes.set("n", 2048);
  hpf::ParallelLoop loop;
  loop.dist = hpf::LoopVar{"j", hpf::AffineExpr(1), N - 2};
  loop.free.push_back(hpf::LoopVar{"i", hpf::AffineExpr(1), N - 2});
  loop.home_array = "u";
  loop.home_sub = J;
  loop.reads = {{"u", {I, J - 1}}, {"u", {I, J + 1}}};
  loop.writes = {{"u", {I, J}}};
  prog.phases.push_back(hpf::Phase::make(std::move(loop)));
  return prog;
}

void BM_AnalyzeTransfers(benchmark::State& state) {
  const hpf::Program prog = bench_prog();
  hpf::Bindings b = prog.sizes;
  b.set(hpf::kSymNProcs, 8);
  b.set(hpf::kSymProc, 0);
  for (auto _ : state) {
    auto t = hpf::analyze_transfers(*prog.phases[0].loop, prog, b, 8);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_AnalyzeTransfers);

void BM_BuildCommPlan(benchmark::State& state) {
  const hpf::Program prog = bench_prog();
  hpf::Bindings b = prog.sizes;
  b.set(hpf::kSymNProcs, 8);
  b.set(hpf::kSymProc, 0);
  core::LayoutMap layouts;
  layouts["u"] = hpf::ArrayLayout{"u", 0, {2048, 2048}, 8};
  for (auto _ : state) {
    auto p = core::build_comm_plan(*prog.phases[0].loop, prog, b, layouts,
                                   8, 3, 128);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_BuildCommPlan);

}  // namespace
}  // namespace fgdsm

BENCHMARK_MAIN();
