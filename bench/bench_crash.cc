// Crash-recovery harness (bench_crash): checkpoint overhead and mean time
// to repair (MTTR) under fail-stop node crashes, at paper scale and beyond.
//
// Per cluster size (default --nodes-list=8,256, weak-scaled jacobi):
//
//   1. Fault-free baseline — reference elapsed time and checksum scalars.
//   2. Checkpoint-overhead sweep — the same run with --checkpoint-every=K
//      for each K in --intervals (default 1,4,16): elapsed-vs-baseline
//      ratio, checkpoints taken, bytes serialized. No crashes: this is the
//      pure insurance premium.
//   3. Crash + recovery — one explicit fail-stop mid-run (node nodes/2 at
//      a third of the baseline's elapsed time), plus optional per-barrier
//      probabilistic crashes (--crashp, normalized by cluster size so the
//      expected cluster-wide crash count stays constant as nodes grow),
//      under --checkpoint-every=<--crash-interval> (default 4). The run
//      must finish with scalars BIT-IDENTICAL to the fault-free baseline —
//      the recovery-correctness gate — and reports crashes, recoveries,
//      and MTTR (rollback_ns per recovery: lost work + detection latency +
//      restart coordination).
//
// All simulated results are byte-identical at any --jobs/--sim-threads.
// --json emits the standard fgdsm-bench-v1 schema with per-cell runs plus
// overhead/mttr/checksum metrics.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/executor.h"
#include "src/tempest/config.h"
#include "src/util/options.h"
#include "src/util/table.h"

namespace fgdsm {
namespace {

// Largest m with m*m <= v (integer sqrt, as in bench_scale: libm rounding
// must not choose the problem size).
std::int64_t isqrt(std::int64_t v) {
  std::int64_t m = 0;
  while ((m + 1) * (m + 1) <= v) ++m;
  return m;
}

std::vector<int> parse_int_list(const std::string& s, const char* flag,
                                int lo, int hi) {
  std::vector<int> out;
  std::string item;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && s[i] != ',') {
      item += s[i];
      continue;
    }
    if (item.empty()) continue;
    const int v = std::atoi(item.c_str());
    if (v < lo || v > hi) {
      std::fprintf(stderr, "fgdsm: %s entry '%s' is outside [%d, %d]\n", flag,
                   item.c_str(), lo, hi);
      std::exit(2);
    }
    out.push_back(v);
    item.clear();
  }
  if (out.empty()) {
    std::fprintf(stderr, "fgdsm: %s is empty\n", flag);
    std::exit(2);
  }
  return out;
}

exec::RunResult run_spec(const exec::ExperimentSpec& s) {
  try {
    return exec::run(*s.program, s.config);
  } catch (const sim::CrashError& e) {
    sim::exit_crash(e);  // unrecoverable fail-stop: exit 87
  } catch (const sim::StallError& e) {
    sim::exit_stall(e);
  }
}

// The bit-identity gate: every checksum scalar of the recovered run must
// equal the fault-free baseline's exactly (not approximately).
bool scalars_identical(const std::map<std::string, double>& a,
                       const std::map<std::string, double>& b) {
  if (a.size() != b.size()) return false;
  auto ib = b.begin();
  for (const auto& [k, v] : a) {
    if (ib->first != k ||
        std::memcmp(&ib->second, &v, sizeof(double)) != 0)
      return false;
    ++ib;
  }
  return true;
}

int crash_main(int argc, char** argv) {
  bench::BenchConfig cfg = bench::BenchConfig::from_args(
      argc, argv,
      {"nodes-list", "intervals", "crash-interval", "crashp", "sweeps"});
  util::Options o(argc, argv);  // re-parse for the harness-specific flags
  const std::vector<int> node_counts = parse_int_list(
      o.get("nodes-list", "8,256"), "--nodes-list", 2, tempest::kMaxNodes);
  const std::vector<int> intervals =
      parse_int_list(o.get("intervals", "1,4,16"), "--intervals", 1, 1 << 20);
  const int crash_interval =
      static_cast<int>(o.get_int("crash-interval", 4));
  const double crashp = o.get_double("crashp", 0.0);
  const std::int64_t sweeps = o.get_int("sweeps", 12);
  if (crash_interval < 1 || crashp < 0.0 || crashp > 1.0 || sweeps < 1) {
    std::fprintf(stderr,
                 "fgdsm: bad --crash-interval/--crashp/--sweeps value\n");
    return 2;
  }
  cfg.nodes = node_counts.back();  // JSON config block: the largest point

  // Weak-scaled jacobi, as in bench_scale: per-node tile fixed by --scale.
  const std::int64_t tile = std::max<std::int64_t>(
      8, static_cast<std::int64_t>(64 * std::max(0.05, cfg.scale) * 4));

  std::printf(
      "Crash recovery: checkpoint overhead + MTTR (jacobi, %lld sweeps), "
      "block=%zuB, collectives=%s\n",
      static_cast<long long>(sweeps), cfg.block,
      tempest::to_string(cfg.collectives));

  bench::JsonReport jr("crash", cfg);
  util::Table t({"nodes", "config", "sim elapsed", "vs base", "ckpts",
                 "ckpt bytes", "crashes", "recov", "MTTR", "checksum"});
  std::deque<hpf::Program> progs;  // stable addresses; specs hold pointers

  for (const int nodes : node_counts) {
    const std::int64_t n = std::max<std::int64_t>(
        nodes, tile * isqrt(static_cast<std::int64_t>(nodes)));
    progs.push_back(apps::jacobi(n, sweeps));
    const hpf::Program& prog = progs.back();

    const auto spec_for = [&](const sim::FaultConfig& faults,
                              int checkpoint_every) {
      exec::ExperimentSpec s = bench::make_spec(
          prog, core::shmem_opt_full(), nodes, /*dual_cpu=*/true, cfg.block);
      s.config.cluster.faults = faults;
      s.config.cluster.checkpoint_every = checkpoint_every;
      s.config.cluster.watchdog_ns =
          faults.enabled
              ? tempest::default_watchdog_ns(nodes, cfg.collectives)
              : cfg.watchdog_ns;
      return s;
    };

    // 1. Fault-free baseline.
    std::fprintf(stderr, "[%d nodes] baseline n=%lld...\n", nodes,
                 static_cast<long long>(n));
    const exec::RunResult base =
        run_spec(spec_for(sim::FaultConfig{}, /*checkpoint_every=*/0));
    const double base_ns = static_cast<double>(base.stats.elapsed_ns);
    t.add_row({std::to_string(nodes), "baseline",
               util::format_ns(base.stats.elapsed_ns), "1.000", "0", "0", "0",
               "0", "-", "-"});
    jr.add_run("jacobi@" + std::to_string(nodes), "baseline", base);

    // 2. Checkpoint-overhead sweep (fault-free).
    for (const int k : intervals) {
      std::fprintf(stderr, "[%d nodes] checkpoint-every=%d...\n", nodes, k);
      const exec::RunResult r = run_spec(spec_for(sim::FaultConfig{}, k));
      const util::NodeStats tot = r.stats.totals();
      const double ratio = static_cast<double>(r.stats.elapsed_ns) / base_ns;
      t.add_row({std::to_string(nodes), "ckpt K=" + std::to_string(k),
                 util::format_ns(r.stats.elapsed_ns),
                 util::Table::cell(ratio, 3),
                 util::format_count(tot.checkpoints),
                 util::format_count(tot.checkpoint_bytes), "0", "0", "-",
                 scalars_identical(base.scalars, r.scalars) ? "ok"
                                                            : "MISMATCH"});
      jr.add_run("jacobi@" + std::to_string(nodes),
                 "ckpt_k" + std::to_string(k), r);
      jr.add_metric("overhead_k" + std::to_string(k) + "@" +
                        std::to_string(nodes),
                    ratio);
    }

    // 3. Crash + recovery, gated bit-identical to the baseline. One
    // deterministic mid-run fail-stop, plus optional per-barrier draws
    // normalized so the expected cluster-wide crash count is independent of
    // the cluster size.
    sim::FaultConfig crash_faults;
    crash_faults.enabled = true;
    crash_faults.crashes.emplace_back(
        nodes / 2, std::max<sim::Time>(1, base.stats.elapsed_ns / 3));
    crash_faults.crashp = crashp > 0.0 ? crashp * 8.0 / nodes : 0.0;
    std::fprintf(stderr, "[%d nodes] crash run (node %d @ %lld ns)...\n",
                 nodes, nodes / 2,
                 static_cast<long long>(base.stats.elapsed_ns / 3));
    const exec::RunResult r = run_spec(spec_for(crash_faults, crash_interval));
    const util::NodeStats tot = r.stats.totals();
    // recoveries/rollback_ns are counted on every node per rollback, so
    // their ratio is already the per-rollback mean.
    const double mttr = tot.recoveries > 0
                            ? static_cast<double>(tot.rollback_ns) /
                                  static_cast<double>(tot.recoveries)
                            : 0.0;
    const bool identical = scalars_identical(base.scalars, r.scalars);
    t.add_row({std::to_string(nodes),
               "crash K=" + std::to_string(crash_interval),
               util::format_ns(r.stats.elapsed_ns),
               util::Table::cell(static_cast<double>(r.stats.elapsed_ns) /
                                     base_ns,
                                 3),
               util::format_count(tot.checkpoints),
               util::format_count(tot.checkpoint_bytes),
               util::format_count(tot.crashes),
               util::format_count(tot.recoveries / r.stats.node.size()),
               util::format_ns(static_cast<sim::Time>(mttr)),
               identical ? "ok" : "MISMATCH"});
    jr.add_run("jacobi@" + std::to_string(nodes), "crash", r);
    jr.add_metric("mttr_ns@" + std::to_string(nodes), mttr);
    jr.add_metric("checksum_identical@" + std::to_string(nodes),
                  identical ? 1.0 : 0.0);
    if (!identical) {
      t.print(std::cout);
      std::fprintf(stderr,
                   "fgdsm: recovered run diverged from the fault-free "
                   "baseline at %d nodes\n",
                   nodes);
      return 1;
    }
  }

  t.print(std::cout);
  jr.write();
  return 0;
}

}  // namespace
}  // namespace fgdsm

int main(int argc, char** argv) { return fgdsm::crash_main(argc, argv); }
