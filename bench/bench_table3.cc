// Table 3 — per-application breakdown: compute time, communication time
// (dual- and single-cpu) with the percentage reduction from the compiler
// optimizations, and average per-node miss counts with their reduction.
//
// Expected shape (paper §6): miss reductions are large (>= ~65%) everywhere
// except grav (~40%, 129-point arrays vs 128-byte blocks); communication
// time reductions are substantial but smaller than the miss reductions.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  std::printf(
      "Table 3: communication time and miss-count reductions (scale=%.2f, "
      "%d nodes)\n",
      bc.scale, bc.nodes);

  std::vector<std::pair<std::string, hpf::Program>> progs;
  for (const auto& app : apps::registry())
    if (bc.selected(app.name)) progs.emplace_back(app.name, app.scaled(bc.scale));

  bench::RunMatrix m;
  for (const auto& [name, prog] : progs) {
    m.add(name, "u2", prog, core::shmem_unopt(), bc.nodes, true, bc.block);
    m.add(name, "o2", prog, core::shmem_opt_full(), bc.nodes, true, bc.block);
    m.add(name, "u1", prog, core::shmem_unopt(), bc.nodes, false, bc.block);
    m.add(name, "o1", prog, core::shmem_opt_full(), bc.nodes, false, bc.block);
  }
  m.run(bc.jobs);

  util::Table t({"app", "compute (s)", "comm 2cpu (s)", "% red 2cpu",
                 "comm 1cpu (s)", "% red 1cpu", "misses/node (K)",
                 "% red misses"});
  for (const auto& [name, prog] : progs) {
    (void)prog;
    const auto& u2 = m.at(name, "u2");
    const auto& o2 = m.at(name, "o2");
    const auto& u1 = m.at(name, "u1");
    const auto& o1 = m.at(name, "o1");
    const double comm2_u = u2.stats.avg_comm_ns_per_node() / 1e9;
    const double comm2_o = o2.stats.avg_comm_ns_per_node() / 1e9;
    const double comm1_u = u1.stats.avg_comm_ns_per_node() / 1e9;
    const double comm1_o = o1.stats.avg_comm_ns_per_node() / 1e9;
    t.add_row(
        {name,
         util::Table::cell(u2.stats.avg_compute_ns_per_node() / 1e9, 1),
         util::Table::cell(comm2_u, 2),
         util::Table::percent(util::percent_reduction(comm2_u, comm2_o)),
         util::Table::cell(comm1_u, 2),
         util::Table::percent(util::percent_reduction(comm1_u, comm1_o)),
         util::Table::cell(u2.stats.avg_misses_per_node() / 1e3, 1),
         util::Table::percent(util::percent_reduction(
             u2.stats.avg_misses_per_node(),
             o2.stats.avg_misses_per_node()))});
  }
  t.print(std::cout);

  bench::JsonReport jr("table3", bc);
  m.export_to(jr);
  jr.write();
  return 0;
}
