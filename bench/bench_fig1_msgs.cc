// Figure 1 — protocol message counts for one producer-consumer block
// transfer: the default invalidation protocol's chain (read-request,
// put-data-request, put-data-response, read-response; plus write-request,
// invalidation, acknowledgement, write-grant on the next write) versus the
// compiler-directed direct-update message.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench/common.h"
#include "src/proto/stache.h"
#include "src/tempest/cluster.h"
#include "src/tempest/types.h"
#include "src/util/table.h"

namespace fgdsm {
namespace {

using tempest::Cluster;
using tempest::ClusterConfig;
using tempest::MsgType;
using tempest::Node;

struct Counts {
  std::uint64_t messages = 0;
  sim::Time per_iter_ns = 0;
};

// Producer p(=2) writes one block, consumer q(=3) reads it, repeatedly, with
// the home at node 0 (3-hop). Returns protocol messages per iteration in
// steady state.
Counts measure(bool optimized, int iters) {
  ClusterConfig cfg;
  cfg.nnodes = 4;
  cfg.block_size = 128;
  Cluster c(cfg);
  proto::Stache proto(c);
  const tempest::GAddr a = c.allocate("x", 4096);  // home node 0
  const tempest::BlockId b = c.block_of(a);
  // Count protocol messages directly by wrapping every coherence/CCC
  // handler (barrier and reduction traffic excluded by construction).
  std::uint64_t proto_msgs = 0;
  for (MsgType mt :
       {MsgType::kReadReq, MsgType::kPutDataReq, MsgType::kPutDataResp,
        MsgType::kReadResp, MsgType::kWriteReq, MsgType::kInval,
        MsgType::kInvalAck, MsgType::kWriteGrant, MsgType::kFetchExclReq,
        MsgType::kFetchExclResp, MsgType::kDirectData}) {
    const Cluster::Handler orig = c.handler(mt);
    c.register_handler(mt, [&proto_msgs, orig](Node& n, sim::Message& m,
                                               tempest::HandlerClock& clk) {
      ++proto_msgs;
      orig(n, m, clk);
    });
  }
  std::uint64_t msgs_before = 0;
  sim::Time time_before = 0;
  Counts out;
  c.run([&](Node& n, sim::Task& t) {
    for (int it = 0; it < iters; ++it) {
      if (it == 1 && n.id() == 2) {  // skip the cold iteration
        msgs_before = proto_msgs;
        time_before = t.now();
      }
      if (optimized) {
        if (n.id() == 2) {
          // Steady state: producer already exclusive (mk_writable elided).
          n.ensure_writable(t, a, 8);
          double v = it;
          std::memcpy(n.mem(a), &v, 8);
          n.note_writes(a, 8);
        }
        if (n.id() == 3 && it == 0) proto.implicit_writable(n, t, b, b);
        n.barrier(t);
        if (n.id() == 2)
          proto.send_blocks(n, t, a, cfg.block_size, {3}, cfg.block_size);
        if (n.id() == 3) {
          proto.ready_to_recv(n, t, 1);
          double v;
          std::memcpy(&v, n.mem(a), 8);
          (void)v;
        }
        n.barrier(t);
      } else {
        if (n.id() == 2) {
          n.ensure_writable(t, a, 8);
          double v = it;
          std::memcpy(n.mem(a), &v, 8);
          n.note_writes(a, 8);
        }
        n.barrier(t);
        if (n.id() == 3) n.ensure_readable(t, a, 8);
        n.barrier(t);
      }
    }
    if (n.id() == 2) {
      out.messages = (proto_msgs - msgs_before) / (iters - 1);
      out.per_iter_ns = (t.now() - time_before) / (iters - 1);
    }
  });
  return out;
}

}  // namespace
}  // namespace fgdsm

int main(int argc, char** argv) {
  using namespace fgdsm;
  // Accepts the common flags (--jobs etc.) for uniform driving by
  // run_experiments.sh; the producer-consumer pair is fixed-size.
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  const auto def = measure(false, 9);
  const auto opt = measure(true, 9);
  std::printf("Figure 1: protocol messages per producer-consumer transfer\n");
  util::Table t({"scheme", "msgs/iteration", "paper", "time/iter (us)"});
  t.add_row({"default protocol (Fig 1a)",
             util::Table::cell(static_cast<std::int64_t>(def.messages)),
             "8 (4 read chain + 4 write chain)",
             util::Table::cell(sim::to_us(def.per_iter_ns), 1)});
  t.add_row({"compiler-directed (Fig 1b)",
             util::Table::cell(static_cast<std::int64_t>(opt.messages)),
             "1 direct update",
             util::Table::cell(sim::to_us(opt.per_iter_ns), 1)});
  t.print(std::cout);

  bench::JsonReport jr("fig1_msgs", bc);
  jr.add_metric("default_msgs_per_iter", static_cast<double>(def.messages));
  jr.add_metric("default_us_per_iter", sim::to_us(def.per_iter_ns));
  jr.add_metric("opt_msgs_per_iter", static_cast<double>(opt.messages));
  jr.add_metric("opt_us_per_iter", sim::to_us(opt.per_iter_ns));
  jr.write();
  return 0;
}
