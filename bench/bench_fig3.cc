// Figure 3 — speedups on the 8-node cluster for every application:
// unoptimized vs compiler-optimized shared memory, single-cpu and dual-cpu
// protocol processing, plus the message-passing backend; all relative to
// the uniprocessor run.
//
// Expected shape (paper §6): optimization improves every app; single-cpu
// configurations gain proportionally more; message passing wins only on lu;
// grav improves least.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  // Header reports only experiment parameters — never --jobs, so output
  // files compare byte-identical across job counts.
  std::printf(
      "Figure 3: speedups vs uniprocessor (scale=%.2f, %d nodes, %zuB "
      "blocks)\n",
      bc.scale, bc.nodes, bc.block);

  // Build the whole app x configuration sweep, then execute it as one batch.
  std::vector<std::pair<std::string, hpf::Program>> progs;
  for (const auto& app : apps::registry())
    if (bc.selected(app.name)) progs.emplace_back(app.name, app.scaled(bc.scale));

  bench::RunMatrix m;
  for (const auto& [name, prog] : progs) {
    m.add(name, "serial", prog, core::serial(), 1, true, bc.block);
    m.add(name, "u1", prog, core::shmem_unopt(), bc.nodes, false, bc.block);
    m.add(name, "o1", prog, core::shmem_opt_full(), bc.nodes, false, bc.block);
    m.add(name, "u2", prog, core::shmem_unopt(), bc.nodes, true, bc.block);
    m.add(name, "o2", prog, core::shmem_opt_full(), bc.nodes, true, bc.block);
    m.add(name, "mp", prog, core::msg_passing(), bc.nodes, true, bc.block);
  }
  m.run(bc.jobs);

  util::Table t({"app", "sm-unopt 1cpu", "sm-opt 1cpu", "sm-unopt 2cpu",
                 "sm-opt 2cpu", "msg-passing", "opt gain 2cpu"});
  for (const auto& [name, prog] : progs) {
    (void)prog;
    const auto& serial = m.at(name, "serial");
    const auto& u2 = m.at(name, "u2");
    const auto& o2 = m.at(name, "o2");
    const double gain = 100.0 * (static_cast<double>(u2.stats.elapsed_ns) -
                                 static_cast<double>(o2.stats.elapsed_ns)) /
                        static_cast<double>(u2.stats.elapsed_ns);
    t.add_row({name, util::Table::cell(bench::speedup(serial, m.at(name, "u1"))),
               util::Table::cell(bench::speedup(serial, m.at(name, "o1"))),
               util::Table::cell(bench::speedup(serial, u2)),
               util::Table::cell(bench::speedup(serial, o2)),
               util::Table::cell(bench::speedup(serial, m.at(name, "mp"))),
               util::Table::percent(gain)});
  }
  t.print(std::cout);

  bench::JsonReport jr("fig3", bc);
  m.export_to(jr);
  jr.write();
  return 0;
}
