// Figure 3 — speedups on the 8-node cluster for every application:
// unoptimized vs compiler-optimized shared memory, single-cpu and dual-cpu
// protocol processing, plus the message-passing backend; all relative to
// the uniprocessor run.
//
// Expected shape (paper §6): optimization improves every app; single-cpu
// configurations gain proportionally more; message passing wins only on lu;
// grav improves least.
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  std::printf(
      "Figure 3: speedups vs uniprocessor (scale=%.2f, %d nodes, %zuB "
      "blocks)\n",
      bc.scale, bc.nodes, bc.block);
  util::Table t({"app", "sm-unopt 1cpu", "sm-opt 1cpu", "sm-unopt 2cpu",
                 "sm-opt 2cpu", "msg-passing", "opt gain 2cpu"});
  for (const auto& app : apps::registry()) {
    if (!bc.selected(app.name)) continue;
    const hpf::Program prog = app.scaled(bc.scale);
    const auto serial =
        bench::run_app(prog, core::serial(), 1, true, bc.block);
    const auto u1 = bench::run_app(prog, core::shmem_unopt(), bc.nodes,
                                   false, bc.block);
    const auto o1 = bench::run_app(prog, core::shmem_opt_full(), bc.nodes,
                                   false, bc.block);
    const auto u2 = bench::run_app(prog, core::shmem_unopt(), bc.nodes,
                                   true, bc.block);
    const auto o2 = bench::run_app(prog, core::shmem_opt_full(), bc.nodes,
                                   true, bc.block);
    const auto mp = bench::run_app(prog, core::msg_passing(), bc.nodes,
                                   true, bc.block);
    const double gain = 100.0 * (static_cast<double>(u2.stats.elapsed_ns) -
                                 static_cast<double>(o2.stats.elapsed_ns)) /
                        static_cast<double>(u2.stats.elapsed_ns);
    t.add_row({app.name, util::Table::cell(bench::speedup(serial, u1)),
               util::Table::cell(bench::speedup(serial, o1)),
               util::Table::cell(bench::speedup(serial, u2)),
               util::Table::cell(bench::speedup(serial, o2)),
               util::Table::cell(bench::speedup(serial, mp)),
               util::Table::percent(gain)});
    std::fflush(stdout);
  }
  t.print(std::cout);
  return 0;
}
