// Weak-scaling harness: fixed work per node while the cluster grows
// (default 8 -> 64 -> 256 nodes; --nodes-list picks any set up to
// tempest::kMaxNodes). Two workloads per point:
//
//   jacobi   n x n five-point relaxation with n ~ base * sqrt(nodes), so the
//            per-node tile stays constant — the regular stencil exercises the
//            shared-memory protocol and the barrier at every sweep;
//   spmv     ELL sparse matvec with n ~ base * nodes rows — the irregular
//            inspector-executor path plus an allreduce per iteration.
//
// Under perfect weak scaling the simulated elapsed time per point would be
// flat; the growth that remains is the collective depth (the scaling ablation
// --collectives selects; default binomial here, since a flat coordinator at
// 1024 nodes serializes the barrier) plus protocol contention.
//
// Like bench_selfperf this binary also measures the *simulator's* host-side
// cost at each point — events/sec, allocs/event, and throughput normalized by
// a fixed splitmix64 calibration loop — because the tentpole claim of this
// harness is structural: simulator memory and allocation cost must grow with
// active links and touched pages, not with nodes^2. Runs execute one at a
// time (the allocation hook counts process-wide), --reps keeps the best wall
// time, and the simulated results in --json stay byte-identical across
// --sim-threads and repetition counts.
//
//   --json=<file>       fgdsm-bench-v1 (simulated results only, see
//                       bench/common.h; gate with scripts/check_results_json.py)
//   --perf-json=<file>  fgdsm-scale-v1 (host-side numbers per workload point;
//                       gate against BENCH_SCALE.json with
//                       scripts/check_perf.py --baseline BENCH_SCALE.json)
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/executor.h"
#include "src/util/json.h"
#include "src/util/options.h"
#include "src/util/table.h"

// ---------------------------------------------------------------------------
// Counting allocator hook (same shape as bench_selfperf): every operator new
// in the process bumps the counter. Local to this binary.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fgdsm {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Fixed-work splitmix64 loop — identical constants to bench_selfperf so the
// two harnesses' normalized numbers are directly comparable on one host.
double calibrate_mops() {
  constexpr std::uint64_t kOps = 200'000'000;
  std::uint64_t x = 0x9e3779b97f4a7c15ull, acc = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    acc ^= z ^ (z >> 31);
  }
  const double s = seconds_since(t0);
  if (acc == 0x12345678) std::fprintf(stderr, "calib sentinel\n");
  return static_cast<double>(kOps) / 1e6 / s;
}

// Largest m with m*m <= v (integer sqrt; std::sqrt would make the problem
// size depend on libm rounding).
std::int64_t isqrt(std::int64_t v) {
  std::int64_t m = 0;
  while ((m + 1) * (m + 1) <= v) ++m;
  return m;
}

struct Point {
  std::string app;   // "jacobi" or "spmv"
  int nodes = 0;
  std::int64_t n = 0;  // linear problem dimension actually used
  exec::RunResult result;
  std::uint64_t events = 0;
  double seconds = 0.0;
  std::uint64_t allocs = 0;

  std::string key() const { return app + "@" + std::to_string(nodes); }
  double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
  double ns_per_event() const {
    return events > 0 ? seconds * 1e9 / static_cast<double>(events) : 0.0;
  }
  double allocs_per_event() const {
    return events > 0
               ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0.0;
  }
};

// Run one spec `reps` times (sequentially; the alloc hook is process-wide),
// keeping the best wall time. Simulated results are identical every rep.
void measure(Point& p, const exec::ExperimentSpec& spec, int reps) {
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    exec::RunResult res;
    try {
      res = exec::run(*spec.program, spec.config);
    } catch (const sim::StallError& e) {
      sim::exit_stall(e);
    }
    const double s = seconds_since(t0);
    const std::uint64_t a = g_allocs.load(std::memory_order_relaxed) - a0;
    if (r == 0 || s < p.seconds) {
      p.seconds = s;
      p.allocs = a;
    }
    p.events = res.engine_events;
    p.result = std::move(res);
  }
}

int scale_main(int argc, char** argv) {
  bench::BenchConfig cfg = bench::BenchConfig::from_args(
      argc, argv, {"nodes-list", "perf-json", "reps", "sweeps", "iters"});
  util::Options o(argc, argv);  // re-parse for the harness-specific flags
  const std::string nodes_list = o.get("nodes-list", "8,64,256");
  const std::string perf_json = o.get("perf-json", "");
  const int reps = static_cast<int>(o.get_int("reps", 1));
  // Per-node work knobs: sweeps/iterations stay fixed while the grid grows.
  const std::int64_t sweeps = o.get_int("sweeps", 8);
  const std::int64_t iters = o.get_int("iters", 4);
  if (reps < 1) {
    std::fprintf(stderr, "fgdsm: --reps must be >= 1\n");
    return 2;
  }
  // Weak scaling at a flat coordinator serializes the barrier by design;
  // default to the binomial tree unless the user picked a topology (passing
  // --collectives=flat explicitly measures exactly that serialization).
  if (!o.has("collectives")) {
    cfg.collectives = tempest::Collectives::kBinomial;
    bench::g_collectives = tempest::Collectives::kBinomial;
  }

  std::vector<int> node_counts;
  {
    std::string item;
    for (std::size_t i = 0; i <= nodes_list.size(); ++i) {
      if (i < nodes_list.size() && nodes_list[i] != ',') {
        item += nodes_list[i];
        continue;
      }
      if (item.empty()) continue;
      const int n = std::atoi(item.c_str());
      if (n < 1 || n > tempest::kMaxNodes) {
        std::fprintf(stderr,
                     "fgdsm: --nodes-list entry '%s' is outside [1, %d]\n",
                     item.c_str(), tempest::kMaxNodes);
        return 2;
      }
      node_counts.push_back(n);
      item.clear();
    }
  }
  if (node_counts.empty()) {
    std::fprintf(stderr, "fgdsm: --nodes-list is empty\n");
    return 2;
  }
  cfg.nodes = node_counts.back();  // JSON config block: the largest point

  // Per-node work, controlled by --scale: at scale 1 each node owns a
  // 64x64 jacobi tile and 512 spmv rows. sqrt/linear growth keeps that
  // constant as the cluster grows.
  const std::int64_t jacobi_tile = std::max<std::int64_t>(
      8, static_cast<std::int64_t>(64 * std::max(0.05, cfg.scale) * 4));
  const std::int64_t spmv_rows = std::max<std::int64_t>(
      64, static_cast<std::int64_t>(512 * std::max(0.05, cfg.scale) * 4));

  std::printf(
      "Weak scaling (fixed work per node), collectives=%s, block=%zuB, "
      "best of %d\n",
      tempest::to_string(cfg.collectives), cfg.block, reps);
  const double calib = calibrate_mops();
  std::printf("calibration: %.0f Mops/s (splitmix64)\n", calib);

  std::deque<hpf::Program> progs;  // stable addresses; specs hold pointers
  std::vector<Point> points;

  for (const int nodes : node_counts) {
    if (cfg.selected("jacobi")) {
      // n^2 total elements proportional to nodes: n = tile * sqrt(nodes).
      const std::int64_t n =
          std::max<std::int64_t>(nodes, jacobi_tile *
                                            isqrt(static_cast<std::int64_t>(
                                                nodes)));
      progs.push_back(apps::jacobi(n, sweeps));
      Point p;
      p.app = "jacobi";
      p.nodes = nodes;
      p.n = n;
      const exec::ExperimentSpec spec = bench::make_spec(
          progs.back(), core::shmem_opt_full(), nodes, /*dual_cpu=*/true,
          cfg.block);
      std::fprintf(stderr, "[jacobi @%d] n=%lld x %d reps...\n", nodes,
                   static_cast<long long>(n), reps);
      measure(p, spec, reps);
      points.push_back(std::move(p));
    }
    if (cfg.selected("spmv")) {
      const std::int64_t n = spmv_rows * nodes;
      progs.push_back(apps::spmv(n, 8, iters, /*pattern=*/0));
      Point p;
      p.app = "spmv";
      p.nodes = nodes;
      p.n = n;
      const exec::ExperimentSpec spec = bench::make_spec(
          progs.back(), core::shmem_opt_full(), nodes, /*dual_cpu=*/true,
          cfg.block);
      std::fprintf(stderr, "[spmv @%d] n=%lld x %d reps...\n", nodes,
                   static_cast<long long>(n), reps);
      measure(p, spec, reps);
      points.push_back(std::move(p));
    }
  }

  util::Table t({"app", "nodes", "n", "sim elapsed", "events", "wall s",
                 "events/s", "allocs/event", "norm (ev/Mop)"});
  for (const Point& p : points)
    t.add_row({p.app, std::to_string(p.nodes), std::to_string(p.n),
               util::format_ns(p.result.stats.elapsed_ns),
               util::format_count(p.events), util::Table::cell(p.seconds, 2),
               util::format_count(
                   static_cast<std::uint64_t>(p.events_per_sec())),
               util::Table::cell(p.allocs_per_event(), 2),
               util::Table::cell(p.events_per_sec() / (calib * 1e6), 4)});
  t.print(std::cout);

  // Weak-scaling efficiency relative to the first point of each app: the
  // simulated elapsed-time ratio (1.0 = perfect weak scaling).
  bench::JsonReport jr("scale", cfg);
  for (const Point& p : points) {
    jr.add_run(p.app, std::to_string(p.nodes) + "n", p.result);
    for (const Point& base : points) {
      if (base.app != p.app) continue;
      if (&base != &p)
        jr.add_metric(
            p.key() + "_elapsed_vs_" + std::to_string(base.nodes),
            static_cast<double>(p.result.stats.elapsed_ns) /
                static_cast<double>(base.result.stats.elapsed_ns));
      break;  // only the first point of this app is the reference
    }
  }
  jr.write();

  if (!perf_json.empty()) {
    std::ofstream f(perf_json);
    if (!f) {
      std::fprintf(stderr, "fgdsm: cannot open json file '%s'\n",
                   perf_json.c_str());
      return 1;
    }
    util::JsonWriter w(f);
    w.begin_object();
    w.kv("schema", "fgdsm-scale-v1");
    w.key("host");
    w.begin_object();
    w.kv("nproc",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.kv("calibration_mops", calib);
    w.end_object();
    w.key("config");
    w.begin_object();
    w.kv("scale", cfg.scale);
    w.kv("nodes_list", nodes_list);
    w.kv("block", static_cast<std::uint64_t>(cfg.block));
    w.kv("collectives", tempest::to_string(cfg.collectives));
    w.kv("reps", static_cast<std::uint64_t>(reps));
    w.end_object();
    w.key("workloads");
    w.begin_object();
    for (const Point& p : points) {
      w.key(p.key());
      w.begin_object();
      w.kv("events", p.events);
      w.kv("seconds", p.seconds);
      w.kv("events_per_sec", p.events_per_sec());
      w.kv("ns_per_event", p.ns_per_event());
      w.kv("allocs_per_event", p.allocs_per_event());
      w.kv("normalized_events_per_mop", p.events_per_sec() / (calib * 1e6));
      w.end_object();
    }
    w.end_object();
    w.end_object();
    f << '\n';
    std::fprintf(stderr, "fgdsm: wrote %s\n", perf_json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fgdsm

int main(int argc, char** argv) { return fgdsm::scale_main(argc, argv); }
