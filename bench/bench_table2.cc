// Table 2 — the application suite: problem sizes and memory usage. Memory
// is computed from the actual array declarations at the paper's sizes and
// compared with the paper's column (our arrays are REAL*8 throughout;
// shallow and lu were REAL*4 in the original — see DESIGN.md).
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/hpf/analysis.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  // Accepts the common flags (--jobs etc.) for uniform driving by
  // run_experiments.sh; the inventory is computed, not simulated.
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  bench::JsonReport jr("table2", bc);
  util::Table t({"Application", "Problem Size", "Paper Mem (MB)",
                 "Our Mem (MB)", "Arrays", "Distribution"});
  for (const auto& app : apps::registry()) {
    const hpf::Program prog = app.paper();
    hpf::Bindings b = prog.sizes;
    b.set(hpf::kSymNProcs, 8);
    b.set(hpf::kSymProc, 0);
    double bytes = 0;
    std::string dists;
    for (const auto& a : prog.arrays) {
      double e = 8;
      for (const auto& x : a.extents) e *= static_cast<double>(x.eval(b));
      bytes += e;
      if (dists.empty()) dists = to_string(a.dist);
      else if (dists.find(to_string(a.dist)) == std::string::npos)
        dists += std::string("+") + to_string(a.dist);
    }
    t.add_row({app.name, app.paper_problem,
               util::Table::cell(app.paper_memory_mb, 1),
               util::Table::cell(bytes / 1e6, 1),
               util::Table::cell(static_cast<std::int64_t>(
                   prog.arrays.size())),
               dists});
    jr.add_metric(app.name + "_mem_mb", bytes / 1e6);
  }
  std::printf("Table 2: application suite\n");
  t.print(std::cout);
  jr.write();
  return 0;
}
