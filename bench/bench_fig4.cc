// Figure 4 — the contribution of bulk transfer and run-time overhead
// elimination (dual-cpu): execution time of each optimization level as a
// fraction of the unoptimized run.
//
// Expected shape (paper §6): base > +bulk > +bulk+rtelim (lower is better),
// with bulk transfer the more important of the two.
// The +pre column is this reproduction's extension (the paper's §4.3/§7
// future work): availability-based redundant-communication elimination.
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  std::printf(
      "Figure 4: normalized execution time, dual-cpu (scale=%.2f, %d "
      "nodes)\n",
      bc.scale, bc.nodes);
  util::Table t({"app", "unopt", "base opts", "+bulk", "+bulk+rtelim",
                 "+pre (ext.)"});
  for (const auto& app : apps::registry()) {
    if (!bc.selected(app.name)) continue;
    const hpf::Program prog = app.scaled(bc.scale);
    const auto unopt = bench::run_app(prog, core::shmem_unopt(), bc.nodes,
                                      true, bc.block);
    const double base_ns = static_cast<double>(unopt.stats.elapsed_ns);
    auto frac = [&](const core::Options& opt) {
      const auto r = bench::run_app(prog, opt, bc.nodes, true, bc.block);
      return static_cast<double>(r.stats.elapsed_ns) / base_ns;
    };
    t.add_row({app.name, "1.00",
               util::Table::cell(frac(core::shmem_opt_base())),
               util::Table::cell(frac(core::shmem_opt_bulk())),
               util::Table::cell(frac(core::shmem_opt_full())),
               util::Table::cell(frac(core::shmem_opt_pre()))});
    std::fflush(stdout);
  }
  t.print(std::cout);
  return 0;
}
