// Figure 4 — the contribution of bulk transfer and run-time overhead
// elimination (dual-cpu): execution time of each optimization level as a
// fraction of the unoptimized run.
//
// Expected shape (paper §6): base > +bulk > +bulk+rtelim (lower is better),
// with bulk transfer the more important of the two.
// The +pre column is this reproduction's extension (the paper's §4.3/§7
// future work): availability-based redundant-communication elimination.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace fgdsm;
  const bench::BenchConfig bc = bench::BenchConfig::from_args(argc, argv);
  std::printf(
      "Figure 4: normalized execution time, dual-cpu (scale=%.2f, %d "
      "nodes)\n",
      bc.scale, bc.nodes);

  std::vector<std::pair<std::string, hpf::Program>> progs;
  for (const auto& app : apps::registry())
    if (bc.selected(app.name)) progs.emplace_back(app.name, app.scaled(bc.scale));

  const std::vector<std::pair<std::string, core::Options>> levels = {
      {"unopt", core::shmem_unopt()},
      {"base", core::shmem_opt_base()},
      {"bulk", core::shmem_opt_bulk()},
      {"full", core::shmem_opt_full()},
      {"pre", core::shmem_opt_pre()},
  };
  bench::RunMatrix m;
  for (const auto& [name, prog] : progs)
    for (const auto& [lvl, opt] : levels)
      m.add(name, lvl, prog, opt, bc.nodes, true, bc.block);
  m.run(bc.jobs);

  util::Table t({"app", "unopt", "base opts", "+bulk", "+bulk+rtelim",
                 "+pre (ext.)"});
  for (const auto& [name, prog] : progs) {
    (void)prog;
    const double base_ns =
        static_cast<double>(m.at(name, "unopt").stats.elapsed_ns);
    auto frac = [&](const std::string& lvl) {
      return static_cast<double>(m.at(name, lvl).stats.elapsed_ns) / base_ns;
    };
    t.add_row({name, "1.00", util::Table::cell(frac("base")),
               util::Table::cell(frac("bulk")),
               util::Table::cell(frac("full")),
               util::Table::cell(frac("pre"))});
  }
  t.print(std::cout);

  bench::JsonReport jr("fig4", bc);
  m.export_to(jr);
  jr.write();
  return 0;
}
