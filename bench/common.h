// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure). Each binary accepts:
//   --scale=<s>     problem-size scale factor (1.0 = the paper's Table 2
//                   sizes; default 0.15 keeps a bare run quick; EXPERIMENTS.md records --scale=0.5 and --full runs)
//   --nodes=<n>     cluster size (default 8, as in the paper)
//   --block=<b>     coherence block size in bytes (default 128)
//   --app=<name>    restrict to one application
//   --full          shorthand for --scale=1.0
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/executor.h"
#include "src/util/options.h"

namespace fgdsm::bench {

struct BenchConfig {
  double scale = 0.15;
  int nodes = 8;
  std::size_t block = 128;
  std::optional<std::string> only_app;

  static BenchConfig from_args(int argc, const char* const* argv) {
    util::Options o(argc, argv);
    BenchConfig c;
    c.scale = o.get_double("scale", o.get_bool("full") ? 1.0 : 0.15);
    c.nodes = static_cast<int>(o.get_int("nodes", 8));
    c.block = static_cast<std::size_t>(o.get_int("block", 128));
    if (o.has("app")) c.only_app = o.get("app");
    return c;
  }

  bool selected(const std::string& app) const {
    return !only_app || *only_app == app;
  }
};

// Run `prog` under the given options; gather_arrays stays off (programs
// verify themselves through checksum scalars).
inline exec::RunResult run_app(const hpf::Program& prog,
                               const core::Options& opt, int nodes,
                               bool dual_cpu, std::size_t block) {
  exec::RunConfig cfg;
  cfg.cluster.nnodes = nodes;
  cfg.cluster.block_size = block;
  cfg.cluster.dual_cpu = dual_cpu;
  cfg.opt = opt;
  cfg.gather_arrays = false;
  return exec::run(prog, cfg);
}

inline double speedup(const exec::RunResult& serial,
                      const exec::RunResult& parallel) {
  return static_cast<double>(serial.stats.elapsed_ns) /
         static_cast<double>(parallel.stats.elapsed_ns);
}

}  // namespace fgdsm::bench
