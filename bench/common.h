// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure). Each binary accepts:
//   --scale=<s>     problem-size scale factor (1.0 = the paper's Table 2
//                   sizes; default 0.15 keeps a bare run quick; EXPERIMENTS.md records --scale=0.5 and --full runs)
//   --nodes=<n>     cluster size (default 8, as in the paper)
//   --block=<b>     coherence block size in bytes (default 128)
//   --app=<name>    restrict to one application
//   --jobs=<n>      host threads for independent runs (default 1; results
//                   are byte-identical at any job count)
//   --plan-cache=<0|1>  host-side comm-plan caching (default 1; simulated
//                   results are identical either way — A/B timing knob)
//   --full          shorthand for --scale=1.0
//
// Harnesses build their whole (app x configuration) sweep as a matrix of
// ExperimentSpecs and execute it through run_matrix, which fans the
// independent simulations out over exec::BatchRunner's thread pool.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/util/options.h"

namespace fgdsm::bench {

// Host-side comm-plan caching for specs built by make_spec; --plan-cache=0
// turns it off for A/B wall-clock comparisons (simulated results are
// identical either way).
inline bool g_plan_cache = true;

struct BenchConfig {
  double scale = 0.15;
  int nodes = 8;
  std::size_t block = 128;
  int jobs = 1;
  std::optional<std::string> only_app;

  static BenchConfig from_args(int argc, const char* const* argv) {
    util::Options o(argc, argv);
    BenchConfig c;
    c.scale = o.get_double("scale", o.get_bool("full") ? 1.0 : 0.15);
    c.nodes = static_cast<int>(o.get_int("nodes", 8));
    c.block = static_cast<std::size_t>(o.get_int("block", 128));
    c.jobs = static_cast<int>(o.get_int("jobs", 1));
    g_plan_cache = o.get_int("plan-cache", 1) != 0;
    if (o.has("app")) c.only_app = o.get("app");
    return c;
  }

  bool selected(const std::string& app) const {
    return !only_app || *only_app == app;
  }
};

// Spec for one run of `prog` under the given options; gather_arrays stays
// off (programs verify themselves through checksum scalars).
inline exec::ExperimentSpec make_spec(const hpf::Program& prog,
                                      const core::Options& opt, int nodes,
                                      bool dual_cpu, std::size_t block,
                                      std::string label = "") {
  exec::ExperimentSpec s;
  s.program = &prog;
  s.config.cluster.nnodes = nodes;
  s.config.cluster.block_size = block;
  s.config.cluster.dual_cpu = dual_cpu;
  s.config.opt = opt;
  s.config.opt.plan_cache = g_plan_cache;
  s.config.gather_arrays = false;
  s.label = label.empty() ? opt.label() : std::move(label);
  return s;
}

// A sweep matrix: named specs accumulated by the harness, executed in one
// batch, results addressed back by (row, column) label.
class RunMatrix {
 public:
  // Register one cell; `row` is typically the app name and `col` the
  // configuration label. Programs must outlive run().
  void add(const std::string& row, const std::string& col,
           exec::ExperimentSpec spec) {
    keys_.push_back(row + "/" + col);
    spec.label = keys_.back();
    specs_.push_back(std::move(spec));
  }

  // Convenience: build the spec inline.
  void add(const std::string& row, const std::string& col,
           const hpf::Program& prog, const core::Options& opt, int nodes,
           bool dual_cpu, std::size_t block) {
    add(row, col, make_spec(prog, opt, nodes, dual_cpu, block));
  }

  // Execute every cell on `jobs` host threads. Results are byte-identical
  // for any job count (see exec::BatchRunner).
  void run(int jobs) {
    const std::vector<exec::RunResult> out =
        exec::BatchRunner(jobs).run_all(specs_);
    for (std::size_t i = 0; i < out.size(); ++i) results_[keys_[i]] = out[i];
  }

  const exec::RunResult& at(const std::string& row,
                            const std::string& col) const {
    auto it = results_.find(row + "/" + col);
    FGDSM_ASSERT_MSG(it != results_.end(),
                     "no matrix cell " << row << "/" << col);
    return it->second;
  }

  std::size_t size() const { return specs_.size(); }

 private:
  std::vector<exec::ExperimentSpec> specs_;
  std::vector<std::string> keys_;
  std::map<std::string, exec::RunResult> results_;
};

// Single-run convenience used by harnesses that measure one-off cells.
inline exec::RunResult run_app(const hpf::Program& prog,
                               const core::Options& opt, int nodes,
                               bool dual_cpu, std::size_t block) {
  const exec::ExperimentSpec s = make_spec(prog, opt, nodes, dual_cpu, block);
  return exec::run(*s.program, s.config);
}

inline double speedup(const exec::RunResult& serial,
                      const exec::RunResult& parallel) {
  return static_cast<double>(serial.stats.elapsed_ns) /
         static_cast<double>(parallel.stats.elapsed_ns);
}

}  // namespace fgdsm::bench
