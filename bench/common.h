// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure). Each binary accepts:
//   --scale=<s>     problem-size scale factor (1.0 = the paper's Table 2
//                   sizes; default 0.15 keeps a bare run quick; EXPERIMENTS.md records --scale=0.5 and --full runs)
//   --nodes=<n>     cluster size (default 8, as in the paper; values
//                   outside [1, tempest::kMaxNodes] are rejected)
//   --collectives=<flat|binary|binomial|twolevel[:G]>  barrier/reduction
//                   topology (default flat — the paper's centralized
//                   coordinator; the tree shapes are the scaling ablation,
//                   twolevel takes an optional group size G, 0 = auto)
//   --block=<b>     coherence block size in bytes (default 128)
//   --app=<name>    restrict to one application
//   --jobs=<n>      host threads for independent runs (default 1; results
//                   are byte-identical at any job count)
//   --plan-cache=<0|1>  host-side comm-plan caching (default 1; simulated
//                   results are identical either way — A/B timing knob)
//   --plan-cache-misses=<n>  PlanCache give-up threshold: a loop missing n
//                   consecutive lookups is abandoned (default 8)
//   --full          shorthand for --scale=1.0
//   --json=<file>   also write machine-readable results (schema
//                   fgdsm-bench-v1; byte-identical at any --jobs count)
//   --trace=<file>  Chrome trace_event JSON of the first spec built by
//                   make_spec — combine with --app=<name> (and a
//                   single-config harness) to pick the traced run
//   --per-loop      print the per-parallel-loop breakdown after each table
//   --check-coherence  run the protocol invariant checker at every barrier
//   --faults=<spec> chaos mode: deterministic fault injection + reliable
//                   transport (drop=P,dup=P,delay=P,reorder=P,delay-ns=N,
//                   rto-ns=N,retries=K,seed=S, plus fail-stop crashes:
//                   crash=<node>@<ns> repeatable, crashp=P per barrier);
//                   see src/sim/fault.h
//   --checkpoint-every=<k>  capture a rollback checkpoint at every k-th
//                   barrier completion (default 0 = off). Crashed runs
//                   recover bit-identically to fault-free results; a crash
//                   with no checkpoint exits with code 87
//   --watchdog-ns=<n>  virtual-time stall watchdog (default 2e9 with
//                   --faults, otherwise off); stalls exit with code 86
//   --sim-threads=<n>  worker threads INSIDE each simulation (conservative
//                   synchronous-window PDES; default 1). Results are
//                   bit-identical at any value; the effective count shares
//                   the host-core budget with --jobs (sim::HostBudget)
//

// Unrecognized --flags are fatal (exit 2) with a closest-match suggestion.
//
// Harnesses build their whole (app x configuration) sweep as a matrix of
// ExperimentSpecs and execute it through run_matrix, which fans the
// independent simulations out over exec::BatchRunner's thread pool.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/apps.h"
#include "src/core/options.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/util/json.h"
#include "src/util/options.h"
#include "src/util/stats.h"

namespace fgdsm::bench {

// Host-side comm-plan caching for specs built by make_spec; --plan-cache=0
// turns it off for A/B wall-clock comparisons (simulated results are
// identical either way).
inline bool g_plan_cache = true;
// --plan-cache-misses=<n>: PlanCache abandonment threshold for every spec
// built by make_spec (core::Options::plan_cache_misses).
inline int g_plan_cache_misses = 8;
// --check-coherence: every spec built by make_spec runs the protocol's
// invariant checker at each barrier (debug aid; no virtual-time cost).
inline bool g_check_coherence = false;
// --trace=<file>: the FIRST spec built by make_spec records an event trace
// to this path. One file, one run — combine with --app (and a harness with
// one configuration per app) to choose which.
inline std::string g_trace_path;
inline bool g_trace_assigned = false;
// --faults=<spec>: every spec built by make_spec runs under deterministic
// chaos (fault injector + reliable channel). Disabled by default.
inline sim::FaultConfig g_faults;
// --watchdog-ns=<n>: virtual-time stall threshold for every spec (0 = off).
inline sim::Time g_watchdog_ns = 0;
// --checkpoint-every=<k>: barrier-interval checkpointing for every spec
// built by make_spec (0 = off).
inline int g_checkpoint_every = 0;
// --sim-threads=<n>: engine worker threads per simulation for every spec
// built by make_spec (bit-identical results at any value).
inline int g_sim_threads = 1;
// --collectives=<topo>: barrier/reduction topology for every spec built by
// make_spec (default flat, the paper's centralized coordinator).
inline tempest::Collectives g_collectives = tempest::Collectives::kFlat;
inline int g_collective_group = 0;

struct BenchConfig {
  double scale = 0.15;
  int nodes = 8;
  std::size_t block = 128;
  int jobs = 1;
  std::optional<std::string> only_app;
  bool per_loop = false;       // print per-parallel-loop breakdowns
  std::string json_path;       // --json=<file>; empty = off
  std::string trace_path;      // --trace=<file>; empty = off
  bool check_coherence = false;
  sim::FaultConfig faults;     // --faults=<spec>; disabled by default
  sim::Time watchdog_ns = 0;   // --watchdog-ns=<n>; 0 = off
  int checkpoint_every = 0;    // --checkpoint-every=<k>; 0 = off
  int sim_threads = 1;         // --sim-threads=<n>; workers per simulation
  tempest::Collectives collectives = tempest::Collectives::kFlat;
  int collective_group = 0;    // twolevel fan-out; 0 = auto

  // `extra_known` declares harness-specific flags beyond the shared set
  // (strict mode rejects everything else).
  static BenchConfig from_args(int argc, const char* const* argv,
                               const std::vector<std::string>& extra_known =
                                   {}) {
    util::Options o(argc, argv);
    std::vector<std::string> known = {
        "scale", "nodes",     "block", "app",   "jobs",
        "plan-cache", "plan-cache-misses", "full", "json",  "trace",
        "per-loop", "check-coherence", "faults", "watchdog-ns",
        "sim-threads", "collectives", "checkpoint-every"};
    known.insert(known.end(), extra_known.begin(), extra_known.end());
    o.check_known(known);
    BenchConfig c;
    c.scale = o.get_double("scale", o.get_bool("full") ? 1.0 : 0.15);
    c.nodes = static_cast<int>(o.get_int("nodes", 8));
    if (c.nodes < 1 || c.nodes > tempest::kMaxNodes) {
      std::fprintf(stderr,
                   "fgdsm: --nodes=%d is outside the supported range [1, %d] "
                   "(index/bitmask arithmetic is only validated up to this "
                   "size)\n",
                   c.nodes, tempest::kMaxNodes);
      std::exit(2);
    }
    c.block = static_cast<std::size_t>(o.get_int("block", 128));
    c.jobs = static_cast<int>(o.get_int("jobs", 1));
    g_plan_cache = o.get_int("plan-cache", 1) != 0;
    g_plan_cache_misses = static_cast<int>(o.get_int("plan-cache-misses", 8));
    if (g_plan_cache_misses < 1) {
      std::fprintf(stderr, "fgdsm: --plan-cache-misses must be >= 1\n");
      std::exit(2);
    }
    if (o.has("app")) c.only_app = o.get("app");
    c.per_loop = o.get_bool("per-loop");
    if (o.has("json")) c.json_path = o.get("json");
    if (o.has("trace")) c.trace_path = o.get("trace");
    c.check_coherence = o.get_bool("check-coherence");
    if (o.has("faults")) {
      std::string err;
      c.faults = sim::FaultConfig::parse(o.get("faults"), &err);
      if (!err.empty()) {
        std::fprintf(stderr, "fgdsm: bad --faults spec: %s\n", err.c_str());
        std::exit(2);
      }
    }
    if (o.has("collectives")) {
      if (!tempest::parse_collectives(o.get("collectives"), &c.collectives,
                                      &c.collective_group)) {
        std::fprintf(stderr,
                     "fgdsm: bad --collectives value '%s' (expected "
                     "flat|binary|binomial|twolevel[:G])\n",
                     o.get("collectives").c_str());
        std::exit(2);
      }
    }
    // A fault run that wedges should diagnose itself, not hang CI: the
    // watchdog defaults on whenever faults are enabled. The budget scales
    // with node count and collective depth (2e9 virtual ns at the paper's
    // 8 nodes — see tempest::default_watchdog_ns) so healthy large-cluster
    // chaos runs don't false-trip exit 86.
    c.watchdog_ns = static_cast<sim::Time>(o.get_int(
        "watchdog-ns",
        c.faults.enabled ? tempest::default_watchdog_ns(c.nodes, c.collectives)
                         : 0));
    c.sim_threads = static_cast<int>(o.get_int("sim-threads", 1));
    if (c.sim_threads < 1) {
      std::fprintf(stderr, "fgdsm: --sim-threads must be >= 1\n");
      std::exit(2);
    }
    c.checkpoint_every = static_cast<int>(o.get_int("checkpoint-every", 0));
    if (c.checkpoint_every < 0) {
      std::fprintf(stderr, "fgdsm: --checkpoint-every must be >= 0\n");
      std::exit(2);
    }
    g_check_coherence = c.check_coherence;
    g_faults = c.faults;
    g_watchdog_ns = c.watchdog_ns;
    g_checkpoint_every = c.checkpoint_every;
    g_sim_threads = c.sim_threads;
    g_collectives = c.collectives;
    g_collective_group = c.collective_group;
    g_trace_path = c.trace_path;
    g_trace_assigned = false;
    return c;
  }

  bool selected(const std::string& app) const {
    return !only_app || *only_app == app;
  }
};

// Spec for one run of `prog` under the given options; gather_arrays stays
// off (programs verify themselves through checksum scalars).
inline exec::ExperimentSpec make_spec(const hpf::Program& prog,
                                      const core::Options& opt, int nodes,
                                      bool dual_cpu, std::size_t block,
                                      std::string label = "") {
  exec::ExperimentSpec s;
  s.program = &prog;
  s.config.cluster.nnodes = nodes;
  s.config.cluster.block_size = block;
  s.config.cluster.dual_cpu = dual_cpu;
  s.config.opt = opt;
  s.config.opt.plan_cache = g_plan_cache;
  s.config.opt.plan_cache_misses = g_plan_cache_misses;
  s.config.gather_arrays = false;
  s.config.cluster.check_coherence = g_check_coherence;
  s.config.cluster.faults = g_faults;
  s.config.cluster.watchdog_ns = g_watchdog_ns;
  s.config.cluster.checkpoint_every = g_checkpoint_every;
  s.config.cluster.sim_threads = g_sim_threads;
  s.config.cluster.collectives = g_collectives;
  s.config.cluster.collective_group = g_collective_group;
  if (!g_trace_path.empty() && !g_trace_assigned) {
    s.config.trace_path = g_trace_path;
    g_trace_assigned = true;
  }
  s.label = label.empty() ? opt.label() : std::move(label);
  return s;
}

// Machine-readable results (--json). One schema for every harness:
//   {"schema":"fgdsm-bench-v1","bench":<name>,
//    "config":{scale,nodes,block,check_coherence},
//    "metrics":{<name>:<value>,...},
//    "runs":[{app,config,elapsed_ns,scalars,totals,per_node,per_loop},...]}
// The file depends only on simulated results — never on host timing or the
// --jobs count — so it is byte-identical across job counts.
class JsonReport {
 public:
  JsonReport(std::string bench, const BenchConfig& cfg)
      : bench_(std::move(bench)), cfg_(cfg) {}

  bool enabled() const { return !cfg_.json_path.empty(); }

  void add_run(const std::string& app, const std::string& config,
               const exec::RunResult& r) {
    if (enabled()) runs_.push_back(Run{app, config, r});
  }
  // Harness-specific summary values (e.g. round-trip latency, speedups).
  void add_metric(const std::string& name, double v) {
    if (enabled()) metrics_[name] = v;
  }

  // Write the file (no-op without --json). Logs to stderr, never stdout —
  // the human-readable output must stay byte-identical with and without it.
  void write() const {
    if (!enabled()) return;
    std::ofstream f(cfg_.json_path);
    if (!f) {
      std::fprintf(stderr, "fgdsm: cannot open json file '%s'\n",
                   cfg_.json_path.c_str());
      return;
    }
    util::JsonWriter w(f);
    w.begin_object();
    w.kv("schema", "fgdsm-bench-v1");
    w.kv("bench", bench_);
    w.key("config");
    w.begin_object();
    w.kv("scale", cfg_.scale);
    w.kv("nodes", cfg_.nodes);
    w.kv("block", static_cast<std::uint64_t>(cfg_.block));
    w.kv("check_coherence", cfg_.check_coherence);
    w.end_object();
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : metrics_) w.kv(k, v);
    w.end_object();
    w.key("runs");
    w.begin_array();
    for (const Run& r : runs_) {
      w.begin_object();
      w.kv("app", r.app);
      w.kv("config", r.config);
      w.kv("elapsed_ns", static_cast<std::int64_t>(r.result.stats.elapsed_ns));
      w.key("scalars");
      w.begin_object();
      for (const auto& [k, v] : r.result.scalars) w.kv(k, v);
      w.end_object();
      w.key("totals");
      emit_stats(w, r.result.stats.totals());
      w.key("per_node");
      w.begin_array();
      for (const auto& ns : r.result.stats.node) emit_stats(w, ns);
      w.end_array();
      w.key("per_loop");
      w.begin_object();
      for (const auto& [loop, ns] : r.result.stats.per_loop) {
        w.key(loop);
        emit_stats(w, ns);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    f << '\n';
    std::fprintf(stderr, "fgdsm: wrote %s\n", cfg_.json_path.c_str());
  }

 private:
  static void emit_stats(util::JsonWriter& w, const util::NodeStats& s) {
    w.begin_object();
    util::NodeStats::visit_fields(
        s, [&w](const char* name, auto v) { w.kv(name, v); });
    w.kv("comm_ns", s.comm_ns());
    w.end_object();
  }

  struct Run {
    std::string app;
    std::string config;
    exec::RunResult result;
  };
  std::string bench_;
  BenchConfig cfg_;
  std::map<std::string, double> metrics_;  // ordered: deterministic output
  std::vector<Run> runs_;
};

// --per-loop: one line per parallel loop of a run, printed under the
// harness's own table (opt-in so the default output stays byte-stable).
inline void print_per_loop(const std::string& title,
                           const exec::RunResult& r) {
  std::printf("  per-loop breakdown — %s\n", title.c_str());
  std::printf("    %-16s %9s %9s %12s %12s %12s %12s\n", "loop", "rd miss",
              "wr miss", "compute", "miss", "ccc", "sync");
  for (const auto& [name, s] : r.stats.per_loop)
    std::printf("    %-16s %9llu %9llu %12s %12s %12s %12s\n", name.c_str(),
                static_cast<unsigned long long>(s.read_misses),
                static_cast<unsigned long long>(s.write_misses),
                util::format_ns(s.compute_ns).c_str(),
                util::format_ns(s.miss_ns).c_str(),
                util::format_ns(s.ccc_ns).c_str(),
                util::format_ns(s.sync_ns).c_str());
}

// A sweep matrix: named specs accumulated by the harness, executed in one
// batch, results addressed back by (row, column) label.
class RunMatrix {
 public:
  // Register one cell; `row` is typically the app name and `col` the
  // configuration label. Programs must outlive run().
  void add(const std::string& row, const std::string& col,
           exec::ExperimentSpec spec) {
    keys_.push_back(row + "/" + col);
    spec.label = keys_.back();
    specs_.push_back(std::move(spec));
  }

  // Convenience: build the spec inline.
  void add(const std::string& row, const std::string& col,
           const hpf::Program& prog, const core::Options& opt, int nodes,
           bool dual_cpu, std::size_t block) {
    add(row, col, make_spec(prog, opt, nodes, dual_cpu, block));
  }

  // Execute every cell on `jobs` host threads. Results are byte-identical
  // for any job count (see exec::BatchRunner). A stalled simulation (the
  // watchdog fired or a channel retry budget ran out) terminates the whole
  // harness with the structured diagnostic and exit code 86.
  void run(int jobs) {
    try {
      const std::vector<exec::RunResult> out =
          exec::BatchRunner(jobs).run_all(specs_);
      for (std::size_t i = 0; i < out.size(); ++i)
        results_[keys_[i]] = out[i];
    } catch (const sim::CrashError& e) {
      sim::exit_crash(e);  // unrecoverable fail-stop: exit 87
    } catch (const sim::StallError& e) {
      sim::exit_stall(e);
    }
  }

  const exec::RunResult& at(const std::string& row,
                            const std::string& col) const {
    auto it = results_.find(row + "/" + col);
    FGDSM_ASSERT_MSG(it != results_.end(),
                     "no matrix cell " << row << "/" << col);
    return it->second;
  }

  std::size_t size() const { return specs_.size(); }

  // Feed every cell into a JsonReport in registration order, splitting the
  // "row/col" key back into (app, config).
  void export_to(JsonReport& jr) const {
    for (const std::string& key : keys_) {
      auto it = results_.find(key);
      if (it == results_.end()) continue;
      const std::size_t slash = key.find('/');
      jr.add_run(key.substr(0, slash),
                 slash == std::string::npos ? "" : key.substr(slash + 1),
                 it->second);
    }
  }

 private:
  std::vector<exec::ExperimentSpec> specs_;
  std::vector<std::string> keys_;
  std::map<std::string, exec::RunResult> results_;
};

// Single-run convenience used by harnesses that measure one-off cells.
inline exec::RunResult run_app(const hpf::Program& prog,
                               const core::Options& opt, int nodes,
                               bool dual_cpu, std::size_t block) {
  const exec::ExperimentSpec s = make_spec(prog, opt, nodes, dual_cpu, block);
  try {
    return exec::run(*s.program, s.config);
  } catch (const sim::CrashError& e) {
    sim::exit_crash(e);  // unrecoverable fail-stop: exit 87
  } catch (const sim::StallError& e) {
    sim::exit_stall(e);
  }
}

inline double speedup(const exec::RunResult& serial,
                      const exec::RunResult& parallel) {
  return static_cast<double>(serial.stats.elapsed_ns) /
         static_cast<double>(parallel.stats.elapsed_ns);
}

}  // namespace fgdsm::bench
