
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpf/analysis.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/analysis.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/analysis.cc.o.d"
  "/root/repo/src/hpf/dataflow.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/dataflow.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/dataflow.cc.o.d"
  "/root/repo/src/hpf/frontend/lexer.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/frontend/lexer.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/frontend/lexer.cc.o.d"
  "/root/repo/src/hpf/frontend/lower.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/frontend/lower.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/frontend/lower.cc.o.d"
  "/root/repo/src/hpf/frontend/parser.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/frontend/parser.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/frontend/parser.cc.o.d"
  "/root/repo/src/hpf/layout.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/layout.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/layout.cc.o.d"
  "/root/repo/src/hpf/section.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/section.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/section.cc.o.d"
  "/root/repo/src/hpf/symbolic.cc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/symbolic.cc.o" "gcc" "src/hpf/CMakeFiles/fgdsm_hpf.dir/symbolic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
