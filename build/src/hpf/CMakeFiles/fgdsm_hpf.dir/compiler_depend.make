# Empty compiler generated dependencies file for fgdsm_hpf.
# This may be replaced when dependencies are built.
