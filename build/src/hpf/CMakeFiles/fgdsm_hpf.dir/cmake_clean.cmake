file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_hpf.dir/analysis.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/analysis.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/dataflow.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/dataflow.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/frontend/lexer.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/frontend/lexer.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/frontend/lower.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/frontend/lower.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/frontend/parser.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/frontend/parser.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/layout.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/layout.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/section.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/section.cc.o.d"
  "CMakeFiles/fgdsm_hpf.dir/symbolic.cc.o"
  "CMakeFiles/fgdsm_hpf.dir/symbolic.cc.o.d"
  "libfgdsm_hpf.a"
  "libfgdsm_hpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_hpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
