file(REMOVE_RECURSE
  "libfgdsm_hpf.a"
)
