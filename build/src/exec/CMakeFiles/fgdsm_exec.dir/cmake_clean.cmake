file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_exec.dir/executor.cc.o"
  "CMakeFiles/fgdsm_exec.dir/executor.cc.o.d"
  "libfgdsm_exec.a"
  "libfgdsm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
