# Empty dependencies file for fgdsm_exec.
# This may be replaced when dependencies are built.
