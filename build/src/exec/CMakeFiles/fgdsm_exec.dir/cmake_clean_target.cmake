file(REMOVE_RECURSE
  "libfgdsm_exec.a"
)
