file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_apps.dir/cg.cc.o"
  "CMakeFiles/fgdsm_apps.dir/cg.cc.o.d"
  "CMakeFiles/fgdsm_apps.dir/grav.cc.o"
  "CMakeFiles/fgdsm_apps.dir/grav.cc.o.d"
  "CMakeFiles/fgdsm_apps.dir/jacobi.cc.o"
  "CMakeFiles/fgdsm_apps.dir/jacobi.cc.o.d"
  "CMakeFiles/fgdsm_apps.dir/lu.cc.o"
  "CMakeFiles/fgdsm_apps.dir/lu.cc.o.d"
  "CMakeFiles/fgdsm_apps.dir/pde.cc.o"
  "CMakeFiles/fgdsm_apps.dir/pde.cc.o.d"
  "CMakeFiles/fgdsm_apps.dir/registry.cc.o"
  "CMakeFiles/fgdsm_apps.dir/registry.cc.o.d"
  "CMakeFiles/fgdsm_apps.dir/shallow.cc.o"
  "CMakeFiles/fgdsm_apps.dir/shallow.cc.o.d"
  "libfgdsm_apps.a"
  "libfgdsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
