
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cg.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/cg.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/cg.cc.o.d"
  "/root/repo/src/apps/grav.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/grav.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/grav.cc.o.d"
  "/root/repo/src/apps/jacobi.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/jacobi.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/jacobi.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/lu.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/lu.cc.o.d"
  "/root/repo/src/apps/pde.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/pde.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/pde.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/shallow.cc" "src/apps/CMakeFiles/fgdsm_apps.dir/shallow.cc.o" "gcc" "src/apps/CMakeFiles/fgdsm_apps.dir/shallow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpf/CMakeFiles/fgdsm_hpf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
