file(REMOVE_RECURSE
  "libfgdsm_apps.a"
)
