# Empty dependencies file for fgdsm_apps.
# This may be replaced when dependencies are built.
