# Empty dependencies file for fgdsm_util.
# This may be replaced when dependencies are built.
