file(REMOVE_RECURSE
  "libfgdsm_util.a"
)
