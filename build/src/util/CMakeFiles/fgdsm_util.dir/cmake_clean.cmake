file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_util.dir/log.cc.o"
  "CMakeFiles/fgdsm_util.dir/log.cc.o.d"
  "CMakeFiles/fgdsm_util.dir/options.cc.o"
  "CMakeFiles/fgdsm_util.dir/options.cc.o.d"
  "CMakeFiles/fgdsm_util.dir/stats.cc.o"
  "CMakeFiles/fgdsm_util.dir/stats.cc.o.d"
  "CMakeFiles/fgdsm_util.dir/table.cc.o"
  "CMakeFiles/fgdsm_util.dir/table.cc.o.d"
  "libfgdsm_util.a"
  "libfgdsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
