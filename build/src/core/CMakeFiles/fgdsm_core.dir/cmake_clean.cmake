file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_core.dir/options.cc.o"
  "CMakeFiles/fgdsm_core.dir/options.cc.o.d"
  "CMakeFiles/fgdsm_core.dir/plan.cc.o"
  "CMakeFiles/fgdsm_core.dir/plan.cc.o.d"
  "libfgdsm_core.a"
  "libfgdsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
