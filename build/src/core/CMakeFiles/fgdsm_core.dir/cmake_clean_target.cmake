file(REMOVE_RECURSE
  "libfgdsm_core.a"
)
