# Empty compiler generated dependencies file for fgdsm_core.
# This may be replaced when dependencies are built.
