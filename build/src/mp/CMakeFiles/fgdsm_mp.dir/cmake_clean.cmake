file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_mp.dir/runtime.cc.o"
  "CMakeFiles/fgdsm_mp.dir/runtime.cc.o.d"
  "libfgdsm_mp.a"
  "libfgdsm_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
