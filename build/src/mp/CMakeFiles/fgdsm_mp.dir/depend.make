# Empty dependencies file for fgdsm_mp.
# This may be replaced when dependencies are built.
