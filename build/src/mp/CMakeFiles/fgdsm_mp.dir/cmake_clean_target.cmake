file(REMOVE_RECURSE
  "libfgdsm_mp.a"
)
