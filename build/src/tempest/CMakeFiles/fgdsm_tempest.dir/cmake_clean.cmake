file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_tempest.dir/cluster.cc.o"
  "CMakeFiles/fgdsm_tempest.dir/cluster.cc.o.d"
  "CMakeFiles/fgdsm_tempest.dir/node.cc.o"
  "CMakeFiles/fgdsm_tempest.dir/node.cc.o.d"
  "libfgdsm_tempest.a"
  "libfgdsm_tempest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_tempest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
