file(REMOVE_RECURSE
  "libfgdsm_tempest.a"
)
