# Empty dependencies file for fgdsm_tempest.
# This may be replaced when dependencies are built.
