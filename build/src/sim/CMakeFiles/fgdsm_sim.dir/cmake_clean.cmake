file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_sim.dir/engine.cc.o"
  "CMakeFiles/fgdsm_sim.dir/engine.cc.o.d"
  "CMakeFiles/fgdsm_sim.dir/network.cc.o"
  "CMakeFiles/fgdsm_sim.dir/network.cc.o.d"
  "CMakeFiles/fgdsm_sim.dir/task.cc.o"
  "CMakeFiles/fgdsm_sim.dir/task.cc.o.d"
  "libfgdsm_sim.a"
  "libfgdsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
