file(REMOVE_RECURSE
  "libfgdsm_sim.a"
)
