# Empty dependencies file for fgdsm_sim.
# This may be replaced when dependencies are built.
