# Empty dependencies file for fgdsm_proto.
# This may be replaced when dependencies are built.
