file(REMOVE_RECURSE
  "libfgdsm_proto.a"
)
