file(REMOVE_RECURSE
  "CMakeFiles/fgdsm_proto.dir/stache.cc.o"
  "CMakeFiles/fgdsm_proto.dir/stache.cc.o.d"
  "libfgdsm_proto.a"
  "libfgdsm_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgdsm_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
