file(REMOVE_RECURSE
  "CMakeFiles/proto_stache_test.dir/proto_stache_test.cc.o"
  "CMakeFiles/proto_stache_test.dir/proto_stache_test.cc.o.d"
  "proto_stache_test"
  "proto_stache_test.pdb"
  "proto_stache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_stache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
