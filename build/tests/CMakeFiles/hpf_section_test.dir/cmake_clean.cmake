file(REMOVE_RECURSE
  "CMakeFiles/hpf_section_test.dir/hpf_section_test.cc.o"
  "CMakeFiles/hpf_section_test.dir/hpf_section_test.cc.o.d"
  "hpf_section_test"
  "hpf_section_test.pdb"
  "hpf_section_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_section_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
