# Empty dependencies file for hpf_section_test.
# This may be replaced when dependencies are built.
