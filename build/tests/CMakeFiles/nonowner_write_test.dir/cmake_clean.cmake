file(REMOVE_RECURSE
  "CMakeFiles/nonowner_write_test.dir/nonowner_write_test.cc.o"
  "CMakeFiles/nonowner_write_test.dir/nonowner_write_test.cc.o.d"
  "nonowner_write_test"
  "nonowner_write_test.pdb"
  "nonowner_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonowner_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
