# Empty dependencies file for nonowner_write_test.
# This may be replaced when dependencies are built.
