file(REMOVE_RECURSE
  "CMakeFiles/tempest_test.dir/tempest_test.cc.o"
  "CMakeFiles/tempest_test.dir/tempest_test.cc.o.d"
  "tempest_test"
  "tempest_test.pdb"
  "tempest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
