# Empty compiler generated dependencies file for tempest_test.
# This may be replaced when dependencies are built.
