# Empty compiler generated dependencies file for mp_runtime_test.
# This may be replaced when dependencies are built.
