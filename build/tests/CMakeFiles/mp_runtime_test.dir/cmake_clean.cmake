file(REMOVE_RECURSE
  "CMakeFiles/mp_runtime_test.dir/mp_runtime_test.cc.o"
  "CMakeFiles/mp_runtime_test.dir/mp_runtime_test.cc.o.d"
  "mp_runtime_test"
  "mp_runtime_test.pdb"
  "mp_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
