# Empty dependencies file for proto_sequence_test.
# This may be replaced when dependencies are built.
