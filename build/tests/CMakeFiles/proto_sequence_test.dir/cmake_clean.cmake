file(REMOVE_RECURSE
  "CMakeFiles/proto_sequence_test.dir/proto_sequence_test.cc.o"
  "CMakeFiles/proto_sequence_test.dir/proto_sequence_test.cc.o.d"
  "proto_sequence_test"
  "proto_sequence_test.pdb"
  "proto_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
