# Empty dependencies file for tree_collectives_test.
# This may be replaced when dependencies are built.
