file(REMOVE_RECURSE
  "CMakeFiles/tree_collectives_test.dir/tree_collectives_test.cc.o"
  "CMakeFiles/tree_collectives_test.dir/tree_collectives_test.cc.o.d"
  "tree_collectives_test"
  "tree_collectives_test.pdb"
  "tree_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
