file(REMOVE_RECURSE
  "CMakeFiles/exec_integration_test.dir/exec_integration_test.cc.o"
  "CMakeFiles/exec_integration_test.dir/exec_integration_test.cc.o.d"
  "exec_integration_test"
  "exec_integration_test.pdb"
  "exec_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
