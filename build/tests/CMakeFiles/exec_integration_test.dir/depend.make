# Empty dependencies file for exec_integration_test.
# This may be replaced when dependencies are built.
