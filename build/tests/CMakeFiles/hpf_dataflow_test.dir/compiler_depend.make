# Empty compiler generated dependencies file for hpf_dataflow_test.
# This may be replaced when dependencies are built.
