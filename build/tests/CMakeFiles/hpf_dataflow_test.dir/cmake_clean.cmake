file(REMOVE_RECURSE
  "CMakeFiles/hpf_dataflow_test.dir/hpf_dataflow_test.cc.o"
  "CMakeFiles/hpf_dataflow_test.dir/hpf_dataflow_test.cc.o.d"
  "hpf_dataflow_test"
  "hpf_dataflow_test.pdb"
  "hpf_dataflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
