# Empty dependencies file for hpf_frontend_test.
# This may be replaced when dependencies are built.
