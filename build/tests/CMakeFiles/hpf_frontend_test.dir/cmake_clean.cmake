file(REMOVE_RECURSE
  "CMakeFiles/hpf_frontend_test.dir/hpf_frontend_test.cc.o"
  "CMakeFiles/hpf_frontend_test.dir/hpf_frontend_test.cc.o.d"
  "hpf_frontend_test"
  "hpf_frontend_test.pdb"
  "hpf_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
