# Empty compiler generated dependencies file for hpf_analysis_test.
# This may be replaced when dependencies are built.
