file(REMOVE_RECURSE
  "CMakeFiles/hpf_analysis_test.dir/hpf_analysis_test.cc.o"
  "CMakeFiles/hpf_analysis_test.dir/hpf_analysis_test.cc.o.d"
  "hpf_analysis_test"
  "hpf_analysis_test.pdb"
  "hpf_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
