# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim_network_test[1]_include.cmake")
include("/root/repo/build/tests/tempest_test[1]_include.cmake")
include("/root/repo/build/tests/proto_stache_test[1]_include.cmake")
include("/root/repo/build/tests/hpf_section_test[1]_include.cmake")
include("/root/repo/build/tests/hpf_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/exec_integration_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/hpf_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/core_plan_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/mp_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/hpf_dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/tree_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/proto_sequence_test[1]_include.cmake")
include("/root/repo/build/tests/nonowner_write_test[1]_include.cmake")
