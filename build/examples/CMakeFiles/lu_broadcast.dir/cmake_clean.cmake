file(REMOVE_RECURSE
  "CMakeFiles/lu_broadcast.dir/lu_broadcast.cpp.o"
  "CMakeFiles/lu_broadcast.dir/lu_broadcast.cpp.o.d"
  "lu_broadcast"
  "lu_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
