# Empty compiler generated dependencies file for lu_broadcast.
# This may be replaced when dependencies are built.
