file(REMOVE_RECURSE
  "CMakeFiles/hpf_compile.dir/hpf_compile.cpp.o"
  "CMakeFiles/hpf_compile.dir/hpf_compile.cpp.o.d"
  "hpf_compile"
  "hpf_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
