# Empty compiler generated dependencies file for hpf_compile.
# This may be replaced when dependencies are built.
