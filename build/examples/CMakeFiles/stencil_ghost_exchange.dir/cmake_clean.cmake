file(REMOVE_RECURSE
  "CMakeFiles/stencil_ghost_exchange.dir/stencil_ghost_exchange.cpp.o"
  "CMakeFiles/stencil_ghost_exchange.dir/stencil_ghost_exchange.cpp.o.d"
  "stencil_ghost_exchange"
  "stencil_ghost_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_ghost_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
