# Empty dependencies file for stencil_ghost_exchange.
# This may be replaced when dependencies are built.
