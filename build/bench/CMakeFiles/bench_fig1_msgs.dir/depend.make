# Empty dependencies file for bench_fig1_msgs.
# This may be replaced when dependencies are built.
