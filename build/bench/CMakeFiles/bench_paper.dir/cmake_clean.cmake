file(REMOVE_RECURSE
  "CMakeFiles/bench_paper.dir/bench_paper.cc.o"
  "CMakeFiles/bench_paper.dir/bench_paper.cc.o.d"
  "bench_paper"
  "bench_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
