# Empty compiler generated dependencies file for bench_paper.
# This may be replaced when dependencies are built.
