
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3.cc" "bench/CMakeFiles/bench_table3.dir/bench_table3.cc.o" "gcc" "bench/CMakeFiles/bench_table3.dir/bench_table3.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/fgdsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fgdsm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgdsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/fgdsm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/fgdsm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/hpf/CMakeFiles/fgdsm_hpf.dir/DependInfo.cmake"
  "/root/repo/build/src/tempest/CMakeFiles/fgdsm_tempest.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
